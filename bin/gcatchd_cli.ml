(* gcatchd — the warm-process analysis server.

     gcatchd --addr 127.0.0.1:8918                 # TCP
     gcatchd --sock /tmp/gcatchd.sock              # Unix socket
     gcatchd --addr 127.0.0.1:0 --jobs 4 \
             --cache-dir /tmp/cache --max-cache-mb 256

   One engine (and one scheduler pool) lives across requests, so the
   frontend memos, pass-result cache, and solve cache stay hot:
   steady-state request latency is the warm number, not the cold one.

   Protocol: POST /analyse with a JSON body

     {"schema":"gcatch-serve/1","name":"cli",
      "files":[{"path":"a.go","src":"package main ..."},
               {"path":"b.go","digest":"<md5-hex>"}],
      "passes":["bmoc"], "nonblocking":false}

   Files may be sent by content ("src") or referenced by digest of a
   source the server has already seen ("digest"; unknown digests answer
   409 listing the missing ones — resend those files by content).  The
   response envelope carries the exit code, the CLI's human rendering,
   request-scoped counters, and the engine's run JSON verbatim.  The
   observation endpoints (/metrics, /healthz, /vars, /profile) are the
   same tables the one-shot CLI serves under --telemetry-addr.

   Saturation answers 429 + Retry-After; identical requests in flight
   are coalesced into one execution.  SIGTERM/SIGINT drain and exit 0,
   flushing the journal's close event.

   Exit codes: 0 clean shutdown, 2 usage error. *)

open Cmdliner
module M = Goobs.Metrics
module Log = Goobs.Log
module T = Goobs.Telemetry
module Serve = Goserve.Serve

let stop_flag = Atomic.make false

let run addr sock jobs cache_dir max_cache_mb max_queue request_deadline_ms
    solver_timeout_ms max_heap_mb watch max_body_mb log_level log_json
    inject_faults journal journal_fsync snapshot_interval_ms quarantine_errors
    quarantine_degraded quarantine_breaches =
  (match log_level with
  | None -> ()
  | Some s -> (
      match Log.level_of_string s with
      | Some l -> Log.set_level l
      | None ->
          Log.errorf "invalid log level %S (debug|info|warn|error|quiet)" s;
          exit 2));
  if log_json then Log.set_format Log.Json;
  (match inject_faults with
  | None -> ()
  | Some plan -> (
      match Goengine.Faults.parse plan with
      | Ok specs -> Goengine.Faults.set_plan specs
      | Error e ->
          Log.errorf "bad --inject-faults plan: %s" e;
          exit 2));
  if addr = None && sock = None then begin
    Log.error "no listen address: pass --addr HOST:PORT and/or --sock PATH";
    exit 2
  end;
  (match Goobs.Journal.fsync_policy_of_string journal_fsync with
  | Some p -> Goobs.Journal.set_fsync p
  | None ->
      Log.errorf "invalid --journal-fsync %S (never|close|always)" journal_fsync;
      exit 2);
  (match journal with
  | None -> ()
  | Some path ->
      Goobs.Journal.open_ ~path;
      at_exit Goobs.Journal.close);
  (* validate --cache-dir up front: an unwritable directory or an
     incompatible snapshot is a usage error at startup, not a silent
     degradation on the first snapshot tick *)
  (match cache_dir with
  | None -> ()
  | Some dir -> (
      (match Goserve.Snapshot.validate_dir dir with
      | Ok () -> ()
      | Error msg ->
          Log.error msg;
          exit 2);
      match Goserve.Snapshot.check ~dir with
      | Goserve.Snapshot.Version_mismatch v ->
          Log.errorf
            "snapshot %s was written by an incompatible version (%s, want %s); \
             delete it to start cold"
            (Goserve.Snapshot.path ~dir) v Goserve.Snapshot.format_version;
          exit 2
      | Goserve.Snapshot.Corrupt ->
          Log.warn "snapshot is corrupt; starting cold (it will be deleted)"
      | Goserve.Snapshot.Valid | Goserve.Snapshot.Missing -> ()));
  (match max_heap_mb with
  | None -> ()
  | Some mb -> Goengine.Supervise.set_max_heap_mb mb);
  let cfg =
    {
      Serve.default_cfg with
      Serve.s_jobs = jobs;
      s_detector =
        {
          Gcatch.Bmoc.default_config with
          cache_dir;
          path_cfg =
            {
              Gcatch.Pathenum.default_config with
              solver_timeout_ms;
            };
        };
      s_max_cache_mb = max_cache_mb;
      s_max_queue = max_queue;
      s_deadline_ms = request_deadline_ms;
      s_snapshot_dir = cache_dir;
      s_quar_errors = quarantine_errors;
      s_quar_degraded = quarantine_degraded;
      s_quar_breaches = quarantine_breaches;
    }
  in
  let srv = Serve.create ~cfg () in
  (* operator-facing like the port handshake below: restart scripts
     grep this to confirm the boot answered warm *)
  if Serve.load_snapshot srv then
    Printf.printf "gcatchd warm snapshot loaded\n%!";
  match
    T.start ?addr ?sock
      ~post:(Serve.post_handlers srv)
      ~max_body:(max_body_mb * 1024 * 1024)
      ~handlers:(Serve.handlers srv) ()
  with
  | Error e ->
      Log.error e;
      exit 2
  | Ok server ->
      (match watch with
      | None -> ()
      | Some dir -> Serve.start_watch srv ~dir ~interval_s:0.5);
      let stop _ = Atomic.set stop_flag true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      (* the port line is the startup handshake: scripts block on it,
         then know both that the server is up and where it listens *)
      if T.port server <> 0 then
        Printf.printf "gcatchd listening on port %d\n%!" (T.port server)
      else
        Printf.printf "gcatchd listening on %s\n%!"
          (Option.value sock ~default:"?");
      let last_snap = ref (Unix.gettimeofday ()) in
      while not (Atomic.get stop_flag) do
        Thread.delay 0.2;
        if snapshot_interval_ms > 0 then begin
          let now = Unix.gettimeofday () in
          if
            now -. !last_snap
            >= float_of_int snapshot_interval_ms /. 1000.0
          then begin
            ignore (Serve.save_snapshot srv);
            last_snap := Unix.gettimeofday ()
          end
        end
      done;
      Log.info "gcatchd shutting down";
      (match watch with Some _ -> Serve.stop_watch srv | None -> ());
      T.stop server;
      (* flush the warm state so the next boot answers warm from the
         first request; a failed save is logged, never fatal *)
      ignore (Serve.save_snapshot srv);
      (* at_exit closes the journal (final flush) *)
      exit 0

let addr_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "addr" ] ~docv:"HOST:PORT"
        ~doc:
          "Listen for requests (and serve telemetry) on a TCP socket; port \
           0 picks an ephemeral port, printed on startup")

let sock_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sock" ] ~docv:"PATH"
        ~doc:"Listen on a Unix-domain socket at $(docv) (combinable with \
              $(b,--addr))")

let jobs_arg =
  Arg.(
    value
    & opt int (Goengine.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan each request's detector work out over $(docv) domains; \
           requests are executed one at a time, each getting the whole pool")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) (Sys.getenv_opt "GCATCH_CACHE_DIR")
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the per-file artifact, pass-result, and solve caches in \
           $(docv): a restarted daemon warms from disk")

let max_cache_mb_arg =
  Arg.(
    value & opt int 0
    & info [ "max-cache-mb" ] ~docv:"MB"
        ~doc:
          "Bound the in-memory cache tiers (frontend memo tables and the \
           solve cache) to roughly $(docv) MB, evicting least-recently-used \
           entries; eviction counts appear in /vars and /metrics. 0 (the \
           default) means unbounded, as in one-shot runs.")

let max_queue_arg =
  Arg.(
    value & opt int 16
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admit at most $(docv) requests at once (running + queued); \
           beyond that /analyse answers 429 with Retry-After")

let request_deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "request-deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request SLO: each request runs under a $(docv) ms deadline \
           (the global-deadline watchdog, scoped to the request); work past \
           it is flushed partially and reported in the response's health")

let solver_timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "solver-timeout-ms" ] ~docv:"MS"
        ~doc:"Per-channel constraint-solving budget, as in gcatch")

let max_heap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-heap-mb" ] ~docv:"MB"
        ~doc:"Heap watchdog for the whole daemon, as in gcatch")

let watch_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "watch" ] ~docv:"DIR"
        ~doc:
          "Poll $(docv) for changed *.go files (content digests, twice a \
           second) and pre-warm the caches by analysing the new tree, so \
           the next request for it is incremental")

let max_body_arg =
  Arg.(
    value & opt int 64
    & info [ "max-body-mb" ] ~docv:"MB"
        ~doc:"Reject request bodies larger than $(docv) MB with 413")

let log_level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Log verbosity: debug, info, warn, error, or quiet")

let log_json_arg =
  Arg.(value & flag & info [ "log-json" ] ~doc:"JSON log lines")

let inject_faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-faults" ] ~docv:"PLAN"
        ~doc:
          "Deterministic fault injection, as in gcatch — used by CI to \
           exercise the daemon's supervision under load")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Append the JSONL event journal to $(docv); each event carries \
           the request id it belongs to, and shutdown flushes the close \
           event")

let journal_fsync_arg =
  Arg.(
    value & opt string "never"
    & info [ "journal-fsync" ] ~docv:"POLICY"
        ~doc:
          "Journal durability: $(b,never) (default; flush only), \
           $(b,close) (fsync once at clean shutdown), or $(b,always) \
           (fsync every drain, so a SIGKILL loses at most the undrained \
           per-domain buffer tails)")

let snapshot_interval_arg =
  Arg.(
    value & opt int 0
    & info [ "snapshot-interval-ms" ] ~docv:"MS"
        ~doc:
          "Snapshot the warm state (per-file memos, solve cache, content \
           store) to --cache-dir every $(docv) ms, in addition to the \
           SIGTERM flush; 0 (the default) snapshots on shutdown only")

let quarantine_errors_arg =
  Arg.(
    value & opt int 0
    & info [ "quarantine-errors" ] ~docv:"N"
        ~doc:
          "Quarantine and rebuild the engine after $(docv) consecutive \
           internal-error requests (HTTP 500 or pass-level fault \
           diagnostics); 0 (the default) disables this threshold")

let quarantine_degraded_arg =
  Arg.(
    value & opt int 0
    & info [ "quarantine-degraded" ] ~docv:"N"
        ~doc:
          "Quarantine after $(docv) consecutive requests with degraded \
           analysis units (boundary-contained crashes); 0 disables")

let quarantine_breaches_arg =
  Arg.(
    value & opt int 0
    & info [ "quarantine-breaches" ] ~docv:"N"
        ~doc:
          "Quarantine after $(docv) consecutive requests that breached \
           the --request-deadline-ms SLO; 0 disables")

let cmd =
  Cmd.v
    (Cmd.info "gcatchd" ~doc:"Warm-process analysis server for gcatch"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"clean shutdown (SIGTERM/SIGINT).";
           Cmd.Exit.info 2 ~doc:"usage error or failed to bind.";
         ])
    Term.(
      const run $ addr_arg $ sock_arg $ jobs_arg $ cache_dir_arg
      $ max_cache_mb_arg $ max_queue_arg $ request_deadline_arg
      $ solver_timeout_arg $ max_heap_arg $ watch_arg $ max_body_arg
      $ log_level_arg $ log_json_arg $ inject_faults_arg $ journal_arg
      $ journal_fsync_arg $ snapshot_interval_arg $ quarantine_errors_arg
      $ quarantine_degraded_arg $ quarantine_breaches_arg)

let () = exit (Cmd.eval cmd)
