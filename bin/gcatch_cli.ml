(* gcatch — detect blocking misuse-of-channel and traditional concurrency
   bugs in MiniGo source files.

     gcatch file1.go [file2.go ...]
     gcatch --no-disentangle file.go      # the E5 ablation
     gcatch --stats file.go               # print detector statistics
     gcatch --json file.go                # machine-readable diagnostics
     gcatch --pass bmoc file.go           # run a single pass
     gcatch --jobs 4 file.go              # detector fan-out on 4 domains
     gcatch --trace-out trace.json file.go   # Chrome trace of the run
     gcatch --metrics-out m.prom file.go     # metrics registry dump
     gcatch --profile file.go             # end-of-run profile report
     gcatch --list-passes

   Driven by the staged analysis engine: one [Engine.t] compiles the
   source set once, the pass registry runs the selected detectors, and
   parse/type errors come back as structured diagnostics rather than
   escaping exceptions.

   Exit codes: 0 clean, 1 bugs (or frontend errors) reported, 2 usage
   error, 3 internal error. *)

open Cmdliner
module E = Goengine.Engine
module D = Goengine.Diagnostics
module M = Goobs.Metrics
module Log = Goobs.Log
module Trace = Goobs.Trace

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let list_passes engine =
  List.iter
    (fun (p : E.pass) ->
      Printf.printf "%-20s %s%s\n" p.E.p_name p.E.p_doc
        (if p.E.p_default then "" else "  [off by default]"))
    (E.passes engine)

let write_file path data =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

(* Goscope v2 options, bundled so the analyse term stays readable. *)
type obs_opts = {
  o_telemetry_addr : string option;
  o_telemetry_sock : string option;
  o_journal : string option;
  o_sample_hz : int option;
  o_samples_out : string option;
  o_log_json : bool;
}

(* The telemetry endpoint tables (/metrics, /healthz, /vars, /profile)
   live in Goserve.Serve so the one-shot CLI and the gcatchd daemon
   serve identical tables. *)
let telemetry_handlers = Goserve.Serve.telemetry_handlers

let start_telemetry obs registry profile =
  match (obs.o_telemetry_addr, obs.o_telemetry_sock) with
  | None, None -> None
  | addr, sock -> (
      match
        Goobs.Telemetry.start ?addr ?sock
          ~handlers:(telemetry_handlers registry profile)
          ()
      with
      | Ok t ->
          Log.info
            ~kv:
              (List.filter_map Fun.id
                 [
                   Option.map (fun a -> ("addr", a)) addr;
                   Option.map (fun s -> ("sock", s)) sock;
                   (if Goobs.Telemetry.port t <> 0 then
                      Some ("port", string_of_int (Goobs.Telemetry.port t))
                    else None);
                 ])
            "telemetry server listening";
          Some t
      | Error e ->
          Log.error e;
          exit 2)

(* --server ADDR: route the invocation through a running gcatchd and
   render its response exactly as a local run would — human text to
   stdout (stderr when the frontend failed), the run JSON verbatim under
   --json, and the same exit codes.  CI shares one warm process this
   way. *)
let run_via_server ~addr ~files ~json ~only ~nonblocking ~retry ~retry_seed =
  if files = [] then begin
    Log.error "no input files";
    exit 2
  end;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"gcatch-serve/1\",\"name\":\"cli\",\"files\":[";
  List.iteri
    (fun i path ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"path\":\"%s\",\"src\":\"%s\"}"
           (M.json_escape (Filename.basename path))
           (M.json_escape (read_file path))))
    files;
  Buffer.add_char b ']';
  if only <> [] then
    Buffer.add_string b
      (Printf.sprintf ",\"passes\":[%s]"
         (String.concat ","
            (List.map (fun p -> "\"" ^ M.json_escape p ^ "\"") only)));
  if nonblocking then Buffer.add_string b ",\"nonblocking\":true";
  Buffer.add_char b '}';
  match Goobs.Telemetry.client_sockaddr addr with
  | Error e ->
      Log.error e;
      exit 2
  | Ok sa -> (
      (* retrying client: transport failures (refused/reset connections,
         truncated responses) and back-pressure (429/503, honoring
         Retry-After) are retried with capped exponential backoff and
         deterministic seeded jitter; any response that reached a
         handler intact is final *)
      match
        Goobs.Telemetry.request_retry ~max_attempts:(max 1 retry)
          ~seed:retry_seed sa ~meth:"POST" ~path:"/analyse"
          ~body:(Buffer.contents b) ()
      with
      | Error e ->
          Log.error
            ~kv:[ ("server", addr); ("error", e) ]
            "cannot reach analysis server";
          exit 3
      | Ok (200, body) ->
          let module P = Goserve.Proto in
          if json then (
            match P.member_raw "run" body with
            | Some run -> print_endline run
            | None ->
                Log.error "malformed server response (no run member)";
                exit 3)
          else (
            match P.parse body with
            | Error e ->
                Log.errorf "malformed server response: %s" e;
                exit 3
            | Ok v ->
                let human = Option.value (P.mem_str "human" v) ~default:"" in
                if Option.value (P.mem_bool "frontend_failed" v) ~default:false
                then prerr_string human
                else print_string human);
          let code =
            match Goserve.Proto.member_raw "exit" body with
            | Some s -> Option.value (int_of_string_opt s) ~default:3
            | None -> 3
          in
          exit code
      | Ok (code, body) ->
          Log.errorf "server answered HTTP %d: %s" code (String.trim body);
          exit 3)

let run_checked files no_disentangle stats_flag nonblocking model_waitgroup
    json only list_flag jobs solver_timeout_ms solver_poll_conflicts cache_dir
    no_cache trace_out metrics_out profile log_level inject_faults deadline_ms
    max_heap_mb strict retry_rungs server retry retry_seed obs =
  (match server with
  | Some addr when not list_flag ->
      run_via_server ~addr ~files ~json ~only ~nonblocking ~retry ~retry_seed
  | _ -> ());
  (match log_level with
  | None -> ()
  | Some s -> (
      match Log.level_of_string s with
      | Some l -> Log.set_level l
      | None ->
          Log.errorf "invalid log level %S (debug|info|warn|error|quiet)" s;
          exit 2));
  if obs.o_log_json then Log.set_format Log.Json;
  (match inject_faults with
  | None -> ()
  | Some plan -> (
      match Goengine.Faults.parse plan with
      | Ok specs -> Goengine.Faults.set_plan specs
      | Error e ->
          Log.errorf "bad --inject-faults plan: %s" e;
          exit 2));
  (match deadline_ms with
  | None -> ()
  | Some ms -> Goengine.Supervise.set_deadline_ms ms);
  (match max_heap_mb with
  | None -> ()
  | Some mb -> Goengine.Supervise.set_max_heap_mb mb);
  if trace_out <> None then Trace.enable ();
  (* journal first, then sampler/telemetry: their own lifecycle never
     appears in the stream, but everything the run does will.  [at_exit]
     (not an explicit close at the end) so every documented exit path
     flushes the close event; a SIGKILL leaves the valid prefix. *)
  (match obs.o_journal with
  | None -> ()
  | Some path ->
      Goobs.Journal.open_ ~path;
      at_exit Goobs.Journal.close);
  let sampler =
    match obs.o_sample_hz with
    | None -> None
    | Some hz ->
        (* spine-only unless --trace-out already armed full recording *)
        Trace.enable_spines ();
        Some (Goobs.Sampler.start ~hz)
  in
  let cfg =
    {
      Gcatch.Bmoc.default_config with
      disentangle = not no_disentangle;
      solve_cache = not no_cache;
      cache_dir;
      retry_rungs;
      path_cfg =
        {
          Gcatch.Pathenum.default_config with
          model_waitgroup;
          solver_timeout_ms;
          solver_poll_conflicts;
        };
    }
  in
  (* the CLI's engine reports into the process-wide registry so one
     --metrics-out dump covers the engine, pool, pathenum, and GFix *)
  let registry = M.default in
  let engine = Gcatch.Passes.engine ~cfg ~jobs ~registry () in
  let telemetry =
    start_telemetry obs registry (fun () ->
        (* the mid-run /profile view: pass wall times are not final yet,
           so the report leans on the registry's live histograms *)
        Goobs.Profile.report ~top:10 registry []
        ^ E.frontend_report ~top:10 engine)
  in
  let stop_observers () =
    (match sampler with
    | None -> ()
    | Some s ->
        Goobs.Sampler.stop s;
        (match obs.o_samples_out with
        | None -> ()
        | Some path ->
            Goobs.Sampler.write_collapsed ~path;
            Log.info
              ~kv:
                [
                  ("path", path);
                  ( "samples",
                    string_of_int (Goobs.Sampler.total_samples ()) );
                ]
              "wrote collapsed stacks"));
    match telemetry with
    | None -> ()
    | Some t -> Goobs.Telemetry.stop t
  in
  at_exit stop_observers;
  if list_flag then (
    list_passes engine;
    exit 0);
  if files = [] then (
    Log.error "no input files";
    exit 2);
  let sources = List.map read_file files in
  let only = if only = [] then None else Some only in
  let extra = if nonblocking then [ "nonblocking" ] else [] in
  let r =
    try
      (* the root span: everything the run does nests under it, so the
         exported trace accounts for the full wall time *)
      Trace.with_span ~name:"gcatch.run"
        ~args:[ ("files", String.concat "," files) ]
        (fun () -> E.analyse ?only ~extra engine ~name:"cli" sources)
    with Invalid_argument _ ->
      let known = List.map (fun (p : E.pass) -> p.E.p_name) (E.passes engine) in
      let bad =
        List.filter
          (fun n -> not (List.mem n known))
          (Option.value only ~default:[])
      in
      List.iter
        (fun n -> Log.errorf "unknown pass '%s' (see --list-passes)" n)
        bad;
      exit 2
  in
  let unclean = Goengine.Supervise.health_unclean r.E.r_health in
  if json then print_endline (E.run_to_json r)
  else if E.frontend_failed r then
    List.iter (fun d -> prerr_endline (D.render_human d)) r.E.r_diags
  else begin
    List.iter (fun d -> print_endline (D.render_human d)) r.E.r_diags;
    let count prefix =
      (* warnings (e.g. solver-budget skips) are not bugs *)
      List.length
        (List.filter
           (fun (d : D.t) ->
             D.is_error d
             && String.length d.D.pass >= String.length prefix
             && String.sub d.D.pass 0 (String.length prefix) = prefix)
           r.E.r_diags)
    in
    Printf.printf "%d BMOC bug(s), %d traditional bug(s) in %.2fs\n"
      (count "bmoc") (count "trad.") r.E.r_elapsed_s;
    (* clean runs print nothing extra: the health line appears only when
       some unit did not complete at full fidelity *)
    if unclean > 0 then
      Printf.printf "analysis health: %s\n"
        (Goengine.Supervise.health_str r.E.r_health);
    if stats_flag then
      List.iter
        (fun (pr : E.pass_run) ->
          if pr.E.pr_metrics <> [] then begin
            Printf.printf "%s (%.3fs):\n" pr.E.pr_pass pr.E.pr_elapsed_s;
            List.iter
              (fun (k, v) -> Printf.printf "  %s: %d\n" k v)
              pr.E.pr_metrics
          end)
        r.E.r_passes
  end;
  (match trace_out with
  | None -> ()
  | Some path ->
      Trace.write_chrome ~path (Trace.drain ());
      Log.info ~kv:[ ("path", path) ] "wrote Chrome trace");
  (match metrics_out with
  | None -> ()
  | Some path ->
      let data =
        if Filename.check_suffix path ".json" then M.to_json registry
        else M.to_prometheus registry
      in
      write_file path data;
      Log.info ~kv:[ ("path", path) ] "wrote metrics");
  if profile then begin
    let pass_times =
      List.map (fun pr -> (pr.E.pr_pass, pr.E.pr_elapsed_s)) r.E.r_passes
    in
    let report =
      Goobs.Profile.report ~top:10 registry pass_times
      ^ E.frontend_report ~top:10 engine
    in
    (* keep stdout pure JSON under --json *)
    if json then prerr_string report else print_string report
  end;
  if strict && unclean > 0 then begin
    Log.errorf
      "--strict: %d unit(s) did not complete at full fidelity (%s)" unclean
      (Goengine.Supervise.health_str r.E.r_health);
    exit 3
  end;
  if E.errors r <> [] then exit 1

let run files no_disentangle stats_flag nonblocking model_waitgroup json only
    list_flag jobs solver_timeout_ms solver_poll_conflicts cache_dir no_cache
    trace_out metrics_out profile log_level inject_faults deadline_ms
    max_heap_mb strict retry_rungs server obs =
  try
    run_checked files no_disentangle stats_flag nonblocking model_waitgroup
      json only list_flag jobs solver_timeout_ms solver_poll_conflicts
      cache_dir no_cache trace_out metrics_out profile log_level inject_faults
      deadline_ms max_heap_mb strict retry_rungs server obs
  with e ->
    Log.error
      ~kv:[ ("exception", Printexc.to_string e) ]
      "internal error";
    exit 3

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"MiniGo source files")

let no_disentangle_arg =
  Arg.(
    value & flag
    & info [ "no-disentangle" ]
        ~doc:"Disable the disentangling policy (whole-program analysis)")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print per-pass statistics")

let nonblocking_arg =
  Arg.(
    value & flag
    & info [ "nonblocking" ]
        ~doc:
          "Also run the non-blocking misuse-of-channel checkers \
           (send-on-closed, double close)")

let model_waitgroup_arg =
  Arg.(
    value & flag
    & info [ "model-waitgroup" ]
        ~doc:"Model WaitGroup Add/Done/Wait in the constraint system")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the unified diagnostics and per-pass stats as JSON")

let pass_arg =
  Arg.(
    value & opt_all string []
    & info [ "pass" ] ~docv:"NAME"
        ~doc:
          "Run only the named pass (repeatable); see $(b,--list-passes) for \
           names")

let list_passes_arg =
  Arg.(
    value & flag
    & info [ "list-passes" ] ~doc:"List the registered detector passes")

let jobs_arg =
  Arg.(
    value
    & opt int (Goengine.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan detector work out over $(docv) domains (default: the \
           GCATCH_JOBS environment variable or the hardware's recommended \
           domain count). Output is identical for every N.")

let solver_timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "solver-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-channel constraint-solving budget; a channel exceeding it is \
           skipped with a warning instead of stalling the run")

let solver_poll_arg =
  Arg.(
    value
    & opt int
        Gcatch.Pathenum.default_config.Gcatch.Pathenum.solver_poll_conflicts
    & info [ "solver-poll-conflicts" ] ~docv:"N"
        ~doc:
          "Poll the solver-budget deadline (and yield to the task scheduler) \
           every $(docv) SAT conflicts. Smaller values make a long solve \
           more responsive to budgets and task switching at slightly higher \
           polling overhead; the verdicts are identical for every N.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) (Sys.getenv_opt "GCATCH_CACHE_DIR")
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the per-channel solve cache in $(docv) across runs \
           (default: the GCATCH_CACHE_DIR environment variable). Entries are \
           content-addressed by the canonical per-channel problem, so a warm \
           run reproduces the cold run's diagnostics byte for byte; \
           corrupted or stale entries are dropped and recomputed.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-solve-cache" ]
        ~doc:"Disable the per-channel solve cache (memory and disk tiers)")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable span tracing and write a Chrome trace-event JSON to \
           $(docv) (loadable in Perfetto or chrome://tracing; one track per \
           domain)")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry to $(docv) in Prometheus text format \
           (JSON when $(docv) ends in .json)")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print an end-of-run profile: per-pass and per-stage wall times, \
           the slowest channels with their solver statistics, and histogram \
           p50/p95/max summaries")

let log_level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Log verbosity: debug, info, warn, error, or quiet (default: the \
           GCATCH_LOG environment variable, else warn)")

let inject_faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-faults" ] ~docv:"PLAN"
        ~doc:
          "Deterministic fault injection for testing the supervision layer. \
           $(docv) is a comma-separated list of \
           $(i,site)[:$(i,nth)|*][@$(i,keysub)][!$(i,action)] items plus an \
           optional seed=$(i,N); sites: frontend, solver, pool, cache.read, \
           cache.write, conn.accept, conn.read, conn.write, snapshot.read, \
           snapshot.write; actions: raise (default), timeout, stall, \
           corrupt. Also read from the GCATCH_FAULTS environment variable.")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Global wall-clock deadline: once it passes, no new unit of work \
           starts; everything gathered so far is flushed normally and \
           reported in the analysis-health section")

let max_heap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-heap-mb" ] ~docv:"MB"
        ~doc:
          "Heap watchdog: when the major heap exceeds $(docv) MB, stop \
           starting new units and flush partial results (checked at the end \
           of every major GC cycle)")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Fail fast for CI: exit 3 when any unit of work was degraded, \
           skipped, or retried instead of completing at full fidelity")

let server_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "server" ] ~docv:"ADDR"
        ~doc:
          "Route the analysis through a running $(b,gcatchd) at $(docv) \
           (HOST:PORT, or a Unix-socket path) instead of analysing \
           locally. Output and exit codes match local mode; local-only \
           flags (caching, observability, watchdogs) are governed by the \
           daemon's configuration.")

let retry_arg =
  Arg.(
    value & opt int 5
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "With $(b,--server): attempt the request up to $(docv) times, \
           retrying connection failures, truncated responses and 429/503 \
           back-pressure (honoring Retry-After) with capped exponential \
           backoff; 1 disables retries")

let retry_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "retry-seed" ] ~docv:"N"
        ~doc:
          "Seed for the retry backoff's deterministic jitter: two runs \
           with the same seed sleep the same schedule")

let retry_rungs_arg =
  Arg.(
    value
    & opt int Gcatch.Bmoc.default_config.Gcatch.Bmoc.retry_rungs
    & info [ "retry-rungs" ] ~docv:"N"
        ~doc:
          "Degradation-ladder depth: how many times a channel that exhausts \
           its solver budget is retried at reduced path/combination bounds \
           before being skipped (0 disables the ladder; only meaningful with \
           $(b,--solver-timeout-ms))")

let telemetry_addr_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-addr" ] ~docv:"HOST:PORT"
        ~doc:
          "Serve live telemetry over HTTP while the run is in flight: \
           $(b,/metrics) (Prometheus text), $(b,/healthz) (health ledger + \
           watchdog state, 200/503), $(b,/vars) (build, cache, scheduler and \
           span state as JSON), $(b,/profile) (the $(b,--profile) report on \
           demand). Port 0 picks an ephemeral port. The server is read-only: \
           diagnostics are byte-identical with it on or off.")

let telemetry_sock_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-sock" ] ~docv:"PATH"
        ~doc:
          "Serve the same telemetry endpoints on a Unix-domain socket at \
           $(docv) (usable together with $(b,--telemetry-addr))")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Append a schema-versioned JSONL event stream to $(docv): stage, \
           pass and channel lifecycle, cache hits/misses, retries, faults, \
           and final diagnostics digests. Flushed per event, so a killed run \
           leaves a usable ledger; reconstruct a summary offline with \
           $(b,gcatch report) $(docv).")

let sample_hz_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample-hz" ] ~docv:"N"
        ~doc:
          "Sampling wall-clock profiler: a ticker domain samples every \
           domain's open-span spine $(docv) times a second into a \
           stack-count table, reported as a top-N table under \
           $(b,--profile) and exportable with $(b,--samples-out)")

let samples_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "samples-out" ] ~docv:"FILE"
        ~doc:
          "Write the sampling profiler's stack counts to $(docv) in \
           collapsed-stack format (one \"frame;frame;frame count\" line per \
           distinct stack — pipe through flamegraph.pl for a flamegraph)")

let log_json_arg =
  Arg.(
    value & flag
    & info [ "log-json" ]
        ~doc:
          "Emit each log line as one JSON object (ts_ms, level, msg, plus \
           the event's key=value fields) instead of the human text format")

let obs_term =
  let mk o_telemetry_addr o_telemetry_sock o_journal o_sample_hz o_samples_out
      o_log_json =
    {
      o_telemetry_addr;
      o_telemetry_sock;
      o_journal;
      o_sample_hz;
      o_samples_out;
      o_log_json;
    }
  in
  Term.(
    const mk $ telemetry_addr_arg $ telemetry_sock_arg $ journal_arg
    $ sample_hz_arg $ samples_out_arg $ log_json_arg)

let exits =
  [
    Cmd.Exit.info 0 ~doc:"no bugs found.";
    Cmd.Exit.info 1 ~doc:"bugs were found (or the frontend reported errors).";
    Cmd.Exit.info 2
      ~doc:
        "usage error: bad command line, no input files, unknown pass, or a \
         malformed $(b,--inject-faults) plan.";
    Cmd.Exit.info 3
      ~doc:
        "internal error, or $(b,--strict) and some unit of work did not \
         complete at full fidelity.";
  ]

let analyse_term =
  Term.(
    const run $ files_arg $ no_disentangle_arg $ stats_arg $ nonblocking_arg
    $ model_waitgroup_arg $ json_arg $ pass_arg $ list_passes_arg $ jobs_arg
    $ solver_timeout_arg $ solver_poll_arg $ cache_dir_arg $ no_cache_arg
    $ trace_out_arg
    $ metrics_out_arg $ profile_arg $ log_level_arg $ inject_faults_arg
    $ deadline_arg $ max_heap_arg $ strict_arg $ retry_rungs_arg $ server_arg
    $ retry_arg $ retry_seed_arg $ obs_term)

(* gcatch report FILE.jsonl — offline reconstruction of the profile and
   health summary from a run journal, including one truncated by a
   killed run (the valid prefix is the record). *)
let run_report path =
  match Goobs.Journal.summarize_file path with
  | sum -> print_string (Goobs.Journal.report sum)
  | exception Sys_error e ->
      Log.errorf "cannot read journal: %s" e;
      exit 2

let report_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.jsonl" ~doc:"Run journal written by --journal")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Reconstruct the profile/health summary from a --journal event \
          stream, offline"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"summary printed.";
           Cmd.Exit.info 2 ~doc:"usage error or unreadable journal.";
         ])
    Term.(const run_report $ file_arg)

let cmd =
  Cmd.group ~default:analyse_term
    (Cmd.info "gcatch" ~doc:"Statically detect Go concurrency bugs" ~exits)
    [ report_cmd ]

let () =
  let code = Cmd.eval cmd in
  (* cmdliner's own conventions (124 cli error, 125 internal) mapped onto
     the documented 2/3 *)
  exit
    (if code = Cmd.Exit.cli_error then 2
     else if code = Cmd.Exit.internal_error then 3
     else code)
