(* minigo-run — execute a MiniGo program on the effects-based runtime.

     minigo-run file.go                  # run main() once
     minigo-run --seeds 50 file.go       # explore 50 schedules, report leaks
     minigo-run --entry TestFoo file.go  # run another entry point *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run files seeds entry =
  if files = [] then (
    Goobs.Log.error "no input files";
    exit 2);
  let sources = List.map read_file files in
  let prog =
    Minigo.Typecheck.check_program (Minigo.Parser.parse_program ~name:"run" sources)
  in
  if seeds <= 1 then begin
    let r = Goruntime.Interp.run ~entry prog in
    List.iter print_endline r.output;
    List.iter
      (fun (gid, name, reason, loc) ->
        Printf.printf "LEAK: goroutine %d (%s) blocked on %s at %s\n" gid name
          reason (Minigo.Loc.to_string loc))
      r.leaked;
    List.iter (fun (gid, m) -> Printf.printf "PANIC in goroutine %d: %s\n" gid m) r.panics;
    Printf.printf "%d steps, %d goroutines, %d completed%s\n" r.steps r.spawned
      r.completed
      (if r.fuel_exhausted then " (fuel exhausted)" else "");
    if r.leaked <> [] then exit 1
  end
  else begin
    let n, leaks, max_steps, _ = Goruntime.Interp.run_schedules ~seeds ~entry prog in
    Printf.printf "%d/%d schedules leaked a goroutine (max %d steps)\n" leaks n
      max_steps;
    if leaks > 0 then exit 1
  end

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"MiniGo source files")

let seeds_arg =
  Arg.(value & opt int 1 & info [ "seeds" ] ~doc:"Number of schedules to explore")

let entry_arg =
  Arg.(value & opt string "main" & info [ "entry" ] ~doc:"Entry function")

let cmd =
  Cmd.v
    (Cmd.info "minigo-run" ~doc:"Run MiniGo programs on the goroutine scheduler")
    Term.(const run $ files_arg $ seeds_arg $ entry_arg)

let () = exit (Cmd.eval cmd)
