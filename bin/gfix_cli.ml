(* gfix — detect BMOC bugs and print a patched program.

     gfix file.go                 # print the patched source
     gfix --validate file.go      # additionally run both versions under
                                  # many schedules and compare leaks

   GFix rides on the staged analysis engine: one [Engine.t] compiles
   the sources and runs the BMOC pass; the typed AST it needs for
   patching comes from the same cached artifacts, so preprocessing is
   shared with detection instead of re-run (the paper's §5.3 point that
   ~98% of GFix time is preprocessing). *)

open Cmdliner
module E = Goengine.Engine
module D = Goengine.Diagnostics
module Log = Goobs.Log

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_checked files validate jobs solver_poll_conflicts journal log_json =
  (* gfix narrates its per-bug outcomes by design: default to info-level
     logging unless the user set GCATCH_LOG themselves *)
  if Sys.getenv_opt "GCATCH_LOG" = None then Log.set_level Log.Info;
  if log_json then Log.set_format Log.Json;
  (match journal with
  | None -> ()
  | Some path ->
      Goobs.Journal.open_ ~path;
      at_exit Goobs.Journal.close);
  if files = [] then (
    Log.error "no input files";
    exit 2);
  let sources = List.map read_file files in
  let cfg =
    {
      Gcatch.Bmoc.default_config with
      path_cfg =
        { Gcatch.Pathenum.default_config with solver_poll_conflicts };
    }
  in
  let engine = Gcatch.Passes.engine ~cfg ~jobs () in
  let r = E.analyse ~only:[ "bmoc" ] engine ~name:"cli" sources in
  if E.frontend_failed r then begin
    List.iter (fun d -> prerr_endline (D.render_human d)) r.E.r_diags;
    exit 2
  end;
  let artifacts = Option.get r.E.r_artifacts in
  let source = Lazy.force artifacts.E.a_typed in
  let bmoc = Gcatch.Passes.bmoc_bugs r.E.r_diags in
  let fixes = Gcatch.Gfix.fix_all source bmoc in
  List.iter
    (fun (_bug, outcome) ->
      match outcome with
      | Gcatch.Gfix.Fixed f ->
          Log.info
            ~kv:
              [
                ("strategy", Gcatch.Gfix.strategy_str f.strategy);
                ("changed_lines", string_of_int f.changed_lines);
              ]
            (Printf.sprintf "fixed: %s" f.description)
      | Gcatch.Gfix.Not_fixed reason ->
          Log.info (Printf.sprintf "not fixed: %s" reason))
    fixes;
  (* Multiple bugs in one file compose: re-analyse and fix to a fixpoint. *)
  let final = Gcatch.Gfix.fix_to_fixpoint source fixes in
  print_string (Minigo.Pretty.program_str final);
  if validate && Minigo.Ast.find_func source "main" <> None then begin
    let seeds = 30 in
    let _, leaks_before, _, _ = Goruntime.Interp.run_schedules ~seeds source in
    let _, leaks_after, _, _ = Goruntime.Interp.run_schedules ~seeds final in
    Log.info
      ~kv:
        [
          ("leaked_before", Printf.sprintf "%d/%d" leaks_before seeds);
          ("leaked_after", Printf.sprintf "%d/%d" leaks_after seeds);
        ]
      "schedule validation"
  end

(* No raw exception may escape to the runtime's default handler: route
   everything through the structured log with the documented exit 3. *)
let run files validate jobs solver_poll_conflicts journal log_json =
  try run_checked files validate jobs solver_poll_conflicts journal log_json
  with e ->
    Log.error ~kv:[ ("exception", Printexc.to_string e) ] "internal error";
    exit 3

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"MiniGo source files")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:"Run the original and patched programs under many schedules")

let jobs_arg =
  Arg.(
    value
    & opt int (Goengine.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan the detection pass out over $(docv) domains (default: the \
           GCATCH_JOBS environment variable or the hardware's recommended \
           domain count). The patched output is identical for every N.")

let solver_poll_arg =
  Arg.(
    value
    & opt int
        Gcatch.Pathenum.default_config.Gcatch.Pathenum.solver_poll_conflicts
    & info [ "solver-poll-conflicts" ] ~docv:"N"
        ~doc:
          "Poll the solver-budget deadline (and yield to the task scheduler) \
           every $(docv) SAT conflicts.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Append the run's JSONL event journal to $(docv) (same schema as \
           gcatch's $(b,--journal); summarise with $(b,gcatch report))")

let log_json_arg =
  Arg.(
    value & flag
    & info [ "log-json" ]
        ~doc:
          "Emit each log line as one JSON object (ts_ms, level, msg, plus \
           key=value fields) instead of the human text format")

let exits =
  [
    Cmd.Exit.info 0 ~doc:"patched program printed.";
    Cmd.Exit.info 2
      ~doc:"usage error: bad command line, no input files, or frontend errors.";
    Cmd.Exit.info 3 ~doc:"internal error.";
  ]

let cmd =
  Cmd.v
    (Cmd.info "gfix" ~doc:"Automatically patch BMOC bugs" ~exits)
    Term.(
      const run $ files_arg $ validate_arg $ jobs_arg $ solver_poll_arg
      $ journal_arg $ log_json_arg)

let () =
  let code = Cmd.eval cmd in
  exit
    (if code = Cmd.Exit.cli_error then 2
     else if code = Cmd.Exit.internal_error then 3
     else code)
