(* Parallel incremental frontend tests (PR 7): a one-file edit
   recompiles exactly one file, AST interning round-trips, diagnostics
   are byte-identical at any job count, per-file artifacts survive a
   process restart through the disk tier, and a per-file frontend fault
   only recompiles the stubbed file on the salvage retry. *)

module E = Goengine.Engine
module D = Goengine.Diagnostics
module F = Goengine.Faults
module P = Goengine.Pool

let fig1_body =
  "(ctx context.Context, r string) (string, error) {\n\
   \toutDone := make(chan error)\n\
   \tgo func(a string) {\n\t\toutDone <- nil\n\t}(r)\n\
   \tselect {\n\
   \tcase err := <-outDone:\n\t\tif err != nil {\n\t\t\treturn \"\", err\n\t\t}\n\
   \tcase <-ctx.Done():\n\t\treturn \"\", ctx.Err()\n\
   \t}\n\
   \treturn \"ok\", nil\n\
   }\n"

let fig1 = "package p\nfunc Exec" ^ fig1_body
let helper1 = "package p\nfunc helperOne() {\n\tprintln(1)\n}\n"
let helper2 = "package p\nfunc helperTwo() {\n\tprintln(2)\n}\n"
let srcs = [ fig1; helper1; helper2 ]
let diags_json (r : E.run) = D.list_to_json r.E.r_diags
let counter = E.counter_value

let with_clean_faults f = Fun.protect ~finally:F.clear f

(* ------------------------------------------- per-file invalidation --- *)

(* Appending a trailing comment to one file must recompile that file and
   nothing else: every per-file stage counter moves by exactly one, the
   siblings are served from the memory tier, and (because the edit is
   semantically inert) the diagnostics do not change. *)
let test_one_file_edit_recompiles_one_file () =
  let e = Gcatch.Passes.engine () in
  let r1 = E.analyse e ~name:"incr" srcs in
  Alcotest.(check int) "cold: one lex per file" 3 (counter e "stage.lex.runs");
  Alcotest.(check int) "cold: one parse per file" 3
    (counter e "stage.parse.runs");
  Alcotest.(check int) "cold: one typecheck per file" 3
    (counter e "stage.typecheck.runs");
  Alcotest.(check int) "cold: one lower per file" 3
    (counter e "stage.lower.runs");
  let edited = [ fig1; helper1; helper2 ^ "// trailing edit\n" ] in
  let r2 = E.analyse e ~name:"incr" edited in
  Alcotest.(check int) "warm: exactly one re-lex" 4 (counter e "stage.lex.runs");
  Alcotest.(check int) "warm: exactly one re-parse" 4
    (counter e "stage.parse.runs");
  Alcotest.(check int) "warm: exactly one re-typecheck" 4
    (counter e "stage.typecheck.runs");
  Alcotest.(check int) "warm: exactly one re-lower" 4
    (counter e "stage.lower.runs");
  Alcotest.(check bool) "siblings hit the memory tier" true
    (counter e "engine.file_mem_hit" > 0);
  Alcotest.(check string) "comment edit keeps diagnostics byte-identical"
    (diags_json r1) (diags_json r2)

(* A signature edit invalidates the typed/lowered tiers of every file
   (the environment fingerprint changed) but still re-parses only the
   edited file. *)
let test_signature_edit_reparses_one_file () =
  let e = Gcatch.Passes.engine () in
  let _ = E.analyse e ~name:"sig" srcs in
  let edited =
    [ fig1; helper1; "package p\nfunc helperTwo(x int) {\n\tprintln(x)\n}\n" ]
  in
  let _ = E.analyse e ~name:"sig" edited in
  Alcotest.(check int) "one re-parse" 4 (counter e "stage.parse.runs");
  Alcotest.(check int) "all files re-typechecked" 6
    (counter e "stage.typecheck.runs")

let test_signature_fingerprint () =
  let fp srcs =
    Minigo.Typecheck.signature_fingerprint
      (Minigo.Parser.parse_program ~name:"fp" srcs)
  in
  let base = fp [ helper1 ] in
  Alcotest.(check string) "body edit keeps the fingerprint" base
    (fp [ "package p\nfunc helperOne() {\n\tprintln(42)\n}\n" ]);
  Alcotest.(check bool) "signature edit changes the fingerprint" true
    (base <> fp [ "package p\nfunc helperOne(x int) {\n\tprintln(x)\n}\n" ])

(* ---------------------------------------------------------- intern --- *)

(* Interning must be a semantic no-op: the rebuilt AST is structurally
   equal and pretty-prints byte-identically, while equal atoms from
   different physical buffers collapse to one pooled instance. *)
let test_intern_round_trip () =
  let prog = Minigo.Parser.parse_program ~name:"intern" srcs in
  let interned = Minigo.Intern.program prog in
  Alcotest.(check bool) "structurally equal" true (interned = prog);
  Alcotest.(check string) "pretty-prints identically"
    (Minigo.Pretty.program_str prog)
    (Minigo.Pretty.program_str interned);
  let a = Minigo.Intern.str (String.concat "" [ "out"; "Done" ]) in
  let b = Minigo.Intern.str (String.concat "" [ "outD"; "one" ]) in
  Alcotest.(check bool) "equal strings share one pooled instance" true (a == b);
  let st = Minigo.Intern.stats () in
  Alcotest.(check bool) "pool has entries" true (st.Minigo.Intern.st_strings > 0);
  Alcotest.(check bool) "pool served hits" true (st.Minigo.Intern.st_hits > 0)

(* ------------------------------------------------ jobs determinism --- *)

let test_jobs_identical_diagnostics () =
  let run jobs =
    diags_json (E.analyse (Gcatch.Passes.engine ~jobs ()) ~name:"par" srcs)
  in
  Alcotest.(check string) "jobs=1 and jobs=4 byte-identical" (run 1) (run 4)

(* [Pool.map ?grain] must keep input order and raise the
   smallest-failing-index exception regardless of chunking. *)
let test_pool_map_grain () =
  let pool = P.get ~jobs:4 in
  let xs = List.init 37 Fun.id in
  Alcotest.(check (list int)) "order preserved under chunking"
    (List.map succ xs)
    (P.map ~pool ~grain:5 succ xs);
  match
    P.map ~pool ~grain:4
      (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i)
      xs
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m ->
      Alcotest.(check string) "smallest failing index wins" "3" m

(* ------------------------------------------------------- disk tier --- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* A fresh engine (fresh process in real life) pointed at the same
   --cache-dir re-reads sibling artifacts from disk: a one-file edit
   costs one lex/parse/typecheck even with empty memory tiers, and the
   diagnostics match the cold run byte for byte. *)
let test_disk_cache_warm_restart () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcatch-fe-test-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  E.reset_disk_state ();
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { Gcatch.Bmoc.default_config with cache_dir = Some dir } in
  let r1 = E.analyse (Gcatch.Passes.engine ~cfg ()) ~name:"disk" srcs in
  Alcotest.(check bool) "cold run left artifacts on disk" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".fe")
       (Sys.readdir dir));
  let e2 = Gcatch.Passes.engine ~cfg () in
  let edited = [ fig1; helper1; helper2 ^ "// trailing edit\n" ] in
  let r2 = E.analyse e2 ~name:"disk" edited in
  Alcotest.(check int) "restart + edit: one lex" 1 (counter e2 "stage.lex.runs");
  Alcotest.(check int) "restart + edit: one parse" 1
    (counter e2 "stage.parse.runs");
  Alcotest.(check int) "restart + edit: one typecheck" 1
    (counter e2 "stage.typecheck.runs");
  Alcotest.(check bool) "siblings came from disk" true
    (counter e2 "engine.file_disk_hit" > 0);
  Alcotest.(check string) "diagnostics byte-identical across restart"
    (diags_json r1) (diags_json r2)

(* --------------------------------------------- per-file fault salvage --- *)

(* An injected fault in one file's frontend unit degrades that file and
   spares its siblings — and the salvage retry recompiles only the
   stubbed file, serving the siblings from the per-file memory tier. *)
let test_frontend_fault_salvages_per_file () =
  with_clean_faults @@ fun () ->
  (match F.parse "frontend@file1!raise" with
  | Ok specs -> F.set_plan specs
  | Error e -> Alcotest.fail e);
  let e = Gcatch.Passes.engine () in
  let r = E.analyse e ~name:"inj" [ fig1; helper1 ] in
  Alcotest.(check bool) "frontend survived" false (E.frontend_failed r);
  Alcotest.(check bool) "fault diagnostic present" true
    (List.exists (fun (d : D.t) -> d.D.pass = "frontend/fault") r.E.r_diags);
  Alcotest.(check int) "sibling's BMOC bug intact" 1
    (List.length (Gcatch.Passes.bmoc_bugs r.E.r_diags));
  (* attempt 1 lexes file0 and faults in file1; the retry recomputes
     only the stub, so each per-file counter moves three times total *)
  Alcotest.(check int) "lex ran per file, once more for the stub" 3
    (counter e "stage.lex.runs");
  Alcotest.(check int) "parse ran per file, once more for the stub" 3
    (counter e "stage.parse.runs");
  Alcotest.(check bool) "sibling served from the memory tier" true
    (counter e "engine.file_mem_hit" > 0)

let tests =
  [
    Alcotest.test_case "one-file edit recompiles one file" `Quick
      test_one_file_edit_recompiles_one_file;
    Alcotest.test_case "signature edit re-parses one file" `Quick
      test_signature_edit_reparses_one_file;
    Alcotest.test_case "signature fingerprint" `Quick
      test_signature_fingerprint;
    Alcotest.test_case "intern round-trip" `Quick test_intern_round_trip;
    Alcotest.test_case "jobs-identical diagnostics" `Quick
      test_jobs_identical_diagnostics;
    Alcotest.test_case "pool map grain" `Quick test_pool_map_grain;
    Alcotest.test_case "disk cache warm restart" `Quick
      test_disk_cache_warm_restart;
    Alcotest.test_case "frontend fault salvages per file" `Quick
      test_frontend_fault_salvages_per_file;
  ]
