(* Direct tests of the path-enumeration machinery (§3.3): loop bounds,
   call skipping and inlining, select branching, combination building,
   and the feasibility filters. *)

module Alias = Goanalysis.Alias
module P = Gcatch.Pathenum

let make_ctx ?(model_wg = false) src =
  let _, ir =
    Gcatch.Driver.compile_sources ~name:"pe" [ "package p\n" ^ src ]
  in
  let alias = Alias.analyse ir in
  let cg = Goanalysis.Callgraph.build ~alias ir in
  let prims = Gcatch.Primitives.collect ir alias in
  let pset =
    List.filter (function Alias.Achan _ -> true | _ -> false)
      (Gcatch.Primitives.channels prims)
  in
  let funcs = List.map (fun (f : Goir.Ir.func) -> f.name) (Goir.Ir.funcs_list ir) in
  {
    P.prog = ir;
    alias;
    cg;
    pset;
    scope_funcs = funcs;
    cfg = { P.default_config with model_waitgroup = model_wg };
    touch_memo = Hashtbl.create 8;
  }

let paths src fname = P.enumerate (make_ctx src) fname

let count_paths src fname = List.length (paths src fname)

let sync_kinds (p : P.path) =
  List.filter_map
    (fun (e : P.event) ->
      match e.e_desc with
      | Sync (Sop (k, _)) -> Some (Gcatch.Report.op_kind_str k)
      | Sync (Sselect { chosen; _ }) ->
          Some
            (match chosen with
            | Some i -> Printf.sprintf "select:%d" i
            | None -> "select:default")
      | Sync (Swg_add _) -> Some "wg-add"
      | _ -> None)
    p.p_events

let test_straight_line () =
  Alcotest.(check int) "one path" 1
    (count_paths "func f() {\n\tc := make(chan int, 1)\n\tc <- 1\n\t<-c\n}" "f")

let test_branch_doubles () =
  Alcotest.(check int) "two paths" 2
    (count_paths
       "func f(x int) {\n\tc := make(chan int, 1)\n\tif x > 0 {\n\t\tc <- 1\n\t} else {\n\t\tc <- 2\n\t}\n\t<-c\n}"
       "f")

let test_select_paths () =
  (* two arms plus a default = three paths *)
  Alcotest.(check int) "three paths" 3
    (count_paths
       "func f(a chan int, b chan int) {\n\tc := make(chan int, 1)\n\tc <- 1\n\tselect {\n\tcase <-a:\n\tcase <-b:\n\tdefault:\n\t}\n}"
       "f")

let test_loop_unrolled_twice () =
  (* an unconditional-count loop over a channel send: paths with 0, 1, 2
     iterations (the §3.3 bound) *)
  let n =
    count_paths
      "func f(n int) {\n\tc := make(chan int, 8)\n\tfor i := range n {\n\t\tc <- i\n\t}\n}"
      "f"
  in
  Alcotest.(check int) "0/1/2 iterations" 3 n

let test_callee_without_sync_skipped () =
  let ps =
    paths
      "func pure(x int) int {\n\treturn x + 1\n}\nfunc f() {\n\tc := make(chan int, 1)\n\tpure(3)\n\tc <- 1\n}"
      "f"
  in
  Alcotest.(check int) "one path, call ignored" 1 (List.length ps);
  Alcotest.(check (list string)) "only the send" [ "send" ]
    (sync_kinds (List.hd ps))

let test_callee_with_sync_inlined () =
  let ps =
    paths
      "func helper(c chan int) {\n\tc <- 1\n}\nfunc f() {\n\tc := make(chan int, 2)\n\thelper(c)\n\tc <- 2\n}"
      "f"
  in
  Alcotest.(check (list string)) "inlined send + own send" [ "send"; "send" ]
    (sync_kinds (List.hd ps))

let test_combinations_tree () =
  let ctx =
    make_ctx
      "func f() {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n\tgo func() {\n\t\tc <- 2\n\t}()\n\t<-c\n\t<-c\n}"
  in
  let combos = P.combinations ctx ~root:"f" ~max_combos:64 ~max_goroutines:6 in
  Alcotest.(check int) "one combination (straight-line paths)" 1
    (List.length combos);
  Alcotest.(check int) "three goroutines" 3 (List.length (List.hd combos))

let test_conflict_filter () =
  let ctx =
    make_ctx
      "func f(flag bool) {\n\tc := make(chan int, 1)\n\tif flag == true {\n\t\tc <- 1\n\t}\n\tif flag == true {\n\t\t<-c\n\t}\n}"
  in
  let combos = P.combinations ctx ~root:"f" ~max_combos:64 ~max_goroutines:4 in
  let feasible = List.filter (fun c -> not (P.has_conflicts c)) combos in
  (* four syntactic paths, two survive (true/true and false/false) *)
  Alcotest.(check int) "all four enumerated" 4 (List.length combos);
  Alcotest.(check int) "two feasible" 2 (List.length feasible)

let test_mutated_condition_not_filtered () =
  (* conditions over variables written twice are opaque; combinations
     taking both polarities survive (the FP source the paper documents) *)
  let ctx =
    make_ctx
      "func f(input int) {\n\tc := make(chan int, 1)\n\tmode := 0\n\tif input > 10 {\n\t\tmode = 1\n\t}\n\tif mode == 0 {\n\t\tc <- 1\n\t}\n\tif mode == 0 {\n\t\t<-c\n\t}\n}"
  in
  let combos = P.combinations ctx ~root:"f" ~max_combos:64 ~max_goroutines:4 in
  Alcotest.(check bool) "no combination filtered" true
    (List.for_all (fun c -> not (P.has_conflicts c)) combos)

let test_path_cap_respected () =
  (* 2^12 syntactic paths; the enumerator must stop at the cap *)
  let branches =
    String.concat ""
      (List.init 12 (fun i ->
           Printf.sprintf "\tif x > %d {\n\t\tc <- %d\n\t}\n" i i))
  in
  let src =
    "func f(x int) {\n\tc := make(chan int, 100)\n" ^ branches ^ "}"
  in
  let n = count_paths src "f" in
  Alcotest.(check bool) "capped" true
    (n <= P.default_config.max_paths + 1)

let test_wg_events_gated () =
  let src =
    "func f() {\n\tvar wg sync.WaitGroup\n\tc := make(chan int, 1)\n\twg.Add(1)\n\twg.Done()\n\twg.Wait()\n\tc <- 1\n}"
  in
  let without = paths src "f" in
  Alcotest.(check (list string)) "wg invisible by default" [ "send" ]
    (sync_kinds (List.hd without));
  let ctx = make_ctx ~model_wg:true src in
  (* waitgroups are only relevant when in pset; give it the wg object *)
  let prims =
    Gcatch.Primitives.collect ctx.P.prog ctx.P.alias
  in
  let wg_objs =
    Hashtbl.fold
      (fun obj kind acc ->
        if kind = Gcatch.Primitives.Pwaitgroup then obj :: acc else acc)
      prims.kinds []
  in
  let ctx = { ctx with P.pset = ctx.P.pset @ wg_objs } in
  let with_wg = P.enumerate ctx "f" in
  Alcotest.(check (list string)) "wg events with the extension"
    [ "wg-add"; "wg-done"; "wg-wait"; "send" ]
    (sync_kinds (List.hd with_wg))

(* -------------------------------------- dedup & scaling (PR 4) ---- *)

let test_dedup_drops_branch_only_variants () =
  (* the branch only changes a local computation: both paths project to
     the same sync skeleton, so dedup keeps exactly one combination *)
  let ctx =
    make_ctx
      "func f(x int) {\n\tc := make(chan int, 1)\n\ty := 0\n\tif x > 0 {\n\t\ty = 1\n\t}\n\tc <- y\n\t<-c\n}"
  in
  let combos = P.combinations ctx ~root:"f" ~max_combos:64 ~max_goroutines:4 in
  Alcotest.(check int) "two syntactic combinations" 2 (List.length combos);
  let indexed = List.mapi (fun i c -> (i, c)) combos in
  let kept, dropped = P.dedup_combinations indexed in
  Alcotest.(check int) "one survivor" 1 (List.length kept);
  Alcotest.(check int) "one dropped" 1 dropped;
  (* the first of the equivalence class survives, original index intact *)
  Alcotest.(check int) "survivor is the first" 0 (fst (List.hd kept))

let test_dedup_keeps_distinct_sync () =
  (* here the branch gates a send: the projections differ, so dedup must
     not merge them — a buggy witness lives in exactly one of them *)
  let ctx =
    make_ctx
      "func f(x int) {\n\tc := make(chan int, 1)\n\tif x > 0 {\n\t\tc <- 1\n\t}\n\t<-c\n}"
  in
  let combos = P.combinations ctx ~root:"f" ~max_combos:64 ~max_goroutines:4 in
  let indexed = List.mapi (fun i c -> (i, c)) combos in
  let kept, dropped = P.dedup_combinations indexed in
  Alcotest.(check int) "nothing dropped" 0 dropped;
  Alcotest.(check int) "all kept" (List.length combos) (List.length kept)

let test_enumeration_scales_linearly () =
  (* regression guard for the O(n^2) accumulator bugs: enumerating one
     straight-line path of k sync events must scale roughly linearly in
     k.  A 4x longer function may cost ~4x; the old quadratic append
     made it ~16x.  Timed as best-of-3 with a generous bound plus an
     absolute slack so scheduler noise cannot fail the suite. *)
  let time_enum n =
    let b = Buffer.create (n * 16) in
    Buffer.add_string b "func f() {\n\tc := make(chan int, 4)\n";
    for _ = 1 to n do
      Buffer.add_string b "\tc <- 1\n\t<-c\n"
    done;
    Buffer.add_string b "}\n";
    let ctx = make_ctx (Buffer.contents b) in
    let ctx =
      { ctx with P.cfg = { ctx.P.cfg with P.max_events = (8 * n) + 64 } }
    in
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let ps = P.enumerate ctx "f" in
      best := min !best (Unix.gettimeofday () -. t0);
      Alcotest.(check int) "single straight-line path" 1 (List.length ps)
    done;
    !best
  in
  let t1 = time_enum 1000 in
  let t4 = time_enum 4000 in
  Alcotest.(check bool)
    (Printf.sprintf "4x events cost <= ~4x time (%.1fms -> %.1fms)"
       (t1 *. 1e3) (t4 *. 1e3))
    true
    (t4 <= (12.0 *. t1) +. 0.02)

let tests =
  [
    Alcotest.test_case "straight line" `Quick test_straight_line;
    Alcotest.test_case "branch doubles paths" `Quick test_branch_doubles;
    Alcotest.test_case "select paths" `Quick test_select_paths;
    Alcotest.test_case "loop unrolled twice" `Quick test_loop_unrolled_twice;
    Alcotest.test_case "sync-free callee skipped" `Quick
      test_callee_without_sync_skipped;
    Alcotest.test_case "sync-bearing callee inlined" `Quick
      test_callee_with_sync_inlined;
    Alcotest.test_case "combination tree" `Quick test_combinations_tree;
    Alcotest.test_case "conflicting conditions filtered" `Quick
      test_conflict_filter;
    Alcotest.test_case "mutated conditions opaque" `Quick
      test_mutated_condition_not_filtered;
    Alcotest.test_case "path cap respected" `Quick test_path_cap_respected;
    Alcotest.test_case "WaitGroup events gated by flag" `Quick
      test_wg_events_gated;
    Alcotest.test_case "dedup drops branch-only variants" `Quick
      test_dedup_drops_branch_only_variants;
    Alcotest.test_case "dedup keeps distinct sync" `Quick
      test_dedup_keeps_distinct_sync;
    Alcotest.test_case "enumeration scales linearly" `Slow
      test_enumeration_scales_linearly;
  ]
