(* Staged-engine tests: structured diagnostics for malformed input (no
   escaping exceptions), artifact cache-hit behaviour on repeated
   analysis, pass selection, and the JSON renderer. *)

module E = Goengine.Engine
module D = Goengine.Diagnostics

let fig1 =
  "package p\n\
   func Exec(ctx context.Context, r string) (string, error) {\n\
   \toutDone := make(chan error)\n\
   \tgo func(a string) {\n\t\toutDone <- nil\n\t}(r)\n\
   \tselect {\n\
   \tcase err := <-outDone:\n\t\tif err != nil {\n\t\t\treturn \"\", err\n\t\t}\n\
   \tcase <-ctx.Done():\n\t\treturn \"\", ctx.Err()\n\
   \t}\n\
   \treturn \"ok\", nil\n\
   }"

let clean = "package p\nfunc main() {\n\tprintln(1)\n}\n"
let parse_error_src = "package p\nfunc main( {}\n"
let type_error_src = "package p\nfunc main() {\n\tx := 1 + \"s\"\n\tprintln(x)\n}\n"

let analyse ?only ?extra engine src =
  E.analyse ?only ?extra engine ~name:"t" [ src ]

let passes_of (d : D.t list) = List.map (fun (d : D.t) -> d.D.pass) d

(* ---- structured diagnostics instead of exceptions ---- *)

let test_parse_error_diag () =
  let engine = Gcatch.Passes.engine () in
  let r = analyse engine parse_error_src in
  Alcotest.(check bool) "frontend failed" true (E.frontend_failed r);
  Alcotest.(check int) "one diagnostic" 1 (List.length r.E.r_diags);
  let d = List.hd r.E.r_diags in
  Alcotest.(check string) "pass" "frontend/parse" d.D.pass;
  Alcotest.(check bool) "severity error" true (D.is_error d);
  Alcotest.(check bool) "has a location" true (d.D.loc <> None);
  Alcotest.(check bool) "no passes ran" true (r.E.r_passes = [])

let test_type_error_diag () =
  let engine = Gcatch.Passes.engine () in
  let r = analyse engine type_error_src in
  Alcotest.(check bool) "frontend failed" true (E.frontend_failed r);
  let d = List.hd r.E.r_diags in
  Alcotest.(check string) "pass" "frontend/typecheck" d.D.pass

let test_clean_run () =
  let engine = Gcatch.Passes.engine () in
  let r = analyse engine clean in
  Alcotest.(check bool) "frontend ok" false (E.frontend_failed r);
  Alcotest.(check int) "no diagnostics" 0 (List.length r.E.r_diags);
  (* every default pass ran: bmoc + the five traditional checkers *)
  Alcotest.(check int) "six default passes" 6 (List.length r.E.r_passes)

let test_bug_diag_payload () =
  let engine = Gcatch.Passes.engine () in
  let r = analyse engine fig1 in
  let bmoc = Gcatch.Passes.bmoc_bugs r.E.r_diags in
  Alcotest.(check int) "one BMOC bug via payload" 1 (List.length bmoc);
  Alcotest.(check bool) "diag from the bmoc pass" true
    (List.mem "bmoc" (passes_of r.E.r_diags));
  let b = List.hd bmoc in
  Alcotest.(check int) "typed report intact" 1 (List.length b.Gcatch.Report.blocked)

(* ---- artifact cache ---- *)

let test_cache_hit_on_repeat () =
  let engine = Gcatch.Passes.engine () in
  let r1 = analyse engine fig1 in
  let r2 = analyse engine fig1 in
  let c = E.counter_value engine in
  (* the acceptance criterion: two analyses, exactly one frontend run;
     stage/cache counters are served from the engine's metrics registry *)
  Alcotest.(check int) "one lex" 1 (c "stage.lex.runs");
  Alcotest.(check int) "one parse" 1 (c "stage.parse.runs");
  Alcotest.(check int) "one typecheck" 1 (c "stage.typecheck.runs");
  Alcotest.(check int) "one lower" 1 (c "stage.lower.runs");
  Alcotest.(check int) "one cache hit" 1 (c "engine.cache_hits");
  Alcotest.(check int) "one cache miss" 1 (c "engine.cache_misses");
  Alcotest.(check bool) "first run was cold" false r1.E.r_from_cache;
  Alcotest.(check bool) "second run was cached" true r2.E.r_from_cache;
  (* detector results are unaffected by caching *)
  Alcotest.(check int) "same diagnostics" (List.length r1.E.r_diags)
    (List.length r2.E.r_diags);
  (* a different source set is a fresh compile *)
  let _ = analyse engine clean in
  Alcotest.(check int) "second miss" 2 (E.counter_value engine "engine.cache_misses")

let test_cache_memoizes_errors () =
  let engine = Gcatch.Passes.engine () in
  let r1 = analyse engine parse_error_src in
  let r2 = analyse engine parse_error_src in
  (* the failing parse also runs exactly once; the memoized exception is
     re-rendered as the same diagnostic *)
  Alcotest.(check int) "one parse attempt" 1
    (E.counter_value engine "stage.parse.runs");
  Alcotest.(check int) "same message" 0
    (compare
       (List.map (fun (d : D.t) -> d.D.message) r1.E.r_diags)
       (List.map (fun (d : D.t) -> d.D.message) r2.E.r_diags))

let test_driver_shim_shares_compile () =
  (* the legacy Driver API rides the same engine machinery: two analyses
     through one engine compile once, detect twice *)
  let engine = E.create () in
  let a1 = Gcatch.Driver.analyse_with engine ~name:"d" [ fig1 ] in
  let a2 = Gcatch.Driver.analyse_with engine ~name:"d" [ fig1 ] in
  Alcotest.(check int) "one parse" 1
    (E.counter_value engine "stage.parse.runs");
  Alcotest.(check bool) "same compiled IR shared" true (a1.ir == a2.ir);
  Alcotest.(check int) "same findings" (List.length a1.bmoc)
    (List.length a2.bmoc)

(* ---- pass registry ---- *)

let test_pass_selection () =
  let engine = Gcatch.Passes.engine () in
  let r = analyse ~only:[ "trad.fatal-child" ] engine fig1 in
  Alcotest.(check int) "one pass ran" 1 (List.length r.E.r_passes);
  Alcotest.(check int) "bmoc not run, no diags" 0 (List.length r.E.r_diags);
  (* nonblocking is off by default and can be opted in *)
  let r2 = analyse ~extra:[ "nonblocking" ] engine fig1 in
  Alcotest.(check int) "seven passes with extra" 7 (List.length r2.E.r_passes)

let test_unknown_pass_rejected () =
  (* a typo'd pass name must not silently select zero passes and report
     the sources clean *)
  let engine = Gcatch.Passes.engine () in
  Alcotest.check_raises "unknown name in only"
    (Invalid_argument "Engine.analyse: unknown pass \"no-such-pass\"")
    (fun () -> ignore (analyse ~only:[ "no-such-pass" ] engine fig1));
  Alcotest.check_raises "unknown name in extra"
    (Invalid_argument "Engine.analyse: unknown pass \"no-such-pass\"")
    (fun () -> ignore (analyse ~extra:[ "no-such-pass" ] engine fig1))

let test_duplicate_pass_rejected () =
  let engine = Gcatch.Passes.engine () in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Engine.register: duplicate pass bmoc") (fun () ->
      E.register engine (Gcatch.Passes.bmoc_pass ()))

(* ---- JSON rendering ---- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_json_output () =
  let engine = Gcatch.Passes.engine () in
  let r = analyse engine fig1 in
  let j = E.run_to_json r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json contains " ^ needle) true
        (contains ~needle j))
    [
      {|"frontend_ok":true|};
      {|"pass":"bmoc"|};
      {|"severity":"error"|};
      {|"bmoc.solver_calls"|};
      {|"line":3|};
    ];
  let rerr = analyse engine parse_error_src in
  let jerr = E.run_to_json rerr in
  Alcotest.(check bool) "error run marked" true
    (contains ~needle:{|"frontend_ok":false|} jerr);
  Alcotest.(check bool) "frontend pass named" true
    (contains ~needle:{|"pass":"frontend/parse"|} jerr)

let test_json_escaping () =
  let d = D.v ~pass:"p" "quote \" backslash \\ newline \n tab \t" in
  let j = D.to_json d in
  Alcotest.(check bool) "escaped" true
    (contains ~needle:{|quote \" backslash \\ newline \n tab \t|} j)

let tests =
  [
    Alcotest.test_case "parse error -> diagnostic" `Quick test_parse_error_diag;
    Alcotest.test_case "type error -> diagnostic" `Quick test_type_error_diag;
    Alcotest.test_case "clean run" `Quick test_clean_run;
    Alcotest.test_case "bug payload recovery" `Quick test_bug_diag_payload;
    Alcotest.test_case "cache hit on repeat" `Quick test_cache_hit_on_repeat;
    Alcotest.test_case "cache memoizes errors" `Quick test_cache_memoizes_errors;
    Alcotest.test_case "driver shim shares compile" `Quick
      test_driver_shim_shares_compile;
    Alcotest.test_case "pass selection" `Quick test_pass_selection;
    Alcotest.test_case "unknown pass rejected" `Quick
      test_unknown_pass_rejected;
    Alcotest.test_case "duplicate pass rejected" `Quick
      test_duplicate_pass_rejected;
    Alcotest.test_case "json output" `Quick test_json_output;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
  ]
