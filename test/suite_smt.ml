(* SMT solver tests: the CDCL core, difference logic, cardinalities, and
   DPLL(T) integration — including randomized cross-checks against brute
   force, since the whole BMOC detector rests on this solver. *)

module S = Gosmt.Solver
module E = Gosmt.Expr
module Sat = Gosmt.Sat
module D = Gosmt.Diff_logic

let is_sat = function S.Sat_model _ -> true | S.Unsat -> false

let check_sat name expected build =
  let t = S.create () in
  build t;
  Alcotest.(check bool) name expected (is_sat (S.solve t))

(* ---- pure SAT ---- *)

let test_sat_trivial () =
  check_sat "single positive" true (fun t -> S.add t (S.new_bool t "a"))

let test_sat_contradiction () =
  check_sat "a and not a" false (fun t ->
      S.add t (S.new_bool t "a");
      S.add t (E.not_ (S.new_bool t "a")))

let test_sat_implication_chain () =
  let t = S.create () in
  let a = S.new_bool t "a" and b = S.new_bool t "b" and c = S.new_bool t "c" in
  S.add t (E.implies a b);
  S.add t (E.implies b c);
  S.add t a;
  (match S.solve t with
  | S.Sat_model m ->
      Alcotest.(check bool) "c forced" true (m.bool_of "c");
      Alcotest.(check bool) "b forced" true (m.bool_of "b")
  | S.Unsat -> Alcotest.fail "should be sat")

let test_sat_iff () =
  check_sat "iff conflict" false (fun t ->
      let a = S.new_bool t "a" and b = S.new_bool t "b" in
      S.add t (E.iff a b);
      S.add t a;
      S.add t (E.not_ b))

let test_sat_pigeonhole () =
  (* 3 pigeons, 2 holes: classic small unsat *)
  let t = S.create () in
  let v i j = S.new_bool t (Printf.sprintf "p%dh%d" i j) in
  for i = 1 to 3 do
    S.add t (E.disj [ v i 1; v i 2 ])
  done;
  for j = 1 to 2 do
    S.add t (E.AtMost (1, [ v 1 j; v 2 j; v 3 j ]))
  done;
  Alcotest.(check bool) "pigeonhole unsat" false (is_sat (S.solve t))

(* ---- difference logic ---- *)

let test_dl_chain_model () =
  let t = S.create () in
  let vs = List.init 6 (fun i -> S.new_order_var t (string_of_int i)) in
  let rec chain = function
    | a :: (b :: _ as rest) ->
        S.add t (S.lt t a b);
        chain rest
    | _ -> ()
  in
  chain vs;
  match S.solve t with
  | S.Sat_model m ->
      let vals = List.map m.order_of vs in
      Alcotest.(check bool) "strictly increasing" true
        (List.for_all2 (fun a b -> a < b) (List.filteri (fun i _ -> i < 5) vals)
           (List.tl vals))
  | S.Unsat -> Alcotest.fail "chain should be sat"

let test_dl_cycle () =
  check_sat "3-cycle" false (fun t ->
      let x = S.new_order_var t "x"
      and y = S.new_order_var t "y"
      and z = S.new_order_var t "z" in
      S.add t (S.lt t x y);
      S.add t (S.lt t y z);
      S.add t (S.lt t z x))

let test_dl_eq_vs_lt () =
  check_sat "eq and lt conflict" false (fun t ->
      let x = S.new_order_var t "x" and y = S.new_order_var t "y" in
      S.add t (S.eq t x y);
      S.add t (S.lt t x y))

let test_dl_negated_atom () =
  (* not (x < y) must imply y <= x *)
  let t = S.create () in
  let x = S.new_order_var t "x" and y = S.new_order_var t "y" in
  S.add t (E.not_ (S.lt t x y));
  (match S.solve t with
  | S.Sat_model m ->
      Alcotest.(check bool) "y <= x" true (m.order_of y <= m.order_of x)
  | S.Unsat -> Alcotest.fail "should be sat")

let test_dl_guarded () =
  (* p -> x<y, q -> y<x, p|q sat; p&q unsat *)
  let t = S.create () in
  let x = S.new_order_var t "x" and y = S.new_order_var t "y" in
  let p = S.new_bool t "p" and q = S.new_bool t "q" in
  S.add t (E.implies p (S.lt t x y));
  S.add t (E.implies q (S.lt t y x));
  S.add t (E.disj [ p; q ]);
  Alcotest.(check bool) "disjunction sat" true (is_sat (S.solve t));
  let t2 = S.create () in
  let x = S.new_order_var t2 "x" and y = S.new_order_var t2 "y" in
  let p = S.new_bool t2 "p" and q = S.new_bool t2 "q" in
  S.add t2 (E.implies p (S.lt t2 x y));
  S.add t2 (E.implies q (S.lt t2 y x));
  S.add t2 p;
  S.add t2 q;
  Alcotest.(check bool) "conjunction unsat" false (is_sat (S.solve t2))

(* ---- incremental sessions: guards and assumptions ---- *)

let test_assumption_groups_independent () =
  (* two contradictory guarded groups in one instance: each is sat on its
     own, both together unsat, and an unsat query must not poison the
     shared state for later queries *)
  let t = S.create () in
  let x = S.new_order_var t "x" and y = S.new_order_var t "y" in
  let g1 = S.new_guard t and g2 = S.new_guard t in
  S.add ~guard:g1 t (S.lt t x y);
  S.add ~guard:g2 t (S.lt t y x);
  Alcotest.(check bool) "no assumptions sat" true (is_sat (S.solve t));
  (match S.solve ~assumptions:[ g1 ] t with
  | S.Sat_model m ->
      Alcotest.(check bool) "g1 orders x<y" true (m.order_of x < m.order_of y)
  | S.Unsat -> Alcotest.fail "g1 alone should be sat");
  (match S.solve ~assumptions:[ g2 ] t with
  | S.Sat_model m ->
      Alcotest.(check bool) "g2 orders y<x" true (m.order_of y < m.order_of x)
  | S.Unsat -> Alcotest.fail "g2 alone should be sat");
  Alcotest.(check bool) "g1+g2 unsat" false
    (is_sat (S.solve ~assumptions:[ g1; g2 ] t));
  (* the Unsat above was under assumptions only: g1 must still be sat *)
  Alcotest.(check bool) "g1 sat after unsat query" true
    (is_sat (S.solve ~assumptions:[ g1 ] t))

let test_retire_guard () =
  let t = S.create () in
  let a = S.new_bool t "a" in
  let g = S.new_guard t in
  S.add ~guard:g t (E.not_ a);
  S.add t a;
  Alcotest.(check bool) "contradiction under g" false
    (is_sat (S.solve ~assumptions:[ g ] t));
  S.retire_guard t g;
  S.simplify t;
  Alcotest.(check bool) "sat once g is retired" true (is_sat (S.solve t));
  (* retirement is permanent: assuming a retired guard is plain unsat *)
  Alcotest.(check bool) "retired guard cannot be assumed" false
    (is_sat (S.solve ~assumptions:[ g ] t));
  (* ... and still does not poison unassumed queries *)
  Alcotest.(check bool) "still sat without assumptions" true
    (is_sat (S.solve t))

let test_session_reuse_many_queries () =
  (* the BMOC usage pattern: one instance, many groups, each queried and
     retired in turn; every verdict must match a fresh-solver run *)
  let t = S.create () in
  let x = S.new_order_var t "x" and y = S.new_order_var t "y" in
  S.add t (S.lt t x y);
  for i = 0 to 19 do
    let g = S.new_guard t in
    (* even groups agree with the permanent x<y, odd ones contradict it *)
    S.add ~guard:g t (if i mod 2 = 0 then S.lt t x y else S.lt t y x);
    Alcotest.(check bool)
      (Printf.sprintf "group %d verdict" i)
      (i mod 2 = 0)
      (is_sat (S.solve ~assumptions:[ g ] t));
    S.retire_guard t g;
    if i mod 8 = 7 then S.simplify t
  done;
  Alcotest.(check bool) "session still usable" true (is_sat (S.solve t))

let test_sat_ext_stats () =
  (* a pigeonhole burn must surface in the extended counters that feed
     the sat.learnt_clauses / sat.restarts / sat.db_reductions metrics *)
  let t = S.create () in
  let v i j = S.new_bool t (Printf.sprintf "p%dh%d" i j) in
  for i = 1 to 6 do
    S.add t (E.disj (List.init 5 (fun j -> v i (j + 1))))
  done;
  for j = 1 to 5 do
    S.add t (E.AtMost (1, List.init 6 (fun i -> v (i + 1) j)))
  done;
  Alcotest.(check bool) "pigeonhole 6/5 unsat" false (is_sat (S.solve t));
  let conflicts, decisions, _ = S.sat_stats t in
  let learnt, restarts, reductions = S.sat_ext_stats t in
  Alcotest.(check bool) "conflicts counted" true (conflicts > 0);
  Alcotest.(check bool) "decisions counted" true (decisions > 0);
  Alcotest.(check bool) "learnt clauses counted" true (learnt > 0);
  Alcotest.(check bool) "restart/reduction counters sane" true
    (restarts >= 0 && reductions >= 0)

(* ---- cardinality ---- *)

let test_card_atmost_inside_or () =
  (* the regression that broke double-recv detection: a cardinality under
     a disjunction must NOT leak as a global constraint *)
  let t = S.create () in
  let x = S.new_order_var t "x" and y = S.new_order_var t "y" in
  let a = S.new_bool t "a" in
  (* either y < x (via cardinality: at most 0 of [not (y<x)]) or a *)
  S.add t (E.disj [ E.AtMost (0, [ E.not_ (S.lt t y x) ]); a ]);
  (* force x < y so the cardinality branch is false *)
  S.add t (S.lt t x y);
  (match S.solve t with
  | S.Sat_model m -> Alcotest.(check bool) "a chosen" true (m.bool_of "a")
  | S.Unsat -> Alcotest.fail "disjunction should rescue satisfiability")

let test_card_exactly () =
  let t = S.create () in
  let vs = List.init 5 (fun i -> S.new_bool t (string_of_int i)) in
  S.add t (E.Exactly (2, vs));
  (match S.solve t with
  | S.Sat_model m ->
      let n =
        List.length
          (List.filter (fun i -> m.bool_of (string_of_int i)) [ 0; 1; 2; 3; 4 ])
      in
      Alcotest.(check int) "exactly two true" 2 n
  | S.Unsat -> Alcotest.fail "should be sat")

let test_card_bounds () =
  check_sat "atleast too many" false (fun t ->
      let vs = List.init 3 (fun i -> S.new_bool t (string_of_int i)) in
      S.add t (E.AtLeast (4, vs)));
  check_sat "atmost negative" false (fun t ->
      let a = S.new_bool t "a" in
      S.add t (E.AtMost (-1, [ a ])))

(* ---- randomized cross-checks ---- *)

(* Brute-force satisfiability of difference constraints.  Solutions are
   shift-invariant, so pinning variable 0 at 0 and ranging the others over
   [0, sum |c|] is complete. *)
let brute_force_dl nvars (atoms : (int * int * int) list) =
  let dom = 1 + List.fold_left (fun acc (_, _, c) -> acc + abs c + 1) 0 atoms in
  let rec go assignment i =
    if i = nvars then
      List.for_all (fun (x, y, c) -> assignment.(x) - assignment.(y) <= c) atoms
    else
      let rec try_val v =
        v < dom
        && (assignment.(i) <- v;
            go assignment (i + 1) || try_val (v + 1))
      in
      try_val 0
  in
  go (Array.make nvars 0) 0

let prop_dl_vs_brute =
  QCheck.Test.make ~name:"diff logic agrees with brute force" ~count:120
    QCheck.(
      pair (int_range 2 4)
        (list_of_size Gen.(1 -- 6)
           (triple (int_range 0 3) (int_range 0 3) (int_range (-2) 2))))
    (fun (nvars, raw) ->
      let atoms =
        List.filter_map
          (fun (x, y, c) ->
            if x < nvars && y < nvars && x <> y then
              Some { D.ax = x; ay = y; ac = c }
            else None)
          raw
      in
      QCheck.assume (atoms <> []);
      let expected =
        brute_force_dl nvars (List.map (fun a -> (a.D.ax, a.D.ay, a.D.ac)) atoms)
      in
      let got = match D.check ~nvars atoms with D.Consistent _ -> true | _ -> false in
      expected = got)

let prop_dl_model_valid =
  QCheck.Test.make ~name:"diff logic models satisfy all atoms" ~count:120
    QCheck.(
      list_of_size Gen.(1 -- 8)
        (triple (int_range 0 4) (int_range 0 4) (int_range (-3) 3)))
    (fun raw ->
      let atoms =
        List.filter_map
          (fun (x, y, c) -> if x <> y then Some { D.ax = x; ay = y; ac = c } else None)
          raw
      in
      QCheck.assume (atoms <> []);
      match D.check ~nvars:5 atoms with
      | D.Consistent m ->
          List.for_all (fun a -> m.(a.D.ax) - m.(a.D.ay) <= a.D.ac) atoms
      | D.Inconsistent cycle ->
          (* the explanation must itself be a contradictory set *)
          cycle <> []
          && (match D.check ~nvars:5 cycle with
             | D.Inconsistent _ -> true
             | D.Consistent _ -> false))

(* brute force a CNF over n variables *)
let brute_force_cnf nvars clauses =
  let rec go assignment v =
    if v > nvars then
      List.for_all
        (List.exists (fun l ->
             let var = Sat.var_of_lit l in
             if Sat.is_pos l then assignment.(var) else not assignment.(var)))
        clauses
    else
      (assignment.(v) <- true;
       go assignment (v + 1))
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
  in
  go (Array.make (nvars + 1) false) 1

let prop_sat_vs_brute =
  QCheck.Test.make ~name:"CDCL agrees with brute force on random 3-CNF" ~count:150
    QCheck.(
      list_of_size Gen.(1 -- 18)
        (triple (int_range 1 5) (int_range 1 5) (int_range 1 5)))
    (fun raw ->
      let nvars = 5 in
      let clauses =
        List.mapi
          (fun i (a, b, c) ->
            (* derive signs deterministically from the clause index *)
            let lit v bit = Sat.lit_of_var v ((i lsr bit) land 1 = 0) in
            [ lit a 0; lit b 1; lit c 2 ])
          raw
      in
      QCheck.assume (clauses <> []);
      let s = Sat.create () in
      for _ = 1 to nvars do
        ignore (Sat.new_var s)
      done;
      List.iter (fun c -> ignore (Sat.add_clause s c)) clauses;
      let got = Sat.solve s = Sat.Sat in
      let expected = brute_force_cnf nvars clauses in
      got = expected)

let prop_card_counts =
  QCheck.Test.make ~name:"AtMost(k) models have <= k true" ~count:100
    QCheck.(pair (int_range 0 4) (int_range 1 6))
    (fun (k, n) ->
      let t = S.create () in
      let vs = List.init n (fun i -> S.new_bool t (string_of_int i)) in
      S.add t (E.AtMost (k, vs));
      (* maximise: ask for at least min(k, n) too *)
      S.add t (E.AtLeast (min k n, vs));
      match S.solve t with
      | S.Sat_model m ->
          let cnt =
            List.length
              (List.filter (fun i -> m.bool_of (string_of_int i)) (List.init n Fun.id))
          in
          cnt <= k && cnt >= min k n
      | S.Unsat -> false)

let tests =
  [
    Alcotest.test_case "trivial sat" `Quick test_sat_trivial;
    Alcotest.test_case "contradiction" `Quick test_sat_contradiction;
    Alcotest.test_case "implication chain" `Quick test_sat_implication_chain;
    Alcotest.test_case "iff" `Quick test_sat_iff;
    Alcotest.test_case "pigeonhole 3/2" `Quick test_sat_pigeonhole;
    Alcotest.test_case "order chain model" `Quick test_dl_chain_model;
    Alcotest.test_case "order cycle unsat" `Quick test_dl_cycle;
    Alcotest.test_case "eq vs lt" `Quick test_dl_eq_vs_lt;
    Alcotest.test_case "negated difference atom" `Quick test_dl_negated_atom;
    Alcotest.test_case "guarded difference atoms" `Quick test_dl_guarded;
    Alcotest.test_case "assumption groups independent" `Quick
      test_assumption_groups_independent;
    Alcotest.test_case "retire guard" `Quick test_retire_guard;
    Alcotest.test_case "session reuse across queries" `Quick
      test_session_reuse_many_queries;
    Alcotest.test_case "extended sat stats" `Quick test_sat_ext_stats;
    Alcotest.test_case "cardinality under disjunction" `Quick test_card_atmost_inside_or;
    Alcotest.test_case "exactly-k" `Quick test_card_exactly;
    Alcotest.test_case "cardinality bounds" `Quick test_card_bounds;
    QCheck_alcotest.to_alcotest prop_dl_vs_brute;
    QCheck_alcotest.to_alcotest prop_dl_model_valid;
    QCheck_alcotest.to_alcotest prop_sat_vs_brute;
    QCheck_alcotest.to_alcotest prop_card_counts;
  ]
