(* Tests for the domain pool (Goengine.Pool): the Chase–Lev deque under
   contention, Pool.map semantics (ordering, exceptions, sequential
   fallback, nesting), the per-channel solver budget, and end-to-end
   determinism — the full corpus must produce byte-identical diagnostics
   at jobs=1 and jobs=4. *)

module Pool = Goengine.Pool
module E = Goengine.Engine
module D = Goengine.Diagnostics

(* ------------------------------------------------------ Ws_deque ---- *)

let test_deque_lifo_fifo () =
  let q = Pool.Ws_deque.create ~capacity:4 () in
  for i = 1 to 10 do
    Pool.Ws_deque.push q i
  done;
  (* owner pops LIFO *)
  Alcotest.(check (option int)) "pop newest" (Some 10) (Pool.Ws_deque.pop q);
  (* thief steals FIFO *)
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Pool.Ws_deque.steal q);
  Alcotest.(check (option int)) "steal next" (Some 2) (Pool.Ws_deque.steal q)

let test_deque_empty () =
  let q = Pool.Ws_deque.create () in
  Alcotest.(check (option int)) "pop empty" None (Pool.Ws_deque.pop q);
  Alcotest.(check (option int)) "steal empty" None (Pool.Ws_deque.steal q);
  Pool.Ws_deque.push q 7;
  Alcotest.(check (option int)) "pop single" (Some 7) (Pool.Ws_deque.pop q);
  Alcotest.(check (option int)) "pop after drain" None (Pool.Ws_deque.pop q)

(* Several thief domains race the owner for every element; each element
   must be taken exactly once, whoever wins. *)
let test_deque_steal_contention () =
  let n = 2000 and thieves = 3 in
  let q = Pool.Ws_deque.create () in
  for i = 0 to n - 1 do
    Pool.Ws_deque.push q i
  done;
  let taken = Array.make n 0 in
  let mu = Mutex.create () in
  let record i =
    Mutex.lock mu;
    taken.(i) <- taken.(i) + 1;
    Mutex.unlock mu
  in
  let stop = Atomic.make false in
  let thief () =
    Domain.spawn (fun () ->
        let rec go () =
          match Pool.Ws_deque.steal q with
          | Some i ->
              record i;
              go ()
          | None -> if not (Atomic.get stop) then (Domain.cpu_relax (); go ())
        in
        go ())
  in
  let ds = List.init thieves (fun _ -> thief ()) in
  (* the owner pops concurrently *)
  let rec drain () =
    match Pool.Ws_deque.pop q with
    | Some i ->
        record i;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join ds;
  Array.iteri
    (fun i c ->
      if c <> 1 then
        Alcotest.failf "element %d taken %d times (want exactly 1)" i c)
    taken

(* ---------------------------------------------------------- Pool ---- *)

let test_map_matches_sequential () =
  let pool = Pool.get ~jobs:4 in
  let xs = List.init 200 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int))
    "parallel map = List.map, in order" (List.map f xs)
    (Pool.map ~pool f xs)

let test_map_zero_worker_fallback () =
  (* jobs <= 1 runs inline on the calling domain, spawning nothing *)
  let inline = Pool.create ~jobs:1 () in
  let saw = ref [] in
  let r = Pool.map ~pool:inline (fun x -> saw := x :: !saw; x * 2) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "results" [ 2; 4; 6 ] r;
  Alcotest.(check (list int)) "ran in order, inline" [ 3; 2; 1 ] !saw;
  Pool.shutdown inline;
  let clamped = Pool.create ~jobs:0 () in
  Alcotest.(check int) "jobs clamps to 1" 1 (Pool.jobs clamped);
  Alcotest.(check (list int))
    "clamped pool still maps" [ 2; 4 ]
    (Pool.map ~pool:clamped (fun x -> 2 * x) [ 1; 2 ]);
  Pool.shutdown clamped

exception Boom of int

let test_exception_propagation () =
  let pool = Pool.get ~jobs:4 in
  let xs = List.init 64 (fun i -> i) in
  (* several tasks fail; the *smallest* failing index must win, for every
     schedule *)
  (match Pool.map ~pool (fun x -> if x mod 7 = 3 then raise (Boom x) else x) xs with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x -> Alcotest.(check int) "smallest failing index" 3 x);
  (* the pool survives a failed batch *)
  Alcotest.(check (list int))
    "pool usable after exception" [ 1; 2; 3 ]
    (Pool.map ~pool (fun x -> x) [ 1; 2; 3 ])

let test_nested_map () =
  let pool = Pool.get ~jobs:4 in
  (* an inner map from inside a task forks real subtasks into the running
     session (no deadlock, no inline collapse) and still assembles in
     input order *)
  let r =
    Pool.map ~pool
      (fun i -> List.fold_left ( + ) 0 (Pool.map ~pool (fun j -> i * j) [ 1; 2; 3 ]))
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "nested results" [ 6; 12; 18; 24 ] r

let test_run_thunks () =
  let pool = Pool.get ~jobs:2 in
  Alcotest.(check (list int))
    "run evaluates thunks in order" [ 10; 20 ]
    (Pool.run ~pool [ (fun () -> 10); (fun () -> 20) ])

(* -------------------------------------------------- solver budget --- *)

let fig1 =
  "package p\n\
   func Exec(ctx context.Context, r string) (string, error) {\n\
   \toutDone := make(chan error)\n\
   \tgo func(a string) {\n\t\toutDone <- nil\n\t}(r)\n\
   \tselect {\n\
   \tcase err := <-outDone:\n\t\tif err != nil {\n\t\t\treturn \"\", err\n\t\t}\n\
   \tcase <-ctx.Done():\n\t\treturn \"\", ctx.Err()\n\
   \t}\n\
   \treturn \"ok\", nil\n\
   }"

let test_solver_timeout_skips () =
  (* a 0ms budget expires before the first solver call: every channel is
     skipped with a warning, none stalls, and no bug is reported *)
  let cfg =
    {
      Gcatch.Bmoc.default_config with
      path_cfg =
        { Gcatch.Pathenum.default_config with solver_timeout_ms = Some 0 };
    }
  in
  let _, ir = Gcatch.Driver.compile_sources ~name:"timeout" [ fig1 ] in
  let bugs, stats, skipped = Gcatch.Bmoc.detect_ext ~cfg ir in
  Alcotest.(check int) "no bugs survive the 0ms budget" 0 (List.length bugs);
  Alcotest.(check bool) "at least one channel skipped" true (skipped <> []);
  Alcotest.(check int)
    "stats count the skips" (List.length skipped) stats.Gcatch.Bmoc.solver_timeouts

let test_no_timeout_finds_fig1 () =
  (* a generous budget changes nothing: figure 1's bug is still found *)
  let cfg =
    {
      Gcatch.Bmoc.default_config with
      path_cfg =
        { Gcatch.Pathenum.default_config with solver_timeout_ms = Some 60_000 };
    }
  in
  let _, ir = Gcatch.Driver.compile_sources ~name:"timeout2" [ fig1 ] in
  let bugs, _, skipped = Gcatch.Bmoc.detect_ext ~cfg ir in
  Alcotest.(check bool) "bug found" true (bugs <> []);
  Alcotest.(check int) "nothing skipped" 0 (List.length skipped)

(* ---------------------------------------------------- determinism --- *)

(* The load-bearing test: the whole corpus, analysed through the full
   pass registry, must produce byte-identical diagnostics at jobs=1 and
   jobs=4 (elapsed-time fields are excluded — only [r_diags] counts). *)
let corpus_diags ~jobs =
  let e = Gcatch.Passes.engine ~jobs () in
  List.map
    (fun (app : Gocorpus.Apps.app) ->
      let r = E.analyse e ~name:app.spec.name app.sources in
      (app.spec.name, D.list_to_json r.E.r_diags))
    (Gocorpus.Apps.all ())

let test_corpus_determinism () =
  let seq = corpus_diags ~jobs:1 in
  let par = corpus_diags ~jobs:4 in
  List.iter2
    (fun (name, d1) (name', d4) ->
      Alcotest.(check string) "same app order" name name';
      if d1 <> d4 then
        Alcotest.failf "%s: diagnostics differ between jobs=1 and jobs=4" name)
    seq par

let test_driver_jobs_matches () =
  (* the Driver-level jobs knob: same reports either way *)
  let app = Option.get (Gocorpus.Apps.find "bbolt") in
  let a1 = Gcatch.Driver.analyse ~name:"bbolt" app.sources in
  let a4 = Gcatch.Driver.analyse ~jobs:4 ~name:"bbolt" app.sources in
  Alcotest.(check int)
    "same bmoc count" (List.length a1.bmoc) (List.length a4.bmoc);
  Alcotest.(check bool)
    "same bmoc reports" true
    (List.map Gcatch.Report.bmoc_str a1.bmoc
    = List.map Gcatch.Report.bmoc_str a4.bmoc);
  Alcotest.(check bool)
    "same traditional reports" true
    (List.map Gcatch.Report.trad_str a1.trad
    = List.map Gcatch.Report.trad_str a4.trad)

(* -------------------------------------------- inline fast path ---- *)

let batches_count () =
  match
    List.assoc_opt "pool.batches"
      (Goobs.Metrics.counters_list Goobs.Metrics.default)
  with
  | Some v -> v
  | None -> 0

let test_small_map_runs_inline () =
  (* batches of <= 2 items skip the session machinery entirely, even on
     a multi-participant pool: no epoch bump, no deques, no counter *)
  let pool = Pool.get ~jobs:4 in
  let before = batches_count () in
  Alcotest.(check (list int)) "pair result" [ 2; 4 ]
    (Pool.map ~pool (fun x -> 2 * x) [ 1; 2 ]);
  Alcotest.(check (list int)) "singleton result" [ 9 ]
    (Pool.map ~pool (fun x -> x * x) [ 3 ]);
  Alcotest.(check (list int)) "empty result" []
    (Pool.map ~pool (fun x -> x) []);
  Alcotest.(check int) "no batch recorded" before (batches_count ())

let test_recommended_jobs_sane () =
  (* the cached environment recommendation map consults on every call *)
  let r = Pool.recommended_jobs () in
  Alcotest.(check bool) "at least one job" true (r >= 1);
  Alcotest.(check int) "stable across calls" r (Pool.recommended_jobs ());
  Alcotest.(check int) "default_jobs agrees" r (Pool.default_jobs ())

let tests =
  [
    Alcotest.test_case "deque: LIFO pop / FIFO steal" `Quick test_deque_lifo_fifo;
    Alcotest.test_case "deque: empty behaviour" `Quick test_deque_empty;
    Alcotest.test_case "deque: steal under contention" `Quick
      test_deque_steal_contention;
    Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
    Alcotest.test_case "zero-worker fallback" `Quick test_map_zero_worker_fallback;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "nested map schedules" `Quick test_nested_map;
    Alcotest.test_case "run thunks" `Quick test_run_thunks;
    Alcotest.test_case "small map runs inline" `Quick test_small_map_runs_inline;
    Alcotest.test_case "recommended jobs sane" `Quick test_recommended_jobs_sane;
    Alcotest.test_case "solver budget skips channels" `Quick
      test_solver_timeout_skips;
    Alcotest.test_case "generous budget changes nothing" `Quick
      test_no_timeout_finds_fig1;
    Alcotest.test_case "corpus determinism jobs 1 vs 4" `Slow
      test_corpus_determinism;
    Alcotest.test_case "driver jobs knob determinism" `Slow
      test_driver_jobs_matches;
  ]
