(* Test entry point: every suite registered with alcotest.  Run with
   `dune runtest`; the `Slow` corpus suites run by default too (they take
   a few seconds each). *)

let () =
  Alcotest.run "gocatch"
    [
      ("lexer", Suite_lexer.tests);
      ("parser", Suite_parser.tests);
      ("typecheck", Suite_typecheck.tests);
      ("ir", Suite_ir.tests);
      ("analysis", Suite_analysis.tests);
      ("smt", Suite_smt.tests);
      ("runtime", Suite_runtime.tests);
      ("engine", Suite_engine.tests);
      ("faults", Suite_faults.tests);
      ("frontend", Suite_frontend.tests);
      ("obs", Suite_obs.tests);
      ("parallel", Suite_parallel.tests);
      ("sched", Suite_sched.tests);
      ("detector", Suite_detector.tests);
      ("nonblocking", Suite_nonblocking.tests);
      ("differential", Suite_differential.tests);
      ("waitgroup", Suite_waitgroup.tests);
      ("pathenum", Suite_pathenum.tests);
      ("cache", Suite_cache.tests);
      ("cond", Suite_cond.tests);
      ("serve", Suite_serve.tests);
      ("crash", Suite_crash.tests);
      ("gfix", Suite_gfix.tests);
      ("corpus", Suite_corpus.tests);
    ]
