(* Validate the observability outputs of a real gcatch run (the dune rule
   feeds it the Figure-1 bug with --trace-out/--metrics-out/--profile):

   - the Chrome trace JSON is balanced, contains "X" duration events for
     the engine stages, passes, and per-channel BMOC work, one
     thread_name metadata record per domain track, and a "gcatch.run"
     root span covering >= 95% of the trace extent;
   - the Prometheus exposition parses line by line: sane metric names,
     numeric samples, # TYPE lines, cumulative histogram buckets with
     "+Inf" equal to the _count sample;
   - the profile report printed the per-pass table and the slowest-
     channel section. *)

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let balanced (s : string) : bool =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  let ok = ref true in
  String.iter
    (fun c ->
      if !escaped then escaped := false
      else if !in_str then (
        match c with
        | '\\' -> escaped := true
        | '"' -> in_str := false
        | _ -> ())
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

(* Pull a float out of [s] right after position [i] (stops at ',' or '}'). *)
let float_at s i =
  let j = ref i in
  let n = String.length s in
  while !j < n && s.[!j] <> ',' && s.[!j] <> '}' do
    incr j
  done;
  float_of_string (String.trim (String.sub s i (!j - i)))

(* Every "ts":T,"dur":D pair in emission order (only "X" events carry
   them in our exporter). *)
let ts_dur_pairs s =
  let needle = "\"ts\":" in
  let out = ref [] in
  let i = ref 0 in
  let n = String.length s in
  (try
     while !i < n do
       let found = ref false in
       let k = ref !i in
       while (not !found) && !k + String.length needle <= n do
         if String.sub s !k (String.length needle) = needle then found := true
         else incr k
       done;
       if not !found then raise Exit;
       let ts_pos = !k + String.length needle in
       let ts = float_at s ts_pos in
       let dneedle = "\"dur\":" in
       let dpos = ts_pos + 1 in
       let k2 = ref dpos in
       while String.sub s !k2 (String.length dneedle) <> dneedle do
         incr k2
       done;
       let dur = float_at s (!k2 + String.length dneedle) in
       out := (ts, dur) :: !out;
       i := !k2
     done
   with Exit -> ());
  List.rev !out

let check_trace path =
  let j = String.trim (read_all path) in
  if String.length j = 0 then fail "empty trace file";
  if not (balanced j) then fail "unbalanced trace JSON";
  List.iter
    (fun needle ->
      if not (contains ~needle j) then fail "trace missing %s" needle)
    [
      {|"traceEvents":[|};
      {|"ph":"X"|};
      {|"ph":"M"|};
      {|"thread_name"|};
      {|"name":"gcatch.run"|};
      {|"name":"stage.sig"|};
      {|"name":"stage.typecheck"|};
      {|"name":"pass.bmoc"|};
      {|"name":"bmoc.channel"|};
      {|"solver_calls"|};
    ];
  (* the root span must cover (almost) the whole trace extent *)
  let pairs = ts_dur_pairs j in
  if pairs = [] then fail "no timed events in trace";
  let extent =
    List.fold_left (fun acc (ts, d) -> Float.max acc (ts +. d)) 0.0 pairs
  in
  let run_pos =
    let needle = {|"name":"gcatch.run"|} in
    let n = String.length j in
    let k = ref 0 in
    while
      !k + String.length needle <= n
      && String.sub j !k (String.length needle) <> needle
    do
      incr k
    done;
    !k
  in
  let after = String.sub j run_pos (String.length j - run_pos) in
  (match ts_dur_pairs after with
  | (ts, dur) :: _ ->
      if extent > 0.0 && (dur -. ts) /. extent < 0.95 then
        fail "gcatch.run span covers %.1f%% of the trace (< 95%%)"
          (100.0 *. (dur -. ts) /. extent)
  | [] -> fail "gcatch.run event has no ts/dur");
  Printf.printf "trace OK: %d timed events, extent %.1f us\n"
    (List.length pairs) extent

let check_prometheus path =
  let p = read_all path in
  if String.trim p = "" then fail "empty metrics file";
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' p)
  in
  let n_type = ref 0 and n_sample = ref 0 in
  (* histogram bookkeeping: name -> (last cumulative bucket, inf, count) *)
  let buckets : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let infs : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then begin
        if not (contains ~needle:"# TYPE gcatch_" line) then
          fail "bad comment line: %s" line;
        incr n_type
      end
      else begin
        let sp =
          match String.rindex_opt line ' ' with
          | Some i -> i
          | None -> fail "sample line without value: %s" line
        in
        let name = String.sub line 0 sp in
        let value = String.sub line (sp + 1) (String.length line - sp - 1) in
        (match float_of_string_opt value with
        | Some _ -> ()
        | None -> fail "non-numeric sample %s in: %s" value line);
        let base =
          match String.index_opt name '{' with
          | Some i -> String.sub name 0 i
          | None -> name
        in
        if not (String.length base > 7 && String.sub base 0 7 = "gcatch_")
        then fail "metric name without gcatch_ prefix: %s" line;
        String.iter
          (fun c ->
            match c with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
            | _ -> fail "bad character in metric name: %s" base)
          base;
        incr n_sample;
        (* histogram structure *)
        if contains ~needle:"_bucket{le=" name then begin
          let v = int_of_string value in
          let key = String.sub base 0 (String.length base - 7) in
          if contains ~needle:{|le="+Inf"|} name then
            Hashtbl.replace infs key v
          else begin
            let prev =
              Option.value (Hashtbl.find_opt buckets key) ~default:0
            in
            if v < prev then
              fail "non-cumulative buckets for %s: %d after %d" key v prev;
            Hashtbl.replace buckets key v
          end
        end
        else if
          String.length base > 6
          && String.sub base (String.length base - 6) 6 = "_count"
        then
          Hashtbl.replace counts
            (String.sub base 0 (String.length base - 6))
            (int_of_string value)
      end)
    lines;
  Hashtbl.iter
    (fun key inf ->
      (match Hashtbl.find_opt counts key with
      | Some c when c = inf -> ()
      | Some c -> fail "histogram %s: +Inf %d <> _count %d" key inf c
      | None -> fail "histogram %s has buckets but no _count" key);
      match Hashtbl.find_opt buckets key with
      | Some last when last > inf ->
          fail "histogram %s: last bucket %d > +Inf %d" key last inf
      | _ -> ())
    infs;
  List.iter
    (fun needle ->
      if not (contains ~needle p) then fail "metrics missing %s" needle)
    [
      "gcatch_bmoc_solver_calls";
      "gcatch_bmoc_channels_analysed";
      "gcatch_stage_parse_runs";
      "gcatch_engine_cache_misses";
      "# TYPE gcatch_bmoc_channel_solve_ms histogram";
    ];
  Printf.printf "metrics OK: %d TYPE lines, %d samples, %d histograms\n"
    !n_type !n_sample (Hashtbl.length infs)

let check_profile path =
  let p = read_all path in
  List.iter
    (fun needle ->
      if not (contains ~needle p) then fail "profile missing %s" needle)
    [
      "== gcatch profile ==";
      "per-pass wall time:";
      "per-stage wall time:";
      "slowest channels";
      "solver_calls=";
      "histograms (p50 / p95 / max):";
    ];
  print_endline "profile OK"

let () =
  check_trace Sys.argv.(1);
  check_prometheus Sys.argv.(2);
  check_profile Sys.argv.(3);
  print_endline "gcatch observability smoke test OK"
