package p

func Exec(ctx context.Context, r string) (string, error) {
	outDone := make(chan error)
	go func(a string) {
		outDone <- nil
	}(r)
	select {
	case err := <-outDone:
		if err != nil {
			return "", err
		}
	case <-ctx.Done():
		return "", ctx.Err()
	}
	return "ok", nil
}
