(* Validate gcatch --json output: structurally well-formed JSON (quotes
   and brace/bracket nesting balance) and the fields the schema
   promises, including at least one bmoc diagnostic for the Figure-1
   input the dune rule feeds it. *)

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let balanced (s : string) : bool =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  let ok = ref true in
  String.iter
    (fun c ->
      if !escaped then escaped := false
      else if !in_str then (
        match c with
        | '\\' -> escaped := true
        | '"' -> in_str := false
        | _ -> ())
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let () =
  let path = Sys.argv.(1) in
  let j = String.trim (read_all path) in
  if String.length j = 0 then fail "empty output";
  if j.[0] <> '{' then fail "output is not a JSON object";
  if not (balanced j) then fail "unbalanced JSON structure";
  List.iter
    (fun needle ->
      if not (contains ~needle j) then fail "missing %s" needle)
    [
      {|"frontend_ok":true|};
      {|"diagnostics":[|};
      {|"pass":"bmoc"|};
      {|"severity":"error"|};
      {|"loc":{"file":|};
      {|"passes":[|};
      {|"bmoc.solver_calls"|};
    ];
  print_endline "gcatch --json smoke test OK"
