(* Tests for the per-channel solve cache (PR 4): warm runs must replay
   cold verdicts and per-channel metrics byte for byte, cache on/off and
   dedup on/off must agree on every verdict, and the disk tier must
   survive corrupted entries. *)

module M = Goobs.Metrics
module SC = Gcatch.Solve_cache

let counter name =
  match List.assoc_opt name (M.counters_list M.default) with
  | Some v -> v
  | None -> 0

let hits () = counter "bmoc.solve_cache_hit"
let misses () = counter "bmoc.solve_cache_miss"
let disk_hits () = counter "bmoc.solve_cache_disk_hit"
let stores () = counter "bmoc.solve_cache_store"

let app_sources name =
  (Option.get (Gocorpus.Apps.find name)).Gocorpus.Apps.sources

let bmoc_strs (a : Gcatch.Driver.analysis) =
  List.map Gcatch.Report.bmoc_str a.bmoc

let trad_strs (a : Gcatch.Driver.analysis) =
  List.map Gcatch.Report.trad_str a.trad

let check_same_analysis label (a : Gcatch.Driver.analysis)
    (b : Gcatch.Driver.analysis) =
  Alcotest.(check (list string))
    (label ^ ": same BMOC reports")
    (bmoc_strs a) (bmoc_strs b);
  Alcotest.(check (list string))
    (label ^ ": same traditional reports")
    (trad_strs a) (trad_strs b)

(* --------------------------------------------------- memory tier ---- *)

let test_warm_replays_cold () =
  SC.reset_memory ();
  let sources = app_sources "bbolt" in
  let h0 = hits () and m0 = misses () in
  let cold = Gcatch.Driver.analyse ~name:"cache-bbolt" sources in
  let h1 = hits () and m1 = misses () in
  Alcotest.(check bool) "cold run misses" true (m1 > m0);
  let warm = Gcatch.Driver.analyse ~name:"cache-bbolt" sources in
  let h2 = hits () and m2 = misses () in
  Alcotest.(check bool) "warm run hits" true (h2 - h1 >= m1 - m0);
  Alcotest.(check int) "warm run never misses" m1 m2;
  ignore h0;
  check_same_analysis "warm vs cold" cold warm;
  (* the cached per-channel counter snapshots replay exactly, so the
     aggregated run stats are identical too *)
  Alcotest.(check bool) "same stats" true (cold.stats = warm.stats)

let test_cache_off_matches () =
  let sources = app_sources "bbolt" in
  let cached = Gcatch.Driver.analyse ~name:"cache-bbolt" sources in
  let cfg = { Gcatch.Bmoc.default_config with solve_cache = false } in
  let h0 = hits () and m0 = misses () in
  let uncached = Gcatch.Driver.analyse ~cfg ~name:"cache-bbolt" sources in
  Alcotest.(check int) "no hits when off" (h0) (hits ());
  Alcotest.(check int) "no misses when off" (m0) (misses ());
  check_same_analysis "cache off vs on" cached uncached

let test_warm_jobs_identical () =
  (* a cold jobs=1 run then a warm jobs=4 run: the promise-keyed memory
     tier serves the same verdicts whatever the schedule *)
  SC.reset_memory ();
  let sources = app_sources "grpc" in
  let a1 = Gcatch.Driver.analyse ~jobs:1 ~name:"cache-grpc" sources in
  let a4 = Gcatch.Driver.analyse ~jobs:4 ~name:"cache-grpc" sources in
  check_same_analysis "jobs 1 cold vs jobs 4 warm" a1 a4;
  Alcotest.(check bool) "same stats" true (a1.stats = a4.stats)

(* ----------------------------------------------------- disk tier ---- *)

let with_cache_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcatch-test-cache-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f ->
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let solve_files dir =
  List.filter
    (fun f -> Filename.check_suffix f ".solve")
    (Array.to_list (Sys.readdir dir))

let test_disk_tier_roundtrip () =
  with_cache_dir (fun dir ->
      let cfg = { Gcatch.Bmoc.default_config with cache_dir = Some dir } in
      let sources = app_sources "bbolt" in
      SC.reset_memory ();
      let s0 = stores () in
      let cold = Gcatch.Driver.analyse ~cfg ~name:"cache-disk" sources in
      Alcotest.(check bool) "entries stored" true (stores () > s0);
      Alcotest.(check bool) "files written" true (solve_files dir <> []);
      (* a fresh process is simulated by dropping the memory tier: the
         warm verdicts must now come from disk *)
      SC.reset_memory ();
      let d0 = disk_hits () in
      let warm = Gcatch.Driver.analyse ~cfg ~name:"cache-disk" sources in
      Alcotest.(check bool) "disk hits" true (disk_hits () > d0);
      check_same_analysis "disk warm vs cold" cold warm;
      Alcotest.(check bool) "same stats" true (cold.stats = warm.stats))

let test_disk_corrupt_entry_recovers () =
  with_cache_dir (fun dir ->
      let cfg = { Gcatch.Bmoc.default_config with cache_dir = Some dir } in
      let sources = app_sources "bbolt" in
      SC.reset_memory ();
      let cold = Gcatch.Driver.analyse ~cfg ~name:"cache-corrupt" sources in
      (* clobber every entry: truncated, garbage, and flipped-byte bodies
         must all be treated as misses, unlinked, and recomputed *)
      List.iteri
        (fun i f ->
          let path = Filename.concat dir f in
          let oc = open_out_bin path in
          (match i mod 3 with
          | 0 -> () (* truncated to zero length *)
          | 1 -> output_string oc "not a cache entry"
          | _ -> output_string oc (String.make 64 '\xff'));
          close_out oc)
        (solve_files dir);
      SC.reset_memory ();
      let d0 = disk_hits () in
      let warm = Gcatch.Driver.analyse ~cfg ~name:"cache-corrupt" sources in
      Alcotest.(check int) "corrupt entries are misses" d0 (disk_hits ());
      check_same_analysis "recomputed vs cold" cold warm;
      (* the clobbered files were replaced by fresh stores *)
      SC.reset_memory ();
      let d1 = disk_hits () in
      let again = Gcatch.Driver.analyse ~cfg ~name:"cache-corrupt" sources in
      Alcotest.(check bool) "restored entries hit" true (disk_hits () > d1);
      check_same_analysis "restored vs cold" cold again)

(* ------------------------------------------- dedup soundness ---- *)

let test_dedup_never_drops_verdict () =
  (* path dedup is a projection argument, not a heuristic: over the full
     49-bug coverage set, every verdict must be identical with the
     deduplicator on and off *)
  let off_cfg =
    {
      Gcatch.Bmoc.default_config with
      path_cfg =
        { Gcatch.Pathenum.default_config with dedup_paths = false };
    }
  in
  List.iter
    (fun (e : Gocorpus.Bugset.entry) ->
      let src = [ "package b\n" ^ e.bs_src ] in
      let on = Gcatch.Driver.analyse ~name:e.bs_name src in
      let off = Gcatch.Driver.analyse ~cfg:off_cfg ~name:e.bs_name src in
      Alcotest.(check (list string))
        (e.bs_name ^ ": dedup on/off verdicts agree")
        (bmoc_strs off) (bmoc_strs on))
    Gocorpus.Bugset.entries

let tests =
  [
    Alcotest.test_case "warm run replays cold run" `Quick
      test_warm_replays_cold;
    Alcotest.test_case "cache off matches cache on" `Quick
      test_cache_off_matches;
    Alcotest.test_case "warm jobs=4 matches cold jobs=1" `Quick
      test_warm_jobs_identical;
    Alcotest.test_case "disk tier round-trip" `Quick test_disk_tier_roundtrip;
    Alcotest.test_case "corrupted disk entry recovers" `Quick
      test_disk_corrupt_entry_recovers;
    Alcotest.test_case "dedup never drops a verdict" `Slow
      test_dedup_never_drops_verdict;
  ]
