(* Tests for the effects-based scheduler (Goengine.Pool): fork/yield/
   await semantics in and out of a session, nested fan-out forking real
   tasks at every level (task-count assertion, not timing), span
   parentage surviving steal-then-resume, smallest-index-exception-wins
   for stolen tasks, and jobs-1 vs jobs-4 byte-equality of diagnostics
   and run-registry metrics under the scheduler.

   [Pool.with_scheduler] is load-bearing here: it enters the scheduler
   unconditionally, so these tests exercise real task scheduling even on
   a single-hardware-thread machine where [Pool.map]'s inline fast path
   would otherwise kick in. *)

module Pool = Goengine.Pool
module E = Goengine.Engine
module D = Goengine.Diagnostics
module Trace = Goobs.Trace
module M = Goobs.Metrics

(* process-registry scheduler counters ("sched.*") *)
let counter name =
  Option.value (List.assoc_opt name (M.counters_list M.default)) ~default:0

(* ------------------------------------------------- fork/yield/await --- *)

let test_fork_await_outside () =
  (* outside a session [fork] degenerates to an immediate call and
     [await] reads the already-filled promise — sequential semantics *)
  Alcotest.(check bool) "not in task" false (Pool.in_task ());
  let p = Pool.fork (fun () -> 41 + 1) in
  Alcotest.(check int) "fork/await outside scheduler" 42 (Pool.await p);
  let p = Pool.fork (fun () -> failwith "boom") in
  (match Pool.await p with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "exception preserved" "boom" m);
  (* yield outside a task is a no-op, not an error *)
  Pool.yield ()

let test_fork_await_scheduled () =
  let pool = Pool.get ~jobs:4 in
  let r =
    Pool.with_scheduler ~pool (fun () ->
        Alcotest.(check bool) "in task" true (Pool.in_task ());
        let ps =
          List.init 8 (fun i ->
              Pool.fork (fun () ->
                  Pool.yield ();
                  i * i))
        in
        List.fold_left (fun acc p -> acc + Pool.await p) 0 ps)
  in
  Alcotest.(check bool) "back outside" false (Pool.in_task ());
  Alcotest.(check int) "sum of squares through promises" 140 r

let test_yield_requeues () =
  let pool = Pool.get ~jobs:2 in
  let before = counter "sched.yields" in
  Pool.with_scheduler ~pool (fun () ->
      for _ = 1 to 5 do
        Pool.yield ()
      done);
  Alcotest.(check bool) "yields counted" true
    (counter "sched.yields" - before >= 5)

let test_await_filled_promise_is_immediate () =
  let pool = Pool.get ~jobs:2 in
  let r =
    Pool.with_scheduler ~pool (fun () ->
        let p = Pool.fork (fun () -> 7) in
        (* give the child every chance to finish so the await hits the
           already-Full path *)
        Pool.yield ();
        Pool.await p + Pool.await p)
  in
  Alcotest.(check int) "promise readable repeatedly" 14 r

(* ---------------------------------------------------- nested fan-out --- *)

let test_nested_depth3_forks_real_tasks () =
  let pool = Pool.get ~jobs:4 in
  let before = counter "sched.tasks_spawned" in
  let r =
    Pool.with_scheduler ~pool (fun () ->
        Pool.map ~pool
          (fun a ->
            Pool.map ~pool
              (fun b ->
                Pool.map ~pool
                  (fun c -> (100 * a) + (10 * b) + c)
                  [ 1; 2 ])
              [ 1; 2 ])
          [ 1; 2 ])
  in
  Alcotest.(check (list (list (list int))))
    "depth-3 results in input order"
    [
      [ [ 111; 112 ]; [ 121; 122 ] ];
      [ [ 211; 212 ]; [ 221; 222 ] ];
    ]
    r;
  (* the task-count assertion: 2 + 4 + 8 = 14 subtasks across the three
     levels — nested maps fork real scheduled tasks, they do not
     collapse to inline loops (a timing assertion would be flaky; the
     spawn counter is exact) *)
  let spawned = counter "sched.tasks_spawned" - before in
  Alcotest.(check bool)
    (Printf.sprintf "every level forked real tasks (%d spawned, want >= 14)"
       spawned)
    true (spawned >= 14)

(* ------------------------------------------------------ span handoff --- *)

let test_steal_keeps_span_parentage () =
  let pool = Pool.get ~jobs:4 in
  Trace.enable ();
  ignore (Trace.drain ());
  Fun.protect
    ~finally:(fun () -> Trace.disable ())
    (fun () ->
      Pool.with_scheduler ~pool (fun () ->
          let ps =
            List.init 8 (fun i ->
                Pool.fork (fun () ->
                    Trace.with_span ~name:"sched.outer" (fun () ->
                        (* suspend inside the open span: the task can be
                           stolen and resumed on another domain between
                           the yield and the close *)
                        Pool.yield ();
                        Trace.with_span ~name:"sched.inner" (fun () ->
                            Pool.yield ();
                            i))))
          in
          List.iter (fun p -> ignore (Pool.await p)) ps);
      let spans = Trace.drain () in
      let named n =
        List.filter (fun s -> s.Trace.sp_name = n) spans
      in
      let outer = named "sched.outer" and inner = named "sched.inner" in
      Alcotest.(check int) "every outer span closed" 8 (List.length outer);
      Alcotest.(check int) "every inner span closed" 8 (List.length inner);
      (* parentage survives suspension and migration: wherever the task
         resumed, the inner span still closes under its own task's outer
         span, never under another domain's unrelated stack *)
      List.iter
        (fun s ->
          Alcotest.(check (option string))
            "inner parented under outer" (Some "sched.outer")
            s.Trace.sp_parent)
        inner;
      List.iter
        (fun s ->
          Alcotest.(check int) "inner depth below outer" 1 s.Trace.sp_depth)
        inner)

(* ------------------------------------------------- exception choice --- *)

exception Boom of int

let test_stolen_exception_smallest_index () =
  let pool = Pool.get ~jobs:4 in
  (match
     Pool.with_scheduler ~pool (fun () ->
         Pool.map ~pool
           (fun x ->
             (* yield on both sides of the raise so failing tasks hop
                between domains; the winner must still be chosen by
                index, not by completion order *)
             Pool.yield ();
             if x mod 7 = 3 then raise (Boom x);
             Pool.yield ();
             x)
           (List.init 64 (fun i -> i)))
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x -> Alcotest.(check int) "smallest failing index" 3 x);
  (* the shared pool survives the failed session *)
  Alcotest.(check (list int))
    "pool usable after exception" [ 2; 4; 6 ]
    (Pool.with_scheduler ~pool (fun () ->
         Pool.map ~pool (fun x -> 2 * x) [ 1; 2; 3 ]))

(* ------------------------------------------- determinism under sched --- *)

(* several independent channels so a 4-job fan-out has real width *)
let multi_chan =
  "package p\n\
   func f1() {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n}\n\
   func f2() {\n\td := make(chan int)\n\tgo func() {\n\t\td <- 2\n\t}()\n\
   \t<-d\n}\n\
   func f3() {\n\te := make(chan int)\n\tgo func() {\n\t\te <- 3\n\t}()\n}\n\
   func f4() {\n\tf := make(chan int)\n\tgo func() {\n\t\tf <- 4\n\t}()\n}\n"

let analyse ~scheduled jobs =
  let reg = M.create () in
  let e = Gcatch.Passes.engine ~registry:reg ~jobs () in
  let go () = E.analyse e ~name:"det" [ multi_chan ] in
  let r =
    if scheduled then Pool.with_scheduler ~pool:(Pool.get ~jobs:4) go
    else go ()
  in
  (D.list_to_json r.E.r_diags, M.counters_list reg)

let test_jobs_byte_equality_under_scheduler () =
  (* jobs=1 analysed plainly vs jobs=4 analysed as a scheduled task
     (which makes every nested map inside the engine fork for real,
     whatever the hardware): diagnostics and the run registry's
     counters must be byte-identical.  Scheduler traffic lives in the
     process registry under "pool."/"sched." and is *not* compared —
     steal counts are schedule-dependent by nature. *)
  let d1, c1 = analyse ~scheduled:false 1 in
  let d4, c4 = analyse ~scheduled:true 4 in
  Alcotest.(check string) "diagnostics byte-identical" d1 d4;
  Alcotest.(check (list (pair string int))) "run counters identical" c1 c4;
  Alcotest.(check bool) "solver counters present" true
    (List.mem_assoc "bmoc.solver_calls" c1)

(* ------------------------------------------------------ GCATCH_JOBS --- *)

let contains ~needle line =
  let nl = String.length needle and ll = String.length line in
  let rec find i = i + nl <= ll && (String.sub line i nl = needle || find (i + 1)) in
  nl > 0 && find 0

let test_jobs_of_env_fallback () =
  let hw = Domain.recommended_domain_count () in
  let warnings = ref [] in
  Goobs.Log.set_sink (fun l -> warnings := l :: !warnings);
  Fun.protect ~finally:Goobs.Log.reset_sink (fun () ->
      Alcotest.(check int) "well-formed value wins" 3
        (Pool.jobs_of_env (Some "3"));
      Alcotest.(check int) "unset -> hardware" hw (Pool.jobs_of_env None);
      Alcotest.(check int) "clean cases warn nothing" 0
        (List.length !warnings);
      (* malformed values fall back to the hardware recommendation (not
         to a silent 1) and say so once each *)
      Alcotest.(check int) "malformed -> hardware" hw
        (Pool.jobs_of_env (Some "abc"));
      Alcotest.(check int) "zero -> hardware" hw (Pool.jobs_of_env (Some "0"));
      Alcotest.(check int) "one warning per bad value" 2
        (List.length !warnings);
      Alcotest.(check bool) "warning names the variable" true
        (List.for_all (contains ~needle:"GCATCH_JOBS") !warnings))

let tests =
  [
    Alcotest.test_case "fork/await outside scheduler" `Quick
      test_fork_await_outside;
    Alcotest.test_case "fork/await scheduled" `Quick test_fork_await_scheduled;
    Alcotest.test_case "yield requeues" `Quick test_yield_requeues;
    Alcotest.test_case "await filled promise" `Quick
      test_await_filled_promise_is_immediate;
    Alcotest.test_case "nested depth-3 forks real tasks" `Quick
      test_nested_depth3_forks_real_tasks;
    Alcotest.test_case "steal keeps span parentage" `Quick
      test_steal_keeps_span_parentage;
    Alcotest.test_case "stolen exception: smallest index wins" `Quick
      test_stolen_exception_smallest_index;
    Alcotest.test_case "jobs 1 vs 4 byte-equality under scheduler" `Quick
      test_jobs_byte_equality_under_scheduler;
    Alcotest.test_case "GCATCH_JOBS fallback + warning" `Quick
      test_jobs_of_env_fallback;
  ]
