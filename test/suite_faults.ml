(* Supervision-layer tests (PR 5): deterministic fault injection, fault
   containment at every boundary (frontend file, detector pass, channel,
   checker function, cache access), the solver degradation ladder, and
   the deadline/heap watchdogs' orderly partial flush. *)

module E = Goengine.Engine
module D = Goengine.Diagnostics
module F = Goengine.Faults
module S = Goengine.Supervise
module M = Goobs.Metrics
module SC = Gcatch.Solve_cache

let fig1_body =
  "(ctx context.Context, r string) (string, error) {\n\
   \toutDone := make(chan error)\n\
   \tgo func(a string) {\n\t\toutDone <- nil\n\t}(r)\n\
   \tselect {\n\
   \tcase err := <-outDone:\n\t\tif err != nil {\n\t\t\treturn \"\", err\n\t\t}\n\
   \tcase <-ctx.Done():\n\t\treturn \"\", ctx.Err()\n\
   \t}\n\
   \treturn \"ok\", nil\n\
   }\n"

let fig1 = "package p\nfunc Exec" ^ fig1_body

(* three independent buggy channels: enough roots for a real pool batch *)
let three_chans =
  "package p\nfunc ExecA" ^ fig1_body ^ "func ExecB" ^ fig1_body ^ "func ExecC"
  ^ fig1_body

let clean = "package p\nfunc main() {\n\tprintln(1)\n}\n"
let parse_error_src = "package p\nfunc main( {}\n"

let no_cache_cfg =
  { Gcatch.Bmoc.default_config with solve_cache = false; cache_dir = None }

let compile_ir src =
  let _, ir = Gcatch.Driver.compile_sources ~name:"faults-ir" [ src ] in
  ir

let with_clean_faults f =
  Fun.protect
    ~finally:(fun () ->
      F.clear ();
      S.clear_deadline ();
      S.clear_max_heap ())
    f

let health snap k = S.health_get snap k
let diag_strs diags = List.map D.render_human diags

let fault_kinds (diags : D.t list) : S.kind list =
  List.filter_map
    (fun d -> Option.map (fun f -> f.S.fi_kind) (S.fault_of d))
    diags

(* ----------------------------------------------------- plan grammar --- *)

let test_plan_parse () =
  (match F.parse "solver" with
  | Ok [ sp ] ->
      Alcotest.(check string) "site" "solver" sp.F.s_site;
      Alcotest.(check bool) "first occurrence" true (sp.F.s_which = F.Nth 1);
      Alcotest.(check bool) "default action" true (sp.F.s_action = F.Raise)
  | _ -> Alcotest.fail "single site should parse");
  (match F.parse "frontend:3@file2!stall, cache.write:*!corrupt" with
  | Ok [ a; b ] ->
      Alcotest.(check bool) "nth" true (a.F.s_which = F.Nth 3);
      Alcotest.(check bool) "key" true (a.F.s_key = Some "file2");
      Alcotest.(check bool) "stall" true (a.F.s_action = F.Stall);
      Alcotest.(check bool) "every" true (b.F.s_which = F.Every);
      Alcotest.(check bool) "corrupt" true (b.F.s_action = F.Corrupt)
  | _ -> Alcotest.fail "two-item plan should parse");
  (* a seeded plan places the unpinned fault on a reproducible early
     occurrence *)
  (match (F.parse "seed=5,solver", F.parse "seed=5,solver") with
  | Ok [ a ], Ok [ b ] ->
      Alcotest.(check bool) "seeded nth reproducible" true
        (a.F.s_which = b.F.s_which);
      (match a.F.s_which with
      | F.Nth n -> Alcotest.(check bool) "seeded nth early" true (n >= 1 && n <= 4)
      | F.Every -> Alcotest.fail "seeded placement must be an Nth")
  | _ -> Alcotest.fail "seeded plan should parse");
  let bad s =
    match F.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (s ^ " should be rejected")
  in
  bad "bogus-site";
  bad "solver:0";
  bad "solver!explode";
  bad "seed=x,solver"

(* The seeded placement is a pure, stable function of (seed, site):
   string-keyed MD5, not a polymorphic hash that may drift across
   compiler versions.  These values are pinned — a change here breaks
   every recorded fault-plan reproduction, so it must be deliberate
   and come with a format-version note. *)
let test_seeded_nth_pinned () =
  let pin seed site expect =
    Alcotest.(check int)
      (Printf.sprintf "seeded_nth %d %s" seed site)
      expect (F.seeded_nth seed site)
  in
  pin 5 "solver" 2;
  pin 5 "frontend" 1;
  pin 7 "solver" 3;
  pin 42 "pool" 3;
  pin 1 "cache.read" 2;
  pin 123 "conn.write" 2;
  pin 0 "snapshot.read" 3;
  match F.parse "seed=5,solver" with
  | Ok [ sp ] ->
      Alcotest.(check bool) "parse uses the pinned placement" true
        (sp.F.s_which = F.Nth 2)
  | _ -> Alcotest.fail "seeded plan should parse"

let test_fire_counts () =
  with_clean_faults (fun () ->
      (match F.parse "solver:2" with
      | Ok specs -> F.set_plan specs
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "1st trigger clean" true
        (F.fire ~site:"solver" ~key:"a" () = None);
      Alcotest.(check bool) "2nd trigger fires" true
        (F.fire ~site:"solver" ~key:"b" () = Some F.Raise);
      Alcotest.(check bool) "3rd trigger clean" true
        (F.fire ~site:"solver" ~key:"c" () = None);
      Alcotest.(check bool) "other sites never fire" true
        (F.fire ~site:"pool" () = None))

(* ------------------------------------------------- frontend salvage --- *)

(* A broken sibling file must not take down the rest of the source set:
   the failing file degrades to its frontend diagnostic plus a salvage
   note, and every other file's diagnostics are intact. *)
let test_parse_failure_spares_siblings () =
  let engine = Gcatch.Passes.engine () in
  let r = E.analyse engine ~name:"salvage" [ fig1; parse_error_src ] in
  Alcotest.(check bool) "frontend survived" false (E.frontend_failed r);
  let bugs = Gcatch.Passes.bmoc_bugs r.E.r_diags in
  Alcotest.(check int) "sibling's BMOC bug intact" 1 (List.length bugs);
  Alcotest.(check bool) "parse diagnostic present" true
    (List.exists (fun (d : D.t) -> d.D.pass = "frontend/parse") r.E.r_diags);
  Alcotest.(check bool) "salvage note present" true
    (List.mem S.Degraded (fault_kinds r.E.r_diags));
  Alcotest.(check int) "one degraded unit" 1
    (health r.E.r_health S.h_degraded);
  (* the single-file failure path is untouched: still exactly one
     diagnostic and no passes *)
  let r1 = E.analyse engine ~name:"salvage1" [ parse_error_src ] in
  Alcotest.(check bool) "single file still fails" true (E.frontend_failed r1);
  Alcotest.(check int) "single diagnostic" 1 (List.length r1.E.r_diags);
  Alcotest.(check bool) "no passes ran" true (r1.E.r_passes = [])

let test_injected_frontend_fault_spares_siblings () =
  with_clean_faults (fun () ->
      (match F.parse "frontend@file1" with
      | Ok specs -> F.set_plan specs
      | Error e -> Alcotest.fail e);
      let engine = Gcatch.Passes.engine () in
      let r = E.analyse engine ~name:"inj" [ fig1; clean ] in
      Alcotest.(check bool) "frontend survived" false (E.frontend_failed r);
      Alcotest.(check bool) "fault diagnostic present" true
        (List.exists (fun (d : D.t) -> d.D.pass = "frontend/fault") r.E.r_diags);
      Alcotest.(check int) "sibling's BMOC bug intact" 1
        (List.length (Gcatch.Passes.bmoc_bugs r.E.r_diags));
      Alcotest.(check int) "one degraded unit" 1
        (health r.E.r_health S.h_degraded))

(* ------------------------------------------------ solver containment --- *)

let test_solver_crash_contained_jobs () =
  with_clean_faults (fun () ->
      (* pick a concrete channel from a clean run, then fault it by key:
         key selection is schedule-independent, so jobs=1 and jobs=4 must
         agree byte for byte *)
      let clean_r =
        Gcatch.Bmoc.detect_full ~cfg:no_cache_cfg (compile_ir three_chans)
      in
      Alcotest.(check int) "three clean bugs" 3
        (List.length clean_r.Gcatch.Bmoc.f_bugs);
      let objs =
        List.map
          (fun (b : Gcatch.Report.bmoc_bug) ->
            Goanalysis.Alias.obj_str b.Gcatch.Report.channel)
          clean_r.Gcatch.Bmoc.f_bugs
      in
      (* the longest obj_str cannot be a substring of any other, so the
         key selector hits exactly one channel *)
      let target =
        List.fold_left
          (fun a b -> if String.length b > String.length a then b else a)
          (List.hd objs) objs
      in
      let plan = Printf.sprintf "solver:*@%s!raise" target in
      let run jobs =
        (match F.parse plan with
        | Ok specs -> F.set_plan specs
        | Error e -> Alcotest.fail e);
        let engine =
          Gcatch.Passes.engine ~cfg:no_cache_cfg ~jobs ()
        in
        E.analyse ~only:[ "bmoc" ] engine ~name:"solver-crash"
          [ three_chans ]
      in
      let r1 = run 1 in
      let r4 = run 4 in
      Alcotest.(check (list string))
        "jobs 1 and 4 byte-identical diagnostics"
        (diag_strs r1.E.r_diags) (diag_strs r4.E.r_diags);
      Alcotest.(check bool) "same health ledger" true
        (r1.E.r_health = r4.E.r_health);
      Alcotest.(check int) "other channels' bugs intact" 2
        (List.length (Gcatch.Passes.bmoc_bugs r1.E.r_diags));
      Alcotest.(check bool) "degraded diagnostic present" true
        (List.mem S.Degraded (fault_kinds r1.E.r_diags));
      Alcotest.(check int) "one degraded unit" 1
        (health r1.E.r_health S.h_degraded))

(* a worker crash in the pool is contained at the pass boundary: the
   other passes still report, the run completes *)
let test_pool_crash_contained () =
  with_clean_faults (fun () ->
      (match F.parse "pool" with
      | Ok specs -> F.set_plan specs
      | Error e -> Alcotest.fail e);
      let engine = Gcatch.Passes.engine ~cfg:no_cache_cfg ~jobs:4 () in
      let r = E.analyse engine ~name:"pool-crash" [ three_chans ] in
      Alcotest.(check int) "all passes reported" 6 (List.length r.E.r_passes);
      Alcotest.(check bool) "internal-error diagnostic present" true
        (List.mem S.Internal_error (fault_kinds r.E.r_diags)
        || (* jobs may be clamped to 1 on a single-core runner, where the
              pool site never triggers and the run is simply clean *)
        Goengine.Pool.recommended_jobs () = 1))

(* --------------------------------------------------- retry ladder ----- *)

let test_retry_ladder_recovers () =
  with_clean_faults (fun () ->
      (* first solve attempt times out (injected), the rung-1 retry at
         reduced bounds succeeds: the verdict is recovered instead of
         skipped *)
      (match F.parse "solver:1!timeout" with
      | Ok specs -> F.set_plan specs
      | Error e -> Alcotest.fail e);
      let cfg =
        {
          no_cache_cfg with
          retry_rungs = 2;
          path_cfg =
            {
              Gcatch.Pathenum.default_config with
              solver_timeout_ms = Some 60_000;
            };
        }
      in
      let reg = M.create () in
      let r = Gcatch.Bmoc.detect_full ~cfg ~metrics:reg (compile_ir fig1) in
      Alcotest.(check int) "bug recovered at reduced bounds" 1
        (List.length r.Gcatch.Bmoc.f_bugs);
      Alcotest.(check int) "nothing skipped" 0
        (List.length r.Gcatch.Bmoc.f_skipped);
      (match r.Gcatch.Bmoc.f_notes with
      | [ { Gcatch.Bmoc.cn_note = `Recovered 1; _ } ] -> ()
      | _ -> Alcotest.fail "expected exactly one rung-1 recovery note");
      Alcotest.(check int) "one retried unit" 1
        (health (M.counters_list reg) S.h_retried))

let test_ladder_exhaustion_still_skips () =
  with_clean_faults (fun () ->
      (* every attempt times out: the ladder runs out of rungs and the
         channel is skipped exactly as before the ladder existed *)
      (match F.parse "solver:*!timeout" with
      | Ok specs -> F.set_plan specs
      | Error e -> Alcotest.fail e);
      let cfg =
        {
          no_cache_cfg with
          retry_rungs = 2;
          path_cfg =
            {
              Gcatch.Pathenum.default_config with
              solver_timeout_ms = Some 60_000;
            };
        }
      in
      let reg = M.create () in
      let r = Gcatch.Bmoc.detect_full ~cfg ~metrics:reg (compile_ir fig1) in
      Alcotest.(check int) "no bugs" 0 (List.length r.Gcatch.Bmoc.f_bugs);
      Alcotest.(check int) "channel skipped" 1
        (List.length r.Gcatch.Bmoc.f_skipped);
      Alcotest.(check int) "skip counted" 1
        (health (M.counters_list reg) S.h_skipped);
      Alcotest.(check int) "retry counted" 1
        (health (M.counters_list reg) S.h_retried))

(* ------------------------------------------------------- watchdogs ---- *)

let check_pressure_flush label r =
  Alcotest.(check bool) (label ^ ": frontend ok") false (E.frontend_failed r);
  Alcotest.(check int) (label ^ ": all passes reported") 6
    (List.length r.E.r_passes);
  List.iter
    (fun (pr : E.pass_run) ->
      match fault_kinds pr.E.pr_diags with
      | [ S.Skipped ] -> ()
      | _ -> Alcotest.fail (label ^ ": pass " ^ pr.E.pr_pass ^ " not skipped"))
    r.E.r_passes;
  Alcotest.(check int) (label ^ ": six skipped units") 6
    (health r.E.r_health S.h_skipped);
  Alcotest.(check bool) (label ^ ": not an error") true (E.errors r = [])

let test_deadline_flushes_partial () =
  with_clean_faults (fun () ->
      S.set_deadline_ms 0;
      (* the deadline is "now": no pass may start, yet the run flushes an
         orderly result — frontend artifacts, six skip diagnostics, and a
         health ledger — identically every time *)
      let engine = Gcatch.Passes.engine () in
      let r1 = E.analyse engine ~name:"deadline" [ fig1 ] in
      let r2 = E.analyse engine ~name:"deadline" [ fig1 ] in
      check_pressure_flush "deadline" r1;
      Alcotest.(check (list string))
        "deterministic flush"
        (diag_strs r1.E.r_diags) (diag_strs r2.E.r_diags);
      S.clear_deadline ();
      let r3 = E.analyse engine ~name:"deadline" [ fig1 ] in
      Alcotest.(check bool) "cleared deadline runs passes" true
        (Gcatch.Passes.bmoc_bugs r3.E.r_diags <> []))

let test_heap_watchdog_flushes_partial () =
  with_clean_faults (fun () ->
      (* a 0 MB ceiling is exceeded by construction, so the latch trips
         at arming time: deterministic, no dependence on GC timing *)
      S.set_max_heap_mb 0;
      let engine = Gcatch.Passes.engine () in
      let r = E.analyse engine ~name:"heap" [ fig1 ] in
      check_pressure_flush "heap" r;
      S.clear_max_heap ();
      Alcotest.(check bool) "latch cleared" true (S.pressure () = None))

(* -------------------------------------------------- cache hardening --- *)

let count_warnings ~needle f =
  let hits = ref 0 in
  Goobs.Log.set_sink (fun line ->
      let nl = String.length needle and ll = String.length line in
      let rec find i =
        i + nl <= ll && (String.sub line i nl = needle || find (i + 1))
      in
      if nl > 0 && find 0 then incr hits);
  Fun.protect ~finally:Goobs.Log.reset_sink f;
  !hits

let test_vanished_cache_dir_degrades_once () =
  with_clean_faults (fun () ->
      SC.reset_memory ();
      SC.reset_disk_state ();
      (* a cache dir whose parent is gone cannot be recreated: the disk
         tier must retire itself with ONE warning, not one per entry *)
      let dir =
        Filename.concat
          (Filename.concat (Filename.get_temp_dir_name ())
             (Printf.sprintf "gcatch-vanished-%d" (Unix.getpid ())))
          "cache"
      in
      let cfg = { Gcatch.Bmoc.default_config with cache_dir = Some dir } in
      let warnings =
        count_warnings ~needle:"solve-cache directory unavailable" (fun () ->
            let a =
              Gcatch.Driver.analyse ~cfg ~name:"vanished" [ three_chans ]
            in
            Alcotest.(check int) "verdicts unaffected" 3
              (List.length a.Gcatch.Driver.bmoc))
      in
      Alcotest.(check int) "exactly one warning" 1 warnings;
      SC.reset_disk_state ();
      SC.reset_memory ())

let test_cache_fault_injection_is_besteffort () =
  with_clean_faults (fun () ->
      let counter name =
        Option.value
          (List.assoc_opt name (M.counters_list M.default))
          ~default:0
      in
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "gcatch-faulty-cache-%d" (Unix.getpid ()))
      in
      Fun.protect
        ~finally:(fun () ->
          if Sys.file_exists dir then begin
            Array.iter
              (fun f ->
                try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
              (Sys.readdir dir);
            try Unix.rmdir dir with Unix.Unix_error _ -> ()
          end;
          SC.reset_disk_state ();
          SC.reset_memory ())
        (fun () ->
          let cfg = { Gcatch.Bmoc.default_config with cache_dir = Some dir } in
          (* every store faults: analysis is unaffected, errors counted,
             nothing written *)
          SC.reset_memory ();
          SC.reset_disk_state ();
          (match F.parse "cache.write:*!raise" with
          | Ok specs -> F.set_plan specs
          | Error e -> Alcotest.fail e);
          let w0 = counter "bmoc.solve_cache_write_error" in
          let a = Gcatch.Driver.analyse ~cfg ~name:"cache-faulty" [ fig1 ] in
          Alcotest.(check int) "verdict unaffected by write faults" 1
            (List.length a.Gcatch.Driver.bmoc);
          Alcotest.(check bool) "write errors counted" true
            (counter "bmoc.solve_cache_write_error" > w0);
          (* now let stores succeed, then fault every read: entries are
             recomputed, errors counted, verdicts identical *)
          F.clear ();
          SC.reset_memory ();
          let b = Gcatch.Driver.analyse ~cfg ~name:"cache-faulty" [ fig1 ] in
          (match F.parse "cache.read:*!raise" with
          | Ok specs -> F.set_plan specs
          | Error e -> Alcotest.fail e);
          SC.reset_memory ();
          let r0 = counter "bmoc.solve_cache_read_error" in
          let c = Gcatch.Driver.analyse ~cfg ~name:"cache-faulty" [ fig1 ] in
          Alcotest.(check bool) "read errors counted" true
            (counter "bmoc.solve_cache_read_error" > r0);
          Alcotest.(check (list string))
            "verdicts identical under cache faults"
            (List.map Gcatch.Report.bmoc_str b.Gcatch.Driver.bmoc)
            (List.map Gcatch.Report.bmoc_str c.Gcatch.Driver.bmoc)))

(* ------------------------------------------------- clean-path parity --- *)

let test_clean_path_unchanged () =
  (* with no plan armed and no watchdogs, the supervision layer must not
     change a byte of the diagnostics, at jobs=1 and jobs=4 alike *)
  with_clean_faults (fun () ->
      let run jobs =
        let engine = Gcatch.Passes.engine ~cfg:no_cache_cfg ~jobs () in
        E.analyse engine ~name:"parity" [ three_chans ]
      in
      let r1 = run 1 in
      let r4 = run 4 in
      Alcotest.(check (list string))
        "jobs parity" (diag_strs r1.E.r_diags) (diag_strs r4.E.r_diags);
      Alcotest.(check int) "no degraded units" 0
        (health r1.E.r_health S.h_degraded);
      Alcotest.(check int) "no skipped units" 0
        (health r1.E.r_health S.h_skipped);
      Alcotest.(check bool) "attempted = ok" true
        (health r1.E.r_health S.h_attempted = health r1.E.r_health S.h_ok))

let tests =
  [
    Alcotest.test_case "fault-plan grammar" `Quick test_plan_parse;
    Alcotest.test_case "seeded placement pinned values" `Quick
      test_seeded_nth_pinned;
    Alcotest.test_case "nth-trigger firing" `Quick test_fire_counts;
    Alcotest.test_case "parse failure spares siblings" `Quick
      test_parse_failure_spares_siblings;
    Alcotest.test_case "injected frontend fault spares siblings" `Quick
      test_injected_frontend_fault_spares_siblings;
    Alcotest.test_case "solver crash contained, jobs 1 = jobs 4" `Quick
      test_solver_crash_contained_jobs;
    Alcotest.test_case "pool crash contained at pass boundary" `Quick
      test_pool_crash_contained;
    Alcotest.test_case "retry ladder recovers a channel" `Quick
      test_retry_ladder_recovers;
    Alcotest.test_case "ladder exhaustion still skips" `Quick
      test_ladder_exhaustion_still_skips;
    Alcotest.test_case "deadline flushes partial results" `Quick
      test_deadline_flushes_partial;
    Alcotest.test_case "heap watchdog flushes partial results" `Quick
      test_heap_watchdog_flushes_partial;
    Alcotest.test_case "vanished cache dir degrades once" `Quick
      test_vanished_cache_dir_degrades_once;
    Alcotest.test_case "cache faults are best-effort" `Quick
      test_cache_fault_injection_is_besteffort;
    Alcotest.test_case "clean path byte-identical" `Quick
      test_clean_path_unchanged;
  ]
