(* Crash-only gcatchd tests (PR 10): a snapshot round-trips the warm
   state so a restarted server answers a one-file edit from memory with
   byte-identical diagnostics, corrupt or mismatched snapshots fall back
   to a clean cold start, a solver-fault storm quarantines the engine
   and a background rebuild restores byte-correct service, the retrying
   client honours Retry-After against a saturated queue and rides out
   connection-level chaos, and the journal's fsync policy keeps events
   durable without a clean close. *)

module E = Goengine.Engine
module F = Goengine.Faults
module M = Goobs.Metrics
module T = Goobs.Telemetry
module J = Goobs.Journal
module Serve = Goserve.Serve
module Snapshot = Goserve.Snapshot
module Proto = Goserve.Proto

(* a leaking channel: one BMOC bug per copy *)
let leak name =
  Printf.sprintf
    "package p\nfunc %s() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch \
     <- 1\n\t}()\n}\n"
    name

let clean = "package p\nfunc Clean() {\n\tprintln(1)\n}\n"
let clean_edited = "package p\nfunc Clean() {\n\tprintln(2)\n}\n"
let pv name = M.value (M.counter M.default name)

let body_of_sources sources =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"gcatch-serve/1\",\"name\":\"cli\",\"files\":[";
  List.iteri
    (fun i src ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"path\":\"f%d.go\",\"src\":\"%s\"}" i
           (M.json_escape src)))
    sources;
  Buffer.add_string b "]}";
  Buffer.contents b

let diag_bytes_of_response body =
  match Proto.member_raw "run" body with
  | None -> Alcotest.fail "response has no run member"
  | Some run -> (
      match Proto.member_raw "diagnostics" run with
      | None -> Alcotest.fail "run has no diagnostics member"
      | Some d -> d)

let local_diag_bytes ~jobs sources =
  let engine = Gcatch.Passes.engine ~jobs ~registry:(M.create ()) () in
  let r = E.analyse engine ~name:"cli" sources in
  match Proto.member_raw "diagnostics" (E.run_to_json r) with
  | Some d -> d
  | None -> Alcotest.fail "local run has no diagnostics member"

let with_server ?cfg f =
  let srv = Serve.create ?cfg () in
  match
    T.start ~addr:"127.0.0.1:0"
      ~post:(Serve.post_handlers srv)
      ~handlers:(Serve.handlers srv) ()
  with
  | Error e -> Alcotest.fail e
  | Ok server ->
      Fun.protect
        ~finally:(fun () ->
          T.stop server;
          Gcatch.Solve_cache.set_memory_budget_mb 0)
        (fun () -> f srv server)

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcatch-crash-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with _ -> ()
  end

let wait_for ?(timeout = 10.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  Alcotest.(check bool) "condition reached before timeout" true (pred ())

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let set_plan s =
  match F.parse s with
  | Ok specs -> F.set_plan specs
  | Error e -> Alcotest.fail e

(* ------------------------------------------- snapshot warm round-trip --- *)

(* Server A analyses a two-file program and snapshots its warm state.
   A fresh server B (the "restarted daemon") loads the snapshot and
   answers a one-file edit: the unedited file must come from the memo
   tiers, the unchanged channel from the solve cache's memory tier, and
   the diagnostics must be byte-identical to a cold one-shot run. *)
let test_snapshot_roundtrip () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { Serve.default_cfg with Serve.s_snapshot_dir = Some dir } in
  let sources = [ leak "Snap"; clean ] in
  let edited = [ leak "Snap"; clean_edited ] in
  let expect = local_diag_bytes ~jobs:1 edited in
  with_server ~cfg (fun srv server ->
      let code, _ = T.fetch_post server "/analyse" (body_of_sources sources) in
      Alcotest.(check int) "warm-up status" 200 code;
      Alcotest.(check bool) "snapshot saved" true (Serve.save_snapshot srv));
  Alcotest.(check bool) "snapshot file exists" true
    (Sys.file_exists (Snapshot.path ~dir));
  Alcotest.(check bool) "snapshot checks valid" true
    (Snapshot.check ~dir = Snapshot.Valid);
  (* simulate process death: the solve cache's memory tier is global
     state that would die with the process *)
  Gcatch.Solve_cache.reset_memory ();
  with_server ~cfg (fun srv server ->
      Alcotest.(check bool) "snapshot loaded" true (Serve.load_snapshot srv);
      Alcotest.(check bool) "load counted" true (pv "serve.snapshot_loads" > 0);
      let mem0 = pv "engine.file_mem_hit" in
      let solve0 = pv "bmoc.solve_cache_hit" in
      let code, body =
        T.fetch_post server "/analyse" (body_of_sources edited)
      in
      Alcotest.(check int) "edit status" 200 code;
      Alcotest.(check bool) "warm memo hit after restart" true
        (pv "engine.file_mem_hit" > mem0);
      Alcotest.(check bool) "warm solve hit after restart" true
        (pv "bmoc.solve_cache_hit" > solve0);
      Alcotest.(check string) "edit diagnostics byte-identical" expect
        (diag_bytes_of_response body))

(* --------------------------------------- corrupt / mismatched snapshot --- *)

let test_corrupt_snapshot_cold_start () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { Serve.default_cfg with Serve.s_snapshot_dir = Some dir } in
  let fp = Snapshot.path ~dir in
  (* garbage bytes: digest check fails *)
  write_file fp "this is not a snapshot, but it is long enough to try";
  Alcotest.(check bool) "garbage classified corrupt" true
    (Snapshot.check ~dir = Snapshot.Corrupt);
  with_server ~cfg (fun srv server ->
      Alcotest.(check bool) "corrupt snapshot rejected" false
        (Serve.load_snapshot srv);
      Alcotest.(check bool) "corrupt snapshot deleted" false
        (Sys.file_exists fp);
      (* the cold server still answers correctly *)
      let sources = [ leak "Cold"; clean ] in
      let expect = local_diag_bytes ~jobs:1 sources in
      let code, body =
        T.fetch_post server "/analyse" (body_of_sources sources)
      in
      Alcotest.(check int) "cold status" 200 code;
      Alcotest.(check string) "cold diagnostics" expect
        (diag_bytes_of_response body);
      (* truncate a real snapshot mid-file: same clean recovery *)
      Alcotest.(check bool) "snapshot saved" true (Serve.save_snapshot srv));
  let raw =
    let ic = open_in_bin fp in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  write_file fp (String.sub raw 0 (String.length raw / 2));
  Alcotest.(check bool) "truncated classified corrupt" true
    (Snapshot.check ~dir = Snapshot.Corrupt);
  Alcotest.(check bool) "truncated snapshot rejected" true
    (Snapshot.load ~dir = None);
  Alcotest.(check bool) "truncated snapshot deleted" false (Sys.file_exists fp);
  (* a version-mismatched snapshot is reported but never deleted *)
  let body =
    Marshal.to_string "gcatch-snapshot/0" [] ^ Marshal.to_string () []
  in
  write_file fp (Digest.string body ^ body);
  Alcotest.(check bool) "old version classified" true
    (Snapshot.check ~dir = Snapshot.Version_mismatch "gcatch-snapshot/0");
  Alcotest.(check bool) "old version not loaded" true
    (Snapshot.load ~dir = None);
  Alcotest.(check bool) "old version preserved for inspection" true
    (Sys.file_exists fp)

(* ------------------------------------------------ snapshot fault sites --- *)

let test_snapshot_fault_sites () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { Serve.default_cfg with Serve.s_snapshot_dir = Some dir } in
  with_server ~cfg (fun srv server ->
      let code, _ =
        T.fetch_post server "/analyse" (body_of_sources [ leak "FS" ])
      in
      Alcotest.(check int) "warm-up status" 200 code;
      (* a raise on snapshot.write fails the save and is counted *)
      let errs0 = pv "serve.snapshot_errors" in
      set_plan "snapshot.write:*!raise";
      Fun.protect ~finally:F.clear (fun () ->
          Alcotest.(check bool) "faulted save fails" false
            (Serve.save_snapshot srv));
      Alcotest.(check bool) "save error counted" true
        (pv "serve.snapshot_errors" > errs0);
      Alcotest.(check bool) "no snapshot written" false
        (Sys.file_exists (Snapshot.path ~dir));
      (* a corrupt-action write truncates the bytes on disk; the next
         load must treat that as a cold start and delete the file *)
      set_plan "snapshot.write:*!corrupt";
      Fun.protect ~finally:F.clear (fun () ->
          Alcotest.(check bool) "corrupting save reports success" true
            (Serve.save_snapshot srv));
      Alcotest.(check bool) "corrupted snapshot on disk" true
        (Sys.file_exists (Snapshot.path ~dir));
      Alcotest.(check bool) "corrupted snapshot rejected" true
        (Snapshot.load ~dir = None);
      Alcotest.(check bool) "corrupted snapshot deleted" false
        (Sys.file_exists (Snapshot.path ~dir));
      (* a good snapshot plus a snapshot.read fault: load declines *)
      Alcotest.(check bool) "clean save" true (Serve.save_snapshot srv);
      set_plan "snapshot.read:*!raise";
      Fun.protect ~finally:F.clear (fun () ->
          Alcotest.(check bool) "faulted load declines" true
            (Snapshot.load ~dir = None));
      Alcotest.(check bool) "file intact after faulted load" true
        (Sys.file_exists (Snapshot.path ~dir)))

(* --------------------------------------------------- quarantine rebuild --- *)

(* A solver-fault storm degrades consecutive runs; once the streak
   crosses --quarantine-degraded the engine is quarantined and rebuilt
   from the last good snapshot on a background thread, without dropping
   the listener.  After the storm clears, the rebuilt engine must
   answer with byte-correct diagnostics. *)
let test_quarantine_rebuild_under_solver_storm () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg =
    {
      Serve.default_cfg with
      Serve.s_snapshot_dir = Some dir;
      Serve.s_quar_degraded = 2;
    }
  in
  with_server ~cfg (fun srv server ->
      let code, _ =
        T.fetch_post server "/analyse" (body_of_sources [ leak "Good" ])
      in
      Alcotest.(check int) "healthy warm-up" 200 code;
      Alcotest.(check bool) "snapshot saved" true (Serve.save_snapshot srv);
      let rebuilds0 = pv "serve.engine_rebuilds" in
      let quars0 = pv "serve.quarantines" in
      set_plan "solver:*!raise";
      Fun.protect ~finally:F.clear (fun () ->
          (* two consecutive degraded runs trip the streak *)
          List.iter
            (fun name ->
              let code, _ =
                T.fetch_post server "/analyse" (body_of_sources [ leak name ])
              in
              Alcotest.(check int) "degraded run still answers" 200 code)
            [ "StormA"; "StormB" ];
          wait_for (fun () -> pv "serve.engine_rebuilds" > rebuilds0));
      Alcotest.(check bool) "quarantine counted" true
        (pv "serve.quarantines" > quars0);
      wait_for (fun () -> not (Serve.quarantined srv));
      let sources = [ leak "AfterStorm"; clean ] in
      let expect = local_diag_bytes ~jobs:1 sources in
      let code, body =
        T.fetch_post server "/analyse" (body_of_sources sources)
      in
      Alcotest.(check int) "post-rebuild status" 200 code;
      Alcotest.(check string) "post-rebuild diagnostics" expect
        (diag_bytes_of_response body))

(* -------------------------------------- client retry vs saturated queue --- *)

(* With --max-queue 1 and a stalled leader in flight, the first attempt
   answers 429 + Retry-After; the retrying client must sleep it off and
   land a 200 once the leader drains. *)
let test_retry_honours_retry_after () =
  set_plan "solver:*!stall";
  Fun.protect ~finally:F.clear @@ fun () ->
  with_server
    ~cfg:{ Serve.default_cfg with Serve.s_max_queue = 1 }
    (fun srv server ->
      let slow = body_of_sources [ leak "Hog"; clean ] in
      let rq b = { T.rq_path = "/analyse"; rq_headers = []; rq_body = b } in
      let leader = ref (T.text "") in
      let th =
        Thread.create (fun () -> leader := Serve.handle_analyse srv (rq slow)) ()
      in
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        (Mutex.lock srv.Serve.infl_mu;
         let n = Hashtbl.length srv.Serve.inflight in
         Mutex.unlock srv.Serve.infl_mu;
         n = 0)
        && Unix.gettimeofday () < deadline
      do
        Thread.delay 0.002
      done;
      let rejected0 = pv "serve.rejected" in
      let sources = [ leak "Retrier" ] in
      let r =
        T.request_retry ~max_attempts:6 ~seed:11 (T.self_addr server)
          ~meth:"POST" ~path:"/analyse"
          ~body:(body_of_sources sources) ()
      in
      Thread.join th;
      Alcotest.(check int) "leader status" 200 !leader.T.status;
      (match r with
      | Error e -> Alcotest.fail ("retry client gave up: " ^ e)
      | Ok (code, body) ->
          Alcotest.(check int) "retried status" 200 code;
          Alcotest.(check string) "retried diagnostics"
            (local_diag_bytes ~jobs:1 sources)
            (diag_bytes_of_response body));
      Alcotest.(check bool) "a 429 was actually served" true
        (pv "serve.rejected" > rejected0))

(* ------------------------------------------------ connection-level chaos --- *)

(* First response truncated by a conn.write corrupt, second connection
   dropped at accept: the retrying client must detect both and land an
   intact, byte-identical third response. *)
let test_retry_through_connection_chaos () =
  let sources = [ leak "Chaos"; clean ] in
  let expect = local_diag_bytes ~jobs:1 sources in
  with_server (fun _srv server ->
      set_plan "conn.write:1@/analyse!corrupt, conn.accept:2!raise";
      Fun.protect ~finally:F.clear @@ fun () ->
      match
        T.request_retry ~max_attempts:6 ~seed:3 (T.self_addr server)
          ~meth:"POST" ~path:"/analyse"
          ~body:(body_of_sources sources) ()
      with
      | Error e -> Alcotest.fail ("retry client gave up: " ^ e)
      | Ok (code, body) ->
          Alcotest.(check int) "status after chaos" 200 code;
          Alcotest.(check string) "diagnostics intact after chaos" expect
            (diag_bytes_of_response body))

(* ------------------------------------------------- journal fsync policy --- *)

let test_journal_fsync_policy () =
  Alcotest.(check bool) "parse never" true
    (J.fsync_policy_of_string "never" = Some J.Fsync_never);
  Alcotest.(check bool) "parse close" true
    (J.fsync_policy_of_string "close" = Some J.Fsync_close);
  Alcotest.(check bool) "parse always" true
    (J.fsync_policy_of_string "always" = Some J.Fsync_always);
  Alcotest.(check bool) "parse bogus" true
    (J.fsync_policy_of_string "bogus" = None);
  let path = Filename.temp_file "gcatch-fsync" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      J.set_fsync J.Fsync_never;
      try Sys.remove path with _ -> ())
  @@ fun () ->
  J.set_fsync J.Fsync_always;
  J.open_ ~path;
  for i = 1 to 130 do
    J.emit ~event:"crash.test" [ ("i", J.I i) ]
  done;
  (* no close: read the file as a post-SIGKILL `gcatch report` would *)
  let sum = J.summarize_file path in
  Alcotest.(check bool) "events durable without close" true
    (sum.J.s_events > 0);
  Alcotest.(check bool) "valid prefix only" true (not sum.J.s_truncated);
  J.close ()

let tests =
  [
    Alcotest.test_case "snapshot warm round-trip" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "corrupt snapshot cold start" `Quick
      test_corrupt_snapshot_cold_start;
    Alcotest.test_case "snapshot fault sites" `Quick test_snapshot_fault_sites;
    Alcotest.test_case "quarantine rebuild under solver storm" `Quick
      test_quarantine_rebuild_under_solver_storm;
    Alcotest.test_case "retry honours Retry-After" `Quick
      test_retry_honours_retry_after;
    Alcotest.test_case "retry through connection chaos" `Quick
      test_retry_through_connection_chaos;
    Alcotest.test_case "journal fsync policy" `Quick test_journal_fsync_policy;
  ]
