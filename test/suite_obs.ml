(* Goscope (lib/obs) tests: logger formatting and levels, histogram
   bucket/percentile math, registry merge, Prometheus and JSON export
   shape, span nesting and parenting (single-domain and across pool
   domains), exactly-once drain, no-op behaviour when tracing is
   disabled, metrics determinism at jobs=1 vs jobs=4, and the enriched
   solver-budget skip diagnostic. *)

module Log = Goobs.Log
module M = Goobs.Metrics
module Trace = Goobs.Trace
module Profile = Goobs.Profile
module Journal = Goobs.Journal
module Telemetry = Goobs.Telemetry
module Sampler = Goobs.Sampler
module Pool = Goengine.Pool
module E = Goengine.Engine
module D = Goengine.Diagnostics
module Supervise = Goengine.Supervise

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------ logger --- *)

let with_sink f =
  let lines = ref [] in
  Log.set_sink (fun l -> lines := l :: !lines);
  let saved = Log.level () in
  Fun.protect
    ~finally:(fun () ->
      Log.reset_sink ();
      Log.set_level saved)
    (fun () -> f lines)

let test_log_format () =
  with_sink (fun lines ->
      Log.set_level Log.Debug;
      Log.warn ~kv:[ ("channel", "ch1"); ("ms", "12") ] "budget exhausted";
      Log.info ~kv:[ ("path", "a file.json") ] "wrote";
      match List.rev !lines with
      | [ l1; l2 ] ->
          Alcotest.(check string)
            "plain key=value line"
            "gcatch[warn] budget exhausted channel=ch1 ms=12" l1;
          (* values with spaces are quoted *)
          Alcotest.(check string)
            "quoted value" "gcatch[info] wrote path=\"a file.json\"" l2
      | ls -> Alcotest.failf "expected 2 lines, got %d" (List.length ls))

let test_log_levels () =
  with_sink (fun lines ->
      Log.set_level Log.Warn;
      Log.debug "hidden";
      Log.info "hidden";
      Log.warn "shown";
      Log.error "shown";
      Alcotest.(check int) "warn level keeps 2 of 4" 2 (List.length !lines);
      Log.set_level Log.Quiet;
      Log.error "dropped";
      Alcotest.(check int) "quiet drops everything" 2 (List.length !lines));
  (* parsing *)
  Alcotest.(check bool) "parse debug" true (Log.level_of_string "debug" = Some Log.Debug);
  Alcotest.(check bool) "parse WARNING" true (Log.level_of_string "WARNING" = Some Log.Warn);
  Alcotest.(check bool) "parse off" true (Log.level_of_string "off" = Some Log.Quiet);
  Alcotest.(check bool) "reject junk" true (Log.level_of_string "loud" = None)

(* ------------------------------------------------------- histograms --- *)

let test_histogram_buckets () =
  (* power-of-two buckets: 1.0 tops bucket 20, each bucket doubles *)
  Alcotest.(check int) "1.0 -> bucket 20" 20 (M.bucket_index 1.0);
  Alcotest.(check int) "1.5 -> bucket 21" 21 (M.bucket_index 1.5);
  Alcotest.(check int) "2.0 -> bucket 21" 21 (M.bucket_index 2.0);
  Alcotest.(check int) "non-positive -> bucket 0" 0 (M.bucket_index 0.0);
  Alcotest.(check int) "huge clamps to last" (M.n_buckets - 1)
    (M.bucket_index 1e30);
  Alcotest.(check (float 1e-9)) "upper bound of 20 is 1.0" 1.0 (M.bucket_upper 20)

let test_histogram_percentiles () =
  let t = M.create () in
  let h = M.histogram t "h" in
  List.iter (M.observe h) [ 1.0; 2.0; 4.0; 8.0 ];
  Alcotest.(check int) "count" 4 (M.h_count h);
  Alcotest.(check (float 1e-9)) "sum" 15.0 (M.h_sum h);
  Alcotest.(check (float 1e-9)) "max" 8.0 (M.h_max h);
  Alcotest.(check (float 1e-9)) "p50 is the 2nd value's bucket" 2.0
    (M.percentile h 0.5);
  Alcotest.(check (float 1e-9)) "p95 lands in the last bucket" 8.0
    (M.percentile h 0.95);
  Alcotest.(check (float 1e-9)) "p100 is the exact max" 8.0
    (M.percentile h 1.0);
  (* the estimate is capped at the observed max, not the bucket bound *)
  let h2 = M.histogram t "h2" in
  M.observe h2 3.0;
  Alcotest.(check (float 1e-9)) "capped at max" 3.0 (M.percentile h2 0.5);
  (* empty histogram *)
  let h3 = M.histogram t "h3" in
  Alcotest.(check (float 1e-9)) "empty -> 0" 0.0 (M.percentile h3 0.5)

(* ------------------------------------------------ registry and merge --- *)

let test_counters_and_merge () =
  let a = M.create () and b = M.create () in
  M.add (M.counter a "x") 3;
  M.incr (M.counter a "y");
  M.add (M.counter b "x") 4;
  M.observe (M.histogram b "ms") 2.0;
  M.merge_into ~dst:a b;
  Alcotest.(check (list (pair string int)))
    "sorted, summed counters"
    [ ("x", 7); ("y", 1) ]
    (M.counters_list a);
  Alcotest.(check int) "histogram merged" 1 (M.h_count (M.histogram a "ms"));
  M.reset a;
  Alcotest.(check (list (pair string int)))
    "reset zeroes values"
    [ ("x", 0); ("y", 0) ]
    (M.counters_list a)

let test_prometheus_export () =
  let t = M.create () in
  M.add (M.counter t "bmoc.solver_calls") 5;
  M.set_gauge (M.gauge t "engine.jobs") 4.0;
  let h = M.histogram t "bmoc.channel_solve_ms" in
  List.iter (M.observe h) [ 0.7; 1.8; 120.0 ];
  let p = M.to_prometheus t in
  Alcotest.(check bool) "counter TYPE line" true
    (contains ~needle:"# TYPE gcatch_bmoc_solver_calls counter" p);
  Alcotest.(check bool) "counter sample" true
    (contains ~needle:"gcatch_bmoc_solver_calls 5" p);
  Alcotest.(check bool) "gauge sample" true
    (contains ~needle:"gcatch_engine_jobs 4" p);
  Alcotest.(check bool) "histogram TYPE line" true
    (contains ~needle:"# TYPE gcatch_bmoc_channel_solve_ms histogram" p);
  Alcotest.(check bool) "+Inf bucket" true
    (contains ~needle:{|gcatch_bmoc_channel_solve_ms_bucket{le="+Inf"} 3|} p);
  Alcotest.(check bool) "count line" true
    (contains ~needle:"gcatch_bmoc_channel_solve_ms_count 3" p);
  (* buckets are cumulative: every bucket count <= the +Inf total *)
  String.split_on_char '\n' p
  |> List.iter (fun line ->
         if contains ~needle:"_bucket{le=" line then
           match String.rindex_opt line ' ' with
           | Some i ->
               let v =
                 int_of_string
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               Alcotest.(check bool) "cumulative bucket <= total" true (v <= 3)
           | None -> Alcotest.fail "malformed bucket line")

(* crude structural check: balanced braces/brackets outside strings *)
let balanced s =
  let depth = ref 0 and ok = ref true and in_str = ref false in
  String.iteri
    (fun i c ->
      if !in_str then begin
        if c = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0

let test_metrics_json () =
  let t = M.create () in
  M.incr (M.counter t "a.b");
  M.observe (M.histogram t "ms") 3.0;
  let j = M.to_json t in
  Alcotest.(check bool) "balanced" true (balanced j);
  Alcotest.(check bool) "counter present" true (contains ~needle:{|"a.b":1|} j);
  Alcotest.(check bool) "histogram summary" true (contains ~needle:{|"count":1|} j)

(* ------------------------------------------------------------ spans --- *)

let test_span_nesting () =
  Trace.enable ();
  ignore (Trace.drain ());
  Trace.with_span ~name:"outer" (fun () ->
      Trace.with_span ~name:"inner" (fun () -> ignore (Sys.opaque_identity 1));
      Trace.set_args [ ("k", "v") ]);
  Trace.disable ();
  let spans = Trace.drain () in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let find n = List.find (fun s -> s.Trace.sp_name = n) spans in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check bool) "inner's parent is outer" true
    (inner.Trace.sp_parent = Some "outer");
  Alcotest.(check int) "inner depth" 1 inner.Trace.sp_depth;
  Alcotest.(check bool) "outer is a root" true (outer.Trace.sp_parent = None);
  Alcotest.(check bool) "inner starts after outer" true
    (inner.Trace.sp_ts_us >= outer.Trace.sp_ts_us);
  Alcotest.(check bool) "inner contained in outer" true
    (inner.Trace.sp_ts_us +. inner.Trace.sp_dur_us
    <= outer.Trace.sp_ts_us +. outer.Trace.sp_dur_us +. 1e-3);
  Alcotest.(check bool) "set_args attached to the open span" true
    (List.mem_assoc "k" outer.Trace.sp_args);
  Alcotest.(check int) "exactly-once drain" 0 (List.length (Trace.drain ()))

let test_spans_across_pool_domains () =
  Trace.enable ();
  ignore (Trace.drain ());
  let pool = Pool.get ~jobs:4 in
  let items = List.init 16 Fun.id in
  let out =
    Trace.with_span ~name:"batch" (fun () ->
        Pool.map ~pool
          (fun i -> Trace.with_span ~name:"work" (fun () -> i * 2))
          items)
  in
  Trace.disable ();
  Alcotest.(check (list int)) "map results in order"
    (List.map (fun i -> i * 2) items)
    out;
  let spans = Trace.drain () in
  let named n = List.filter (fun s -> s.Trace.sp_name = n) spans in
  Alcotest.(check int) "one work span per item" 16 (List.length (named "work"));
  if Pool.recommended_jobs () > 1 then begin
    Alcotest.(check int) "one pool.task span per item" 16
      (List.length (named "pool.task"));
    (* parenting survives the hop to worker domains: every work span
       nests in the pool.task span that ran it *)
    List.iter
      (fun s ->
        Alcotest.(check bool) "work parented under pool.task" true
          (s.Trace.sp_parent = Some "pool.task"))
      (named "work")
  end
  else begin
    (* single-job environment: the map's inline fast path skips the
       batch machinery, so the work runs directly under the caller *)
    Alcotest.(check int) "no pool.task spans inline" 0
      (List.length (named "pool.task"));
    List.iter
      (fun s ->
        Alcotest.(check bool) "work parented under batch" true
          (s.Trace.sp_parent = Some "batch"))
      (named "work")
  end;
  (* the trace has one track per participating domain, and everything the
     workers recorded is tagged with their own domain id *)
  let tids = List.sort_uniq compare (List.map (fun s -> s.Trace.sp_tid) spans) in
  Alcotest.(check bool) "at least one track" true (List.length tids >= 1);
  Alcotest.(check bool) "at most caller + workers tracks" true
    (List.length tids <= 5);
  Alcotest.(check int) "second drain is empty" 0 (List.length (Trace.drain ()))

let test_disabled_tracer_noop () =
  Trace.disable ();
  ignore (Trace.drain ());
  let r = Trace.with_span ~name:"ignored" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 r;
  Trace.set_args [ ("k", "v") ];
  Alcotest.check_raises "exceptions propagate" Exit (fun () ->
      Trace.with_span ~name:"ignored" (fun () -> raise Exit));
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.drain ()))

let test_chrome_export_shape () =
  Trace.enable ();
  ignore (Trace.drain ());
  Trace.with_span ~name:"a" ~args:[ ("file", "x.go") ] (fun () ->
      Trace.with_span ~name:"b" (fun () -> ()));
  Trace.disable ();
  let j = Trace.to_chrome_json (Trace.drain ()) in
  Alcotest.(check bool) "balanced" true (balanced j);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle j))
    [
      {|"traceEvents":[|};
      {|"ph":"X"|};
      {|"ph":"M"|};
      {|"thread_name"|};
      {|"name":"a"|};
      {|"args":{"file":"x.go"}|};
      {|"displayTimeUnit":"ms"|};
    ]

(* ----------------------------------------------------------- profile --- *)

let test_profile_report () =
  Profile.reset ();
  Profile.note_channel
    {
      Profile.cs_channel = "chan@1";
      cs_elapsed_ms = 12.5;
      cs_solver_calls = 3;
      cs_sat_conflicts = 7;
      cs_sat_decisions = 20;
      cs_sat_propagations = 90;
      cs_path_events = 11;
      cs_timed_out = false;
    };
  let reg = M.create () in
  M.observe (M.histogram reg "stage.parse.ms") 1.5;
  let rep = Profile.report ~top:10 reg [ ("bmoc", 0.012) ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report mentions " ^ needle) true
        (contains ~needle rep))
    [ "slowest channels"; "chan@1"; "solver_calls=3"; "bmoc"; "stage.parse.ms" ];
  Profile.reset ();
  Alcotest.(check int) "reset clears samples" 0 (List.length (Profile.channels ()))

(* ------------------------------------------------------ determinism --- *)

(* several independent channels so jobs=4 genuinely fans out *)
let multi_chan =
  "package p\n\
   func f1() {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n}\n\
   func f2() {\n\td := make(chan int)\n\tgo func() {\n\t\td <- 2\n\t}()\n\
   \t<-d\n}\n\
   func f3() {\n\te := make(chan int)\n\tgo func() {\n\t\te <- 3\n\t}()\n}\n"

let test_metrics_determinism_across_jobs () =
  let counters jobs =
    let reg = M.create () in
    let e = Gcatch.Passes.engine ~registry:reg ~jobs () in
    ignore (E.analyse e ~name:"det" [ multi_chan ]);
    (* scheduler counters ("pool.*") and timing histograms are excluded
       by construction: pool metrics go to the process registry and
       counters_list lists counters only *)
    M.counters_list reg
  in
  let c1 = counters 1 and c4 = counters 4 in
  Alcotest.(check (list (pair string int))) "jobs=1 = jobs=4" c1 c4;
  Alcotest.(check bool) "bmoc counters present" true
    (List.mem_assoc "bmoc.solver_calls" c1)

(* ------------------------------------------- skip diagnostic detail --- *)

let test_skip_diag_enriched () =
  let cfg =
    {
      Gcatch.Bmoc.default_config with
      path_cfg =
        { Gcatch.Pathenum.default_config with solver_timeout_ms = Some 0 };
    }
  in
  let _, ir = Gcatch.Driver.compile_sources ~name:"skip" [ multi_chan ] in
  let _, _, skipped = Gcatch.Bmoc.detect_ext ~cfg ir in
  Alcotest.(check bool) "something skipped" true (skipped <> []);
  let sk = List.hd skipped in
  Alcotest.(check bool) "budget recorded" true
    (sk.Gcatch.Bmoc.sk_budget_ms = Some 0);
  Alcotest.(check bool) "elapsed is non-negative" true
    (sk.Gcatch.Bmoc.sk_elapsed_ms >= 0.0);
  let d = Gcatch.Passes.skip_diag sk in
  let msg = d.Goengine.Diagnostics.message in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("skip message mentions " ^ needle) true
        (contains ~needle msg))
    [ "solver budget exhausted after"; "budget 0 ms"; "path event(s)" ]

(* -------------------------------------------- engine registry unity --- *)

let test_engine_counters_from_registry () =
  let reg = M.create () in
  let e = Gcatch.Passes.engine ~registry:reg () in
  ignore (E.analyse e ~name:"u" [ multi_chan ]);
  ignore (E.analyse e ~name:"u" [ multi_chan ]);
  Alcotest.(check int) "stage counter via engine accessor" 1
    (E.counter_value e "stage.parse.runs");
  Alcotest.(check int) "cache hit via shared registry" 1
    (M.value (M.counter reg "engine.cache_hits"));
  Alcotest.(check bool) "pass metrics folded into the same registry" true
    (M.value (M.counter reg "bmoc.channels_analysed") > 0);
  Alcotest.(check bool) "stats_str served from the registry" true
    (contains ~needle:"1 hit(s)" (E.stats_str e))

(* ------------------------------------------- bucket schema round-trip --- *)

(* Satellite (b): both exporters render the one shared
   [cumulative_buckets] schema — occupied buckets only, cumulative
   counts, identified by upper bound — so the JSON and Prometheus views
   of a histogram round-trip through the same (le, n) pairs. *)
let test_histogram_bucket_round_trip () =
  let t = M.create () in
  let h = M.histogram t "solve.ms" in
  List.iter (M.observe h) [ 0.7; 1.8; 1.9; 120.0 ];
  let buckets = M.cumulative_buckets h in
  Alcotest.(check bool) "occupied buckets only" true (List.length buckets <= 4);
  Alcotest.(check bool) "at least one bucket" true (buckets <> []);
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as tl) -> a <= b && mono tl
    | _ -> true
  in
  Alcotest.(check bool) "cumulative counts are monotone" true (mono buckets);
  (match List.rev buckets with
  | (_, last) :: _ -> Alcotest.(check int) "last bucket = count" 4 last
  | [] -> ());
  let p = M.to_prometheus t and j = M.to_json t in
  Alcotest.(check bool) "json exposes a buckets array" true
    (contains ~needle:{|"buckets":[|} j);
  List.iter
    (fun (upper, cum) ->
      let fu = M.fmt_float upper in
      let prom = Printf.sprintf {|_bucket{le="%s"} %d|} fu cum in
      let js = Printf.sprintf {|{"le":%s,"n":%d}|} fu cum in
      Alcotest.(check bool) ("prometheus renders " ^ prom) true
        (contains ~needle:prom p);
      Alcotest.(check bool) ("json renders " ^ js) true (contains ~needle:js j))
    buckets;
  (* an empty histogram has no occupied buckets and zero percentiles *)
  let t2 = M.create () in
  let h2 = M.histogram t2 "empty.ms" in
  Alcotest.(check int) "empty -> no buckets" 0
    (List.length (M.cumulative_buckets h2));
  Alcotest.(check bool) "empty buckets array in json" true
    (contains ~needle:{|"buckets":[]|} (M.to_json t2));
  Alcotest.(check (float 1e-9)) "empty p50" 0.0 (M.percentile h2 0.5);
  Alcotest.(check (float 1e-9)) "empty p95" 0.0 (M.percentile h2 0.95);
  Alcotest.(check (float 1e-9)) "empty p100" 0.0 (M.percentile h2 1.0)

(* -------------------------------------------------- structured logging --- *)

let test_log_json_format () =
  with_sink (fun lines ->
      Log.set_level Log.Debug;
      Log.set_format Log.Json;
      Fun.protect
        ~finally:(fun () -> Log.set_format Log.Text)
        (fun () ->
          Log.warn
            ~kv:[ ("channel", "ch1"); ("note", {|a "quote"|}) ]
            "budget exhausted");
      match !lines with
      | [ l ] ->
          Alcotest.(check bool) "balanced json" true (balanced l);
          List.iter
            (fun needle ->
              Alcotest.(check bool) ("line has " ^ needle) true
                (contains ~needle l))
            [
              {|"ts_ms":|};
              {|"level":"warn"|};
              {|"msg":"budget exhausted"|};
              {|"channel":"ch1"|};
              {|"note":"a \"quote\""|};
            ]
      | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls))

(* -------------------------------------------------- telemetry endpoints --- *)

let test_telemetry_endpoints () =
  let reg = M.create () in
  M.add (M.counter reg "health.attempted") 2;
  M.add (M.counter reg "health.ok") 2;
  let handlers =
    [
      ("/metrics", fun () -> Telemetry.text (M.to_prometheus reg));
      ( "/healthz",
        fun () ->
          let ok, body = Supervise.healthz_json ~reg () in
          Telemetry.json ~status:(if ok then 200 else 503) body );
      ("/vars", fun () -> Telemetry.json {|{"x":1}|});
    ]
  in
  match Telemetry.start ~addr:"127.0.0.1:0" ~handlers () with
  | Error e -> Alcotest.failf "telemetry start: %s" e
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> Telemetry.stop t)
        (fun () ->
          Alcotest.(check bool) "ephemeral port chosen" true
            (Telemetry.port t > 0);
          let code, body = Telemetry.fetch t "/metrics" in
          Alcotest.(check int) "/metrics 200" 200 code;
          Alcotest.(check bool) "prometheus body" true
            (contains ~needle:"gcatch_health_attempted 2" body);
          let code, body = Telemetry.fetch t "/healthz" in
          Alcotest.(check int) "/healthz 200 when healthy" 200 code;
          Alcotest.(check bool) "ok:true" true
            (contains ~needle:{|"ok":true|} body);
          (* injected deadline breach: the watchdog trips and /healthz
             flips to 503 with the reason, then recovers on clear *)
          Supervise.set_deadline_ms (-1);
          Fun.protect ~finally:Supervise.clear_deadline (fun () ->
              let code, body = Telemetry.fetch t "/healthz" in
              Alcotest.(check int) "/healthz 503 under pressure" 503 code;
              Alcotest.(check bool) "pressure reason" true
                (contains ~needle:"deadline exceeded" body));
          let code, _ = Telemetry.fetch t "/healthz" in
          Alcotest.(check int) "recovers after clear_deadline" 200 code;
          let code, _ = Telemetry.fetch t "/vars" in
          Alcotest.(check int) "/vars 200" 200 code;
          let code, _ = Telemetry.fetch t "/nope" in
          Alcotest.(check int) "unknown path 404" 404 code)

(* ------------------------------------------------------------ journal --- *)

let test_journal_truncation_recovery () =
  let path = Filename.temp_file "gcatch-journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () ->
      Journal.open_ ~path;
      Journal.emit ~event:"run.start"
        [ ("name", Journal.S "t"); ("files", Journal.I 1) ];
      Journal.emit ~dur_ms:1.5 ~event:"stage.done"
        [ ("stage", Journal.S "parse") ];
      Journal.close ();
      (* a SIGKILLed run leaves a half-written final line *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc {|{"seq":9,"ts_ms":123.0,"event":"pass.|};
      close_out oc;
      let sum = Journal.summarize_file path in
      Alcotest.(check bool) "truncation flagged" true sum.Journal.s_truncated;
      (* the valid prefix still parses: open, run.start, stage.done, close *)
      Alcotest.(check int) "valid prefix parsed" 4 sum.Journal.s_events;
      Alcotest.(check bool) "schema recovered" true
        (sum.Journal.s_schema = Some Journal.schema);
      Alcotest.(check bool) "run name recovered" true
        (sum.Journal.s_run_name = Some "t");
      let rep = Journal.report sum in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("report mentions " ^ needle) true
            (contains ~needle rep))
        [ "gcatch journal report"; "truncated"; "per-stage wall time" ])

(* Normalize a journal for cross-schedule comparison the same way the CI
   step does: drop schedule-dependent pool.* events, strip the volatile
   fields (seq, ts_ms, dur_ms, pid), then sort. *)
let normalized_journal path =
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines
  |> List.filter_map (fun l ->
         match Journal.parse_line l with
         | None -> Some ("UNPARSED:" ^ l)
         | Some fields ->
             let ev =
               Option.value (Journal.str_field fields "event") ~default:""
             in
             if String.length ev >= 5 && String.sub ev 0 5 = "pool." then None
             else
               Some
                 (String.concat ","
                    (List.filter_map
                       (fun (k, v) ->
                         match k with
                         | "seq" | "ts_ms" | "dur_ms" | "pid" -> None
                         | _ ->
                             Some
                               (k ^ "="
                               ^
                               match v with
                               | Journal.S s -> s
                               | Journal.I i -> string_of_int i
                               | Journal.F f -> Printf.sprintf "%g" f
                               | Journal.B b -> string_of_bool b))
                       fields)))
  |> List.sort compare

let test_journal_determinism_across_jobs () =
  let run jobs =
    let path = Filename.temp_file "gcatch-journal" ".jsonl" in
    (* both runs must be cold: the solve memo is process-wide, and a
       warm second run would journal hits where the first had misses *)
    Gcatch.Solve_cache.reset_memory ();
    Journal.open_ ~path;
    let e = Gcatch.Passes.engine ~jobs () in
    ignore (E.analyse e ~name:"det" [ multi_chan ]);
    Journal.close ();
    path
  in
  let p1 = run 1 in
  let p4 = run 4 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with _ -> ()) [ p1; p4 ])
    (fun () ->
      let n1 = normalized_journal p1 and n4 = normalized_journal p4 in
      Alcotest.(check bool) "nothing unparseable" true
        (not (List.exists (contains ~needle:"UNPARSED:") n1));
      Alcotest.(check (list string)) "normalized journals identical" n1 n4;
      Alcotest.(check bool) "solve events present" true
        (List.exists (contains ~needle:"event=solve.") n1);
      Alcotest.(check bool) "run end present" true
        (List.exists (contains ~needle:"event=run.end") n1))

(* ------------------------------------------------------------ sampler --- *)

let test_sampler_stack_table () =
  Sampler.reset ();
  Sampler.note_stacks [ (1, [ "run"; "stage.parse" ]); (2, [ "run" ]) ];
  Sampler.note_stacks [ (1, [ "run"; "stage.parse" ]) ];
  Sampler.note_stacks [ (2, [ "run" ]) ];
  Alcotest.(check int) "stack samples" 4 (Sampler.total_samples ());
  Alcotest.(check int) "ticks" 3 (Sampler.tick_count ());
  let c = Sampler.collapsed () in
  Alcotest.(check bool) "collapsed spine line" true
    (contains ~needle:"run;stage.parse 2\n" c);
  Alcotest.(check bool) "collapsed root line" true
    (contains ~needle:"run 2\n" c);
  (match Sampler.top 1 with
  | [ (_, n) ] -> Alcotest.(check int) "top-1 count" 2 n
  | l -> Alcotest.failf "expected 1 top entry, got %d" (List.length l));
  let rep = Sampler.report ~top:5 () in
  Alcotest.(check bool) "report header" true
    (contains ~needle:"sampling profiler: 4 stack sample(s)" rep);
  Sampler.reset ();
  Alcotest.(check int) "reset clears the table" 0 (Sampler.total_samples ())

(* The sampler must never perturb results: diagnostics are byte-identical
   with the ticker domain running (spine-only tracing armed) and without,
   at jobs=1 and jobs=4. *)
let test_sampler_diag_equality () =
  let diags ~sample jobs =
    let s =
      if sample then begin
        Trace.enable_spines ();
        Some (Sampler.start ~hz:500)
      end
      else None
    in
    let e = Gcatch.Passes.engine ~jobs () in
    let r = E.analyse e ~name:"s" [ multi_chan ] in
    (match s with
    | Some s ->
        Sampler.stop s;
        Trace.disable ();
        Sampler.reset ()
    | None -> ());
    D.list_to_json r.E.r_diags
  in
  List.iter
    (fun jobs ->
      let off = diags ~sample:false jobs in
      let on = diags ~sample:true jobs in
      Alcotest.(check string)
        (Printf.sprintf "diagnostics identical sampler on/off, jobs=%d" jobs)
        off on)
    [ 1; 4 ]

let tests =
  [
    Alcotest.test_case "log line format" `Quick test_log_format;
    Alcotest.test_case "log levels" `Quick test_log_levels;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "counters and merge" `Quick test_counters_and_merge;
    Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
    Alcotest.test_case "metrics json" `Quick test_metrics_json;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "spans across pool domains" `Quick
      test_spans_across_pool_domains;
    Alcotest.test_case "disabled tracer is a no-op" `Quick
      test_disabled_tracer_noop;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
    Alcotest.test_case "profile report" `Quick test_profile_report;
    Alcotest.test_case "metrics determinism across jobs" `Quick
      test_metrics_determinism_across_jobs;
    Alcotest.test_case "skip diagnostic enriched" `Quick
      test_skip_diag_enriched;
    Alcotest.test_case "engine counters from registry" `Quick
      test_engine_counters_from_registry;
    Alcotest.test_case "histogram bucket round-trip" `Quick
      test_histogram_bucket_round_trip;
    Alcotest.test_case "log json format" `Quick test_log_json_format;
    Alcotest.test_case "telemetry endpoints" `Quick test_telemetry_endpoints;
    Alcotest.test_case "journal truncation recovery" `Quick
      test_journal_truncation_recovery;
    Alcotest.test_case "journal determinism across jobs" `Quick
      test_journal_determinism_across_jobs;
    Alcotest.test_case "sampler stack table" `Quick test_sampler_stack_table;
    Alcotest.test_case "sampler diagnostic equality" `Quick
      test_sampler_diag_equality;
  ]
