(* gcatchd server-core tests (PR 9): concurrent requests reproduce
   one-shot diagnostics byte for byte at any --jobs, identical in-flight
   requests coalesce into one execution, the LRU cache bounds evict
   without changing verdicts, a full queue answers 429 with Retry-After,
   watch mode re-analyses only the edited file, and the hardened HTTP
   parser rejects oversize/length-less bodies without wedging. *)

module E = Goengine.Engine
module D = Goengine.Diagnostics
module F = Goengine.Faults
module M = Goobs.Metrics
module T = Goobs.Telemetry
module Serve = Goserve.Serve
module Proto = Goserve.Proto
module Memo = Goengine.Memo

let fig1_body =
  "(ctx context.Context, r string) (string, error) {\n\
   \toutDone := make(chan error)\n\
   \tgo func(a string) {\n\t\toutDone <- nil\n\t}(r)\n\
   \tselect {\n\
   \tcase err := <-outDone:\n\t\tif err != nil {\n\t\t\treturn \"\", err\n\t\t}\n\
   \tcase <-ctx.Done():\n\t\treturn \"\", ctx.Err()\n\
   \t}\n\
   \treturn \"ok\", nil\n\
   }\n"

(* a leaking channel: one BMOC bug per copy *)
let leak name =
  Printf.sprintf
    "package p\nfunc %s() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch \
     <- 1\n\t}()\n}\n"
    name

let clean = "package p\nfunc Clean() {\n\tprintln(1)\n}\n"

let pv name = M.value (M.counter M.default name)

let body_of_sources ?(passes = []) sources =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"gcatch-serve/1\",\"name\":\"cli\",\"files\":[";
  List.iteri
    (fun i src ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"path\":\"f%d.go\",\"src\":\"%s\"}" i
           (M.json_escape src)))
    sources;
  Buffer.add_char b ']';
  if passes <> [] then
    Buffer.add_string b
      (Printf.sprintf ",\"passes\":[%s]"
         (String.concat "," (List.map (fun p -> "\"" ^ p ^ "\"") passes)));
  Buffer.add_char b '}';
  Buffer.contents b

let diag_bytes_of_response body =
  match Proto.member_raw "run" body with
  | None -> Alcotest.fail "response has no run member"
  | Some run -> (
      match Proto.member_raw "diagnostics" run with
      | None -> Alcotest.fail "run has no diagnostics member"
      | Some d -> d)

let local_diag_bytes ~jobs sources =
  let engine = Gcatch.Passes.engine ~jobs ~registry:(M.create ()) () in
  let r = E.analyse engine ~name:"cli" sources in
  match Proto.member_raw "diagnostics" (E.run_to_json r) with
  | Some d -> d
  | None -> Alcotest.fail "local run has no diagnostics member"

let with_server ?cfg f =
  let srv = Serve.create ?cfg () in
  match
    T.start ~addr:"127.0.0.1:0"
      ~post:(Serve.post_handlers srv)
      ~handlers:(Serve.handlers srv) ()
  with
  | Error e -> Alcotest.fail e
  | Ok server ->
      Fun.protect
        ~finally:(fun () ->
          T.stop server;
          Gcatch.Solve_cache.set_memory_budget_mb 0)
        (fun () -> f srv server)

(* ------------------------------------------- concurrent byte-identity --- *)

(* Six concurrent clients, two distinct payloads, against a jobs=4
   server: every response must carry diagnostics byte-identical to a
   fresh one-shot jobs=1 run of the same sources. *)
let test_concurrent_byte_identity () =
  let set_a = [ leak "A1"; clean; leak "A2" ] in
  let set_b = [ leak "B1"; fig1_body |> ( ^ ) "package p\nfunc Exec" ] in
  let expect_a = local_diag_bytes ~jobs:1 set_a in
  let expect_b = local_diag_bytes ~jobs:1 set_b in
  with_server
    ~cfg:{ Serve.default_cfg with Serve.s_jobs = 4 }
    (fun _srv server ->
      let results = Array.make 6 (0, "") in
      let threads =
        List.init 6 (fun i ->
            Thread.create
              (fun () ->
                let sources = if i mod 2 = 0 then set_a else set_b in
                results.(i) <-
                  T.fetch_post server "/analyse" (body_of_sources sources))
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i (code, body) ->
          Alcotest.(check int) (Printf.sprintf "request %d status" i) 200 code;
          let expect = if i mod 2 = 0 then expect_a else expect_b in
          Alcotest.(check string)
            (Printf.sprintf "request %d diagnostics" i)
            expect
            (diag_bytes_of_response body))
        results)

(* ---------------------------------------------------------- coalescing --- *)

(* A stalled leader (solver:*!stall slows every solver call by 50 ms)
   and three duplicates fired once the leader is registered in flight:
   the duplicates must join the leader's execution and share its bytes,
   not re-run. *)
let test_coalescing () =
  (match F.parse "solver:*!stall" with
  | Ok specs -> F.set_plan specs
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:F.clear (fun () ->
      with_server (fun srv _server ->
          let sources = [ leak "CoalesceMe"; clean ] in
          let body = body_of_sources sources in
          let coalesced0 = pv "serve.coalesced" in
          let rq = { T.rq_path = "/analyse"; rq_headers = []; rq_body = body } in
          let leader = ref (T.text "") in
          let th = Thread.create (fun () -> leader := Serve.handle_analyse srv rq) () in
          (* wait for the leader to claim the in-flight slot *)
          let deadline = Unix.gettimeofday () +. 5.0 in
          while
            (Mutex.lock srv.Serve.infl_mu;
             let n = Hashtbl.length srv.Serve.inflight in
             Mutex.unlock srv.Serve.infl_mu;
             n = 0)
            && Unix.gettimeofday () < deadline
          do
            Thread.delay 0.002
          done;
          let dupes = Array.make 3 (T.text "") in
          let dthreads =
            List.init 3 (fun i ->
                Thread.create
                  (fun () -> dupes.(i) <- Serve.handle_analyse srv rq)
                  ())
          in
          List.iter Thread.join dthreads;
          Thread.join th;
          Alcotest.(check int) "leader status" 200 !leader.T.status;
          Array.iter
            (fun (r : T.response) ->
              Alcotest.(check string) "coalesced bytes" !leader.T.body r.T.body)
            dupes;
          Alcotest.(check bool) "coalescing hits counted" true
            (pv "serve.coalesced" - coalesced0 >= 1)))

(* ------------------------------------------------------- LRU eviction --- *)

let test_memo_lru () =
  let m : string Memo.t = Memo.create () in
  let evicted = ref 0 in
  Memo.set_budget ~on_evict:(fun n -> evicted := !evicted + n) m ~bytes:8192;
  for i = 0 to 9 do
    ignore
      (Memo.find_or_compute m
         (Printf.sprintf "k%d" i)
         (fun () -> (String.make 1024 (Char.chr (65 + i)), true)))
  done;
  Alcotest.(check bool) "evictions happened" true (!evicted > 0);
  Alcotest.(check bool) "table stayed bounded" true (Memo.size m < 10);
  (* the most recent key must still be resident; an evicted key
     recomputes to the same value *)
  (match Memo.find_or_compute m "k9" (fun () -> Alcotest.fail "k9 evicted") with
  | `Hit v -> Alcotest.(check string) "resident value" (String.make 1024 'J') v
  | `Computed _ -> Alcotest.fail "k9 should be a hit");
  match Memo.find_or_compute m "k0" (fun () -> (String.make 1024 'A', true)) with
  | `Hit v | `Computed v ->
      Alcotest.(check string) "recomputed value" (String.make 1024 'A') v

(* Three sizeable source sets through a 1 MB cache budget and a
   2-entry artifact cache: evictions must fire, and re-requesting the
   first set must reproduce its diagnostics byte for byte. *)
let test_lru_eviction_correctness () =
  let set seed =
    [ "package app\n" ^ Gocorpus.Filler.generate ~seed ~target_lines:800 ]
  in
  let a = set 101 and b = set 102 and c = set 103 in
  with_server
    ~cfg:
      {
        Serve.default_cfg with
        Serve.s_max_cache_mb = 1;
        s_max_artifact_sets = 2;
      }
    (fun _srv server ->
      let evict0 =
        pv "engine.artifact_evictions" + pv "engine.file_mem_evictions"
        + pv "bmoc.solve_cache_evictions"
      in
      let code1, body1 = T.fetch_post server "/analyse" (body_of_sources a) in
      Alcotest.(check int) "first A status" 200 code1;
      ignore (T.fetch_post server "/analyse" (body_of_sources b));
      ignore (T.fetch_post server "/analyse" (body_of_sources c));
      let code2, body2 = T.fetch_post server "/analyse" (body_of_sources a) in
      Alcotest.(check int) "second A status" 200 code2;
      Alcotest.(check bool) "evictions happened" true
        (pv "engine.artifact_evictions" + pv "engine.file_mem_evictions"
         + pv "bmoc.solve_cache_evictions"
         - evict0
         > 0);
      Alcotest.(check string) "evicted set re-solves identically"
        (diag_bytes_of_response body1)
        (diag_bytes_of_response body2))

(* --------------------------------------------------- 429 backpressure --- *)

let test_429_under_full_queue () =
  (match F.parse "solver:*!stall" with
  | Ok specs -> F.set_plan specs
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:F.clear (fun () ->
      with_server
        ~cfg:{ Serve.default_cfg with Serve.s_max_queue = 1 }
        (fun srv _server ->
          let slow = body_of_sources [ leak "QueueHog"; clean ] in
          let rq b = { T.rq_path = "/analyse"; rq_headers = []; rq_body = b } in
          let leader = ref (T.text "") in
          let th =
            Thread.create (fun () -> leader := Serve.handle_analyse srv (rq slow)) ()
          in
          let deadline = Unix.gettimeofday () +. 5.0 in
          while
            (Mutex.lock srv.Serve.infl_mu;
             let n = Hashtbl.length srv.Serve.inflight in
             Mutex.unlock srv.Serve.infl_mu;
             n = 0)
            && Unix.gettimeofday () < deadline
          do
            Thread.delay 0.002
          done;
          let r =
            Serve.handle_analyse srv (rq (body_of_sources [ leak "Rejected" ]))
          in
          Thread.join th;
          Alcotest.(check int) "rejected status" 429 r.T.status;
          Alcotest.(check (option string)) "retry-after header" (Some "1")
            (List.assoc_opt "Retry-After" r.T.headers);
          Alcotest.(check int) "leader status" 200 !leader.T.status))

(* ---------------------------------------------------------- watch mode --- *)

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let test_watch_reanalyses_only_edited () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcatch-watch-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  write_file (Filename.concat dir "a.go") (leak "WatchedA");
  write_file (Filename.concat dir "b.go") clean;
  let srv = Serve.create () in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop_watch srv;
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () ->
      let wait_for ?(timeout = 10.0) pred =
        let deadline = Unix.gettimeofday () +. timeout in
        while (not (pred ())) && Unix.gettimeofday () < deadline do
          Thread.delay 0.02
        done;
        Alcotest.(check bool) "condition reached in time" true (pred ())
      in
      let runs0 = pv "serve.watch_runs" in
      Serve.start_watch srv ~dir ~interval_s:0.05;
      wait_for (fun () -> pv "serve.watch_runs" - runs0 >= 1);
      (* first warm run lexed both files; wait for it to finish *)
      let lex0 = ref (pv "stage.lex.runs") in
      wait_for (fun () ->
          let now = pv "stage.lex.runs" in
          let stable = now = !lex0 && now > 0 in
          lex0 := now;
          stable);
      (* a body-only edit: signatures unchanged, so only this file's
         frontend re-runs *)
      write_file (Filename.concat dir "a.go") (leak "WatchedA2");
      wait_for (fun () -> pv "serve.watch_runs" - runs0 >= 2);
      let lex_before = !lex0 in
      wait_for (fun () -> pv "stage.lex.runs" > lex_before);
      Thread.delay 0.3;
      Alcotest.(check int) "only the edited file re-lexed" (lex_before + 1)
        (pv "stage.lex.runs"))

(* ------------------------------------------------- parser hardening ----- *)

let test_http_parser_hardening () =
  with_server (fun _srv server ->
      (* oversize body: declared length past max_body answers 413 *)
      let sa = Unix.ADDR_INET (Unix.inet_addr_loopback, T.port server) in
      let raw_request payload =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with _ -> ())
          (fun () ->
            Unix.connect fd sa;
            let rec write off =
              if off < String.length payload then
                write (off + Unix.write_substring fd payload off
                               (String.length payload - off))
            in
            write 0;
            let b = Buffer.create 256 in
            let buf = Bytes.create 1024 in
            let rec read () =
              match Unix.read fd buf 0 1024 with
              | 0 -> ()
              | n ->
                  Buffer.add_subbytes b buf 0 n;
                  read ()
              | exception _ -> ()
            in
            read ();
            Buffer.contents b)
      in
      let status raw =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> int_of_string_opt code
        | _ -> None
      in
      let oversize =
        raw_request
          "POST /analyse HTTP/1.1\r\nHost: x\r\nContent-Length: \
           999999999\r\n\r\n"
      in
      Alcotest.(check (option int)) "oversize body" (Some 413) (status oversize);
      let lengthless =
        raw_request "POST /analyse HTTP/1.1\r\nHost: x\r\n\r\n{}"
      in
      Alcotest.(check (option int)) "missing content-length" (Some 411)
        (status lengthless);
      let bad = raw_request "\r\n\r\n" in
      Alcotest.(check (option int)) "garbage request" (Some 400) (status bad);
      (* the GET endpoints keep working after the abuse *)
      let code, _ = T.fetch server "/healthz" in
      Alcotest.(check bool) "healthz still answers" true
        (code = 200 || code = 503);
      let code, body = T.fetch_post server "/analyse" "{\"schema\":\"nope\"}" in
      Alcotest.(check int) "unknown schema is 400" 400 code;
      Alcotest.(check bool) "error body is JSON" true
        (String.length body > 0 && body.[0] = '{'))

let tests =
  [
    Alcotest.test_case "concurrent requests byte-identical" `Quick
      test_concurrent_byte_identity;
    Alcotest.test_case "in-flight coalescing" `Quick test_coalescing;
    Alcotest.test_case "memo LRU bound" `Quick test_memo_lru;
    Alcotest.test_case "LRU eviction preserves verdicts" `Quick
      test_lru_eviction_correctness;
    Alcotest.test_case "429 under full queue" `Quick test_429_under_full_queue;
    Alcotest.test_case "watch re-analyses only the edit" `Quick
      test_watch_reanalyses_only_edited;
    Alcotest.test_case "hardened HTTP parser" `Quick
      test_http_parser_hardening;
  ]
