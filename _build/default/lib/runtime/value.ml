(* Runtime values of the MiniGo interpreter. *)

type t =
  | Vint of int
  | Vbool of bool
  | Vstr of string
  | Vunit
  | Vnil
  | Vchan of chan
  | Vmutex of mutex
  | Vwg of waitgroup
  | Vcond of cond
  | Vstruct of (string, t) Hashtbl.t
  | Vclosure of closure
  | Vtuple of t list
  | Vctx of chan (* a context is represented by its Done channel *)
  | Vtesting
  | Verror of string option (* None represents a nil error *)

and chan = {
  chan_id : int;
  capacity : int;
  buffer : t Queue.t;
  mutable closed : bool;
  mutable send_waiters : send_waiter list; (* FIFO: append at back *)
  mutable recv_waiters : recv_waiter list;
  made_at : Minigo.Loc.t;
  elem_zero : t; (* value a receive on a closed channel yields *)
}

and send_waiter = {
  sw_gid : int;
  sw_value : t;
  sw_wake : unit -> unit; (* resume the sender *)
  sw_alive : unit -> bool; (* still waiting? (select may have fired) *)
  sw_claim : unit -> bool; (* atomically claim; false if already taken *)
}

and recv_waiter = {
  rw_gid : int;
  rw_wake : t * bool -> unit; (* resume the receiver with (value, ok) *)
  rw_alive : unit -> bool;
  rw_claim : unit -> bool;
}

and mutex = {
  mutex_id : int;
  mutable held_by : int option;
  mutable lock_waiters : (int * (unit -> unit)) list;
}

and waitgroup = {
  wg_id : int;
  mutable counter : int;
  mutable wg_waiters : (int * (unit -> unit)) list;
}

and cond = {
  cond_id : int;
  mutable cond_waiters : (int * (unit -> unit)) list;
}

and closure = {
  params : Minigo.Ast.param list;
  results : Minigo.Ast.typ list;
  body : Minigo.Ast.block;
  env : (string, t ref) Hashtbl.t;
  fn_name : string; (* for diagnostics *)
}

let rec to_string = function
  | Vint n -> string_of_int n
  | Vbool b -> string_of_bool b
  | Vstr s -> s
  | Vunit -> "{}"
  | Vnil -> "nil"
  | Vchan c -> Printf.sprintf "<chan#%d>" c.chan_id
  | Vmutex m -> Printf.sprintf "<mutex#%d>" m.mutex_id
  | Vwg w -> Printf.sprintf "<wg#%d>" w.wg_id
  | Vcond c -> Printf.sprintf "<cond#%d>" c.cond_id
  | Vstruct fields ->
      let fs =
        Hashtbl.fold (fun k v acc -> Printf.sprintf "%s: %s" k (to_string v) :: acc) fields []
      in
      "{" ^ String.concat ", " (List.sort compare fs) ^ "}"
  | Vclosure c -> Printf.sprintf "<func %s>" c.fn_name
  | Vtuple vs -> "(" ^ String.concat ", " (List.map to_string vs) ^ ")"
  | Vctx c -> Printf.sprintf "<ctx#%d>" c.chan_id
  | Vtesting -> "<testing.T>"
  | Verror None -> "nil"
  | Verror (Some m) -> Printf.sprintf "error(%s)" m

let truthy = function
  | Vbool b -> b
  | Vnil -> false
  | Verror None -> false
  | Verror (Some _) -> true
  | _ -> true

(* Equality used by == / !=; nil compares with channels, errors, etc. *)
let rec equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vstr x, Vstr y -> String.equal x y
  | Vunit, Vunit -> true
  | Vnil, Vnil -> true
  | Vnil, Verror None | Verror None, Vnil -> true
  | Verror x, Verror y -> x = y
  | Vnil, (Vchan _ | Vclosure _ | Vstruct _) | (Vchan _ | Vclosure _ | Vstruct _), Vnil
    ->
      false
  | Vchan x, Vchan y -> x.chan_id = y.chan_id
  | Vmutex x, Vmutex y -> x.mutex_id = y.mutex_id
  | Vtuple xs, Vtuple ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | _ -> false

(* Zero value of a type, used for var declarations and closed-channel
   receives. *)
let zero_of_type ~fresh_chan ~fresh_mutex ~fresh_wg ~fresh_cond
    (ty : Minigo.Ast.typ) : t =
  match ty with
  | Tint -> Vint 0
  | Tbool -> Vbool false
  | Tstring -> Vstr ""
  | Tunit -> Vunit
  | Terror -> Verror None
  | Tchan _ -> Vnil
  | Tmutex -> Vmutex (fresh_mutex ())
  | Twaitgroup -> Vwg (fresh_wg ())
  | Tcond -> Vcond (fresh_cond ())
  | Tstruct _ -> Vstruct (Hashtbl.create 4)
  | Tfunc _ -> Vnil
  | Ttesting -> Vtesting
  | Tcontext -> Vctx (fresh_chan ())
  | Tany -> Vnil
