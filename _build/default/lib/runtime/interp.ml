(* Tree-walking interpreter for MiniGo on top of {!Scheduler}.

   Environments map names to mutable cells; closures and goroutine
   literals share cells with their defining scope, giving Go's
   capture-by-reference semantics.  Control flow uses exceptions
   ([Return_exc], [Break_exc], [Continue_exc]); deferred operations are
   recorded per call frame and executed in LIFO order on every exit —
   normal return, panic, and testing.Fatal (Goexit) alike. *)

module A = Minigo.Ast
module V = Value
module S = Scheduler

exception Return_exc of V.t list
exception Break_exc
exception Continue_exc

type env = (string, V.t ref) Hashtbl.t

type ctx = {
  sched : S.t;
  funcs : (string, A.func_decl) Hashtbl.t;
  structs : (string, (string * A.typ) list) Hashtbl.t;
  nil_chan : V.chan Lazy.t;
      (* operations on a nil channel block forever in Go; they all target
         this orphan channel nobody else can touch *)
}

let clone (env : env) : env = Hashtbl.copy env

let lookup env x =
  match Hashtbl.find_opt env x with
  | Some r -> r
  | None -> raise (S.Go_panic (Printf.sprintf "undefined variable %s" x))

let define env x v = if x <> "_" then Hashtbl.replace env x (ref v)

let rec zero ctx (ty : A.typ) : V.t =
  match ty with
  | Tstruct name -> (
      match Hashtbl.find_opt ctx.structs name with
      | Some fields ->
          let tbl = Hashtbl.create (List.length fields) in
          List.iter (fun (f, ft) -> Hashtbl.replace tbl f (zero ctx ft)) fields;
          V.Vstruct tbl
      | None -> V.Vstruct (Hashtbl.create 4))
  | _ ->
      V.zero_of_type
        ~fresh_chan:(fun () -> S.fresh_chan ctx.sched ~loc:Minigo.Loc.none ())
        ~fresh_mutex:(fun () -> S.fresh_mutex ctx.sched ())
        ~fresh_wg:(fun () -> S.fresh_wg ctx.sched ())
        ~fresh_cond:(fun () -> S.fresh_cond ctx.sched ())
        ty

let as_chan ctx loc = function
  | V.Vchan c -> c
  | V.Vctx c -> c
  | V.Vnil ->
      ignore loc;
      Lazy.force ctx.nil_chan
  | v -> raise (S.Go_panic ("not a channel: " ^ V.to_string v))

let as_int = function
  | V.Vint n -> n
  | v -> raise (S.Go_panic ("not an int: " ^ V.to_string v))

let as_struct = function
  | V.Vstruct t -> t
  | v -> raise (S.Go_panic ("not a struct: " ^ V.to_string v))

(* ----------------------------------------------------------- exprs *)

let rec eval ctx env (e : A.expr) : V.t =
  match e.e with
  | Int n -> Vint n
  | Bool b -> Vbool b
  | Str s -> Vstr s
  | Nil -> Vnil
  | Ident x -> (
      match Hashtbl.find_opt env x with
      | Some r -> !r
      | None -> (
          match Hashtbl.find_opt ctx.funcs x with
          | Some fd ->
              Vclosure
                {
                  params = fd.params;
                  results = fd.results;
                  body = fd.body;
                  env = Hashtbl.create 1;
                  fn_name = fd.fname;
                }
          | None -> raise (S.Go_panic ("undefined: " ^ x))))
  | Binop (op, a, b) -> eval_binop ctx env op a b
  | Unop (Neg, a) -> Vint (-as_int (eval ctx env a))
  | Unop (Not, a) -> Vbool (not (V.truthy (eval ctx env a)))
  | Call c -> (
      match eval_call ctx env e.eloc c with
      | [ v ] -> v
      | [] -> V.Vunit
      | vs -> Vtuple vs)
  | MakeChan (t, cap) ->
      let capacity = match cap with Some c -> as_int (eval ctx env c) | None -> 0 in
      Vchan (S.fresh_chan ctx.sched ~capacity ~elem_zero:(zero ctx t) ~loc:e.eloc ())
  | Recv ch ->
      let c = as_chan ctx e.eloc (eval ctx env ch) in
      let v, _ok = Effect.perform (S.Chan_recv (c, e.eloc)) in
      v
  | Field (b, f) -> (
      let bv = eval ctx env b in
      match Hashtbl.find_opt (as_struct bv) f with
      | Some v -> v
      | None -> raise (S.Go_panic ("no field " ^ f)))
  | StructLit (name, fields) ->
      let v = zero ctx (Tstruct name) in
      let tbl = as_struct v in
      List.iter (fun (f, fe) -> Hashtbl.replace tbl f (eval ctx env fe)) fields;
      v
  | FuncLit (params, results, body) ->
      Vclosure { params; results; body; env; fn_name = "<func literal>" }
  | Len a -> (
      match eval ctx env a with
      | Vstr s -> Vint (String.length s)
      | Vchan c -> Vint (Queue.length c.buffer)
      | v -> raise (S.Go_panic ("len of " ^ V.to_string v)))

and eval_binop ctx env op a b =
  match op with
  | And -> if V.truthy (eval ctx env a) then eval ctx env b else Vbool false
  | Or -> if V.truthy (eval ctx env a) then Vbool true else eval ctx env b
  | _ -> (
      let va = eval ctx env a in
      let vb = eval ctx env b in
      match (op, va, vb) with
      | Add, V.Vint x, V.Vint y -> Vint (x + y)
      | Add, V.Vstr x, V.Vstr y -> Vstr (x ^ y)
      | Sub, V.Vint x, V.Vint y -> Vint (x - y)
      | Mul, V.Vint x, V.Vint y -> Vint (x * y)
      | Div, V.Vint x, V.Vint y ->
          if y = 0 then raise (S.Go_panic "integer divide by zero") else Vint (x / y)
      | Mod, V.Vint x, V.Vint y ->
          if y = 0 then raise (S.Go_panic "integer divide by zero") else Vint (x mod y)
      | Eq, x, y -> Vbool (V.equal x y)
      | Neq, x, y -> Vbool (not (V.equal x y))
      | Lt, V.Vint x, V.Vint y -> Vbool (x < y)
      | Le, V.Vint x, V.Vint y -> Vbool (x <= y)
      | Gt, V.Vint x, V.Vint y -> Vbool (x > y)
      | Ge, V.Vint x, V.Vint y -> Vbool (x >= y)
      | Lt, V.Vstr x, V.Vstr y -> Vbool (x < y)
      | Gt, V.Vstr x, V.Vstr y -> Vbool (x > y)
      | _ ->
          raise
            (S.Go_panic
               (Printf.sprintf "bad operands: %s %s %s" (V.to_string va)
                  (Minigo.Pretty.binop_str op) (V.to_string vb))))

and eval_call ctx env loc (c : A.call) : V.t list =
  match c.callee with
  | Fname "println" | Fname "print" ->
      let vs = List.map (eval ctx env) c.args in
      Effect.perform (S.Output (String.concat " " (List.map V.to_string vs)));
      []
  | Fname "sleep" ->
      let n = as_int (eval ctx env (List.hd c.args)) in
      Effect.perform (S.Sleep_eff n);
      []
  | Fname "errorf" -> (
      match List.map (eval ctx env) c.args with
      | [ V.Vstr m ] -> [ Verror (Some m) ]
      | _ -> [ Verror (Some "error") ])
  | Fname "background" -> [ Vctx (S.fresh_chan ctx.sched ~loc ()) ]
  | Fname "cancel" -> (
      match eval ctx env (List.hd c.args) with
      | Vctx ch -> (
          (* cancelling twice is a no-op, unlike closing a channel *)
          match Effect.perform (S.Chan_close (ch, loc)) with
          | () -> []
          | exception S.Go_panic _ -> [])
      | _ -> raise (S.Go_panic "cancel of non-context"))
  | Fname f -> (
      match Hashtbl.find_opt env f with
      | Some { contents = V.Vclosure cl } ->
          call_closure ctx cl (List.map (eval ctx env) c.args)
      | Some { contents = v } ->
          raise (S.Go_panic ("calling non-function " ^ V.to_string v))
      | None -> (
          match Hashtbl.find_opt ctx.funcs f with
          | Some fd -> call_func ctx fd (List.map (eval ctx env) c.args)
          | None -> raise (S.Go_panic ("undefined function " ^ f))))
  | Fexpr fe -> (
      match eval ctx env fe with
      | Vclosure cl -> call_closure ctx cl (List.map (eval ctx env) c.args)
      | v -> raise (S.Go_panic ("calling non-function " ^ V.to_string v)))
  | Fmethod (recv, m) -> eval_method ctx env loc recv m c.args

and eval_method ctx env loc recv m args : V.t list =
  let rv = eval ctx env recv in
  match (rv, m) with
  | V.Vmutex mu, "Lock" ->
      Effect.perform (S.Mutex_lock (mu, loc));
      []
  | V.Vmutex mu, "Unlock" ->
      Effect.perform (S.Mutex_unlock (mu, loc));
      []
  | V.Vwg w, "Add" ->
      let n = as_int (eval ctx env (List.hd args)) in
      Effect.perform (S.Wg_add (w, n, loc));
      []
  | V.Vwg w, "Done" ->
      Effect.perform (S.Wg_done (w, loc));
      []
  | V.Vwg w, "Wait" ->
      Effect.perform (S.Wg_wait (w, loc));
      []
  | V.Vcond c, "Wait" ->
      Effect.perform (S.Cond_wait (c, loc));
      []
  | V.Vcond c, "Signal" ->
      Effect.perform (S.Cond_signal (c, loc));
      []
  | V.Vcond c, "Broadcast" ->
      Effect.perform (S.Cond_broadcast (c, loc));
      []
  | V.Vtesting, ("Fatal" | "Fatalf" | "FailNow") ->
      let msg = List.map (fun a -> V.to_string (eval ctx env a)) args in
      Effect.perform (S.Output ("FATAL: " ^ String.concat " " msg));
      raise S.Goexit
  | V.Vtesting, _ ->
      let msg = List.map (fun a -> V.to_string (eval ctx env a)) args in
      Effect.perform (S.Output ("t." ^ m ^ ": " ^ String.concat " " msg));
      []
  | V.Vctx ch, "Done" -> [ Vchan ch ]
  | V.Vctx _, "Err" -> [ Verror (Some "context canceled") ]
  | V.Verror e, "Error" -> [ Vstr (Option.value e ~default:"") ]
  | v, m -> raise (S.Go_panic (Printf.sprintf "%s has no method %s" (V.to_string v) m))

(* Call a top-level function. *)
and call_func ctx (fd : A.func_decl) (args : V.t list) : V.t list =
  let env = Hashtbl.create 16 in
  List.iteri
    (fun i (p : A.param) ->
      define env p.pname
        (match List.nth_opt args i with Some v -> v | None -> zero ctx p.ptyp))
    fd.params;
  run_body ctx env fd.body fd.results

and call_closure ctx (cl : V.closure) (args : V.t list) : V.t list =
  let env = clone cl.env in
  List.iteri
    (fun i (p : A.param) ->
      define env p.pname
        (match List.nth_opt args i with Some v -> v | None -> zero ctx p.ptyp))
    cl.params;
  run_body ctx env cl.body cl.results

(* Execute a function body with defer handling. *)
and run_body ctx env body results : V.t list =
  let defers : (unit -> unit) list ref = ref [] in
  let run_defers () =
    let ds = !defers in
    defers := [];
    List.iter (fun d -> d ()) ds
  in
  match exec_block ctx env defers body with
  | () ->
      run_defers ();
      List.map (zero ctx) results
  | exception Return_exc vs ->
      run_defers ();
      vs
  | exception e ->
      (* panic or Goexit: run defers, then continue unwinding *)
      run_defers ();
      raise e

and exec_block ctx env defers (b : A.block) : unit =
  let env = clone env in
  List.iter (exec_stmt ctx env defers) b

and exec_stmt ctx env defers (s : A.stmt) : unit =
  let loc = s.sloc in
  match s.s with
  | Decl (x, ty, init) ->
      let v =
        match init with
        | Some e -> eval ctx env e
        | None -> ( match ty with Some t -> zero ctx t | None -> V.Vnil)
      in
      define env x v
  | Define (xs, e) -> (
      match (xs, e.e) with
      | [ x; ok ], Recv ch ->
          let c = as_chan ctx loc (eval ctx env ch) in
          let v, okv = Effect.perform (S.Chan_recv (c, loc)) in
          define env x v;
          define env ok (Vbool okv)
      | _, Call call -> (
          let vs = eval_call ctx env loc call in
          match (xs, vs) with
          | [ x ], [ v ] -> define env x v
          | xs, vs when List.length xs = List.length vs ->
              List.iter2 (define env) xs vs
          | [ x ], [] -> define env x V.Vunit
          | _ ->
              raise
                (S.Go_panic
                   (Printf.sprintf "assignment mismatch: %d = %d" (List.length xs)
                      (List.length vs))))
      | [ x ], _ -> define env x (eval ctx env e)
      | _ -> raise (S.Go_panic "bad multi-assign"))
  | Assign (lv, e) -> (
      let v = eval ctx env e in
      match lv with
      | Lid "_" -> ()
      | Lid x -> lookup env x := v
      | Lfield (b, f) -> Hashtbl.replace (as_struct (eval ctx env b)) f v)
  | ExprStmt e -> ignore (eval ctx env e)
  | Send (ch, v) ->
      let c = as_chan ctx loc (eval ctx env ch) in
      let value = eval ctx env v in
      Effect.perform (S.Chan_send (c, value, loc))
  | CloseStmt ch ->
      let c = as_chan ctx loc (eval ctx env ch) in
      Effect.perform (S.Chan_close (c, loc))
  | Go call -> (
      match call.callee with
      | Fname _ | Fexpr _ | Fmethod _ ->
          (* evaluate callee and args now, run later *)
          let thunk =
            match call.callee with
            | Fname f -> (
                match Hashtbl.find_opt env f with
                | Some { contents = V.Vclosure cl } ->
                    let args = List.map (eval ctx env) call.args in
                    fun () -> ignore (call_closure ctx cl args)
                | _ -> (
                    match Hashtbl.find_opt ctx.funcs f with
                    | Some fd ->
                        let args = List.map (eval ctx env) call.args in
                        fun () -> ignore (call_func ctx fd args)
                    | None -> raise (S.Go_panic ("undefined function " ^ f))))
            | Fexpr fe -> (
                match eval ctx env fe with
                | Vclosure cl ->
                    let args = List.map (eval ctx env) call.args in
                    fun () -> ignore (call_closure ctx cl args)
                | v -> raise (S.Go_panic ("go on non-function " ^ V.to_string v)))
            | Fmethod _ ->
                let env' = clone env in
                fun () -> ignore (eval_call ctx env' loc call)
          in
          Effect.perform (S.Spawn (thunk, "go")))
  | GoFuncLit (params, body, args) ->
      let argvs = List.map (eval ctx env) args in
      let cl = { V.params; results = []; body; env; fn_name = "<goroutine>" } in
      Effect.perform (S.Spawn ((fun () -> ignore (call_closure ctx cl argvs)), "go"))
  | If (cond, then_b, else_b) ->
      if V.truthy (eval ctx env cond) then exec_block ctx env defers then_b
      else Option.iter (exec_block ctx env defers) else_b
  | For (kind, body) -> exec_for ctx env defers loc kind body
  | Select (cases, dflt) -> exec_select ctx env defers loc cases dflt
  | Return es -> raise (Return_exc (List.map (eval ctx env) es))
  | DeferStmt d ->
      let thunk =
        match d with
        | DeferCall call -> (
            (* Go evaluates deferred call arguments at registration *)
            match call.callee with
            | Fname f -> (
                match Hashtbl.find_opt ctx.funcs f with
                | Some fd ->
                    let args = List.map (eval ctx env) call.args in
                    fun () -> ignore (call_func ctx fd args)
                | None -> (
                    match Hashtbl.find_opt env f with
                    | Some { contents = V.Vclosure cl } ->
                        let args = List.map (eval ctx env) call.args in
                        fun () -> ignore (call_closure ctx cl args)
                    | _ ->
                        let env' = clone env in
                        fun () -> ignore (eval_call ctx env' loc call)))
            | _ ->
                let env' = clone env in
                fun () -> ignore (eval_call ctx env' loc call))
        | DeferSend (ch, v) ->
            let c = as_chan ctx loc (eval ctx env ch) in
            let env' = clone env in
            fun () ->
              let value = eval ctx env' v in
              Effect.perform (S.Chan_send (c, value, loc))
        | DeferClose ch ->
            let c = as_chan ctx loc (eval ctx env ch) in
            fun () -> Effect.perform (S.Chan_close (c, loc))
        | DeferFuncLit body ->
            let env' = clone env in
            fun () ->
              let inner_defers = ref [] in
              (try exec_block ctx env' inner_defers body
               with Return_exc _ -> ());
              List.iter (fun d -> d ()) !inner_defers
      in
      defers := thunk :: !defers
  | Break -> raise Break_exc
  | Continue -> raise Continue_exc
  | Panic e ->
      let v = eval ctx env e in
      raise (S.Go_panic (V.to_string v))
  | BlockStmt b -> exec_block ctx env defers b
  | IncDec (lv, up) -> (
      let delta = if up then 1 else -1 in
      match lv with
      | Lid x ->
          let r = lookup env x in
          r := Vint (as_int !r + delta)
      | Lfield (b, f) ->
          let tbl = as_struct (eval ctx env b) in
          let cur = match Hashtbl.find_opt tbl f with Some v -> as_int v | None -> 0 in
          Hashtbl.replace tbl f (Vint (cur + delta)))

and exec_for ctx env defers loc kind body =
  let loop_body env' =
    try exec_block ctx env' defers body with Continue_exc -> ()
  in
  try
    match kind with
    | ForEver ->
        while true do
          Effect.perform S.Yield;
          loop_body env
        done
    | ForCond cond ->
        while V.truthy (eval ctx env cond) do
          Effect.perform S.Yield;
          loop_body env
        done
    | ForClassic (init, cond, post) ->
        let env = clone env in
        Option.iter (exec_stmt ctx env defers) init;
        let check () =
          match cond with Some c -> V.truthy (eval ctx env c) | None -> true
        in
        while check () do
          loop_body env;
          Option.iter (exec_stmt ctx env defers) post
        done
    | ForRangeInt (x, e) ->
        let n = as_int (eval ctx env e) in
        let env = clone env in
        define env x (Vint 0);
        for i = 0 to n - 1 do
          lookup env x := Vint i;
          loop_body env
        done
    | ForRangeChan (bind, e) ->
        let c = as_chan ctx loc (eval ctx env e) in
        let env = clone env in
        Option.iter (fun x -> define env x V.Vnil) bind;
        let continue_loop = ref true in
        while !continue_loop do
          let v, ok = Effect.perform (S.Chan_recv (c, loc)) in
          if ok then begin
            Option.iter (fun x -> lookup env x := v) bind;
            loop_body env
          end
          else continue_loop := false
        done
  with Break_exc -> ()

and exec_select ctx env defers loc cases dflt =
  let arms =
    List.map
      (fun case ->
        match case with
        | A.CaseRecv (_, _, ch, _) -> S.Sel_recv (as_chan ctx loc (eval ctx env ch))
        | A.CaseSend (ch, v, _) ->
            S.Sel_send (as_chan ctx loc (eval ctx env ch), eval ctx env v))
      cases
  in
  match Effect.perform (S.Select_eff (arms, dflt <> None, loc)) with
  | S.Chose_default -> (
      match dflt with Some b -> exec_block ctx env defers b | None -> ())
  | S.Chose_send (i) -> (
      match List.nth cases i with
      | A.CaseSend (_, _, body) -> exec_block ctx env defers body
      | A.CaseRecv _ -> assert false)
  | S.Chose_recv (i, v, ok) -> (
      match List.nth cases i with
      | A.CaseRecv (bind, wants_ok, _, body) ->
          let env = clone env in
          Option.iter (fun x -> define env x v) bind;
          if wants_ok then define env "ok" (Vbool ok);
          exec_block ctx env defers body
      | A.CaseSend _ -> assert false)

(* ------------------------------------------------------------- API *)

let build_ctx sched (prog : A.program) : ctx =
  let funcs = Hashtbl.create 16 in
  let structs = Hashtbl.create 16 in
  List.iter
    (fun (file : A.file) ->
      List.iter
        (fun d ->
          match d with
          | A.Dfunc fd -> Hashtbl.replace funcs fd.fname fd
          | A.Dstruct sd -> Hashtbl.replace structs sd.struct_name sd.fields)
        file.decls)
    prog;
  {
    sched;
    funcs;
    structs;
    nil_chan = lazy (S.fresh_chan sched ~loc:Minigo.Loc.none ());
  }

(* Run [entry] (default "main"); test functions get a testing.T value. *)
let run ?(seed = 42) ?(fuel = 200_000) ?(entry = "main") (prog : A.program) :
    S.report =
  let sched = S.create ~seed ~fuel () in
  let ctx = build_ctx sched prog in
  match Hashtbl.find_opt ctx.funcs entry with
  | None -> failwith ("no entry function " ^ entry)
  | Some fd ->
      let args = List.map (fun (p : A.param) -> zero ctx p.ptyp) fd.params in
      S.run sched ~entry:(fun () -> ignore (call_func ctx fd args))

(* Run under many seeds; aggregate leak behaviour.  Returns
   (runs, runs-with-leak, max steps). *)
let run_schedules ?(seeds = 20) ?(fuel = 200_000) ?(entry = "main") prog =
  let leaks = ref 0 in
  let max_steps = ref 0 in
  let reports = ref [] in
  for seed = 1 to seeds do
    let r = run ~seed ~fuel ~entry prog in
    if r.S.leaked <> [] then incr leaks;
    if r.S.steps > !max_steps then max_steps := r.S.steps;
    reports := r :: !reports
  done;
  (seeds, !leaks, !max_steps, List.rev !reports)
