lib/runtime/value.ml: Hashtbl List Minigo Printf Queue String
