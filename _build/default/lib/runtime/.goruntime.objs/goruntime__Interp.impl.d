lib/runtime/interp.ml: Effect Hashtbl Lazy List Minigo Option Printf Queue Scheduler String Value
