lib/runtime/interp.mli: Minigo Scheduler
