lib/runtime/scheduler.ml: Effect List Minigo Queue Random Value
