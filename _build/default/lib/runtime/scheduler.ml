(* Cooperative goroutine scheduler built on OCaml 5 effect handlers.

   Every goroutine runs inside [Effect.Deep.match_with] with a handler
   that turns channel/mutex/waitgroup operations into scheduler
   transitions.  The run loop picks the next runnable goroutine with a
   seeded PRNG, so re-running a program under different seeds explores
   different interleavings — this is how the harness both *manifests*
   seeded BMOC bugs and validates GFix patches (paper §5.3, where the
   authors inject random sleeps around buggy channel operations).

   A goroutine that is still blocked when the run queue drains is a
   *leaked* goroutine: exactly the observable symptom of a blocking
   misuse-of-channel bug. *)

open! Effect
open Effect.Deep

type sel_arm = Sel_recv of Value.chan | Sel_send of Value.chan * Value.t

type sel_outcome =
  | Chose_recv of int * Value.t * bool
  | Chose_send of int
  | Chose_default

type _ Effect.t +=
  | Spawn : (unit -> unit) * string -> unit Effect.t
  | Chan_send : Value.chan * Value.t * Minigo.Loc.t -> unit Effect.t
  | Chan_recv : Value.chan * Minigo.Loc.t -> (Value.t * bool) Effect.t
  | Chan_close : Value.chan * Minigo.Loc.t -> unit Effect.t
  | Select_eff : sel_arm list * bool * Minigo.Loc.t -> sel_outcome Effect.t
  | Mutex_lock : Value.mutex * Minigo.Loc.t -> unit Effect.t
  | Mutex_unlock : Value.mutex * Minigo.Loc.t -> unit Effect.t
  | Wg_add : Value.waitgroup * int * Minigo.Loc.t -> unit Effect.t
  | Wg_done : Value.waitgroup * Minigo.Loc.t -> unit Effect.t
  | Wg_wait : Value.waitgroup * Minigo.Loc.t -> unit Effect.t
  | Cond_wait : Value.cond * Minigo.Loc.t -> unit Effect.t
  | Cond_signal : Value.cond * Minigo.Loc.t -> unit Effect.t
  | Cond_broadcast : Value.cond * Minigo.Loc.t -> unit Effect.t
  | Sleep_eff : int -> unit Effect.t
  | Output : string -> unit Effect.t
  | Yield : unit Effect.t

exception Go_panic of string
exception Goexit

type gstate = Running | Blocked of string * Minigo.Loc.t | Finished | Panicked of string

type goroutine = {
  gid : int;
  gname : string;
  mutable state : gstate;
}

type report = {
  steps : int;
  output : string list; (* in order *)
  leaked : (int * string * string * Minigo.Loc.t) list; (* gid, name, reason, loc *)
  panics : (int * string) list;
  spawned : int;
  completed : int;
  fuel_exhausted : bool;
}

type t = {
  mutable runq : (int * (unit -> unit)) list; (* gid, resume thunk *)
  mutable sleeping : (int * int ref * (unit -> unit)) list;
  mutable goroutines : goroutine list;
  mutable next_gid : int;
  mutable next_chan : int;
  mutable next_mutex : int;
  mutable next_wg : int;
  mutable steps : int;
  mutable out_rev : string list;
  mutable panics : (int * string) list;
  rng : Random.State.t;
  fuel : int;
}

let create ?(seed = 42) ?(fuel = 1_000_000) () =
  {
    runq = [];
    sleeping = [];
    goroutines = [];
    next_gid = 0;
    next_chan = 0;
    next_mutex = 0;
    next_wg = 0;
    steps = 0;
    out_rev = [];
    panics = [];
    rng = Random.State.make [| seed |];
    fuel;
  }

let fresh_chan sched ?(capacity = 0) ?(elem_zero = Value.Vnil) ~loc () : Value.chan =
  sched.next_chan <- sched.next_chan + 1;
  {
    Value.chan_id = sched.next_chan;
    capacity;
    buffer = Queue.create ();
    closed = false;
    send_waiters = [];
    recv_waiters = [];
    made_at = loc;
    elem_zero;
  }

let fresh_mutex sched () : Value.mutex =
  sched.next_mutex <- sched.next_mutex + 1;
  { Value.mutex_id = sched.next_mutex; held_by = None; lock_waiters = [] }

let fresh_wg sched () : Value.waitgroup =
  sched.next_wg <- sched.next_wg + 1;
  { Value.wg_id = sched.next_wg; counter = 0; wg_waiters = [] }

let fresh_cond sched () : Value.cond =
  sched.next_wg <- sched.next_wg + 1;
  { Value.cond_id = sched.next_wg; cond_waiters = [] }

let enqueue sched gid thunk = sched.runq <- sched.runq @ [ (gid, thunk) ]

let set_state sched gid st =
  List.iter (fun g -> if g.gid = gid then g.state <- st) sched.goroutines

(* -------------------------------------------------- channel helpers *)

(* Find the first claimable waiter, pruning dead ones. *)
let rec pop_claimable = function
  | [] -> (None, [])
  | w :: rest ->
      let alive, claim =
        match w with
        | `S (sw : Value.send_waiter) -> (sw.sw_alive, sw.sw_claim)
        | `R (rw : Value.recv_waiter) -> (rw.rw_alive, rw.rw_claim)
      in
      if not (alive ()) then pop_claimable rest
      else if claim () then (Some w, rest)
      else pop_claimable rest

let pop_send_waiter (c : Value.chan) : Value.send_waiter option =
  let found, rest = pop_claimable (List.map (fun w -> `S w) c.send_waiters) in
  c.send_waiters <-
    List.filter_map (function `S w -> Some w | `R _ -> None) rest;
  match found with Some (`S w) -> Some w | _ -> None

let pop_recv_waiter (c : Value.chan) : Value.recv_waiter option =
  let found, rest = pop_claimable (List.map (fun w -> `R w) c.recv_waiters) in
  c.recv_waiters <-
    List.filter_map (function `R w -> Some w | `S _ -> None) rest;
  match found with Some (`R w) -> Some w | _ -> None

(* Would a send on [c] proceed right now? *)
let send_ready (c : Value.chan) =
  c.closed
  || Queue.length c.buffer < c.capacity
  || List.exists (fun (w : Value.recv_waiter) -> w.rw_alive ()) c.recv_waiters

let recv_ready (c : Value.chan) =
  c.closed
  || Queue.length c.buffer > 0
  || List.exists (fun (w : Value.send_waiter) -> w.sw_alive ()) c.send_waiters

(* Deliver one send to channel [c]: either hand to a waiting receiver or
   put into the buffer.  Caller ensures this will succeed.  Returns false
   if it could not (race with select claims). *)
let do_send sched (c : Value.chan) v : bool =
  if c.closed then raise (Go_panic "send on closed channel");
  match pop_recv_waiter c with
  | Some rw ->
      set_state sched rw.rw_gid Running;
      rw.rw_wake (v, true);
      true
  | None ->
      if Queue.length c.buffer < c.capacity then begin
        Queue.push v c.buffer;
        true
      end
      else false

(* Take one value from channel [c]; caller checked readiness.  Returns
   None if a racing claim emptied it. *)
let do_recv sched (c : Value.chan) : (Value.t * bool) option =
  if Queue.length c.buffer > 0 then begin
    let v = Queue.pop c.buffer in
    (* a sender may be waiting for buffer space: refill from it *)
    (match pop_send_waiter c with
    | Some sw ->
        Queue.push sw.sw_value c.buffer;
        set_state sched sw.sw_gid Running;
        sw.sw_wake ()
    | None -> ());
    Some (v, true)
  end
  else
    match pop_send_waiter c with
    | Some sw ->
        set_state sched sw.sw_gid Running;
        sw.sw_wake ();
        Some (sw.sw_value, true)
    | None -> if c.closed then Some (c.elem_zero, false) else None

let close_chan sched (c : Value.chan) =
  if c.closed then raise (Go_panic "close of closed channel");
  c.closed <- true;
  (* wake all waiting receivers with the zero value *)
  let rws = c.recv_waiters in
  c.recv_waiters <- [];
  List.iter
    (fun (rw : Value.recv_waiter) ->
      if rw.rw_alive () && rw.rw_claim () then begin
        set_state sched rw.rw_gid Running;
        rw.rw_wake (c.elem_zero, false)
      end)
    rws;
  (* senders blocked on a now-closed channel panic when resumed; in Go a
     blocked sender on a closed channel panics *)
  let sws = c.send_waiters in
  c.send_waiters <- [];
  List.iter
    (fun (sw : Value.send_waiter) ->
      if sw.sw_alive () && sw.sw_claim () then begin
        set_state sched sw.sw_gid Running;
        sw.sw_wake () (* the resumed send re-checks closedness and panics *)
      end)
    sws

(* ----------------------------------------------------- goroutine run *)

let rec spawn sched name (body : unit -> unit) =
  let gid = sched.next_gid in
  sched.next_gid <- sched.next_gid + 1;
  let g = { gid; gname = name; state = Running } in
  sched.goroutines <- g :: sched.goroutines;
  enqueue sched gid (fun () -> run_goroutine sched g body)

and run_goroutine sched g body =
  match_with
    (fun () ->
      (try body () with
      | Goexit -> ()
      | Go_panic msg ->
          g.state <- Panicked msg;
          sched.panics <- (g.gid, msg) :: sched.panics);
      if g.state = Running then g.state <- Finished
      else match g.state with Panicked _ -> () | _ -> g.state <- Finished)
    ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match e with
          | Go_panic msg ->
              g.state <- Panicked msg;
              sched.panics <- (g.gid, msg) :: sched.panics
          | Goexit -> g.state <- Finished
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Spawn (f, name) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  spawn sched name f;
                  enqueue sched g.gid (fun () -> continue k ()))
          | Output s ->
              Some
                (fun k ->
                  sched.out_rev <- s :: sched.out_rev;
                  continue k ())
          | Yield -> Some (fun k -> enqueue sched g.gid (fun () -> continue k ()))
          | Sleep_eff n ->
              Some
                (fun k ->
                  let counter = ref (max 1 n) in
                  sched.sleeping <-
                    (g.gid, counter, fun () -> continue k ()) :: sched.sleeping;
                  set_state sched g.gid (Blocked ("sleep", Minigo.Loc.none)))
          | Chan_send (c, v, loc) ->
              Some
                (fun k ->
                  if c.Value.closed then
                    enqueue sched g.gid (fun () ->
                        discontinue k (Go_panic "send on closed channel"))
                  else if do_send sched c v then
                    enqueue sched g.gid (fun () -> continue k ())
                  else begin
                    (* block: register as sender *)
                    let claimed = ref false in
                    let sw =
                      {
                        Value.sw_gid = g.gid;
                        sw_value = v;
                        sw_wake =
                          (fun () ->
                            enqueue sched g.gid (fun () ->
                                if c.Value.closed then
                                  discontinue k (Go_panic "send on closed channel")
                                else continue k ()));
                        sw_alive = (fun () -> not !claimed);
                        sw_claim =
                          (fun () ->
                            if !claimed then false
                            else begin
                              claimed := true;
                              true
                            end);
                      }
                    in
                    c.Value.send_waiters <- c.Value.send_waiters @ [ sw ];
                    set_state sched g.gid (Blocked ("chan send", loc))
                  end)
          | Chan_recv (c, loc) ->
              Some
                (fun k ->
                  match do_recv sched c with
                  | Some (v, ok) -> enqueue sched g.gid (fun () -> continue k (v, ok))
                  | None ->
                      let claimed = ref false in
                      let rw =
                        {
                          Value.rw_gid = g.gid;
                          rw_wake =
                            (fun (v, ok) ->
                              enqueue sched g.gid (fun () -> continue k (v, ok)));
                          rw_alive = (fun () -> not !claimed);
                          rw_claim =
                            (fun () ->
                              if !claimed then false
                              else begin
                                claimed := true;
                                true
                              end);
                        }
                      in
                      c.Value.recv_waiters <- c.Value.recv_waiters @ [ rw ];
                      set_state sched g.gid (Blocked ("chan recv", loc)))
          | Chan_close (c, _loc) ->
              Some
                (fun k ->
                  match close_chan sched c with
                  | () -> enqueue sched g.gid (fun () -> continue k ())
                  | exception Go_panic m ->
                      enqueue sched g.gid (fun () -> discontinue k (Go_panic m)))
          | Select_eff (arms, has_default, loc) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let k : (sel_outcome, unit) continuation = k in
                  handle_select sched g k arms has_default loc)
          | Mutex_lock (m, loc) ->
              Some
                (fun k ->
                  match m.Value.held_by with
                  | None ->
                      m.Value.held_by <- Some g.gid;
                      enqueue sched g.gid (fun () -> continue k ())
                  | Some _ ->
                      m.Value.lock_waiters <-
                        m.Value.lock_waiters
                        @ [ (g.gid, fun () -> enqueue sched g.gid (fun () -> continue k ())) ];
                      set_state sched g.gid (Blocked ("mutex lock", loc)))
          | Mutex_unlock (m, _loc) ->
              Some
                (fun k ->
                  match m.Value.held_by with
                  | None ->
                      enqueue sched g.gid (fun () ->
                          discontinue k (Go_panic "unlock of unlocked mutex"))
                  | Some _ -> (
                      match m.Value.lock_waiters with
                      | [] ->
                          m.Value.held_by <- None;
                          enqueue sched g.gid (fun () -> continue k ())
                      | (wgid, wake) :: rest ->
                          m.Value.lock_waiters <- rest;
                          m.Value.held_by <- Some wgid;
                          set_state sched wgid Running;
                          wake ();
                          enqueue sched g.gid (fun () -> continue k ())))
          | Wg_add (w, n, _loc) ->
              Some
                (fun k ->
                  w.Value.counter <- w.Value.counter + n;
                  enqueue sched g.gid (fun () -> continue k ()))
          | Wg_done (w, _loc) ->
              Some
                (fun k ->
                  w.Value.counter <- w.Value.counter - 1;
                  if w.Value.counter < 0 then
                    enqueue sched g.gid (fun () ->
                        discontinue k (Go_panic "negative WaitGroup counter"))
                  else begin
                    if w.Value.counter = 0 then begin
                      let ws = w.Value.wg_waiters in
                      w.Value.wg_waiters <- [];
                      List.iter
                        (fun (wgid, wake) ->
                          set_state sched wgid Running;
                          wake ())
                        ws
                    end;
                    enqueue sched g.gid (fun () -> continue k ())
                  end)
          | Cond_wait (c, loc) ->
              Some
                (fun k ->
                  c.Value.cond_waiters <-
                    c.Value.cond_waiters
                    @ [ (g.gid, fun () -> enqueue sched g.gid (fun () -> continue k ())) ];
                  set_state sched g.gid (Blocked ("cond wait", loc)))
          | Cond_signal (c, _loc) ->
              Some
                (fun k ->
                  (match c.Value.cond_waiters with
                  | [] -> () (* a signal with no waiter is lost, as in Go *)
                  | (wgid, wake) :: rest ->
                      c.Value.cond_waiters <- rest;
                      set_state sched wgid Running;
                      wake ());
                  enqueue sched g.gid (fun () -> continue k ()))
          | Cond_broadcast (c, _loc) ->
              Some
                (fun k ->
                  let ws = c.Value.cond_waiters in
                  c.Value.cond_waiters <- [];
                  List.iter
                    (fun (wgid, wake) ->
                      set_state sched wgid Running;
                      wake ())
                    ws;
                  enqueue sched g.gid (fun () -> continue k ()))
          | Wg_wait (w, loc) ->
              Some
                (fun k ->
                  if w.Value.counter = 0 then
                    enqueue sched g.gid (fun () -> continue k ())
                  else begin
                    w.Value.wg_waiters <-
                      w.Value.wg_waiters
                      @ [ (g.gid, fun () -> enqueue sched g.gid (fun () -> continue k ())) ];
                    set_state sched g.gid (Blocked ("WaitGroup wait", loc))
                  end)
          | _ -> None);
    }

and handle_select sched g (k : (sel_outcome, unit) continuation) arms
    has_default loc =
  (* indices of arms ready to fire right now *)
  let ready =
    List.filteri
      (fun _ arm ->
        match arm with
        | Sel_recv c -> recv_ready c
        | Sel_send (c, _) -> send_ready c)
      (List.mapi (fun i a -> (i, a)) arms |> List.map snd)
  in
  ignore ready;
  let ready_idx =
    List.filteri (fun _ _ -> true) arms
    |> List.mapi (fun i a -> (i, a))
    |> List.filter (fun (_, a) ->
           match a with
           | Sel_recv c -> recv_ready c
           | Sel_send (c, _) -> send_ready c)
  in
  match ready_idx with
  | _ :: _ ->
      (* runtime picks uniformly among ready cases, like Go *)
      let i, arm =
        List.nth ready_idx (Random.State.int sched.rng (List.length ready_idx))
      in
      (match arm with
      | Sel_recv c -> (
          match do_recv sched c with
          | Some (v, ok) ->
              enqueue sched g.gid (fun () -> continue k (Chose_recv (i, v, ok)))
          | None ->
              (* readiness raced away; retry via re-entering the select *)
              enqueue sched g.gid (fun () ->
                  handle_select sched g k arms has_default loc))
      | Sel_send (c, v) ->
          if c.Value.closed then
            enqueue sched g.gid (fun () ->
                discontinue k (Go_panic "send on closed channel"))
          else if do_send sched c v then
            enqueue sched g.gid (fun () -> continue k (Chose_send i))
          else
            enqueue sched g.gid (fun () ->
                handle_select sched g k arms has_default loc))
  | [] ->
      if has_default then enqueue sched g.gid (fun () -> continue k Chose_default)
      else begin
        (* block on all arms with a shared claim token *)
        let taken = ref false in
        let claim () =
          if !taken then false
          else begin
            taken := true;
            true
          end
        in
        let alive () = not !taken in
        List.iteri
          (fun i arm ->
            match arm with
            | Sel_recv c ->
                let rw =
                  {
                    Value.rw_gid = g.gid;
                    rw_wake =
                      (fun (v, ok) ->
                        enqueue sched g.gid (fun () -> continue k (Chose_recv (i, v, ok))));
                    rw_alive = alive;
                    rw_claim = claim;
                  }
                in
                c.Value.recv_waiters <- c.Value.recv_waiters @ [ rw ]
            | Sel_send (c, v) ->
                let sw =
                  {
                    Value.sw_gid = g.gid;
                    sw_value = v;
                    sw_wake =
                      (fun () ->
                        enqueue sched g.gid (fun () ->
                            if c.Value.closed then
                              discontinue k (Go_panic "send on closed channel")
                            else continue k (Chose_send i)));
                    sw_alive = alive;
                    sw_claim = claim;
                  }
                in
                c.Value.send_waiters <- c.Value.send_waiters @ [ sw ])
          arms;
        set_state sched g.gid (Blocked ("select", loc))
      end

(* ------------------------------------------------------------ driver *)

let run sched ~entry : report =
  spawn sched "main" entry;
  let fuel_exhausted = ref false in
  let continue_run = ref true in
  while !continue_run do
    if sched.steps >= sched.fuel then begin
      fuel_exhausted := true;
      continue_run := false
    end
    else begin
      (match sched.runq with
      | [] -> ()
      | q ->
          (* pick a random runnable goroutine: interleaving exploration *)
          let n = List.length q in
          let idx = if n = 1 then 0 else Random.State.int sched.rng n in
          let _, thunk = List.nth q idx in
          sched.runq <- List.filteri (fun i _ -> i <> idx) q;
          sched.steps <- sched.steps + 1;
          thunk ());
      if sched.runq = [] then begin
        (* advance sleepers; they tick only when nothing else can run *)
        match sched.sleeping with
        | [] -> continue_run := false
        | sleepers ->
            let woken, still =
              List.partition
                (fun (_, c, _) ->
                  decr c;
                  !c <= 0)
                sleepers
            in
            sched.sleeping <- still;
            List.iter
              (fun (gid, _, wake) ->
                set_state sched gid Running;
                wake ())
              woken
      end
    end
  done;
  let leaked =
    List.filter_map
      (fun g ->
        match g.state with
        | Blocked (reason, loc) -> Some (g.gid, g.gname, reason, loc)
        | _ -> None)
      sched.goroutines
  in
  let completed =
    List.length (List.filter (fun g -> g.state = Finished) sched.goroutines)
  in
  {
    steps = sched.steps;
    output = List.rev sched.out_rev;
    leaked;
    panics = sched.panics;
    spawned = List.length sched.goroutines;
    completed;
    fuel_exhausted = !fuel_exhausted;
  }
