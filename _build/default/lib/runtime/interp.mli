(** Tree-walking interpreter for MiniGo on top of the effects-based
    goroutine {!Scheduler}.

    Re-running a program under different seeds explores different
    interleavings; a goroutine still blocked when the run queue drains is
    a leaked goroutine — the observable symptom of a BMOC bug, and the
    oracle the test suite and patch validation use. *)

val run :
  ?seed:int ->
  ?fuel:int ->
  ?entry:string ->
  Minigo.Ast.program ->
  Scheduler.report
(** Run [entry] (default ["main"]) once under one seeded schedule.
    Parameters of the entry function are zero-valued (test functions get
    a testing.T). *)

val run_schedules :
  ?seeds:int ->
  ?fuel:int ->
  ?entry:string ->
  Minigo.Ast.program ->
  int * int * int * Scheduler.report list
(** Run under seeds [1..seeds]; returns
    (runs, runs-with-a-leak, max steps, all reports). *)
