(* Intermediate representation of MiniGo programs.

   Lowering (see {!Lower}) turns every function — including lifted
   goroutine and function literals — into a control-flow graph of basic
   blocks.  Each instruction carries a unique program point [pp] so that
   detectors, constraints, and patches can all refer to "the send at
   pp 17" the way the paper refers to "the sending operation at line 7".

   Synchronization operations are first-class instructions rather than
   calls, which is the property the whole GCatch pipeline relies on. *)

type pp = int
(** Program point: globally unique per lowered program. *)

type var = string
(** Alpha-renamed local variable name, unique within a function. *)

(* A reference to a primitive (channel / mutex / waitgroup) as written in
   the source: either a local variable or a field of a struct held in a
   local variable. *)
type place =
  | Pvar of var
  | Pfield of var * string

type operand =
  | Oconst_int of int
  | Oconst_bool of bool
  | Oconst_str of string
  | Oconst_func of string (* name of a lifted function literal *)
  | Onil
  | Ovar of var
  | Oplace of place

(* Conditions preserved for path-feasibility filtering (paper §3.3): only
   conditions over read-only variables and constants are interpreted. *)
type cond =
  | Cvar of var                     (* boolean variable *)
  | Cnot of cond
  | Ccmp of Minigo.Ast.binop * operand * operand
  | Copaque of pp                   (* anything we do not interpret *)

type select_arm = {
  arm_op : arm_op;
  arm_target : int; (* block id *)
}

and arm_op =
  | Arm_recv of place * var option  (* channel, bound variable *)
  | Arm_send of place * operand

type inst = {
  ipp : pp;
  iloc : Minigo.Loc.t;
  idesc : inst_desc;
  ideferred : bool; (* materialised from a [defer] statement *)
}

and inst_desc =
  | Imake_chan of var * Minigo.Ast.typ * int option
      (* dst, element type, static capacity (None = not statically known;
         Some 0 = unbuffered) *)
  | Imake_struct of var * string
  | Isend of place * operand
  | Irecv of var option * place * bool (* bound var, channel, is_range *)
  | Iclose of place
  | Ilock of place
  | Iunlock of place
  | Iwg_add of place * operand
  | Iwg_done of place
  | Iwg_wait of place
  | Icall of var list * string * operand list       (* direct call *)
  | Icall_indirect of var list * var * operand list (* via function value *)
  | Igo of string * operand list                    (* spawn lowered function *)
  | Itesting_fatal of string                        (* t.Fatal/Fatalf/FailNow *)
  | Iassign of var * operand
  | Ifield_load of var * var * string
  | Ifield_store of var * string * operand
  | Ibinop of var * Minigo.Ast.binop * operand * operand
  | Iunop of var * Minigo.Ast.unop * operand
  | Isleep of operand
  | Iprint of operand list
  | Inop of string                                  (* annotation / debug *)

type terminator =
  | Tjump of int
  | Tbranch of cond * int * int       (* cond, then-block, else-block *)
  | Tselect of select_arm list * int option * pp
      (* arms, default target, pp of the select itself *)
  | Treturn of operand list
  | Tpanic
  | Texit                             (* goroutine exits (Fatal / Goexit) *)
  | Tunreachable

type block = {
  bid : int;
  mutable insts : inst list;
  mutable term : terminator;
  mutable term_loc : Minigo.Loc.t;
}

type func = {
  name : string;
  params : (var * Minigo.Ast.typ) list;
  result_types : Minigo.Ast.typ list;
  blocks : block array;
  entry : int;
  is_goroutine_body : bool;  (* lifted from a goroutine literal *)
  parent : string option;    (* lexical parent when lifted *)
  floc : Minigo.Loc.t;
  var_types : (var, Minigo.Ast.typ) Hashtbl.t;
}

type program = {
  funcs : (string, func) Hashtbl.t;
  main : string option;
  source : Minigo.Ast.program;
}

(* ----------------------------------------------------------- helpers *)

let successors (b : block) : int list =
  match b.term with
  | Tjump t -> [ t ]
  | Tbranch (_, a, c) -> [ a; c ]
  | Tselect (arms, dflt, _) ->
      let ts = List.map (fun a -> a.arm_target) arms in
      (match dflt with Some d -> d :: ts | None -> ts)
  | Treturn _ | Tpanic | Texit | Tunreachable -> []

let block f i = f.blocks.(i)

let fold_insts fn acc (f : func) =
  Array.fold_left
    (fun acc b -> List.fold_left fn acc b.insts)
    acc f.blocks

let iter_insts fn (f : func) = fold_insts (fun () i -> fn i) () f

let find_inst (f : func) (p : pp) : inst option =
  fold_insts
    (fun acc i -> match acc with Some _ -> acc | None -> if i.ipp = p then Some i else None)
    None f

(* Program-wide instruction lookup, including select terminators. *)
let funcs_list (prog : program) : func list =
  Hashtbl.fold (fun _ f acc -> f :: acc) prog.funcs []
  |> List.sort (fun a b -> String.compare a.name b.name)

let find_func (prog : program) name = Hashtbl.find_opt prog.funcs name

let inst_count (prog : program) =
  List.fold_left (fun n f -> fold_insts (fun n _ -> n + 1) n f) 0 (funcs_list prog)

(* ----------------------------------------------------------- printing *)

let place_str = function
  | Pvar v -> v
  | Pfield (v, f) -> v ^ "." ^ f

let operand_str = function
  | Oconst_int n -> string_of_int n
  | Oconst_bool b -> string_of_bool b
  | Oconst_str s -> Printf.sprintf "%S" s
  | Oconst_func f -> "&" ^ f
  | Onil -> "nil"
  | Ovar v -> v
  | Oplace p -> place_str p

let rec cond_str = function
  | Cvar v -> v
  | Cnot c -> "!(" ^ cond_str c ^ ")"
  | Ccmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (operand_str a) (Minigo.Pretty.binop_str op)
        (operand_str b)
  | Copaque p -> Printf.sprintf "<opaque@%d>" p

let inst_str (i : inst) =
  let d = if i.ideferred then "[defer] " else "" in
  let body =
    match i.idesc with
    | Imake_chan (v, t, cap) ->
        Printf.sprintf "%s = make(chan %s%s)" v (Minigo.Ast.typ_to_string t)
          (match cap with
          | None -> ", ?"
          | Some 0 -> ""
          | Some n -> ", " ^ string_of_int n)
    | Imake_struct (v, s) -> Printf.sprintf "%s = new %s" v s
    | Isend (p, o) -> Printf.sprintf "%s <- %s" (place_str p) (operand_str o)
    | Irecv (Some v, p, rng) ->
        Printf.sprintf "%s = <-%s%s" v (place_str p) (if rng then " (range)" else "")
    | Irecv (None, p, rng) ->
        Printf.sprintf "<-%s%s" (place_str p) (if rng then " (range)" else "")
    | Iclose p -> Printf.sprintf "close(%s)" (place_str p)
    | Ilock p -> Printf.sprintf "%s.Lock()" (place_str p)
    | Iunlock p -> Printf.sprintf "%s.Unlock()" (place_str p)
    | Iwg_add (p, o) -> Printf.sprintf "%s.Add(%s)" (place_str p) (operand_str o)
    | Iwg_done p -> Printf.sprintf "%s.Done()" (place_str p)
    | Iwg_wait p -> Printf.sprintf "%s.Wait()" (place_str p)
    | Icall (rets, f, args) ->
        Printf.sprintf "%s%s(%s)"
          (match rets with [] -> "" | rs -> String.concat ", " rs ^ " = ")
          f
          (String.concat ", " (List.map operand_str args))
    | Icall_indirect (rets, f, args) ->
        Printf.sprintf "%s(*%s)(%s)"
          (match rets with [] -> "" | rs -> String.concat ", " rs ^ " = ")
          f
          (String.concat ", " (List.map operand_str args))
    | Igo (f, args) ->
        Printf.sprintf "go %s(%s)" f (String.concat ", " (List.map operand_str args))
    | Itesting_fatal m -> Printf.sprintf "t.%s(...)" m
    | Iassign (v, o) -> Printf.sprintf "%s = %s" v (operand_str o)
    | Ifield_load (v, b, f) -> Printf.sprintf "%s = %s.%s" v b f
    | Ifield_store (b, f, o) -> Printf.sprintf "%s.%s = %s" b f (operand_str o)
    | Ibinop (v, op, a, b) ->
        Printf.sprintf "%s = %s %s %s" v (operand_str a)
          (Minigo.Pretty.binop_str op) (operand_str b)
    | Iunop (v, Minigo.Ast.Neg, a) -> Printf.sprintf "%s = -%s" v (operand_str a)
    | Iunop (v, Minigo.Ast.Not, a) -> Printf.sprintf "%s = !%s" v (operand_str a)
    | Isleep o -> Printf.sprintf "sleep(%s)" (operand_str o)
    | Iprint os ->
        Printf.sprintf "print(%s)" (String.concat ", " (List.map operand_str os))
    | Inop s -> Printf.sprintf "nop (%s)" s
  in
  Printf.sprintf "  [%d] %s%s" i.ipp d body

let term_str = function
  | Tjump t -> Printf.sprintf "  jump b%d" t
  | Tbranch (c, a, b) -> Printf.sprintf "  br %s ? b%d : b%d" (cond_str c) a b
  | Tselect (arms, dflt, p) ->
      let arm_s a =
        match a.arm_op with
        | Arm_recv (pl, Some v) ->
            Printf.sprintf "%s=<-%s -> b%d" v (place_str pl) a.arm_target
        | Arm_recv (pl, None) ->
            Printf.sprintf "<-%s -> b%d" (place_str pl) a.arm_target
        | Arm_send (pl, o) ->
            Printf.sprintf "%s<-%s -> b%d" (place_str pl) (operand_str o) a.arm_target
      in
      Printf.sprintf "  [%d] select {%s}%s" p
        (String.concat "; " (List.map arm_s arms))
        (match dflt with Some d -> Printf.sprintf " default b%d" d | None -> "")
  | Treturn os ->
      Printf.sprintf "  return %s" (String.concat ", " (List.map operand_str os))
  | Tpanic -> "  panic"
  | Texit -> "  goexit"
  | Tunreachable -> "  unreachable"

let func_str (f : func) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s)%s:\n" f.name
       (String.concat ", " (List.map fst f.params))
       (if f.is_goroutine_body then " [goroutine]" else ""));
  Array.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf " b%d:\n" b.bid);
      List.iter (fun i -> Buffer.add_string buf (inst_str i ^ "\n")) b.insts;
      Buffer.add_string buf (term_str b.term ^ "\n"))
    f.blocks;
  Buffer.contents buf

let program_str (p : program) =
  String.concat "\n" (List.map func_str (funcs_list p))

(* All sync-operation pps of an instruction, if it is one. *)
let is_sync_inst (i : inst) =
  match i.idesc with
  | Isend _ | Irecv _ | Iclose _ | Ilock _ | Iunlock _ | Iwg_add _ | Iwg_done _
  | Iwg_wait _ ->
      true
  | _ -> false

(* Can this instruction block the executing goroutine? *)
let is_blocking_inst (i : inst) =
  match i.idesc with
  | Isend _ | Irecv _ | Ilock _ | Iwg_wait _ -> true
  | _ -> false
