(** Lowering: MiniGo AST → IR control-flow graphs.

    Performs alpha renaming, lambda lifting of goroutine and function
    literals (free variables become extra parameters), defer
    materialisation before every function exit (including panics and
    testing.Fatal, matching Go's run-defers-on-Goexit semantics that
    GFix Strategy-II relies on), and structured-control lowering. *)

exception Lower_error of string * Minigo.Loc.t

val lower_program : Minigo.Ast.program -> Ir.program

val captures : string -> string list option
(** Free variables captured by a lifted literal, by lifted name. *)
