lib/ir/lower.ml: Array Hashtbl Ir List Map Minigo Option Printf String
