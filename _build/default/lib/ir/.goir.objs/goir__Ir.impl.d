lib/ir/ir.ml: Array Buffer Hashtbl List Minigo Printf String
