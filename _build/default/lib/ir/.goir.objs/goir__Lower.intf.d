lib/ir/lower.mli: Ir Minigo
