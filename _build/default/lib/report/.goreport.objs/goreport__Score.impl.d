lib/report/score.ml: Gcatch Gocorpus List String
