(* Source locations for MiniGo programs.

   Every AST node and IR instruction carries a [t] so that diagnostics and
   generated patches can point back at concrete lines, mirroring how GCatch
   reports "the sending operation at line 7". *)

type t = {
  file : string;
  line : int;  (* 1-based *)
  col : int;   (* 1-based *)
}

let none = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let pp fmt { file; line; col } = Format.fprintf fmt "%s:%d:%d" file line col

let to_string t = Format.asprintf "%a" pp t

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0

let line t = t.line
let file t = t.file
