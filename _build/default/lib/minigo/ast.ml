(* Abstract syntax of MiniGo.

   MiniGo is the Go subset the reproduction analyses.  It covers every
   concurrency construct the GCatch/GFix paper reasons about: goroutines,
   buffered and unbuffered channels with send/receive/close, [select] with
   and without [default], [defer], mutexes, panics, plus enough sequential
   language (functions, closures, structs, loops, conditionals) to express
   the paper's example bugs and realistic surrounding code. *)

type typ =
  | Tint
  | Tbool
  | Tstring
  | Tunit
  | Tchan of typ
  | Tmutex
  | Twaitgroup
  | Tcond                      (* sync.Cond *)
  | Tstruct of string          (* named struct type *)
  | Tfunc of typ list * typ list
  | Ttesting                   (* the *testing.T parameter type *)
  | Tcontext                   (* context.Context: provides Done() channel *)
  | Terror
  | Tany                       (* used by the checker for unresolved holes *)

let rec typ_to_string = function
  | Tint -> "int"
  | Tbool -> "bool"
  | Tstring -> "string"
  | Tunit -> "unit"
  | Tchan t -> "chan " ^ typ_to_string t
  | Tmutex -> "sync.Mutex"
  | Twaitgroup -> "sync.WaitGroup"
  | Tcond -> "sync.Cond"
  | Tstruct s -> s
  | Tfunc (args, rets) ->
      let commas ts = String.concat ", " (List.map typ_to_string ts) in
      Printf.sprintf "func(%s) (%s)" (commas args) (commas rets)
  | Ttesting -> "*testing.T"
  | Tcontext -> "context.Context"
  | Terror -> "error"
  | Tany -> "any"

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr = { e : expr_desc; eloc : Loc.t }

and expr_desc =
  | Int of int
  | Bool of bool
  | Str of string
  | Nil
  | Ident of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of call
  | MakeChan of typ * expr option         (* make(chan T [, cap]) *)
  | Recv of expr                          (* <-ch used as an expression *)
  | Field of expr * string                (* e.f *)
  | StructLit of string * (string * expr) list
  | FuncLit of param list * typ list * block   (* func(params) rets { body } *)
  | Len of expr

and call = {
  callee : callee;
  args : expr list;
}

and callee =
  | Fname of string                       (* direct call f(...) *)
  | Fmethod of expr * string              (* e.m(...): mutex/testing/ctx/etc *)
  | Fexpr of expr                         (* call through a function value *)

and param = { pname : string; ptyp : typ }

and block = stmt list

and stmt = { s : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | Decl of string * typ option * expr option      (* var x T = e *)
  | Define of string list * expr                   (* x, y := e *)
  | Assign of lvalue * expr
  | ExprStmt of expr
  | Send of expr * expr                            (* ch <- v *)
  | CloseStmt of expr
  | Go of call                                     (* go f(args) *)
  | GoFuncLit of param list * block * expr list    (* go func(ps){..}(args) *)
  | If of expr * block * block option
  | For of for_kind * block
  | Select of select_case list * block option      (* cases, default *)
  | Return of expr list
  | DeferStmt of defer_op
  | Break
  | Continue
  | Panic of expr
  | BlockStmt of block
  | IncDec of lvalue * bool                        (* x++ / x-- *)

and lvalue =
  | Lid of string
  | Lfield of expr * string

and for_kind =
  | ForEver                                        (* for { } *)
  | ForCond of expr                                (* for cond { } *)
  | ForClassic of stmt option * expr option * stmt option
  | ForRangeInt of string * expr                   (* for i := range n *)
  | ForRangeChan of string option * expr           (* for v := range ch *)

and select_case =
  | CaseRecv of string option * bool * expr * block (* [x :=] / [x, ok :=] <-ch *)
  | CaseSend of expr * expr * block                 (* ch <- v *)

and defer_op =
  | DeferCall of call
  | DeferSend of expr * expr
  | DeferClose of expr
  | DeferFuncLit of block                           (* defer func(){..}() *)

type struct_decl = {
  struct_name : string;
  fields : (string * typ) list;
  struct_loc : Loc.t;
}

type func_decl = {
  fname : string;
  params : param list;
  results : typ list;
  body : block;
  floc : Loc.t;
}

type decl =
  | Dfunc of func_decl
  | Dstruct of struct_decl

type file = {
  package : string;
  decls : decl list;
  source_name : string;
}

type program = file list

(* ------------------------------------------------------------------ *)
(* Convenience constructors used by tests and the corpus builders.    *)

let mk_expr ?(loc = Loc.none) e = { e; eloc = loc }
let mk_stmt ?(loc = Loc.none) s = { s; sloc = loc }

let funcs_of_file file =
  List.filter_map (function Dfunc f -> Some f | Dstruct _ -> None) file.decls

let structs_of_file file =
  List.filter_map (function Dstruct s -> Some s | Dfunc _ -> None) file.decls

let funcs_of_program (prog : program) = List.concat_map funcs_of_file prog

let find_func (prog : program) name =
  List.find_opt (fun f -> String.equal f.fname name) (funcs_of_program prog)

(* Structural fold over all statements in a block, visiting nested
   blocks, loop bodies, select cases and goroutine literals. *)
let rec fold_stmts f acc (b : block) =
  List.fold_left (fold_stmt f) acc b

and fold_stmt f acc stmt =
  let acc = f acc stmt in
  match stmt.s with
  | If (_, b1, b2) ->
      let acc = fold_stmts f acc b1 in
      (match b2 with Some b -> fold_stmts f acc b | None -> acc)
  | For (_, b) | BlockStmt b | GoFuncLit (_, b, _) -> fold_stmts f acc b
  | Select (cases, dflt) ->
      let acc =
        List.fold_left
          (fun acc case ->
            match case with
            | CaseRecv (_, _, _, b) | CaseSend (_, _, b) -> fold_stmts f acc b)
          acc cases
      in
      (match dflt with Some b -> fold_stmts f acc b | None -> acc)
  | DeferStmt (DeferFuncLit b) -> fold_stmts f acc b
  | Decl _ | Define _ | Assign _ | ExprStmt _ | Send _ | CloseStmt _ | Go _
  | Return _ | DeferStmt _ | Break | Continue | Panic _ | IncDec _ ->
      acc

let iter_stmts f b = fold_stmts (fun () s -> f s) () b

(* Count the number of physical source lines a block spans; used by the
   corpus and by E7 (patch readability) statistics. *)
let rec count_stmts (b : block) =
  fold_stmts (fun n _ -> n + 1) 0 b

and count_func_stmts (fd : func_decl) = count_stmts fd.body
