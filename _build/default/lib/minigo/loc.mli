(** Source locations.

    Every AST node and IR instruction carries a location so diagnostics
    and generated patches can point at concrete lines, the way GCatch
    reports "the sending operation at line 7". *)

type t = { file : string; line : int; col : int }

val none : t
(** Placeholder for synthesised nodes. *)

val make : file:string -> line:int -> col:int -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool

val line : t -> int
val file : t -> string
