(* Hand-written lexer for MiniGo.

   Implements Go's automatic semicolon insertion rule: a semicolon is
   inserted at the end of a line when the last token of the line can end a
   statement (identifier, literal, ')', '}', ']', '++', '--', and the
   keywords break/continue/return/true/false/nil). *)

exception Lex_error of string * Loc.t

type token_info = { tok : Token.t; loc : Loc.t }

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
  mutable last_significant : Token.t option;
      (* last token emitted on this line, for semicolon insertion *)
}

let make ~file src =
  { src; file; pos = 0; line = 1; bol = 0; last_significant = None }

let cur_loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let newline st =
  st.line <- st.line + 1;
  st.bol <- st.pos

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

(* Does [tok] allow a statement to end before a newline? *)
let ends_statement : Token.t -> bool = function
  | INT _ | STRING _ | IDENT _ -> true
  | RPAREN | RBRACE | RBRACKET | PLUSPLUS | MINUSMINUS -> true
  | KW_break | KW_continue | KW_return | KW_true | KW_false | KW_nil -> true
  | _ -> false

let read_ident st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_alnum c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

let read_int st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_digit c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  int_of_string (String.sub st.src start (st.pos - start))

let read_string st =
  let loc = cur_loc st in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Lex_error ("unterminated string literal", loc))
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some c -> advance st; Buffer.add_char buf c; go ()
        | None -> raise (Lex_error ("unterminated escape", loc)))
    | Some '\n' -> raise (Lex_error ("newline in string literal", loc))
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let rec skip_line_comment st =
  match peek st with
  | Some '\n' | None -> ()
  | Some _ ->
      advance st;
      skip_line_comment st

let skip_block_comment st =
  let loc = cur_loc st in
  advance st;
  advance st;
  let rec go () =
    match (peek st, peek2 st) with
    | Some '*', Some '/' ->
        advance st;
        advance st
    | Some '\n', _ ->
        advance st;
        newline st;
        go ()
    | Some _, _ ->
        advance st;
        go ()
    | None, _ -> raise (Lex_error ("unterminated block comment", loc))
  in
  go ()

(* Returns the next token, handling semicolon insertion. *)
let rec next st : token_info =
  match peek st with
  | None ->
      (* insert a final semicolon if needed so "f()" at EOF parses *)
      let loc = cur_loc st in
      (match st.last_significant with
      | Some t when ends_statement t ->
          st.last_significant <- None;
          { tok = SEMI; loc }
      | _ -> { tok = EOF; loc })
  | Some ' ' | Some '\t' | Some '\r' ->
      advance st;
      next st
  | Some '\n' ->
      let loc = cur_loc st in
      advance st;
      newline st;
      (match st.last_significant with
      | Some t when ends_statement t ->
          st.last_significant <- None;
          { tok = SEMI; loc }
      | _ ->
          st.last_significant <- None;
          next st)
  | Some '/' when peek2 st = Some '/' ->
      skip_line_comment st;
      next st
  | Some '/' when peek2 st = Some '*' ->
      skip_block_comment st;
      next st
  | Some c ->
      let loc = cur_loc st in
      let emit tok =
        st.last_significant <- Some tok;
        { tok; loc }
      in
      if is_digit c then emit (INT (read_int st))
      else if is_alpha c then
        let id = read_ident st in
        match Token.keyword_of_string id with
        | Some kw -> emit kw
        | None -> emit (IDENT id)
      else if c = '"' then emit (STRING (read_string st))
      else begin
        advance st;
        let two expect tok_two tok_one =
          if peek st = Some expect then (advance st; emit tok_two)
          else emit tok_one
        in
        match c with
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | '{' -> emit LBRACE
        | '}' -> emit RBRACE
        | '[' -> emit LBRACKET
        | ']' -> emit RBRACKET
        | ',' -> emit COMMA
        | ';' -> emit SEMI
        | '.' -> emit DOT
        | ':' -> two '=' DEFINE COLON
        | '=' -> two '=' EQ ASSIGN
        | '+' -> two '+' PLUSPLUS PLUS
        | '-' -> two '-' MINUSMINUS MINUS
        | '*' -> emit STAR
        | '/' -> emit SLASH
        | '%' -> emit PERCENT
        | '!' -> two '=' NEQ NOT
        | '<' -> (
            match peek st with
            | Some '-' -> advance st; emit ARROW
            | Some '=' -> advance st; emit LE
            | _ -> emit LT)
        | '>' -> two '=' GE GT
        | '&' -> two '&' AND AMP
        | '|' ->
            if peek st = Some '|' then (advance st; emit OR)
            else raise (Lex_error ("unexpected '|'", loc))
        | c ->
            raise (Lex_error (Printf.sprintf "unexpected character %C" c, loc))
      end

(* Tokenize the whole input. *)
let tokenize ~file src =
  let st = make ~file src in
  let rec go acc =
    let ti = next st in
    match ti.tok with EOF -> List.rev (ti :: acc) | _ -> go (ti :: acc)
  in
  go []
