(* Pretty-printer that renders MiniGo ASTs back to source text.

   GFix performs source-to-source transformation: it edits the AST and
   re-prints the program, and patch "readability" (E7) is measured as the
   diff between the original and re-printed text.  The printer therefore
   produces stable, gofmt-like output: one statement per line, tab-free,
   braces in Go style. *)

let indent_unit = "\t"

let binop_str : Ast.binop -> string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec typ_str : Ast.typ -> string = function
  | Tint -> "int"
  | Tbool -> "bool"
  | Tstring -> "string"
  | Tunit -> "struct{}"
  | Tchan t -> "chan " ^ typ_str t
  | Tmutex -> "sync.Mutex"
  | Twaitgroup -> "sync.WaitGroup"
  | Tcond -> "sync.Cond"
  | Tstruct s -> s
  | Tfunc (args, rets) ->
      let commas ts = String.concat ", " (List.map typ_str ts) in
      let ret_s =
        match rets with
        | [] -> ""
        | [ r ] -> " " ^ typ_str r
        | rs -> " (" ^ commas rs ^ ")"
      in
      "func(" ^ commas args ^ ")" ^ ret_s
  | Ttesting -> "*testing.T"
  | Tcontext -> "context.Context"
  | Terror -> "error"
  | Tany -> "interface{}"

let rec expr_str (e : Ast.expr) : string =
  match e.e with
  | Int n -> string_of_int n
  | Bool b -> if b then "true" else "false"
  | Str s -> Printf.sprintf "%S" s
  | Nil -> "nil"
  | Ident x -> x
  | Binop (op, a, b) ->
      Printf.sprintf "%s %s %s" (paren_expr a) (binop_str op) (paren_expr b)
  | Unop (Neg, a) -> "-" ^ paren_expr a
  | Unop (Not, a) -> "!" ^ paren_expr a
  | Call c -> call_str c
  | MakeChan (t, None) -> Printf.sprintf "make(chan %s)" (typ_str t)
  | MakeChan (t, Some cap) ->
      Printf.sprintf "make(chan %s, %s)" (typ_str t) (expr_str cap)
  | Recv ch -> "<-" ^ paren_expr ch
  | Field (b, f) -> paren_expr b ^ "." ^ f
  | StructLit (name, fields) ->
      let fs =
        List.map (fun (f, v) -> Printf.sprintf "%s: %s" f (expr_str v)) fields
      in
      Printf.sprintf "%s{%s}" name (String.concat ", " fs)
  | FuncLit (params, rets, body) ->
      (* single-line rendering used only inside expressions; goroutine
         literals go through stmt printing instead *)
      let ps =
        List.map (fun (p : Ast.param) -> p.pname ^ " " ^ typ_str p.ptyp) params
      in
      let ret_s =
        match rets with
        | [] -> ""
        | [ r ] -> " " ^ typ_str r
        | rs -> " (" ^ String.concat ", " (List.map typ_str rs) ^ ")"
      in
      Printf.sprintf "func(%s)%s { %s }" (String.concat ", " ps) ret_s
        (String.concat "; " (List.map (fun s -> String.trim (stmt_one_line s)) body))
  | Len e -> Printf.sprintf "len(%s)" (expr_str e)

and paren_expr (e : Ast.expr) =
  match e.e with
  | Binop _ -> "(" ^ expr_str e ^ ")"
  | _ -> expr_str e

and call_str (c : Ast.call) =
  let args = String.concat ", " (List.map expr_str c.args) in
  match c.callee with
  | Fname f -> Printf.sprintf "%s(%s)" f args
  | Fmethod (recv, m) -> Printf.sprintf "%s.%s(%s)" (paren_expr recv) m args
  | Fexpr e -> Printf.sprintf "%s(%s)" (paren_expr e) args

and stmt_one_line (s : Ast.stmt) : string =
  (* flat rendering for statements inside func literals in expressions *)
  String.concat " " (String.split_on_char '\n' (stmt_block_str "" s))

and lvalue_str = function
  | Ast.Lid x -> x
  | Ast.Lfield (b, f) -> paren_expr b ^ "." ^ f

and stmt_block_str ind (s : Ast.stmt) : string =
  let line fmt = Printf.ksprintf (fun str -> ind ^ str) fmt in
  match s.s with
  | Decl (x, Some t, None) -> line "var %s %s" x (typ_str t)
  | Decl (x, Some t, Some e) -> line "var %s %s = %s" x (typ_str t) (expr_str e)
  | Decl (x, None, Some e) -> line "var %s = %s" x (expr_str e)
  | Decl (x, None, None) -> line "var %s" x
  | Define (xs, e) -> line "%s := %s" (String.concat ", " xs) (expr_str e)
  | Assign (lv, e) -> line "%s = %s" (lvalue_str lv) (expr_str e)
  | ExprStmt e -> line "%s" (expr_str e)
  | Send (ch, v) -> line "%s <- %s" (expr_str ch) (expr_str v)
  | CloseStmt ch -> line "close(%s)" (expr_str ch)
  | Go c -> line "go %s" (call_str c)
  | GoFuncLit (params, body, args) ->
      let ps =
        List.map (fun (p : Ast.param) -> p.pname ^ " " ^ typ_str p.ptyp) params
      in
      let header = Printf.sprintf "%sgo func(%s) {" ind (String.concat ", " ps) in
      let body_s = block_str (ind ^ indent_unit) body in
      let args_s = String.concat ", " (List.map expr_str args) in
      Printf.sprintf "%s\n%s%s}(%s)" header body_s ind args_s
  | If (cond, then_b, else_b) ->
      let header = Printf.sprintf "%sif %s {" ind (expr_str cond) in
      let then_s = block_str (ind ^ indent_unit) then_b in
      let close =
        match else_b with
        | None -> Printf.sprintf "%s}" ind
        | Some [ ({ s = If _; _ } as nested) ] ->
            let nested_s = stmt_block_str ind nested in
            (* graft "else if": drop nested's indent *)
            Printf.sprintf "%s} else %s" ind (String.trim nested_s)
        | Some b ->
            Printf.sprintf "%s} else {\n%s%s}" ind
              (block_str (ind ^ indent_unit) b)
              ind
      in
      Printf.sprintf "%s\n%s%s" header then_s close
  | For (kind, body) ->
      let header =
        match kind with
        | ForEver -> Printf.sprintf "%sfor {" ind
        | ForCond c -> Printf.sprintf "%sfor %s {" ind (expr_str c)
        | ForClassic (init, cond, post) ->
            let part = function
              | None -> ""
              | Some (st : Ast.stmt) -> String.trim (stmt_block_str "" st)
            in
            let cond_s = match cond with None -> "" | Some c -> expr_str c in
            Printf.sprintf "%sfor %s; %s; %s {" ind
              (match init with None -> "" | Some i -> String.trim (stmt_block_str "" i))
              cond_s (part post)
        | ForRangeInt (x, e) ->
            Printf.sprintf "%sfor %s := range %s {" ind x (expr_str e)
        | ForRangeChan (Some x, e) ->
            Printf.sprintf "%sfor %s := range %s {" ind x (expr_str e)
        | ForRangeChan (None, e) ->
            Printf.sprintf "%sfor range %s {" ind (expr_str e)
      in
      Printf.sprintf "%s\n%s%s}" header (block_str (ind ^ indent_unit) body) ind
  | Select (cases, dflt) ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf (ind ^ "select {\n");
      List.iter
        (fun case ->
          match case with
          | Ast.CaseRecv (bind, ok, ch, body) ->
              let head =
                match (bind, ok) with
                | None, _ -> Printf.sprintf "case <-%s:" (expr_str ch)
                | Some x, false -> Printf.sprintf "case %s := <-%s:" x (expr_str ch)
                | Some x, true ->
                    Printf.sprintf "case %s, ok := <-%s:" x (expr_str ch)
              in
              Buffer.add_string buf (ind ^ head ^ "\n");
              Buffer.add_string buf (block_str (ind ^ indent_unit) body)
          | Ast.CaseSend (ch, v, body) ->
              Buffer.add_string buf
                (Printf.sprintf "%scase %s <- %s:\n" ind (expr_str ch) (expr_str v));
              Buffer.add_string buf (block_str (ind ^ indent_unit) body))
        cases;
      (match dflt with
      | Some body ->
          Buffer.add_string buf (ind ^ "default:\n");
          Buffer.add_string buf (block_str (ind ^ indent_unit) body)
      | None -> ());
      Buffer.add_string buf (ind ^ "}");
      Buffer.contents buf
  | Return [] -> line "return"
  | Return es -> line "return %s" (String.concat ", " (List.map expr_str es))
  | DeferStmt (DeferCall c) -> line "defer %s" (call_str c)
  | DeferStmt (DeferSend (ch, v)) ->
      line "defer func() {\n%s%s%s <- %s\n%s}()" ind indent_unit (expr_str ch)
        (expr_str v) ind
  | DeferStmt (DeferClose ch) -> line "defer close(%s)" (expr_str ch)
  | DeferStmt (DeferFuncLit body) ->
      Printf.sprintf "%sdefer func() {\n%s%s}()" ind
        (block_str (ind ^ indent_unit) body)
        ind
  | Break -> line "break"
  | Continue -> line "continue"
  | Panic e -> line "panic(%s)" (expr_str e)
  | BlockStmt b -> Printf.sprintf "%s{\n%s%s}" ind (block_str (ind ^ indent_unit) b) ind
  | IncDec (lv, true) -> line "%s++" (lvalue_str lv)
  | IncDec (lv, false) -> line "%s--" (lvalue_str lv)

and block_str ind (b : Ast.block) : string =
  String.concat "" (List.map (fun s -> stmt_block_str ind s ^ "\n") b)

let func_str (fd : Ast.func_decl) : string =
  let ps =
    List.map (fun (p : Ast.param) -> p.pname ^ " " ^ typ_str p.ptyp) fd.params
  in
  let ret_s =
    match fd.results with
    | [] -> ""
    | [ r ] -> " " ^ typ_str r
    | rs -> " (" ^ String.concat ", " (List.map typ_str rs) ^ ")"
  in
  Printf.sprintf "func %s(%s)%s {\n%s}\n" fd.fname (String.concat ", " ps) ret_s
    (block_str indent_unit fd.body)

let struct_str (sd : Ast.struct_decl) : string =
  let fields =
    List.map
      (fun (f, t) -> Printf.sprintf "%s%s %s\n" indent_unit f (typ_str t))
      sd.fields
  in
  Printf.sprintf "type %s struct {\n%s}\n" sd.struct_name (String.concat "" fields)

let file_str (f : Ast.file) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "package %s\n\n" f.package);
  List.iter
    (fun d ->
      (match d with
      | Ast.Dfunc fd -> Buffer.add_string buf (func_str fd)
      | Ast.Dstruct sd -> Buffer.add_string buf (struct_str sd));
      Buffer.add_char buf '\n')
    f.decls;
  Buffer.contents buf

let program_str (p : Ast.program) : string =
  String.concat "\n" (List.map file_str p)
