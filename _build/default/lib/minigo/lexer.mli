(** Hand-written lexer for MiniGo, implementing Go's automatic semicolon
    insertion: a semicolon is inserted at a newline when the previous
    token can end a statement. *)

exception Lex_error of string * Loc.t

type token_info = { tok : Token.t; loc : Loc.t }

val tokenize : file:string -> string -> token_info list
(** Tokenize a whole source string.  The result always ends with
    {!Token.EOF}.  @raise Lex_error on malformed input. *)
