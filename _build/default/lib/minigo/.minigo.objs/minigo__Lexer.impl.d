lib/minigo/lexer.ml: Buffer List Loc Printf String Token
