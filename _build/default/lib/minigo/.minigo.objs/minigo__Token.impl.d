lib/minigo/token.ml: Printf
