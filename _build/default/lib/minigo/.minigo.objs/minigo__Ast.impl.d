lib/minigo/ast.ml: List Loc Printf String
