lib/minigo/loc.mli: Format
