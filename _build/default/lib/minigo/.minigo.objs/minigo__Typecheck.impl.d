lib/minigo/typecheck.ml: Ast Hashtbl List Loc Option Pretty Printf
