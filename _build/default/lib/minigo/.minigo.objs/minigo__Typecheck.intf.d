lib/minigo/typecheck.mli: Ast Loc
