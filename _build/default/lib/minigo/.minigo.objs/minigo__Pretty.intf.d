lib/minigo/pretty.mli: Ast
