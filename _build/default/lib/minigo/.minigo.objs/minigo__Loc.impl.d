lib/minigo/loc.ml: Format String
