lib/minigo/pretty.ml: Ast Buffer List Printf String
