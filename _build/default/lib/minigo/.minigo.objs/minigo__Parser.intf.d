lib/minigo/parser.mli: Ast Loc
