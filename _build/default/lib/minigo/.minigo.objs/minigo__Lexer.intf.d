lib/minigo/lexer.mli: Loc Token
