(* Lexical tokens of MiniGo. *)

type t =
  (* literals and identifiers *)
  | INT of int
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_func
  | KW_go
  | KW_chan
  | KW_make
  | KW_select
  | KW_case
  | KW_default
  | KW_if
  | KW_else
  | KW_for
  | KW_return
  | KW_defer
  | KW_close
  | KW_var
  | KW_type
  | KW_struct
  | KW_package
  | KW_import
  | KW_true
  | KW_false
  | KW_nil
  | KW_range
  | KW_break
  | KW_continue
  | KW_panic
  | KW_len
  (* punctuation / operators *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | DOT
  | ARROW          (* <- *)
  | DEFINE         (* := *)
  | ASSIGN         (* = *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ             (* == *)
  | NEQ            (* != *)
  | LT
  | LE
  | GT
  | GE
  | AND            (* && *)
  | OR             (* || *)
  | NOT            (* ! *)
  | AMP            (* & *)
  | PLUSPLUS       (* ++ *)
  | MINUSMINUS     (* -- *)
  | EOF

let keyword_of_string = function
  | "func" -> Some KW_func
  | "go" -> Some KW_go
  | "chan" -> Some KW_chan
  | "make" -> Some KW_make
  | "select" -> Some KW_select
  | "case" -> Some KW_case
  | "default" -> Some KW_default
  | "if" -> Some KW_if
  | "else" -> Some KW_else
  | "for" -> Some KW_for
  | "return" -> Some KW_return
  | "defer" -> Some KW_defer
  | "close" -> Some KW_close
  | "var" -> Some KW_var
  | "type" -> Some KW_type
  | "struct" -> Some KW_struct
  | "package" -> Some KW_package
  | "import" -> Some KW_import
  | "true" -> Some KW_true
  | "false" -> Some KW_false
  | "nil" -> Some KW_nil
  | "range" -> Some KW_range
  | "break" -> Some KW_break
  | "continue" -> Some KW_continue
  | "panic" -> Some KW_panic
  | "len" -> Some KW_len
  | _ -> None

let to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_func -> "func"
  | KW_go -> "go"
  | KW_chan -> "chan"
  | KW_make -> "make"
  | KW_select -> "select"
  | KW_case -> "case"
  | KW_default -> "default"
  | KW_if -> "if"
  | KW_else -> "else"
  | KW_for -> "for"
  | KW_return -> "return"
  | KW_defer -> "defer"
  | KW_close -> "close"
  | KW_var -> "var"
  | KW_type -> "type"
  | KW_struct -> "struct"
  | KW_package -> "package"
  | KW_import -> "import"
  | KW_true -> "true"
  | KW_false -> "false"
  | KW_nil -> "nil"
  | KW_range -> "range"
  | KW_break -> "break"
  | KW_continue -> "continue"
  | KW_panic -> "panic"
  | KW_len -> "len"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | DOT -> "."
  | ARROW -> "<-"
  | DEFINE -> ":="
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | AND -> "&&"
  | OR -> "||"
  | NOT -> "!"
  | AMP -> "&"
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | EOF -> "<eof>"

let equal (a : t) (b : t) = a = b
