(** Type checker for MiniGo.

    Besides rejecting ill-typed programs, checking performs the one AST
    rewrite the parser defers: [for x := range e] is re-classified as a
    channel-drain loop when [e] is a channel. *)

exception Type_error of string * Loc.t

val check_program : Ast.program -> Ast.program
(** Check a whole program; returns the normalised program.
    @raise Type_error on the first error found. *)
