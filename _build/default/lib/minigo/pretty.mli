(** Pretty-printer rendering MiniGo ASTs back to gofmt-like source text.

    GFix emits patches by rewriting the AST and re-printing the program;
    patch readability (the paper's §5.3 metric) is the diff between the
    original and re-printed text, so the output is stable: one statement
    per line, Go brace style. *)

val binop_str : Ast.binop -> string
val typ_str : Ast.typ -> string
val expr_str : Ast.expr -> string
val call_str : Ast.call -> string

val block_str : string -> Ast.block -> string
(** [block_str indent b] renders each statement on its own line,
    prefixed with [indent]. *)

val func_str : Ast.func_decl -> string
val struct_str : Ast.struct_decl -> string
val file_str : Ast.file -> string
val program_str : Ast.program -> string
