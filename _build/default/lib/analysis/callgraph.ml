module Ir = Goir.Ir

(* Call graph construction.

   Direct calls and [go] spawns produce exact edges.  Indirect calls
   (through function values) are resolved using alias results; when alias
   information is empty we fall back to matching every program function
   with the same arity — the same over-approximation the paper's CHA
   package makes, and the paper's documented source of call-graph false
   positives (§5.1).  As in the paper, when the fallback produces more
   than one candidate we mark the call [ambiguous] so detectors can choose
   to ignore it. *)

type edge_kind = Ecall | Ego

type edge = {
  caller : string;
  callee : string;
  site : Ir.pp;
  kind : edge_kind;
  ambiguous : bool;
}

type t = {
  edges : edge list;
  succs : (string, edge list) Hashtbl.t;
  preds : (string, edge list) Hashtbl.t;
  prog : Ir.program;
}

let arity (f : Ir.func) = List.length f.params

let build ?alias (prog : Ir.program) : t =
  let edges = ref [] in
  let add ?(ambiguous = false) caller callee site kind =
    if Hashtbl.mem prog.funcs callee then
      edges := { caller; callee; site; kind; ambiguous } :: !edges
  in
  List.iter
    (fun (f : Ir.func) ->
      Ir.iter_insts
        (fun (i : Ir.inst) ->
          match i.idesc with
          | Icall (_, g, _) -> add f.name g i.ipp Ecall
          | Igo (g, _) -> add f.name g i.ipp Ego
          | Icall_indirect (_, fv, args) -> (
              let candidates =
                match alias with
                | Some al ->
                    Alias.ObjSet.fold
                      (fun o acc ->
                        match o with Alias.Afunc g -> g :: acc | _ -> acc)
                      (Alias.pts_var al f.name fv)
                      []
                | None -> []
              in
              match candidates with
              | [] ->
                  (* CHA-style fallback: all functions of matching arity *)
                  let matching =
                    List.filter
                      (fun (g : Ir.func) -> arity g = List.length args)
                      (Ir.funcs_list prog)
                  in
                  let ambiguous = List.length matching > 1 in
                  List.iter
                    (fun (g : Ir.func) -> add ~ambiguous f.name g.name i.ipp Ecall)
                    matching
              | [ g ] -> add f.name g i.ipp Ecall
              | gs -> List.iter (fun g -> add ~ambiguous:true f.name g i.ipp Ecall) gs)
          | _ -> ())
        f)
    (Ir.funcs_list prog);
  let succs = Hashtbl.create 16 in
  let preds = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace succs e.caller
        (e :: (Option.value (Hashtbl.find_opt succs e.caller) ~default:[]));
      Hashtbl.replace preds e.callee
        (e :: (Option.value (Hashtbl.find_opt preds e.callee) ~default:[])))
    !edges;
  { edges = !edges; succs; preds; prog }

let callees t f = Option.value (Hashtbl.find_opt t.succs f) ~default:[]
let callers t f = Option.value (Hashtbl.find_opt t.preds f) ~default:[]

(* Transitive closure of functions reachable from [f] (via calls and
   spawns), including [f] itself. *)
let reachable_from t f =
  let seen = Hashtbl.create 16 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      List.iter (fun e -> go e.callee) (callees t f)
    end
  in
  go f;
  seen

(* Does the call-subtree rooted at [f] contain an instruction satisfying
   [pred]?  Used to skip callee bodies during path enumeration (§3.3). *)
let subtree_contains t prog f pred =
  let reach = reachable_from t f in
  Hashtbl.fold
    (fun g () acc ->
      acc
      ||
      match Ir.find_func prog g with
      | Some fn ->
          Ir.fold_insts (fun acc i -> acc || pred i) false fn
          || Array.exists
               (fun (b : Ir.block) ->
                 match b.term with Tselect _ -> true | _ -> false)
               fn.blocks
      | None -> false)
    reach false

(* Lowest common ancestor of a set of functions in the call graph: the
   function with the smallest reachable-set that can reach all of them.
   The paper uses this to define a channel's analysis scope (§3.2). *)
let lca t (fs : string list) : string option =
  match fs with
  | [] -> None
  | [ f ] -> Some f
  | _ ->
      let all = Ir.funcs_list t.prog in
      let covering =
        List.filter_map
          (fun (cand : Ir.func) ->
            let reach = reachable_from t cand.name in
            if List.for_all (fun f -> Hashtbl.mem reach f) fs then
              Some (cand.name, Hashtbl.length reach)
            else None)
          all
      in
      (match List.sort (fun (_, a) (_, b) -> compare a b) covering with
      | (best, _) :: _ -> Some best
      | [] -> None)
