lib/analysis/dominance.ml: Array Goir List
