lib/analysis/alias.ml: Array Goir Hashtbl List Map Minigo Printf Set String
