lib/analysis/callgraph.ml: Alias Array Goir Hashtbl List Option
