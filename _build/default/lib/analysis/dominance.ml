module Ir = Goir.Ir

(* Intra-procedural dominance and post-dominance on IR CFGs.

   GFix needs dominance facts to validate its rewrites: Strategy-II checks
   that every [return] is dominated by a static [o1] operation and that
   moving [o1] to the [return] post-dominating it is safe (§4.3). *)

let block_ids (f : Ir.func) = Array.to_list (Array.map (fun b -> b.Ir.bid) f.blocks)

let index_of (f : Ir.func) bid =
  let idx = ref (-1) in
  Array.iteri (fun i b -> if b.Ir.bid = bid then idx := i) f.blocks;
  !idx

(* Classic iterative dataflow dominators. Returns dom.(i) = set of block
   indices dominating block i (including itself). *)
let dominators (f : Ir.func) : bool array array =
  let n = Array.length f.blocks in
  let entry = index_of f f.entry in
  let preds = Array.make n [] in
  Array.iteri
    (fun i b ->
      List.iter
        (fun s ->
          let j = index_of f s in
          if j >= 0 then preds.(j) <- i :: preds.(j))
        (Ir.successors b))
    f.blocks;
  ignore entry;
  let dom = Array.init n (fun i -> Array.make n (i <> index_of f f.entry)) in
  dom.(index_of f f.entry) <- Array.init n (fun j -> j = index_of f f.entry);
  Array.iteri (fun i row -> if i = index_of f f.entry then () else Array.fill row 0 n true) dom;
  dom.(index_of f f.entry) <- Array.init n (fun j -> j = index_of f f.entry);
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i _ ->
        if i <> index_of f f.entry then begin
          let inter = Array.make n true in
          (match preds.(i) with
          | [] -> Array.fill inter 0 n false
          | ps ->
              List.iter
                (fun p -> Array.iteri (fun j v -> inter.(j) <- inter.(j) && v) dom.(p))
                ps);
          inter.(i) <- true;
          if inter <> dom.(i) then begin
            dom.(i) <- inter;
            changed := true
          end
        end)
      f.blocks
  done;
  dom

(* Does block [a] dominate block [b]? *)
let dominates (f : Ir.func) dom a b =
  let ia = index_of f a and ib = index_of f b in
  ia >= 0 && ib >= 0 && dom.(ib).(ia)

(* Block containing a given program point, if any. *)
let block_of_pp (f : Ir.func) (p : Ir.pp) : int option =
  let found = ref None in
  Array.iter
    (fun (b : Ir.block) ->
      List.iter (fun (i : Ir.inst) -> if i.ipp = p then found := Some b.bid) b.insts;
      match b.term with
      | Tselect (_, _, sp) when sp = p -> found := Some b.bid
      | _ -> ())
    f.blocks;
  !found

(* pp-level dominance: [a] dominates [b] when a's block strictly dominates
   b's block, or both live in one block with [a] first. *)
let pp_dominates (f : Ir.func) dom (a : Ir.pp) (b : Ir.pp) : bool =
  match (block_of_pp f a, block_of_pp f b) with
  | Some ba, Some bb when ba = bb ->
      let order = ref [] in
      Array.iter
        (fun (blk : Ir.block) ->
          if blk.bid = ba then
            List.iter (fun (i : Ir.inst) -> order := i.ipp :: !order) blk.insts)
        f.blocks;
      let order = List.rev !order in
      let rec first_of = function
        | [] -> None
        | x :: rest ->
            if x = a then Some a else if x = b then Some b else first_of rest
      in
      first_of order = Some a
  | Some ba, Some bb -> dominates f dom ba bb
  | _ -> false

(* All blocks ending in a return. *)
let return_blocks (f : Ir.func) =
  Array.to_list f.blocks
  |> List.filter_map (fun (b : Ir.block) ->
         match b.term with Treturn _ -> Some b.bid | _ -> None)
