(** Integer difference-logic theory solver.

    Atoms have the form [x - y <= c].  A conjunction is satisfiable iff
    the constraint graph has no negative cycle; Bellman-Ford decides this
    and produces either a model or the cycle as an explanation, which the
    DPLL(T) driver turns into a blocking clause. *)

type atom = { ax : int; ay : int; ac : int }
(** [ax - ay <= ac] over variables identified by dense indices. *)

val atom_str : atom -> string

type result =
  | Consistent of int array  (** a model: value per variable *)
  | Inconsistent of atom list  (** the atoms of a negative cycle *)

val check : nvars:int -> atom list -> result
