lib/smt/expr.mli:
