lib/smt/diff_logic.ml: Array List Printf
