lib/smt/expr.ml: Array List Printf Sat String
