lib/smt/solver.ml: Array Diff_logic Expr Hashtbl List Sat
