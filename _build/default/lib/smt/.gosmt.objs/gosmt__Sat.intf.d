lib/smt/sat.mli:
