lib/smt/diff_logic.mli:
