lib/smt/solver.mli: Expr
