(** Boolean formulas over named atoms, Tseitin CNF conversion, and
    guarded sequential-counter cardinality encodings.

    GCatch's constraint generator builds ΦR ∧ ΦB as a {!t} whose atoms
    are either pure booleans (the paper's P match variables) or
    difference-logic atoms over order variables; {!Solver} maps atoms to
    SAT variables and dispatches difference atoms to the theory.

    Cardinalities ([AtMost]/[AtLeast]/[Exactly]) are reified for
    *positive* polarity only; negative occurrences are rewritten into
    their exact integer complements (¬(≤k) ≡ ≥k+1) by {!nnf_not} before
    encoding, so arbitrary formulas remain sound. *)

type t =
  | True
  | False
  | Atom of int
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | AtMost of int * t list   (** at most k of the formulas are true *)
  | AtLeast of int * t list
  | Exactly of int * t list

val atom : int -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val not_ : t -> t
val implies : t -> t -> t
val iff : t -> t -> t
val conj : t list -> t
val disj : t list -> t
val exactly_one : t list -> t

val to_string : t -> string

val nnf_not : t -> t
(** Push a negation one level in, turning negated cardinalities into
    their exact complements. *)

(** CNF emission context: [fresh] allocates SAT variables, [lit_of_atom]
    maps atom ids to positive SAT literals, [out] accumulates clauses. *)
type cnf_ctx = {
  fresh : unit -> int;
  lit_of_atom : int -> int;
  mutable out : int list list;
}

val lit_of : cnf_ctx -> t -> int
(** Tseitin-translate a formula to its defining literal. *)

val assert_formula : cnf_ctx -> t -> unit
(** Assert a formula as a top-level fact (flattening conjunctions and
    emitting cardinalities unguarded). *)
