(* Integer difference-logic theory solver.

   Atoms have the form  x - y <= c  over integer variables.  A set of such
   atoms is satisfiable iff the constraint graph (edge y -> x with weight
   c) has no negative cycle; Bellman-Ford both decides this and produces a
   model (shortest-path potentials).  On conflict we return the atoms
   forming the negative cycle as an explanation, which the DPLL(T) driver
   turns into a blocking clause.

   Strict inequalities over integers are normalised by the caller:
   x < y  ≡  x - y <= -1.  Equality is two [<=] atoms. *)

type atom = { ax : int; ay : int; ac : int } (* ax - ay <= ac *)

let atom_str a = Printf.sprintf "v%d - v%d <= %d" a.ax a.ay a.ac

type result =
  | Consistent of int array (* model: value per variable *)
  | Inconsistent of atom list (* atoms of a negative cycle *)

(* Check a conjunction of difference atoms over variables [0, nvars). *)
let check ~nvars (atoms : atom list) : result =
  (* edge y -> x weight c for each atom x - y <= c *)
  let edges = List.map (fun a -> (a.ay, a.ax, a.ac, a)) atoms in
  let dist = Array.make nvars 0 in
  let pred = Array.make nvars None in
  (* virtual source connecting to all nodes with weight 0 is modelled by
     the all-zero initial distances *)
  let changed = ref true in
  let iter = ref 0 in
  let last_relaxed = ref None in
  while !changed && !iter <= nvars do
    changed := false;
    incr iter;
    List.iter
      (fun (u, v, w, a) ->
        if dist.(u) + w < dist.(v) then begin
          dist.(v) <- dist.(u) + w;
          pred.(v) <- Some (u, a);
          changed := true;
          last_relaxed := Some v
        end)
      edges
  done;
  (* with edge (ay -> ax, ac) Bellman-Ford guarantees
     dist(ax) <= dist(ay) + ac, i.e. dist itself is a model of every
     atom ax - ay <= ac *)
  if not !changed then Consistent (Array.copy dist)
  else begin
    (* a vertex relaxed on the nth pass lies on / reaches a negative
       cycle; walk pred n steps to land on the cycle, then collect it *)
    let v = match !last_relaxed with Some v -> v | None -> assert false in
    let v = ref v in
    for _ = 1 to nvars do
      match pred.(!v) with Some (u, _) -> v := u | None -> ()
    done;
    let start = !v in
    let cycle = ref [] in
    let cur = ref start in
    let continue_walk = ref true in
    while !continue_walk do
      match pred.(!cur) with
      | Some (u, a) ->
          cycle := a :: !cycle;
          cur := u;
          if u = start then continue_walk := false
      | None -> continue_walk := false
    done;
    Inconsistent !cycle
  end

