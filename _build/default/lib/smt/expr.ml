(* Boolean formula AST over named atoms, plus Tseitin CNF conversion and a
   sequential-counter cardinality encoder.

   The GCatch constraint generator builds ΦR ∧ ΦB as a [t] over two atom
   kinds — pure booleans (the paper's P match variables, CLOSED variables)
   and difference-logic atoms over order variables (the paper's O
   variables).  [Solver] maps atoms to SAT variables and dispatches
   difference atoms to the theory. *)

type t =
  | True
  | False
  | Atom of int          (* positive occurrence of atom id *)
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | AtMost of int * t list   (* at most k of the formulas are true *)
  | AtLeast of int * t list
  | Exactly of int * t list

let atom i = Atom i
let ( &&& ) a b = And [ a; b ]
let ( ||| ) a b = Or [ a; b ]
let not_ a = Not a
let implies a b = Implies (a, b)
let iff a b = Iff (a, b)
let conj xs = And xs
let disj xs = Or xs
let exactly_one xs = Exactly (1, xs)

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Atom i -> Printf.sprintf "a%d" i
  | Not f -> "!(" ^ to_string f ^ ")"
  | And fs -> "(" ^ String.concat " & " (List.map to_string fs) ^ ")"
  | Or fs -> "(" ^ String.concat " | " (List.map to_string fs) ^ ")"
  | Implies (a, b) -> "(" ^ to_string a ^ " => " ^ to_string b ^ ")"
  | Iff (a, b) -> "(" ^ to_string a ^ " <=> " ^ to_string b ^ ")"
  | AtMost (k, fs) ->
      Printf.sprintf "atmost(%d; %s)" k (String.concat ", " (List.map to_string fs))
  | AtLeast (k, fs) ->
      Printf.sprintf "atleast(%d; %s)" k (String.concat ", " (List.map to_string fs))
  | Exactly (k, fs) ->
      Printf.sprintf "exactly(%d; %s)" k (String.concat ", " (List.map to_string fs))

(* ------------------------------------------------------------- CNF *)

(* Tseitin transformation.  [fresh ()] allocates a new SAT variable;
   [lit_of_atom] maps an atom id to a SAT literal.  Produces clauses of
   SAT literals (see {!Sat} for the encoding) and the literal representing
   the whole formula. *)

type cnf_ctx = {
  fresh : unit -> int; (* fresh SAT variable *)
  lit_of_atom : int -> int; (* positive literal for an atom *)
  mutable out : int list list;
}

let emit ctx c = ctx.out <- c :: ctx.out

let lit_true ctx =
  (* a dedicated always-true variable *)
  let v = ctx.fresh () in
  let l = Sat.lit_of_var v true in
  emit ctx [ l ];
  l

(* Sequential-counter encoding of  guard -> (sum(xs) <= k)  (Sinz 2005,
   with every clause weakened by the guard).  The guard mechanism reifies
   cardinalities for *positive* polarity, which is all the constraint
   generator needs: negated cardinalities are rewritten into their exact
   complements before reaching here (¬(≤k) ≡ ≥k+1). *)
let encode_at_most_g ctx ~(guard : int option) k (xs : int list) =
  let weaken c = match guard with Some g -> Sat.neg g :: c | None -> c in
  let emit ctx c = emit ctx (weaken c) in
  let n = List.length xs in
  if k >= n then ()
  else if k < 0 then emit ctx [] (* sum <= -1 is unsatisfiable *)
  else if k = 0 then List.iter (fun x -> emit ctx [ Sat.neg x ]) xs
  else begin
    let xs = Array.of_list xs in
    (* s.(i).(j): among x_0..x_i at least (j+1) are true; dims n x k *)
    let s =
      Array.init n (fun _ -> Array.init k (fun _ -> Sat.lit_of_var (ctx.fresh ()) true))
    in
    (* x_0 -> s_{0,0} *)
    emit ctx [ Sat.neg xs.(0); s.(0).(0) ];
    for i = 1 to n - 1 do
      emit ctx [ Sat.neg xs.(i); s.(i).(0) ];
      emit ctx [ Sat.neg s.(i - 1).(0); s.(i).(0) ];
      for j = 1 to k - 1 do
        emit ctx [ Sat.neg xs.(i); Sat.neg s.(i - 1).(j - 1); s.(i).(j) ];
        emit ctx [ Sat.neg s.(i - 1).(j); s.(i).(j) ]
      done;
      (* overflow: x_i and already k true among x_0..x_{i-1} -> conflict *)
      emit ctx [ Sat.neg xs.(i); Sat.neg s.(i - 1).(k - 1) ]
    done
  end

let encode_at_least_g ctx ~guard k xs =
  (* at least k of xs  <=>  at most (n-k) of (not xs) *)
  let n = List.length xs in
  if k <= 0 then ()
  else if k > n then
    emit ctx (match guard with Some g -> [ Sat.neg g ] | None -> [])
  else encode_at_most_g ctx ~guard (n - k) (List.map Sat.neg xs)

let encode_at_most ctx k xs = encode_at_most_g ctx ~guard:None k xs
let encode_at_least ctx k xs = encode_at_least_g ctx ~guard:None k xs

(* Push negation through the formula so that cardinalities only ever
   occur positively (their complements are exact over integers). *)
let rec nnf_not (f : t) : t =
  match f with
  | True -> False
  | False -> True
  | Atom _ -> Not f
  | Not g -> g
  | And fs -> Or (List.map nnf_not fs)
  | Or fs -> And (List.map nnf_not fs)
  | Implies (a, b) -> And [ a; nnf_not b ]
  | Iff (a, b) -> Iff (a, nnf_not b)
  | AtMost (k, fs) -> AtLeast (k + 1, fs)
  | AtLeast (k, fs) -> AtMost (k - 1, fs)
  | Exactly (k, fs) -> Or [ AtMost (k - 1, fs); AtLeast (k + 1, fs) ]

(* Translate a formula to a defining literal. *)
let rec lit_of ctx (f : t) : int =
  match f with
  | True -> lit_true ctx
  | False -> Sat.neg (lit_true ctx)
  | Atom i -> ctx.lit_of_atom i
  | Not (Atom i) -> Sat.neg (ctx.lit_of_atom i)
  | Not g -> lit_of ctx (nnf_not g)
  | And fs ->
      let ls = List.map (lit_of ctx) fs in
      let v = Sat.lit_of_var (ctx.fresh ()) true in
      (* v -> each l;  all l -> v *)
      List.iter (fun l -> emit ctx [ Sat.neg v; l ]) ls;
      emit ctx (v :: List.map Sat.neg ls);
      v
  | Or fs ->
      let ls = List.map (lit_of ctx) fs in
      let v = Sat.lit_of_var (ctx.fresh ()) true in
      emit ctx (Sat.neg v :: ls);
      List.iter (fun l -> emit ctx [ v; Sat.neg l ]) ls;
      v
  | Implies (a, b) -> lit_of ctx (Or [ Not a; b ])
  | Iff (a, b) ->
      let la = lit_of ctx a in
      let lb = lit_of ctx b in
      let v = Sat.lit_of_var (ctx.fresh ()) true in
      emit ctx [ Sat.neg v; Sat.neg la; lb ];
      emit ctx [ Sat.neg v; la; Sat.neg lb ];
      emit ctx [ v; la; lb ];
      emit ctx [ v; Sat.neg la; Sat.neg lb ];
      v
  | AtMost (k, fs) ->
      (* reified for positive polarity: v -> (sum <= k) *)
      let ls = List.map (lit_of ctx) fs in
      let v = Sat.lit_of_var (ctx.fresh ()) true in
      encode_at_most_g ctx ~guard:(Some v) k ls;
      v
  | AtLeast (k, fs) ->
      let ls = List.map (lit_of ctx) fs in
      let v = Sat.lit_of_var (ctx.fresh ()) true in
      encode_at_least_g ctx ~guard:(Some v) k ls;
      v
  | Exactly (k, fs) ->
      let ls = List.map (lit_of ctx) fs in
      let v = Sat.lit_of_var (ctx.fresh ()) true in
      encode_at_most_g ctx ~guard:(Some v) k ls;
      encode_at_least_g ctx ~guard:(Some v) k ls;
      v

(* Assert [f] as a top-level fact. *)
let assert_formula ctx (f : t) =
  (* flatten top-level conjunctions to keep the CNF small *)
  let rec go f =
    match f with
    | True -> ()
    | And fs -> List.iter go fs
    | False -> emit ctx []
    | Or fs when List.for_all (function Atom _ | Not (Atom _) -> true | _ -> false) fs ->
        emit ctx
          (List.map
             (function
               | Atom i -> ctx.lit_of_atom i
               | Not (Atom i) -> Sat.neg (ctx.lit_of_atom i)
               | _ -> assert false)
             fs)
    | AtMost (k, fs) -> encode_at_most ctx k (List.map (lit_of ctx) fs)
    | AtLeast (k, fs) -> encode_at_least ctx k (List.map (lit_of ctx) fs)
    | Exactly (k, fs) ->
        let ls = List.map (lit_of ctx) fs in
        encode_at_most ctx k ls;
        encode_at_least ctx k ls
    | other -> emit ctx [ lit_of ctx other ]
  in
  go f
