(* The 21 synthetic applications.

   The paper evaluates on the top-20 GitHub Go projects plus the projects
   of the prior empirical study; we cannot ship those, so each application
   here is a synthetic stand-in with seeded bug instances whose *counts*
   follow the corresponding row of the paper's Table 1.  Instance counts
   are scaled to roughly one third of the paper's to keep the full
   harness within laptop-minutes, except for small rows which are kept
   exact (zero stays zero, and every non-zero cell stays non-zero, so the
   table's qualitative shape — which checkers fire on which app — is
   preserved).  Filler lines scale analogously with project size. *)

module P = Patterns

type spec = {
  name : string;
  (* BMOC (channel only), split across the three fixable shapes and the
     unfixable ones *)
  n_s1 : int;       (* single-sending instances  -> Strategy-I *)
  n_s2 : int;       (* missing-interaction       -> Strategy-II *)
  n_s3 : int;       (* multiple-operations       -> Strategy-III *)
  n_parent : int;   (* parent-blocked (unfixable) *)
  n_sidefx : int;   (* side-effects-after (unfixable) *)
  n_mutex : int;    (* BMOC with channel + mutex *)
  (* traditional *)
  n_unlock : int;
  n_dlock : int;
  n_conflict : int;
  n_field : int;
  n_fatal : int;
  (* negative / bait material *)
  n_fp_loop : int;
  n_fp_infeasible : int;
  n_benign : int;
  filler_lines : int;
}

let z name =
  {
    name;
    n_s1 = 0;
    n_s2 = 0;
    n_s3 = 0;
    n_parent = 0;
    n_sidefx = 0;
    n_mutex = 0;
    n_unlock = 0;
    n_dlock = 0;
    n_conflict = 0;
    n_field = 0;
    n_fatal = 0;
    n_fp_loop = 0;
    n_fp_infeasible = 0;
    n_benign = 2;
    filler_lines = 120;
  }

(* Rows follow the order of Table 1 (apps ranked by GitHub stars). *)
let specs : spec list =
  [
    {
      (z "go") with
      n_s1 = 4;
      n_parent = 2;
      n_s3 = 1;
      n_mutex = 1;
      n_unlock = 3;
      n_conflict = 1;
      n_field = 1;
      n_fatal = 1;
      n_fp_loop = 1;
      n_fp_infeasible = 1;
      n_benign = 4;
      filler_lines = 1200;
    };
    {
      (z "kubernetes") with
      n_s1 = 3;
      n_parent = 1;
      n_sidefx = 1;
      n_mutex = 1;
      n_unlock = 1;
      n_dlock = 1;
      n_field = 2;
      n_fatal = 3;
      n_fp_loop = 2;
      n_benign = 5;
      filler_lines = 2400;
    };
    {
      (z "docker") with
      n_s1 = 13;
      n_s2 = 1;
      n_s3 = 2;
      n_parent = 1;
      n_sidefx = 1;
      n_unlock = 1;
      n_dlock = 1;
      n_conflict = 1;
      n_field = 1;
      n_fp_loop = 2;
      n_fp_infeasible = 1;
      n_benign = 5;
      filler_lines = 1800;
    };
    { (z "hugo") with n_unlock = 1; n_field = 1; filler_lines = 300 };
    (z "gin");
    { (z "frp") with n_unlock = 1; filler_lines = 150 };
    (z "gogs");
    {
      (z "syncthing") with
      n_unlock = 1;
      n_field = 1;
      n_fp_infeasible = 1;
      filler_lines = 350;
    };
    {
      (z "etcd") with
      n_s1 = 8;
      n_s2 = 1;
      n_s3 = 3;
      n_parent = 1;
      n_unlock = 2;
      n_dlock = 1;
      n_field = 2;
      n_fatal = 2;
      n_fp_loop = 2;
      n_fp_infeasible = 1;
      n_benign = 4;
      filler_lines = 1500;
    };
    {
      (z "v2ray-core") with
      n_dlock = 1;
      n_conflict = 1;
      n_field = 1;
      filler_lines = 400;
    };
    {
      (z "prometheus") with
      n_s1 = 1;
      n_unlock = 1;
      n_dlock = 1;
      n_fp_infeasible = 1;
      filler_lines = 500;
    };
    { (z "fzf") with n_fp_loop = 1; filler_lines = 120 };
    (z "traefik");
    (z "caddy");
    {
      (z "go-ethereum") with
      n_s1 = 2;
      n_s3 = 1;
      n_parent = 1;
      n_mutex = 0;
      n_unlock = 1;
      n_dlock = 2;
      n_field = 2;
      n_fatal = 1;
      n_fp_loop = 3;
      n_fp_infeasible = 2;
      n_benign = 4;
      filler_lines = 1000;
    };
    { (z "beego") with n_field = 1; filler_lines = 250 };
    (z "mkcert");
    {
      (z "tidb") with
      n_s1 = 1;
      n_dlock = 1;
      n_conflict = 1;
      filler_lines = 900;
    };
    {
      (z "cockroachdb") with
      n_s1 = 1;
      n_s2 = 1;
      n_parent = 1;
      n_unlock = 2;
      n_conflict = 1;
      n_fp_infeasible = 1;
      filler_lines = 900;
    };
    {
      (z "grpc") with
      n_s1 = 2;
      n_s3 = 1;
      n_conflict = 1;
      n_field = 1;
      n_fatal = 1;
      filler_lines = 450;
    };
    { (z "bbolt") with n_s1 = 1; n_s3 = 1; n_fatal = 1; filler_lines = 150 };
  ]

type app = {
  spec : spec;
  sources : string list;
  truth : P.truth list;
  loc : int;
}

(* Build one application: concatenate pattern instances and filler. *)
let build (s : spec) : app =
  let counter = ref 0 in
  let buf = Buffer.create 4096 in
  let truth = ref [] in
  let drivers = ref [] in
  let add kind count =
    for _ = 1 to count do
      incr counter;
      let inst = P.instantiate kind !counter in
      Buffer.add_string buf inst.src;
      truth := inst.truth @ !truth;
      drivers := P.driver_for kind !counter :: !drivers
    done
  in
  add P.P_single_send_select ((s.n_s1 + 1) / 2);
  add P.P_single_send_timeout (s.n_s1 / 2);
  add P.P_missing_interaction s.n_s2;
  add P.P_loop_send s.n_s3;
  add P.P_parent_blocked s.n_parent;
  add P.P_side_effect s.n_sidefx;
  add P.P_chan_mutex s.n_mutex;
  add P.P_fp_loop s.n_fp_loop;
  add P.P_fp_infeasible s.n_fp_infeasible;
  add P.P_double_lock s.n_dlock;
  add P.P_forget_unlock s.n_unlock;
  add P.P_conflict_order s.n_conflict;
  add P.P_field_race s.n_field;
  add P.P_fatal_in_child s.n_fatal;
  add P.P_benign_buffered ((s.n_benign + 2) / 3);
  add P.P_benign_pipeline ((s.n_benign + 1) / 3);
  add P.P_benign_wg (s.n_benign / 3);
  let patterns_src = Buffer.contents buf in
  let filler = Filler.generate ~seed:(String.length s.name) ~target_lines:s.filler_lines in
  (* a whole-program root calling every entry: makes the application a
     closed program (the E5 ablation analyses everything from main) *)
  let main_src =
    "func main() {\n"
    ^ String.concat ""
        (List.concat_map
           (fun stmts -> List.map (fun st -> "\t" ^ st ^ "\n") stmts)
           (List.rev !drivers))
    ^ "}\n"
  in
  let pkg =
    "app_" ^ String.map (fun c -> if c = '-' then '_' else c) s.name
  in
  let src = "package " ^ pkg ^ "\n" ^ patterns_src ^ filler ^ main_src in
  let loc = List.length (String.split_on_char '\n' src) in
  { spec = s; sources = [ src ]; truth = !truth; loc }

let all () : app list = List.map build specs

let find name =
  match List.find_opt (fun s -> s.name = name) specs with
  | Some s -> Some (build s)
  | None -> None
