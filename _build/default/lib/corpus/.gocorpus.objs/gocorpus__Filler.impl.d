lib/corpus/filler.ml: Buffer List Printf
