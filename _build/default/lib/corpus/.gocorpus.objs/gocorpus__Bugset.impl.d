lib/corpus/bugset.ml: List Printf
