lib/corpus/patterns.ml: Gcatch Printf
