lib/corpus/apps.ml: Buffer Filler List Patterns String
