(* Deterministic benign-code generator.

   Scales each synthetic application with correct, concurrency-free (or
   correctly synchronised) code, so detector work and timing reflect a
   realistic ratio of interesting to boring code — the paper's targets
   range from 1 kLoC to 3 MLoC, and the detection-time experiment (E2)
   needs apps whose sizes span orders of magnitude. *)

let sp = Printf.sprintf

(* A tiny deterministic PRNG so generation never depends on global state. *)
type rng = { mutable s : int }

let next r =
  r.s <- (r.s * 1103515245) + 12345;
  (r.s lsr 16) land 0x7fff

let pick r xs = List.nth xs (next r mod List.length xs)

let pure_fn r id =
  match next r mod 5 with
  | 0 ->
      sp
        {|
func helperSum%d(limit int) int {
	total := 0
	for i := range limit {
		total = total + i
	}
	return total
}
|}
        id
  | 1 ->
      sp
        {|
func helperScale%d(v int, factor int) int {
	if factor == 0 {
		return 0
	}
	scaled := v * factor
	if scaled < 0 {
		return -scaled
	}
	return scaled
}
|}
        id
  | 2 ->
      sp
        {|
func helperJoin%d(a string, b string) string {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	return a + "/" + b
}
|}
        id
  | 3 ->
      sp
        {|
func helperClamp%d(v int, lo int, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
|}
        id
  | _ ->
      sp
        {|
func helperDigits%d(v int) int {
	count := 0
	for v > 0 {
		v = v / 10
		count++
	}
	return count
}
|}
        id

(* Correct, boring concurrency: a worker that signals completion over a
   buffered channel and is always drained. *)
let concurrent_fn _r id =
  sp
    {|
func workerRound%d(jobs int) int {
	resw%d := make(chan int, 1)
	go func(n int) {
		acc := 0
		for i := range n {
			acc = acc + i
		}
		resw%d <- acc
	}(jobs)
	return <-resw%d
}
|}
    id id id id

(* Generate roughly [target_lines] lines of benign code. *)
let generate ~seed ~target_lines : string =
  let r = { s = seed } in
  let buf = Buffer.create (target_lines * 24) in
  let id = ref 0 in
  while Buffer.length buf / 24 < target_lines do
    incr id;
    let gen = pick r [ `Pure; `Pure; `Pure; `Conc ] in
    Buffer.add_string buf
      (match gen with
      | `Pure -> pure_fn r (!id + (seed * 1000))
      | `Conc -> concurrent_fn r (!id + (seed * 1000)))
  done;
  Buffer.contents buf
