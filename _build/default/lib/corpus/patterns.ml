(* Bug-pattern templates.

   Every template instantiates to MiniGo source plus ground-truth labels.
   The bug shapes follow the taxonomy the paper's detectors and fixers
   target: the three GFix-fixable BMOC shapes come straight from the
   paper's Figures 1, 3 and 4; the unfixable shapes mirror the four
   rejection reasons of §5.3; the look-alike shapes exercise the
   documented false-positive sources of §5.2 (loop unrolling, infeasible
   paths); and the traditional shapes cover the five §3.5 checkers. *)

type fix_expect = FS1 | FS2 | FS3 | Funfixable of string

type truth =
  | T_bmoc of {
      fn : string;              (* function whose scope hosts the bug *)
      fixable : fix_expect;
      with_mutex : bool;
    }
  | T_trad of Gcatch.Report.trad_kind * string
  | T_fp_bait of string         (* an expected/acceptable false positive *)
  | T_benign of string          (* must never be flagged *)

type instance = { src : string; truth : truth list }

let sp = Printf.sprintf

(* -------------------------------------------------- BMOC bug shapes *)

(* Figure 1: the Docker Exec single-sending bug.  Fix: Strategy-I. *)
let single_send_select n : instance =
  let fn = sp "ExecTask%d" n in
  let src =
    sp
      {|
func %s(ctx context.Context, payload string) (string, error) {
	done%d := make(chan error)
	go func(data string) {
		var err error
		if len(data) > 1024 {
			err = errorf("payload too large")
		}
		done%d <- err
	}(payload)
	select {
	case err := <-done%d:
		if err != nil {
			return "", err
		}
	case <-ctx.Done():
		return "", ctx.Err()
	}
	return "ok", nil
}
|}
      fn n n n
  in
  { src; truth = [ T_bmoc { fn; fixable = FS1; with_mutex = false } ] }

(* A compact Figure-1 variant: result notification never drained when the
   caller times out via a second channel.  Fix: Strategy-I. *)
let single_send_timeout n : instance =
  let fn = sp "FetchWithTimeout%d" n in
  let src =
    sp
      {|
func %s(timeout chan bool, url string) string {
	result%d := make(chan string)
	go func(u string) {
		body := u + "/index.html"
		result%d <- body
	}(url)
	select {
	case body := <-result%d:
		return body
	case <-timeout:
		return ""
	}
}
|}
      fn n n n
  in
  { src; truth = [ T_bmoc { fn; fixable = FS1; with_mutex = false } ] }

(* Figure 3: the etcd missing-interaction bug — the test can exit through
   t.Fatalf before sending on stop, leaving the child blocked.
   Fix: Strategy-II (defer the send). *)
let missing_interaction_fatal n : instance =
  let fn = sp "TestDialer%d" n in
  let helper = sp "dialerStart%d" n in
  let src =
    sp
      {|
func %s(stop chan bool) {
	conns := 0
	conns++
	<-stop
}

func %s(t *testing.T) {
	stop%d := make(chan bool)
	go %s(stop%d)
	err := errorf("dial failed")
	if err != nil {
		t.Fatalf("dial error")
	}
	stop%d <- true
}
|}
      helper fn n helper n n
  in
  { src; truth = [ T_bmoc { fn; fixable = FS2; with_mutex = false } ] }

(* Figure 4: the go-ethereum multiple-operations bug — the child sends in
   a loop; when the parent returns early nobody drains the channel.
   Fix: Strategy-III (stop channel + select). *)
let loop_send n : instance =
  let fn = sp "Interactive%d" n in
  let src =
    sp
      {|
func %s(abort chan bool, inputs int) int {
	sched%d := make(chan string)
	go func(n int) {
		for i := range n {
			line := "input"
			sched%d <- line
		}
	}(inputs)
	handled := 0
	for {
		select {
		case <-abort:
			return handled
		case line := <-sched%d:
			if len(line) == 0 {
				return handled
			}
			handled++
		}
	}
}
|}
      fn n n n
  in
  { src; truth = [ T_bmoc { fn; fixable = FS3; with_mutex = false } ] }

(* Unfixable: the blocked goroutine is the parent (one of the paper's
   nine parent-blocking rejections). *)
let parent_blocked n : instance =
  let fn = sp "WaitForever%d" n in
  let src =
    sp
      {|
func %s(flag bool) int {
	ack%d := make(chan int)
	go func(skip bool) {
		if skip {
			return
		}
		ack%d <- 1
	}(flag)
	v := <-ack%d
	return v
}
|}
      fn n n n
  in
  {
    src;
    truth =
      [ T_bmoc { fn; fixable = Funfixable "parent blocked"; with_mutex = false } ];
  }

(* Unfixable: side effects (a global-ish field update through a struct)
   after the blocking send. *)
let side_effect_after n : instance =
  let fn = sp "RecordAndNotify%d" n in
  let src =
    sp
      {|
type Stats%d struct {
	count int
}

func %s(ctx context.Context, st Stats%d) int {
	fin%d := make(chan bool)
	go func(s Stats%d) {
		fin%d <- true
		s.count = s.count + 1
		println("updated")
	}(st)
	select {
	case <-fin%d:
		return st.count
	case <-ctx.Done():
		return 0
	}
}
|}
      n fn n n n n n
  in
  {
    src;
    truth =
      [ T_bmoc { fn; fixable = Funfixable "side effects"; with_mutex = false } ];
  }

(* BMOC involving a channel and a mutex: the child cannot send because the
   parent holds the lock it needs before receiving. *)
let chan_mutex_deadlock n : instance =
  let fn = sp "LockedHandoff%d" n in
  let src =
    sp
      {|
type Box%d struct {
	mu sync.Mutex
	val int
}

func %s(v int) int {
	b := Box%d{val: v}
	ready%d := make(chan bool)
	go func(bx Box%d) {
		bx.mu.Lock()
		ready%d <- true
		bx.mu.Unlock()
	}(b)
	b.mu.Lock()
	<-ready%d
	b.mu.Unlock()
	return b.val
}
|}
      n fn n n n n n
  in
  {
    src;
    truth =
      [ T_bmoc { fn; fixable = Funfixable "mutex involved"; with_mutex = true } ];
  }

(* ------------------------------------------- false-positive baits *)

(* Loop-unrolling bait (§5.2): producer sends [n] values, consumer drains
   exactly [n]; bounded unrolling miscounts, so GCatch may report the send
   as blocking even though counts always match. *)
let fp_loop_unroll n : instance =
  let fn = sp "BatchCopy%d" n in
  let src =
    sp
      {|
func %s(items int) int {
	feed%d := make(chan int)
	go func(k int) {
		for i := range k {
			feed%d <- i
		}
	}(items)
	got := 0
	for j := range items {
		v := <-feed%d
		got = got + v + j - j
	}
	return got
}
|}
      fn n n n
  in
  { src; truth = [ T_fp_bait fn ] }

(* Infeasible-path bait (§5.2): the early return and the skipped receive
   are guarded by the same runtime condition, which path-insensitive
   condition filtering cannot see (the variable is written twice). *)
let fp_infeasible n : instance =
  let fn = sp "GuardedNotify%d" n in
  let src =
    sp
      {|
func %s(input int) int {
	sig%d := make(chan int)
	mode := 0
	if input > 10 {
		mode = 1
	}
	go func() {
		sig%d <- 1
	}()
	if mode == 0 {
		v := <-sig%d
		return v
	}
	w := <-sig%d
	return w + 1
}
|}
      fn n n n n
  in
  { src; truth = [ T_fp_bait fn ] }

(* ------------------------------------------------- benign shapes *)

let benign_buffered n : instance =
  let fn = sp "AsyncResult%d" n in
  let src =
    sp
      {|
func %s(ctx context.Context, job string) string {
	out%d := make(chan string, 1)
	go func(j string) {
		out%d <- j + ":done"
	}(job)
	select {
	case r := <-out%d:
		return r
	case <-ctx.Done():
		return ""
	}
}
|}
      fn n n n
  in
  { src; truth = [ T_benign fn ] }

let benign_pipeline n : instance =
  let fn = sp "Pipeline%d" n in
  let src =
    sp
      {|
func %s(count int) int {
	stage%d := make(chan int, 4)
	donep%d := make(chan int)
	go func(k int) {
		for i := range k {
			stage%d <- i * 2
		}
		close(stage%d)
	}(count)
	go func() {
		total := 0
		for v := range stage%d {
			total = total + v
		}
		donep%d <- total
	}()
	return <-donep%d
}
|}
      fn n n n n n n n
  in
  { src; truth = [ T_benign fn ] }

let benign_wg n : instance =
  let fn = sp "FanOut%d" n in
  let src =
    sp
      {|
func %s(workers int) int {
	var wg sync.WaitGroup
	acc%d := make(chan int, 16)
	for w := range workers {
		wg.Add(1)
		go func(id int) {
			acc%d <- id
			wg.Done()
		}(w)
	}
	wg.Wait()
	close(acc%d)
	sum := 0
	for v := range acc%d {
		sum = sum + v
	}
	return sum
}
|}
      fn n n n n
  in
  { src; truth = [ T_benign fn ] }

(* --------------------------------------------- traditional shapes *)

let double_lock n : instance =
  let fn = sp "Reload%d" n in
  let helper = sp "flush%d" n in
  let src =
    sp
      {|
type Cache%d struct {
	mu sync.Mutex
	entries int
}

func %s(c Cache%d) {
	c.mu.Lock()
	c.entries = 0
	c.mu.Unlock()
}

func %s(c Cache%d) {
	c.mu.Lock()
	c.entries = c.entries + 1
	%s(c)
	c.mu.Unlock()
}
|}
      n helper n fn n helper
  in
  { src; truth = [ T_trad (Gcatch.Report.Double_lock, fn) ] }

let forget_unlock n : instance =
  let fn = sp "UpdateQuota%d" n in
  let src =
    sp
      {|
type Quota%d struct {
	mu sync.Mutex
	used int
}

func %s(q Quota%d, amount int) error {
	q.mu.Lock()
	if amount < 0 {
		return errorf("negative amount")
	}
	q.used = q.used + amount
	q.mu.Unlock()
	return nil
}
|}
      n fn n
  in
  { src; truth = [ T_trad (Gcatch.Report.Forget_unlock, fn) ] }

let conflict_order n : instance =
  let fa = sp "TransferAB%d" n in
  let fb = sp "TransferBA%d" n in
  let src =
    sp
      {|
type Pair%d struct {
	ma sync.Mutex
	mb sync.Mutex
	a int
	b int
}

func %s(p Pair%d) {
	p.ma.Lock()
	p.mb.Lock()
	p.a = p.a - 1
	p.b = p.b + 1
	p.mb.Unlock()
	p.ma.Unlock()
}

func %s(p Pair%d) {
	p.mb.Lock()
	p.ma.Lock()
	p.b = p.b - 1
	p.a = p.a + 1
	p.ma.Unlock()
	p.mb.Unlock()
}

func runPair%d(v int) {
	p := Pair%d{a: v, b: v}
	go %s(p)
	go %s(p)
}
|}
      n fa n fb n n n fa fb
  in
  {
    src;
    truth =
      [ T_trad (Gcatch.Report.Conflict_lock, fa); T_benign fb ];
  }

let field_race n : instance =
  let fn = sp "BumpCounter%d" n in
  let g1 = sp "readCounter%d" n in
  let g2 = sp "resetCounter%d" n in
  let src =
    sp
      {|
type Meter%d struct {
	mu sync.Mutex
	hits int
}

func %s(m Meter%d) {
	m.mu.Lock()
	m.hits = m.hits + 1
	m.mu.Unlock()
}

func %s(m Meter%d) int {
	m.mu.Lock()
	v := m.hits
	m.mu.Unlock()
	return v
}

func %s(m Meter%d) {
	m.hits = 0
}

func runMeter%d(rounds int) int {
	m := Meter%d{hits: 0}
	go %s(m)
	go %s(m)
	%s(m)
	return %s(m)
}
|}
      n fn n g1 n g2 n n n fn g2 fn g1
  in
  { src; truth = [ T_trad (Gcatch.Report.Struct_field_race, g2) ] }

let fatal_in_child n : instance =
  let fn = sp "TestConcurrent%d" n in
  let src =
    sp
      {|
func %s(t *testing.T) {
	okc%d := make(chan bool, 1)
	go func() {
		err := errorf("boom")
		if err != nil {
			t.Fatalf("worker failed")
		}
		okc%d <- true
	}()
	sleep(1)
}
|}
      fn n n
  in
  {
    src;
    truth = [ T_trad (Gcatch.Report.Fatal_in_child, fn) ];
  }

(* ------------------------------------------------------- registry *)

type kind =
  | P_single_send_select
  | P_single_send_timeout
  | P_missing_interaction
  | P_loop_send
  | P_parent_blocked
  | P_side_effect
  | P_chan_mutex
  | P_fp_loop
  | P_fp_infeasible
  | P_benign_buffered
  | P_benign_pipeline
  | P_benign_wg
  | P_double_lock
  | P_forget_unlock
  | P_conflict_order
  | P_field_race
  | P_fatal_in_child

let instantiate (k : kind) (n : int) : instance =
  match k with
  | P_single_send_select -> single_send_select n
  | P_single_send_timeout -> single_send_timeout n
  | P_missing_interaction -> missing_interaction_fatal n
  | P_loop_send -> loop_send n
  | P_parent_blocked -> parent_blocked n
  | P_side_effect -> side_effect_after n
  | P_chan_mutex -> chan_mutex_deadlock n
  | P_fp_loop -> fp_loop_unroll n
  | P_fp_infeasible -> fp_infeasible n
  | P_benign_buffered -> benign_buffered n
  | P_benign_pipeline -> benign_pipeline n
  | P_benign_wg -> benign_wg n
  | P_double_lock -> double_lock n
  | P_forget_unlock -> forget_unlock n
  | P_conflict_order -> conflict_order n
  | P_field_race -> field_race n
  | P_fatal_in_child -> fatal_in_child n

(* Driver statements calling the instance's entry point from main();
   used to give each application a whole-program root for the E5
   ablation and to make the applications runnable. *)
let driver_for (k : kind) (n : int) : string list =
  match k with
  | P_single_send_select -> [ sp "ExecTask%d(background(), \"payload\")" n ]
  | P_single_send_timeout ->
      [
        sp "tm%d := make(chan bool, 1)" n;
        sp "tm%d <- true" n;
        sp "FetchWithTimeout%d(tm%d, \"url\")" n n;
      ]
  | P_missing_interaction ->
      [ sp "var td%d *testing.T" n; sp "TestDialer%d(td%d)" n n ]
  | P_loop_send ->
      [
        sp "ab%d := make(chan bool, 1)" n;
        sp "ab%d <- true" n;
        sp "Interactive%d(ab%d, 3)" n n;
      ]
  | P_parent_blocked -> [ sp "WaitForever%d(false)" n ]
  | P_side_effect ->
      [ sp "RecordAndNotify%d(background(), Stats%d{count: 0})" n n ]
  | P_chan_mutex -> [ sp "LockedHandoff%d(1)" n ]
  | P_fp_loop -> [ sp "BatchCopy%d(4)" n ]
  | P_fp_infeasible -> [ sp "GuardedNotify%d(5)" n ]
  | P_benign_buffered -> [ sp "AsyncResult%d(background(), \"job\")" n ]
  | P_benign_pipeline -> [ sp "Pipeline%d(4)" n ]
  | P_benign_wg -> [ sp "FanOut%d(3)" n ]
  | P_double_lock -> [ sp "Reload%d(Cache%d{entries: 0})" n n ]
  | P_forget_unlock -> [ sp "UpdateQuota%d(Quota%d{used: 0}, 2)" n n ]
  | P_conflict_order -> [ sp "runPair%d(1)" n ]
  | P_field_race -> [ sp "runMeter%d(2)" n ]
  | P_fatal_in_child ->
      [ sp "var tc%d *testing.T" n; sp "TestConcurrent%d(tc%d)" n n ]

let kind_name = function
  | P_single_send_select -> "single-send-select"
  | P_single_send_timeout -> "single-send-timeout"
  | P_missing_interaction -> "missing-interaction"
  | P_loop_send -> "loop-send"
  | P_parent_blocked -> "parent-blocked"
  | P_side_effect -> "side-effect-after"
  | P_chan_mutex -> "chan-mutex-deadlock"
  | P_fp_loop -> "fp-loop-unroll"
  | P_fp_infeasible -> "fp-infeasible-path"
  | P_benign_buffered -> "benign-buffered"
  | P_benign_pipeline -> "benign-pipeline"
  | P_benign_wg -> "benign-waitgroup"
  | P_double_lock -> "double-lock"
  | P_forget_unlock -> "forget-unlock"
  | P_conflict_order -> "conflict-order"
  | P_field_race -> "field-race"
  | P_fatal_in_child -> "fatal-in-child"

let all_kinds =
  [
    P_single_send_select;
    P_single_send_timeout;
    P_missing_interaction;
    P_loop_send;
    P_parent_blocked;
    P_side_effect;
    P_chan_mutex;
    P_fp_loop;
    P_fp_infeasible;
    P_benign_buffered;
    P_benign_pipeline;
    P_benign_wg;
    P_double_lock;
    P_forget_unlock;
    P_conflict_order;
    P_field_race;
    P_fatal_in_child;
  ]
