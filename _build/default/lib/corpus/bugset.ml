(* The coverage-study bug set (E4).

   The paper replays GCatch over the 49 BMOC bugs of the public Go
   concurrency bug set [Tu et al., ASPLOS'19] and finds 33 (67 %).  We
   rebuild the set as 49 miniature programs drawn from the same
   root-cause classes, including the four documented miss classes:

   - LCA-scope misses (a lock protecting a channel op lives above the
     channel's computed scope);
   - bugs only visible with dynamic values (a receiver retries until a
     particular value that is never sent);
   - unmodelled primitives (WaitGroup, timers);
   - nil-channel data flow.

   Each entry records whether GCatch is *expected* to detect it, so E4
   can report measured coverage next to the paper's 33/49. *)

type entry = {
  bs_name : string;
  bs_src : string;
  bs_detectable : bool; (* per the paper's analysis of GCatch's coverage *)
  bs_class : string;
}

let sp = Printf.sprintf

(* ---- detectable classes ---- *)

let mk_single_send i =
  {
    bs_name = sp "single-send-%d" i;
    bs_class = "unbuffered notification never drained";
    bs_detectable = true;
    bs_src =
      sp
        {|
func Work%d(ctx context.Context) int {
	res := make(chan int)
	go func() {
		res <- %d
	}()
	select {
	case v := <-res:
		return v
	case <-ctx.Done():
		return -1
	}
}
|}
        i i;
  }

let mk_missing_notify i =
  {
    bs_name = sp "missing-notify-%d" i;
    bs_class = "parent can exit without notifying child";
    bs_detectable = true;
    bs_src =
      sp
        {|
func Run%d(t *testing.T, bad bool) {
	quit := make(chan bool)
	go func() {
		<-quit
	}()
	if bad {
		t.Fatal("setup failed")
	}
	quit <- true
}
|}
        i;
  }

let mk_loop_send i =
  {
    bs_name = sp "loop-send-%d" i;
    bs_class = "producer loop outlives consumer";
    bs_detectable = true;
    bs_src =
      sp
        {|
func Feed%d(abort chan bool, n int) int {
	data := make(chan int)
	go func(k int) {
		for i := range k {
			data <- i
		}
	}(n)
	select {
	case <-abort:
		return 0
	case v := <-data:
		return v
	}
}
|}
        i;
  }

let mk_chan_mutex i =
  {
    bs_name = sp "chan-mutex-%d" i;
    bs_class = "channel blocked inside critical section";
    bs_detectable = true;
    bs_src =
      sp
        {|
type CM%d struct {
	mu sync.Mutex
	n int
}

func Handoff%d(v int) int {
	s := CM%d{n: v}
	ok := make(chan bool)
	go func(x CM%d) {
		x.mu.Lock()
		ok <- true
		x.mu.Unlock()
	}(s)
	s.mu.Lock()
	<-ok
	s.mu.Unlock()
	return s.n
}
|}
        i i i i;
  }

let mk_double_recv i =
  {
    bs_name = sp "double-recv-%d" i;
    bs_class = "two receives, one send";
    bs_detectable = true;
    bs_src =
      sp
        {|
func Twice%d() int {
	c := make(chan int)
	go func() {
		c <- 1
	}()
	a := <-c
	b := <-c
	return a + b
}
|}
        i;
  }

(* ---- miss classes ---- *)

(* The first two use constant Add(1) deltas — the shape the §6 WaitGroup
   extension can model when enabled; the rest use Add(n) with a runtime
   value, which stays out of reach.  All five are misses for baseline
   GCatch, like the paper. *)
let mk_waitgroup i =
  {
    bs_name = sp "waitgroup-%d" i;
    bs_class = "WaitGroup misuse (primitive not modelled)";
    bs_detectable = false;
    bs_src =
      (if i <= 2 then
         sp
           {|
func Gather%d(n int) {
	var wg sync.WaitGroup
	for i := range n {
		wg.Add(1)
		go func(k int) {
			if k == 0 {
				return
			}
			wg.Done()
		}(i)
	}
	wg.Wait()
}
|}
           i
       else
         sp
           {|
func Gather%d(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range n {
		go func(k int) {
			if k == 0 {
				return
			}
			wg.Done()
		}(i)
	}
	wg.Wait()
}
|}
           i);
  }

let mk_timer i =
  {
    bs_name = sp "timer-%d" i;
    bs_class = "timing-dependent (time library not modelled)";
    bs_detectable = false;
    bs_src =
      sp
        {|
func Timed%d() int {
	c := make(chan int, 1)
	go func() {
		sleep(1000)
		c <- 1
	}()
	sleep(1)
	select {
	case v := <-c:
		return v
	default:
		return 0
	}
}
|}
        i;
  }

let mk_nil_chan i =
  {
    bs_name = sp "nil-chan-%d" i;
    bs_class = "nil channel (needs data-flow analysis)";
    bs_detectable = false;
    bs_src =
      sp
        {|
func NilSend%d(use bool) {
	var c chan int
	if use {
		c = make(chan int, 1)
	}
	c <- 1
}
|}
        i;
  }

let mk_dynamic_value i =
  {
    bs_name = sp "dyn-value-%d" i;
    bs_class = "blocked on a value that never arrives (dynamic)";
    bs_detectable = false;
    bs_src =
      sp
        {|
func AwaitMagic%d() int {
	c := make(chan int, 8)
	go func() {
		for i := range 3 {
			c <- i
		}
		close(c)
	}()
	for {
		v, ok := <-c
		if !ok {
			continue
		}
		if v == 42 {
			return v
		}
	}
}
|}
        i;
  }

let mk_lca_crit i =
  {
    bs_name = sp "lca-crit-%d" i;
    bs_class = "lock above the channel's LCA scope";
    bs_detectable = false;
    bs_src =
      sp
        {|
type LC%d struct {
	mu sync.Mutex
	n int
}

func inner%d(s LC%d) int {
	c := make(chan int)
	go func(x LC%d) {
		x.mu.Lock()
		c <- 1
		x.mu.Unlock()
	}(s)
	return <-c
}

func Outer%d(v int) int {
	s := LC%d{n: v}
	s.mu.Lock()
	r := inner%d(s)
	s.mu.Unlock()
	return r
}
|}
        i i i i i i i;
  }

(* 49 entries: 33 expected-detectable, 16 expected-missed, matching the
   paper's coverage breakdown. *)
let entries : entry list =
  List.concat
    [
      List.init 12 (fun i -> mk_single_send (i + 1));
      List.init 8 (fun i -> mk_missing_notify (i + 1));
      List.init 6 (fun i -> mk_loop_send (i + 1));
      List.init 4 (fun i -> mk_chan_mutex (i + 1));
      List.init 3 (fun i -> mk_double_recv (i + 1));
      (* misses *)
      List.init 5 (fun i -> mk_waitgroup (i + 1));
      List.init 3 (fun i -> mk_timer (i + 1));
      List.init 2 (fun i -> mk_nil_chan (i + 1));
      List.init 4 (fun i -> mk_dynamic_value (i + 1));
      List.init 2 (fun i -> mk_lca_crit (i + 1));
    ]

let expected_detected = List.length (List.filter (fun e -> e.bs_detectable) entries)
let total = List.length entries
