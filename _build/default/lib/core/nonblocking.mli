(** Non-blocking misuse-of-channel checkers — the paper's §6 extension:
    a send ordered after a close of the same channel panics, as does a
    second close.  Both are decided with the order-variable bug
    constraint the paper sketches (O_close < O_send satisfiable). *)

type nb_kind = Send_on_closed | Double_close

val nb_kind_str : nb_kind -> string

type nb_bug = {
  nb_kind : nb_kind;
  nb_chan : Goanalysis.Alias.obj;
  nb_first : Minigo.Loc.t;   (** the close *)
  nb_second : Minigo.Loc.t;  (** the send / second close *)
  nb_func : string;          (** scope root *)
}

val nb_str : nb_bug -> string

val detect : ?cfg:Bmoc.config -> Goir.Ir.program -> nb_bug list
