(** The five traditional checkers (paper §3.5): missing unlock, double
    lock, conflicting lock order, racy struct fields (lockset), and
    testing.Fatal called from a child goroutine. *)

val detect : Goir.Ir.program -> Report.trad_bug list
