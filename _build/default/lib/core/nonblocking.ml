module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module Callgraph = Goanalysis.Callgraph
module Solver = Gosmt.Solver

(* Non-blocking misuse-of-channel detectors — the extension the paper
   sketches in §6: "we can enhance GCatch to detect bugs caused by this
   error by configuring a new type of bug constraints where a sending
   operation has a larger order variable value than a closing operation
   conducted on the same channel".

   Two checkers, both built from the BMOC detector's path machinery but
   with a lighter constraint system (only Φorder ∧ Φspawn — the panic
   happens the moment the racy order is possible, no blocking reasoning
   is needed):

   - send-on-closed: a send that can execute after a close of the same
     channel panics at run time;
   - double-close: two closes of the same channel in one feasible
     combination panic at run time.

   A same-goroutine send-then-close is *not* flagged: program order makes
   O_close < O_send unsatisfiable. *)

type nb_kind = Send_on_closed | Double_close

let nb_kind_str = function
  | Send_on_closed -> "send on closed channel"
  | Double_close -> "channel closed twice"

type nb_bug = {
  nb_kind : nb_kind;
  nb_chan : Alias.obj;
  nb_first : Minigo.Loc.t; (* the close *)
  nb_second : Minigo.Loc.t; (* the send / second close *)
  nb_func : string;
}

let nb_str (b : nb_bug) =
  Printf.sprintf "%s: %s closed at %s, %s at %s (scope %s)"
    (nb_kind_str b.nb_kind) (Alias.obj_str b.nb_chan)
    (Minigo.Loc.to_string b.nb_first)
    (match b.nb_kind with Send_on_closed -> "sent" | Double_close -> "closed again")
    (Minigo.Loc.to_string b.nb_second)
    b.nb_func

(* Events of one kind on one object across a combination. *)
let events_on (combo : Pathenum.combination) (obj : Alias.obj) ~kind :
    (int * Pathenum.event) list =
  List.concat_map
    (fun (gi : Pathenum.goroutine_instance) ->
      List.filter_map
        (fun (e : Pathenum.event) ->
          match e.e_desc with
          | Sync (Sop (k, objs)) when k = kind && List.mem obj objs ->
              Some (gi.gi_id, e)
          | _ -> None)
        gi.gi_path.p_events)
    combo

(* Can [first] execute strictly before [second] under program and spawn
   order?  Encoded exactly as the paper suggests: order variables per
   event, O_first < O_second, solve. *)
let order_feasible (combo : Pathenum.combination) (first : int * Pathenum.event)
    (second : int * Pathenum.event) : bool =
  let s = Solver.create () in
  let ovar = Hashtbl.create 32 in
  let ovar_of gid uid =
    match Hashtbl.find_opt ovar (gid, uid) with
    | Some v -> v
    | None ->
        let v = Solver.new_order_var s (Printf.sprintf "g%d_e%d" gid uid) in
        Hashtbl.replace ovar (gid, uid) v;
        v
  in
  List.iter
    (fun (gi : Pathenum.goroutine_instance) ->
      let rec chain = function
        | (a : Pathenum.event) :: (b :: _ as rest) ->
            Solver.add s
              (Solver.lt s (ovar_of gi.gi_id a.e_uid) (ovar_of gi.gi_id b.e_uid));
            chain rest
        | _ -> ()
      in
      chain gi.gi_path.p_events;
      match (gi.gi_parent, gi.gi_spawn_uid, gi.gi_path.p_events) with
      | Some parent, Some spawn_uid, first_ev :: _ ->
          Solver.add s
            (Solver.lt s (ovar_of parent spawn_uid)
               (ovar_of gi.gi_id first_ev.e_uid))
      | _ -> ())
    combo;
  let fg, fe = first and sg, se = second in
  Solver.add s (Solver.lt s (ovar_of fg fe.e_uid) (ovar_of sg se.e_uid));
  match Solver.solve s with Solver.Sat_model _ -> true | Solver.Unsat -> false

let detect ?(cfg = Bmoc.default_config) (prog : Ir.program) : nb_bug list =
  let alias = Alias.analyse prog in
  let cg = Callgraph.build ~alias prog in
  let prims = Primitives.collect prog alias in
  let dis = Disentangle.build prims cg in
  let bugs = ref [] in
  let seen = Hashtbl.create 16 in
  let report kind obj scope_root first second =
    let key = (kind, obj, (first : Minigo.Loc.t), (second : Minigo.Loc.t)) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      bugs :=
        {
          nb_kind = kind;
          nb_chan = obj;
          nb_first = first;
          nb_second = second;
          nb_func = scope_root;
        }
        :: !bugs
    end
  in
  List.iter
    (fun c ->
      match c with
      | Alias.Achan _ ->
          (* only channels with at least one close can panic this way *)
          let has_close =
            List.exists
              (fun (o : Primitives.op) -> o.o_kind = Report.Kclose)
              (Primitives.ops_of prims c)
          in
          if has_close then begin
            let scope = Disentangle.scope_of dis c in
            let pset = Disentangle.pset dis c in
            let ctx =
              {
                Pathenum.prog;
                alias;
                cg;
                pset;
                scope_funcs = scope.funcs;
                cfg = cfg.path_cfg;
                touch_memo = Hashtbl.create 16;
              }
            in
            let combos =
              Pathenum.combinations ctx ~root:scope.root
                ~max_combos:cfg.max_combos ~max_goroutines:cfg.max_goroutines
            in
            List.iter
              (fun combo ->
                if not (Pathenum.has_conflicts combo) then begin
                  let closes = events_on combo c ~kind:Report.Kclose in
                  let sends = events_on combo c ~kind:Report.Ksend in
                  (* send-on-closed *)
                  List.iter
                    (fun close ->
                      List.iter
                        (fun send ->
                          if order_feasible combo close send then
                            report Send_on_closed c scope.root
                              (snd close).Pathenum.e_loc
                              (snd send).Pathenum.e_loc)
                        sends)
                    closes;
                  (* double-close: two distinct close events in one
                     feasible combination *)
                  match closes with
                  | (_ :: _ :: _ : _ list) ->
                      let rec pairs = function
                        | a :: rest ->
                            List.iter
                              (fun b ->
                                (* both orders infeasible would mean the
                                   two closes cannot co-exist *)
                                if
                                  (snd a).Pathenum.e_pp
                                  <> (snd b).Pathenum.e_pp
                                  && (order_feasible combo a b
                                     || order_feasible combo b a)
                                then
                                  report Double_close c scope.root
                                    (snd a).Pathenum.e_loc
                                    (snd b).Pathenum.e_loc)
                              rest;
                            pairs rest
                        | [] -> ()
                      in
                      pairs closes
                  | _ -> ()
                end)
              combos
          end
      | _ -> ())
    (Primitives.channels prims);
  List.rev !bugs
