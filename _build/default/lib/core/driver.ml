module Ir = Goir.Ir
module Alias = Goanalysis.Alias

(* End-to-end GCatch pipeline (the workflow of the paper's Figure 2):
   source text -> parse -> type check -> lower -> BMOC detector +
   traditional detectors -> reports. *)

type analysis = {
  source : Minigo.Ast.program;
  ir : Ir.program;
  bmoc : Report.bmoc_bug list;
  trad : Report.trad_bug list;
  stats : Bmoc.stats;
  elapsed_s : float;
}

let compile_sources ~name (sources : string list) : Minigo.Ast.program * Ir.program
    =
  let ast = Minigo.Parser.parse_program ~name sources in
  let ast = Minigo.Typecheck.check_program ast in
  let ir = Goir.Lower.lower_program ast in
  (ast, ir)

let analyse_ir ?(cfg = Bmoc.default_config) (source : Minigo.Ast.program)
    (ir : Ir.program) : analysis =
  let t0 = Unix.gettimeofday () in
  let bmoc, stats = Bmoc.detect ~cfg ir in
  let trad = Traditional.detect ir in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  { source; ir; bmoc; trad; stats; elapsed_s }

let analyse ?(cfg = Bmoc.default_config) ~name (sources : string list) : analysis =
  let ast, ir = compile_sources ~name sources in
  analyse_ir ~cfg ast ir

let analyse_string ?(cfg = Bmoc.default_config) (src : string) : analysis =
  analyse ~cfg ~name:"input" [ src ]

let print_reports (a : analysis) =
  List.iter (fun b -> print_endline (Report.bmoc_str b)) a.bmoc;
  List.iter (fun t -> print_endline (Report.trad_str t)) a.trad
