lib/core/report.ml: Goanalysis Goir List Minigo Printf String
