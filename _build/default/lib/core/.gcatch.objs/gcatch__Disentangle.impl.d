lib/core/disentangle.ml: Array Goanalysis Goir Hashtbl List Option Primitives Report String
