lib/core/patch.ml: Array List Minigo Option String
