lib/core/bmoc.ml: Constraints Disentangle Goanalysis Goir Hashtbl List Pathenum Primitives Report String
