lib/core/traditional.mli: Goir Report
