lib/core/constraints.ml: Goanalysis Goir Gosmt Hashtbl List Minigo Option Pathenum Primitives Printf Report
