lib/core/nonblocking.mli: Bmoc Goanalysis Goir Minigo
