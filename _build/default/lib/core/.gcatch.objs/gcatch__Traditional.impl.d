lib/core/traditional.ml: Goanalysis Goir Hashtbl List Minigo Option Primitives Printf Report
