lib/core/driver.mli: Bmoc Goir Minigo Report
