lib/core/primitives.ml: Array Goanalysis Goir Hashtbl List Minigo Option Report String
