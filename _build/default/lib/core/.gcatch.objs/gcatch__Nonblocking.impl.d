lib/core/nonblocking.ml: Bmoc Disentangle Goanalysis Goir Gosmt Hashtbl List Minigo Pathenum Primitives Printf Report
