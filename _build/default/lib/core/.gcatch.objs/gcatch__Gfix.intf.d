lib/core/gfix.mli: Minigo Report
