lib/core/gfix.ml: Goanalysis List Minigo Option Patch Printf Report
