lib/core/driver.ml: Bmoc Goanalysis Goir List Minigo Report Traditional Unix
