lib/core/pathenum.ml: Array Goanalysis Goir Hashtbl List Minigo Option Printf Report
