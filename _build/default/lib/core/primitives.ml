module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module Callgraph = Goanalysis.Callgraph

(* Primitive and operation discovery (Algorithm 1, lines 2–5).

   GCatch identifies every synchronization primitive by its static
   creation site and uses alias analysis to map each sync operation to the
   primitives it may touch.  The result is the [op_map]: for each abstract
   object, every operation performed on it anywhere in the program. *)

type op = {
  o_obj : Alias.obj;
  o_func : string;       (* function containing the operation *)
  o_pp : Ir.pp;
  o_loc : Minigo.Loc.t;
  o_kind : Report.op_kind;
  o_deferred : bool;
  o_select_arm : int option; (* arm index when the op lives in a select *)
}

type prim_kind = Pchan | Pmutex | Pwaitgroup

type t = {
  ops : (Alias.obj, op list) Hashtbl.t;
  kinds : (Alias.obj, prim_kind) Hashtbl.t;
  prog : Ir.program;
  alias : Alias.t;
}

let add_op t (o : op) =
  let cur = Option.value (Hashtbl.find_opt t.ops o.o_obj) ~default:[] in
  Hashtbl.replace t.ops o.o_obj (o :: cur)

let note_kind t obj kind =
  if not (Hashtbl.mem t.kinds obj) then Hashtbl.replace t.kinds obj kind

(* Objects a place may refer to, from the alias analysis. *)
let objs t fname place = Alias.ObjSet.elements (Alias.objects_of_place t.alias fname place)

let collect (prog : Ir.program) (alias : Alias.t) : t =
  let t = { ops = Hashtbl.create 64; kinds = Hashtbl.create 64; prog; alias } in
  List.iter
    (fun (f : Ir.func) ->
      Ir.iter_insts
        (fun (i : Ir.inst) ->
          let record kind prim_kind place =
            List.iter
              (fun obj ->
                note_kind t obj prim_kind;
                add_op t
                  {
                    o_obj = obj;
                    o_func = f.name;
                    o_pp = i.ipp;
                    o_loc = i.iloc;
                    o_kind = kind;
                    o_deferred = i.ideferred;
                    o_select_arm = None;
                  })
              (objs t f.name place)
          in
          match i.idesc with
          | Isend (p, _) -> record Report.Ksend Pchan p
          | Irecv (_, p, _) -> record Report.Krecv Pchan p
          | Iclose p -> record Report.Kclose Pchan p
          | Ilock p -> record Report.Klock Pmutex p
          | Iunlock p -> record Report.Kunlock Pmutex p
          | Iwg_add (p, _) -> record Report.Kwg_add Pwaitgroup p
          | Iwg_done p -> record Report.Kwg_done Pwaitgroup p
          | Iwg_wait p -> record Report.Kwg_wait Pwaitgroup p
          | _ -> ())
        f;
      Array.iter
        (fun (b : Ir.block) ->
          match b.term with
          | Tselect (arms, _, sel_pp) ->
              List.iteri
                (fun idx (a : Ir.select_arm) ->
                  let place, kind =
                    match a.arm_op with
                    | Arm_recv (p, _) -> (p, Report.Krecv)
                    | Arm_send (p, _) -> (p, Report.Ksend)
                  in
                  List.iter
                    (fun obj ->
                      note_kind t obj Pchan;
                      add_op t
                        {
                          o_obj = obj;
                          o_func = f.name;
                          o_pp = sel_pp;
                          o_loc = b.term_loc;
                          o_kind = kind;
                          o_deferred = false;
                          o_select_arm = Some idx;
                        })
                    (objs t f.name place))
                arms
          | _ -> ())
        f.blocks)
    (Ir.funcs_list prog);
  t

let ops_of t obj = Option.value (Hashtbl.find_opt t.ops obj) ~default:[]

let kind_of t obj = Hashtbl.find_opt t.kinds obj

(* All channel objects with at least one operation, created inside the
   program (the detectors iterate these; externally-created channels are
   examined when their owner is analysed, per §3.2's scope rule). *)
let channels t =
  Hashtbl.fold
    (fun obj kind acc -> if kind = Pchan then obj :: acc else acc)
    t.kinds []
  |> List.sort compare

let mutexes t =
  Hashtbl.fold
    (fun obj kind acc -> if kind = Pmutex then obj :: acc else acc)
    t.kinds []
  |> List.sort compare

(* Functions whose bodies contain at least one operation on [obj]. *)
let funcs_using t obj =
  List.sort_uniq String.compare (List.map (fun o -> o.o_func) (ops_of t obj))

(* Static buffer size of a channel object, if known (BS in the constraint
   system; mutexes are modelled as channels with BS = 1, §3.4). *)
let buffer_size t obj =
  match kind_of t obj with
  | Some Pmutex -> Some 1
  | Some Pwaitgroup -> None
  | _ -> Alias.capacity t.alias obj
