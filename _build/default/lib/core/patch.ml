module A = Minigo.Ast

(* AST patching utilities shared by the GFix strategies, plus the diff
   metric used by the paper's readability evaluation (changed lines of
   source code, §5.3). *)

(* ------------------------------------------------------------- diff *)

(* Longest-common-subsequence line diff; returns (added, removed).
   Patches are local, so the common prefix and suffix are stripped before
   the quadratic LCS — without this, diffing a multi-thousand-line
   program per patch dominates GFix's runtime (E8). *)
let line_diff (before : string) (after : string) : int * int =
  let a = Array.of_list (String.split_on_char '\n' before) in
  let b = Array.of_list (String.split_on_char '\n' after) in
  let n = Array.length a and m = Array.length b in
  let pre = ref 0 in
  while !pre < n && !pre < m && String.equal a.(!pre) b.(!pre) do
    incr pre
  done;
  let suf = ref 0 in
  while
    !suf < n - !pre
    && !suf < m - !pre
    && String.equal a.(n - 1 - !suf) b.(m - 1 - !suf)
  do
    incr suf
  done;
  let n' = n - !pre - !suf and m' = m - !pre - !suf in
  let lcs = Array.make_matrix (n' + 1) (m' + 1) 0 in
  for i = n' - 1 downto 0 do
    for j = m' - 1 downto 0 do
      lcs.(i).(j) <-
        (if String.equal a.(!pre + i) b.(!pre + j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let common = lcs.(0).(0) in
  (m' - common, n' - common)

(* The paper counts added + removed (a replaced line counts once on each
   side of a unified diff; the paper's Figure 1 patch counts as one
   changed line, which is one removed + one added => we report
   max(added, removed) + |added - removed| ... simplest faithful metric:
   a replacement is 1 changed line, so changed = max(added, removed). *)
let changed_lines before after =
  let added, removed = line_diff before after in
  max added removed

(* ------------------------------------------------- program rewriting *)

(* Map over every function declaration of the program. *)
let map_funcs (f : A.func_decl -> A.func_decl) (prog : A.program) : A.program =
  List.map
    (fun (file : A.file) ->
      {
        file with
        decls =
          List.map
            (function A.Dfunc fd -> A.Dfunc (f fd) | d -> d)
            file.decls;
      })
    prog

(* Same source line (expression locs differ from their statement's loc by
   column only). *)
let same_line (a : Minigo.Loc.t) (b : Minigo.Loc.t) =
  String.equal (Minigo.Loc.file a) (Minigo.Loc.file b)
  && Minigo.Loc.line a = Minigo.Loc.line b

(* Find the function whose body contains a statement at [loc]'s line. *)
let func_containing (prog : A.program) (loc : Minigo.Loc.t) : A.func_decl option =
  List.find_opt
    (fun (fd : A.func_decl) ->
      A.fold_stmts (fun acc s -> acc || same_line s.A.sloc loc) false fd.body)
    (A.funcs_of_program prog)

(* Structural map over statements of a block (deep). *)
let rec map_block (f : A.stmt -> A.stmt list) (b : A.block) : A.block =
  List.concat_map
    (fun s ->
      List.map (map_nested f) (f s))
    b

and map_nested f (s : A.stmt) : A.stmt =
  let desc =
    match s.A.s with
    | A.If (c, b1, b2) -> A.If (c, map_block f b1, Option.map (map_block f) b2)
    | A.For (k, b) -> A.For (k, map_block f b)
    | A.BlockStmt b -> A.BlockStmt (map_block f b)
    | A.GoFuncLit (ps, b, args) -> A.GoFuncLit (ps, map_block f b, args)
    | A.Select (cases, dflt) ->
        A.Select
          ( List.map
              (function
                | A.CaseRecv (x, ok, ch, b) -> A.CaseRecv (x, ok, ch, map_block f b)
                | A.CaseSend (ch, v, b) -> A.CaseSend (ch, v, map_block f b))
              cases,
            Option.map (map_block f) dflt )
    | A.DeferStmt (A.DeferFuncLit b) -> A.DeferStmt (A.DeferFuncLit (map_block f b))
    | d -> d
  in
  { s with s = desc }

(* Rewrite statements of one named function. *)
let rewrite_func (prog : A.program) (fname : string)
    (f : A.stmt -> A.stmt list) : A.program =
  map_funcs
    (fun fd -> if fd.fname = fname then { fd with body = map_block f fd.body } else fd)
    prog

(* ----------------------------------------------------- AST queries *)

(* Does an expression mention identifier [x]? *)
let rec expr_uses (x : string) (e : A.expr) : bool =
  match e.A.e with
  | A.Ident y -> String.equal x y
  | A.Int _ | A.Bool _ | A.Str _ | A.Nil -> false
  | A.Binop (_, a, b) -> expr_uses x a || expr_uses x b
  | A.Unop (_, a) | A.Recv a | A.Len a | A.Field (a, _) -> expr_uses x a
  | A.Call c -> call_uses x c
  | A.MakeChan (_, cap) -> ( match cap with Some c -> expr_uses x c | None -> false)
  | A.StructLit (_, fs) -> List.exists (fun (_, v) -> expr_uses x v) fs
  | A.FuncLit (ps, _, b) ->
      (not (List.exists (fun (p : A.param) -> p.pname = x) ps)) && block_uses x b

and call_uses x (c : A.call) =
  (match c.A.callee with
  | A.Fname f -> String.equal f x
  | A.Fmethod (e, _) | A.Fexpr e -> expr_uses x e)
  || List.exists (expr_uses x) c.args

and block_uses x (b : A.block) =
  A.fold_stmts
    (fun acc s ->
      acc
      ||
      match s.A.s with
      | A.Decl (_, _, Some e) | A.Define (_, e) | A.Panic e | A.ExprStmt e ->
          expr_uses x e
      | A.Assign (lv, e) -> (
          expr_uses x e
          || match lv with A.Lid y -> y = x | A.Lfield (b, _) -> expr_uses x b)
      | A.Send (ch, v) -> expr_uses x ch || expr_uses x v
      | A.CloseStmt ch -> expr_uses x ch
      | A.Go c -> call_uses x c
      | A.GoFuncLit (_, _, args) -> List.exists (expr_uses x) args
      | A.If (c, _, _) -> expr_uses x c
      | A.For (k, _) -> (
          match k with
          | A.ForCond e | A.ForRangeInt (_, e) | A.ForRangeChan (_, e) ->
              expr_uses x e
          | A.ForEver | A.ForClassic _ -> false)
      | A.Select (cases, _) ->
          List.exists
            (function
              | A.CaseRecv (_, _, ch, _) -> expr_uses x ch
              | A.CaseSend (ch, v, _) -> expr_uses x ch || expr_uses x v)
            cases
      | A.Return es -> List.exists (expr_uses x) es
      | A.DeferStmt d -> (
          match d with
          | A.DeferCall c -> call_uses x c
          | A.DeferSend (ch, v) -> expr_uses x ch || expr_uses x v
          | A.DeferClose ch -> expr_uses x ch
          | A.DeferFuncLit _ -> false)
      | _ -> false)
    false b

(* Channel operations on variable [c] inside a block, shallow-classified. *)
type chan_op_ast =
  | Csend of A.stmt          (* the statement performing c <- v *)
  | Crecv of A.stmt
  | Cclose of A.stmt
  | Cselect_arm of A.stmt

let ops_on_chan (c : string) (b : A.block) : chan_op_ast list =
  let is_c (e : A.expr) = match e.A.e with A.Ident x -> x = c | _ -> false in
  A.fold_stmts
    (fun acc s ->
      match s.A.s with
      | A.Send (ch, _) when is_c ch -> Csend s :: acc
      | A.CloseStmt ch when is_c ch -> Cclose s :: acc
      | A.ExprStmt { e = A.Recv ch; _ } when is_c ch -> Crecv s :: acc
      | A.Define (_, { e = A.Recv ch; _ }) when is_c ch -> Crecv s :: acc
      | A.Assign (_, { e = A.Recv ch; _ }) when is_c ch -> Crecv s :: acc
      | A.For (A.ForRangeChan (_, ch), _) when is_c ch -> Crecv s :: acc
      | A.Select (cases, _)
        when List.exists
               (function
                 | A.CaseRecv (_, _, ch, _) -> is_c ch
                 | A.CaseSend (ch, _, _) -> is_c ch)
               cases ->
          Cselect_arm s :: acc
      | A.DeferStmt (A.DeferSend (ch, _)) when is_c ch -> Csend s :: acc
      | A.DeferStmt (A.DeferClose ch) when is_c ch -> Cclose s :: acc
      | _ -> acc)
    [] b
  |> List.rev

(* Is statement [s] (by location) inside a loop body within block [b]? *)
let rec in_loop_in_block (loc : Minigo.Loc.t) (b : A.block) ~(inside : bool) : bool =
  List.exists (in_loop_stmt loc ~inside) b

and in_loop_stmt loc ~inside (s : A.stmt) : bool =
  if Minigo.Loc.equal s.A.sloc loc then inside
  else
    match s.A.s with
    | A.For (_, b) -> in_loop_in_block loc b ~inside:true
    | A.If (_, b1, b2) ->
        in_loop_in_block loc b1 ~inside
        || (match b2 with Some b -> in_loop_in_block loc b ~inside | None -> false)
    | A.BlockStmt b | A.GoFuncLit (_, b, _) -> in_loop_in_block loc b ~inside
    | A.Select (cases, dflt) ->
        List.exists
          (function
            | A.CaseRecv (_, _, _, b) | A.CaseSend (_, _, b) ->
                in_loop_in_block loc b ~inside)
          cases
        || (match dflt with Some b -> in_loop_in_block loc b ~inside | None -> false)
    | _ -> false

(* Statements lexically after the one at [loc] in the same block level
   (used for the side-effect-after-o2 check). *)
let stmts_after (loc : Minigo.Loc.t) (b : A.block) : A.stmt list option =
  let rec scan = function
    | [] -> None
    | s :: rest ->
        if Minigo.Loc.equal s.A.sloc loc then Some rest
        else
          let nested =
            match s.A.s with
            | A.If (_, b1, b2) -> (
                match scan b1 with
                | Some r -> Some (r @ rest)
                | None -> (
                    match b2 with
                    | Some b -> (
                        match scan b with Some r -> Some (r @ rest) | None -> None)
                    | None -> None))
            | A.For (_, body) | A.BlockStmt body -> (
                match scan body with Some r -> Some (r @ rest) | None -> None)
            | _ -> None
          in
          (match nested with Some _ as r -> r | None -> scan rest)
  in
  scan b

(* A statement is "pure exit" when it is a bare return (no expressions
   with effects) — the only thing allowed after o2 for Strategy-I/II. *)
let is_pure_exit (s : A.stmt) =
  match s.A.s with
  | A.Return es ->
      List.for_all
        (fun (e : A.expr) ->
          match e.A.e with
          | A.Int _ | A.Bool _ | A.Str _ | A.Nil | A.Ident _ -> true
          | _ -> false)
        es
  | _ -> false
