module Ir = Goir.Ir
module Alias = Goanalysis.Alias

(* Bug reports produced by GCatch's detectors.

   A report carries everything a user (or GFix) needs: the primitive, the
   blocking operations with their locations, the path combination, and
   the witness schedule found by the solver — mirroring the information
   the paper says GCatch provides for triaging (§5.2). *)

type op_kind =
  | Ksend
  | Krecv
  | Kclose
  | Kselect (* a whole select statement *)
  | Klock
  | Kunlock
  | Kwg_add
  | Kwg_done
  | Kwg_wait

let op_kind_str = function
  | Ksend -> "send"
  | Krecv -> "recv"
  | Kclose -> "close"
  | Kselect -> "select"
  | Klock -> "lock"
  | Kunlock -> "unlock"
  | Kwg_add -> "wg-add"
  | Kwg_done -> "wg-done"
  | Kwg_wait -> "wg-wait"

type blocked_op = {
  bo_func : string;         (* function whose body contains the op *)
  bo_pp : Ir.pp;
  bo_loc : Minigo.Loc.t;
  bo_kind : op_kind;
}

type bmoc_kind =
  | Chan_only      (* the paper's BMOC_C column *)
  | Chan_and_mutex (* the paper's BMOC_M column *)

type bmoc_bug = {
  channel : Alias.obj;                 (* buggy primitive *)
  chan_loc : Minigo.Loc.t option;      (* its creation site *)
  blocked : blocked_op list;           (* the suspicious group that blocks *)
  kind : bmoc_kind;
  scope_funcs : string list;
  witness : (Ir.pp * int) list;        (* solver model: pp -> order value *)
  combination_id : int;
}

type trad_kind =
  | Forget_unlock
  | Double_lock
  | Conflict_lock
  | Struct_field_race
  | Fatal_in_child

let trad_kind_str = function
  | Forget_unlock -> "missing unlock"
  | Double_lock -> "double lock"
  | Conflict_lock -> "conflicting lock order"
  | Struct_field_race -> "racy struct field"
  | Fatal_in_child -> "testing.Fatal in child goroutine"

type trad_bug = {
  tkind : trad_kind;
  tfunc : string;
  tloc : Minigo.Loc.t;
  tdetail : string;
}

type t = Bmoc of bmoc_bug | Trad of trad_bug

let bmoc_str (b : bmoc_bug) =
  let ops =
    String.concat "; "
      (List.map
         (fun o ->
           Printf.sprintf "%s at %s in %s" (op_kind_str o.bo_kind)
             (Minigo.Loc.to_string o.bo_loc) o.bo_func)
         b.blocked)
  in
  Printf.sprintf "BMOC(%s) on %s%s: blocked {%s}"
    (match b.kind with Chan_only -> "chan" | Chan_and_mutex -> "chan+mutex")
    (Alias.obj_str b.channel)
    (match b.chan_loc with
    | Some l -> " made at " ^ Minigo.Loc.to_string l
    | None -> "")
    ops

let trad_str (t : trad_bug) =
  Printf.sprintf "%s at %s in %s%s" (trad_kind_str t.tkind)
    (Minigo.Loc.to_string t.tloc) t.tfunc
    (if t.tdetail = "" then "" else " (" ^ t.tdetail ^ ")")

let to_string = function Bmoc b -> bmoc_str b | Trad t -> trad_str t
