(* gfix — detect BMOC bugs and print a patched program.

     gfix file.go                 # print the patched source
     gfix --validate file.go      # additionally run both versions under
                                  # many schedules and compare leaks *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run files validate =
  if files = [] then (
    prerr_endline "gfix: no input files";
    exit 2);
  let sources = List.map read_file files in
  match Gcatch.Driver.analyse ~name:"cli" sources with
  | exception Minigo.Parser.Parse_error (m, loc) ->
      Printf.eprintf "parse error: %s at %s\n" m (Minigo.Loc.to_string loc);
      exit 2
  | a ->
      let fixes = Gcatch.Gfix.fix_all a.source a.bmoc in
      let patched =
        List.fold_left
          (fun prog (_bug, outcome) ->
            match outcome with
            | Gcatch.Gfix.Fixed f ->
                Printf.eprintf "fixed: %s [%s, %d changed line(s)]\n"
                  f.description
                  (Gcatch.Gfix.strategy_str f.strategy)
                  f.changed_lines;
                f.patched
            | Gcatch.Gfix.Not_fixed r ->
                Printf.eprintf "not fixed: %s\n" r;
                prog)
          a.source fixes
      in
      (* Re-apply fixes against the accumulated program so multiple bugs
         in one file compose: re-analyse and fix until a fixpoint. *)
      let rec iterate prog rounds =
        if rounds = 0 then prog
        else
          let ir = Goir.Lower.lower_program prog in
          let a = Gcatch.Driver.analyse_ir prog ir in
          let progress = ref false in
          let prog' =
            List.fold_left
              (fun p (_b, o) ->
                match o with
                | Gcatch.Gfix.Fixed f ->
                    progress := true;
                    f.patched
                | Gcatch.Gfix.Not_fixed _ -> p)
              prog
              (Gcatch.Gfix.fix_all prog a.bmoc)
          in
          if !progress then iterate prog' (rounds - 1) else prog
      in
      let final = if List.length fixes > 1 then iterate a.source 8 else patched in
      print_string (Minigo.Pretty.program_str final);
      if validate && Minigo.Ast.find_func a.source "main" <> None then begin
        let seeds = 30 in
        let _, leaks_before, _, _ =
          Goruntime.Interp.run_schedules ~seeds a.source
        in
        let _, leaks_after, _, _ = Goruntime.Interp.run_schedules ~seeds final in
        Printf.eprintf "validation: %d/%d schedules leaked before, %d/%d after\n"
          leaks_before seeds leaks_after seeds
      end

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"MiniGo source files")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:"Run the original and patched programs under many schedules")

let cmd =
  Cmd.v
    (Cmd.info "gfix" ~doc:"Automatically patch BMOC bugs")
    Term.(const run $ files_arg $ validate_arg)

let () = exit (Cmd.eval cmd)
