(* gcatch — detect blocking misuse-of-channel and traditional concurrency
   bugs in MiniGo source files.

     gcatch file1.go [file2.go ...]
     gcatch --no-disentangle file.go      # the E5 ablation
     gcatch --stats file.go               # print detector statistics *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run files no_disentangle stats_flag nonblocking model_waitgroup =
  if files = [] then (
    prerr_endline "gcatch: no input files";
    exit 2);
  let sources = List.map read_file files in
  let cfg =
    {
      Gcatch.Bmoc.default_config with
      disentangle = not no_disentangle;
      path_cfg = { Gcatch.Pathenum.default_config with model_waitgroup };
    }
  in
  match Gcatch.Driver.analyse ~cfg ~name:"cli" sources with
  | exception Minigo.Parser.Parse_error (m, loc) ->
      Printf.eprintf "parse error: %s at %s\n" m (Minigo.Loc.to_string loc);
      exit 2
  | exception Minigo.Typecheck.Type_error (m, loc) ->
      Printf.eprintf "type error: %s at %s\n" m (Minigo.Loc.to_string loc);
      exit 2
  | a ->
      List.iter (fun b -> print_endline (Gcatch.Report.bmoc_str b)) a.bmoc;
      List.iter (fun t -> print_endline (Gcatch.Report.trad_str t)) a.trad;
      if nonblocking then
        List.iter
          (fun b -> print_endline (Gcatch.Nonblocking.nb_str b))
          (Gcatch.Nonblocking.detect a.ir);
      Printf.printf "%d BMOC bug(s), %d traditional bug(s) in %.2fs\n"
        (List.length a.bmoc) (List.length a.trad) a.elapsed_s;
      if stats_flag then begin
        let s = a.stats in
        Printf.printf
          "channels analysed: %d\ncombinations: %d\ngroups checked: %d\n\
           solver calls: %d\npath events: %d\n"
          s.channels_analysed s.combinations s.groups_checked s.solver_calls
          s.total_path_events
      end;
      if a.bmoc <> [] || a.trad <> [] then exit 1

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"MiniGo source files")

let no_disentangle_arg =
  Arg.(
    value & flag
    & info [ "no-disentangle" ]
        ~doc:"Disable the disentangling policy (whole-program analysis)")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print detector statistics")

let nonblocking_arg =
  Arg.(
    value & flag
    & info [ "nonblocking" ]
        ~doc:
          "Also run the non-blocking misuse-of-channel checkers \
           (send-on-closed, double close)")

let model_waitgroup_arg =
  Arg.(
    value & flag
    & info [ "model-waitgroup" ]
        ~doc:"Model WaitGroup Add/Done/Wait in the constraint system")

let cmd =
  Cmd.v
    (Cmd.info "gcatch" ~doc:"Statically detect Go concurrency bugs")
    Term.(
      const run $ files_arg $ no_disentangle_arg $ stats_arg $ nonblocking_arg
      $ model_waitgroup_arg)

let () = exit (Cmd.eval cmd)
