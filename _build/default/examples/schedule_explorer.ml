(* Explore interleavings of a racy program with the effects-based
   scheduler: how often does the Figure-1 race actually strand the child
   goroutine, and what does a leak report look like?

   This is the dynamic half of the reproduction: the paper validates
   patches by injecting random sleeps around buggy channel operations;
   we get the same schedule diversity from the seeded scheduler.

   Run with:  dune exec examples/schedule_explorer.exe *)

let racy =
  {gosrc|
func produce(out chan int, n int) {
	for i := range n {
		out <- i
	}
}

func main() {
	results := make(chan int)
	quit := make(chan bool)
	go produce(results, 3)
	go func() {
		quit <- true
	}()
	total := 0
	for {
		select {
		case v := <-results:
			total = total + v
		case <-quit:
			println("total", total)
			return
		}
	}
}
|gosrc}

let () =
  let prog =
    Minigo.Typecheck.check_program (Minigo.Parser.parse_string racy)
  in
  let seeds = 100 in
  let leak_count = ref 0 in
  let first_leak = ref None in
  for seed = 1 to seeds do
    let r = Goruntime.Interp.run ~seed prog in
    if r.leaked <> [] then begin
      incr leak_count;
      if !first_leak = None then first_leak := Some (seed, r)
    end
  done;
  Printf.printf "the producer leaks in %d/%d schedules\n" !leak_count seeds;
  match !first_leak with
  | Some (seed, r) ->
      Printf.printf "first leaking schedule: seed %d (%d steps)\n" seed r.steps;
      List.iter
        (fun (gid, name, reason, loc) ->
          Printf.printf "  goroutine %d (%s) stuck on %s at %s\n" gid name reason
            (Minigo.Loc.to_string loc))
        r.leaked;
      List.iter (fun line -> Printf.printf "  output: %s\n" line) r.output
  | None -> print_endline "no schedule manifested the leak; increase seeds"
