(* GCatch detector tests: BMOC detection on the paper's figure bugs and
   their fixed variants, disentangling, suspicious groups, feasibility
   filtering, and traditional checkers. *)

module R = Gcatch.Report

let analyse src = Gcatch.Driver.analyse_string ("package p\n" ^ src)

let bmoc_count src = List.length (analyse src).bmoc

let has_trad kind src =
  List.exists (fun (t : R.trad_bug) -> t.tkind = kind) (analyse src).trad

let trad_count kind src =
  List.length
    (List.filter (fun (t : R.trad_bug) -> t.tkind = kind) (analyse src).trad)

(* ---- BMOC: the figure bugs ---- *)

let fig1 =
  "func Exec(ctx context.Context, r string) (string, error) {\n\
   \toutDone := make(chan error)\n\
   \tgo func(a string) {\n\t\toutDone <- nil\n\t}(r)\n\
   \tselect {\n\
   \tcase err := <-outDone:\n\t\tif err != nil {\n\t\t\treturn \"\", err\n\t\t}\n\
   \tcase <-ctx.Done():\n\t\treturn \"\", ctx.Err()\n\
   \t}\n\
   \treturn \"ok\", nil\n\
   }"

let fig1_fixed =
  "func Exec(ctx context.Context, r string) (string, error) {\n\
   \toutDone := make(chan error, 1)\n\
   \tgo func(a string) {\n\t\toutDone <- nil\n\t}(r)\n\
   \tselect {\n\
   \tcase err := <-outDone:\n\t\tif err != nil {\n\t\t\treturn \"\", err\n\t\t}\n\
   \tcase <-ctx.Done():\n\t\treturn \"\", ctx.Err()\n\
   \t}\n\
   \treturn \"ok\", nil\n\
   }"

let test_figure1_detected () =
  let a = analyse fig1 in
  Alcotest.(check int) "one BMOC bug" 1 (List.length a.bmoc);
  let bug = List.hd a.bmoc in
  Alcotest.(check int) "one blocked op" 1 (List.length bug.blocked);
  let op = List.hd bug.blocked in
  Alcotest.(check string) "blocked op kind" "send" (R.op_kind_str op.bo_kind);
  Alcotest.(check bool) "blocked in the child" true
    (String.length op.bo_func > 4 && String.contains op.bo_func '$')

let test_figure1_fixed_clean () =
  Alcotest.(check int) "buffered variant clean" 0 (bmoc_count fig1_fixed)

let test_figure1_witness_sensible () =
  let a = analyse fig1 in
  let bug = List.hd a.bmoc in
  (* the witness schedule must place the blocked send last *)
  let blocked_pp = (List.hd bug.blocked).bo_pp in
  let blocked_order = List.assoc blocked_pp bug.witness in
  Alcotest.(check bool) "blocked op last in witness" true
    (List.for_all (fun (pp, o) -> pp = blocked_pp || o < blocked_order) bug.witness)

let test_figure3_detected () =
  let src =
    "func start(stop chan bool) {\n\t<-stop\n}\n\
     func TestD(t *testing.T) {\n\
     \tstop := make(chan bool)\n\
     \tgo start(stop)\n\
     \terr := errorf(\"x\")\n\
     \tif err != nil {\n\t\tt.Fatalf(\"fail\")\n\t}\n\
     \tstop <- true\n\
     }"
  in
  Alcotest.(check bool) "missing-interaction detected" true (bmoc_count src >= 1)

let test_figure4_detected () =
  let src =
    "func Inter(abort chan bool, n int) int {\n\
     \tsched := make(chan string)\n\
     \tgo func(k int) {\n\t\tfor i := range k {\n\t\t\tsched <- \"l\"\n\t\t}\n\t}(n)\n\
     \tselect {\n\tcase <-abort:\n\t\treturn 0\n\tcase <-sched:\n\t\treturn 1\n\t}\n\
     }"
  in
  Alcotest.(check bool) "loop-send detected" true (bmoc_count src >= 1)

let test_double_recv_detected () =
  let src =
    "func Twice() int {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n\ta := <-c\n\tb := <-c\n\treturn a + b\n}"
  in
  Alcotest.(check bool) "second recv blocks" true (bmoc_count src >= 1)

let test_matched_pair_clean () =
  let src =
    "func Ok() int {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n\treturn <-c\n}"
  in
  Alcotest.(check int) "rendezvous is clean" 0 (bmoc_count src)

let test_buffered_send_clean () =
  let src = "func Ok() {\n\tc := make(chan int, 2)\n\tc <- 1\n\tc <- 2\n}" in
  Alcotest.(check int) "buffered sends fit" 0 (bmoc_count src)

let test_buffered_overflow_detected () =
  let src = "func Bad() {\n\tc := make(chan int, 1)\n\tc <- 1\n\tc <- 2\n}" in
  Alcotest.(check bool) "third send overflows" true (bmoc_count src >= 1)

let test_close_unblocks_recv () =
  let src =
    "func Ok() int {\n\tc := make(chan int)\n\tgo func() {\n\t\tclose(c)\n\t}()\n\treturn <-c\n}"
  in
  Alcotest.(check int) "close satisfies recv" 0 (bmoc_count src)

let test_chan_mutex_deadlock () =
  let src =
    "type Box struct {\n\tmu sync.Mutex\n\tv int\n}\n\
     func Handoff(x int) int {\n\
     \tb := Box{v: x}\n\
     \tready := make(chan bool)\n\
     \tgo func(bb Box) {\n\t\tbb.mu.Lock()\n\t\tready <- true\n\t\tbb.mu.Unlock()\n\t}(b)\n\
     \tb.mu.Lock()\n\
     \t<-ready\n\
     \tb.mu.Unlock()\n\
     \treturn b.v\n\
     }"
  in
  let a = analyse src in
  Alcotest.(check bool) "chan+mutex deadlock found" true (List.length a.bmoc >= 1);
  Alcotest.(check bool) "classified as BMOC_M" true
    (List.exists (fun (b : R.bmoc_bug) -> b.kind = R.Chan_and_mutex) a.bmoc)

let test_no_mutex_no_deadlock () =
  let src =
    "type Box struct {\n\tmu sync.Mutex\n\tv int\n}\n\
     func Handoff(x int) int {\n\
     \tb := Box{v: x}\n\
     \tready := make(chan bool)\n\
     \tgo func(bb Box) {\n\t\tbb.mu.Lock()\n\t\tbb.mu.Unlock()\n\t\tready <- true\n\t}(b)\n\
     \tb.mu.Lock()\n\
     \tb.mu.Unlock()\n\
     \t<-ready\n\
     \treturn b.v\n\
     }"
  in
  Alcotest.(check int) "well-nested version clean" 0 (bmoc_count src)

let test_feasibility_filter () =
  (* both branches compare the same read-only parameter: the combination
     taking contradictory branches must be filtered *)
  let src =
    "func Ok(flag bool) int {\n\
     \tc := make(chan int, 1)\n\
     \tif flag == true {\n\t\tc <- 1\n\t}\n\
     \tif flag == true {\n\t\treturn <-c\n\t}\n\
     \treturn 0\n\
     }"
  in
  Alcotest.(check int) "conflicting conditions filtered" 0 (bmoc_count src)

let test_constant_condition_pruned () =
  let src =
    "func Ok() int {\n\tc := make(chan int, 1)\n\tif 1 > 2 {\n\t\treturn <-c\n\t}\n\treturn 0\n}"
  in
  Alcotest.(check int) "statically false branch pruned" 0 (bmoc_count src)

let test_disentangling_pset () =
  (* the running example: ctx.Done() must stay out of outDone's Pset *)
  let prog =
    Minigo.Typecheck.check_program
      (Minigo.Parser.parse_string ("package p\n" ^ fig1))
  in
  let ir = Goir.Lower.lower_program prog in
  let alias = Goanalysis.Alias.analyse ir in
  let cg = Goanalysis.Callgraph.build ~alias ir in
  let prims = Gcatch.Primitives.collect ir alias in
  let dis = Gcatch.Disentangle.build prims cg in
  List.iter
    (fun c ->
      match c with
      | Goanalysis.Alias.Achan _ ->
          let pset = Gcatch.Disentangle.pset dis c in
          Alcotest.(check int) "pset contains only outDone" 1 (List.length pset)
      | _ -> ())
    (Gcatch.Primitives.channels prims)

let test_ablation_still_finds_fig1 () =
  let cfg = { Gcatch.Bmoc.default_config with disentangle = false } in
  let src = "func main() {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n}" in
  let a = Gcatch.Driver.analyse ~cfg ~name:"abl" [ "package p\n" ^ src ] in
  Alcotest.(check bool) "whole-program mode detects too" true
    (List.length a.bmoc >= 1)

(* ---- traditional checkers ---- *)

let test_forget_unlock () =
  let src =
    "type Q struct {\n\tmu sync.Mutex\n\tn int\n}\n\
     func Upd(q Q, a int) error {\n\
     \tq.mu.Lock()\n\
     \tif a < 0 {\n\t\treturn errorf(\"neg\")\n\t}\n\
     \tq.n = q.n + a\n\
     \tq.mu.Unlock()\n\
     \treturn nil\n\
     }"
  in
  Alcotest.(check bool) "missing unlock" true (has_trad R.Forget_unlock src)

let test_balanced_lock_clean () =
  let src =
    "type Q struct {\n\tmu sync.Mutex\n\tn int\n}\n\
     func Upd(q Q, a int) error {\n\
     \tq.mu.Lock()\n\
     \tif a < 0 {\n\t\tq.mu.Unlock()\n\t\treturn errorf(\"neg\")\n\t}\n\
     \tq.n = q.n + a\n\
     \tq.mu.Unlock()\n\
     \treturn nil\n\
     }"
  in
  Alcotest.(check bool) "balanced locking clean" false (has_trad R.Forget_unlock src)

let test_double_lock_direct () =
  let src =
    "type C struct {\n\tmu sync.Mutex\n}\nfunc f(c C) {\n\tc.mu.Lock()\n\tc.mu.Lock()\n\tc.mu.Unlock()\n\tc.mu.Unlock()\n}"
  in
  Alcotest.(check bool) "direct double lock" true (has_trad R.Double_lock src)

let test_double_lock_via_call () =
  let src =
    "type C struct {\n\tmu sync.Mutex\n\tn int\n}\n\
     func flush(c C) {\n\tc.mu.Lock()\n\tc.n = 0\n\tc.mu.Unlock()\n}\n\
     func reload(c C) {\n\tc.mu.Lock()\n\tflush(c)\n\tc.mu.Unlock()\n}\n\
     func run(x int) {\n\tc := C{n: x}\n\treload(c)\n}"
  in
  Alcotest.(check bool) "double lock via callee" true (has_trad R.Double_lock src)

let test_conflicting_order () =
  let src =
    "type P struct {\n\tma sync.Mutex\n\tmb sync.Mutex\n\ta int\n\tb int\n}\n\
     func ab(p P) {\n\tp.ma.Lock()\n\tp.mb.Lock()\n\tp.a = 1\n\tp.mb.Unlock()\n\tp.ma.Unlock()\n}\n\
     func ba(p P) {\n\tp.mb.Lock()\n\tp.ma.Lock()\n\tp.b = 1\n\tp.ma.Unlock()\n\tp.mb.Unlock()\n}\n\
     func run(x int) {\n\tp := P{a: x, b: x}\n\tgo ab(p)\n\tgo ba(p)\n}"
  in
  Alcotest.(check bool) "AB/BA cycle" true (has_trad R.Conflict_lock src)

let test_consistent_order_clean () =
  let src =
    "type P struct {\n\tma sync.Mutex\n\tmb sync.Mutex\n\ta int\n}\n\
     func ab(p P) {\n\tp.ma.Lock()\n\tp.mb.Lock()\n\tp.a = 1\n\tp.mb.Unlock()\n\tp.ma.Unlock()\n}\n\
     func ab2(p P) {\n\tp.ma.Lock()\n\tp.mb.Lock()\n\tp.a = 2\n\tp.mb.Unlock()\n\tp.ma.Unlock()\n}\n\
     func run(x int) {\n\tp := P{a: x}\n\tgo ab(p)\n\tgo ab2(p)\n}"
  in
  Alcotest.(check bool) "consistent order clean" false (has_trad R.Conflict_lock src)

let test_field_race () =
  let src =
    "type M struct {\n\tmu sync.Mutex\n\thits int\n}\n\
     func bump(m M) {\n\tm.mu.Lock()\n\tm.hits = m.hits + 1\n\tm.mu.Unlock()\n}\n\
     func read(m M) int {\n\tm.mu.Lock()\n\tv := m.hits\n\tm.mu.Unlock()\n\treturn v\n}\n\
     func reset(m M) {\n\tm.hits = 0\n}\n\
     func run(x int) int {\n\tm := M{hits: x}\n\tgo bump(m)\n\tgo bump(m)\n\treset(m)\n\treturn read(m)\n}"
  in
  Alcotest.(check int) "one racy access" 1 (trad_count R.Struct_field_race src)

let test_fatal_in_child () =
  let src =
    "func TestX(t *testing.T) {\n\tc := make(chan bool, 1)\n\tgo func() {\n\t\tt.Fatal(\"boom\")\n\t\tc <- true\n\t}()\n\tsleep(1)\n}"
  in
  Alcotest.(check bool) "Fatal in child goroutine" true (has_trad R.Fatal_in_child src)

let test_fatal_in_parent_clean () =
  let src = "func TestX(t *testing.T) {\n\tt.Fatal(\"boom\")\n}" in
  Alcotest.(check bool) "Fatal in test goroutine is fine" false
    (has_trad R.Fatal_in_child src)

let tests =
  [
    Alcotest.test_case "figure 1 detected" `Quick test_figure1_detected;
    Alcotest.test_case "figure 1 fixed is clean" `Quick test_figure1_fixed_clean;
    Alcotest.test_case "witness schedule sensible" `Quick test_figure1_witness_sensible;
    Alcotest.test_case "figure 3 detected" `Quick test_figure3_detected;
    Alcotest.test_case "figure 4 detected" `Quick test_figure4_detected;
    Alcotest.test_case "double recv detected" `Quick test_double_recv_detected;
    Alcotest.test_case "matched pair clean" `Quick test_matched_pair_clean;
    Alcotest.test_case "buffered sends clean" `Quick test_buffered_send_clean;
    Alcotest.test_case "buffer overflow detected" `Quick test_buffered_overflow_detected;
    Alcotest.test_case "close unblocks recv" `Quick test_close_unblocks_recv;
    Alcotest.test_case "chan+mutex deadlock" `Quick test_chan_mutex_deadlock;
    Alcotest.test_case "well-nested lock clean" `Quick test_no_mutex_no_deadlock;
    Alcotest.test_case "feasibility filter" `Quick test_feasibility_filter;
    Alcotest.test_case "constant condition pruned" `Quick test_constant_condition_pruned;
    Alcotest.test_case "disentangling keeps ctx out of pset" `Quick test_disentangling_pset;
    Alcotest.test_case "ablation mode still detects" `Quick test_ablation_still_finds_fig1;
    Alcotest.test_case "forget unlock" `Quick test_forget_unlock;
    Alcotest.test_case "balanced lock clean" `Quick test_balanced_lock_clean;
    Alcotest.test_case "double lock direct" `Quick test_double_lock_direct;
    Alcotest.test_case "double lock via call" `Quick test_double_lock_via_call;
    Alcotest.test_case "conflicting lock order" `Quick test_conflicting_order;
    Alcotest.test_case "consistent order clean" `Quick test_consistent_order_clean;
    Alcotest.test_case "field race" `Quick test_field_race;
    Alcotest.test_case "Fatal in child" `Quick test_fatal_in_child;
    Alcotest.test_case "Fatal in parent clean" `Quick test_fatal_in_parent_clean;
  ]
