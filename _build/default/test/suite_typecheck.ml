(* Type-checker tests: acceptance, rejection, and the range-loop
   normalisation rewrite. *)

module A = Minigo.Ast

let check src = Minigo.Typecheck.check_program (Minigo.Parser.parse_string ("package p\n" ^ src))

let accepts name src () =
  match check src with
  | _ -> ()
  | exception Minigo.Typecheck.Type_error (m, _) ->
      Alcotest.failf "%s: unexpected type error: %s" name m

let rejects name src () =
  match check src with
  | _ -> Alcotest.failf "%s: expected a type error" name
  | exception Minigo.Typecheck.Type_error _ -> ()

let test_range_chan_rewrite () =
  let prog = check "func f(c chan int) int {\n\ttotal := 0\n\tfor v := range c {\n\t\ttotal = total + v\n\t}\n\treturn total\n}" in
  let fd = Option.get (A.find_func prog "f") in
  let found = ref false in
  A.iter_stmts
    (fun s ->
      match s.s with
      | A.For (A.ForRangeChan (Some "v", _), _) -> found := true
      | _ -> ())
    fd.body;
  Alcotest.(check bool) "rewritten to channel range" true !found

let test_range_int_stays () =
  let prog = check "func f(n int) int {\n\ts := 0\n\tfor i := range n {\n\t\ts = s + i\n\t}\n\treturn s\n}" in
  let fd = Option.get (A.find_func prog "f") in
  let found = ref false in
  A.iter_stmts
    (fun s ->
      match s.s with
      | A.For (A.ForRangeInt ("i", _), _) -> found := true
      | _ -> ())
    fd.body;
  Alcotest.(check bool) "still an int range" true !found

let tests =
  [
    Alcotest.test_case "simple function" `Quick
      (accepts "simple" "func f(x int) int {\n\treturn x + 1\n}");
    Alcotest.test_case "channel ops" `Quick
      (accepts "chan" "func f() int {\n\tc := make(chan int, 1)\n\tc <- 2\n\treturn <-c\n}");
    Alcotest.test_case "select" `Quick
      (accepts "select"
         "func f(a chan int, b chan bool) int {\n\tselect {\n\tcase v := <-a:\n\t\treturn v\n\tcase b <- true:\n\t\treturn 0\n\t}\n\treturn 1\n}");
    Alcotest.test_case "mutex and waitgroup" `Quick
      (accepts "sync"
         "func f() {\n\tvar mu sync.Mutex\n\tvar wg sync.WaitGroup\n\tmu.Lock()\n\tmu.Unlock()\n\twg.Add(1)\n\twg.Done()\n\twg.Wait()\n}");
    Alcotest.test_case "context methods" `Quick
      (accepts "ctx"
         "func f(ctx context.Context) error {\n\tselect {\n\tcase <-ctx.Done():\n\t\treturn ctx.Err()\n\t}\n\treturn nil\n}");
    Alcotest.test_case "testing methods" `Quick
      (accepts "testing" "func TestX(t *testing.T) {\n\tt.Fatalf(\"boom\")\n}");
    Alcotest.test_case "struct field access" `Quick
      (accepts "struct"
         "type S struct {\n\tn int\n}\nfunc f(s S) int {\n\ts.n = 3\n\treturn s.n\n}");
    Alcotest.test_case "closures" `Quick
      (accepts "closure"
         "func f() int {\n\tadd := func(a int, b int) int {\n\t\treturn a + b\n\t}\n\treturn add(1, 2)\n}");
    Alcotest.test_case "multi-return" `Quick
      (accepts "multi" "func two() (int, string) {\n\treturn 1, \"a\"\n}\nfunc f() int {\n\tn, s := two()\n\t_ = s\n\treturn n\n}");
    Alcotest.test_case "background and cancel" `Quick
      (accepts "cancelctx" "func f() {\n\tctx := background()\n\tcancel(ctx)\n}");
    (* rejections *)
    Alcotest.test_case "unbound variable" `Quick
      (rejects "unbound" "func f() int {\n\treturn zzz\n}");
    Alcotest.test_case "send wrong type" `Quick
      (rejects "send-type" "func f() {\n\tc := make(chan int)\n\tc <- \"str\"\n}");
    Alcotest.test_case "recv from non-channel" `Quick
      (rejects "recv-nonchan" "func f(x int) int {\n\treturn <-x\n}");
    Alcotest.test_case "if needs bool" `Quick
      (rejects "if-int" "func f(x int) {\n\tif x {\n\t\tprintln(1)\n\t}\n}");
    Alcotest.test_case "wrong arity" `Quick
      (rejects "arity" "func g(x int) int {\n\treturn x\n}\nfunc f() int {\n\treturn g(1, 2)\n}");
    Alcotest.test_case "return count mismatch" `Quick
      (rejects "returns" "func f() (int, int) {\n\treturn 1\n}");
    Alcotest.test_case "unknown field" `Quick
      (rejects "field" "type S struct {\n\tn int\n}\nfunc f(s S) int {\n\treturn s.m\n}");
    Alcotest.test_case "unknown method" `Quick
      (rejects "method" "func f(x int) {\n\tvar mu sync.Mutex\n\tmu.Frob()\n\t_ = x\n}");
    Alcotest.test_case "close non-channel" `Quick
      (rejects "close" "func f(x int) {\n\tclose(x)\n}");
    Alcotest.test_case "range over string" `Quick
      (rejects "range" "func f(s string) {\n\tfor v := range s {\n\t\tprintln(v)\n\t}\n}");
    (* normalisation *)
    Alcotest.test_case "range-over-channel rewrite" `Quick test_range_chan_rewrite;
    Alcotest.test_case "range-over-int preserved" `Quick test_range_int_stays;
  ]
