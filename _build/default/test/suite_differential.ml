(* Differential testing: the static detector against the runtime.

   For a family of generated producer/consumer programs with known
   send/receive balances, the two oracles must agree:

   - if the balance is broken (more sends than drains on an unbuffered or
     undersized channel, or receives that can never be satisfied), GCatch
     must report a BMOC bug AND the runtime must leak a goroutine on
     every schedule;
   - if the balance holds, GCatch must stay silent AND the runtime must
     never leak over many schedules.

   This is the strongest evidence the constraint system (§3.4) encodes
   channel semantics faithfully: both sides are independent
   implementations of the same semantics. *)

let program ~cap ~sends ~recvs =
  Printf.sprintf
    "package p\n\
     func main() {\n\
     \tc := make(chan int, %d)\n\
     \tgo func() {\n\
     %s\tdone := 0\n\
     \t_ = done\n\
     \t}()\n\
     %s}\n"
    cap
    (String.concat ""
       (List.init sends (fun i -> Printf.sprintf "\t\tc <- %d\n" i)))
    (String.concat "" (List.init recvs (fun _ -> "\t<-c\n")))

let static_buggy src =
  let a = Gcatch.Driver.analyse ~name:"diff" [ src ] in
  a.bmoc <> []

let dynamic_leaky src =
  let prog = Minigo.Typecheck.check_program (Minigo.Parser.parse_string src) in
  let leaks = ref 0 in
  for seed = 1 to 15 do
    let r = Goruntime.Interp.run ~seed prog in
    if r.leaked <> [] then incr leaks
  done;
  (* these straight-line programs have deterministic blocking behaviour:
     either every schedule leaks or none does *)
  if !leaks = 0 then false
  else if !leaks = 15 then true
  else Alcotest.failf "schedule-dependent leak (%d/15) in:\n%s" !leaks src

(* the balance analysis for this program family: sends block iff there
   are more sends than receives + buffer space; receives block iff there
   are more receives than sends *)
let expected_buggy ~cap ~sends ~recvs =
  sends > recvs + cap || recvs > sends

let test_case_for ~cap ~sends ~recvs () =
  let src = program ~cap ~sends ~recvs in
  let expected = expected_buggy ~cap ~sends ~recvs in
  let got_static = static_buggy src in
  let got_dynamic = dynamic_leaky src in
  Alcotest.(check bool)
    (Printf.sprintf "static verdict (cap=%d sends=%d recvs=%d)" cap sends recvs)
    expected got_static;
  Alcotest.(check bool)
    (Printf.sprintf "dynamic verdict (cap=%d sends=%d recvs=%d)" cap sends
       recvs)
    expected got_dynamic

(* enumerate the whole family within the detector's loop-free regime *)
let grid_tests =
  List.concat_map
    (fun cap ->
      List.concat_map
        (fun sends ->
          List.filter_map
            (fun recvs ->
              if sends = 0 && recvs = 0 then None
              else
                Some
                  (Alcotest.test_case
                     (Printf.sprintf "cap=%d sends=%d recvs=%d" cap sends recvs)
                     `Quick
                     (test_case_for ~cap ~sends ~recvs)))
            [ 0; 1; 2; 3 ])
        [ 0; 1; 2; 3 ])
    [ 0; 1; 2 ]

(* property: random (cap, sends, recvs) triples agree between the two
   oracles and the closed-form expectation *)
let prop_agreement =
  QCheck.Test.make ~name:"static = dynamic = closed form" ~count:30
    QCheck.(triple (int_range 0 2) (int_range 0 4) (int_range 0 4))
    (fun (cap, sends, recvs) ->
      QCheck.assume (sends + recvs > 0);
      let src = program ~cap ~sends ~recvs in
      let expected = expected_buggy ~cap ~sends ~recvs in
      static_buggy src = expected && dynamic_leaky src = expected)

let tests = grid_tests @ [ QCheck_alcotest.to_alcotest prop_agreement ]
