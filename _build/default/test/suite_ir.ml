(* IR lowering tests: CFG shape, sync instructions, lambda lifting, defer
   materialisation, and contiguous block ids (a regression test for the
   bid/index mismatch that once broke path enumeration). *)

module Ir = Goir.Ir
module A = Minigo.Ast

let lower src =
  Goir.Lower.lower_program
    (Minigo.Typecheck.check_program
       (Minigo.Parser.parse_string ("package p\n" ^ src)))

let func ir name =
  match Ir.find_func ir name with
  | Some f -> f
  | None -> Alcotest.failf "function %s not lowered" name

let inst_kinds (f : Ir.func) =
  Ir.fold_insts
    (fun acc (i : Ir.inst) ->
      (match i.idesc with
      | Imake_chan _ -> "make"
      | Isend _ -> "send"
      | Irecv _ -> "recv"
      | Iclose _ -> "close"
      | Ilock _ -> "lock"
      | Iunlock _ -> "unlock"
      | Igo _ -> "go"
      | Icall _ -> "call"
      | Itesting_fatal _ -> "fatal"
      | _ -> "other")
      :: acc)
    [] f
  |> List.rev

let test_block_ids_contiguous () =
  let ir =
    lower
      "func f(x int) int {\n\tif x > 0 {\n\t\treturn 1\n\t}\n\tfor i := range x {\n\t\tprintln(i)\n\t}\n\treturn 0\n}"
  in
  let f = func ir "f" in
  Array.iteri
    (fun i (b : Ir.block) -> Alcotest.(check int) "bid = index" i b.bid)
    f.blocks;
  (* every successor must be a valid block id *)
  Array.iter
    (fun b ->
      List.iter
        (fun s ->
          Alcotest.(check bool) "successor in range" true
            (s >= 0 && s < Array.length f.blocks))
        (Ir.successors b))
    f.blocks

let test_sync_ops_lowered () =
  let ir =
    lower
      "func f() {\n\tc := make(chan int)\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tc <- 1\n\t<-c\n\tclose(c)\n\tmu.Unlock()\n}"
  in
  let kinds = List.filter (fun k -> k <> "other") (inst_kinds (func ir "f")) in
  Alcotest.(check (list string)) "sync sequence"
    [ "make"; "lock"; "send"; "recv"; "close"; "unlock" ]
    kinds

let test_goroutine_lifted () =
  let ir = lower "func f() {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n\t<-c\n}" in
  let lifted = func ir "f$fn1" in
  Alcotest.(check bool) "marked goroutine body" true lifted.is_goroutine_body;
  Alcotest.(check (option string)) "parent recorded" (Some "f") lifted.parent;
  (* the capture of c becomes a parameter *)
  Alcotest.(check int) "captured channel param" 1 (List.length lifted.params)

let test_nested_lift () =
  let ir =
    lower
      "func f() {\n\tc := make(chan int, 2)\n\tgo func() {\n\t\tgo func() {\n\t\t\tc <- 2\n\t\t}()\n\t\tc <- 1\n\t}()\n\t<-c\n\t<-c\n}"
  in
  let names =
    List.map (fun (f : Ir.func) -> f.name) (Ir.funcs_list ir)
    |> List.filter (fun n -> String.contains n '$')
  in
  Alcotest.(check int) "two lifted functions" 2 (List.length names)

let test_defer_materialised_at_returns () =
  let ir =
    lower
      "func f(x int) int {\n\tc := make(chan bool, 1)\n\tdefer close(c)\n\tif x > 0 {\n\t\treturn 1\n\t}\n\treturn 0\n}"
  in
  let f = func ir "f" in
  let closes =
    Ir.fold_insts
      (fun n (i : Ir.inst) ->
        match i.idesc with Iclose _ -> if i.ideferred then n + 1 else n | _ -> n)
      0 f
  in
  Alcotest.(check int) "one deferred close per return" 2 closes

let test_fatal_terminates_after_defers () =
  let ir =
    lower
      "func TestX(t *testing.T) {\n\tc := make(chan bool, 1)\n\tdefer c <- true\n\tt.Fatal(\"x\")\n}"
  in
  let f = func ir "TestX" in
  (* the Fatal block must end in Texit and contain the deferred send *)
  let found = ref false in
  Array.iter
    (fun (b : Ir.block) ->
      if b.term = Ir.Texit then begin
        let has_fatal =
          List.exists
            (fun (i : Ir.inst) ->
              match i.idesc with Itesting_fatal _ -> true | _ -> false)
            b.insts
        in
        let has_deferred_send =
          List.exists
            (fun (i : Ir.inst) ->
              match i.idesc with Isend _ -> i.ideferred | _ -> false)
            b.insts
        in
        if has_fatal && has_deferred_send then found := true
      end)
    f.blocks;
  Alcotest.(check bool) "defer before goroutine exit" true !found

let test_select_terminator () =
  let ir =
    lower
      "func f(a chan int, b chan int) {\n\tselect {\n\tcase <-a:\n\t\tprintln(1)\n\tcase b <- 2:\n\t\tprintln(2)\n\tdefault:\n\t\tprintln(3)\n\t}\n}"
  in
  let f = func ir "f" in
  let sel =
    Array.to_list f.blocks
    |> List.find_map (fun (b : Ir.block) ->
           match b.term with
           | Tselect (arms, dflt, _) -> Some (List.length arms, dflt <> None)
           | _ -> None)
  in
  Alcotest.(check (option (pair int bool))) "select arms and default"
    (Some (2, true)) sel

let test_mutex_decl_is_creation_site () =
  let ir = lower "func f() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tmu.Unlock()\n}" in
  let f = func ir "f" in
  let makes =
    Ir.fold_insts
      (fun n (i : Ir.inst) ->
        match i.idesc with Imake_struct _ -> n + 1 | _ -> n)
      0 f
  in
  Alcotest.(check int) "zero-value mutex allocates" 1 makes

let test_ctx_done_is_field_load () =
  let ir =
    lower
      "func f(ctx context.Context) {\n\tselect {\n\tcase <-ctx.Done():\n\t\tprintln(1)\n\t}\n}"
  in
  let f = func ir "f" in
  let uses_done_field =
    Array.exists
      (fun (b : Ir.block) ->
        match b.term with
        | Tselect (arms, _, _) ->
            List.exists
              (fun (a : Ir.select_arm) ->
                match a.arm_op with
                | Arm_recv (Pfield (_, "$done"), _) -> true
                | _ -> false)
              arms
        | _ -> false)
      f.blocks
  in
  Alcotest.(check bool) "ctx.Done() lowered to $done field" true uses_done_field

let test_cancel_is_close () =
  let ir = lower "func f() {\n\tctx := background()\n\tcancel(ctx)\n}" in
  let f = func ir "f" in
  let closes_done =
    Ir.fold_insts
      (fun acc (i : Ir.inst) ->
        acc
        || match i.idesc with Iclose (Pfield (_, "$done")) -> true | _ -> false)
      false f
  in
  Alcotest.(check bool) "cancel lowered to close($done)" true closes_done

let test_alpha_renaming () =
  let ir =
    lower
      "func f() int {\n\tx := 1\n\tif x > 0 {\n\t\tx := 2\n\t\tprintln(x)\n\t}\n\treturn x\n}"
  in
  let f = func ir "f" in
  (* the shadowing definition must get a fresh name *)
  let assigned =
    Ir.fold_insts
      (fun acc (i : Ir.inst) ->
        match i.idesc with Iassign (v, _) -> v :: acc | _ -> acc)
      [] f
  in
  let distinct = List.sort_uniq String.compare assigned in
  Alcotest.(check bool) "shadowed x renamed" true (List.length distinct >= 2)

let test_pps_unique () =
  let ir =
    lower
      "func f() {\n\tc := make(chan int, 1)\n\tc <- 1\n\t<-c\n}\nfunc g() {\n\td := make(chan int, 1)\n\td <- 2\n\t<-d\n}"
  in
  let pps =
    List.concat_map
      (fun f -> Ir.fold_insts (fun acc (i : Ir.inst) -> i.ipp :: acc) [] f)
      (Ir.funcs_list ir)
  in
  Alcotest.(check int) "program points unique" (List.length pps)
    (List.length (List.sort_uniq compare pps))

let tests =
  [
    Alcotest.test_case "block ids contiguous" `Quick test_block_ids_contiguous;
    Alcotest.test_case "sync ops lowered" `Quick test_sync_ops_lowered;
    Alcotest.test_case "goroutine lifted with captures" `Quick test_goroutine_lifted;
    Alcotest.test_case "nested lifting" `Quick test_nested_lift;
    Alcotest.test_case "defer at every return" `Quick test_defer_materialised_at_returns;
    Alcotest.test_case "Fatal runs defers then exits" `Quick test_fatal_terminates_after_defers;
    Alcotest.test_case "select terminator" `Quick test_select_terminator;
    Alcotest.test_case "mutex declaration allocates" `Quick test_mutex_decl_is_creation_site;
    Alcotest.test_case "ctx.Done is $done load" `Quick test_ctx_done_is_field_load;
    Alcotest.test_case "cancel closes $done" `Quick test_cancel_is_close;
    Alcotest.test_case "alpha renaming" `Quick test_alpha_renaming;
    Alcotest.test_case "unique program points" `Quick test_pps_unique;
  ]
