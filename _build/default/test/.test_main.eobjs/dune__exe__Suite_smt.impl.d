test/suite_smt.ml: Alcotest Array Fun Gen Gosmt List Printf QCheck QCheck_alcotest
