test/suite_lexer.ml: Alcotest Char Gen List Minigo QCheck QCheck_alcotest String
