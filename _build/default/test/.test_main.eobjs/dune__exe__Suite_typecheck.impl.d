test/suite_typecheck.ml: Alcotest Minigo Option
