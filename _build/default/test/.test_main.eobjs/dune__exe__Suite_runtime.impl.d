test/suite_runtime.ml: Alcotest Goruntime List Minigo Printf QCheck QCheck_alcotest String
