test/suite_pathenum.ml: Alcotest Gcatch Goanalysis Goir Hashtbl List Printf String
