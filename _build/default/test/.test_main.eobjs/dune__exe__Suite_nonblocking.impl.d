test/suite_nonblocking.ml: Alcotest Gcatch Goruntime List Minigo
