test/suite_gfix.ml: Alcotest Gcatch Gen Goruntime List Minigo Option Printf QCheck QCheck_alcotest String
