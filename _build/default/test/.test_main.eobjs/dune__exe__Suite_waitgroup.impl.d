test/suite_waitgroup.ml: Alcotest Gcatch Goruntime List Minigo
