test/suite_cond.ml: Alcotest Array Gcatch Goir Goruntime List Minigo Option
