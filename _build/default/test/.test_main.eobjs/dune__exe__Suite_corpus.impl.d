test/suite_corpus.ml: Alcotest Gcatch Gocorpus Goreport Goruntime List Minigo Option Printf
