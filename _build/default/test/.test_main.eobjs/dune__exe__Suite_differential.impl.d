test/suite_differential.ml: Alcotest Gcatch Goruntime List Minigo Printf QCheck QCheck_alcotest String
