test/suite_parser.ml: Alcotest Gocorpus List Minigo Option String
