test/suite_ir.ml: Alcotest Array Goir List Minigo String
