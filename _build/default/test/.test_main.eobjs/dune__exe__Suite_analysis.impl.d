test/suite_analysis.ml: Alcotest Goanalysis Goir Hashtbl List Minigo Option
