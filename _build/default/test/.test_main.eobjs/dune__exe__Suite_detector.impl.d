test/suite_detector.ml: Alcotest Gcatch Goanalysis Goir List Minigo String
