(* Non-blocking misuse-of-channel checkers (the paper's §6 extension):
   send-on-closed panics and double closes, cross-checked against the
   runtime, which actually panics on both. *)

module NB = Gcatch.Nonblocking

let detect src =
  let _, ir = Gcatch.Driver.compile_sources ~name:"nb" [ "package p\n" ^ src ] in
  NB.detect ir

let kinds src =
  List.sort_uniq compare (List.map (fun (b : NB.nb_bug) -> b.nb_kind) (detect src))

let test_send_after_close_same_goroutine () =
  let src = "func f() {\n\tc := make(chan int, 1)\n\tclose(c)\n\tc <- 1\n}" in
  Alcotest.(check bool) "flagged" true (List.mem NB.Send_on_closed (kinds src))

let test_send_before_close_clean () =
  let src = "func f() {\n\tc := make(chan int, 1)\n\tc <- 1\n\tclose(c)\n}" in
  Alcotest.(check bool) "program order protects" false
    (List.mem NB.Send_on_closed (kinds src))

let test_racy_close_flagged () =
  (* closer and sender race: the close *can* land first *)
  let src =
    "func f() {\n\tc := make(chan int, 1)\n\tgo func() {\n\t\tclose(c)\n\t}()\n\tc <- 1\n}"
  in
  Alcotest.(check bool) "racy close flagged" true
    (List.mem NB.Send_on_closed (kinds src))

let test_close_ordered_by_rendezvous_not_refined () =
  (* the done-channel handshake orders the close after the send in every
     real execution, but the order-only constraint system (the paper's §6
     sketch) does not model rendezvous, so this is a known FP source *)
  let src =
    "func f() {\n\tc := make(chan int)\n\tdone := make(chan bool)\n\tgo func() {\n\t\t<-done\n\t\tclose(c)\n\t}()\n\tc <- 1\n\tdone <- true\n}"
  in
  (* just check the checker terminates and reports something sensible *)
  ignore (kinds src)

let test_double_close_flagged () =
  let src =
    "func f(x bool) {\n\tc := make(chan int)\n\tgo func() {\n\t\tclose(c)\n\t}()\n\tclose(c)\n}"
  in
  Alcotest.(check bool) "double close flagged" true
    (List.mem NB.Double_close (kinds src))

let test_single_close_clean () =
  let src = "func f() {\n\tc := make(chan int, 1)\n\tc <- 1\n\tclose(c)\n\t<-c\n}" in
  Alcotest.(check bool) "single close clean" false
    (List.mem NB.Double_close (kinds src))

let test_no_close_no_reports () =
  let src =
    "func f() {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n\t<-c\n}"
  in
  Alcotest.(check int) "no close, nothing to flag" 0 (List.length (detect src))

(* cross-check: everything the checker flags on these shapes really
   panics on some schedule of the runtime *)
let test_dynamic_crosscheck () =
  let src =
    "func main() {\n\tc := make(chan int, 1)\n\tgo func() {\n\t\tclose(c)\n\t}()\n\tc <- 1\n}"
  in
  let static = kinds src in
  Alcotest.(check bool) "statically flagged" true
    (List.mem NB.Send_on_closed static);
  let prog =
    Minigo.Typecheck.check_program
      (Minigo.Parser.parse_string ("package p\n" ^ src))
  in
  let panicked = ref false in
  for seed = 1 to 50 do
    let r = Goruntime.Interp.run ~seed prog in
    if r.panics <> [] then panicked := true
  done;
  Alcotest.(check bool) "panics on some schedule" true !panicked

let tests =
  [
    Alcotest.test_case "send after close (sequential)" `Quick
      test_send_after_close_same_goroutine;
    Alcotest.test_case "send before close is clean" `Quick
      test_send_before_close_clean;
    Alcotest.test_case "racy close flagged" `Quick test_racy_close_flagged;
    Alcotest.test_case "handshake shape terminates" `Quick
      test_close_ordered_by_rendezvous_not_refined;
    Alcotest.test_case "double close flagged" `Quick test_double_close_flagged;
    Alcotest.test_case "single close clean" `Quick test_single_close_clean;
    Alcotest.test_case "no close, no reports" `Quick test_no_close_no_reports;
    Alcotest.test_case "dynamic cross-check" `Quick test_dynamic_crosscheck;
  ]
