(* Parser tests: every construct of MiniGo, plus pretty-printer round
   trips (parse . print . parse is a fixpoint on rendered text). *)

module A = Minigo.Ast

let parse src = Minigo.Parser.parse_string ~file:"t.go" src

let parse_fn src =
  match parse ("package p\n" ^ src) with
  | [ file ] -> (
      match A.funcs_of_file file with
      | fd :: _ -> fd
      | [] -> Alcotest.fail "no function parsed")
  | _ -> Alcotest.fail "expected one file"

let body_kinds (fd : A.func_decl) =
  List.map
    (fun (s : A.stmt) ->
      match s.s with
      | A.Decl _ -> "decl"
      | A.Define _ -> "define"
      | A.Assign _ -> "assign"
      | A.ExprStmt _ -> "expr"
      | A.Send _ -> "send"
      | A.CloseStmt _ -> "close"
      | A.Go _ -> "go"
      | A.GoFuncLit _ -> "gofunc"
      | A.If _ -> "if"
      | A.For _ -> "for"
      | A.Select _ -> "select"
      | A.Return _ -> "return"
      | A.DeferStmt _ -> "defer"
      | A.Break -> "break"
      | A.Continue -> "continue"
      | A.Panic _ -> "panic"
      | A.BlockStmt _ -> "block"
      | A.IncDec _ -> "incdec")
    fd.body

let test_empty_func () =
  let fd = parse_fn "func f() {}" in
  Alcotest.(check string) "name" "f" fd.fname;
  Alcotest.(check int) "no params" 0 (List.length fd.params);
  Alcotest.(check int) "empty body" 0 (List.length fd.body)

let test_params_and_results () =
  let fd = parse_fn "func g(x int, s string) (int, error) { return x, nil }" in
  Alcotest.(check int) "two params" 2 (List.length fd.params);
  Alcotest.(check int) "two results" 2 (List.length fd.results);
  Alcotest.(check string) "param name" "x" (List.nth fd.params 0).pname

let test_make_chan () =
  let fd = parse_fn "func f() {\n\tc := make(chan int)\n\td := make(chan string, 4)\n\t_ = c\n\t_ = d\n}" in
  match (List.nth fd.body 0).s with
  | A.Define ([ "c" ], { e = A.MakeChan (A.Tint, None); _ }) -> (
      match (List.nth fd.body 1).s with
      | A.Define ([ "d" ], { e = A.MakeChan (A.Tstring, Some { e = A.Int 4; _ }); _ })
        ->
          ()
      | _ -> Alcotest.fail "buffered make")
  | _ -> Alcotest.fail "unbuffered make"

let test_send_recv () =
  let fd = parse_fn "func f(c chan int) {\n\tc <- 1\n\tx := <-c\n\t<-c\n\t_ = x\n}" in
  Alcotest.(check (list string)) "kinds" [ "send"; "define"; "expr"; "assign" ]
    (body_kinds fd)

let test_select () =
  let fd =
    parse_fn
      "func f(a chan int, b chan int) int {\n\
       \tselect {\n\
       \tcase v := <-a:\n\
       \t\treturn v\n\
       \tcase b <- 1:\n\
       \t\treturn 0\n\
       \tdefault:\n\
       \t\treturn -1\n\
       \t}\n\
       \treturn -2\n\
       }"
  in
  match (List.hd fd.body).s with
  | A.Select (cases, Some dflt) ->
      Alcotest.(check int) "two cases" 2 (List.length cases);
      Alcotest.(check int) "default body" 1 (List.length dflt);
      (match List.nth cases 0 with
      | A.CaseRecv (Some "v", false, _, _) -> ()
      | _ -> Alcotest.fail "recv case binding");
      (match List.nth cases 1 with
      | A.CaseSend (_, { e = A.Int 1; _ }, _) -> ()
      | _ -> Alcotest.fail "send case")
  | _ -> Alcotest.fail "expected select"

let test_select_recv_ok () =
  let fd =
    parse_fn
      "func f(a chan int) {\n\tselect {\n\tcase v, ok := <-a:\n\t\t_ = v\n\t\t_ = ok\n\t}\n}"
  in
  match (List.hd fd.body).s with
  | A.Select ([ A.CaseRecv (Some "v", true, _, _) ], None) -> ()
  | _ -> Alcotest.fail "expected v, ok := <-a case"

let test_go_literal () =
  let fd = parse_fn "func f() {\n\tgo func(x int) {\n\t\tprintln(x)\n\t}(3)\n}" in
  match (List.hd fd.body).s with
  | A.GoFuncLit ([ { pname = "x"; ptyp = A.Tint } ], [ _ ], [ { e = A.Int 3; _ } ]) ->
      ()
  | _ -> Alcotest.fail "expected goroutine literal"

let test_go_named () =
  let fd = parse_fn "func f() {\n\tgo g(1, 2)\n}" in
  match (List.hd fd.body).s with
  | A.Go { callee = A.Fname "g"; args = [ _; _ ] } -> ()
  | _ -> Alcotest.fail "expected go g(1, 2)"

let test_defer_forms () =
  let fd =
    parse_fn
      "func f(c chan int) {\n\
       \tdefer close(c)\n\
       \tdefer c <- 1\n\
       \tdefer g()\n\
       \tdefer func() {\n\t\tprintln(1)\n\t}()\n\
       }"
  in
  let forms =
    List.map
      (fun (s : A.stmt) ->
        match s.s with
        | A.DeferStmt (A.DeferClose _) -> "close"
        | A.DeferStmt (A.DeferSend _) -> "send"
        | A.DeferStmt (A.DeferCall _) -> "call"
        | A.DeferStmt (A.DeferFuncLit _) -> "lit"
        | _ -> "?")
      fd.body
  in
  Alcotest.(check (list string)) "defer forms" [ "close"; "send"; "call"; "lit" ] forms

let test_for_forms () =
  let fd =
    parse_fn
      "func f(n int, c chan int) {\n\
       \tfor {\n\t\tbreak\n\t}\n\
       \tfor n > 0 {\n\t\tn--\n\t}\n\
       \tfor i := 0; i < n; i++ {\n\t\tprintln(i)\n\t}\n\
       \tfor j := range n {\n\t\tprintln(j)\n\t}\n\
       \tfor v := range c {\n\t\tprintln(v)\n\t}\n\
       }"
  in
  let forms =
    List.map
      (fun (s : A.stmt) ->
        match s.s with
        | A.For (A.ForEver, _) -> "ever"
        | A.For (A.ForCond _, _) -> "cond"
        | A.For (A.ForClassic _, _) -> "classic"
        | A.For (A.ForRangeInt _, _) -> "rangeint"
        | A.For (A.ForRangeChan _, _) -> "rangechan"
        | _ -> "?")
      fd.body
  in
  (* before type checking, `for x := range e` parses as rangeint *)
  Alcotest.(check (list string)) "for forms"
    [ "ever"; "cond"; "classic"; "rangeint"; "rangeint" ]
    forms

let test_if_else_chain () =
  let fd =
    parse_fn
      "func f(x int) int {\n\
       \tif x > 2 {\n\t\treturn 2\n\t} else if x > 1 {\n\t\treturn 1\n\t} else {\n\
       \t\treturn 0\n\t}\n\
       }"
  in
  match (List.hd fd.body).s with
  | A.If (_, _, Some [ { s = A.If (_, _, Some _); _ } ]) -> ()
  | _ -> Alcotest.fail "expected else-if chain"

let test_struct_decl_and_lit () =
  let prog =
    parse
      "package p\n\
       type Point struct {\n\tx int\n\ty int\n}\n\
       func f() Point {\n\treturn Point{x: 1, y: 2}\n}"
  in
  let file = List.hd prog in
  match A.structs_of_file file with
  | [ sd ] ->
      Alcotest.(check string) "struct name" "Point" sd.struct_name;
      Alcotest.(check int) "two fields" 2 (List.length sd.fields)
  | _ -> Alcotest.fail "expected one struct"

let test_method_calls () =
  let fd = parse_fn "func f(mu sync.Mutex) {\n\tmu.Lock()\n\tmu.Unlock()\n}" in
  match body_kinds fd with
  | [ "expr"; "expr" ] -> ()
  | ks -> Alcotest.failf "unexpected kinds %s" (String.concat "," ks)

let test_precedence () =
  let fd = parse_fn "func f(a int, b int, c int) bool {\n\treturn a + b * c == a && b < c\n}" in
  match (List.hd fd.body).s with
  | A.Return [ { e = A.Binop (A.And, _, _); _ } ] -> ()
  | _ -> Alcotest.fail "&& should bind loosest"

let test_multi_define () =
  let fd = parse_fn "func f(c chan int) {\n\tv, ok := <-c\n\t_ = v\n\t_ = ok\n}" in
  match (List.hd fd.body).s with
  | A.Define ([ "v"; "ok" ], { e = A.Recv _; _ }) -> ()
  | _ -> Alcotest.fail "expected v, ok := <-c"

let test_imports_skipped () =
  let prog =
    parse "package p\nimport \"fmt\"\nimport (\n\t\"sync\"\n\t\"time\"\n)\nfunc f() {}"
  in
  Alcotest.(check int) "one func" 1 (List.length (A.funcs_of_program prog))

let test_parse_error () =
  match parse "package p\nfunc f( {}" with
  | exception Minigo.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

(* round trip: printing a parsed program and re-parsing yields identical
   re-printed text *)
let roundtrip_stable src =
  let p1 = parse src in
  let printed = Minigo.Pretty.program_str p1 in
  let p2 = Minigo.Parser.parse_string ~file:"t.go" printed in
  let printed2 = Minigo.Pretty.program_str p2 in
  Alcotest.(check string) "pretty fixpoint" printed printed2

let test_roundtrip_figure1 () =
  roundtrip_stable
    "package p\n\
     func Exec(ctx context.Context, reader string) (string, error) {\n\
     \toutDone := make(chan error)\n\
     \tgo func(a string) {\n\t\toutDone <- nil\n\t}(reader)\n\
     \tselect {\n\
     \tcase err := <-outDone:\n\t\treturn \"\", err\n\
     \tcase <-ctx.Done():\n\t\treturn \"\", ctx.Err()\n\
     \t}\n\
     \treturn \"ok\", nil\n\
     }"

let test_roundtrip_corpus () =
  (* every corpus application must round trip *)
  List.iter
    (fun (app : Gocorpus.Apps.app) ->
      List.iter (fun src -> roundtrip_stable src) app.sources)
    [ Option.get (Gocorpus.Apps.find "bbolt"); Option.get (Gocorpus.Apps.find "grpc") ]

let tests =
  [
    Alcotest.test_case "empty function" `Quick test_empty_func;
    Alcotest.test_case "params and results" `Quick test_params_and_results;
    Alcotest.test_case "make chan" `Quick test_make_chan;
    Alcotest.test_case "send and recv" `Quick test_send_recv;
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "select v, ok" `Quick test_select_recv_ok;
    Alcotest.test_case "goroutine literal" `Quick test_go_literal;
    Alcotest.test_case "go named func" `Quick test_go_named;
    Alcotest.test_case "defer forms" `Quick test_defer_forms;
    Alcotest.test_case "for forms" `Quick test_for_forms;
    Alcotest.test_case "if-else chain" `Quick test_if_else_chain;
    Alcotest.test_case "struct decl and literal" `Quick test_struct_decl_and_lit;
    Alcotest.test_case "method calls" `Quick test_method_calls;
    Alcotest.test_case "operator precedence" `Quick test_precedence;
    Alcotest.test_case "multi define from recv" `Quick test_multi_define;
    Alcotest.test_case "imports skipped" `Quick test_imports_skipped;
    Alcotest.test_case "parse error raised" `Quick test_parse_error;
    Alcotest.test_case "round trip figure 1" `Quick test_roundtrip_figure1;
    Alcotest.test_case "round trip corpus apps" `Quick test_roundtrip_corpus;
  ]
