(* Static-analysis tests: alias analysis, call graph, dominance. *)

module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module CG = Goanalysis.Callgraph
module Dom = Goanalysis.Dominance

let lower src =
  Goir.Lower.lower_program
    (Minigo.Typecheck.check_program
       (Minigo.Parser.parse_string ("package p\n" ^ src)))

let chan_objs alias fname var =
  Alias.ObjSet.elements (Alias.objects_of_place alias fname (Ir.Pvar var))

(* ---- alias ---- *)

let test_alias_direct () =
  let ir = lower "func f() {\n\tc := make(chan int)\n\td := c\n\t_ = d\n}" in
  let alias = Alias.analyse ir in
  match (chan_objs alias "f" "c", chan_objs alias "f" "d") with
  | [ oc ], [ od ] -> Alcotest.(check bool) "same object" true (oc = od)
  | _ -> Alcotest.fail "expected singleton points-to sets"

let test_alias_through_call () =
  let ir =
    lower
      "func use(x chan int) {\n\tx <- 1\n}\nfunc f() {\n\tc := make(chan int, 1)\n\tuse(c)\n\t<-c\n}"
  in
  let alias = Alias.analyse ir in
  Alcotest.(check bool) "param aliases caller channel" true
    (Alias.may_alias alias "f" (Ir.Pvar "c") "use" (Ir.Pvar "x"))

let test_alias_through_goroutine () =
  let ir =
    lower "func f() {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n\t<-c\n}"
  in
  let alias = Alias.analyse ir in
  Alcotest.(check bool) "capture aliases channel" true
    (Alias.may_alias alias "f" (Ir.Pvar "c") "f$fn1" (Ir.Pvar "c"))

let test_alias_struct_field () =
  let ir =
    lower
      "type Holder struct {\n\tch chan int\n}\nfunc f() {\n\th := Holder{ch: make(chan int, 1)}\n\th.ch <- 1\n\t<-h.ch\n}"
  in
  let alias = Alias.analyse ir in
  let objs = Alias.objects_of_place alias "f" (Ir.Pfield ("h", "ch")) in
  Alcotest.(check bool) "field holds the channel" true
    (Alias.ObjSet.exists (function Alias.Achan _ -> true | _ -> false) objs)

let test_alias_distinct_sites () =
  let ir =
    lower "func f() {\n\ta := make(chan int, 1)\n\tb := make(chan int, 1)\n\ta <- 1\n\tb <- 2\n\t<-a\n\t<-b\n}"
  in
  let alias = Alias.analyse ir in
  Alcotest.(check bool) "different creation sites do not alias" false
    (Alias.may_alias alias "f" (Ir.Pvar "a") "f" (Ir.Pvar "b"))

let test_alias_channel_payload () =
  (* a channel sent over a channel: the $elem field models the transfer —
     the precision the paper's alias package lacked (17 FPs) *)
  let ir =
    lower
      "func f() {\n\tinner := make(chan int, 1)\n\tcarrier := make(chan chan int, 1)\n\tcarrier <- inner\n\tgot := <-carrier\n\tgot <- 5\n\t<-inner\n}"
  in
  let alias = Alias.analyse ir in
  Alcotest.(check bool) "received channel aliases sent channel" true
    (Alias.may_alias alias "f" (Ir.Pvar "inner") "f" (Ir.Pvar "got"))

let test_alias_capacity () =
  let ir = lower "func f() {\n\ta := make(chan int)\n\tb := make(chan int, 7)\n\t_ = a\n\t_ = b\n}" in
  let alias = Alias.analyse ir in
  let cap v =
    match chan_objs alias "f" v with
    | [ o ] -> Alias.capacity alias o
    | _ -> None
  in
  Alcotest.(check (option int)) "unbuffered" (Some 0) (cap "a");
  Alcotest.(check (option int)) "buffered 7" (Some 7) (cap "b")

let test_alias_entry_params_external () =
  let ir = lower "func Handle(c chan int) {\n\tc <- 1\n}" in
  let alias = Alias.analyse ir in
  let objs = chan_objs alias "Handle" "c" in
  Alcotest.(check bool) "entry param gets an external object" true
    (List.exists (function Alias.Aext _ -> true | _ -> false) objs)

(* ---- call graph ---- *)

let test_cg_direct_and_go () =
  let ir =
    lower
      "func a() {\n\tb()\n\tgo c()\n}\nfunc b() {}\nfunc c() {}"
  in
  let alias = Alias.analyse ir in
  let cg = CG.build ~alias ir in
  let callees = List.map (fun (e : CG.edge) -> (e.callee, e.kind)) (CG.callees cg "a") in
  Alcotest.(check bool) "calls b" true (List.mem ("b", CG.Ecall) callees);
  Alcotest.(check bool) "spawns c" true (List.mem ("c", CG.Ego) callees)

let test_cg_indirect_via_alias () =
  let ir =
    lower
      "func target() {\n\tprintln(1)\n}\nfunc f() {\n\tg := target\n\tg()\n}"
  in
  let alias = Alias.analyse ir in
  let cg = CG.build ~alias ir in
  let callees = List.map (fun (e : CG.edge) -> e.callee) (CG.callees cg "f") in
  Alcotest.(check bool) "resolves function value" true (List.mem "target" callees)

let test_cg_reachability () =
  let ir = lower "func a() {\n\tb()\n}\nfunc b() {\n\tc()\n}\nfunc c() {}\nfunc d() {}" in
  let cg = CG.build ir in
  let reach = CG.reachable_from cg "a" in
  Alcotest.(check bool) "a reaches c" true (Hashtbl.mem reach "c");
  Alcotest.(check bool) "a does not reach d" false (Hashtbl.mem reach "d")

let test_cg_lca () =
  let ir =
    lower
      "func root() {\n\tleft()\n\tright()\n}\nfunc left() {\n\tshared()\n}\nfunc right() {\n\tshared()\n}\nfunc shared() {}"
  in
  let cg = CG.build ir in
  Alcotest.(check (option string)) "LCA of left/right" (Some "root")
    (CG.lca cg [ "left"; "right" ]);
  Alcotest.(check (option string)) "LCA of a single func" (Some "left")
    (CG.lca cg [ "left" ])

(* ---- dominance ---- *)

let test_dominators () =
  let ir =
    lower
      "func f(x int) int {\n\tc := make(chan bool, 1)\n\tif x > 0 {\n\t\tc <- true\n\t} else {\n\t\tc <- false\n\t}\n\t<-c\n\treturn 0\n}"
  in
  let f = Option.get (Ir.find_func ir "f") in
  let dom = Dom.dominators f in
  (* the entry block dominates every return block *)
  List.iter
    (fun ret_bid ->
      Alcotest.(check bool) "entry dominates return" true
        (Dom.dominates f dom f.entry ret_bid))
    (Dom.return_blocks f);
  (* neither branch arm dominates the join *)
  let make_pp =
    Ir.fold_insts
      (fun acc (i : Ir.inst) ->
        match i.idesc with Imake_chan _ -> Some i.ipp | _ -> acc)
      None f
  in
  let recv_pp =
    Ir.fold_insts
      (fun acc (i : Ir.inst) ->
        match i.idesc with Irecv _ -> Some i.ipp | _ -> acc)
      None f
  in
  match (make_pp, recv_pp) with
  | Some mk, Some rc ->
      Alcotest.(check bool) "make dominates recv" true (Dom.pp_dominates f dom mk rc);
      Alcotest.(check bool) "recv does not dominate make" false
        (Dom.pp_dominates f dom rc mk)
  | _ -> Alcotest.fail "missing pps"

let tests =
  [
    Alcotest.test_case "alias: direct copy" `Quick test_alias_direct;
    Alcotest.test_case "alias: through call" `Quick test_alias_through_call;
    Alcotest.test_case "alias: through goroutine capture" `Quick test_alias_through_goroutine;
    Alcotest.test_case "alias: struct field" `Quick test_alias_struct_field;
    Alcotest.test_case "alias: distinct sites" `Quick test_alias_distinct_sites;
    Alcotest.test_case "alias: channel sent over channel" `Quick test_alias_channel_payload;
    Alcotest.test_case "alias: static capacity" `Quick test_alias_capacity;
    Alcotest.test_case "alias: entry params external" `Quick test_alias_entry_params_external;
    Alcotest.test_case "callgraph: direct and go edges" `Quick test_cg_direct_and_go;
    Alcotest.test_case "callgraph: indirect via alias" `Quick test_cg_indirect_via_alias;
    Alcotest.test_case "callgraph: reachability" `Quick test_cg_reachability;
    Alcotest.test_case "callgraph: LCA" `Quick test_cg_lca;
    Alcotest.test_case "dominance" `Quick test_dominators;
  ]
