(* Lexer tests: tokens, automatic semicolon insertion, comments, errors. *)

module T = Minigo.Token
module L = Minigo.Lexer

let toks src = List.map (fun (ti : L.token_info) -> ti.tok) (L.tokenize ~file:"t.go" src)

let check_toks name src expected =
  Alcotest.(check (list string))
    name
    (List.map T.to_string expected)
    (List.map T.to_string (toks src))

let test_idents () =
  check_toks "identifiers" "foo bar_baz x1"
    [ IDENT "foo"; IDENT "bar_baz"; IDENT "x1"; SEMI; EOF ]

let test_keywords () =
  check_toks "keywords" "func go chan select"
    [ KW_func; KW_go; KW_chan; KW_select; EOF ]

let test_ints () =
  check_toks "integers" "0 42 1234" [ INT 0; INT 42; INT 1234; SEMI; EOF ]

let test_strings () =
  check_toks "string literal" {|"hello"|} [ STRING "hello"; SEMI; EOF ]

let test_string_escapes () =
  check_toks "escapes" {|"a\nb\tc\"d"|} [ STRING "a\nb\tc\"d"; SEMI; EOF ]

let test_operators () =
  check_toks "operators" "+ - * / % == != < <= > >= && || !"
    [ PLUS; MINUS; STAR; SLASH; PERCENT; EQ; NEQ; LT; LE; GT; GE; AND; OR; NOT; EOF ]

let test_arrow_vs_lt () =
  check_toks "arrow" "<-x" [ ARROW; IDENT "x"; SEMI; EOF ];
  check_toks "less" "< -x" [ LT; MINUS; IDENT "x"; SEMI; EOF ]

let test_define_vs_colon () =
  check_toks "define" "x := 1" [ IDENT "x"; DEFINE; INT 1; SEMI; EOF ];
  check_toks "colon" "case a:" [ KW_case; IDENT "a"; COLON; EOF ]

let test_incdec () =
  (* ++/-- end a statement, so the newline inserts a semicolon *)
  check_toks "inc dec" "x++\ny--"
    [ IDENT "x"; PLUSPLUS; SEMI; IDENT "y"; MINUSMINUS; SEMI; EOF ]

(* Go's semicolon insertion: a newline after a statement-ending token
   inserts a SEMI; after other tokens it does not. *)
let test_semi_insertion_after_ident () =
  check_toks "semi after ident" "x\ny" [ IDENT "x"; SEMI; IDENT "y"; SEMI; EOF ]

let test_no_semi_after_operator () =
  check_toks "no semi after plus" "x +\ny" [ IDENT "x"; PLUS; IDENT "y"; SEMI; EOF ]

let test_no_semi_after_lbrace () =
  check_toks "no semi after brace" "{\nx" [ LBRACE; IDENT "x"; SEMI; EOF ]

let test_semi_after_rparen () =
  check_toks "semi after rparen" "f()\ng()"
    [ IDENT "f"; LPAREN; RPAREN; SEMI; IDENT "g"; LPAREN; RPAREN; SEMI; EOF ]

let test_semi_after_return () =
  check_toks "semi after return" "return\nx"
    [ KW_return; SEMI; IDENT "x"; SEMI; EOF ]

let test_line_comment () =
  check_toks "line comment" "x // comment\ny"
    [ IDENT "x"; SEMI; IDENT "y"; SEMI; EOF ]

let test_block_comment () =
  check_toks "block comment" "x /* multi\nline */ y"
    [ IDENT "x"; IDENT "y"; SEMI; EOF ]

let test_empty () = check_toks "empty input" "" [ EOF ]

let test_unterminated_string () =
  Alcotest.check_raises "unterminated string"
    (L.Lex_error ("unterminated string literal", Minigo.Loc.make ~file:"t.go" ~line:1 ~col:1))
    (fun () -> ignore (toks {|"abc|}))

let test_locations () =
  let tis = L.tokenize ~file:"t.go" "a\n  b" in
  match tis with
  | a :: _semi :: b :: _ ->
      Alcotest.(check int) "a line" 1 (Minigo.Loc.line a.loc);
      Alcotest.(check int) "b line" 2 (Minigo.Loc.line b.loc);
      Alcotest.(check string) "file" "t.go" (Minigo.Loc.file b.loc)
  | _ -> Alcotest.fail "unexpected token stream"

(* property: lexing a comma-joined list of random identifiers yields the
   identifiers in order *)
let prop_idents_roundtrip =
  QCheck.Test.make ~name:"lexer: identifier round trip" ~count:200
    QCheck.(list_of_size Gen.(1 -- 8) (string_gen_of_size Gen.(1 -- 10) (Gen.char_range (Char.chr 97) (Char.chr 122))))
    (fun names ->
      QCheck.assume (names <> []);
      QCheck.assume
        (List.for_all (fun n -> Minigo.Token.keyword_of_string n = None) names);
      let src = String.concat ", " names in
      let lexed =
        List.filter_map
          (function T.IDENT s -> Some s | _ -> None)
          (toks src)
      in
      lexed = names)

let tests =
  [
    Alcotest.test_case "identifiers" `Quick test_idents;
    Alcotest.test_case "keywords" `Quick test_keywords;
    Alcotest.test_case "integers" `Quick test_ints;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "arrow vs less-than" `Quick test_arrow_vs_lt;
    Alcotest.test_case "define vs colon" `Quick test_define_vs_colon;
    Alcotest.test_case "increment/decrement" `Quick test_incdec;
    Alcotest.test_case "semi inserted after ident" `Quick test_semi_insertion_after_ident;
    Alcotest.test_case "no semi after operator" `Quick test_no_semi_after_operator;
    Alcotest.test_case "no semi after lbrace" `Quick test_no_semi_after_lbrace;
    Alcotest.test_case "semi after rparen" `Quick test_semi_after_rparen;
    Alcotest.test_case "semi after return" `Quick test_semi_after_return;
    Alcotest.test_case "line comments" `Quick test_line_comment;
    Alcotest.test_case "block comments" `Quick test_block_comment;
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "unterminated string" `Quick test_unterminated_string;
    Alcotest.test_case "token locations" `Quick test_locations;
    QCheck_alcotest.to_alcotest prop_idents_roundtrip;
  ]
