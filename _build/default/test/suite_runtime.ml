(* Runtime tests: channel semantics, select, mutexes, WaitGroups, defer,
   panic, goroutine-leak detection, and schedule determinism. *)

module I = Goruntime.Interp
module S = Goruntime.Scheduler

let run ?(seed = 7) ?(entry = "main") src =
  let prog =
    Minigo.Typecheck.check_program
      (Minigo.Parser.parse_string ("package p\n" ^ src))
  in
  I.run ~seed ~entry prog

let output ?seed src = (run ?seed src).output
let leaks ?seed src = List.length (run ?seed src).leaked

let check_output name expected src =
  Alcotest.(check (list string)) name expected (output src)

let test_hello () = check_output "println" [ "hello" ] "func main() {\n\tprintln(\"hello\")\n}"

let test_arith () =
  check_output "arithmetic" [ "7"; "6"; "2"; "1" ]
    "func main() {\n\tprintln(3 + 4)\n\tprintln(2 * 3)\n\tprintln(5 / 2)\n\tprintln(5 % 2)\n}"

let test_unbuffered_rendezvous () =
  check_output "rendezvous" [ "41"; "42" ]
    "func main() {\n\tc := make(chan int)\n\tgo func() {\n\t\tprintln(41)\n\t\tc <- 42\n\t}()\n\tprintln(<-c)\n}"

let test_buffered_fifo () =
  check_output "fifo" [ "1"; "2"; "3" ]
    "func main() {\n\tc := make(chan int, 3)\n\tc <- 1\n\tc <- 2\n\tc <- 3\n\tprintln(<-c)\n\tprintln(<-c)\n\tprintln(<-c)\n}"

let test_buffered_blocks_when_full () =
  (* capacity 1: second send must wait for the receive *)
  check_output "buffered full" [ "recv 1"; "recv 2" ]
    "func main() {\n\tc := make(chan int, 1)\n\tdone := make(chan bool)\n\tgo func() {\n\t\tc <- 1\n\t\tc <- 2\n\t\tdone <- true\n\t}()\n\tprintln(\"recv\", <-c)\n\tprintln(\"recv\", <-c)\n\t<-done\n}"

let test_close_drains () =
  check_output "close then drain" [ "1"; "2"; "0 false" ]
    "func main() {\n\tc := make(chan int, 2)\n\tc <- 1\n\tc <- 2\n\tclose(c)\n\tprintln(<-c)\n\tprintln(<-c)\n\tv, ok := <-c\n\tprintln(v, ok)\n}"

let test_range_over_channel () =
  check_output "range drain" [ "0"; "1"; "2"; "done" ]
    "func main() {\n\tc := make(chan int, 4)\n\tgo func() {\n\t\tfor i := range 3 {\n\t\t\tc <- i\n\t\t}\n\t\tclose(c)\n\t}()\n\tfor v := range c {\n\t\tprintln(v)\n\t}\n\tprintln(\"done\")\n}"

let test_send_on_closed_panics () =
  let r = run "func main() {\n\tc := make(chan int, 1)\n\tclose(c)\n\tc <- 1\n}" in
  Alcotest.(check int) "one panic" 1 (List.length r.panics)

let test_double_close_panics () =
  let r = run "func main() {\n\tc := make(chan int)\n\tclose(c)\n\tclose(c)\n}" in
  Alcotest.(check int) "one panic" 1 (List.length r.panics)

let test_nil_channel_blocks () =
  let r = run "func main() {\n\tvar c chan int\n\tc <- 1\n}" in
  Alcotest.(check int) "main leaked" 1 (List.length r.leaked);
  Alcotest.(check int) "no panic" 0 (List.length r.panics)

let test_select_default () =
  check_output "select default" [ "empty" ]
    "func main() {\n\tc := make(chan int)\n\tselect {\n\tcase v := <-c:\n\t\tprintln(v)\n\tdefault:\n\t\tprintln(\"empty\")\n\t}\n}"

let test_select_ready_case () =
  check_output "select ready" [ "got 9" ]
    "func main() {\n\tc := make(chan int, 1)\n\tc <- 9\n\tselect {\n\tcase v := <-c:\n\t\tprintln(\"got\", v)\n\tdefault:\n\t\tprintln(\"empty\")\n\t}\n}"

let test_select_send_case () =
  check_output "select send" [ "sent"; "5" ]
    "func main() {\n\tc := make(chan int, 1)\n\tselect {\n\tcase c <- 5:\n\t\tprintln(\"sent\")\n\t}\n\tprintln(<-c)\n}"

let test_select_blocks_until_ready () =
  check_output "select waits" [ "w"; "3" ]
    "func main() {\n\tc := make(chan int)\n\tgo func() {\n\t\tprintln(\"w\")\n\t\tc <- 3\n\t}()\n\tselect {\n\tcase v := <-c:\n\t\tprintln(v)\n\t}\n}"

let test_select_closed_channel () =
  check_output "select sees close" [ "closed" ]
    "func main() {\n\tc := make(chan int)\n\tgo func() {\n\t\tclose(c)\n\t}()\n\tselect {\n\tcase _, ok := <-c:\n\t\tif !ok {\n\t\t\tprintln(\"closed\")\n\t\t}\n\t}\n}"

let test_mutex_excludes () =
  (* with the lock, the two increment loops cannot interleave mid-update *)
  let src =
    "func main() {\n\tvar mu sync.Mutex\n\tdone := make(chan bool, 2)\n\ttotal := 0\n\tworker := func() {\n\t\tfor i := range 10 {\n\t\t\tmu.Lock()\n\t\t\ttotal = total + 1\n\t\t\tmu.Unlock()\n\t\t\t_ = i\n\t\t}\n\t\tdone <- true\n\t}\n\tgo worker()\n\tgo worker()\n\t<-done\n\t<-done\n\tprintln(total)\n}"
  in
  Alcotest.(check (list string)) "mutex total" [ "20" ] (output src)

let test_unlock_unlocked_panics () =
  let r = run "func main() {\n\tvar mu sync.Mutex\n\tmu.Unlock()\n}" in
  Alcotest.(check int) "panic" 1 (List.length r.panics)

let test_waitgroup () =
  check_output "waitgroup" [ "all done 3" ]
    "func main() {\n\tvar wg sync.WaitGroup\n\tc := make(chan int, 8)\n\tfor i := range 3 {\n\t\twg.Add(1)\n\t\tgo func(k int) {\n\t\t\tc <- k\n\t\t\twg.Done()\n\t\t}(i)\n\t}\n\twg.Wait()\n\tprintln(\"all done\", len(c))\n}"

let test_defer_lifo () =
  check_output "defer LIFO" [ "body"; "second"; "first" ]
    "func f() {\n\tdefer println(\"first\")\n\tdefer println(\"second\")\n\tprintln(\"body\")\n}\nfunc main() {\n\tf()\n}"

let test_defer_args_at_registration () =
  check_output "defer args early" [ "x = 1" ]
    "func show(v int) {\n\tprintln(\"x =\", v)\n}\nfunc main() {\n\tx := 1\n\tdefer show(x)\n\tx = 2\n}"

let test_defer_runs_on_panic () =
  let r =
    run
      "func f() {\n\tdefer println(\"cleanup\")\n\tpanic(\"boom\")\n}\nfunc main() {\n\tf()\n}"
  in
  Alcotest.(check (list string)) "cleanup ran" [ "cleanup" ] r.output;
  Alcotest.(check int) "panicked" 1 (List.length r.panics)

let test_defer_runs_on_fatal () =
  (* testing.Fatal exits the goroutine but still runs defers: the property
     GFix Strategy-II depends on *)
  let r =
    run ~entry:"TestX"
      "func TestX(t *testing.T) {\n\tc := make(chan bool, 1)\n\tdefer func() {\n\t\tc <- true\n\t}()\n\tt.Fatal(\"stop\")\n\tprintln(\"unreachable\")\n}"
  in
  Alcotest.(check bool) "fatal logged" true
    (List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "FATAL") r.output);
  Alcotest.(check int) "no leak: defer sent into buffered chan" 0
    (List.length r.leaked)

let test_closure_captures_by_reference () =
  check_output "capture by reference" [ "10" ]
    "func main() {\n\tx := 0\n\tbump := func() {\n\t\tx = x + 10\n\t}\n\tbump()\n\tprintln(x)\n}"

let test_goroutine_leak_detected () =
  Alcotest.(check int) "leak" 1
    (leaks "func main() {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n}")

let test_no_leak_when_drained () =
  Alcotest.(check int) "no leak" 0
    (leaks "func main() {\n\tc := make(chan int)\n\tgo func() {\n\t\tc <- 1\n\t}()\n\t<-c\n}")

let test_deadlock_detected () =
  let r =
    run
      "func main() {\n\ta := make(chan int)\n\tb := make(chan int)\n\tgo func() {\n\t\t<-a\n\t\tb <- 1\n\t}()\n\t<-b\n\ta <- 1\n}"
  in
  Alcotest.(check int) "both goroutines stuck" 2 (List.length r.leaked)

let test_deterministic_given_seed () =
  let src =
    "func main() {\n\tc := make(chan int, 4)\n\tfor i := range 4 {\n\t\tgo func(k int) {\n\t\t\tc <- k\n\t\t}(i)\n\t}\n\tfor i := range 4 {\n\t\tprintln(<-c)\n\t\t_ = i\n\t}\n}"
  in
  Alcotest.(check (list string)) "same seed, same schedule" (output ~seed:11 src)
    (output ~seed:11 src)

let test_sleep_ordering () =
  check_output "sleep defers goroutine" [ "first"; "second" ]
    "func main() {\n\tdone := make(chan bool)\n\tgo func() {\n\t\tsleep(5)\n\t\tprintln(\"second\")\n\t\tdone <- true\n\t}()\n\tprintln(\"first\")\n\t<-done\n}"

let test_fuel_exhaustion () =
  let prog =
    Minigo.Typecheck.check_program
      (Minigo.Parser.parse_string
         "package p\nfunc main() {\n\tfor {\n\t\tprintln(\"spin\")\n\t}\n}")
  in
  let r = I.run ~fuel:500 prog in
  Alcotest.(check bool) "fuel exhausted" true r.fuel_exhausted

let test_context_cancel () =
  check_output "ctx cancel" [ "cancelled" ]
    "func main() {\n\tctx := background()\n\tcancel(ctx)\n\tselect {\n\tcase <-ctx.Done():\n\t\tprintln(\"cancelled\")\n\t}\n}"

let test_struct_shared_with_goroutine () =
  check_output "struct sharing" [ "5" ]
    "type Counter struct {\n\tn int\n}\nfunc main() {\n\ts := Counter{n: 0}\n\tdone := make(chan bool)\n\tgo func(c Counter) {\n\t\tc.n = 5\n\t\tdone <- true\n\t}(s)\n\t<-done\n\tprintln(s.n)\n}"

(* property: a correct producer/consumer pipeline never leaks under any
   of 25 random schedules, and always sums correctly *)
let prop_pipeline_correct =
  QCheck.Test.make ~name:"runtime: pipeline never leaks, sums correctly" ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 0 6))
    (fun (seed, n) ->
      let src =
        Printf.sprintf
          "package p\n\
           func main() {\n\
           \tc := make(chan int, 2)\n\
           \tdone := make(chan int)\n\
           \tgo func() {\n\
           \t\tfor i := range %d {\n\t\t\tc <- i\n\t\t}\n\
           \t\tclose(c)\n\
           \t}()\n\
           \tgo func() {\n\
           \t\ttotal := 0\n\
           \t\tfor v := range c {\n\t\t\ttotal = total + v\n\t\t}\n\
           \t\tdone <- total\n\
           \t}()\n\
           \tprintln(<-done)\n\
           }"
          n
      in
      let prog =
        Minigo.Typecheck.check_program (Minigo.Parser.parse_string src)
      in
      let r = I.run ~seed prog in
      let expected = n * (n - 1) / 2 in
      r.leaked = [] && r.panics = [] && r.output = [ string_of_int expected ])

(* property: the figure-1 bug leaks on some schedules and the buffered
   variant never does *)
let prop_buffer_fix_eliminates_leak =
  QCheck.Test.make ~name:"runtime: buffered variant never leaks" ~count:20
    (QCheck.int_range 1 500)
    (fun seed ->
      let mk cap =
        Printf.sprintf
          "package p\n\
           func main() {\n\
           \tctx := background()\n\
           \tgo func(c context.Context) {\n\t\tcancel(c)\n\t}(ctx)\n\
           \tout := make(chan int%s)\n\
           \tgo func() {\n\t\tout <- 1\n\t}()\n\
           \tselect {\n\
           \tcase <-out:\n\
           \tcase <-ctx.Done():\n\
           \t}\n\
           }"
          cap
      in
      let run_src src =
        let prog =
          Minigo.Typecheck.check_program (Minigo.Parser.parse_string src)
        in
        I.run ~seed prog
      in
      let fixed = run_src (mk ", 1") in
      fixed.leaked = [])

let tests =
  [
    Alcotest.test_case "println" `Quick test_hello;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "unbuffered rendezvous" `Quick test_unbuffered_rendezvous;
    Alcotest.test_case "buffered FIFO" `Quick test_buffered_fifo;
    Alcotest.test_case "buffered blocks when full" `Quick test_buffered_blocks_when_full;
    Alcotest.test_case "close then drain" `Quick test_close_drains;
    Alcotest.test_case "range over channel" `Quick test_range_over_channel;
    Alcotest.test_case "send on closed panics" `Quick test_send_on_closed_panics;
    Alcotest.test_case "double close panics" `Quick test_double_close_panics;
    Alcotest.test_case "nil channel blocks forever" `Quick test_nil_channel_blocks;
    Alcotest.test_case "select default" `Quick test_select_default;
    Alcotest.test_case "select ready case" `Quick test_select_ready_case;
    Alcotest.test_case "select send case" `Quick test_select_send_case;
    Alcotest.test_case "select blocks until ready" `Quick test_select_blocks_until_ready;
    Alcotest.test_case "select sees close" `Quick test_select_closed_channel;
    Alcotest.test_case "mutex excludes" `Quick test_mutex_excludes;
    Alcotest.test_case "unlock unlocked panics" `Quick test_unlock_unlocked_panics;
    Alcotest.test_case "waitgroup" `Quick test_waitgroup;
    Alcotest.test_case "defer LIFO" `Quick test_defer_lifo;
    Alcotest.test_case "defer args at registration" `Quick test_defer_args_at_registration;
    Alcotest.test_case "defer runs on panic" `Quick test_defer_runs_on_panic;
    Alcotest.test_case "defer runs on Fatal (Goexit)" `Quick test_defer_runs_on_fatal;
    Alcotest.test_case "closure captures by reference" `Quick test_closure_captures_by_reference;
    Alcotest.test_case "goroutine leak detected" `Quick test_goroutine_leak_detected;
    Alcotest.test_case "no leak when drained" `Quick test_no_leak_when_drained;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "deterministic schedules" `Quick test_deterministic_given_seed;
    Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "context cancel" `Quick test_context_cancel;
    Alcotest.test_case "struct shared with goroutine" `Quick test_struct_shared_with_goroutine;
    QCheck_alcotest.to_alcotest prop_pipeline_correct;
    QCheck_alcotest.to_alcotest prop_buffer_fix_eliminates_leak;
  ]
