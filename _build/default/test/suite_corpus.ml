(* Corpus-level integration tests: every seeded bug is recalled, no
   unexpected false positives appear, the coverage bug set matches the
   paper's 33/49, and generated patches validate dynamically. *)

module P = Gocorpus.Patterns
module Score = Goreport.Score

let score name =
  Score.score_app (Option.get (Gocorpus.Apps.find name))

let test_app_parses name () =
  let app = Option.get (Gocorpus.Apps.find name) in
  match
    Minigo.Typecheck.check_program
      (Minigo.Parser.parse_program ~name app.sources)
  with
  | _ -> ()
  | exception Minigo.Parser.Parse_error (m, loc) ->
      Alcotest.failf "%s: parse error %s at %s" name m (Minigo.Loc.to_string loc)
  | exception Minigo.Typecheck.Type_error (m, loc) ->
      Alcotest.failf "%s: type error %s at %s" name m (Minigo.Loc.to_string loc)

let test_full_recall name () =
  let s = score name in
  Alcotest.(check int)
    (name ^ ": all seeded BMOC bugs recalled")
    s.seeded_bmoc s.found_bmoc

let test_no_unexpected_fp name () =
  let app = Option.get (Gocorpus.Apps.find name) in
  let s = score name in
  List.iter
    (fun (b : Gcatch.Report.bmoc_bug) ->
      match Score.classify_bmoc app.truth b with
      | Score.FP_unexpected ->
          Alcotest.failf "%s: unexpected false positive: %s" name
            (Gcatch.Report.bmoc_str b)
      | _ -> ())
    s.analysis.bmoc;
  List.iter
    (fun (t : Gcatch.Report.trad_bug) ->
      match Score.classify_trad app.truth t with
      | Score.FP_unexpected ->
          Alcotest.failf "%s: unexpected traditional FP: %s" name
            (Gcatch.Report.trad_str t)
      | _ -> ())
    s.analysis.trad

let test_empty_apps_clean () =
  List.iter
    (fun name ->
      let s = score name in
      Alcotest.(check int) (name ^ " BMOC tp") 0 (s.bmoc_c_tp + s.bmoc_m_tp);
      Alcotest.(check int) (name ^ " BMOC fp") 0 (s.bmoc_c_fp + s.bmoc_m_fp))
    [ "gin"; "gogs"; "traefik"; "caddy"; "mkcert" ]

let test_strategy_split () =
  (* docker's seeded mix must come out as mostly Strategy-I with a few
     II/III, like Table 1's Docker row *)
  let s = score "docker" in
  Alcotest.(check bool) "S1 dominates" true (s.fixed_s1 > s.fixed_s2 + s.fixed_s3);
  Alcotest.(check bool) "S2 present" true (s.fixed_s2 >= 1);
  Alcotest.(check bool) "S3 present" true (s.fixed_s3 >= 2)

let test_fix_expectations () =
  (* each seeded fixable bug gets its expected strategy *)
  let app = Option.get (Gocorpus.Apps.find "etcd") in
  let s = Score.score_app app in
  let expected_of fn =
    List.find_map
      (function
        | P.T_bmoc { fn = f; fixable; _ } when f = fn -> Some fixable
        | _ -> None)
      app.truth
  in
  List.iter
    (fun ((bug : Gcatch.Report.bmoc_bug), outcome) ->
      let scope_fns = List.map Score.base_func bug.scope_funcs in
      let expectation = List.find_map expected_of scope_fns in
      match (expectation, outcome) with
      | Some P.FS1, Gcatch.Gfix.Fixed f ->
          Alcotest.(check string) "expected S1"
            (Gcatch.Gfix.strategy_str Gcatch.Gfix.S1_increase_buffer)
            (Gcatch.Gfix.strategy_str f.strategy)
      | Some P.FS2, Gcatch.Gfix.Fixed f ->
          Alcotest.(check string) "expected S2"
            (Gcatch.Gfix.strategy_str Gcatch.Gfix.S2_defer_op)
            (Gcatch.Gfix.strategy_str f.strategy)
      | Some P.FS3, Gcatch.Gfix.Fixed f ->
          Alcotest.(check string) "expected S3"
            (Gcatch.Gfix.strategy_str Gcatch.Gfix.S3_add_stop)
            (Gcatch.Gfix.strategy_str f.strategy)
      | Some (P.Funfixable _), Gcatch.Gfix.Not_fixed _ -> ()
      | Some (P.Funfixable _), Gcatch.Gfix.Fixed f ->
          Alcotest.failf "expected unfixable, got %s" f.description
      | Some _, Gcatch.Gfix.Not_fixed r ->
          Alcotest.failf "expected a fix, got rejection: %s" r
      | None, _ -> () (* a bait or secondary report *))
    s.fix_details

let test_bugset_coverage () =
  let detected = ref 0 in
  List.iter
    (fun (e : Gocorpus.Bugset.entry) ->
      let a = Gcatch.Driver.analyse ~name:e.bs_name [ "package b\n" ^ e.bs_src ] in
      let found = a.bmoc <> [] in
      if found then incr detected;
      Alcotest.(check bool)
        (Printf.sprintf "%s (%s)" e.bs_name e.bs_class)
        e.bs_detectable found)
    Gocorpus.Bugset.entries;
  Alcotest.(check int) "coverage 33/49" 33 !detected

let test_pattern_bugs_manifest () =
  (* the fixable bug patterns, when wrapped in a driver, leak on at least
     one of 40 schedules — the seeded bugs are real *)
  let wrap_fig1 =
    let inst = P.instantiate P.P_single_send_timeout 1 in
    inst.src
    ^ "\nfunc main() {\n\ttimeout := make(chan bool, 1)\n\ttimeout <- true\n\tprintln(FetchWithTimeout1(timeout, \"u\"))\n}"
  in
  let prog =
    Minigo.Typecheck.check_program
      (Minigo.Parser.parse_string ("package p\n" ^ wrap_fig1))
  in
  let _, leaks, _, _ = Goruntime.Interp.run_schedules ~seeds:40 prog in
  Alcotest.(check bool) "single-send pattern manifests" true (leaks > 0)

let test_benign_patterns_never_leak () =
  let wrap =
    let b1 = P.instantiate P.P_benign_pipeline 1 in
    b1.src ^ "\nfunc main() {\n\tprintln(Pipeline1(5))\n}"
  in
  let prog =
    Minigo.Typecheck.check_program
      (Minigo.Parser.parse_string ("package p\n" ^ wrap))
  in
  let _, leaks, _, _ = Goruntime.Interp.run_schedules ~seeds:40 prog in
  Alcotest.(check int) "benign pipeline never leaks" 0 leaks

let test_filler_is_benign () =
  let src = "package f\n" ^ Gocorpus.Filler.generate ~seed:3 ~target_lines:300 in
  let a = Gcatch.Driver.analyse ~name:"filler" [ src ] in
  Alcotest.(check int) "filler: no BMOC reports" 0 (List.length a.bmoc);
  Alcotest.(check int) "filler: no trad reports" 0 (List.length a.trad)

let app_tests =
  List.concat_map
    (fun name ->
      [
        Alcotest.test_case (name ^ " parses") `Quick (test_app_parses name);
        Alcotest.test_case (name ^ " full recall") `Slow (test_full_recall name);
        Alcotest.test_case (name ^ " no unexpected FPs") `Slow
          (test_no_unexpected_fp name);
      ])
    [ "go"; "docker"; "etcd"; "grpc"; "bbolt"; "cockroachdb"; "tidb" ]

let tests =
  app_tests
  @ [
      Alcotest.test_case "bug-free apps stay clean" `Slow test_empty_apps_clean;
      Alcotest.test_case "docker strategy split" `Slow test_strategy_split;
      Alcotest.test_case "per-bug fix expectations (etcd)" `Slow test_fix_expectations;
      Alcotest.test_case "bug-set coverage = 33/49" `Slow test_bugset_coverage;
      Alcotest.test_case "seeded bugs manifest dynamically" `Quick
        test_pattern_bugs_manifest;
      Alcotest.test_case "benign patterns never leak" `Quick
        test_benign_patterns_never_leak;
      Alcotest.test_case "filler is benign" `Quick test_filler_is_benign;
    ]
