(* The WaitGroup modeling extension (§6): off by default — matching the
   paper's coverage study, which counts WaitGroup bugs as misses — and
   able to find exactly those bugs when enabled. *)

let wg_cfg =
  {
    Gcatch.Bmoc.default_config with
    path_cfg = { Gcatch.Pathenum.default_config with model_waitgroup = true };
  }

let analyse ?(wg = true) src =
  let cfg = if wg then wg_cfg else Gcatch.Bmoc.default_config in
  Gcatch.Driver.analyse ~cfg ~name:"wg" [ "package p\n" ^ src ]

let buggy_skip_done =
  "func Gather(skip bool) {\n\
   \tvar wg sync.WaitGroup\n\
   \twg.Add(1)\n\
   \tgo func(s bool) {\n\t\tif s {\n\t\t\treturn\n\t\t}\n\t\twg.Done()\n\t}(skip)\n\
   \twg.Wait()\n\
   }"

let balanced =
  "func Gather() {\n\
   \tvar wg sync.WaitGroup\n\
   \twg.Add(1)\n\
   \tgo func() {\n\t\twg.Done()\n\t}()\n\
   \twg.Wait()\n\
   }"

let test_off_by_default () =
  let a = analyse ~wg:false buggy_skip_done in
  Alcotest.(check int) "paper behaviour: WaitGroup bugs missed" 0
    (List.length a.bmoc)

let test_skip_done_detected () =
  let a = analyse buggy_skip_done in
  Alcotest.(check bool) "missed Done blocks Wait" true (List.length a.bmoc >= 1);
  let bug = List.hd a.bmoc in
  Alcotest.(check bool) "blocked op is the Wait" true
    (List.exists
       (fun (o : Gcatch.Report.blocked_op) -> o.bo_kind = Gcatch.Report.Kwg_wait)
       bug.blocked)

let test_balanced_clean () =
  let a = analyse balanced in
  Alcotest.(check int) "balanced Add/Done is clean" 0 (List.length a.bmoc)

let test_add_two_one_done () =
  let src =
    "func G() {\n\
     \tvar wg sync.WaitGroup\n\
     \twg.Add(2)\n\
     \tgo func() {\n\t\twg.Done()\n\t}()\n\
     \twg.Wait()\n\
     }"
  in
  Alcotest.(check bool) "Add(2) with one Done blocks" true
    (List.length (analyse src).bmoc >= 1)

let test_add_two_two_dones () =
  let src =
    "func G() {\n\
     \tvar wg sync.WaitGroup\n\
     \twg.Add(2)\n\
     \tgo func() {\n\t\twg.Done()\n\t}()\n\
     \tgo func() {\n\t\twg.Done()\n\t}()\n\
     \twg.Wait()\n\
     }"
  in
  Alcotest.(check int) "Add(2) with two Dones is clean" 0
    (List.length (analyse src).bmoc)

let test_unknown_delta_unmodelable () =
  (* Add(n) with a runtime value: the extension must stay silent rather
     than guess *)
  let src =
    "func G(n int) {\n\
     \tvar wg sync.WaitGroup\n\
     \twg.Add(n)\n\
     \tgo func() {\n\t\twg.Done()\n\t}()\n\
     \twg.Wait()\n\
     }"
  in
  Alcotest.(check int) "non-constant Add is not modelled" 0
    (List.length (analyse src).bmoc)

let test_bugset_waitgroup_class_recovered () =
  (* the E4 miss class becomes detectable for constant Add(1) shapes *)
  let src =
    "func Gather(n int) {\n\
     \tvar wg sync.WaitGroup\n\
     \tfor i := range n {\n\
     \t\twg.Add(1)\n\
     \t\tgo func(k int) {\n\t\t\tif k == 0 {\n\t\t\t\treturn\n\t\t\t}\n\t\t\twg.Done()\n\t\t}(i)\n\
     \t}\n\
     \twg.Wait()\n\
     }"
  in
  Alcotest.(check bool) "loop-spawn skip-Done found" true
    (List.length (analyse src).bmoc >= 1)

let test_dynamic_agreement () =
  (* the buggy program leaks at runtime; the balanced one never does *)
  let run src =
    let prog =
      Minigo.Typecheck.check_program
        (Minigo.Parser.parse_string
           ("package p\n" ^ src ^ "\nfunc main() {\n\tGather(true)\n}"))
    in
    let _, leaks, _, _ = Goruntime.Interp.run_schedules ~seeds:10 prog in
    leaks
  in
  Alcotest.(check bool) "buggy leaks dynamically" true (run buggy_skip_done > 0)

let tests =
  [
    Alcotest.test_case "off by default (paper parity)" `Quick test_off_by_default;
    Alcotest.test_case "skipped Done detected" `Quick test_skip_done_detected;
    Alcotest.test_case "balanced Add/Done clean" `Quick test_balanced_clean;
    Alcotest.test_case "Add(2), one Done" `Quick test_add_two_one_done;
    Alcotest.test_case "Add(2), two Dones clean" `Quick test_add_two_two_dones;
    Alcotest.test_case "non-constant Add unmodelable" `Quick
      test_unknown_delta_unmodelable;
    Alcotest.test_case "loop-spawn miss class recovered" `Quick
      test_bugset_waitgroup_class_recovered;
    Alcotest.test_case "dynamic agreement" `Quick test_dynamic_agreement;
  ]
