(* sync.Cond support — the paper's §6 encoding, implemented: a condition
   variable is an unbuffered channel; Wait receives; Signal is a select
   with a send arm and a default (lost when nobody waits); Broadcast is a
   send loop with a default exit.  Static and dynamic semantics are both
   covered, and both agree. *)

module R = Gcatch.Report

let analyse src = Gcatch.Driver.analyse_string ("package p\n" ^ src)

let run ?(seed = 5) src =
  let prog =
    Minigo.Typecheck.check_program
      (Minigo.Parser.parse_string ("package p\n" ^ src))
  in
  Goruntime.Interp.run ~seed prog

(* ---- runtime semantics ---- *)

let test_wait_signal () =
  let r =
    run
      "func main() {\n\
       \tvar cv sync.Cond\n\
       \tdone := make(chan bool)\n\
       \tgo func() {\n\t\tcv.Wait()\n\t\tprintln(\"woken\")\n\t\tdone <- true\n\t}()\n\
       \tsleep(2)\n\
       \tcv.Signal()\n\
       \t<-done\n\
       }"
  in
  Alcotest.(check (list string)) "wait then signal" [ "woken" ] r.output;
  Alcotest.(check int) "no leaks" 0 (List.length r.leaked)

let test_lost_signal () =
  (* signal before any waiter: the waiter blocks forever, like Go *)
  let r =
    run
      "func main() {\n\
       \tvar cv sync.Cond\n\
       \tcv.Signal()\n\
       \tgo func() {\n\t\tcv.Wait()\n\t\tprintln(\"never\")\n\t}()\n\
       \tsleep(2)\n\
       }"
  in
  Alcotest.(check int) "waiter leaked" 1 (List.length r.leaked);
  Alcotest.(check (list string)) "no output" [] r.output

let test_broadcast_wakes_all () =
  let r =
    run
      "func main() {\n\
       \tvar cv sync.Cond\n\
       \tdone := make(chan bool, 3)\n\
       \tfor i := range 3 {\n\
       \t\tgo func(k int) {\n\t\t\tcv.Wait()\n\t\t\tdone <- true\n\t\t}(i)\n\
       \t}\n\
       \tsleep(3)\n\
       \tcv.Broadcast()\n\
       \t<-done\n\
       \t<-done\n\
       \t<-done\n\
       \tprintln(\"all woken\")\n\
       }"
  in
  Alcotest.(check (list string)) "broadcast" [ "all woken" ] r.output;
  Alcotest.(check int) "no leaks" 0 (List.length r.leaked)

let test_signal_wakes_one () =
  let r =
    run
      "func main() {\n\
       \tvar cv sync.Cond\n\
       \tdone := make(chan bool, 2)\n\
       \tgo func() {\n\t\tcv.Wait()\n\t\tdone <- true\n\t}()\n\
       \tgo func() {\n\t\tcv.Wait()\n\t\tdone <- true\n\t}()\n\
       \tsleep(3)\n\
       \tcv.Signal()\n\
       \t<-done\n\
       \tprintln(\"one woken\")\n\
       }"
  in
  Alcotest.(check (list string)) "signal wakes one" [ "one woken" ] r.output;
  Alcotest.(check int) "the other waiter leaks" 1 (List.length r.leaked)

(* ---- static detection ---- *)

let test_missing_signal_detected () =
  (* a Wait that no Signal can ever unblock: the §6 encoding makes this a
     BMOC bug (a receive with no matching send) *)
  let a =
    analyse
      "func f() {\n\
       \tvar cv sync.Cond\n\
       \tgo func() {\n\t\tcv.Wait()\n\t}()\n\
       }"
  in
  Alcotest.(check bool) "wait without signal detected" true
    (List.length a.bmoc >= 1);
  Alcotest.(check bool) "blocked op is the Wait's receive" true
    (List.exists
       (fun (b : R.bmoc_bug) ->
         List.exists
           (fun (o : R.blocked_op) -> o.bo_kind = R.Krecv)
           b.blocked)
       a.bmoc)

let test_lost_signal_race_detected () =
  (* spawn-then-signal is a genuine lost-signal race: when the Signal
     fires before the child reaches Wait, the select takes its default
     and the waiter blocks forever.  The detector must flag it — and the
     runtime must manifest it on some schedule. *)
  let src =
    "func main() {\n\
     \tvar cv sync.Cond\n\
     \tgo func() {\n\t\tcv.Wait()\n\t}()\n\
     \tcv.Signal()\n\
     }"
  in
  let a = analyse src in
  Alcotest.(check bool) "lost-signal race detected" true
    (List.length a.bmoc >= 1);
  let leaks = ref 0 in
  for seed = 1 to 30 do
    if (run ~seed src).leaked <> [] then incr leaks
  done;
  Alcotest.(check bool) "race manifests on some schedules" true (!leaks > 0);
  Alcotest.(check bool) "and not on others" true (!leaks < 30)

let test_signal_never_blocks () =
  (* a signal with no waiter must NOT be reported: its select has a
     default clause *)
  let a = analyse "func f() {\n\tvar cv sync.Cond\n\tcv.Signal()\n}" in
  Alcotest.(check int) "lone signal clean" 0 (List.length a.bmoc)

let test_broadcast_never_blocks () =
  let a = analyse "func f() {\n\tvar cv sync.Cond\n\tcv.Broadcast()\n}" in
  Alcotest.(check int) "lone broadcast clean" 0 (List.length a.bmoc)

let test_ir_shape () =
  (* the lowering must produce the sketch's select-with-default *)
  let _, ir =
    Gcatch.Driver.compile_sources ~name:"cond"
      [ "package p\nfunc f() {\n\tvar cv sync.Cond\n\tcv.Signal()\n\tcv.Wait()\n}" ]
  in
  let f = Option.get (Goir.Ir.find_func ir "f") in
  let has_default_select =
    Array.exists
      (fun (b : Goir.Ir.block) ->
        match b.term with
        | Tselect ([ { arm_op = Arm_send _; _ } ], Some _, _) -> true
        | _ -> false)
      f.blocks
  in
  let has_recv =
    Goir.Ir.fold_insts
      (fun acc (i : Goir.Ir.inst) ->
        acc || match i.idesc with Irecv _ -> true | _ -> false)
      false f
  in
  let has_chan_creation =
    Goir.Ir.fold_insts
      (fun acc (i : Goir.Ir.inst) ->
        acc || match i.idesc with Imake_chan (_, _, Some 0) -> true | _ -> false)
      false f
  in
  Alcotest.(check bool) "Signal is select+send+default" true has_default_select;
  Alcotest.(check bool) "Wait is a receive" true has_recv;
  Alcotest.(check bool) "Cond is an unbuffered channel" true has_chan_creation

let tests =
  [
    Alcotest.test_case "runtime: wait/signal" `Quick test_wait_signal;
    Alcotest.test_case "runtime: lost signal" `Quick test_lost_signal;
    Alcotest.test_case "runtime: broadcast wakes all" `Quick
      test_broadcast_wakes_all;
    Alcotest.test_case "runtime: signal wakes one" `Quick test_signal_wakes_one;
    Alcotest.test_case "static: missing signal detected" `Quick
      test_missing_signal_detected;
    Alcotest.test_case "lost-signal race (static + dynamic)" `Quick
      test_lost_signal_race_detected;
    Alcotest.test_case "static: lone signal clean" `Quick
      test_signal_never_blocks;
    Alcotest.test_case "static: lone broadcast clean" `Quick
      test_broadcast_never_blocks;
    Alcotest.test_case "IR lowering shape (§6 sketch)" `Quick test_ir_shape;
  ]
