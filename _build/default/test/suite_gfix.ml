(* GFix tests: the three strategies, the dispatcher's rejection reasons,
   patch diff sizes, and dynamic validation of every generated patch. *)

module G = Gcatch.Gfix
module R = Gcatch.Report

let analyse src = Gcatch.Driver.analyse_string ("package p\n" ^ src)

let fix_first src =
  let a = analyse src in
  match a.bmoc with
  | [] -> Alcotest.fail "detector found nothing to fix"
  | bug :: _ -> (a, G.dispatch a.source bug)

let expect_strategy name expected src =
  let _, outcome = fix_first src in
  match outcome with
  | G.Fixed f ->
      Alcotest.(check string) name
        (G.strategy_str expected)
        (G.strategy_str f.strategy);
      f
  | G.Not_fixed r -> Alcotest.failf "%s: not fixed: %s" name r

let expect_rejected name substr src =
  let _, outcome = fix_first src in
  match outcome with
  | G.Fixed f -> Alcotest.failf "%s: unexpectedly fixed via %s" name f.description
  | G.Not_fixed r ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        n = 0 || go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: reason %S mentions %S" name r substr)
        true (contains r substr)

let validate_patch name (a : Gcatch.Driver.analysis) (f : G.fix) =
  (* dynamic check only when the program has a main to drive *)
  if Minigo.Ast.find_func a.source "main" <> None then begin
    let seeds = 25 in
    let _, before, _, _ = Goruntime.Interp.run_schedules ~seeds a.source in
    let _, after, _, _ = Goruntime.Interp.run_schedules ~seeds f.patched in
    Alcotest.(check int) (name ^ ": patched never leaks") 0 after;
    ignore before
  end

let fig1_with_main =
  "func Exec(ctx context.Context, r string) (string, error) {\n\
   \toutDone := make(chan error)\n\
   \tgo func(a string) {\n\t\toutDone <- nil\n\t}(r)\n\
   \tselect {\n\
   \tcase err := <-outDone:\n\t\tif err != nil {\n\t\t\treturn \"\", err\n\t\t}\n\
   \tcase <-ctx.Done():\n\t\treturn \"\", ctx.Err()\n\
   \t}\n\
   \treturn \"ok\", nil\n\
   }\n\
   func main() {\n\
   \tctx := background()\n\
   \tgo func(c context.Context) {\n\t\tcancel(c)\n\t}(ctx)\n\
   \tr, err := Exec(ctx, \"x\")\n\
   \tprintln(r, err)\n\
   }"

let test_s1_figure1 () =
  let a, outcome = fix_first fig1_with_main in
  match outcome with
  | G.Fixed f ->
      Alcotest.(check string) "strategy"
        (G.strategy_str G.S1_increase_buffer)
        (G.strategy_str f.strategy);
      Alcotest.(check int) "one changed line" 1 f.changed_lines;
      (* the patch is exactly make(chan error, 1) *)
      let printed = Minigo.Pretty.program_str f.patched in
      Alcotest.(check bool) "buffer bumped" true
        (let sub = "make(chan error, 1)" in
         let n = String.length sub in
         let rec go i =
           i + n <= String.length printed
           && (String.sub printed i n = sub || go (i + 1))
         in
         go 0);
      validate_patch "S1" a f
  | G.Not_fixed r -> Alcotest.failf "figure 1 not fixed: %s" r

let test_s2_figure3 () =
  let src =
    "func start(stop chan bool) {\n\tn := 0\n\tn++\n\t<-stop\n}\n\
     func TestD(t *testing.T) {\n\
     \tstop := make(chan bool)\n\
     \tgo start(stop)\n\
     \terr := errorf(\"x\")\n\
     \tif err != nil {\n\t\tt.Fatalf(\"fail\")\n\t}\n\
     \tstop <- true\n\
     }\n\
     func main() {\n\tvar t *testing.T\n\tTestD(t)\n}"
  in
  let a, outcome = fix_first src in
  match outcome with
  | G.Fixed f ->
      Alcotest.(check string) "strategy" (G.strategy_str G.S2_defer_op)
        (G.strategy_str f.strategy);
      (* the original send must be gone and a defer added *)
      let fd = Option.get (Minigo.Ast.find_func f.patched "TestD") in
      let has_defer_send =
        List.exists
          (fun (s : Minigo.Ast.stmt) ->
            match s.s with
            | Minigo.Ast.DeferStmt (Minigo.Ast.DeferSend _) -> true
            | _ -> false)
          fd.body
      in
      let has_plain_send =
        List.exists
          (fun (s : Minigo.Ast.stmt) ->
            match s.s with Minigo.Ast.Send _ -> true | _ -> false)
          fd.body
      in
      Alcotest.(check bool) "defer send added" true has_defer_send;
      Alcotest.(check bool) "original send removed" false has_plain_send;
      validate_patch "S2" a f
  | G.Not_fixed r -> Alcotest.failf "figure 3 not fixed: %s" r

let test_s2_defer_close () =
  (* all o1s are closes: the patch defers the close *)
  let src =
    "func start(stop chan bool) {\n\t<-stop\n}\n\
     func Run(t *testing.T) {\n\
     \tstop := make(chan bool)\n\
     \tgo start(stop)\n\
     \terr := errorf(\"x\")\n\
     \tif err != nil {\n\t\tt.Fatalf(\"fail\")\n\t}\n\
     \tclose(stop)\n\
     }"
  in
  let _, outcome = fix_first src in
  match outcome with
  | G.Fixed f -> (
      let fd = Option.get (Minigo.Ast.find_func f.patched "Run") in
      match
        List.find_opt
          (fun (s : Minigo.Ast.stmt) ->
            match s.s with
            | Minigo.Ast.DeferStmt (Minigo.Ast.DeferClose _) -> true
            | _ -> false)
          fd.body
      with
      | Some _ -> ()
      | None -> Alcotest.fail "expected defer close(stop)")
  | G.Not_fixed r -> Alcotest.failf "close variant not fixed: %s" r

let test_s3_figure4 () =
  let src =
    "func Inter(abort chan bool, n int) int {\n\
     \tsched := make(chan string)\n\
     \tgo func(k int) {\n\t\tfor i := range k {\n\t\t\tsched <- \"l\"\n\t\t}\n\t}(n)\n\
     \tfor {\n\
     \t\tselect {\n\tcase <-abort:\n\t\treturn 0\n\tcase line := <-sched:\n\t\tif len(line) == 0 {\n\t\t\treturn 1\n\t\t}\n\t}\n\
     \t}\n\
     }\n\
     func main() {\n\tabort := make(chan bool, 1)\n\tabort <- true\n\tprintln(Inter(abort, 2))\n}"
  in
  let a, outcome = fix_first src in
  match outcome with
  | G.Fixed f ->
      Alcotest.(check string) "strategy" (G.strategy_str G.S3_add_stop)
        (G.strategy_str f.strategy);
      (* a stop channel must be declared and deferred-closed *)
      let fd = Option.get (Minigo.Ast.find_func f.patched "Inter") in
      let has_stop_decl =
        List.exists
          (fun (s : Minigo.Ast.stmt) ->
            match s.s with
            | Minigo.Ast.Define ([ v ], { e = Minigo.Ast.MakeChan _; _ }) ->
                v = "schedStop"
            | _ -> false)
          fd.body
      in
      Alcotest.(check bool) "stop channel declared" true has_stop_decl;
      validate_patch "S3" a f
  | G.Not_fixed r -> Alcotest.failf "figure 4 not fixed: %s" r

(* ---- rejections (the paper's §5.3 unfixed categories) ---- *)

let test_reject_parent_blocked () =
  expect_rejected "parent blocked" "parent"
    "func Wait(flag bool) int {\n\
     \tack := make(chan int)\n\
     \tgo func(skip bool) {\n\t\tif skip {\n\t\t\treturn\n\t\t}\n\t\tack <- 1\n\t}(flag)\n\
     \tv := <-ack\n\
     \treturn v\n\
     }"

let test_reject_side_effects () =
  expect_rejected "side effects after o2" "side effect"
    "type St struct {\n\tcount int\n}\n\
     func Rec(ctx context.Context, s St) int {\n\
     \tfin := make(chan bool)\n\
     \tgo func(x St) {\n\t\tfin <- true\n\t\tx.count = x.count + 1\n\t\tprintln(\"updated\")\n\t}(s)\n\
     \tselect {\n\tcase <-fin:\n\t\treturn s.count\n\tcase <-ctx.Done():\n\t\treturn 0\n\t}\n\
     }"

let test_reject_mutex_bug () =
  let src =
    "type Box struct {\n\tmu sync.Mutex\n\tv int\n}\n\
     func Handoff(x int) int {\n\
     \tb := Box{v: x}\n\
     \tready := make(chan bool)\n\
     \tgo func(bb Box) {\n\t\tbb.mu.Lock()\n\t\tready <- true\n\t\tbb.mu.Unlock()\n\t}(b)\n\
     \tb.mu.Lock()\n\
     \t<-ready\n\
     \tb.mu.Unlock()\n\
     \treturn b.v\n\
     }"
  in
  let a = analyse src in
  let outcomes = G.fix_all a.source a.bmoc in
  Alcotest.(check bool) "mutex-involved bugs skipped" true
    (List.for_all
       (fun ((b : R.bmoc_bug), o) ->
         match (b.kind, o) with
         | R.Chan_and_mutex, G.Not_fixed _ -> true
         | R.Chan_and_mutex, G.Fixed _ -> false
         | R.Chan_only, _ -> true)
       outcomes)

(* ---- diff metric ---- *)

let test_changed_lines_identity () =
  Alcotest.(check int) "no change" 0 (Gcatch.Patch.changed_lines "a\nb\nc" "a\nb\nc")

let test_changed_lines_replace () =
  Alcotest.(check int) "one replacement" 1
    (Gcatch.Patch.changed_lines "a\nb\nc" "a\nX\nc")

let test_changed_lines_insert () =
  Alcotest.(check int) "pure insertion" 2
    (Gcatch.Patch.changed_lines "a\nc" "a\nb1\nb2\nc")

let prop_diff_zero_iff_equal =
  QCheck.Test.make ~name:"changed_lines = 0 iff texts equal" ~count:100
    QCheck.(pair (small_list (string_gen_of_size Gen.(0 -- 5) Gen.printable))
              (small_list (string_gen_of_size Gen.(0 -- 5) Gen.printable)))
    (fun (a, b) ->
      let clean =
        List.map (String.map (fun c -> if c = '\n' then '_' else c))
      in
      let a = String.concat "\n" (clean a) and b = String.concat "\n" (clean b) in
      (Gcatch.Patch.changed_lines a b = 0) = (a = b))

(* every corpus fix validates dynamically when wrapped in a driver *)
let test_all_strategies_small_diffs () =
  (* S1 changes 1 line; S2 a handful; S3 the most — the paper's ordering *)
  let f1 = expect_strategy "s1" G.S1_increase_buffer fig1_with_main in
  Alcotest.(check bool) "S1 = 1 line" true (f1.changed_lines = 1);
  let src3 =
    "func Inter(abort chan bool, n int) int {\n\
     \tsched := make(chan string)\n\
     \tgo func(k int) {\n\t\tfor i := range k {\n\t\t\tsched <- \"l\"\n\t\t}\n\t}(n)\n\
     \tselect {\n\tcase <-abort:\n\t\treturn 0\n\tcase <-sched:\n\t\treturn 1\n\t}\n\
     }"
  in
  let _, o3 = fix_first src3 in
  match o3 with
  | G.Fixed f3 ->
      Alcotest.(check bool) "S3 larger than S1" true (f3.changed_lines > f1.changed_lines)
  | G.Not_fixed r -> Alcotest.failf "s3 not fixed: %s" r

let tests =
  [
    Alcotest.test_case "Strategy-I on figure 1" `Quick test_s1_figure1;
    Alcotest.test_case "Strategy-II on figure 3" `Quick test_s2_figure3;
    Alcotest.test_case "Strategy-II defers close" `Quick test_s2_defer_close;
    Alcotest.test_case "Strategy-III on figure 4" `Quick test_s3_figure4;
    Alcotest.test_case "reject: parent blocked" `Quick test_reject_parent_blocked;
    Alcotest.test_case "reject: side effects" `Quick test_reject_side_effects;
    Alcotest.test_case "reject: mutex involved" `Quick test_reject_mutex_bug;
    Alcotest.test_case "diff: identity" `Quick test_changed_lines_identity;
    Alcotest.test_case "diff: replacement" `Quick test_changed_lines_replace;
    Alcotest.test_case "diff: insertion" `Quick test_changed_lines_insert;
    QCheck_alcotest.to_alcotest prop_diff_zero_iff_equal;
    Alcotest.test_case "strategy diff ordering" `Quick test_all_strategies_small_diffs;
  ]
