module Ir = Goir.Ir

(* Call graph construction.

   Direct calls and [go] spawns produce exact edges.  Indirect calls
   (through function values) are resolved using alias results; when alias
   information is empty we fall back to matching every program function
   with the same arity — the same over-approximation the paper's CHA
   package makes, and the paper's documented source of call-graph false
   positives (§5.1).  As in the paper, when the fallback produces more
   than one candidate we mark the call [ambiguous] so detectors can choose
   to ignore it. *)

type edge_kind = Ecall | Ego

type edge = {
  caller : string;
  callee : string;
  site : Ir.pp;
  kind : edge_kind;
  ambiguous : bool;
}

type t = {
  edges : edge list;
  succs : (string, edge list) Hashtbl.t;
  preds : (string, edge list) Hashtbl.t;
  prog : Ir.program;
}

let arity (f : Ir.func) = List.length f.params

(* ------------------------------------------------- per-file sites ---- *)

(* Call-site extraction is per function (pure, cacheable per file);
   edge resolution — which needs the whole program for existence checks,
   alias results, and the CHA arity fallback — happens afterwards over
   the collected sites. *)

type site =
  | Sdirect of string * Ir.pp * edge_kind
  | Sindirect of Ir.var * int * Ir.pp (* function var, arg count, site *)

type func_sites = { cs_name : string; cs_sites : site list }

let extract_func (f : Ir.func) : func_sites =
  let sites = ref [] in
  Ir.iter_insts
    (fun (i : Ir.inst) ->
      match i.idesc with
      | Icall (_, g, _) -> sites := Sdirect (g, i.ipp, Ecall) :: !sites
      | Igo (g, _) -> sites := Sdirect (g, i.ipp, Ego) :: !sites
      | Icall_indirect (_, fv, args) ->
          sites := Sindirect (fv, List.length args, i.ipp) :: !sites
      | _ -> ())
    f;
  { cs_name = f.name; cs_sites = List.rev !sites }

let rebase_sites off (cs : func_sites) : func_sites =
  if off = 0 then cs
  else
    {
      cs with
      cs_sites =
        List.map
          (function
            | Sdirect (g, pp, k) -> Sdirect (g, pp + off, k)
            | Sindirect (fv, n, pp) -> Sindirect (fv, n, pp + off))
          cs.cs_sites;
    }

(* Resolve sites into edges.  The site lists are re-sorted by function
   name so the edge list comes out exactly as the whole-program builder
   produced it ([Ir.funcs_list] order, reverse-cons discovery order). *)
let build_from_sites ?alias (prog : Ir.program) (sites : func_sites list) : t
    =
  let sites =
    List.sort (fun a b -> String.compare a.cs_name b.cs_name) sites
  in
  let edges = ref [] in
  let add ?(ambiguous = false) caller callee site kind =
    if Hashtbl.mem prog.funcs callee then
      edges := { caller; callee; site; kind; ambiguous } :: !edges
  in
  List.iter
    (fun cs ->
      List.iter
        (fun s ->
          match s with
          | Sdirect (g, pp, kind) -> add cs.cs_name g pp kind
          | Sindirect (fv, argc, pp) -> (
              let candidates =
                match alias with
                | Some al ->
                    Alias.ObjSet.fold
                      (fun o acc ->
                        match o with Alias.Afunc g -> g :: acc | _ -> acc)
                      (Alias.pts_var al cs.cs_name fv)
                      []
                | None -> []
              in
              match candidates with
              | [] ->
                  (* CHA-style fallback: all functions of matching arity *)
                  let matching =
                    List.filter
                      (fun (g : Ir.func) -> arity g = argc)
                      (Ir.funcs_list prog)
                  in
                  let ambiguous = List.length matching > 1 in
                  List.iter
                    (fun (g : Ir.func) ->
                      add ~ambiguous cs.cs_name g.name pp Ecall)
                    matching
              | [ g ] -> add cs.cs_name g pp Ecall
              | gs ->
                  List.iter
                    (fun g -> add ~ambiguous:true cs.cs_name g pp Ecall)
                    gs))
        cs.cs_sites)
    sites;
  let succs = Hashtbl.create 16 in
  let preds = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace succs e.caller
        (e :: (Option.value (Hashtbl.find_opt succs e.caller) ~default:[]));
      Hashtbl.replace preds e.callee
        (e :: (Option.value (Hashtbl.find_opt preds e.callee) ~default:[])))
    !edges;
  { edges = !edges; succs; preds; prog }

let build ?alias (prog : Ir.program) : t =
  build_from_sites ?alias prog
    (List.map extract_func (Ir.funcs_list prog))

let callees t f = Option.value (Hashtbl.find_opt t.succs f) ~default:[]
let callers t f = Option.value (Hashtbl.find_opt t.preds f) ~default:[]

(* Transitive closure of functions reachable from [f] (via calls and
   spawns), including [f] itself. *)
let reachable_from t f =
  let seen = Hashtbl.create 16 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      List.iter (fun e -> go e.callee) (callees t f)
    end
  in
  go f;
  seen

(* Does the call-subtree rooted at [f] contain an instruction satisfying
   [pred]?  Used to skip callee bodies during path enumeration (§3.3). *)
let subtree_contains t prog f pred =
  let reach = reachable_from t f in
  Hashtbl.fold
    (fun g () acc ->
      acc
      ||
      match Ir.find_func prog g with
      | Some fn ->
          Ir.fold_insts (fun acc i -> acc || pred i) false fn
          || Array.exists
               (fun (b : Ir.block) ->
                 match b.term with Tselect _ -> true | _ -> false)
               fn.blocks
      | None -> false)
    reach false

(* Lowest common ancestor of a set of functions in the call graph: the
   function with the smallest reachable-set that can reach all of them.
   The paper uses this to define a channel's analysis scope (§3.2). *)
let ancestors t f =
  let seen = Hashtbl.create 16 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      List.iter (fun e -> go e.caller) (callers t f)
    end
  in
  go f;
  seen

(* The covering candidates are exactly the common ancestors of [fs]
   (reach(g) ∋ f ⟺ g caller-reaches f — same edge set, walked
   backwards), so intersect the ancestor sets instead of testing every
   program function: one forward walk per surviving candidate, not one
   per function.  The winner is unchanged — smallest reachable set,
   ties to the lexicographically first name, which is the order the old
   stable sort over the name-sorted function list produced. *)
let lca t (fs : string list) : string option =
  match fs with
  | [] -> None
  | [ f ] -> Some f
  | f0 :: rest ->
      let cand0 =
        Hashtbl.fold (fun g () acc -> g :: acc) (ancestors t f0) []
      in
      let cands =
        List.fold_left
          (fun acc f ->
            let a = ancestors t f in
            List.filter (fun g -> Hashtbl.mem a g) acc)
          cand0 rest
      in
      let covering =
        List.filter_map
          (fun g ->
            if Hashtbl.mem t.prog.Ir.funcs g then
              Some (g, Hashtbl.length (reachable_from t g))
            else None)
          cands
      in
      (match covering with
      | [] -> None
      | first :: others ->
          let best, _ =
            List.fold_left
              (fun (bg, bs) (g, s) ->
                if s < bs || (s = bs && g < bg) then (g, s) else (bg, bs))
              first others
          in
          Some best)
