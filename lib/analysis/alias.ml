module Ir = Goir.Ir

(* Andersen-style, flow-insensitive, field-sensitive alias analysis.

   GCatch "distinguishes primitives using their static creation sites and
   leverages alias analysis to determine whether an operation is performed
   on a primitive" (paper §3.1).  We reproduce that: every channel, mutex,
   waitgroup and struct is identified by an abstract object, and the solver
   computes which objects each variable (and struct field) may denote.

   Abstract objects:
   - [Achan pp]      — a make(chan) site
   - [Astruct pp]    — a struct allocation / zero-valued declaration site
   - [Afunc name]    — a function value
   - [Aext (f, p)]   — an opaque object standing for the value a parameter
                       [p] of entry function [f] receives from outside the
                       analysed program (library analysis mode)
   - [Aprim (owner, field)] — a primitive living in field [field] of
                       another object (e.g. a mutex field of a struct, or
                       the $done channel of a context) *)

module SMap = Map.Make (String)

type obj =
  | Achan of Ir.pp
  | Astruct of Ir.pp
  | Afunc of string
  | Aext of string * string
  | Aprim of obj * string

let rec obj_str = function
  | Achan p -> Printf.sprintf "chan@%d" p
  | Astruct p -> Printf.sprintf "struct@%d" p
  | Afunc f -> Printf.sprintf "func:%s" f
  | Aext (f, p) -> Printf.sprintf "ext:%s.%s" f p
  | Aprim (o, f) -> Printf.sprintf "%s.%s" (obj_str o) f

module ObjSet = Set.Make (struct
  type t = obj

  let compare = compare
end)

type t = {
  pts : (string * string, ObjSet.t) Hashtbl.t; (* (func, var) -> objects *)
  fields : (obj * string, ObjSet.t) Hashtbl.t;
  prog : Ir.program;
  mutable changed : bool;
  chan_elem : (Ir.pp, Minigo.Ast.typ) Hashtbl.t;
  chan_cap : (Ir.pp, int option) Hashtbl.t;
  chan_loc : (Ir.pp, Minigo.Loc.t) Hashtbl.t;
}

let get tbl key =
  match Hashtbl.find_opt tbl key with Some s -> s | None -> ObjSet.empty

let add_to st tbl key objs =
  let cur = get tbl key in
  let next = ObjSet.union cur objs in
  if not (ObjSet.equal cur next) then begin
    Hashtbl.replace tbl key next;
    st.changed <- true
  end

let pts_var st f v = get st.pts (f, v)
let pts_field st obj fld = get st.fields (obj, fld)

(* Materialise a primitive object for a field that nothing ever stores
   into: mutex / waitgroup fields, the synthetic $done channel of a
   context, channels embedded in externally-created structs. *)
let ensure_field st obj fld =
  let cur = get st.fields (obj, fld) in
  if ObjSet.is_empty cur then
    add_to st st.fields (obj, fld) (ObjSet.singleton (Aprim (obj, fld)))

let pts_operand st fname (o : Ir.operand) : ObjSet.t =
  match o with
  | Ovar v -> pts_var st fname v
  | Oconst_func f -> ObjSet.singleton (Afunc f)
  | Oplace (Pvar v) -> pts_var st fname v
  | Oplace (Pfield (v, fld)) ->
      ObjSet.fold
        (fun obj acc -> ObjSet.union acc (pts_field st obj fld))
        (pts_var st fname v) ObjSet.empty
  | Oconst_int _ | Oconst_bool _ | Oconst_str _ | Onil -> ObjSet.empty

(* Objects a place may denote. *)
let pts_place st fname (p : Ir.place) : ObjSet.t =
  match p with
  | Pvar v -> pts_var st fname v
  | Pfield (v, fld) ->
      ObjSet.fold
        (fun obj acc ->
          ensure_field st obj fld;
          ObjSet.union acc (pts_field st obj fld))
        (pts_var st fname v) ObjSet.empty

let is_pointerish (t : Minigo.Ast.typ) =
  match t with
  | Tchan _ | Tmutex | Twaitgroup | Tcond | Tstruct _ | Tcontext | Tfunc _ | Tany
    ->
      true
  | Tint | Tbool | Tstring | Tunit | Ttesting | Terror -> false

(* Seed external objects for parameters of functions nobody calls inside
   the program (entry points / exported library functions). *)
let seed_entry_params st called =
  List.iter
    (fun (f : Ir.func) ->
      if not (Hashtbl.mem called f.name) then
        List.iter
          (fun (v, ty) ->
            if is_pointerish ty then
              add_to st st.pts (f.name, v) (ObjSet.singleton (Aext (f.name, v))))
          f.params)
    (Ir.funcs_list st.prog)

let callee_candidates st fname (fv : Ir.var) =
  ObjSet.fold
    (fun o acc -> match o with Afunc g -> g :: acc | _ -> acc)
    (pts_var st fname fv) []

(* ------------------------------------------- per-function summaries --- *)

(* The analysis is split into a per-function fact-extraction pass (pure,
   cacheable per file, parallelisable) and a sequential global fixpoint
   over the extracted summaries.  A summary records, in the exact order
   the old monolithic pass visited them, every instruction the solver
   interprets — order matters because [ensure_field] materialises a
   primitive object only for fields that are still empty when first
   touched, so the visit order is part of the observable result.

   Summaries extracted from file-local IR carry file-local program
   points; [rebase_summary] shifts them by the file's assembly offset
   (only the two creation-site facts embed a point). *)

type fact =
  | Fmake_chan of Ir.var * Ir.pp * Minigo.Ast.typ * int option * Minigo.Loc.t
  | Fmake_struct of Ir.var * Ir.pp
  | Fassign of Ir.var * Ir.operand
  | Ffield_load of Ir.var * Ir.var * string
  | Ffield_store of Ir.var * string * Ir.operand
  | Fsend of Ir.place * Ir.operand
  | Frecv of Ir.var * Ir.place
  | Ftouch of Ir.place
      (* a place the old pass looked up for its side effect only
         (a select receive that binds nothing): [pts_place] may
         materialise a primitive field object *)
  | Fcall of Ir.var list * string * Ir.operand list
  | Fcall_indirect of Ir.var list * Ir.var * Ir.operand list
  | Fgo of string * Ir.operand list

type func_summary = {
  fs_name : string;
  fs_params : (Ir.var * Minigo.Ast.typ) list;
  fs_returns : Ir.operand list list; (* one per Treturn, in block order *)
  fs_facts : fact list;
  fs_warm : Ir.place list; (* places the post-fixpoint warm pass touches *)
}

let extract_func (f : Ir.func) : func_summary =
  let facts = ref [] in
  let warm = ref [] in
  let push x = facts := x :: !facts in
  let wplace p = warm := p :: !warm in
  let woperand = function Ir.Oplace p -> wplace p | _ -> () in
  Ir.iter_insts
    (fun (i : Ir.inst) ->
      (match i.idesc with
      | Imake_chan (v, elem, cap) ->
          push (Fmake_chan (v, i.ipp, elem, cap, i.iloc))
      | Imake_struct (v, _) -> push (Fmake_struct (v, i.ipp))
      | Iassign (v, o) -> push (Fassign (v, o))
      | Ifield_load (v, b, fld) -> push (Ffield_load (v, b, fld))
      | Ifield_store (b, fld, o) -> push (Ffield_store (b, fld, o))
      | Isend (p, o) -> push (Fsend (p, o))
      | Irecv (Some v, p, _) -> push (Frecv (v, p))
      | Irecv (None, _, _) | Iclose _ | Ilock _ | Iunlock _ -> ()
      | Iwg_add _ | Iwg_done _ | Iwg_wait _ -> ()
      | Icall (rets, g, args) -> push (Fcall (rets, g, args))
      | Icall_indirect (rets, fv, args) ->
          push (Fcall_indirect (rets, fv, args))
      | Igo (g, args) -> push (Fgo (g, args))
      | Itesting_fatal _ | Ibinop _ | Iunop _ | Isleep _ | Iprint _ | Inop _ ->
          ());
      match i.idesc with
      | Isend (p, o) ->
          wplace p;
          woperand o
      | Irecv (_, p, _) | Iclose p | Ilock p | Iunlock p | Iwg_done p
      | Iwg_wait p ->
          wplace p
      | Iwg_add (p, o) ->
          wplace p;
          woperand o
      | Icall (_, _, os) | Icall_indirect (_, _, os) | Igo (_, os)
      | Iprint os ->
          List.iter woperand os
      | Iassign (_, o) | Ifield_store (_, _, o) | Iunop (_, _, o) | Isleep o
        ->
          woperand o
      | Ibinop (_, _, o1, o2) ->
          woperand o1;
          woperand o2
      | Imake_chan _ | Imake_struct _ | Itesting_fatal _ | Ifield_load _
      | Inop _ ->
          ())
    f;
  (* select arms access places too *)
  Array.iter
    (fun (b : Ir.block) ->
      match b.term with
      | Tselect (arms, _, _) ->
          List.iter
            (fun (a : Ir.select_arm) ->
              (match a.arm_op with
              | Arm_recv (p, Some v) -> push (Frecv (v, p))
              | Arm_recv (p, None) -> push (Ftouch p)
              | Arm_send (p, o) -> push (Fsend (p, o)));
              match a.arm_op with
              | Arm_recv (p, _) -> wplace p
              | Arm_send (p, o) ->
                  wplace p;
                  woperand o)
            arms
      | _ -> ())
    f.blocks;
  let returns =
    List.rev
      (Array.fold_left
         (fun acc (b : Ir.block) ->
           match b.term with Treturn os -> os :: acc | _ -> acc)
         [] f.blocks)
  in
  {
    fs_name = f.name;
    fs_params = f.params;
    fs_returns = returns;
    fs_facts = List.rev !facts;
    fs_warm = List.rev !warm;
  }

let rebase_fact off (fact : fact) : fact =
  match fact with
  | Fmake_chan (v, pp, elem, cap, loc) ->
      Fmake_chan (v, pp + off, elem, cap, loc)
  | Fmake_struct (v, pp) -> Fmake_struct (v, pp + off)
  | Fassign _ | Ffield_load _ | Ffield_store _ | Fsend _ | Frecv _ | Ftouch _
  | Fcall _ | Fcall_indirect _ | Fgo _ ->
      fact

let rebase_summary off (s : func_summary) : func_summary =
  if off = 0 then s
  else { s with fs_facts = List.map (rebase_fact off) s.fs_facts }

(* One propagation pass over every summary. *)
let propagate st by_name (summaries : func_summary list) =
  let link_call st caller (callee : func_summary) args rets =
    (* arguments flow into parameters *)
    List.iteri
      (fun i (pv, _) ->
        match List.nth_opt args i with
        | Some a ->
            add_to st st.pts (callee.fs_name, pv) (pts_operand st caller a)
        | None -> ())
      callee.fs_params;
    (* returned operands flow into result variables *)
    List.iter
      (fun os ->
        List.iteri
          (fun i r ->
            match List.nth_opt os i with
            | Some o ->
                add_to st st.pts (caller, r) (pts_operand st callee.fs_name o)
            | None -> ())
          rets)
      callee.fs_returns
  in
  List.iter
    (fun s ->
      let fname = s.fs_name in
      List.iter
        (fun fact ->
          match fact with
          | Fmake_chan (v, pp, elem, cap, loc) ->
              Hashtbl.replace st.chan_elem pp elem;
              Hashtbl.replace st.chan_cap pp cap;
              Hashtbl.replace st.chan_loc pp loc;
              add_to st st.pts (fname, v) (ObjSet.singleton (Achan pp))
          | Fmake_struct (v, pp) ->
              add_to st st.pts (fname, v) (ObjSet.singleton (Astruct pp))
          | Fassign (v, o) ->
              add_to st st.pts (fname, v) (pts_operand st fname o)
          | Ffield_load (v, b, fld) ->
              ObjSet.iter
                (fun obj ->
                  ensure_field st obj fld;
                  add_to st st.pts (fname, v) (pts_field st obj fld))
                (pts_var st fname b)
          | Ffield_store (b, fld, o) ->
              ObjSet.iter
                (fun obj ->
                  add_to st st.fields (obj, fld) (pts_operand st fname o))
                (pts_var st fname b)
          | Fsend (p, o) ->
              (* sending a pointer-ish value through a channel transfers
                 it to every receive bound to an aliased channel.  The
                 paper notes its alias package cannot do this (17 FPs);
                 we model the channel's payload as field $elem of the
                 channel object, giving GCatch strictly better alias
                 precision than the original implementation had. *)
              ObjSet.iter
                (fun obj ->
                  add_to st st.fields (obj, "$elem") (pts_operand st fname o))
                (pts_place st fname p)
          | Frecv (v, p) ->
              ObjSet.iter
                (fun obj ->
                  add_to st st.pts (fname, v) (pts_field st obj "$elem"))
                (pts_place st fname p)
          | Ftouch p -> ignore (pts_place st fname p)
          | Fcall (rets, g, args) -> (
              match Hashtbl.find_opt by_name g with
              | Some callee -> link_call st fname callee args rets
              | None -> ())
          | Fcall_indirect (rets, fv, args) ->
              List.iter
                (fun g ->
                  match Hashtbl.find_opt by_name g with
                  | Some callee -> link_call st fname callee args rets
                  | None -> ())
                (callee_candidates st fname fv)
          | Fgo (g, args) -> (
              match Hashtbl.find_opt by_name g with
              | Some callee -> link_call st fname callee args []
              | None -> ()))
        s.fs_facts)
    summaries

(* The sequential global fixpoint over per-function summaries.  The
   summary list is re-sorted by function name so the solve visits
   functions in exactly the order the old whole-program pass did
   ([Ir.funcs_list] sorts by name) — per-file callers can hand the
   summaries over in any order. *)
let solve (prog : Ir.program) (summaries : func_summary list) : t =
  let summaries =
    List.sort (fun a b -> String.compare a.fs_name b.fs_name) summaries
  in
  let by_name = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_name s.fs_name s) summaries;
  let st =
    {
      pts = Hashtbl.create 64;
      fields = Hashtbl.create 64;
      prog;
      changed = true;
      chan_elem = Hashtbl.create 16;
      chan_cap = Hashtbl.create 16;
      chan_loc = Hashtbl.create 16;
    }
  in
  (* functions that are called (directly or spawned) somewhere *)
  let called = Hashtbl.create 16 in
  List.iter
    (fun s ->
      List.iter
        (fun fact ->
          match fact with
          | Fcall (_, g, _) | Fgo (g, _) -> Hashtbl.replace called g ()
          | _ -> ())
        s.fs_facts)
    summaries;
  seed_entry_params st called;
  let rounds = ref 0 in
  while st.changed && !rounds < 100 do
    st.changed <- false;
    incr rounds;
    propagate st by_name summaries
  done;
  (* Warm every field place the program can ever query: [pts_place]
     materialises primitive objects for never-stored fields on first
     lookup ([ensure_field]), and detectors query places from several
     domains at once — after this pass those queries are read-only. *)
  List.iter
    (fun s ->
      List.iter (fun p -> ignore (pts_place st s.fs_name p)) s.fs_warm)
    summaries;
  st

let analyse (prog : Ir.program) : t =
  solve prog (List.map extract_func (Ir.funcs_list prog))

(* ------------------------------------------------------------ queries *)

(* All channel-like objects a place may denote. *)
let channels_of_place st fname p =
  ObjSet.filter
    (function Achan _ | Aprim _ | Aext _ -> true | _ -> false)
    (pts_place st fname p)

let objects_of_place = pts_place

(* Static capacity of a channel object, when known. *)
let capacity st = function
  | Achan pp -> ( match Hashtbl.find_opt st.chan_cap pp with Some c -> c | None -> None)
  | Aprim _ | Aext _ -> None (* externally created: capacity unknown *)
  | _ -> None

let creation_loc st = function
  | Achan pp -> Hashtbl.find_opt st.chan_loc pp
  | _ -> None

(* Do two places possibly alias (share an object)? *)
let may_alias st f1 p1 f2 p2 =
  not (ObjSet.is_empty (ObjSet.inter (pts_place st f1 p1) (pts_place st f2 p2)))

let all_channel_objects st =
  let acc = ref ObjSet.empty in
  Hashtbl.iter
    (fun _ s ->
      ObjSet.iter
        (fun o -> match o with Achan _ -> acc := ObjSet.add o !acc | _ -> ())
        s)
    st.pts;
  !acc
