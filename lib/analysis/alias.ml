module Ir = Goir.Ir

(* Andersen-style, flow-insensitive, field-sensitive alias analysis.

   GCatch "distinguishes primitives using their static creation sites and
   leverages alias analysis to determine whether an operation is performed
   on a primitive" (paper §3.1).  We reproduce that: every channel, mutex,
   waitgroup and struct is identified by an abstract object, and the solver
   computes which objects each variable (and struct field) may denote.

   Abstract objects:
   - [Achan pp]      — a make(chan) site
   - [Astruct pp]    — a struct allocation / zero-valued declaration site
   - [Afunc name]    — a function value
   - [Aext (f, p)]   — an opaque object standing for the value a parameter
                       [p] of entry function [f] receives from outside the
                       analysed program (library analysis mode)
   - [Aprim (owner, field)] — a primitive living in field [field] of
                       another object (e.g. a mutex field of a struct, or
                       the $done channel of a context) *)

module SMap = Map.Make (String)

type obj =
  | Achan of Ir.pp
  | Astruct of Ir.pp
  | Afunc of string
  | Aext of string * string
  | Aprim of obj * string

let rec obj_str = function
  | Achan p -> Printf.sprintf "chan@%d" p
  | Astruct p -> Printf.sprintf "struct@%d" p
  | Afunc f -> Printf.sprintf "func:%s" f
  | Aext (f, p) -> Printf.sprintf "ext:%s.%s" f p
  | Aprim (o, f) -> Printf.sprintf "%s.%s" (obj_str o) f

module ObjSet = Set.Make (struct
  type t = obj

  let compare = compare
end)

type t = {
  pts : (string * string, ObjSet.t) Hashtbl.t; (* (func, var) -> objects *)
  fields : (obj * string, ObjSet.t) Hashtbl.t;
  prog : Ir.program;
  mutable changed : bool;
  chan_elem : (Ir.pp, Minigo.Ast.typ) Hashtbl.t;
  chan_cap : (Ir.pp, int option) Hashtbl.t;
  chan_loc : (Ir.pp, Minigo.Loc.t) Hashtbl.t;
}

let get tbl key =
  match Hashtbl.find_opt tbl key with Some s -> s | None -> ObjSet.empty

let add_to st tbl key objs =
  let cur = get tbl key in
  let next = ObjSet.union cur objs in
  if not (ObjSet.equal cur next) then begin
    Hashtbl.replace tbl key next;
    st.changed <- true
  end

let pts_var st f v = get st.pts (f, v)
let pts_field st obj fld = get st.fields (obj, fld)

(* Materialise a primitive object for a field that nothing ever stores
   into: mutex / waitgroup fields, the synthetic $done channel of a
   context, channels embedded in externally-created structs. *)
let ensure_field st obj fld =
  let cur = get st.fields (obj, fld) in
  if ObjSet.is_empty cur then
    add_to st st.fields (obj, fld) (ObjSet.singleton (Aprim (obj, fld)))

let pts_operand st fname (o : Ir.operand) : ObjSet.t =
  match o with
  | Ovar v -> pts_var st fname v
  | Oconst_func f -> ObjSet.singleton (Afunc f)
  | Oplace (Pvar v) -> pts_var st fname v
  | Oplace (Pfield (v, fld)) ->
      ObjSet.fold
        (fun obj acc -> ObjSet.union acc (pts_field st obj fld))
        (pts_var st fname v) ObjSet.empty
  | Oconst_int _ | Oconst_bool _ | Oconst_str _ | Onil -> ObjSet.empty

(* Objects a place may denote. *)
let pts_place st fname (p : Ir.place) : ObjSet.t =
  match p with
  | Pvar v -> pts_var st fname v
  | Pfield (v, fld) ->
      ObjSet.fold
        (fun obj acc ->
          ensure_field st obj fld;
          ObjSet.union acc (pts_field st obj fld))
        (pts_var st fname v) ObjSet.empty

let is_pointerish (t : Minigo.Ast.typ) =
  match t with
  | Tchan _ | Tmutex | Twaitgroup | Tcond | Tstruct _ | Tcontext | Tfunc _ | Tany
    ->
      true
  | Tint | Tbool | Tstring | Tunit | Ttesting | Terror -> false

(* Seed external objects for parameters of functions nobody calls inside
   the program (entry points / exported library functions). *)
let seed_entry_params st called =
  List.iter
    (fun (f : Ir.func) ->
      if not (Hashtbl.mem called f.name) then
        List.iter
          (fun (v, ty) ->
            if is_pointerish ty then
              add_to st st.pts (f.name, v) (ObjSet.singleton (Aext (f.name, v))))
          f.params)
    (Ir.funcs_list st.prog)

let callee_candidates st fname (fv : Ir.var) =
  ObjSet.fold
    (fun o acc -> match o with Afunc g -> g :: acc | _ -> acc)
    (pts_var st fname fv) []

let arm_place (a : Ir.select_arm) =
  match a.arm_op with Arm_recv (p, _) | Arm_send (p, _) -> p

(* One propagation pass over every instruction of every function. *)
let propagate st =
  let link_call st caller (callee : Ir.func) args rets =
    (* arguments flow into parameters *)
    List.iteri
      (fun i (pv, _) ->
        match List.nth_opt args i with
        | Some a -> add_to st st.pts (callee.name, pv) (pts_operand st caller a)
        | None -> ())
      callee.params;
    (* returned operands flow into result variables *)
    Array.iter
      (fun (b : Ir.block) ->
        match b.term with
        | Treturn os ->
            List.iteri
              (fun i r ->
                match List.nth_opt os i with
                | Some o -> add_to st st.pts (caller, r) (pts_operand st callee.name o)
                | None -> ())
              rets
        | _ -> ())
      callee.blocks
  in
  List.iter
    (fun (f : Ir.func) ->
      Ir.iter_insts
        (fun (i : Ir.inst) ->
          match i.idesc with
          | Imake_chan (v, elem, cap) ->
              Hashtbl.replace st.chan_elem i.ipp elem;
              Hashtbl.replace st.chan_cap i.ipp cap;
              Hashtbl.replace st.chan_loc i.ipp i.iloc;
              add_to st st.pts (f.name, v) (ObjSet.singleton (Achan i.ipp))
          | Imake_struct (v, _) ->
              add_to st st.pts (f.name, v) (ObjSet.singleton (Astruct i.ipp))
          | Iassign (v, o) -> add_to st st.pts (f.name, v) (pts_operand st f.name o)
          | Ifield_load (v, b, fld) ->
              ObjSet.iter
                (fun obj ->
                  ensure_field st obj fld;
                  add_to st st.pts (f.name, v) (pts_field st obj fld))
                (pts_var st f.name b)
          | Ifield_store (b, fld, o) ->
              ObjSet.iter
                (fun obj -> add_to st st.fields (obj, fld) (pts_operand st f.name o))
                (pts_var st f.name b)
          | Isend (p, o) ->
              (* sending a pointer-ish value through a channel transfers it
                 to every receive bound to an aliased channel.  The paper
                 notes its alias package cannot do this (17 FPs); we model
                 the channel's payload as field $elem of the channel
                 object, giving GCatch strictly better alias precision than
                 the original implementation had. *)
              ObjSet.iter
                (fun obj -> add_to st st.fields (obj, "$elem") (pts_operand st f.name o))
                (pts_place st f.name p)
          | Irecv (Some v, p, _) ->
              ObjSet.iter
                (fun obj -> add_to st st.pts (f.name, v) (pts_field st obj "$elem"))
                (pts_place st f.name p)
          | Irecv (None, _, _) | Iclose _ | Ilock _ | Iunlock _ -> ()
          | Iwg_add _ | Iwg_done _ | Iwg_wait _ -> ()
          | Icall (rets, g, args) -> (
              match Ir.find_func st.prog g with
              | Some callee -> link_call st f.name callee args rets
              | None -> ())
          | Icall_indirect (rets, fv, args) ->
              List.iter
                (fun g ->
                  match Ir.find_func st.prog g with
                  | Some callee -> link_call st f.name callee args rets
                  | None -> ())
                (callee_candidates st f.name fv)
          | Igo (g, args) -> (
              match Ir.find_func st.prog g with
              | Some callee -> link_call st f.name callee args []
              | None -> ())
          | Itesting_fatal _ | Ibinop _ | Iunop _ | Isleep _ | Iprint _ | Inop _ ->
              ())
        f;
      (* select arms access places too *)
      Array.iter
        (fun (b : Ir.block) ->
          match b.term with
          | Tselect (arms, _, _) ->
              List.iter
                (fun (a : Ir.select_arm) ->
                  match a.arm_op with
                  | Arm_recv (p, Some v) ->
                      ObjSet.iter
                        (fun obj ->
                          add_to st st.pts (f.name, v) (pts_field st obj "$elem"))
                        (pts_place st f.name p)
                  | Arm_recv (_, None) -> ignore (pts_place st f.name (arm_place a))
                  | Arm_send (p, o) ->
                      ObjSet.iter
                        (fun obj ->
                          add_to st st.fields (obj, "$elem")
                            (pts_operand st f.name o))
                        (pts_place st f.name p))
                arms
          | _ -> ())
        f.blocks)
    (Ir.funcs_list st.prog)

(* Functions that are called (directly or spawned) somewhere. *)
let compute_called prog =
  let called = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      Ir.iter_insts
        (fun i ->
          match i.idesc with
          | Icall (_, g, _) | Igo (g, _) -> Hashtbl.replace called g ()
          | _ -> ())
        f)
    (Ir.funcs_list prog);
  called

let analyse (prog : Ir.program) : t =
  let st =
    {
      pts = Hashtbl.create 64;
      fields = Hashtbl.create 64;
      prog;
      changed = true;
      chan_elem = Hashtbl.create 16;
      chan_cap = Hashtbl.create 16;
      chan_loc = Hashtbl.create 16;
    }
  in
  seed_entry_params st (compute_called prog);
  let rounds = ref 0 in
  while st.changed && !rounds < 100 do
    st.changed <- false;
    incr rounds;
    propagate st
  done;
  (* Warm every field place the program can ever query: [pts_place]
     materialises primitive objects for never-stored fields on first
     lookup ([ensure_field]), and detectors query places from several
     domains at once — after this pass those queries are read-only. *)
  List.iter
    (fun (f : Ir.func) ->
      let place p = ignore (pts_place st f.name p) in
      let operand = function Ir.Oplace p -> place p | _ -> () in
      Ir.iter_insts
        (fun i ->
          match i.idesc with
          | Isend (p, o) ->
              place p;
              operand o
          | Irecv (_, p, _) | Iclose p | Ilock p | Iunlock p
          | Iwg_done p | Iwg_wait p ->
              place p
          | Iwg_add (p, o) ->
              place p;
              operand o
          | Icall (_, _, os) | Icall_indirect (_, _, os) | Igo (_, os)
          | Iprint os ->
              List.iter operand os
          | Iassign (_, o) | Ifield_store (_, _, o) | Iunop (_, _, o)
          | Isleep o ->
              operand o
          | Ibinop (_, _, o1, o2) ->
              operand o1;
              operand o2
          | Imake_chan _ | Imake_struct _ | Itesting_fatal _ | Ifield_load _
          | Inop _ ->
              ())
        f;
      Array.iter
        (fun (b : Ir.block) ->
          match b.term with
          | Tselect (arms, _, _) ->
              List.iter
                (fun (a : Ir.select_arm) ->
                  match a.arm_op with
                  | Arm_recv (p, _) -> place p
                  | Arm_send (p, o) ->
                      place p;
                      operand o)
                arms
          | _ -> ())
        f.blocks)
    (Ir.funcs_list prog);
  st

(* ------------------------------------------------------------ queries *)

(* All channel-like objects a place may denote. *)
let channels_of_place st fname p =
  ObjSet.filter
    (function Achan _ | Aprim _ | Aext _ -> true | _ -> false)
    (pts_place st fname p)

let objects_of_place = pts_place

(* Static capacity of a channel object, when known. *)
let capacity st = function
  | Achan pp -> ( match Hashtbl.find_opt st.chan_cap pp with Some c -> c | None -> None)
  | Aprim _ | Aext _ -> None (* externally created: capacity unknown *)
  | _ -> None

let creation_loc st = function
  | Achan pp -> Hashtbl.find_opt st.chan_loc pp
  | _ -> None

(* Do two places possibly alias (share an object)? *)
let may_alias st f1 p1 f2 p2 =
  not (ObjSet.is_empty (ObjSet.inter (pts_place st f1 p1) (pts_place st f2 p2)))

let all_channel_objects st =
  let acc = ref ObjSet.empty in
  Hashtbl.iter
    (fun _ s ->
      ObjSet.iter
        (fun o -> match o with Achan _ -> acc := ObjSet.add o !acc | _ -> ())
        s)
    st.pts;
  !acc
