(* Durable warm state for gcatchd (the crash-only serving story).

   A daemon restart used to mean a cold engine: every per-file memo,
   solve-cache entry and resolved-source digest gone, and the next
   client paying the full cold run.  This module marshals the warm
   state — [Engine.warm_state] (the six per-file memo tiers plus the
   value-digest table), the solve cache's memory tier, and the content
   store — into one digest-checked file under the daemon's --cache-dir,
   written atomically (temp file + rename) exactly like the engine's
   per-entry disk tiers.  The pass-result cache needs no snapshotting:
   it is disk-only and already lives in the same directory.

   File layout: MD5(rest) ^ marshal(version) ^ marshal(payload).  The
   version string sits in its own marshal frame so [check] can classify
   a snapshot (missing / corrupt / wrong version / valid) without
   unmarshalling — and without trusting — the payload; gcatchd's
   startup validation uses that to fail fast on a version mismatch
   while a corrupt snapshot is deleted and the daemon starts cold.
   Loading never raises: any surprise inside the payload bytes is a
   cold start, not a crash.

   Fault sites: [snapshot.write] (raise/timeout => the save fails and
   is counted; corrupt => truncated bytes reach the disk, which the
   next load must survive) and [snapshot.read] (raise/timeout/corrupt
   => the load behaves as if the file were bad). *)

module F = Goengine.Faults

let format_version = "gcatch-snapshot/1"
let file_name = "gcatch-warm.snap"
let path ~dir = Filename.concat dir file_name

type payload = {
  p_engine : Goengine.Engine.warm_state;
  p_solve : (string * Gcatch.Solve_cache.entry) list;
  p_store : (string * string) list; (* content digest -> source *)
}

type status = Valid | Missing | Corrupt | Version_mismatch of string

let status_str = function
  | Valid -> "valid"
  | Missing -> "missing"
  | Corrupt -> "corrupt"
  | Version_mismatch v -> Printf.sprintf "version mismatch (%s)" v

let read_file fp =
  match open_in_bin fp with
  | exception _ -> None
  | ic ->
      let r =
        try Some (really_input_string ic (in_channel_length ic))
        with _ -> None
      in
      close_in_noerr ic;
      r

(* Classify the snapshot without touching the payload.  No fault
   injection here: this backs the daemon's *startup validation*, which
   must report what is actually on disk. *)
let check ~dir : status =
  let fp = path ~dir in
  if not (Sys.file_exists fp) then Missing
  else
    match read_file fp with
    | None -> Corrupt
    | Some raw -> (
        if String.length raw < 16 then Corrupt
        else
          let digest = String.sub raw 0 16 in
          let body = String.sub raw 16 (String.length raw - 16) in
          if Digest.string body <> digest then Corrupt
          else
            match (Marshal.from_string body 0 : string) with
            | v when v = format_version -> Valid
            | v -> Version_mismatch v
            | exception _ -> Corrupt)

let save ~dir (p : payload) : (unit, string) result =
  let fault = F.fire ~site:"snapshot.write" () in
  match fault with
  | Some (F.Raise | F.Timeout) -> Error "injected fault: snapshot.write"
  | _ -> (
      if fault = Some F.Stall then Unix.sleepf F.stall_s;
      try
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        let vbytes = Marshal.to_string format_version [] in
        let pbytes = Marshal.to_string p [ Marshal.No_sharing ] in
        let body = vbytes ^ pbytes in
        let bytes = Digest.string body ^ body in
        (* a corrupt-action write truncates what reaches the disk: the
           digest check on the next load must turn this into a clean
           cold start *)
        let bytes =
          if fault = Some F.Corrupt then
            String.sub bytes 0 (String.length bytes / 2)
          else bytes
        in
        let tmp =
          Filename.concat dir
            (Printf.sprintf ".%s.%d.tmp" file_name (Unix.getpid ()))
        in
        let oc = open_out_bin tmp in
        (try output_string oc bytes
         with e ->
           close_out_noerr oc;
           raise e);
        close_out oc;
        Sys.rename tmp (path ~dir);
        Ok ()
      with e -> Error (Printexc.to_string e))

(* [None] on anything but a valid snapshot; a corrupt file is deleted so
   the next boot does not re-parse the same bad bytes. *)
let load ~dir : payload option =
  let fp = path ~dir in
  let fault = F.fire ~site:"snapshot.read" () in
  match fault with
  | Some (F.Raise | F.Timeout | F.Corrupt) -> None
  | _ -> (
      if fault = Some F.Stall then Unix.sleepf F.stall_s;
      match check ~dir with
      | Missing | Version_mismatch _ -> None
      | Corrupt ->
          (try Sys.remove fp with _ -> ());
          None
      | Valid -> (
          match read_file fp with
          | None -> None
          | Some raw -> (
              let body = String.sub raw 16 (String.length raw - 16) in
              try
                let vsize = Marshal.total_size (Bytes.of_string body) 0 in
                Some (Marshal.from_string body vsize : payload)
              with _ ->
                (try Sys.remove fp with _ -> ());
                None)))

(* Startup probe for --cache-dir: the directory must be creatable and
   writable, surfaced as a clear error before the daemon binds — not as
   silent degradation on the first snapshot tick. *)
let validate_dir dir : (unit, string) result =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    if not (Sys.is_directory dir) then
      Error (Printf.sprintf "--cache-dir %s: not a directory" dir)
    else begin
      let probe =
        Filename.concat dir (Printf.sprintf ".gcatch-probe.%d" (Unix.getpid ()))
      in
      let oc = open_out_bin probe in
      output_string oc "probe";
      close_out oc;
      Sys.remove probe;
      Ok ()
    end
  with e ->
    Error (Printf.sprintf "--cache-dir %s: not writable (%s)" dir
             (Printexc.to_string e))
