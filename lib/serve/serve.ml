(* gcatchd's server core: one warm engine serving many analyse requests.

   The daemon exists because the caches were already built for reuse —
   per-file frontend memos, the pass-result cache, the solve cache — but
   a one-shot process throws them away at exit.  Here one [Engine.t]
   (and its shared [Pool]) lives across requests, so steady-state
   latency is the warm number.

   Request lifecycle (POST /analyse, JSON body, see [parse_req]):

     parse -> resolve digest refs against the content store
           -> coalesce (identical in-flight work is joined, not re-run)
           -> admission (bounded queue; 429 + Retry-After when full)
           -> execute: one scheduler session under [run_mu], with a
              per-request registry, journal context and deadline SLO
           -> respond (envelope carries the run JSON verbatim plus the
              CLI's human rendering, so clients reproduce local output)

   Execution is deliberately serialized by [run_mu]: the scheduler
   already fans each run out over the pool's domains, so two concurrent
   sessions would only fight for the same cores — queueing requests and
   giving each the whole pool keeps per-request latency minimal and
   per-request counters exact.  Concurrency lives at the protocol layer
   (connection threads, coalescing, admission), not in the engine.

   Per-request metrics: the engine is pointed at a fresh registry for
   the duration of the run; afterwards the registry is folded into the
   process registry with [Metrics.merge_into].  /metrics therefore stays
   monotonic across requests while each response carries exactly its own
   counters.  (Solve-cache and pool counters are process-scoped by
   design and keep reporting to the process registry directly.) *)

module E = Goengine.Engine
module D = Goengine.Diagnostics
module M = Goobs.Metrics
module T = Goobs.Telemetry
module J = Goobs.Journal
module Log = Goobs.Log
module Trace = Goobs.Trace

let schema = "gcatch-serve/1"

(* Connection-level fault injection: goobs owns the conn.* sites but
   cannot see the fault plan (goengine depends on goobs), so this
   module — linked by gcatch, gcatchd and the tests alike — installs
   the hook translating a site query into the armed plan's verdict.
   With no plan armed the query is one ref deref + one atomic load. *)
let () =
  T.set_fault_hook (fun site key ->
      match Goengine.Faults.fire ~site ~key () with
      | None -> T.FNone
      | Some (Goengine.Faults.Raise | Goengine.Faults.Timeout) -> T.FRaise
      | Some Goengine.Faults.Stall -> T.FStall
      | Some Goengine.Faults.Corrupt -> T.FCorrupt)

(* ----------------------------------------- observation endpoints ------ *)

(* The /vars endpoint: build info plus live cache/scheduler/span/sampler
   state snapshotted from the process registry.  Read-only by design —
   telemetry must never perturb the run.  (Moved here from the CLI so
   the daemon and one-shot binaries serve identical tables.) *)
let vars_json registry =
  let counters = M.counters_list registry in
  let c n = Option.value (List.assoc_opt n counters) ~default:0 in
  let gauges = M.gauges_list registry in
  let g n = Option.value (List.assoc_opt n gauges) ~default:0.0 in
  let rate h m =
    if h + m = 0 then 0.0
    else 100.0 *. float_of_int h /. float_of_int (h + m)
  in
  Printf.sprintf
    "{\"schema\":\"gcatch-vars/1\",\"build\":{\"tool\":\"gcatch\",\"ocaml\":\"%s\",\"word_size\":%d},\
     \"caches\":{\
     \"artifact\":{\"hits\":%d,\"misses\":%d,\"evictions\":%d},\
     \"file\":{\"mem_hits\":%d,\"disk_hits\":%d,\"evictions\":%d},\
     \"solve\":{\"hits\":%d,\"misses\":%d,\"disk_hits\":%d,\"stores\":%d,\"evictions\":%d,\"hit_rate_pct\":%.1f},\
     \"pass\":{\"hits\":%d,\"stores\":%d}},\
     \"serve\":{\"requests\":%d,\"coalesced\":%d,\"rejected\":%d,\"watch_runs\":%d,\"quarantines\":%d,\"engine_rebuilds\":%d},\
     \"sched\":{\"tasks_spawned\":%d,\"tasks_stolen\":%d,\"yields\":%d,\"queue_depth\":%.0f},\
     \"spans\":{\"active\":%d},\
     \"sampler\":{\"samples\":%d,\"ticks\":%d},\
     \"journal\":{\"events\":%d}}"
    Sys.ocaml_version Sys.word_size (c "engine.cache_hits")
    (c "engine.cache_misses")
    (c "engine.artifact_evictions")
    (c "engine.file_mem_hit") (c "engine.file_disk_hit")
    (c "engine.file_mem_evictions")
    (c "bmoc.solve_cache_hit")
    (c "bmoc.solve_cache_miss")
    (c "bmoc.solve_cache_disk_hit")
    (c "bmoc.solve_cache_store")
    (c "bmoc.solve_cache_evictions")
    (rate (c "bmoc.solve_cache_hit") (c "bmoc.solve_cache_miss"))
    (c "engine.pass_cache_hit") (c "engine.pass_cache_store")
    (c "serve.requests") (c "serve.coalesced") (c "serve.rejected")
    (c "serve.watch_runs") (c "serve.quarantines") (c "serve.engine_rebuilds")
    (c "sched.tasks_spawned") (c "sched.tasks_stolen")
    (c "sched.yields")
    (g "sched.queue_depth")
    (Trace.open_span_count ())
    (Goobs.Sampler.total_samples ())
    (Goobs.Sampler.tick_count ())
    (Goobs.Journal.events_written ())

(* Telemetry endpoint table.  [profile] renders the same report --profile
   prints, on demand mid-run. *)
let telemetry_handlers registry profile =
  [
    ("/metrics", fun () -> T.text (M.to_prometheus registry));
    ( "/healthz",
      fun () ->
        let ok, body = Goengine.Supervise.healthz_json ~reg:registry () in
        T.json ~status:(if ok then 200 else 503) body );
    ("/vars", fun () -> T.json (vars_json registry));
    ("/profile", fun () -> T.text (profile ()));
  ]

(* -------------------------------------------------------- requests ---- *)

type req = {
  q_name : string;
  q_files : (string * [ `Src of string | `Digest of string ]) list;
  q_passes : string list; (* [] = default pass set *)
  q_nonblocking : bool;
}

let parse_req (body : string) : (req, string) result =
  match Proto.parse body with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok v -> (
      match Proto.mem_str "schema" v with
      | Some s when s <> schema -> Error (Printf.sprintf "unknown schema %S" s)
      | _ -> (
          let name = Option.value (Proto.mem_str "name" v) ~default:"cli" in
          let passes =
            match Option.bind (Proto.member "passes" v) Proto.arr with
            | None -> []
            | Some l -> List.filter_map Proto.str l
          in
          let nonblocking =
            Option.value (Proto.mem_bool "nonblocking" v) ~default:false
          in
          match Option.bind (Proto.member "files" v) Proto.arr with
          | None -> Error "missing \"files\" array"
          | Some [] -> Error "empty \"files\" array"
          | Some l -> (
              let parse_file i f =
                let path =
                  Option.value (Proto.mem_str "path" f)
                    ~default:(Printf.sprintf "file%d.go" i)
                in
                match (Proto.mem_str "src" f, Proto.mem_str "digest" f) with
                | Some src, _ -> Ok (path, `Src src)
                | None, Some d -> Ok (path, `Digest (String.lowercase_ascii d))
                | None, None ->
                    Error
                      (Printf.sprintf "file %d: need \"src\" or \"digest\"" i)
              in
              let rec go i acc = function
                | [] -> Ok (List.rev acc)
                | f :: rest -> (
                    match parse_file i f with
                    | Ok x -> go (i + 1) (x :: acc) rest
                    | Error e -> Error e)
              in
              match go 0 [] l with
              | Error e -> Error e
              | Ok files ->
                  Ok { q_name = name; q_files = files; q_passes = passes;
                       q_nonblocking = nonblocking })))

(* ---------------------------------------------------------- server ---- *)

type cfg = {
  s_jobs : int;
  s_detector : Gcatch.Bmoc.config;
  s_max_cache_mb : int; (* 0 = unbounded *)
  s_max_queue : int; (* admitted (queued + running) request bound *)
  s_deadline_ms : int option; (* per-request SLO *)
  s_max_artifact_sets : int; (* engine artifact-cache LRU size *)
  s_snapshot_dir : string option; (* warm-state snapshot home *)
  s_quar_errors : int; (* consecutive internal-error requests tripping
                          quarantine; 0 disables this threshold *)
  s_quar_degraded : int; (* consecutive requests with degraded units *)
  s_quar_breaches : int; (* consecutive deadline-breached requests *)
}

let default_cfg =
  {
    s_jobs = 1;
    s_detector = Gcatch.Bmoc.default_config;
    s_max_cache_mb = 0;
    s_max_queue = 16;
    s_deadline_ms = None;
    s_max_artifact_sets = 8;
    s_snapshot_dir = None;
    (* every threshold off by default: an unconfigured server behaves
       exactly as before this feature existed *)
    s_quar_errors = 0;
    s_quar_degraded = 0;
    s_quar_breaches = 0;
  }

let quarantine_enabled cfg =
  cfg.s_quar_errors > 0 || cfg.s_quar_degraded > 0 || cfg.s_quar_breaches > 0

type t = {
  mutable engine : E.t; (* replaced by a quarantine rebuild, under run_mu *)
  registry : M.t; (* the process registry (/metrics) *)
  cfg : cfg;
  run_mu : Mutex.t; (* serializes engine sessions *)
  depth : int Atomic.t; (* admitted requests (queued + running) *)
  rid : int Atomic.t;
  store_mu : Mutex.t;
  store : (string, string) Hashtbl.t; (* content digest -> source *)
  infl_mu : Mutex.t;
  infl_cv : Condition.t;
  inflight : (string, T.response option ref) Hashtbl.t;
  watch_stop : bool Atomic.t;
  mutable watch_thread : Thread.t option;
  (* self-healing supervisor state *)
  quarantined : bool Atomic.t; (* requests answer 503 while set *)
  sup_mu : Mutex.t; (* guards the streak counters *)
  mutable sk_errors : int;
  mutable sk_degraded : int;
  mutable sk_breaches : int;
}

let counter t name = M.counter t.registry name

let create ?(cfg = default_cfg) () : t =
  let registry = M.default in
  let engine =
    Gcatch.Passes.engine ~cfg:cfg.s_detector ~jobs:cfg.s_jobs ~registry
      ~max_entries:cfg.s_max_artifact_sets ()
  in
  if cfg.s_max_cache_mb > 0 then begin
    (* the frontend memos dominate (typed + lowered ASTs per file), so
       they get 3/4 of the budget; the solve cache the rest *)
    E.set_cache_budget_mb engine (max 1 (cfg.s_max_cache_mb * 3 / 4));
    Gcatch.Solve_cache.set_memory_budget_mb (max 1 (cfg.s_max_cache_mb / 4))
  end;
  {
    engine;
    registry;
    cfg;
    run_mu = Mutex.create ();
    depth = Atomic.make 0;
    rid = Atomic.make 0;
    store_mu = Mutex.create ();
    store = Hashtbl.create 256;
    infl_mu = Mutex.create ();
    infl_cv = Condition.create ();
    inflight = Hashtbl.create 16;
    watch_stop = Atomic.make false;
    watch_thread = None;
    quarantined = Atomic.make false;
    sup_mu = Mutex.create ();
    sk_errors = 0;
    sk_degraded = 0;
    sk_breaches = 0;
  }

let engine t = t.engine
let quarantined t = Atomic.get t.quarantined

(* Content store: every full source a request (or the watcher) carries is
   remembered by digest, so later requests can send digests only.  The
   store is content-addressed and idempotent; it is bounded only by what
   clients actually send — sources dwarfed by the memo tables the
   --max-cache-mb budget already bounds. *)
let remember t src =
  let d = Digest.to_hex (Digest.string src) in
  Mutex.lock t.store_mu;
  if not (Hashtbl.mem t.store d) then Hashtbl.add t.store d src;
  Mutex.unlock t.store_mu;
  d

let resolve t (files : (string * [ `Src of string | `Digest of string ]) list)
    : (string list, string list) result =
  let missing = ref [] in
  let sources =
    List.map
      (fun (_, f) ->
        match f with
        | `Src s ->
            ignore (remember t s);
            s
        | `Digest d -> (
            Mutex.lock t.store_mu;
            let r = Hashtbl.find_opt t.store d in
            Mutex.unlock t.store_mu;
            match r with
            | Some s -> s
            | None ->
                missing := d :: !missing;
                ""))
      files
  in
  if !missing = [] then Ok sources else Error (List.rev !missing)

(* ------------------------------------------- durable warm state ------- *)

(* Import a snapshot payload into the live server.  Caller holds
   [run_mu] (no engine session in flight). *)
let import_payload_locked (t : t) (p : Snapshot.payload) =
  E.import_warm_state t.engine p.Snapshot.p_engine;
  Gcatch.Solve_cache.import_memory p.Snapshot.p_solve;
  Mutex.lock t.store_mu;
  List.iter
    (fun (d, s) -> if not (Hashtbl.mem t.store d) then Hashtbl.add t.store d s)
    p.Snapshot.p_store;
  Mutex.unlock t.store_mu;
  M.incr (counter t "serve.snapshot_loads");
  if J.enabled () then
    J.emit ~event:"snapshot.load"
      [
        ("solve_entries", J.I (List.length p.Snapshot.p_solve));
        ("sources", J.I (List.length p.Snapshot.p_store));
      ]

(* Reload the last good snapshot into a (fresh or restarted) server.
   Returns false when there is nothing valid to load — which is a clean
   cold start, never an error. *)
let load_snapshot (t : t) : bool =
  match t.cfg.s_snapshot_dir with
  | None -> false
  | Some dir -> (
      match Snapshot.load ~dir with
      | None -> false
      | Some p ->
          Mutex.lock t.run_mu;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.run_mu)
            (fun () -> import_payload_locked t p);
          true)

(* Write the warm state to disk: quiesce (take [run_mu]), export, then
   marshal outside the lock — the atomic temp+rename write means a
   crash mid-save leaves the previous snapshot intact. *)
let save_snapshot (t : t) : bool =
  match t.cfg.s_snapshot_dir with
  | None -> false
  | Some dir -> (
      let p =
        Mutex.lock t.run_mu;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.run_mu)
          (fun () ->
            Mutex.lock t.store_mu;
            let store =
              Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
            in
            Mutex.unlock t.store_mu;
            {
              Snapshot.p_engine = E.export_warm_state t.engine;
              p_solve = Gcatch.Solve_cache.export_memory ();
              p_store = List.sort compare store;
            })
      in
      match Snapshot.save ~dir p with
      | Ok () ->
          M.incr (counter t "serve.snapshot_saves");
          if J.enabled () then
            J.emit ~event:"snapshot.save"
              [
                ("solve_entries", J.I (List.length p.Snapshot.p_solve));
                ("sources", J.I (List.length p.Snapshot.p_store));
              ];
          true
      | Error e ->
          M.incr (counter t "serve.snapshot_errors");
          Log.warn ~kv:[ ("error", e) ] "snapshot save failed";
          false)

(* ------------------------------------------- self-healing rebuild ----- *)

(* Tear the poisoned engine down and stand a fresh one up from the last
   good snapshot, without dropping the listener.  Runs on its own
   thread (the tripping request still holds [run_mu] when it spawns
   us); [t.quarantined] is already set, so every request arriving
   meanwhile answers 503 + Retry-After instead of queueing behind the
   rebuild. *)
let rebuild_engine (t : t) ~reason : unit =
  M.incr (counter t "serve.quarantines");
  Log.warn ~kv:[ ("reason", reason) ] "engine quarantined; rebuilding";
  if J.enabled () then
    J.emit ~event:"serve.quarantine" [ ("reason", J.S reason) ];
  Mutex.lock t.run_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.run_mu)
    (fun () ->
      let e =
        Gcatch.Passes.engine ~cfg:t.cfg.s_detector ~jobs:t.cfg.s_jobs
          ~registry:t.registry ~max_entries:t.cfg.s_max_artifact_sets ()
      in
      if t.cfg.s_max_cache_mb > 0 then
        E.set_cache_budget_mb e (max 1 (t.cfg.s_max_cache_mb * 3 / 4));
      Gcatch.Solve_cache.reset_memory ();
      t.engine <- e;
      (* the heap latch guarded state that just went away with the old
         engine; clear it and let the fresh engine earn its own verdict *)
      Atomic.set Goengine.Supervise.heap_tripped false;
      Gc.compact ();
      (match t.cfg.s_snapshot_dir with
      | Some dir -> (
          match Snapshot.load ~dir with
          | Some p -> import_payload_locked t p
          | None -> ())
      | None -> ()));
  Mutex.lock t.sup_mu;
  t.sk_errors <- 0;
  t.sk_degraded <- 0;
  t.sk_breaches <- 0;
  Mutex.unlock t.sup_mu;
  M.incr (counter t "serve.engine_rebuilds");
  if J.enabled () then J.emit ~event:"serve.rebuild" [ ("reason", J.S reason) ];
  Atomic.set t.quarantined false

(* Feed one request's outcome to the supervisor; called at the end of
   [execute], still under [run_mu].  Streaks reset on any healthy
   request, so thresholds mean *consecutive* unhealthy ones.  The heap
   latch quarantines immediately: it is a process-wide watchdog, not a
   per-request wobble. *)
let note_outcome (t : t) ~internal ~degraded ~breached : unit =
  if quarantine_enabled t.cfg && not (Atomic.get t.quarantined) then begin
    Mutex.lock t.sup_mu;
    t.sk_errors <- (if internal then t.sk_errors + 1 else 0);
    t.sk_degraded <- (if degraded then t.sk_degraded + 1 else 0);
    t.sk_breaches <- (if breached then t.sk_breaches + 1 else 0);
    let trip limit streak = limit > 0 && streak >= limit in
    let reason =
      if Atomic.get Goengine.Supervise.heap_tripped then
        Some "heap watchdog latched"
      else if trip t.cfg.s_quar_errors t.sk_errors then
        Some (Printf.sprintf "%d consecutive internal errors" t.sk_errors)
      else if trip t.cfg.s_quar_degraded t.sk_degraded then
        Some (Printf.sprintf "%d consecutive degraded requests" t.sk_degraded)
      else if trip t.cfg.s_quar_breaches t.sk_breaches then
        Some (Printf.sprintf "%d consecutive deadline breaches" t.sk_breaches)
      else None
    in
    Mutex.unlock t.sup_mu;
    match reason with
    | Some reason ->
        if not (Atomic.exchange t.quarantined true) then
          ignore (Thread.create (fun () -> rebuild_engine t ~reason) ())
    | None -> ()
  end

(* ---------------------------------------------------- one execution --- *)

(* The CLI's human rendering, reproduced so a client prints exactly what
   a local run would (modulo wall-clock, which is genuinely different). *)
let human_of_run (r : E.run) : string =
  let b = Buffer.create 256 in
  if E.frontend_failed r then
    List.iter
      (fun d ->
        Buffer.add_string b (D.render_human d);
        Buffer.add_char b '\n')
      r.E.r_diags
  else begin
    List.iter
      (fun d ->
        Buffer.add_string b (D.render_human d);
        Buffer.add_char b '\n')
      r.E.r_diags;
    let count prefix =
      List.length
        (List.filter
           (fun (d : D.t) ->
             D.is_error d
             && String.length d.D.pass >= String.length prefix
             && String.sub d.D.pass 0 (String.length prefix) = prefix)
           r.E.r_diags)
    in
    Buffer.add_string b
      (Printf.sprintf "%d BMOC bug(s), %d traditional bug(s) in %.2fs\n"
         (count "bmoc") (count "trad.") r.E.r_elapsed_s);
    let unclean = Goengine.Supervise.health_unclean r.E.r_health in
    if unclean > 0 then
      Buffer.add_string b
        (Printf.sprintf "analysis health: %s\n"
           (Goengine.Supervise.health_str r.E.r_health))
  end;
  Buffer.contents b

let metrics_json (reg : M.t) =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b (M.json_escape k);
      Buffer.add_string b "\":";
      Buffer.add_string b (string_of_int v))
    (M.counters_list reg);
  Buffer.add_char b '}';
  Buffer.contents b

let error_body msg =
  Printf.sprintf "{\"schema\":\"%s\",\"error\":\"%s\"}" schema
    (M.json_escape msg)

let quarantined_response = lazy (
  T.json ~status:503
    ~headers:[ ("Retry-After", "1") ]
    (error_body "engine quarantined; rebuild in progress"))

(* Run one analysis as a scheduler session with request-scoped registry,
   journal context, and deadline.  Serialized by [run_mu]; called from a
   connection thread (or the watcher), never from inside the pool. *)
let execute (t : t) ~rid (req : req) (sources : string list) : T.response =
  Mutex.lock t.run_mu;
  if Atomic.get t.quarantined then begin
    (* admitted before the trip, reached the engine after: in-flight
       requests answer 503 rather than queueing behind the rebuild *)
    Mutex.unlock t.run_mu;
    M.incr (counter t "serve.unavailable");
    Lazy.force quarantined_response
  end
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.run_mu)
      (fun () ->
        let req_reg = M.create () in
        J.set_context [ ("req", J.S rid) ];
        (match t.cfg.s_deadline_ms with
        | Some ms -> Goengine.Supervise.set_deadline_ms ms
        | None -> ());
        E.set_registry t.engine req_reg;
        let t0 = Unix.gettimeofday () in
        if J.enabled () then
          J.emit ~event:"request.begin"
            [ ("files", J.I (List.length sources)) ];
        let result =
          let only = if req.q_passes = [] then None else Some req.q_passes in
          let extra = if req.q_nonblocking then [ "nonblocking" ] else [] in
          try Ok (E.analyse ?only ~extra t.engine ~name:req.q_name sources)
          with e -> Error e
        in
        let breached =
          match t.cfg.s_deadline_ms with
          | Some _ ->
              Goengine.Supervise.pressure () = Some "deadline exceeded"
          | None -> false
        in
        E.set_registry t.engine t.registry;
        M.merge_into ~dst:t.registry req_reg;
        (match t.cfg.s_deadline_ms with
        | Some _ -> Goengine.Supervise.clear_deadline ()
        | None -> ());
        if J.enabled () then
          J.emit ~event:"request.end"
            ~dur_ms:(1000.0 *. (Unix.gettimeofday () -. t0))
            [ ("ok", J.B (Result.is_ok result)) ];
        J.clear_context ();
        match result with
        | Error e ->
            M.incr (counter t "serve.internal_error");
            note_outcome t ~internal:true ~degraded:false ~breached;
            T.json ~status:500
              (error_body ("analysis failed: " ^ Printexc.to_string e))
        | Ok r ->
            M.incr (counter t "serve.ok");
            (* classify for the supervisor: a pass-level boundary catch
               surfaces as an Internal_error-kind fault diagnostic; a
               unit-level catch (e.g. an injected solver raise) counts
               in the run's degraded ledger *)
            let internal =
              List.exists
                (fun d ->
                  match Goengine.Supervise.fault_of d with
                  | Some fi ->
                      fi.Goengine.Supervise.fi_kind
                      = Goengine.Supervise.Internal_error
                  | None -> false)
                r.E.r_diags
            in
            let degraded =
              Goengine.Supervise.health_get r.E.r_health
                Goengine.Supervise.h_degraded
              > 0
            in
            note_outcome t ~internal ~degraded ~breached;
            let exit_code = if E.errors r <> [] then 1 else 0 in
            let body =
              Printf.sprintf
                "{\"schema\":\"%s\",\"id\":\"%s\",\"exit\":%d,\
                 \"frontend_failed\":%b,\"unclean\":%d,\
                 \"human\":\"%s\",\"request_metrics\":%s,\"run\":%s}"
                schema rid exit_code (E.frontend_failed r)
                (Goengine.Supervise.health_unclean r.E.r_health)
                (M.json_escape (human_of_run r))
                (metrics_json req_reg) (E.run_to_json r)
            in
            T.json body)

(* ------------------------------------- coalescing + admission ---------- *)

(* Key of the analysis a request denotes: what the engine's own artifact
   cache would key on, plus the pass selection.  Identical keys in
   flight share one execution (and one response body). *)
let request_key (req : req) (sources : string list) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          ((req.q_name :: sources)
          @ ("\x01" :: req.q_passes)
          @ [ (if req.q_nonblocking then "nb" else "") ])))

let handle_analyse (t : t) (rq : T.request) : T.response =
  M.incr (counter t "serve.requests");
  if Atomic.get t.quarantined then begin
    M.incr (counter t "serve.unavailable");
    Lazy.force quarantined_response
  end
  else
  match parse_req rq.T.rq_body with
  | Error e ->
      M.incr (counter t "serve.bad_request");
      T.json ~status:400 (error_body e)
  | Ok req -> (
      match resolve t req.q_files with
      | Error missing ->
          M.incr (counter t "serve.unknown_digest");
          T.json ~status:409
            (Printf.sprintf
               "{\"schema\":\"%s\",\"error\":\"unknown digests\",\"missing\":[%s]}"
               schema
               (String.concat ","
                  (List.map (fun d -> "\"" ^ M.json_escape d ^ "\"") missing)))
      | Ok sources -> (
          let key = request_key req sources in
          Mutex.lock t.infl_mu;
          match Hashtbl.find_opt t.inflight key with
          | Some cell ->
              (* identical work in flight: wait for its response and
                 share the bytes — connection threads may block here *)
              while !cell = None do
                Condition.wait t.infl_cv t.infl_mu
              done;
              let resp = Option.get !cell in
              Mutex.unlock t.infl_mu;
              M.incr (counter t "serve.coalesced");
              resp
          | None ->
              if Atomic.fetch_and_add t.depth 1 >= t.cfg.s_max_queue then begin
                Atomic.decr t.depth;
                Mutex.unlock t.infl_mu;
                M.incr (counter t "serve.rejected");
                T.json ~status:429
                  ~headers:[ ("Retry-After", "1") ]
                  (error_body "request queue full")
              end
              else begin
                let cell = ref None in
                Hashtbl.add t.inflight key cell;
                Mutex.unlock t.infl_mu;
                let rid = "r" ^ string_of_int (Atomic.fetch_and_add t.rid 1) in
                let resp =
                  try execute t ~rid req sources
                  with e ->
                    (* [execute] answers analysis failures itself; this
                       catches failures of the serving machinery *)
                    M.incr (counter t "serve.internal_error");
                    T.json ~status:500 (error_body (Printexc.to_string e))
                in
                Atomic.decr t.depth;
                Mutex.lock t.infl_mu;
                cell := Some resp;
                Hashtbl.remove t.inflight key;
                Condition.broadcast t.infl_cv;
                Mutex.unlock t.infl_mu;
                resp
              end))

(* ------------------------------------------------------- watch mode --- *)

(* Poll [dir] for *.go changes (content digests, not just mtimes — an
   editor restoring a file must un-warm nothing) and pre-warm the memo
   tables by running the default passes over the new tree.  The warm run
   goes through [execute] like any request, so the next client request
   for the same tree is a pure artifact-cache hit. *)
let watch_scan dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".go")
      |> List.sort compare
      |> List.filter_map (fun n ->
             let path = Filename.concat dir n in
             match
               let ic = open_in_bin path in
               let s = really_input_string ic (in_channel_length ic) in
               close_in ic;
               s
             with
             | s -> Some (n, s)
             | exception _ -> None)

let start_watch (t : t) ~dir ~interval_s =
  let last = ref [] in
  let tick () =
    let files = watch_scan dir in
    let fps = List.map (fun (n, s) -> (n, Digest.string s)) files in
    if fps <> !last && files <> [] then begin
      last := fps;
      M.incr (counter t "serve.watch_runs");
      let sources = List.map snd files in
      List.iter (fun s -> ignore (remember t s)) sources;
      let rid = "w" ^ string_of_int (Atomic.fetch_and_add t.rid 1) in
      let req =
        {
          q_name = "cli";
          q_files = [];
          q_passes = [];
          q_nonblocking = false;
        }
      in
      ignore (execute t ~rid req sources)
    end
  in
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get t.watch_stop) do
          (try tick ()
           with e ->
             Log.warn
               ~kv:[ ("exception", Printexc.to_string e) ]
               "watch tick failed");
          (* sleep in small steps so shutdown is prompt *)
          let slept = ref 0.0 in
          while (not (Atomic.get t.watch_stop)) && !slept < interval_s do
            Thread.delay 0.05;
            slept := !slept +. 0.05
          done
        done)
      ()
  in
  t.watch_thread <- Some th

let stop_watch (t : t) =
  Atomic.set t.watch_stop true;
  (match t.watch_thread with Some th -> Thread.join th | None -> ());
  t.watch_thread <- None

(* ------------------------------------------------------------ wiring --- *)

let handlers (t : t) =
  telemetry_handlers t.registry (fun () ->
      Goobs.Profile.report ~top:10 t.registry []
      ^ E.frontend_report ~top:10 t.engine)

let post_handlers (t : t) = [ ("/analyse", handle_analyse t) ]
