(* gcatchd's server core: one warm engine serving many analyse requests.

   The daemon exists because the caches were already built for reuse —
   per-file frontend memos, the pass-result cache, the solve cache — but
   a one-shot process throws them away at exit.  Here one [Engine.t]
   (and its shared [Pool]) lives across requests, so steady-state
   latency is the warm number.

   Request lifecycle (POST /analyse, JSON body, see [parse_req]):

     parse -> resolve digest refs against the content store
           -> coalesce (identical in-flight work is joined, not re-run)
           -> admission (bounded queue; 429 + Retry-After when full)
           -> execute: one scheduler session under [run_mu], with a
              per-request registry, journal context and deadline SLO
           -> respond (envelope carries the run JSON verbatim plus the
              CLI's human rendering, so clients reproduce local output)

   Execution is deliberately serialized by [run_mu]: the scheduler
   already fans each run out over the pool's domains, so two concurrent
   sessions would only fight for the same cores — queueing requests and
   giving each the whole pool keeps per-request latency minimal and
   per-request counters exact.  Concurrency lives at the protocol layer
   (connection threads, coalescing, admission), not in the engine.

   Per-request metrics: the engine is pointed at a fresh registry for
   the duration of the run; afterwards the registry is folded into the
   process registry with [Metrics.merge_into].  /metrics therefore stays
   monotonic across requests while each response carries exactly its own
   counters.  (Solve-cache and pool counters are process-scoped by
   design and keep reporting to the process registry directly.) *)

module E = Goengine.Engine
module D = Goengine.Diagnostics
module M = Goobs.Metrics
module T = Goobs.Telemetry
module J = Goobs.Journal
module Log = Goobs.Log
module Trace = Goobs.Trace

let schema = "gcatch-serve/1"

(* ----------------------------------------- observation endpoints ------ *)

(* The /vars endpoint: build info plus live cache/scheduler/span/sampler
   state snapshotted from the process registry.  Read-only by design —
   telemetry must never perturb the run.  (Moved here from the CLI so
   the daemon and one-shot binaries serve identical tables.) *)
let vars_json registry =
  let counters = M.counters_list registry in
  let c n = Option.value (List.assoc_opt n counters) ~default:0 in
  let gauges = M.gauges_list registry in
  let g n = Option.value (List.assoc_opt n gauges) ~default:0.0 in
  let rate h m =
    if h + m = 0 then 0.0
    else 100.0 *. float_of_int h /. float_of_int (h + m)
  in
  Printf.sprintf
    "{\"schema\":\"gcatch-vars/1\",\"build\":{\"tool\":\"gcatch\",\"ocaml\":\"%s\",\"word_size\":%d},\
     \"caches\":{\
     \"artifact\":{\"hits\":%d,\"misses\":%d,\"evictions\":%d},\
     \"file\":{\"mem_hits\":%d,\"disk_hits\":%d,\"evictions\":%d},\
     \"solve\":{\"hits\":%d,\"misses\":%d,\"disk_hits\":%d,\"stores\":%d,\"evictions\":%d,\"hit_rate_pct\":%.1f},\
     \"pass\":{\"hits\":%d,\"stores\":%d}},\
     \"serve\":{\"requests\":%d,\"coalesced\":%d,\"rejected\":%d,\"watch_runs\":%d},\
     \"sched\":{\"tasks_spawned\":%d,\"tasks_stolen\":%d,\"yields\":%d,\"queue_depth\":%.0f},\
     \"spans\":{\"active\":%d},\
     \"sampler\":{\"samples\":%d,\"ticks\":%d},\
     \"journal\":{\"events\":%d}}"
    Sys.ocaml_version Sys.word_size (c "engine.cache_hits")
    (c "engine.cache_misses")
    (c "engine.artifact_evictions")
    (c "engine.file_mem_hit") (c "engine.file_disk_hit")
    (c "engine.file_mem_evictions")
    (c "bmoc.solve_cache_hit")
    (c "bmoc.solve_cache_miss")
    (c "bmoc.solve_cache_disk_hit")
    (c "bmoc.solve_cache_store")
    (c "bmoc.solve_cache_evictions")
    (rate (c "bmoc.solve_cache_hit") (c "bmoc.solve_cache_miss"))
    (c "engine.pass_cache_hit") (c "engine.pass_cache_store")
    (c "serve.requests") (c "serve.coalesced") (c "serve.rejected")
    (c "serve.watch_runs") (c "sched.tasks_spawned") (c "sched.tasks_stolen")
    (c "sched.yields")
    (g "sched.queue_depth")
    (Trace.open_span_count ())
    (Goobs.Sampler.total_samples ())
    (Goobs.Sampler.tick_count ())
    (Goobs.Journal.events_written ())

(* Telemetry endpoint table.  [profile] renders the same report --profile
   prints, on demand mid-run. *)
let telemetry_handlers registry profile =
  [
    ("/metrics", fun () -> T.text (M.to_prometheus registry));
    ( "/healthz",
      fun () ->
        let ok, body = Goengine.Supervise.healthz_json ~reg:registry () in
        T.json ~status:(if ok then 200 else 503) body );
    ("/vars", fun () -> T.json (vars_json registry));
    ("/profile", fun () -> T.text (profile ()));
  ]

(* -------------------------------------------------------- requests ---- *)

type req = {
  q_name : string;
  q_files : (string * [ `Src of string | `Digest of string ]) list;
  q_passes : string list; (* [] = default pass set *)
  q_nonblocking : bool;
}

let parse_req (body : string) : (req, string) result =
  match Proto.parse body with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok v -> (
      match Proto.mem_str "schema" v with
      | Some s when s <> schema -> Error (Printf.sprintf "unknown schema %S" s)
      | _ -> (
          let name = Option.value (Proto.mem_str "name" v) ~default:"cli" in
          let passes =
            match Option.bind (Proto.member "passes" v) Proto.arr with
            | None -> []
            | Some l -> List.filter_map Proto.str l
          in
          let nonblocking =
            Option.value (Proto.mem_bool "nonblocking" v) ~default:false
          in
          match Option.bind (Proto.member "files" v) Proto.arr with
          | None -> Error "missing \"files\" array"
          | Some [] -> Error "empty \"files\" array"
          | Some l -> (
              let parse_file i f =
                let path =
                  Option.value (Proto.mem_str "path" f)
                    ~default:(Printf.sprintf "file%d.go" i)
                in
                match (Proto.mem_str "src" f, Proto.mem_str "digest" f) with
                | Some src, _ -> Ok (path, `Src src)
                | None, Some d -> Ok (path, `Digest (String.lowercase_ascii d))
                | None, None ->
                    Error
                      (Printf.sprintf "file %d: need \"src\" or \"digest\"" i)
              in
              let rec go i acc = function
                | [] -> Ok (List.rev acc)
                | f :: rest -> (
                    match parse_file i f with
                    | Ok x -> go (i + 1) (x :: acc) rest
                    | Error e -> Error e)
              in
              match go 0 [] l with
              | Error e -> Error e
              | Ok files ->
                  Ok { q_name = name; q_files = files; q_passes = passes;
                       q_nonblocking = nonblocking })))

(* ---------------------------------------------------------- server ---- *)

type cfg = {
  s_jobs : int;
  s_detector : Gcatch.Bmoc.config;
  s_max_cache_mb : int; (* 0 = unbounded *)
  s_max_queue : int; (* admitted (queued + running) request bound *)
  s_deadline_ms : int option; (* per-request SLO *)
  s_max_artifact_sets : int; (* engine artifact-cache LRU size *)
}

let default_cfg =
  {
    s_jobs = 1;
    s_detector = Gcatch.Bmoc.default_config;
    s_max_cache_mb = 0;
    s_max_queue = 16;
    s_deadline_ms = None;
    s_max_artifact_sets = 8;
  }

type t = {
  engine : E.t;
  registry : M.t; (* the process registry (/metrics) *)
  cfg : cfg;
  run_mu : Mutex.t; (* serializes engine sessions *)
  depth : int Atomic.t; (* admitted requests (queued + running) *)
  rid : int Atomic.t;
  store_mu : Mutex.t;
  store : (string, string) Hashtbl.t; (* content digest -> source *)
  infl_mu : Mutex.t;
  infl_cv : Condition.t;
  inflight : (string, T.response option ref) Hashtbl.t;
  watch_stop : bool Atomic.t;
  mutable watch_thread : Thread.t option;
}

let counter t name = M.counter t.registry name

let create ?(cfg = default_cfg) () : t =
  let registry = M.default in
  let engine =
    Gcatch.Passes.engine ~cfg:cfg.s_detector ~jobs:cfg.s_jobs ~registry
      ~max_entries:cfg.s_max_artifact_sets ()
  in
  if cfg.s_max_cache_mb > 0 then begin
    (* the frontend memos dominate (typed + lowered ASTs per file), so
       they get 3/4 of the budget; the solve cache the rest *)
    E.set_cache_budget_mb engine (max 1 (cfg.s_max_cache_mb * 3 / 4));
    Gcatch.Solve_cache.set_memory_budget_mb (max 1 (cfg.s_max_cache_mb / 4))
  end;
  {
    engine;
    registry;
    cfg;
    run_mu = Mutex.create ();
    depth = Atomic.make 0;
    rid = Atomic.make 0;
    store_mu = Mutex.create ();
    store = Hashtbl.create 256;
    infl_mu = Mutex.create ();
    infl_cv = Condition.create ();
    inflight = Hashtbl.create 16;
    watch_stop = Atomic.make false;
    watch_thread = None;
  }

let engine t = t.engine

(* Content store: every full source a request (or the watcher) carries is
   remembered by digest, so later requests can send digests only.  The
   store is content-addressed and idempotent; it is bounded only by what
   clients actually send — sources dwarfed by the memo tables the
   --max-cache-mb budget already bounds. *)
let remember t src =
  let d = Digest.to_hex (Digest.string src) in
  Mutex.lock t.store_mu;
  if not (Hashtbl.mem t.store d) then Hashtbl.add t.store d src;
  Mutex.unlock t.store_mu;
  d

let resolve t (files : (string * [ `Src of string | `Digest of string ]) list)
    : (string list, string list) result =
  let missing = ref [] in
  let sources =
    List.map
      (fun (_, f) ->
        match f with
        | `Src s ->
            ignore (remember t s);
            s
        | `Digest d -> (
            Mutex.lock t.store_mu;
            let r = Hashtbl.find_opt t.store d in
            Mutex.unlock t.store_mu;
            match r with
            | Some s -> s
            | None ->
                missing := d :: !missing;
                ""))
      files
  in
  if !missing = [] then Ok sources else Error (List.rev !missing)

(* ---------------------------------------------------- one execution --- *)

(* The CLI's human rendering, reproduced so a client prints exactly what
   a local run would (modulo wall-clock, which is genuinely different). *)
let human_of_run (r : E.run) : string =
  let b = Buffer.create 256 in
  if E.frontend_failed r then
    List.iter
      (fun d ->
        Buffer.add_string b (D.render_human d);
        Buffer.add_char b '\n')
      r.E.r_diags
  else begin
    List.iter
      (fun d ->
        Buffer.add_string b (D.render_human d);
        Buffer.add_char b '\n')
      r.E.r_diags;
    let count prefix =
      List.length
        (List.filter
           (fun (d : D.t) ->
             D.is_error d
             && String.length d.D.pass >= String.length prefix
             && String.sub d.D.pass 0 (String.length prefix) = prefix)
           r.E.r_diags)
    in
    Buffer.add_string b
      (Printf.sprintf "%d BMOC bug(s), %d traditional bug(s) in %.2fs\n"
         (count "bmoc") (count "trad.") r.E.r_elapsed_s);
    let unclean = Goengine.Supervise.health_unclean r.E.r_health in
    if unclean > 0 then
      Buffer.add_string b
        (Printf.sprintf "analysis health: %s\n"
           (Goengine.Supervise.health_str r.E.r_health))
  end;
  Buffer.contents b

let metrics_json (reg : M.t) =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b (M.json_escape k);
      Buffer.add_string b "\":";
      Buffer.add_string b (string_of_int v))
    (M.counters_list reg);
  Buffer.add_char b '}';
  Buffer.contents b

let error_body msg =
  Printf.sprintf "{\"schema\":\"%s\",\"error\":\"%s\"}" schema
    (M.json_escape msg)

(* Run one analysis as a scheduler session with request-scoped registry,
   journal context, and deadline.  Serialized by [run_mu]; called from a
   connection thread (or the watcher), never from inside the pool. *)
let execute (t : t) ~rid (req : req) (sources : string list) : T.response =
  Mutex.lock t.run_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.run_mu)
    (fun () ->
      let req_reg = M.create () in
      J.set_context [ ("req", J.S rid) ];
      (match t.cfg.s_deadline_ms with
      | Some ms -> Goengine.Supervise.set_deadline_ms ms
      | None -> ());
      E.set_registry t.engine req_reg;
      let t0 = Unix.gettimeofday () in
      if J.enabled () then
        J.emit ~event:"request.begin"
          [ ("files", J.I (List.length sources)) ];
      let result =
        let only = if req.q_passes = [] then None else Some req.q_passes in
        let extra = if req.q_nonblocking then [ "nonblocking" ] else [] in
        try Ok (E.analyse ?only ~extra t.engine ~name:req.q_name sources)
        with e -> Error e
      in
      E.set_registry t.engine t.registry;
      M.merge_into ~dst:t.registry req_reg;
      (match t.cfg.s_deadline_ms with
      | Some _ -> Goengine.Supervise.clear_deadline ()
      | None -> ());
      if J.enabled () then
        J.emit ~event:"request.end"
          ~dur_ms:(1000.0 *. (Unix.gettimeofday () -. t0))
          [ ("ok", J.B (Result.is_ok result)) ];
      J.clear_context ();
      match result with
      | Error e ->
          M.incr (counter t "serve.internal_error");
          T.json ~status:500
            (error_body ("analysis failed: " ^ Printexc.to_string e))
      | Ok r ->
          M.incr (counter t "serve.ok");
          let exit_code = if E.errors r <> [] then 1 else 0 in
          let body =
            Printf.sprintf
              "{\"schema\":\"%s\",\"id\":\"%s\",\"exit\":%d,\
               \"frontend_failed\":%b,\"unclean\":%d,\
               \"human\":\"%s\",\"request_metrics\":%s,\"run\":%s}"
              schema rid exit_code (E.frontend_failed r)
              (Goengine.Supervise.health_unclean r.E.r_health)
              (M.json_escape (human_of_run r))
              (metrics_json req_reg) (E.run_to_json r)
          in
          T.json body)

(* ------------------------------------- coalescing + admission ---------- *)

(* Key of the analysis a request denotes: what the engine's own artifact
   cache would key on, plus the pass selection.  Identical keys in
   flight share one execution (and one response body). *)
let request_key (req : req) (sources : string list) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          ((req.q_name :: sources)
          @ ("\x01" :: req.q_passes)
          @ [ (if req.q_nonblocking then "nb" else "") ])))

let handle_analyse (t : t) (rq : T.request) : T.response =
  M.incr (counter t "serve.requests");
  match parse_req rq.T.rq_body with
  | Error e ->
      M.incr (counter t "serve.bad_request");
      T.json ~status:400 (error_body e)
  | Ok req -> (
      match resolve t req.q_files with
      | Error missing ->
          M.incr (counter t "serve.unknown_digest");
          T.json ~status:409
            (Printf.sprintf
               "{\"schema\":\"%s\",\"error\":\"unknown digests\",\"missing\":[%s]}"
               schema
               (String.concat ","
                  (List.map (fun d -> "\"" ^ M.json_escape d ^ "\"") missing)))
      | Ok sources -> (
          let key = request_key req sources in
          Mutex.lock t.infl_mu;
          match Hashtbl.find_opt t.inflight key with
          | Some cell ->
              (* identical work in flight: wait for its response and
                 share the bytes — connection threads may block here *)
              while !cell = None do
                Condition.wait t.infl_cv t.infl_mu
              done;
              let resp = Option.get !cell in
              Mutex.unlock t.infl_mu;
              M.incr (counter t "serve.coalesced");
              resp
          | None ->
              if Atomic.fetch_and_add t.depth 1 >= t.cfg.s_max_queue then begin
                Atomic.decr t.depth;
                Mutex.unlock t.infl_mu;
                M.incr (counter t "serve.rejected");
                T.json ~status:429
                  ~headers:[ ("Retry-After", "1") ]
                  (error_body "request queue full")
              end
              else begin
                let cell = ref None in
                Hashtbl.add t.inflight key cell;
                Mutex.unlock t.infl_mu;
                let rid = "r" ^ string_of_int (Atomic.fetch_and_add t.rid 1) in
                let resp =
                  try execute t ~rid req sources
                  with e ->
                    (* [execute] answers analysis failures itself; this
                       catches failures of the serving machinery *)
                    M.incr (counter t "serve.internal_error");
                    T.json ~status:500 (error_body (Printexc.to_string e))
                in
                Atomic.decr t.depth;
                Mutex.lock t.infl_mu;
                cell := Some resp;
                Hashtbl.remove t.inflight key;
                Condition.broadcast t.infl_cv;
                Mutex.unlock t.infl_mu;
                resp
              end))

(* ------------------------------------------------------- watch mode --- *)

(* Poll [dir] for *.go changes (content digests, not just mtimes — an
   editor restoring a file must un-warm nothing) and pre-warm the memo
   tables by running the default passes over the new tree.  The warm run
   goes through [execute] like any request, so the next client request
   for the same tree is a pure artifact-cache hit. *)
let watch_scan dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".go")
      |> List.sort compare
      |> List.filter_map (fun n ->
             let path = Filename.concat dir n in
             match
               let ic = open_in_bin path in
               let s = really_input_string ic (in_channel_length ic) in
               close_in ic;
               s
             with
             | s -> Some (n, s)
             | exception _ -> None)

let start_watch (t : t) ~dir ~interval_s =
  let last = ref [] in
  let tick () =
    let files = watch_scan dir in
    let fps = List.map (fun (n, s) -> (n, Digest.string s)) files in
    if fps <> !last && files <> [] then begin
      last := fps;
      M.incr (counter t "serve.watch_runs");
      let sources = List.map snd files in
      List.iter (fun s -> ignore (remember t s)) sources;
      let rid = "w" ^ string_of_int (Atomic.fetch_and_add t.rid 1) in
      let req =
        {
          q_name = "cli";
          q_files = [];
          q_passes = [];
          q_nonblocking = false;
        }
      in
      ignore (execute t ~rid req sources)
    end
  in
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get t.watch_stop) do
          (try tick ()
           with e ->
             Log.warn
               ~kv:[ ("exception", Printexc.to_string e) ]
               "watch tick failed");
          (* sleep in small steps so shutdown is prompt *)
          let slept = ref 0.0 in
          while (not (Atomic.get t.watch_stop)) && !slept < interval_s do
            Thread.delay 0.05;
            slept := !slept +. 0.05
          done
        done)
      ()
  in
  t.watch_thread <- Some th

let stop_watch (t : t) =
  Atomic.set t.watch_stop true;
  (match t.watch_thread with Some th -> Thread.join th | None -> ());
  t.watch_thread <- None

(* ------------------------------------------------------------ wiring --- *)

let handlers (t : t) =
  telemetry_handlers t.registry (fun () ->
      Goobs.Profile.report ~top:10 t.registry []
      ^ E.frontend_report ~top:10 t.engine)

let post_handlers (t : t) = [ ("/analyse", handle_analyse t) ]
