(* JSON for the gcatchd request protocol.

   The rest of the tree only ever *writes* JSON (hand-built with
   [Printf] + [Metrics.json_escape]); serving requires reading it, and
   no JSON library is in the build, so this is a small recursive-descent
   parser — strings (with \uXXXX), numbers, booleans, null, arrays,
   objects.  Numbers land in a float, which is exact for every integer
   the protocol carries.

   [member_raw] is the deliberate oddity: it returns the raw *byte
   span* of a named top-level member, unparsed.  The server embeds the
   engine's run JSON verbatim in the response envelope; the client's
   --json mode must print those bytes exactly as a local run would
   (float formatting round-trips are not byte-stable), so it extracts
   the span instead of re-serializing a parse. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | Some x -> fail "expected %c at byte %d, found %c" ch c.i x
  | None -> fail "expected %c at byte %d, found end of input" ch c.i

let lit c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else fail "bad literal at byte %d" c.i

let hex4 c =
  if c.i + 4 > String.length c.s then fail "truncated \\u escape";
  let v = ref 0 in
  for k = c.i to c.i + 3 do
    let d =
      match c.s.[k] with
      | '0' .. '9' as ch -> Char.code ch - 48
      | 'a' .. 'f' as ch -> Char.code ch - 87
      | 'A' .. 'F' as ch -> Char.code ch - 55
      | ch -> fail "bad hex digit %c in \\u escape" ch
    in
    v := (!v * 16) + d
  done;
  c.i <- c.i + 4;
  !v

let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let len = String.length c.s in
  let rec go () =
    (* bulk-copy the span up to the next quote or escape; request bodies
       carry whole source files in one string, and a byte-at-a-time loop
       was the dominant cost of serving a multi-megabyte payload *)
    let start = c.i in
    let j = ref c.i in
    while
      !j < len
      && match String.unsafe_get c.s !j with '"' | '\\' -> false | _ -> true
    do
      incr j
    done;
    if !j > start then begin
      Buffer.add_substring b c.s start (!j - start);
      c.i <- !j
    end;
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> c.i <- c.i + 1
    | Some '\\' -> (
        c.i <- c.i + 1;
        match peek c with
        | None -> fail "unterminated escape"
        | Some ch ->
            c.i <- c.i + 1;
            (match ch with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                let cp = hex4 c in
                (* high surrogate followed by \uDC00-\uDFFF combines *)
                if cp >= 0xD800 && cp <= 0xDBFF
                   && c.i + 1 < String.length c.s
                   && c.s.[c.i] = '\\'
                   && c.s.[c.i + 1] = 'u'
                then begin
                  c.i <- c.i + 2;
                  let lo = hex4 c in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    add_utf8 b
                      (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                  else begin
                    add_utf8 b cp;
                    add_utf8 b lo
                  end
                end
                else add_utf8 b cp
            | ch -> fail "bad escape \\%c" ch);
            go ())
    | Some ch ->
        c.i <- c.i + 1;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.i < String.length c.s && num_char c.s.[c.i] do
    c.i <- c.i + 1
  done;
  if c.i = start then fail "expected a value at byte %d" start;
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some f -> f
  | None -> fail "bad number at byte %d" start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> lit c "true" (Bool true)
  | Some 'f' -> lit c "false" (Bool false)
  | Some 'n' -> lit c "null" Null
  | Some '[' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.i <- c.i + 1;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              items (v :: acc)
          | Some ']' ->
              c.i <- c.i + 1;
              List.rev (v :: acc)
          | _ -> fail "expected , or ] at byte %d" c.i
        in
        Arr (items [])
      end
  | Some '{' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.i <- c.i + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.i <- c.i + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } at byte %d" c.i
        in
        Obj (members [])
      end
  | Some _ -> Num (parse_number c)

let parse (s : string) : (t, string) result =
  let c = { s; i = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.i < String.length s then
        Error (Printf.sprintf "trailing bytes after value at %d" c.i)
      else Ok v
  | exception Bad m -> Error m

(* Accessors ------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let arr = function Arr l -> Some l | _ -> None
let bool_ = function Bool b -> Some b | _ -> None

let mem_str k v = Option.bind (member k v) str
let mem_int k v = Option.map int_of_float (Option.bind (member k v) num)
let mem_bool k v = Option.bind (member k v) bool_

(* Raw span extraction -------------------------------------------------- *)

(* Skip one value without building it, returning nothing; [c.i] ends one
   past the value. *)
let rec skip_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '"' -> ignore (parse_string c)
  | Some 't' -> ignore (lit c "true" ())
  | Some 'f' -> ignore (lit c "false" ())
  | Some 'n' -> ignore (lit c "null" ())
  | Some ('[' | '{') ->
      let close = if peek c = Some '[' then ']' else '}' in
      let is_obj = close = '}' in
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some close then c.i <- c.i + 1
      else begin
        let rec items () =
          (if is_obj then begin
             skip_ws c;
             ignore (parse_string c);
             skip_ws c;
             expect c ':'
           end);
          skip_value c;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              items ()
          | Some ch when ch = close -> c.i <- c.i + 1
          | _ -> fail "expected , or %c at byte %d" close c.i
        in
        items ()
      end
  | Some _ -> ignore (parse_number c)

(* The raw bytes of top-level member [key] of a JSON object, exactly as
   they appear in [s] (leading/trailing whitespace trimmed by
   construction: the span starts at the value's first byte). *)
let member_raw (key : string) (s : string) : string option =
  let c = { s; i = 0 } in
  match
    skip_ws c;
    expect c '{';
    skip_ws c;
    if peek c = Some '}' then None
    else begin
      let rec members () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        skip_ws c;
        let start = c.i in
        skip_value c;
        if k = key then Some (String.sub s start (c.i - start))
        else begin
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              members ()
          | _ -> None
        end
      in
      members ()
    end
  with
  | r -> r
  | exception Bad _ -> None
