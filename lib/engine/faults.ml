(* Deterministic fault injection (the testing half of the supervision
   layer).

   Production code is sprinkled with *sites* — named points where a
   failure can plausibly originate: the constraint solver, the solve
   cache's disk tiers, a pool worker, the per-file frontend.  In normal
   operation every site is a single atomic load ([fire] returns [None]
   when no plan is set), so the clean path pays essentially nothing.
   Under a plan — [GCATCH_FAULTS] or [--inject-faults] — a site raises,
   stalls, or corrupts at a precisely chosen occurrence, so CI can prove
   that the fault boundaries around it contain the damage.

   Plan grammar (comma-separated items):

     item   ::= "seed=" INT
              | SITE [":" NTH] ["@" KEYSUB] ["!" ACTION]
     NTH    ::= INT          fire on the nth trigger of the site (1-based)
              | "*"          fire on every trigger
     KEYSUB ::= string       fire only when the trigger's key contains it
     ACTION ::= "raise" (default) | "timeout" | "stall" | "corrupt"

   Determinism: an [NTH]-selected fault counts triggers with one atomic
   counter per plan item, so under a parallel schedule *which* unit
   draws the nth trigger can vary; a [KEYSUB]-selected fault fires on
   the key alone and is therefore schedule-independent — tests that
   compare --jobs 1 against --jobs 4 select by key.  [seed=N] gives
   items with no explicit NTH a pseudo-random (but seeded, hence
   reproducible) placement instead of the default first trigger. *)

type action = Raise | Timeout | Stall | Corrupt

type which = Nth of int | Every

type spec = {
  s_site : string;
  s_which : which;
  s_key : string option; (* substring selector on the trigger key *)
  s_action : action;
}

(* The site registry.  [fire] on an unregistered site is a programming
   error; [parse] rejects plans naming unknown sites so a CLI typo is a
   usage error, not a silently inert plan. *)
let sites =
  [
    "frontend";
    "solver";
    "pool";
    "cache.read";
    "cache.write";
    "conn.accept";
    "conn.read";
    "conn.write";
    "snapshot.read";
    "snapshot.write";
  ]

exception Injected of string * string (* site, key *)

let () =
  Printexc.register_printer (function
    | Injected (site, key) ->
        Some
          (Printf.sprintf "Faults.Injected(site=%s%s)" site
             (if key = "" then "" else ", key=" ^ key))
    | _ -> None)

(* ----------------------------------------------------------- parse --- *)

let action_of_string = function
  | "raise" -> Some Raise
  | "timeout" -> Some Timeout
  | "stall" -> Some Stall
  | "corrupt" -> Some Corrupt
  | _ -> None

let action_str = function
  | Raise -> "raise"
  | Timeout -> "timeout"
  | Stall -> "stall"
  | Corrupt -> "corrupt"

let split_on_first c s =
  match String.index_opt s c with
  | None -> (s, None)
  | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )

(* With a seed and no explicit NTH, place the fault on a seeded
   pseudo-random early trigger: reproducible for a fixed (seed, site),
   varied across seeds — the "fuzz the placement" mode.  The hash must
   be a stable function of the (seed, site) *strings*: Hashtbl.hash on
   a tuple is free to change between OCaml releases, which would move
   every seeded plan's placement under a compiler upgrade.  MD5 of a
   canonical encoding is fixed forever; suite_faults pins values. *)
let seeded_nth seed site =
  let d = Digest.string (string_of_int seed ^ "\x00" ^ site) in
  1 + ((Char.code d.[0] lor (Char.code d.[1] lsl 8)) mod 4)

let parse (s : string) : (spec list, string) result =
  let items =
    List.filter
      (fun x -> x <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  let seed = ref None in
  let err = ref None in
  let specs =
    List.filter_map
      (fun item ->
        if !err <> None then None
        else if String.length item > 5 && String.sub item 0 5 = "seed=" then (
          (match int_of_string_opt (String.sub item 5 (String.length item - 5)) with
          | Some n -> seed := Some n
          | None -> err := Some (Printf.sprintf "bad seed in %S" item));
          None)
        else begin
          let body, action_s = split_on_first '!' item in
          let body, key = split_on_first '@' body in
          let site, nth_s = split_on_first ':' body in
          let which =
            match nth_s with
            | None -> None (* resolved against the seed below *)
            | Some "*" -> Some Every
            | Some n -> (
                match int_of_string_opt n with
                | Some n when n >= 1 -> Some (Nth n)
                | _ ->
                    err := Some (Printf.sprintf "bad occurrence in %S" item);
                    None)
          in
          let action =
            match action_s with
            | None -> Some Raise
            | Some a -> (
                match action_of_string a with
                | Some a -> Some a
                | None ->
                    err := Some (Printf.sprintf "bad action in %S" item);
                    None)
          in
          if not (List.mem site sites) then begin
            err :=
              Some
                (Printf.sprintf "unknown fault site %S (known: %s)" site
                   (String.concat ", " sites));
            None
          end
          else
            match (which, action, !err) with
            | w, Some a, None ->
                Some (fun seed ->
                    {
                      s_site = site;
                      s_which =
                        (match w with
                        | Some w -> w
                        | None -> (
                            match seed with
                            | Some sd -> Nth (seeded_nth sd site)
                            | None -> Nth 1));
                      s_key = key;
                      s_action = a;
                    })
            | _ -> None
        end)
      items
  in
  match !err with
  | Some e -> Error e
  | None -> Ok (List.map (fun mk -> mk !seed) specs)

let spec_str sp =
  Printf.sprintf "%s%s%s!%s" sp.s_site
    (match sp.s_which with Every -> ":*" | Nth 1 -> "" | Nth n -> ":" ^ string_of_int n)
    (match sp.s_key with None -> "" | Some k -> "@" ^ k)
    (action_str sp.s_action)

(* ------------------------------------------------------------ plan --- *)

type armed = { spec : spec; count : int Atomic.t }

let plan : armed list Atomic.t = Atomic.make []

let set_plan specs =
  Atomic.set plan
    (List.map (fun spec -> { spec; count = Atomic.make 0 }) specs)

let clear () = Atomic.set plan []
let active () = Atomic.get plan <> []
let current_plan () = List.map (fun a -> a.spec) (Atomic.get plan)

(* [GCATCH_FAULTS] arms a plan for processes not started through a CLI
   flag (the CI matrix drives tests this way).  A malformed variable is
   ignored rather than fatal: the library must never abort a host
   program over an env var. *)
let () =
  match Sys.getenv_opt "GCATCH_FAULTS" with
  | None -> ()
  | Some s -> ( match parse s with Ok specs -> set_plan specs | Error _ -> ())

(* How long a [Stall] action sleeps: long enough to overlap a deadline
   watchdog in tests, short enough not to matter anywhere else. *)
let stall_s = 0.05

(* ------------------------------------------------------------ fire --- *)

let key_matches sel key =
  match sel with
  | None -> true
  | Some sub -> (
      let kl = String.length key and sl = String.length sub in
      sl <= kl
      &&
      let rec go i = i + sl <= kl && (String.sub key i sl = sub || go (i + 1)) in
      go 0)

(* Ask whether the (site, key) trigger should fault.  The fast path —
   no plan armed — is one atomic load and a physical-equality check. *)
let fire ~site ?(key = "") () : action option =
  match Atomic.get plan with
  | [] -> None
  | armed ->
      let hit =
        List.find_map
          (fun a ->
            if a.spec.s_site <> site || not (key_matches a.spec.s_key key)
            then None
            else
              let n = 1 + Atomic.fetch_and_add a.count 1 in
              match a.spec.s_which with
              | Every -> Some a.spec.s_action
              | Nth k -> if n = k then Some a.spec.s_action else None)
          armed
      in
      (match hit with
      | Some action when Goobs.Journal.enabled () ->
          Goobs.Journal.emit ~event:"fault.fired"
            [
              ("site", Goobs.Journal.S site);
              ("key", Goobs.Journal.S key);
              ("action", Goobs.Journal.S (action_str action));
            ]
      | _ -> ());
      hit

(* Convenience for sites with no action-specific behaviour: [Raise],
   [Timeout] and [Corrupt] all raise {!Injected} (the site has nothing
   to corrupt and no solver to time out); [Stall] sleeps and returns. *)
let trigger ~site ?(key = "") () : unit =
  match fire ~site ~key () with
  | None -> ()
  | Some Stall -> Unix.sleepf stall_s
  | Some (Raise | Timeout | Corrupt) -> raise (Injected (site, key))
