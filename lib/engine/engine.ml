module D = Diagnostics

(* Staged analysis engine (the workflow of the paper's Figure 2, made
   reusable).

   An [Engine.t] owns an artifact cache and a registry of detector
   passes.  Artifacts are the per-stage products of the frontend —
   tokens -> AST -> typed AST -> IR -> alias facts / call graph — and
   are memoized per *source set*, keyed by a content hash, so analysing
   the same sources twice (bench E1–E8, GFix re-using GCatch's compile,
   multi-config CLI runs) performs exactly one parse/typecheck/lower.

   Stages inside one artifact record are lazy: a pass that only needs
   the IR never pays for the call graph; the alias/callgraph stages are
   shared by every pass that forces them. *)

module M = Goobs.Metrics
module Trace = Goobs.Trace
module J = Goobs.Journal

(* ------------------------------------------------------- artifacts --- *)

type artifacts = {
  a_key : string;                 (* content hash of (name, sources) *)
  a_name : string;
  a_sources : string list;
  a_tokens : Minigo.Lexer.token_info list list Lazy.t;
  a_ast : Minigo.Ast.program Lazy.t;    (* parsed, not yet typed *)
  a_typed : Minigo.Ast.program Lazy.t;  (* type-checked, normalised *)
  a_ir : Goir.Ir.program Lazy.t;
  a_alias : Goanalysis.Alias.t Lazy.t;
  a_callgraph : Goanalysis.Callgraph.t Lazy.t;
  a_content : string option Lazy.t;
      (* combined digest of every file's typed+lowered *compiled form*
         (the marshalled bytes the disk tier stores), when all are
         known; [None] when the disk tier is off or any file's digest
         is unavailable.  Detector passes key their result cache on it:
         an edit that changes a file's content hash but not its
         compiled form (a trailing comment) still hits the pass
         cache. *)
}

(* ---------------------------------------------------------- passes --- *)

(* A detector pass: named, individually enable-able, produces unified
   diagnostics and reports its integer metrics (solver calls, path
   events, …) into the [Goobs.Metrics.t] registry it is handed.  The
   engine gives each pass run a fresh registry, snapshots it as the
   run's metrics, then folds it into the engine-wide registry — one
   source of truth for the CLI, bench --json, and tests.  The pass also
   receives the engine's domain pool so it can fan its independent
   sub-problems (channels, functions) out across workers. *)
type metrics = (string * int) list

type pass = {
  p_name : string;
  p_doc : string;
  p_default : bool;              (* runs unless explicitly deselected *)
  p_run : Pool.t -> M.t -> artifacts -> D.t list;
}

type pass_run = {
  pr_pass : string;
  pr_elapsed_s : float;
  pr_diags : D.t list;
  pr_metrics : metrics;
}

type run = {
  r_name : string;
  r_key : string;
  r_from_cache : bool;           (* artifacts served from the cache *)
  r_artifacts : artifacts option; (* None when the frontend failed *)
  r_diags : D.t list;            (* frontend diagnostics + all passes *)
  r_passes : pass_run list;
  r_elapsed_s : float;
  r_health : (string * int) list;
      (* the run's analysis-health ledger: "health.*" counters summed
         over the frontend units and every pass's units *)
}

(* Per-file artifact memos, keyed by the file's content hash (plus, for
   the stages that read cross-file context, the program's signature
   fingerprint).  Promise-keyed so concurrent analyses sharing a file
   compute each per-file unit at most once — which also keeps the
   per-file stage counters schedule-independent. *)
type file_caches = {
  fc_tokens : Minigo.Lexer.token_info list Memo.t;
  fc_ast : Minigo.Ast.file Memo.t;
  fc_sigs : Minigo.Typecheck.sig_item list Memo.t;
  fc_typed : Minigo.Ast.file Memo.t;
  fc_lowered : Goir.Lower.lowered_file Memo.t;
  fc_facts :
    (Goanalysis.Alias.func_summary list * Goanalysis.Callgraph.func_sites list)
    Memo.t;
}

type t = {
  mutable passes : pass list;
  cache : (string, artifacts) Hashtbl.t;
  cache_atime : (string, int) Hashtbl.t;
      (* recency tick per source-set key, for LRU eviction *)
  mutable cache_clock : int;
  mutable registry : M.t;
      (* stage/cache counters, pass timings, pass metrics.  Mutable so a
         long-lived server can point the engine at a fresh per-request
         registry before each run and fold it into the process registry
         after ([merge_into]) — request-scoped counters without losing
         /metrics monotonicity. *)
  max_entries : int;
  pool : Pool.t;
  lock : Mutex.t; (* guards [cache] and [file_times]: batch drivers
                     analyse several source sets concurrently through
                     one engine *)
  cache_dir : string option; (* optional on-disk tier for per-file
                                artifacts (parse/typed/lowered) *)
  fc : file_caches;
  file_times : (string, float) Hashtbl.t;
      (* cumulative frontend seconds per source file, for --profile *)
  file_digests : (string, string) Hashtbl.t;
      (* "<stage>:<key>" -> digest of the value's marshalled bytes,
         recorded by the disk tier on read and write; feeds
         [a_content] *)
}

(* [jobs] sizes the engine's domain pool (shared process-wide per size);
   [pool] overrides it with a caller-managed pool.  The default is
   sequential: parallelism is opt-in so that test code creating many
   engines never spawns domains behind the caller's back.  [registry]
   lets the caller unify engine metrics with a wider scope (the CLI
   passes [Goobs.Metrics.default]); the default is a private registry
   per engine so concurrent test engines never share counters. *)
let create ?(max_entries = 512) ?(passes = []) ?(jobs = 1) ?pool ?registry
    ?cache_dir () =
  let pool = match pool with Some p -> p | None -> Pool.get ~jobs in
  let registry = match registry with Some r -> r | None -> M.create () in
  {
    passes;
    cache = Hashtbl.create 32;
    cache_atime = Hashtbl.create 32;
    cache_clock = 0;
    registry;
    max_entries;
    pool;
    lock = Mutex.create ();
    cache_dir;
    fc =
      {
        fc_tokens = Memo.create ();
        fc_ast = Memo.create ();
        fc_sigs = Memo.create ();
        fc_typed = Memo.create ();
        fc_lowered = Memo.create ();
        fc_facts = Memo.create ();
      };
    file_times = Hashtbl.create 64;
    file_digests = Hashtbl.create 64;
  }

let pool t = t.pool
let jobs t = Pool.jobs t.pool

let locked (t : t) f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record_digest (t : t) ~stage ~key d =
  locked t (fun () -> Hashtbl.replace t.file_digests (stage ^ ":" ^ key) d)

let value_digest (t : t) ~stage ~key =
  locked t (fun () -> Hashtbl.find_opt t.file_digests (stage ^ ":" ^ key))

let register (t : t) (p : pass) =
  if List.exists (fun q -> q.p_name = p.p_name) t.passes then
    invalid_arg ("Engine.register: duplicate pass " ^ p.p_name);
  t.passes <- t.passes @ [ p ]

let passes t = t.passes
let registry t = t.registry

(* Swap the engine's reporting registry.  Callers serialize runs (the
   server holds its request lock across set + analyse), so counters of a
   run never straddle two registries. *)
let set_registry t r = t.registry <- r

(* Bound the per-file memo tables to roughly [mb] megabytes total, split
   evenly across the six stages (the typed/lowered tables dominate in
   practice, but an even split keeps small stages from being squeezed to
   zero).  Evictions are counted per engine under
   "engine.file_mem_evictions".  [mb <= 0] removes the bound. *)
let set_cache_budget_mb (t : t) mb =
  let per = if mb <= 0 then 0 else max 1 (mb * 1024 * 1024 / 6) in
  let on_evict n = M.add (M.counter t.registry "engine.file_mem_evictions") n in
  Memo.set_budget ~on_evict t.fc.fc_tokens ~bytes:per;
  Memo.set_budget ~on_evict t.fc.fc_ast ~bytes:per;
  Memo.set_budget ~on_evict t.fc.fc_sigs ~bytes:per;
  Memo.set_budget ~on_evict t.fc.fc_typed ~bytes:per;
  Memo.set_budget ~on_evict t.fc.fc_lowered ~bytes:per;
  Memo.set_budget ~on_evict t.fc.fc_facts ~bytes:per

(* ---------------------------------------------------- warm state --- *)

(* A marshallable image of everything that makes a long-lived engine
   warm: the six per-file memo tiers plus the value-digest table that
   feeds [a_content] (and through it the pass-result cache key).  The
   serving layer snapshots this to disk so a restarted daemon answers
   its first request warm.  Entry lists are sorted by key (Memo.export
   guarantees it), so exporting the same engine state twice yields the
   same bytes. *)
type warm_state = {
  ws_tokens : (string * Minigo.Lexer.token_info list) list;
  ws_ast : (string * Minigo.Ast.file) list;
  ws_sigs : (string * Minigo.Typecheck.sig_item list) list;
  ws_typed : (string * Minigo.Ast.file) list;
  ws_lowered : (string * Goir.Lower.lowered_file) list;
  ws_facts :
    (string
    * (Goanalysis.Alias.func_summary list * Goanalysis.Callgraph.func_sites list))
    list;
  ws_digests : (string * string) list;
}

let export_warm_state (t : t) : warm_state =
  let digests =
    locked t (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.file_digests [])
  in
  {
    ws_tokens = Memo.export t.fc.fc_tokens;
    ws_ast = Memo.export t.fc.fc_ast;
    ws_sigs = Memo.export t.fc.fc_sigs;
    ws_typed = Memo.export t.fc.fc_typed;
    ws_lowered = Memo.export t.fc.fc_lowered;
    ws_facts = Memo.export t.fc.fc_facts;
    ws_digests = List.sort compare digests;
  }

(* Marshalling loses string interning; re-intern the AST-bearing stages
   on the way in, exactly as the disk tier does on read. *)
let import_warm_state (t : t) (ws : warm_state) =
  Memo.import t.fc.fc_tokens ws.ws_tokens;
  Memo.import t.fc.fc_ast
    (List.map (fun (k, v) -> (k, Minigo.Intern.file v)) ws.ws_ast);
  Memo.import t.fc.fc_sigs ws.ws_sigs;
  Memo.import t.fc.fc_typed
    (List.map (fun (k, v) -> (k, Minigo.Intern.file v)) ws.ws_typed);
  Memo.import t.fc.fc_lowered ws.ws_lowered;
  Memo.import t.fc.fc_facts ws.ws_facts;
  locked t (fun () ->
      List.iter
        (fun (k, d) ->
          if not (Hashtbl.mem t.file_digests k) then
            Hashtbl.replace t.file_digests k d)
        ws.ws_digests)

(* Read one engine counter by registry name (e.g. "stage.parse.runs",
   "engine.cache_hits"); unknown names read as 0. *)
let counter_value (t : t) name = M.value (M.counter t.registry name)

let stats_str (t : t) =
  let c = counter_value t in
  Printf.sprintf
    "cache: %d hit(s), %d miss(es); stage runs: %d lex, %d parse, %d \
     typecheck, %d lower, %d alias, %d callgraph"
    (c "engine.cache_hits") (c "engine.cache_misses") (c "stage.lex.runs")
    (c "stage.parse.runs")
    (c "stage.typecheck.runs")
    (c "stage.lower.runs") (c "stage.alias.runs") (c "stage.callgraph.runs")

(* ------------------------------------------------- frontend stages --- *)

let key_of ~name sources =
  Digest.to_hex (Digest.string (String.concat "\x00" (name :: sources)))

let cached (t : t) ~name sources =
  locked t (fun () -> Hashtbl.mem t.cache (key_of ~name sources))

(* ------------------------------------------- per-file disk tier ------ *)

(* On-disk per-file artifacts (parse AST, typed AST, lowered file), one
   file per (stage, content key), mirroring the solve cache's tier:
   atomic writes (temp + rename), integrity-checked reads, best-effort
   throughout — a corrupted entry is a miss, a vanished directory
   retires the tier with one warning.  This is what makes a fresh
   process warm: re-analysing an edited tree re-lexes/parses/typechecks
   only the files whose content hash changed. *)

let file_format_version = "gcatch-file-cache/2"
let disk_enabled = Atomic.make true

(* Tests re-arm the disk tier between scenarios. *)
let reset_disk_state () = Atomic.set disk_enabled true

let c_read_error = lazy (M.counter M.default "engine.file_cache_read_error")
let c_write_error = lazy (M.counter M.default "engine.file_cache_write_error")

let disable_disk dir =
  if Atomic.compare_and_set disk_enabled true false then
    Goobs.Log.warn
      ~kv:[ ("dir", dir) ]
      "file-cache directory unavailable; continuing memory-only"

let dir_usable dir =
  Sys.file_exists dir
  || match Unix.mkdir dir 0o755 with
     | () -> true
     | exception Unix.Unix_error (Unix.EEXIST, _, _) -> true
     | exception _ -> false

let disk_file dir ~stage key =
  Filename.concat dir (Printf.sprintf "gcatch-%s-%s.fe" key stage)

(* payload = digest(body) ^ body, body = hdr ^ vbytes with
   hdr = Marshal(version, stage, key, digest(vbytes)) and
   vbytes = Marshal(v).  Carrying the value digest in the fixed-size
   header lets [disk_digest] report an entry's compiled-content digest
   from a few hundred bytes of IO, without unmarshalling the value —
   the engine records digests per (stage, key) so detector passes can
   key their result cache on compiled content rather than source
   hashes.  Readers return [Some (v, value_digest)]. *)
let disk_read dir ~stage ~key =
  (match Faults.fire ~site:"cache.read" ~key () with
  | None -> ()
  | Some Faults.Stall -> Pool.sleep_yielding Faults.stall_s
  | Some _ -> raise (Faults.Injected ("cache.read", key)));
  let path = disk_file dir ~stage key in
  match open_in_bin path with
  | exception Sys_error _ -> None (* no entry *)
  | ic ->
      let r =
        match
          let n = in_channel_length ic in
          if n < 16 then None
          else begin
            let digest = really_input_string ic 16 in
            let body = really_input_string ic (n - 16) in
            if Digest.string body <> digest then None
            else
              let v, st, k, vd =
                (Marshal.from_string body 0
                  : string * string * string * string)
              in
              if v = file_format_version && st = stage && k = key then
                let hl = Marshal.total_size (Bytes.unsafe_of_string body) 0 in
                Some (Marshal.from_string body hl, vd)
              else None
          end
        with
        | r -> r
        | exception _ -> None
      in
      close_in_noerr ic;
      (match r with
      | Some _ -> ()
      | None -> ( try Sys.remove path with _ -> ()));
      r

let disk_write dir ~stage ~key v =
  (match Faults.fire ~site:"cache.write" ~key () with
  | None -> ()
  | Some Faults.Stall -> Pool.sleep_yielding Faults.stall_s
  | Some _ -> raise (Faults.Injected ("cache.write", key)));
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let vbytes = Marshal.to_string v [ Marshal.No_sharing ] in
  let vd = Digest.to_hex (Digest.string vbytes) in
  let hdr = Marshal.to_string (file_format_version, stage, key, vd) [] in
  let body = hdr ^ vbytes in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".gcatch-%s-%s.%d.tmp" key stage (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Digest.string body);
      output_string oc body);
  match Sys.rename tmp (disk_file dir ~stage key) with
  | () -> vd
  | exception e ->
      (try Sys.remove tmp with _ -> ());
      raise e

(* Read just the value digest from an entry's header, without touching
   the value bytes.  Trusts the writer: body integrity is only checked
   by [disk_read] on an actual value load — a corrupted entry merely
   yields a pass-cache key nothing was stored under, which converges
   to a recompute. *)
let disk_digest dir ~stage ~key =
  let path = disk_file dir ~stage key in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let r =
        match
          let n = in_channel_length ic in
          if n < 16 + Marshal.header_size then None
          else begin
            seek_in ic 16;
            let h0 = really_input_string ic Marshal.header_size in
            let dsz = Marshal.data_size (Bytes.unsafe_of_string h0) 0 in
            if n < 16 + Marshal.header_size + dsz then None
            else
              let rest = really_input_string ic dsz in
              let v, st, k, vd =
                (Marshal.from_string (h0 ^ rest) 0
                  : string * string * string * string)
              in
              if v = file_format_version && st = stage && k = key then
                Some vd
              else None
          end
        with
        | r -> r
        | exception _ -> None
      in
      close_in_noerr ic;
      r

let checked_digest (t : t) ~stage ~key =
  match value_digest t ~stage ~key with
  | Some d -> Some d
  | None -> (
      match t.cache_dir with
      | Some dir when Atomic.get disk_enabled -> (
          match (try disk_digest dir ~stage ~key with _ -> None) with
          | Some d ->
              record_digest t ~stage ~key d;
              Some d
          | None -> None)
      | _ -> None)

let checked_read (t : t) ~stage ~key =
  match t.cache_dir with
  | Some dir when Atomic.get disk_enabled ->
      Pool.yield ();
      let r =
        try disk_read dir ~stage ~key
        with _ ->
          M.incr (Lazy.force c_read_error);
          if not (dir_usable dir) then disable_disk dir;
          None
      in
      Pool.yield ();
      (match r with
      | Some (v, d) ->
          record_digest t ~stage ~key d;
          Some v
      | None -> None)
  | _ -> None

let checked_write (t : t) ~stage ~key v =
  match t.cache_dir with
  | Some dir when Atomic.get disk_enabled ->
      Pool.yield ();
      (try record_digest t ~stage ~key (disk_write dir ~stage ~key v)
       with _ ->
         M.incr (Lazy.force c_write_error);
         if not (dir_usable dir) then disable_disk dir);
      Pool.yield ()
  | _ -> ()

(* ------------------------------------------- per-file stage units ---- *)

(* One per-file unit of one frontend stage: memory tier, then (for the
   marshalable stages) the disk tier, then compute.  Only successes are
   cached — a failing file re-raises out of the program-level lazy,
   which memoizes the exception, so error semantics are unchanged.  The
   stage's run counter counts actual computations: after a one-file
   edit, exactly one unit per stage recomputes and the counters say so.
   The counter is bumped *before* computing so a failing unit still
   counts as an attempted run. *)
let file_unit (t : t) ~stage ~memo ~key ~file ?(disk = false) ?reintern
    compute =
  let t0 = Clock.now_s () in
  let from_disk = ref false in
  match
    Memo.find_or_compute memo key (fun () ->
        match (if disk then checked_read t ~stage ~key else None) with
        | Some v ->
            from_disk := true;
            let v = match reintern with Some f -> f v | None -> v in
            (v, true)
        | None ->
            M.incr (M.counter t.registry ("stage." ^ stage ^ ".runs"));
            let v = compute () in
            if disk then checked_write t ~stage ~key v;
            (v, true))
  with
  | `Hit v ->
      M.incr (M.counter t.registry "engine.file_mem_hit");
      v
  | `Computed v ->
      let dt = Clock.elapsed_since t0 in
      if !from_disk then M.incr (M.counter t.registry "engine.file_disk_hit");
      (* the journal's per-file frontend ledger: exactly one event per
         (stage, key) unit actually computed or loaded — the memo makes
         the set schedule-independent, so streams diff clean across
         --jobs once sorted *)
      if J.enabled () then
        J.emit
          ~event:(if !from_disk then "file.disk_hit" else "file.compiled")
          ~dur_ms:(1000.0 *. dt)
          [
            ("stage", J.S stage);
            ("file", J.S file);
            ("key", J.S (String.sub key 0 (min 12 (String.length key))));
          ];
      M.observe
        (M.histogram t.registry ("stage." ^ stage ^ ".file_ms"))
        (1000.0 *. dt);
      locked t (fun () ->
          Hashtbl.replace t.file_times file
            (dt
            +. Option.value (Hashtbl.find_opt t.file_times file) ~default:0.0));
      v

(* Program-level span for one stage: trace span plus the
   "stage.<name>.ms" wall-time histogram.  The per-file stages bump
   their run counters per file (in [file_unit]); the whole-program
   stages use [stage_counted], preserving the one-run-per-program
   counter semantics. *)
let stage_span (t : t) name f =
  Trace.with_span ~name:("stage." ^ name) (fun () ->
      let t0 = Clock.now_s () in
      let r = f () in
      let dt = Clock.elapsed_since t0 in
      M.observe (M.histogram t.registry ("stage." ^ name ^ ".ms")) (1000.0 *. dt);
      if J.enabled () then
        J.emit ~event:"stage.done" ~dur_ms:(1000.0 *. dt)
          [ ("stage", J.S name) ];
      r)

let stage_counted (t : t) name f =
  stage_span t name (fun () ->
      M.incr (M.counter t.registry ("stage." ^ name ^ ".runs"));
      f ())

(* Minimum items per forked task for per-file fan-outs.  Small batches
   run inline (no session, no fork overhead); large ones chunk so the
   per-task grain stays coarse.  Derived from the batch size alone —
   never from the job count — so counters and diagnostics stay
   schedule-independent. *)
let frontend_grain n = if n <= 8 then n else max 2 (n / 32)

(* Build the lazy stage chain for one source set.  File naming matches
   [Parser.parse_program] so locations are byte-identical to the
   pre-engine pipeline.

   Every per-file stage fans out over the engine's pool: results come
   back in file order and a failing file re-raises the smallest file
   index's exception (after the siblings finish and publish their cache
   entries), so diagnostics are byte-identical at any [jobs] and a
   salvage retry recompiles only the stubbed file.  Per-file artifacts
   are keyed by the file's content hash; the stages that read cross-file
   context (typecheck, lower, facts) add the program's signature
   fingerprint, so editing one file's bodies re-runs exactly that file
   while a signature change invalidates every dependent. *)
(* A domain-safe once-cell: the per-file compute closures below share
   whole-program inputs (type environment, lowering signatures) that a
   fully cache-warm run never needs — build them on first use only.
   The builders never yield, so a task computing one cannot suspend
   while holding the lock. *)
let once f =
  let mu = Mutex.create () in
  let r = ref None in
  fun () ->
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () ->
        match !r with
        | Some v -> v
        | None ->
            let v = f () in
            r := Some v;
            v)

let build_artifacts (t : t) ~name sources : artifacts =
  let keyed =
    List.mapi
      (fun i src ->
        let file = Printf.sprintf "%s/file%d.go" name i in
        (file, src, Digest.to_hex (Digest.string (file ^ "\x00" ^ src))))
      sources
  in
  let grain = frontend_grain (List.length keyed) in
  let pmap f xs = Pool.map ~pool:t.pool ~grain f xs in
  let lex_file (file, src, key) =
    file_unit t ~stage:"lex" ~memo:t.fc.fc_tokens ~key ~file (fun () ->
        Faults.trigger ~site:"frontend" ~key:file ();
        Minigo.Lexer.tokenize ~file src)
  in
  let parse_file ((file, _, key) as fk) =
    file_unit t ~stage:"parse" ~memo:t.fc.fc_ast ~key ~file ~disk:true
      ~reintern:Minigo.Intern.file (fun () ->
        Minigo.Parser.parse_tokens ~file (lex_file fk))
  in
  let a_tokens = lazy (stage_span t "lex" (fun () -> pmap lex_file keyed)) in
  let a_ast = lazy (stage_span t "parse" (fun () -> pmap parse_file keyed)) in
  (* a file's declaration signatures: the only cross-file input the
     downstream per-file stages read.  Keyed on content alone (no
     program fingerprint — signatures depend only on the file's own
     text), so a warm run reads 49 tiny entries plus parses the one
     edited file instead of re-parsing the world. *)
  let sig_file ((file, _, key) as fk) =
    file_unit t ~stage:"sig" ~memo:t.fc.fc_sigs ~key ~file ~disk:true
      (fun () -> Minigo.Typecheck.file_signatures (parse_file fk))
  in
  let a_sigs = lazy (stage_span t "sig" (fun () -> pmap sig_file keyed)) in
  let a_fp =
    lazy
      (Minigo.Typecheck.signatures_fingerprint
         (List.concat (Lazy.force a_sigs)))
  in
  (* whole-program signature tables, built from the per-file signature
     items on first use only: a run whose passes are all served from
     the result cache never constructs them *)
  let env =
    once (fun () ->
        Minigo.Typecheck.env_of_signatures (List.concat (Lazy.force a_sigs)))
  in
  let lsigs =
    once (fun () ->
        Goir.Lower.sigs_of_signatures (List.concat (Lazy.force a_sigs)))
  in
  let typed_file ((file, _, key) as fk) =
    let fp = Lazy.force a_fp in
    let key = Digest.to_hex (Digest.string (key ^ "\x00" ^ fp)) in
    file_unit t ~stage:"typecheck" ~memo:t.fc.fc_typed ~key ~file ~disk:true
      ~reintern:Minigo.Intern.file (fun () ->
        Minigo.Typecheck.check_file (env ()) (parse_file fk))
  in
  let a_typed =
    lazy (stage_span t "typecheck" (fun () -> pmap typed_file keyed))
  in
  let lowered_file ((file, _, key) as fk) =
    let fp = Lazy.force a_fp in
    let key = Digest.to_hex (Digest.string (key ^ "\x01" ^ fp)) in
    file_unit t ~stage:"lower" ~memo:t.fc.fc_lowered ~key ~file ~disk:true
      (fun () -> Goir.Lower.lower_file (lsigs ()) (typed_file fk))
  in
  let a_lowered =
    lazy (stage_span t "lower" (fun () -> pmap lowered_file keyed))
  in
  let a_ir =
    lazy
      (stage_span t "assemble" (fun () ->
           Goir.Lower.assemble (Lazy.force a_typed) (Lazy.force a_lowered)))
  in
  (* per-file local facts for the global analyses, with file-local
     program points; rebased below by each file's pp offset *)
  let a_facts =
    lazy
      (stage_span t "facts" (fun () ->
           let lfs = Lazy.force a_lowered in
           let fp = Lazy.force a_fp in
           pmap
             (fun ((file, _, key), lf) ->
               let key = Digest.to_hex (Digest.string (key ^ "\x02" ^ fp)) in
               file_unit t ~stage:"facts" ~memo:t.fc.fc_facts ~key ~file
                 (fun () ->
                   let funcs = List.map snd (Goir.Lower.file_funcs lf) in
                   ( List.map Goanalysis.Alias.extract_func funcs,
                     List.map Goanalysis.Callgraph.extract_func funcs )))
             (List.combine keyed lfs)))
  in
  let offsets lfs =
    let off = ref 0 in
    List.map
      (fun lf ->
        let o = !off in
        off := o + Goir.Lower.file_pp_count lf;
        o)
      lfs
  in
  let a_alias =
    lazy
      (stage_counted t "alias" (fun () ->
           let ir = Lazy.force a_ir in
           let lfs = Lazy.force a_lowered in
           let facts = Lazy.force a_facts in
           let summaries =
             List.concat
               (List.map2
                  (fun off (sums, _) ->
                    List.map (Goanalysis.Alias.rebase_summary off) sums)
                  (offsets lfs) facts)
           in
           Goanalysis.Alias.solve ir summaries))
  in
  let a_callgraph =
    lazy
      (stage_counted t "callgraph" (fun () ->
           let ir = Lazy.force a_ir in
           let lfs = Lazy.force a_lowered in
           let facts = Lazy.force a_facts in
           let sites =
             List.concat
               (List.map2
                  (fun off (_, ss) ->
                    List.map (Goanalysis.Callgraph.rebase_sites off) ss)
                  (offsets lfs) facts)
           in
           Goanalysis.Callgraph.build_from_sites
             ~alias:(Lazy.force a_alias)
             ir sites))
  in
  (* The digest of every file's compiled form.  The cheap path reads
     each typed/lowered digest from the digest table or from the disk
     entry's header — no value load; only files with no entry (an
     edit, a cold run) compute their stage units.  Forcing this also
     surfaces every frontend error: each file either has cached
     typed+lowered entries (it compiled before) or gets compiled
     here. *)
  let a_content =
    lazy
      (let fp = Lazy.force a_fp in
       let part stage tag (_, _, key) =
         let key = Digest.to_hex (Digest.string (key ^ tag ^ fp)) in
         checked_digest t ~stage ~key
       in
       let file_part fk =
         match (part "typecheck" "\x00" fk, part "lower" "\x01" fk) with
         | Some d1, Some d2 -> Some (d1 ^ d2)
         | _ -> None
       in
       let ds = List.map file_part keyed in
       let missing =
         List.filter_map
           (fun (fk, d) -> if d = None then Some fk else None)
           (List.combine keyed ds)
       in
       let ds =
         if missing = [] then ds
         else begin
           (* compile the missing files; through the whole-stage lazies
              when everything is missing (a cold run — keeps the
              stage-span accounting), per file otherwise *)
           (if List.length missing = List.length keyed then begin
              ignore (Lazy.force a_typed);
              ignore (Lazy.force a_lowered)
            end
            else
              ignore
                (pmap
                   (fun fk ->
                     ignore (typed_file fk);
                     ignore (lowered_file fk))
                   missing));
           List.map file_part keyed
         end
       in
       if List.for_all Option.is_some ds then
         Some
           (Digest.to_hex
              (Digest.string
                 (String.concat ""
                    (List.map (Option.value ~default:"") ds))))
       else None)
  in
  {
    a_key = key_of ~name sources;
    a_name = name;
    a_sources = sources;
    a_tokens;
    a_ast;
    a_typed;
    a_ir;
    a_alias;
    a_callgraph;
    a_content;
  }

(* Look up (or create) the artifact record for a source set.  Stages are
   not forced here; forcing — and any frontend exception — happens at
   the use site, exactly once per cached entry (lazy memoizes the
   exception too). *)
let artifacts (t : t) ~name sources : artifacts =
  let key = key_of ~name sources in
  locked t (fun () ->
      t.cache_clock <- t.cache_clock + 1;
      match Hashtbl.find_opt t.cache key with
      | Some a ->
          M.incr (M.counter t.registry "engine.cache_hits");
          Hashtbl.replace t.cache_atime key t.cache_clock;
          a
      | None ->
          M.incr (M.counter t.registry "engine.cache_misses");
          (* Evict the least-recently-used source set when full.  An
             artifact record pins the whole-program IR once forced, so a
             long-lived server runs with a small [max_entries] and leans
             on this bound; one-shot workloads never come close to it.
             Per-file memos are bounded separately ([set_cache_budget_mb])
             — evicting a source set must not drop per-file work that
             other live sets still share. *)
          while Hashtbl.length t.cache >= t.max_entries do
            let victim = ref None in
            Hashtbl.iter
              (fun k tick ->
                match !victim with
                | Some (_, best) when best <= tick -> ()
                | _ -> victim := Some (k, tick))
              t.cache_atime;
            match !victim with
            | None -> Hashtbl.reset t.cache (* atime lost sync; start over *)
            | Some (k, _) ->
                Hashtbl.remove t.cache k;
                Hashtbl.remove t.cache_atime k;
                M.incr (M.counter t.registry "engine.artifact_evictions")
          done;
          let a = build_artifacts t ~name sources in
          Hashtbl.add t.cache key a;
          Hashtbl.replace t.cache_atime key t.cache_clock;
          a)

(* Convert a frontend exception into a structured diagnostic.  The
   message formats mirror what the CLIs used to print by hand. *)
let frontend_diag : exn -> D.t option = function
  | Minigo.Lexer.Lex_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/lex" ~loc
           (Printf.sprintf "lex error: %s at %s" m (Minigo.Loc.to_string loc)))
  | Minigo.Parser.Parse_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/parse" ~loc
           (Printf.sprintf "parse error: %s at %s" m (Minigo.Loc.to_string loc)))
  | Minigo.Typecheck.Type_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/typecheck" ~loc
           (Printf.sprintf "type error: %s at %s" m (Minigo.Loc.to_string loc)))
  | Goir.Lower.Lower_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/lower" ~loc
           (Printf.sprintf "lowering error: %s at %s" m
              (Minigo.Loc.to_string loc)))
  | Faults.Injected ("frontend", key) ->
      (* the injection site sits in the per-file lexer loop; carry the
         file name as a location so salvage can identify the file *)
      Some
        (D.v ~pass:"frontend/fault"
           ~loc:(Minigo.Loc.make ~file:key ~line:1 ~col:1)
           (Printf.sprintf "injected fault at frontend (%s)" key))
  | _ -> None

(* Compile a source set through the frontend stages, capturing frontend
   exceptions as diagnostics instead of letting them escape. *)
let compile (t : t) ~name sources : (artifacts, D.t) result =
  let a = artifacts t ~name sources in
  (* forcing [a_content] forces the typed and lowered files, which
     surfaces every frontend error (assembly is a pure merge and cannot
     fail) while leaving [a_ir] unforced: a run whose passes are all
     served from the result cache never pays for whole-program
     assembly *)
  match Lazy.force a.a_content with
  | _ -> Ok a
  | exception e -> (
      match frontend_diag e with Some d -> Error d | None -> raise e)

(* -------------------------------------------------------- analysis --- *)

let select_passes (t : t) ?only ?(extra = []) () : pass list =
  let check_known names =
    List.iter
      (fun n ->
        if not (List.exists (fun p -> p.p_name = n) t.passes) then
          invalid_arg (Printf.sprintf "Engine.analyse: unknown pass %S" n))
      names
  in
  match only with
  | Some names ->
      check_known names;
      List.filter (fun p -> List.mem p.p_name names) t.passes
  | None ->
      check_known extra;
      List.filter
        (fun p -> p.p_default || List.mem p.p_name extra)
        t.passes

(* ------------------------------------------- frontend fault salvage --- *)

(* Identify which file a frontend diagnostic points at: locations are
   named "%s/file%d.go" by [build_artifacts]. *)
let failing_file_index ~name ~n (d : D.t) : int option =
  match d.D.loc with
  | None -> None
  | Some l ->
      let file = Minigo.Loc.file l in
      let prefix = name ^ "/file" in
      let plen = String.length prefix in
      if
        String.length file > plen + 3
        && String.sub file 0 plen = prefix
        && Filename.check_suffix file ".go"
      then
        match
          int_of_string_opt (String.sub file plen (String.length file - plen - 3))
        with
        | Some k when k >= 0 && k < n -> Some k
        | _ -> None
      else None

(* Replace a broken file with a minimal parseable stub that keeps its
   package line (so sibling files still typecheck against the same
   package), preserving every other file's name and index. *)
let stub_of (src : string) : string =
  let first_line =
    match String.index_opt src '\n' with
    | Some i -> String.sub src 0 i
    | None -> src
  in
  if String.length first_line >= 8 && String.sub first_line 0 8 = "package " then
    first_line ^ "\n"
  else "package p\n"

(* Compile with per-file fault containment: when the frontend fails over
   a multi-file source set, the failing file is replaced by a stub and
   compilation retried, so one broken corpus file degrades to one
   frontend diagnostic (plus a supervision note) instead of killing the
   whole run.  Returns the artifacts (if any subset survived), the
   frontend diagnostics in discovery order, and the number of files
   dropped. *)
let compile_salvaging (t : t) ~name sources :
    artifacts option * D.t list * int =
  let arr = Array.of_list sources in
  let n = Array.length arr in
  let stubbed = Array.make n false in
  let dropped () =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 stubbed
  in
  let diags = ref [] in
  let rec go attempts =
    match compile t ~name (Array.to_list arr) with
    | Ok a -> Some a
    | Error d ->
        diags := d :: !diags;
        if n <= 1 || attempts >= n then None
        else
          match failing_file_index ~name ~n d with
          | Some k when not stubbed.(k) ->
              stubbed.(k) <- true;
              arr.(k) <- stub_of arr.(k);
              if dropped () >= n then None (* nothing left to analyse *)
              else begin
                diags :=
                  Supervise.diag ?loc:d.D.loc
                    ~unit_name:(Printf.sprintf "%s/file%d.go" name k)
                    Supervise.Degraded
                    "file dropped after frontend failure; siblings still \
                     analysed"
                  :: !diags;
                go (attempts + 1)
              end
          | _ -> None
  in
  let a = go 0 in
  (a, List.rev !diags, dropped ())

(* Run the frontend plus the selected detector passes over one source
   set.  Never raises on malformed input: lex/parse/type/lowering
   errors come back as [Error]-severity diagnostics in [r_diags].
   Every unit of work — each source file, each pass, and (inside the
   passes) each channel/function — runs behind a [Supervise] fault
   boundary, so a partial failure yields partial results plus health
   accounting rather than an aborted run. *)
let analyse ?only ?extra (t : t) ~name sources : run =
  let t0 = Clock.now_s () in
  let from_cache = cached t ~name sources in
  (* run-local health ledger for the units owned by the engine itself
     (source files, pass boundaries are accounted in each pass's
     registry); folded into the engine registry at the end *)
  let hreg = M.create () in
  let selected = select_passes t ?only ?extra () in
  let nfiles = List.length sources in
  if J.enabled () then
    J.emit ~event:"run.start"
      [
        ("name", J.S name);
        ("files", J.I nfiles);
        ("passes", J.I (List.length selected));
      ];
  (* run.end closes the ledger with schedule-independent facts only: the
     diagnostics digest, counts, and the health snapshot.  Elapsed time
     rides in the volatile dur_ms slot. *)
  let journal_run_end (r : run) : run =
    if J.enabled () then
      J.emit ~event:"run.end" ~dur_ms:(1000.0 *. r.r_elapsed_s)
        ([
           ("name", J.S r.r_name);
           ("key", J.S r.r_key);
           ("from_cache", J.B r.r_from_cache);
           ("diags", J.I (List.length r.r_diags));
           ("errors", J.I (List.length (List.filter D.is_error r.r_diags)));
           ( "digest",
             J.S (Digest.to_hex (Digest.string (D.list_to_json r.r_diags)))
           );
         ]
        @ List.map
            (fun (k, v) ->
              let k =
                if String.length k > 7 && String.sub k 0 7 = "health." then
                  "health_" ^ String.sub k 7 (String.length k - 7)
                else k
              in
              (k, J.I v))
            r.r_health);
    r
  in
  match compile_salvaging t ~name sources with
  | None, fdiags, ndropped ->
      let bump k v = M.add (M.counter hreg k) v in
      bump Supervise.h_attempted nfiles;
      bump Supervise.h_degraded (max 1 ndropped);
      bump Supervise.h_skipped (max 0 (nfiles - max 1 ndropped));
      let health = Supervise.health_of (M.counters_list hreg) in
      M.merge_into ~dst:t.registry hreg;
      journal_run_end
        {
          r_name = name;
          r_key = key_of ~name sources;
          r_from_cache = from_cache;
          r_artifacts = None;
          r_diags = fdiags;
          r_passes = [];
          r_elapsed_s = Clock.elapsed_since t0;
          r_health = health;
        }
  | Some a, fdiags, ndropped ->
      let bump k v = M.add (M.counter hreg k) v in
      bump Supervise.h_attempted nfiles;
      bump Supervise.h_ok (nfiles - ndropped);
      bump Supervise.h_degraded ndropped;
      let pass_runs =
        List.map
          (fun p ->
            if J.enabled () then
              J.emit ~event:"pass.start" [ ("pass", J.S p.p_name) ];
            let p0 = Clock.now_s () in
            (* A fresh registry per pass run keeps the run's metric
               snapshot exact even when several analyses share the
               engine concurrently; it is folded into the engine-wide
               registry afterwards. *)
            let preg = M.create () in
            let diags, ran =
              match
                Supervise.checked ~metrics:preg
                  ~unit_name:("pass " ^ p.p_name) (fun () ->
                    Trace.with_span ~name:("pass." ^ p.p_name) (fun () ->
                        p.p_run t.pool preg a))
              with
              | Ok ds -> (ds, true)
              | Error (`Skipped reason) ->
                  ( [
                      Supervise.diag ~pass:p.p_name
                        ~unit_name:("pass " ^ p.p_name) Supervise.Skipped
                        (reason ^ "; partial results flushed");
                    ],
                    false )
              | Error (`Degraded detail) ->
                  ( [
                      Supervise.diag ~pass:p.p_name
                        ~unit_name:("pass " ^ p.p_name)
                        Supervise.Internal_error
                        (detail ^ "; other passes unaffected");
                    ],
                    true )
            in
            let elapsed = Clock.elapsed_since p0 in
            if ran then begin
              M.incr (M.counter t.registry ("pass." ^ p.p_name ^ ".runs"));
              M.observe
                (M.histogram t.registry ("pass." ^ p.p_name ^ ".ms"))
                (1000.0 *. elapsed)
            end;
            if J.enabled () then
              J.emit ~event:"pass.done" ~dur_ms:(1000.0 *. elapsed)
                [
                  ("pass", J.S p.p_name);
                  ("ran", J.B ran);
                  ("diags", J.I (List.length diags));
                  ( "digest",
                    J.S
                      (Digest.to_hex (Digest.string (D.list_to_json diags)))
                  );
                ];
            let metrics = M.counters_list preg in
            M.merge_into ~dst:t.registry preg;
            {
              pr_pass = p.p_name;
              pr_elapsed_s = elapsed;
              pr_diags = diags;
              pr_metrics = metrics;
            })
          selected
      in
      let health =
        Supervise.health_sum
          (M.counters_list hreg
          :: List.map (fun pr -> pr.pr_metrics) pass_runs)
      in
      M.merge_into ~dst:t.registry hreg;
      journal_run_end
        {
          r_name = name;
          r_key = a.a_key;
          r_from_cache = from_cache;
          r_artifacts = Some a;
          r_diags = fdiags @ List.concat_map (fun pr -> pr.pr_diags) pass_runs;
          r_passes = pass_runs;
          r_elapsed_s = Clock.elapsed_since t0;
          r_health = health;
        }

let errors (r : run) = List.filter D.is_error r.r_diags
let frontend_failed (r : run) = r.r_artifacts = None

(* ------------------------------------------- frontend profiling ------ *)

(* The [top] source files with the largest cumulative frontend compute
   time (lex + parse + typecheck + lower + facts), slowest first. *)
let slowest_files ?(top = 10) (t : t) : (string * float) list =
  let all =
    locked t (fun () ->
        Hashtbl.fold (fun f s acc -> (f, s) :: acc) t.file_times [])
  in
  let sorted =
    List.sort (fun (fa, a) (fb, b) -> compare (b, fa) (a, fb)) all
  in
  List.filteri (fun i _ -> i < top) sorted

(* The --profile "frontend:" section: slowest files, interning pool
   effectiveness, per-file cache traffic, and each per-file stage's
   effective parallelism (summed per-file compute time over the stage's
   wall time — 1.0x means the fan-out ran sequentially). *)
let frontend_report ?(top = 10) (t : t) : string =
  let b = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  line "frontend:";
  let files = slowest_files ~top t in
  let total = locked t (fun () -> Hashtbl.length t.file_times) in
  line "  top %d slowest files (of %d):" (List.length files) total;
  List.iter (fun (f, s) -> line "    %8.1f ms  %s" (1000.0 *. s) f) files;
  let st = Minigo.Intern.stats () in
  let lookups = st.Minigo.Intern.st_hits + st.st_misses in
  line
    "  interning: %d string(s), %d type(s) pooled; %d/%d lookup(s) shared%s"
    st.st_strings st.st_types st.st_hits lookups
    (if lookups = 0 then ""
     else
       Printf.sprintf " (%.0f%% hit rate)"
         (100.0 *. float_of_int st.st_hits /. float_of_int lookups));
  let c n = M.value (M.counter t.registry n) in
  let mem_hits = c "engine.file_mem_hit" and disk_hits = c "engine.file_disk_hit" in
  if mem_hits + disk_hits > 0 then
    line "  per-file cache: %d memory hit(s), %d disk hit(s)" mem_hits
      disk_hits;
  List.iter
    (fun s ->
      let wall = M.h_sum (M.histogram t.registry ("stage." ^ s ^ ".ms")) in
      let files_ms =
        M.h_sum (M.histogram t.registry ("stage." ^ s ^ ".file_ms"))
      in
      if wall > 0.0 && files_ms > 0.0 then
        line "  stage %-10s %8.1f ms across files / %8.1f ms wall = %.2fx \
              parallel"
          s files_ms wall (files_ms /. wall))
    [ "lex"; "parse"; "typecheck"; "lower"; "facts" ];
  Buffer.contents b

(* ------------------------------------------------- run rendering ----- *)

let run_to_json (r : run) : string =
  let pass_json pr =
    Printf.sprintf
      {|{"name":"%s","elapsed_s":%.6f,"diagnostics":%d,"metrics":{%s}}|}
      (D.json_escape pr.pr_pass) pr.pr_elapsed_s
      (List.length pr.pr_diags)
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf {|"%s":%d|} (D.json_escape k) v)
            pr.pr_metrics))
  in
  let health_json =
    String.concat ","
      (List.map
         (fun (k, v) ->
           (* strip the "health." namespace: the object is already
              called "health" *)
           let k =
             if String.length k > 7 && String.sub k 0 7 = "health." then
               String.sub k 7 (String.length k - 7)
             else k
           in
           Printf.sprintf {|"%s":%d|} (D.json_escape k) v)
         r.r_health)
  in
  Printf.sprintf
    {|{"name":"%s","source_key":"%s","from_cache":%b,"frontend_ok":%b,"elapsed_s":%.6f,"health":{%s},"diagnostics":%s,"passes":[%s]}|}
    (D.json_escape r.r_name) r.r_key r.r_from_cache
    (not (frontend_failed r))
    r.r_elapsed_s health_json
    (D.list_to_json r.r_diags)
    (String.concat "," (List.map pass_json r.r_passes))
