module D = Diagnostics

(* Staged analysis engine (the workflow of the paper's Figure 2, made
   reusable).

   An [Engine.t] owns an artifact cache and a registry of detector
   passes.  Artifacts are the per-stage products of the frontend —
   tokens -> AST -> typed AST -> IR -> alias facts / call graph — and
   are memoized per *source set*, keyed by a content hash, so analysing
   the same sources twice (bench E1–E8, GFix re-using GCatch's compile,
   multi-config CLI runs) performs exactly one parse/typecheck/lower.

   Stages inside one artifact record are lazy: a pass that only needs
   the IR never pays for the call graph; the alias/callgraph stages are
   shared by every pass that forces them. *)

module M = Goobs.Metrics
module Trace = Goobs.Trace

(* ------------------------------------------------------- artifacts --- *)

type artifacts = {
  a_key : string;                 (* content hash of (name, sources) *)
  a_name : string;
  a_sources : string list;
  a_tokens : Minigo.Lexer.token_info list list Lazy.t;
  a_ast : Minigo.Ast.program Lazy.t;    (* parsed, not yet typed *)
  a_typed : Minigo.Ast.program Lazy.t;  (* type-checked, normalised *)
  a_ir : Goir.Ir.program Lazy.t;
  a_alias : Goanalysis.Alias.t Lazy.t;
  a_callgraph : Goanalysis.Callgraph.t Lazy.t;
}

(* ---------------------------------------------------------- passes --- *)

(* A detector pass: named, individually enable-able, produces unified
   diagnostics and reports its integer metrics (solver calls, path
   events, …) into the [Goobs.Metrics.t] registry it is handed.  The
   engine gives each pass run a fresh registry, snapshots it as the
   run's metrics, then folds it into the engine-wide registry — one
   source of truth for the CLI, bench --json, and tests.  The pass also
   receives the engine's domain pool so it can fan its independent
   sub-problems (channels, functions) out across workers. *)
type metrics = (string * int) list

type pass = {
  p_name : string;
  p_doc : string;
  p_default : bool;              (* runs unless explicitly deselected *)
  p_run : Pool.t -> M.t -> artifacts -> D.t list;
}

type pass_run = {
  pr_pass : string;
  pr_elapsed_s : float;
  pr_diags : D.t list;
  pr_metrics : metrics;
}

type run = {
  r_name : string;
  r_key : string;
  r_from_cache : bool;           (* artifacts served from the cache *)
  r_artifacts : artifacts option; (* None when the frontend failed *)
  r_diags : D.t list;            (* frontend diagnostics + all passes *)
  r_passes : pass_run list;
  r_elapsed_s : float;
  r_health : (string * int) list;
      (* the run's analysis-health ledger: "health.*" counters summed
         over the frontend units and every pass's units *)
}

type t = {
  mutable passes : pass list;
  cache : (string, artifacts) Hashtbl.t;
  registry : M.t; (* stage/cache counters, pass timings, pass metrics *)
  max_entries : int;
  pool : Pool.t;
  lock : Mutex.t; (* guards [cache]: batch drivers analyse several
                     source sets concurrently through one engine *)
}

(* [jobs] sizes the engine's domain pool (shared process-wide per size);
   [pool] overrides it with a caller-managed pool.  The default is
   sequential: parallelism is opt-in so that test code creating many
   engines never spawns domains behind the caller's back.  [registry]
   lets the caller unify engine metrics with a wider scope (the CLI
   passes [Goobs.Metrics.default]); the default is a private registry
   per engine so concurrent test engines never share counters. *)
let create ?(max_entries = 512) ?(passes = []) ?(jobs = 1) ?pool ?registry () =
  let pool = match pool with Some p -> p | None -> Pool.get ~jobs in
  let registry = match registry with Some r -> r | None -> M.create () in
  {
    passes;
    cache = Hashtbl.create 32;
    registry;
    max_entries;
    pool;
    lock = Mutex.create ();
  }

let pool t = t.pool
let jobs t = Pool.jobs t.pool

let locked (t : t) f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register (t : t) (p : pass) =
  if List.exists (fun q -> q.p_name = p.p_name) t.passes then
    invalid_arg ("Engine.register: duplicate pass " ^ p.p_name);
  t.passes <- t.passes @ [ p ]

let passes t = t.passes
let registry t = t.registry

(* Read one engine counter by registry name (e.g. "stage.parse.runs",
   "engine.cache_hits"); unknown names read as 0. *)
let counter_value (t : t) name = M.value (M.counter t.registry name)

let stats_str (t : t) =
  let c = counter_value t in
  Printf.sprintf
    "cache: %d hit(s), %d miss(es); stage runs: %d lex, %d parse, %d \
     typecheck, %d lower, %d alias, %d callgraph"
    (c "engine.cache_hits") (c "engine.cache_misses") (c "stage.lex.runs")
    (c "stage.parse.runs")
    (c "stage.typecheck.runs")
    (c "stage.lower.runs") (c "stage.alias.runs") (c "stage.callgraph.runs")

(* ------------------------------------------------- frontend stages --- *)

let key_of ~name sources =
  Digest.to_hex (Digest.string (String.concat "\x00" (name :: sources)))

let cached (t : t) ~name sources =
  locked t (fun () -> Hashtbl.mem t.cache (key_of ~name sources))

(* Wrap one frontend stage: bump its run counter (before running, so a
   failing stage still counts as one attempted run), trace a
   "stage.<name>" span, and record its wall time in the
   "stage.<name>.ms" histogram on success. *)
let stage (t : t) name f =
  Trace.with_span ~name:("stage." ^ name) (fun () ->
      M.incr (M.counter t.registry ("stage." ^ name ^ ".runs"));
      let t0 = Clock.now_s () in
      let r = f () in
      M.observe
        (M.histogram t.registry ("stage." ^ name ^ ".ms"))
        (1000.0 *. Clock.elapsed_since t0);
      r)

(* Build the lazy stage chain for one source set.  File naming matches
   [Parser.parse_program] so locations are byte-identical to the
   pre-engine pipeline. *)
let build_artifacts (t : t) ~name sources : artifacts =
  let a_tokens =
    lazy
      (stage t "lex" (fun () ->
           List.mapi
             (fun i src ->
               let file = Printf.sprintf "%s/file%d.go" name i in
               Faults.trigger ~site:"frontend" ~key:file ();
               Minigo.Lexer.tokenize ~file src)
             sources))
  in
  let a_ast =
    lazy
      (stage t "parse" (fun () ->
           List.mapi
             (fun i toks ->
               Minigo.Parser.parse_tokens
                 ~file:(Printf.sprintf "%s/file%d.go" name i)
                 toks)
             (Lazy.force a_tokens)))
  in
  let a_typed =
    lazy
      (stage t "typecheck" (fun () ->
           Minigo.Typecheck.check_program (Lazy.force a_ast)))
  in
  let a_ir =
    lazy
      (stage t "lower" (fun () ->
           Goir.Lower.lower_program (Lazy.force a_typed)))
  in
  let a_alias =
    lazy
      (stage t "alias" (fun () ->
           Goanalysis.Alias.analyse (Lazy.force a_ir)))
  in
  let a_callgraph =
    lazy
      (stage t "callgraph" (fun () ->
           Goanalysis.Callgraph.build
             ~alias:(Lazy.force a_alias)
             (Lazy.force a_ir)))
  in
  {
    a_key = key_of ~name sources;
    a_name = name;
    a_sources = sources;
    a_tokens;
    a_ast;
    a_typed;
    a_ir;
    a_alias;
    a_callgraph;
  }

(* Look up (or create) the artifact record for a source set.  Stages are
   not forced here; forcing — and any frontend exception — happens at
   the use site, exactly once per cached entry (lazy memoizes the
   exception too). *)
let artifacts (t : t) ~name sources : artifacts =
  let key = key_of ~name sources in
  locked t (fun () ->
      match Hashtbl.find_opt t.cache key with
      | Some a ->
          M.incr (M.counter t.registry "engine.cache_hits");
          a
      | None ->
          M.incr (M.counter t.registry "engine.cache_misses");
          (* crude bound: a full reset is fine for our workloads, which
             never come close to [max_entries] live source sets *)
          if Hashtbl.length t.cache >= t.max_entries then Hashtbl.reset t.cache;
          let a = build_artifacts t ~name sources in
          Hashtbl.add t.cache key a;
          a)

(* Convert a frontend exception into a structured diagnostic.  The
   message formats mirror what the CLIs used to print by hand. *)
let frontend_diag : exn -> D.t option = function
  | Minigo.Lexer.Lex_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/lex" ~loc
           (Printf.sprintf "lex error: %s at %s" m (Minigo.Loc.to_string loc)))
  | Minigo.Parser.Parse_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/parse" ~loc
           (Printf.sprintf "parse error: %s at %s" m (Minigo.Loc.to_string loc)))
  | Minigo.Typecheck.Type_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/typecheck" ~loc
           (Printf.sprintf "type error: %s at %s" m (Minigo.Loc.to_string loc)))
  | Goir.Lower.Lower_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/lower" ~loc
           (Printf.sprintf "lowering error: %s at %s" m
              (Minigo.Loc.to_string loc)))
  | Faults.Injected ("frontend", key) ->
      (* the injection site sits in the per-file lexer loop; carry the
         file name as a location so salvage can identify the file *)
      Some
        (D.v ~pass:"frontend/fault"
           ~loc:(Minigo.Loc.make ~file:key ~line:1 ~col:1)
           (Printf.sprintf "injected fault at frontend (%s)" key))
  | _ -> None

(* Compile a source set through the frontend stages, capturing frontend
   exceptions as diagnostics instead of letting them escape. *)
let compile (t : t) ~name sources : (artifacts, D.t) result =
  let a = artifacts t ~name sources in
  match Lazy.force a.a_ir with
  | _ -> Ok a
  | exception e -> (
      match frontend_diag e with Some d -> Error d | None -> raise e)

(* -------------------------------------------------------- analysis --- *)

let select_passes (t : t) ?only ?(extra = []) () : pass list =
  let check_known names =
    List.iter
      (fun n ->
        if not (List.exists (fun p -> p.p_name = n) t.passes) then
          invalid_arg (Printf.sprintf "Engine.analyse: unknown pass %S" n))
      names
  in
  match only with
  | Some names ->
      check_known names;
      List.filter (fun p -> List.mem p.p_name names) t.passes
  | None ->
      check_known extra;
      List.filter
        (fun p -> p.p_default || List.mem p.p_name extra)
        t.passes

(* ------------------------------------------- frontend fault salvage --- *)

(* Identify which file a frontend diagnostic points at: locations are
   named "%s/file%d.go" by [build_artifacts]. *)
let failing_file_index ~name ~n (d : D.t) : int option =
  match d.D.loc with
  | None -> None
  | Some l ->
      let file = Minigo.Loc.file l in
      let prefix = name ^ "/file" in
      let plen = String.length prefix in
      if
        String.length file > plen + 3
        && String.sub file 0 plen = prefix
        && Filename.check_suffix file ".go"
      then
        match
          int_of_string_opt (String.sub file plen (String.length file - plen - 3))
        with
        | Some k when k >= 0 && k < n -> Some k
        | _ -> None
      else None

(* Replace a broken file with a minimal parseable stub that keeps its
   package line (so sibling files still typecheck against the same
   package), preserving every other file's name and index. *)
let stub_of (src : string) : string =
  let first_line =
    match String.index_opt src '\n' with
    | Some i -> String.sub src 0 i
    | None -> src
  in
  if String.length first_line >= 8 && String.sub first_line 0 8 = "package " then
    first_line ^ "\n"
  else "package p\n"

(* Compile with per-file fault containment: when the frontend fails over
   a multi-file source set, the failing file is replaced by a stub and
   compilation retried, so one broken corpus file degrades to one
   frontend diagnostic (plus a supervision note) instead of killing the
   whole run.  Returns the artifacts (if any subset survived), the
   frontend diagnostics in discovery order, and the number of files
   dropped. *)
let compile_salvaging (t : t) ~name sources :
    artifacts option * D.t list * int =
  let arr = Array.of_list sources in
  let n = Array.length arr in
  let stubbed = Array.make n false in
  let dropped () =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 stubbed
  in
  let diags = ref [] in
  let rec go attempts =
    match compile t ~name (Array.to_list arr) with
    | Ok a -> Some a
    | Error d ->
        diags := d :: !diags;
        if n <= 1 || attempts >= n then None
        else
          match failing_file_index ~name ~n d with
          | Some k when not stubbed.(k) ->
              stubbed.(k) <- true;
              arr.(k) <- stub_of arr.(k);
              if dropped () >= n then None (* nothing left to analyse *)
              else begin
                diags :=
                  Supervise.diag ?loc:d.D.loc
                    ~unit_name:(Printf.sprintf "%s/file%d.go" name k)
                    Supervise.Degraded
                    "file dropped after frontend failure; siblings still \
                     analysed"
                  :: !diags;
                go (attempts + 1)
              end
          | _ -> None
  in
  let a = go 0 in
  (a, List.rev !diags, dropped ())

(* Run the frontend plus the selected detector passes over one source
   set.  Never raises on malformed input: lex/parse/type/lowering
   errors come back as [Error]-severity diagnostics in [r_diags].
   Every unit of work — each source file, each pass, and (inside the
   passes) each channel/function — runs behind a [Supervise] fault
   boundary, so a partial failure yields partial results plus health
   accounting rather than an aborted run. *)
let analyse ?only ?extra (t : t) ~name sources : run =
  let t0 = Clock.now_s () in
  let from_cache = cached t ~name sources in
  (* run-local health ledger for the units owned by the engine itself
     (source files, pass boundaries are accounted in each pass's
     registry); folded into the engine registry at the end *)
  let hreg = M.create () in
  let selected = select_passes t ?only ?extra () in
  let nfiles = List.length sources in
  match compile_salvaging t ~name sources with
  | None, fdiags, ndropped ->
      let bump k v = M.add (M.counter hreg k) v in
      bump Supervise.h_attempted nfiles;
      bump Supervise.h_degraded (max 1 ndropped);
      bump Supervise.h_skipped (max 0 (nfiles - max 1 ndropped));
      let health = Supervise.health_of (M.counters_list hreg) in
      M.merge_into ~dst:t.registry hreg;
      {
        r_name = name;
        r_key = key_of ~name sources;
        r_from_cache = from_cache;
        r_artifacts = None;
        r_diags = fdiags;
        r_passes = [];
        r_elapsed_s = Clock.elapsed_since t0;
        r_health = health;
      }
  | Some a, fdiags, ndropped ->
      let bump k v = M.add (M.counter hreg k) v in
      bump Supervise.h_attempted nfiles;
      bump Supervise.h_ok (nfiles - ndropped);
      bump Supervise.h_degraded ndropped;
      let pass_runs =
        List.map
          (fun p ->
            let p0 = Clock.now_s () in
            (* A fresh registry per pass run keeps the run's metric
               snapshot exact even when several analyses share the
               engine concurrently; it is folded into the engine-wide
               registry afterwards. *)
            let preg = M.create () in
            let diags, ran =
              match
                Supervise.checked ~metrics:preg
                  ~unit_name:("pass " ^ p.p_name) (fun () ->
                    Trace.with_span ~name:("pass." ^ p.p_name) (fun () ->
                        p.p_run t.pool preg a))
              with
              | Ok ds -> (ds, true)
              | Error (`Skipped reason) ->
                  ( [
                      Supervise.diag ~pass:p.p_name
                        ~unit_name:("pass " ^ p.p_name) Supervise.Skipped
                        (reason ^ "; partial results flushed");
                    ],
                    false )
              | Error (`Degraded detail) ->
                  ( [
                      Supervise.diag ~pass:p.p_name
                        ~unit_name:("pass " ^ p.p_name)
                        Supervise.Internal_error
                        (detail ^ "; other passes unaffected");
                    ],
                    true )
            in
            let elapsed = Clock.elapsed_since p0 in
            if ran then begin
              M.incr (M.counter t.registry ("pass." ^ p.p_name ^ ".runs"));
              M.observe
                (M.histogram t.registry ("pass." ^ p.p_name ^ ".ms"))
                (1000.0 *. elapsed)
            end;
            let metrics = M.counters_list preg in
            M.merge_into ~dst:t.registry preg;
            {
              pr_pass = p.p_name;
              pr_elapsed_s = elapsed;
              pr_diags = diags;
              pr_metrics = metrics;
            })
          selected
      in
      let health =
        Supervise.health_sum
          (M.counters_list hreg
          :: List.map (fun pr -> pr.pr_metrics) pass_runs)
      in
      M.merge_into ~dst:t.registry hreg;
      {
        r_name = name;
        r_key = a.a_key;
        r_from_cache = from_cache;
        r_artifacts = Some a;
        r_diags = fdiags @ List.concat_map (fun pr -> pr.pr_diags) pass_runs;
        r_passes = pass_runs;
        r_elapsed_s = Clock.elapsed_since t0;
        r_health = health;
      }

let errors (r : run) = List.filter D.is_error r.r_diags
let frontend_failed (r : run) = r.r_artifacts = None

(* ------------------------------------------------- run rendering ----- *)

let run_to_json (r : run) : string =
  let pass_json pr =
    Printf.sprintf
      {|{"name":"%s","elapsed_s":%.6f,"diagnostics":%d,"metrics":{%s}}|}
      (D.json_escape pr.pr_pass) pr.pr_elapsed_s
      (List.length pr.pr_diags)
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf {|"%s":%d|} (D.json_escape k) v)
            pr.pr_metrics))
  in
  let health_json =
    String.concat ","
      (List.map
         (fun (k, v) ->
           (* strip the "health." namespace: the object is already
              called "health" *)
           let k =
             if String.length k > 7 && String.sub k 0 7 = "health." then
               String.sub k 7 (String.length k - 7)
             else k
           in
           Printf.sprintf {|"%s":%d|} (D.json_escape k) v)
         r.r_health)
  in
  Printf.sprintf
    {|{"name":"%s","source_key":"%s","from_cache":%b,"frontend_ok":%b,"elapsed_s":%.6f,"health":{%s},"diagnostics":%s,"passes":[%s]}|}
    (D.json_escape r.r_name) r.r_key r.r_from_cache
    (not (frontend_failed r))
    r.r_elapsed_s health_json
    (D.list_to_json r.r_diags)
    (String.concat "," (List.map pass_json r.r_passes))
