module D = Diagnostics

(* Staged analysis engine (the workflow of the paper's Figure 2, made
   reusable).

   An [Engine.t] owns an artifact cache and a registry of detector
   passes.  Artifacts are the per-stage products of the frontend —
   tokens -> AST -> typed AST -> IR -> alias facts / call graph — and
   are memoized per *source set*, keyed by a content hash, so analysing
   the same sources twice (bench E1–E8, GFix re-using GCatch's compile,
   multi-config CLI runs) performs exactly one parse/typecheck/lower.

   Stages inside one artifact record are lazy: a pass that only needs
   the IR never pays for the call graph; the alias/callgraph stages are
   shared by every pass that forces them. *)

module M = Goobs.Metrics
module Trace = Goobs.Trace

(* ------------------------------------------------------- artifacts --- *)

type artifacts = {
  a_key : string;                 (* content hash of (name, sources) *)
  a_name : string;
  a_sources : string list;
  a_tokens : Minigo.Lexer.token_info list list Lazy.t;
  a_ast : Minigo.Ast.program Lazy.t;    (* parsed, not yet typed *)
  a_typed : Minigo.Ast.program Lazy.t;  (* type-checked, normalised *)
  a_ir : Goir.Ir.program Lazy.t;
  a_alias : Goanalysis.Alias.t Lazy.t;
  a_callgraph : Goanalysis.Callgraph.t Lazy.t;
}

(* ---------------------------------------------------------- passes --- *)

(* A detector pass: named, individually enable-able, produces unified
   diagnostics and reports its integer metrics (solver calls, path
   events, …) into the [Goobs.Metrics.t] registry it is handed.  The
   engine gives each pass run a fresh registry, snapshots it as the
   run's metrics, then folds it into the engine-wide registry — one
   source of truth for the CLI, bench --json, and tests.  The pass also
   receives the engine's domain pool so it can fan its independent
   sub-problems (channels, functions) out across workers. *)
type metrics = (string * int) list

type pass = {
  p_name : string;
  p_doc : string;
  p_default : bool;              (* runs unless explicitly deselected *)
  p_run : Pool.t -> M.t -> artifacts -> D.t list;
}

type pass_run = {
  pr_pass : string;
  pr_elapsed_s : float;
  pr_diags : D.t list;
  pr_metrics : metrics;
}

type run = {
  r_name : string;
  r_key : string;
  r_from_cache : bool;           (* artifacts served from the cache *)
  r_artifacts : artifacts option; (* None when the frontend failed *)
  r_diags : D.t list;            (* frontend diagnostics + all passes *)
  r_passes : pass_run list;
  r_elapsed_s : float;
}

type t = {
  mutable passes : pass list;
  cache : (string, artifacts) Hashtbl.t;
  registry : M.t; (* stage/cache counters, pass timings, pass metrics *)
  max_entries : int;
  pool : Pool.t;
  lock : Mutex.t; (* guards [cache]: batch drivers analyse several
                     source sets concurrently through one engine *)
}

(* [jobs] sizes the engine's domain pool (shared process-wide per size);
   [pool] overrides it with a caller-managed pool.  The default is
   sequential: parallelism is opt-in so that test code creating many
   engines never spawns domains behind the caller's back.  [registry]
   lets the caller unify engine metrics with a wider scope (the CLI
   passes [Goobs.Metrics.default]); the default is a private registry
   per engine so concurrent test engines never share counters. *)
let create ?(max_entries = 512) ?(passes = []) ?(jobs = 1) ?pool ?registry () =
  let pool = match pool with Some p -> p | None -> Pool.get ~jobs in
  let registry = match registry with Some r -> r | None -> M.create () in
  {
    passes;
    cache = Hashtbl.create 32;
    registry;
    max_entries;
    pool;
    lock = Mutex.create ();
  }

let pool t = t.pool
let jobs t = Pool.jobs t.pool

let locked (t : t) f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register (t : t) (p : pass) =
  if List.exists (fun q -> q.p_name = p.p_name) t.passes then
    invalid_arg ("Engine.register: duplicate pass " ^ p.p_name);
  t.passes <- t.passes @ [ p ]

let passes t = t.passes
let registry t = t.registry

(* Read one engine counter by registry name (e.g. "stage.parse.runs",
   "engine.cache_hits"); unknown names read as 0. *)
let counter_value (t : t) name = M.value (M.counter t.registry name)

let stats_str (t : t) =
  let c = counter_value t in
  Printf.sprintf
    "cache: %d hit(s), %d miss(es); stage runs: %d lex, %d parse, %d \
     typecheck, %d lower, %d alias, %d callgraph"
    (c "engine.cache_hits") (c "engine.cache_misses") (c "stage.lex.runs")
    (c "stage.parse.runs")
    (c "stage.typecheck.runs")
    (c "stage.lower.runs") (c "stage.alias.runs") (c "stage.callgraph.runs")

(* ------------------------------------------------- frontend stages --- *)

let key_of ~name sources =
  Digest.to_hex (Digest.string (String.concat "\x00" (name :: sources)))

let cached (t : t) ~name sources =
  locked t (fun () -> Hashtbl.mem t.cache (key_of ~name sources))

(* Wrap one frontend stage: bump its run counter (before running, so a
   failing stage still counts as one attempted run), trace a
   "stage.<name>" span, and record its wall time in the
   "stage.<name>.ms" histogram on success. *)
let stage (t : t) name f =
  Trace.with_span ~name:("stage." ^ name) (fun () ->
      M.incr (M.counter t.registry ("stage." ^ name ^ ".runs"));
      let t0 = Clock.now_s () in
      let r = f () in
      M.observe
        (M.histogram t.registry ("stage." ^ name ^ ".ms"))
        (1000.0 *. Clock.elapsed_since t0);
      r)

(* Build the lazy stage chain for one source set.  File naming matches
   [Parser.parse_program] so locations are byte-identical to the
   pre-engine pipeline. *)
let build_artifacts (t : t) ~name sources : artifacts =
  let a_tokens =
    lazy
      (stage t "lex" (fun () ->
           List.mapi
             (fun i src ->
               Minigo.Lexer.tokenize
                 ~file:(Printf.sprintf "%s/file%d.go" name i)
                 src)
             sources))
  in
  let a_ast =
    lazy
      (stage t "parse" (fun () ->
           List.mapi
             (fun i toks ->
               Minigo.Parser.parse_tokens
                 ~file:(Printf.sprintf "%s/file%d.go" name i)
                 toks)
             (Lazy.force a_tokens)))
  in
  let a_typed =
    lazy
      (stage t "typecheck" (fun () ->
           Minigo.Typecheck.check_program (Lazy.force a_ast)))
  in
  let a_ir =
    lazy
      (stage t "lower" (fun () ->
           Goir.Lower.lower_program (Lazy.force a_typed)))
  in
  let a_alias =
    lazy
      (stage t "alias" (fun () ->
           Goanalysis.Alias.analyse (Lazy.force a_ir)))
  in
  let a_callgraph =
    lazy
      (stage t "callgraph" (fun () ->
           Goanalysis.Callgraph.build
             ~alias:(Lazy.force a_alias)
             (Lazy.force a_ir)))
  in
  {
    a_key = key_of ~name sources;
    a_name = name;
    a_sources = sources;
    a_tokens;
    a_ast;
    a_typed;
    a_ir;
    a_alias;
    a_callgraph;
  }

(* Look up (or create) the artifact record for a source set.  Stages are
   not forced here; forcing — and any frontend exception — happens at
   the use site, exactly once per cached entry (lazy memoizes the
   exception too). *)
let artifacts (t : t) ~name sources : artifacts =
  let key = key_of ~name sources in
  locked t (fun () ->
      match Hashtbl.find_opt t.cache key with
      | Some a ->
          M.incr (M.counter t.registry "engine.cache_hits");
          a
      | None ->
          M.incr (M.counter t.registry "engine.cache_misses");
          (* crude bound: a full reset is fine for our workloads, which
             never come close to [max_entries] live source sets *)
          if Hashtbl.length t.cache >= t.max_entries then Hashtbl.reset t.cache;
          let a = build_artifacts t ~name sources in
          Hashtbl.add t.cache key a;
          a)

(* Convert a frontend exception into a structured diagnostic.  The
   message formats mirror what the CLIs used to print by hand. *)
let frontend_diag : exn -> D.t option = function
  | Minigo.Lexer.Lex_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/lex" ~loc
           (Printf.sprintf "lex error: %s at %s" m (Minigo.Loc.to_string loc)))
  | Minigo.Parser.Parse_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/parse" ~loc
           (Printf.sprintf "parse error: %s at %s" m (Minigo.Loc.to_string loc)))
  | Minigo.Typecheck.Type_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/typecheck" ~loc
           (Printf.sprintf "type error: %s at %s" m (Minigo.Loc.to_string loc)))
  | Goir.Lower.Lower_error (m, loc) ->
      Some
        (D.v ~pass:"frontend/lower" ~loc
           (Printf.sprintf "lowering error: %s at %s" m
              (Minigo.Loc.to_string loc)))
  | _ -> None

(* Compile a source set through the frontend stages, capturing frontend
   exceptions as diagnostics instead of letting them escape. *)
let compile (t : t) ~name sources : (artifacts, D.t) result =
  let a = artifacts t ~name sources in
  match Lazy.force a.a_ir with
  | _ -> Ok a
  | exception e -> (
      match frontend_diag e with Some d -> Error d | None -> raise e)

(* -------------------------------------------------------- analysis --- *)

let select_passes (t : t) ?only ?(extra = []) () : pass list =
  let check_known names =
    List.iter
      (fun n ->
        if not (List.exists (fun p -> p.p_name = n) t.passes) then
          invalid_arg (Printf.sprintf "Engine.analyse: unknown pass %S" n))
      names
  in
  match only with
  | Some names ->
      check_known names;
      List.filter (fun p -> List.mem p.p_name names) t.passes
  | None ->
      check_known extra;
      List.filter
        (fun p -> p.p_default || List.mem p.p_name extra)
        t.passes

(* Run the frontend plus the selected detector passes over one source
   set.  Never raises on malformed input: lex/parse/type/lowering
   errors come back as [Error]-severity diagnostics in [r_diags]. *)
let analyse ?only ?extra (t : t) ~name sources : run =
  let t0 = Clock.now_s () in
  let from_cache = cached t ~name sources in
  match compile t ~name sources with
  | Error d ->
      {
        r_name = name;
        r_key = key_of ~name sources;
        r_from_cache = from_cache;
        r_artifacts = None;
        r_diags = [ d ];
        r_passes = [];
        r_elapsed_s = Clock.elapsed_since t0;
      }
  | Ok a ->
      let pass_runs =
        List.map
          (fun p ->
            let p0 = Clock.now_s () in
            (* A fresh registry per pass run keeps the run's metric
               snapshot exact even when several analyses share the
               engine concurrently; it is folded into the engine-wide
               registry afterwards. *)
            let preg = M.create () in
            let diags =
              Trace.with_span ~name:("pass." ^ p.p_name) (fun () ->
                  p.p_run t.pool preg a)
            in
            let elapsed = Clock.elapsed_since p0 in
            M.incr (M.counter t.registry ("pass." ^ p.p_name ^ ".runs"));
            M.observe
              (M.histogram t.registry ("pass." ^ p.p_name ^ ".ms"))
              (1000.0 *. elapsed);
            let metrics = M.counters_list preg in
            M.merge_into ~dst:t.registry preg;
            {
              pr_pass = p.p_name;
              pr_elapsed_s = elapsed;
              pr_diags = diags;
              pr_metrics = metrics;
            })
          (select_passes t ?only ?extra ())
      in
      {
        r_name = name;
        r_key = a.a_key;
        r_from_cache = from_cache;
        r_artifacts = Some a;
        r_diags = List.concat_map (fun pr -> pr.pr_diags) pass_runs;
        r_passes = pass_runs;
        r_elapsed_s = Clock.elapsed_since t0;
      }

let errors (r : run) = List.filter D.is_error r.r_diags
let frontend_failed (r : run) = r.r_artifacts = None

(* ------------------------------------------------- run rendering ----- *)

let run_to_json (r : run) : string =
  let pass_json pr =
    Printf.sprintf
      {|{"name":"%s","elapsed_s":%.6f,"diagnostics":%d,"metrics":{%s}}|}
      (D.json_escape pr.pr_pass) pr.pr_elapsed_s
      (List.length pr.pr_diags)
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf {|"%s":%d|} (D.json_escape k) v)
            pr.pr_metrics))
  in
  Printf.sprintf
    {|{"name":"%s","source_key":"%s","from_cache":%b,"frontend_ok":%b,"elapsed_s":%.6f,"diagnostics":%s,"passes":[%s]}|}
    (D.json_escape r.r_name) r.r_key r.r_from_cache
    (not (frontend_failed r))
    r.r_elapsed_s
    (D.list_to_json r.r_diags)
    (String.concat "," (List.map pass_json r.r_passes))
