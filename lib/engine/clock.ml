(* Monotonic time source for all pipeline and pass timers.

   [Unix.gettimeofday] is wall-clock time: NTP slews and manual clock
   adjustments show up as negative or wildly wrong elapsed times in
   long-running analyses.  Every timer in the engine (and the Driver
   compatibility shim) reads CLOCK_MONOTONIC instead, via the
   bechamel binding that is already part of the build. *)

let now_ns () : int64 = Monotonic_clock.now ()

let now_s () : float = Int64.to_float (now_ns ()) /. 1e9

(* Seconds elapsed since an earlier [now_s] reading. *)
let elapsed_since (t0 : float) : float = now_s () -. t0
