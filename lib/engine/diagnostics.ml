(* Unified diagnostics for the staged analysis engine.

   Every finding the pipeline can produce — a lexer/parser/typechecker
   error, a BMOC report, a traditional-checker report, a non-blocking
   misuse report — is represented by one record: severity, the pass that
   produced it, a human-readable message, an optional source location,
   and an optional typed payload that downstream tools (GFix, the
   scorer) can recover the original report from.

   This replaces the scattered [Parse_error]/[Type_error] exception
   handling and the ad-hoc [Report.*_str] printing the entry points used
   to do by hand: the engine converts frontend exceptions into [Error]
   diagnostics, detector passes attach their reports as payloads, and a
   single renderer produces either human or JSON output. *)

type severity = Error | Warning | Info

let severity_str = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Detector libraries extend this with their own report types, e.g.
   [type payload += Bmoc_bug of Report.bmoc_bug], so a diagnostic can be
   both rendered generically and consumed with full type information. *)
type payload = ..

type payload += No_payload

type t = {
  severity : severity;
  pass : string;          (* "frontend/parse", "bmoc", "trad.double-lock", … *)
  message : string;
  loc : Minigo.Loc.t option;
  payload : payload;
}

let v ?(severity = Error) ?loc ?(payload = No_payload) ~pass message =
  { severity; pass; message; loc; payload }

let is_error d = d.severity = Error

(* ------------------------------------------------- human rendering --- *)

(* Detector messages already embed their locations (they reuse the
   classic [Report.*_str] formats), so the human renderer prints the
   message verbatim — keeping CLI output identical to the pre-engine
   tools. *)
let render_human (d : t) : string = d.message

let to_string (d : t) : string =
  Printf.sprintf "[%s] %s: %s%s" d.pass (severity_str d.severity) d.message
    (match d.loc with
    | Some l when d.loc <> Some Minigo.Loc.none ->
        " @ " ^ Minigo.Loc.to_string l
    | _ -> "")

(* -------------------------------------------------- JSON rendering --- *)

(* Hand-rolled emitter: the build environment has no JSON library and
   the schema is small.  Strings are escaped per RFC 8259. *)
let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let loc_to_json (l : Minigo.Loc.t) : string =
  Printf.sprintf {|{"file":"%s","line":%d,"col":%d}|}
    (json_escape (Minigo.Loc.file l))
    (Minigo.Loc.line l) l.Minigo.Loc.col

let to_json (d : t) : string =
  Printf.sprintf {|{"pass":"%s","severity":"%s","message":"%s","loc":%s}|}
    (json_escape d.pass)
    (severity_str d.severity)
    (json_escape d.message)
    (match d.loc with
    | Some l when not (Minigo.Loc.equal l Minigo.Loc.none) -> loc_to_json l
    | _ -> "null")

let list_to_json (ds : t list) : string =
  "[" ^ String.concat "," (List.map to_json ds) ^ "]"
