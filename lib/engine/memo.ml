(* A promise-keyed concurrent memo table.

   [find_or_compute] gives at-most-once computation per key across
   domains: the first caller claims the key and computes; concurrent
   callers with the same key *wait* on the promise instead of computing
   redundantly.  This matters beyond wasted work — memoized computations
   often bump metrics counters internally, and running one twice under
   jobs=N but once under jobs=1 would make those counters
   schedule-dependent.  With the promise discipline, a fixed key set
   produces exactly one computation per key whatever the schedule.

   The compute function returns [(value, store)]; [store = false] marks
   a result that must not be cached (e.g. a verdict cut short by a
   timeout): the slot is released and any waiter recomputes.  An
   exception likewise releases the slot and re-raises in the claimant
   only.

   Tables are unbounded by default (a one-shot run wants every hit it
   can get), but a long-lived server must bound them: [set_budget]
   attaches a byte budget.  Entries are sized with [Obj.reachable_words]
   at insertion and stamped with a recency tick on every hit; when the
   budget is exceeded the least-recently-used Done entries are dropped
   until the table fits.  Computing slots are never evicted (a waiter
   may be parked on them), and eviction only ever discards completed
   values — a re-request recomputes and must reproduce the same bytes,
   which the eviction tests assert. *)

type 'v cell = { v : 'v; words : int; mutable tick : int }
type 'v slot = Computing | Done of 'v cell

type 'v t = {
  mu : Mutex.t;
  cv : Condition.t;
  tbl : (string, 'v slot) Hashtbl.t;
  mutable budget_words : int; (* 0 = unbounded *)
  mutable used_words : int;
  mutable clock : int;
  mutable on_evict : int -> unit;
}

let create () =
  {
    mu = Mutex.create ();
    cv = Condition.create ();
    tbl = Hashtbl.create 64;
    budget_words = 0;
    used_words = 0;
    clock = 0;
    on_evict = ignore;
  }

let word_bytes = Sys.word_size / 8

(* [bytes = 0] removes the bound.  [on_evict] is called with the number
   of entries dropped, outside any per-entry loop but under the table
   lock — keep it cheap (a counter bump). *)
let set_budget ?(on_evict = ignore) t ~bytes =
  Mutex.lock t.mu;
  t.budget_words <- (if bytes <= 0 then 0 else max 1 (bytes / word_bytes));
  t.on_evict <- on_evict;
  Mutex.unlock t.mu

let used_bytes t =
  Mutex.lock t.mu;
  let w = t.used_words in
  Mutex.unlock t.mu;
  w * word_bytes

let reset t =
  Mutex.lock t.mu;
  (* never discard an in-flight computation's slot: the claimant would
     later mark Done on a table the waiters no longer watch — keep
     Computing slots, drop completed ones *)
  let live =
    Hashtbl.fold
      (fun k s acc -> match s with Computing -> (k, s) :: acc | Done _ -> acc)
      t.tbl []
  in
  Hashtbl.reset t.tbl;
  List.iter (fun (k, s) -> Hashtbl.replace t.tbl k s) live;
  t.used_words <- 0;
  Mutex.unlock t.mu

let size t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mu;
  n

(* Evict least-recently-used Done entries until within budget.  Called
   with [t.mu] held.  The scan is O(n) per eviction; tables hold at most
   a few thousand entries and evictions are rare (only on insert past
   the bound), so this stays off every hot path. *)
let enforce_budget_locked t =
  if t.budget_words > 0 then begin
    let evicted = ref 0 in
    while t.used_words > t.budget_words do
      let victim = ref None in
      Hashtbl.iter
        (fun k s ->
          match s with
          | Computing -> ()
          | Done c -> (
              match !victim with
              | Some (_, best) when best.tick <= c.tick -> ()
              | _ -> victim := Some (k, c)))
        t.tbl;
      match !victim with
      | None -> t.used_words <- 0 (* only Computing slots left *)
      | Some (k, c) ->
          Hashtbl.remove t.tbl k;
          t.used_words <- t.used_words - c.words;
          if t.used_words < 0 then t.used_words <- 0;
          incr evicted
    done;
    if !evicted > 0 then t.on_evict !evicted
  end

(* Snapshot support: [export] lists the completed entries (sorted by
   key, so two exports of the same table are byte-identical after
   marshalling); [import] seeds a table with previously exported
   entries, skipping keys already present.  Imported entries are sized
   and budget-charged exactly as computed ones, so a bounded table
   enforces its budget over restored state too. *)

let export t =
  Mutex.lock t.mu;
  let entries =
    Hashtbl.fold
      (fun k s acc -> match s with Done c -> (k, c.v) :: acc | Computing -> acc)
      t.tbl []
  in
  Mutex.unlock t.mu;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let import t entries =
  List.iter
    (fun (key, v) ->
      (* size outside the lock, as in find_or_compute *)
      let words =
        if t.budget_words > 0 then
          Obj.reachable_words (Obj.repr v) + String.length key / word_bytes + 8
        else 0
      in
      Mutex.lock t.mu;
      (match Hashtbl.find_opt t.tbl key with
      | Some _ -> ()
      | None ->
          t.clock <- t.clock + 1;
          Hashtbl.replace t.tbl key (Done { v; words; tick = t.clock });
          t.used_words <- t.used_words + words;
          enforce_budget_locked t);
      Mutex.unlock t.mu)
    entries

let find_or_compute (t : 'v t) (key : string) (f : unit -> 'v * bool) :
    [ `Hit of 'v | `Computed of 'v ] =
  Mutex.lock t.mu;
  let rec claim () =
    match Hashtbl.find_opt t.tbl key with
    | Some (Done c) ->
        t.clock <- t.clock + 1;
        c.tick <- t.clock;
        `Hit c.v
    | Some Computing ->
        (* Inside a scheduled task, blocking on the condition variable
           could wedge the only domain running the claimant (which may
           itself be suspended behind us in the queue): release the lock
           and yield to the scheduler instead, then re-check. *)
        if Pool.in_task () then begin
          Mutex.unlock t.mu;
          Pool.yield ();
          Mutex.lock t.mu
        end
        else Condition.wait t.cv t.mu;
        claim ()
    | None ->
        Hashtbl.replace t.tbl key Computing;
        `Claimed
  in
  match claim () with
  | `Hit v ->
      Mutex.unlock t.mu;
      `Hit v
  | `Claimed -> (
      Mutex.unlock t.mu;
      match f () with
      | v, store ->
          (* Size outside the lock: reachable_words walks the value and
             must not stall concurrent lookups.  Skipped entirely when
             unbounded. *)
          let words =
            if t.budget_words > 0 then
              Obj.reachable_words (Obj.repr v) + String.length key / word_bytes + 8
            else 0
          in
          Mutex.lock t.mu;
          if store then begin
            t.clock <- t.clock + 1;
            Hashtbl.replace t.tbl key (Done { v; words; tick = t.clock });
            t.used_words <- t.used_words + words;
            enforce_budget_locked t
          end
          else Hashtbl.remove t.tbl key;
          Condition.broadcast t.cv;
          Mutex.unlock t.mu;
          `Computed v
      | exception e ->
          Mutex.lock t.mu;
          Hashtbl.remove t.tbl key;
          Condition.broadcast t.cv;
          Mutex.unlock t.mu;
          raise e)
