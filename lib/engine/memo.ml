(* A promise-keyed concurrent memo table.

   [find_or_compute] gives at-most-once computation per key across
   domains: the first caller claims the key and computes; concurrent
   callers with the same key *wait* on the promise instead of computing
   redundantly.  This matters beyond wasted work — memoized computations
   often bump metrics counters internally, and running one twice under
   jobs=N but once under jobs=1 would make those counters
   schedule-dependent.  With the promise discipline, a fixed key set
   produces exactly one computation per key whatever the schedule.

   The compute function returns [(value, store)]; [store = false] marks
   a result that must not be cached (e.g. a verdict cut short by a
   timeout): the slot is released and any waiter recomputes.  An
   exception likewise releases the slot and re-raises in the claimant
   only. *)

type 'v slot = Computing | Done of 'v

type 'v t = {
  mu : Mutex.t;
  cv : Condition.t;
  tbl : (string, 'v slot) Hashtbl.t;
}

let create () =
  { mu = Mutex.create (); cv = Condition.create (); tbl = Hashtbl.create 64 }

let reset t =
  Mutex.lock t.mu;
  (* never discard an in-flight computation's slot: the claimant would
     later mark Done on a table the waiters no longer watch — keep
     Computing slots, drop completed ones *)
  let live =
    Hashtbl.fold
      (fun k s acc -> match s with Computing -> (k, s) :: acc | Done _ -> acc)
      t.tbl []
  in
  Hashtbl.reset t.tbl;
  List.iter (fun (k, s) -> Hashtbl.replace t.tbl k s) live;
  Mutex.unlock t.mu

let size t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mu;
  n

let find_or_compute (t : 'v t) (key : string) (f : unit -> 'v * bool) :
    [ `Hit of 'v | `Computed of 'v ] =
  Mutex.lock t.mu;
  let rec claim () =
    match Hashtbl.find_opt t.tbl key with
    | Some (Done v) -> `Hit v
    | Some Computing ->
        (* Inside a scheduled task, blocking on the condition variable
           could wedge the only domain running the claimant (which may
           itself be suspended behind us in the queue): release the lock
           and yield to the scheduler instead, then re-check. *)
        if Pool.in_task () then begin
          Mutex.unlock t.mu;
          Pool.yield ();
          Mutex.lock t.mu
        end
        else Condition.wait t.cv t.mu;
        claim ()
    | None ->
        Hashtbl.replace t.tbl key Computing;
        `Claimed
  in
  match claim () with
  | `Hit v ->
      Mutex.unlock t.mu;
      `Hit v
  | `Claimed -> (
      Mutex.unlock t.mu;
      match f () with
      | v, store ->
          Mutex.lock t.mu;
          if store then Hashtbl.replace t.tbl key (Done v)
          else Hashtbl.remove t.tbl key;
          Condition.broadcast t.cv;
          Mutex.unlock t.mu;
          `Computed v
      | exception e ->
          Mutex.lock t.mu;
          Hashtbl.remove t.tbl key;
          Condition.broadcast t.cv;
          Mutex.unlock t.mu;
          raise e)
