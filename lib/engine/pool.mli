(** Fixed-size domain pool with per-domain Chase–Lev work-stealing
    deques — the parallel substrate for per-scope BMOC detection, the
    traditional checkers' per-function walks, and the bench's per-app
    sweep.

    Determinism: {!map} returns results in input order regardless of
    which domain ran which item, and re-raises the exception of the
    smallest failing index, so parallel callers produce byte-identical
    output for [jobs = 1] and [jobs = N] (given a per-item-deterministic
    [f]).

    Nested {!map} calls from inside a pool task run sequentially instead
    of deadlocking, so layered fan-outs (per-app over per-channel)
    compose safely. *)

(** Chase–Lev circular work-stealing deque.  [push]/[pop] are owner-only
    (one designated domain); [steal] may be called from any domain. *)
module Ws_deque : sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push : 'a t -> 'a -> unit

  val pop : 'a t -> 'a option
  (** Owner-only LIFO removal; [None] when empty. *)

  val steal : 'a t -> 'a option
  (** Thief-safe FIFO removal; [None] when empty. *)
end

type t

val create : ?jobs:int -> unit -> t
(** A pool of [jobs - 1] worker domains (the caller participates as the
    [jobs]-th worker during {!map}).  [jobs <= 1] spawns no domains and
    makes {!map} run sequentially. *)

val get : jobs:int -> t
(** A process-wide shared pool of the given size; repeated calls with
    the same [jobs] return the same pool (worker domains are a bounded
    resource — engines should share them). *)

val sequential : t
(** The shared one-participant pool: {!map} runs inline. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [GCATCH_JOBS] when set, else [Domain.recommended_domain_count ()]. *)

val recommended_jobs : unit -> int
(** Same answer as {!default_jobs}, cached for the process lifetime.
    {!map} consults it on every call for its inline fast path. *)

val map : pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] preserving input order.  Tasks are distributed
    round-robin across the participants' deques and rebalanced by
    stealing.  If tasks raise, the exception of the smallest failing
    index is re-raised in the caller with its backtrace.

    Fast path: batches of at most two items, pools of one participant,
    nested calls from inside a pool task, and any call when
    {!recommended_jobs} is 1 (e.g. [GCATCH_JOBS=1] or a single hardware
    thread) run inline with no batch setup — fanning out over domains
    that share one hardware thread is a strict slowdown. *)

val run : pool:t -> (unit -> 'a) list -> 'a list
(** [run ~pool thunks] = [map ~pool (fun th -> th ()) thunks]. *)

val shutdown : t -> unit
(** Join the pool's worker domains.  Only meaningful for pools from
    {!create}; shared {!get} pools live for the process. *)
