(** Effects-based work-stealing task scheduler over per-domain Chase–Lev
    deques — the parallel substrate for per-scope BMOC detection, the
    traditional checkers' per-function walks, and the bench's per-app
    sweep.

    Tasks are delimited computations run under a deep effect handler:
    they can {!fork} children, {!yield} the domain, and {!await}
    promises — a suspended task is a heap-allocated fiber any
    participant may steal and resume, so long solver polls, retry-ladder
    rungs, and disk-cache I/O no longer wedge a whole domain.

    Determinism: {!map} returns results in input order regardless of
    which domain ran which item, and re-raises the exception of the
    smallest failing index, so parallel callers produce byte-identical
    output for [jobs = 1] and [jobs = N] (given a per-item-deterministic
    [f]).

    Nested {!map} calls from inside a task fork real subtasks into the
    running session — layered fan-outs (per-app over per-channel over
    per-rung) expose all their parallelism to the same scheduler instead
    of degrading to inline loops. *)

(** Chase–Lev circular work-stealing deque.  [push]/[pop] are owner-only
    (one designated domain); [steal] may be called from any domain. *)
module Ws_deque : sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push : 'a t -> 'a -> unit

  val pop : 'a t -> 'a option
  (** Owner-only LIFO removal; [None] when empty. *)

  val steal : 'a t -> 'a option
  (** Thief-safe FIFO removal; [None] when empty. *)
end

type t

val create : ?jobs:int -> unit -> t
(** A pool of [jobs - 1] worker domains (the caller participates as the
    [jobs]-th participant during a session).  [jobs <= 1] spawns no
    domains and makes {!map} run sequentially. *)

val get : jobs:int -> t
(** A process-wide shared pool of the given size; repeated calls with
    the same [jobs] return the same pool (worker domains are a bounded
    resource — engines should share them). *)

val sequential : t
(** The shared one-participant pool: {!map} runs inline. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [GCATCH_JOBS] when set and well-formed, else
    [Domain.recommended_domain_count ()].  A malformed value logs one
    structured warning and falls back to the hardware recommendation. *)

val recommended_jobs : unit -> int
(** Same answer as {!default_jobs}, cached for the process lifetime.
    {!map} consults it on every call for its inline fast path. *)

val jobs_of_env : string option -> int
(** The parsing behind {!default_jobs}, exposed for tests: [None] and
    malformed values resolve to [Domain.recommended_domain_count ()]
    (the malformed case logging a warning); a well-formed [n >= 1] is
    returned as-is. *)

(** {1 Tasks} *)

type 'a promise
(** A write-once cell filled with the result (value or exception) of a
    forked task. *)

val in_task : unit -> bool
(** Whether the calling code is running inside a scheduled task (and so
    {!fork}ed work is actually deferred and {!yield} actually yields). *)

val fork : (unit -> 'a) -> 'a promise
(** Inside a task: schedule [f] as a child task on the running session
    and return immediately.  Outside the scheduler: run [f] now and
    return an already-filled promise (identical sequential semantics, so
    [fork]/[await] pairs are safe anywhere). *)

val await : 'a promise -> 'a
(** The forked task's result; re-raises its exception with backtrace.
    Inside a task this suspends (the domain runs other tasks) until the
    promise fills.  Outside the scheduler the promise must already be
    filled — awaiting a pending promise raises [Invalid_argument]. *)

val yield : unit -> unit
(** Inside a task: suspend and requeue, letting the participant run its
    oldest queued task next (round-robin, so polling loops cannot
    starve siblings).  Outside the scheduler: no-op. *)

val sleep_yielding : float -> unit
(** Wait out a wall-clock duration without wedging the domain: inside a
    task, alternate {!yield}s with short sleeps; outside, a plain
    [Unix.sleepf].  Fault-injection stall sites use this. *)

val with_scheduler : pool:t -> (unit -> 'a) -> 'a
(** Run [f] as the root task of a fresh scheduling session on [pool],
    unconditionally — no inline fast path — with the caller
    participating until the root completes.  Inside a task this is just
    [f ()].  Entry point for callers that need in-task semantics
    regardless of batch size or hardware (tests, the bench). *)

(** {1 Fan-out} *)

val map : pool:t -> ?grain:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] preserving input order.  One task is forked per
    item; idle participants rebalance by stealing.  If tasks raise, the
    exception of the smallest failing index is re-raised in the caller
    with its backtrace — after all items have finished, so side effects
    (metrics, memo state) are schedule-independent.

    [grain] (default 1) sets a minimum number of items per forked task:
    consecutive chunks of up to [grain] items each run inline inside
    one task, so tiny work items skip the fork/await overhead.  A batch
    that fits in a single chunk runs entirely inline.  Chunking keeps
    the deterministic smallest-failing-index exception choice; callers
    must derive [grain] from the input alone (never from the job
    count) so counters stay schedule-independent.

    Inside a task, [map] forks subtasks into the running session
    (single-item calls run inline).  At top level, batches of at most
    two items, pools of one participant, and any call when
    {!recommended_jobs} is 1 (e.g. [GCATCH_JOBS=1] or a single hardware
    thread) run inline with no session setup — fanning out over domains
    that share one hardware thread is a strict slowdown. *)

val run : pool:t -> (unit -> 'a) list -> 'a list
(** [run ~pool thunks] = [map ~pool (fun th -> th ()) thunks]. *)

val shutdown : t -> unit
(** Join the pool's worker domains.  Only meaningful for pools from
    {!create}; shared {!get} pools live for the process. *)
