(* A fixed-size domain pool with per-domain work-stealing deques.

   The detectors' cost is dominated by per-scope constraint problems that
   disentangling makes small and *independent* (paper §4.2, §5.2): every
   channel, every traditional-checker function walk, and every bench app
   can be analysed in isolation.  This module supplies the parallel
   substrate they all share, built directly on OCaml 5 Domains (the build
   has no domainslib):

   - [Ws_deque]: a Chase–Lev circular work-stealing deque.  The owner
     pushes and pops at the bottom; thieves steal from the top with a
     compare-and-set.  OCaml's atomics are sequentially consistent, so
     the textbook algorithm carries over without explicit fences.
   - [t]: a pool of [jobs - 1] worker domains plus the calling domain.
     A batch pre-distributes task indices round-robin across one deque
     per participant; each participant drains its own deque and then
     steals from the others, so stragglers are rebalanced automatically.

   Determinism: [map] writes results into an index-addressed array, so
   the output order equals the input order no matter which domain ran
   which item — callers get byte-identical results for jobs=1 and
   jobs=N provided [f] itself is deterministic per item.

   Exceptions: a task's exception is captured with its backtrace and
   re-raised in the caller *for the smallest failing index*, again
   schedule-independent.

   Nesting: a task that itself calls [map] (e.g. BMOC's per-channel fan
   out inside a parallel per-app bench sweep) runs the inner map
   sequentially — the outer batch already owns the workers, and a
   domain-local flag makes the inner call degrade instead of deadlock. *)

module Ws_deque = struct
  type 'a t = {
    top : int Atomic.t;    (* steal end; monotonically increasing *)
    bottom : int Atomic.t; (* owner end *)
    tab : 'a option array Atomic.t; (* circular buffer, power-of-two size *)
  }

  let create ?(capacity = 16) () =
    let cap = ref 2 in
    while !cap < capacity do
      cap := !cap * 2
    done;
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      tab = Atomic.make (Array.make !cap None);
    }

  (* Owner-only: double the buffer, copying the live [top, bottom) range.
     Thieves reading the old array still see valid entries — the owner
     never writes into a slot of a published array while its index may be
     stolen. *)
  let grow q top bottom =
    let old = Atomic.get q.tab in
    let n = Array.length old in
    let a = Array.make (2 * n) None in
    for i = top to bottom - 1 do
      a.(i land ((2 * n) - 1)) <- old.(i land (n - 1))
    done;
    Atomic.set q.tab a

  (* Owner-only. *)
  let push q v =
    let b = Atomic.get q.bottom in
    let t = Atomic.get q.top in
    if b - t >= Array.length (Atomic.get q.tab) - 1 then grow q t b;
    let a = Atomic.get q.tab in
    a.(b land (Array.length a - 1)) <- Some v;
    (* SC atomic store publishes the slot write to thieves. *)
    Atomic.set q.bottom (b + 1)

  (* Owner-only. *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* deque was empty: restore *)
      Atomic.set q.bottom (b + 1);
      None
    end
    else begin
      let a = Atomic.get q.tab in
      let i = b land (Array.length a - 1) in
      let v = a.(i) in
      if b > t then begin
        a.(i) <- None;
        v
      end
      else begin
        (* last element: race the thieves for it *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (b + 1);
        if won then begin
          a.(i) <- None;
          v
        end
        else None
      end
    end

  (* Thief-safe.  Retries while the CAS loses to a competing thief (the
     competitor made progress, so the retry terminates). *)
  let rec steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then None
    else
      let a = Atomic.get q.tab in
      let v = a.(t land (Array.length a - 1)) in
      if Atomic.compare_and_set q.top t (t + 1) then
        match v with Some _ -> v | None -> steal q
      else steal q
end

(* ------------------------------------------------------------ pool --- *)

type batch = {
  deques : int Ws_deque.t array; (* one per participant; task = item index *)
  run : int -> unit;             (* execute item i, record its result *)
  remaining : int Atomic.t;
}

type t = {
  jobs : int;                       (* participants, including the caller *)
  mutable workers : unit Domain.t array; (* the [jobs - 1] spawned domains *)
  mu : Mutex.t;                     (* guards epoch/current/stop *)
  cv : Condition.t;
  mutable epoch : int;              (* bumped once per batch *)
  mutable current : batch option;
  mutable stop : bool;
  batch_mu : Mutex.t;               (* serializes top-level map calls *)
}

(* True while the current domain is executing a pool task: inner [map]
   calls fall back to sequential execution. *)
let in_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let jobs t = t.jobs

(* Scheduler metrics go to the process-wide registry; values depend on
   the schedule (steals especially), so determinism checks must ignore
   the "pool." namespace. *)
module M = Goobs.Metrics

let m_tasks = lazy (M.counter M.default "pool.tasks")
let m_steals = lazy (M.counter M.default "pool.steals")
let m_batches = lazy (M.counter M.default "pool.batches")
let m_items = lazy (M.counter M.default "pool.items")

(* Idle waiting: spin briefly, then sleep with backoff.  On an
   oversubscribed machine (more participants than cores) a pure spin
   loop would steal the timeslice from the domain doing real work. *)
let idle_pause k =
  if k < 64 then Domain.cpu_relax ()
  else Unix.sleepf (if k < 512 then 0.0002 else 0.001)

let participate (b : batch) (slot : int) =
  let n = Array.length b.deques in
  let mine = b.deques.(slot) in
  let next_task () =
    match Ws_deque.pop mine with
    | Some _ as t -> t
    | None ->
        (* own deque drained: steal round-robin from the others *)
        let rec try_steal k =
          if k >= n then None
          else
            match Ws_deque.steal b.deques.((slot + k) mod n) with
            | Some _ as t ->
                M.incr (Lazy.force m_steals);
                t
            | None -> try_steal (k + 1)
        in
        try_steal 1
  in
  let rec go idle =
    if Atomic.get b.remaining > 0 then
      match next_task () with
      | Some i ->
          b.run i;
          go 0
      | None ->
          idle_pause idle;
          go (idle + 1)
  in
  go 0

let rec worker_loop t slot my_epoch =
  Mutex.lock t.mu;
  while t.epoch = my_epoch && not t.stop do
    Condition.wait t.cv t.mu
  done;
  let epoch = t.epoch in
  let batch = t.current in
  let stop = t.stop in
  Mutex.unlock t.mu;
  if not stop then begin
    (match batch with Some b -> participate b slot | None -> ());
    worker_loop t slot epoch
  end

let create ?(jobs = 1) () =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      workers = [||];
      mu = Mutex.create ();
      cv = Condition.create ();
      epoch = 0;
      current = None;
      stop = false;
      batch_mu = Mutex.create ();
    }
  in
  t.workers <-
    Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* ------------------------------------------------------------- map --- *)

(* What the environment recommends as the useful degree of parallelism:
   [GCATCH_JOBS] when set, otherwise the hardware thread count.  Cached —
   the answer is fixed for the process lifetime and [map] consults it on
   every call. *)
let recommended_jobs_lazy =
  lazy
    (match Sys.getenv_opt "GCATCH_JOBS" with
    | Some s -> (
        match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
    | None -> Domain.recommended_domain_count ())

let recommended_jobs () = Lazy.force recommended_jobs_lazy

(* Batches too small to amortise the fan-out, and any batch on a machine
   whose environment recommends a single job, run inline: distributing
   work across domains that share one hardware thread is a strict
   slowdown (batch setup, idle spinning, and domain wake-ups all cost,
   and nothing runs concurrently anyway). *)
let inline_threshold = 2

let map ~pool f xs =
  let n = List.length xs in
  if
    pool.jobs <= 1 || n <= inline_threshold
    || recommended_jobs () = 1
    || !(Domain.DLS.get in_task)
  then List.map f xs
  else begin
    Mutex.lock pool.batch_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock pool.batch_mu)
      (fun () ->
        let items = Array.of_list xs in
        let results = Array.make n None in
        let deques =
          Array.init pool.jobs (fun _ -> Ws_deque.create ~capacity:(n + 1) ())
        in
        (* Pre-distribute round-robin.  No worker can observe these deques
           until the epoch bump below, so filling them from here does not
           violate the owner-only push discipline. *)
        Array.iteri (fun i _ -> Ws_deque.push deques.(i mod pool.jobs) i) items;
        M.incr (Lazy.force m_batches);
        M.add (Lazy.force m_items) n;
        let remaining = Atomic.make n in
        let run i =
          let flag = Domain.DLS.get in_task in
          flag := true;
          M.incr (Lazy.force m_tasks);
          let r =
            try
              Ok
                (Goobs.Trace.with_span ~name:"pool.task" (fun () ->
                     (* a "pool" fault models a worker crashing mid-task:
                        it is captured like any task exception and
                        re-raised in the caller, where the surrounding
                        supervision boundary contains it *)
                     Faults.trigger ~site:"pool" ~key:(string_of_int i) ();
                     f items.(i)))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          flag := false;
          results.(i) <- Some r;
          (* the SC decrement publishes the result slot to the caller *)
          Atomic.decr remaining
        in
        let batch = { deques; run; remaining } in
        Mutex.lock pool.mu;
        pool.current <- Some batch;
        pool.epoch <- pool.epoch + 1;
        Condition.broadcast pool.cv;
        Mutex.unlock pool.mu;
        participate batch 0;
        let idle = ref 0 in
        while Atomic.get batch.remaining > 0 do
          idle_pause !idle;
          incr idle
        done;
        Mutex.lock pool.mu;
        pool.current <- None;
        Mutex.unlock pool.mu;
        (* deterministic exception choice: smallest failing index wins *)
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | _ -> ())
          results;
        Array.to_list
          (Array.map
             (function Some (Ok v) -> v | _ -> assert false)
             results))
  end

let run ~pool thunks = map ~pool (fun th -> th ()) thunks

(* --------------------------------------------------- shared pools ---- *)

(* Process-wide pools, one per size: engines and CLIs asking for the same
   [jobs] share worker domains instead of spawning new ones per engine
   (tests create many engines; domains are a bounded resource). *)
let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_mu = Mutex.create ()

let get ~jobs =
  let jobs = max 1 jobs in
  Mutex.lock pools_mu;
  let p =
    match Hashtbl.find_opt pools jobs with
    | Some p -> p
    | None ->
        let p = create ~jobs () in
        Hashtbl.add pools jobs p;
        p
  in
  Mutex.unlock pools_mu;
  p

let sequential = get ~jobs:1

(* Default parallelism: the GCATCH_JOBS environment variable when set,
   otherwise what the hardware recommends. *)
let default_jobs = recommended_jobs
