(* An effects-based work-stealing task scheduler over per-domain
   Chase–Lev deques.

   The detectors' cost is dominated by per-scope constraint problems that
   disentangling makes small and *independent* (paper §4.2, §5.2): every
   channel, every traditional-checker function walk, and every bench app
   can be analysed in isolation.  This module supplies the parallel
   substrate they all share, built directly on OCaml 5 Domains and
   effect handlers (the build has no domainslib):

   - [Ws_deque]: a Chase–Lev circular work-stealing deque.  The owner
     pushes and pops at the bottom; thieves steal from the top with a
     compare-and-set.  OCaml's atomics are sequentially consistent, so
     the textbook algorithm carries over without explicit fences.
   - The scheduler: tasks are delimited computations run under a deep
     effect handler.  A task can [Fork] a child (pushed onto the
     executing participant's own deque), [Yield] the domain (requeued,
     and the participant switches to its *oldest* queued task so a
     polling loop cannot starve its siblings), or [Await] a promise
     (suspending until another task fills it).  Suspended continuations
     are heap-allocated fibers: any participant may steal and resume
     them, so a task migrates freely across domains between slices.
   - [t]: a pool of [jobs - 1] worker domains plus the calling domain.
     A top-level [map] (or [with_scheduler]) opens a *session*: one
     deque per participant, a root task, and the workers participate
     until the root completes.

   Determinism: [map] assembles results in input order from an
   index-addressed array of promises, and after *all* items complete it
   re-raises the exception of the smallest failing index — both
   schedule-independent, so callers get byte-identical results for
   jobs=1 and jobs=N provided [f] itself is deterministic per item.

   Nesting: a task that itself calls [map] (e.g. BMOC's per-channel fan
   out inside a parallel per-app bench sweep) forks *real* subtasks into
   the running session and awaits them — the inner fan-out is scheduled
   and stealable instead of degrading to an inline loop.

   Span handoff: each task carries its own open-span stack
   (inherited from its forking parent), swapped into the executing
   domain around every slice, so `Trace` spans survive suspension and
   close correctly after a steal. *)

module Ws_deque = struct
  type 'a t = {
    top : int Atomic.t;    (* steal end; monotonically increasing *)
    bottom : int Atomic.t; (* owner end *)
    tab : 'a option array Atomic.t; (* circular buffer, power-of-two size *)
  }

  let create ?(capacity = 16) () =
    let cap = ref 2 in
    while !cap < capacity do
      cap := !cap * 2
    done;
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      tab = Atomic.make (Array.make !cap None);
    }

  (* Owner-only: double the buffer, copying the live [top, bottom) range.
     Thieves reading the old array still see valid entries — the owner
     never writes into a slot of a published array while its index may be
     stolen. *)
  let grow q top bottom =
    let old = Atomic.get q.tab in
    let n = Array.length old in
    let a = Array.make (2 * n) None in
    for i = top to bottom - 1 do
      a.(i land ((2 * n) - 1)) <- old.(i land (n - 1))
    done;
    Atomic.set q.tab a

  (* Owner-only. *)
  let push q v =
    let b = Atomic.get q.bottom in
    let t = Atomic.get q.top in
    if b - t >= Array.length (Atomic.get q.tab) - 1 then grow q t b;
    let a = Atomic.get q.tab in
    a.(b land (Array.length a - 1)) <- Some v;
    (* SC atomic store publishes the slot write to thieves. *)
    Atomic.set q.bottom (b + 1)

  (* Owner-only. *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* deque was empty: restore *)
      Atomic.set q.bottom (b + 1);
      None
    end
    else begin
      let a = Atomic.get q.tab in
      let i = b land (Array.length a - 1) in
      let v = a.(i) in
      if b > t then begin
        a.(i) <- None;
        v
      end
      else begin
        (* last element: race the thieves for it *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (b + 1);
        if won then begin
          a.(i) <- None;
          v
        end
        else None
      end
    end

  (* Thief-safe.  Retries while the CAS loses to a competing thief (the
     competitor made progress, so the retry terminates). *)
  let rec steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then None
    else
      let a = Atomic.get q.tab in
      let v = a.(t land (Array.length a - 1)) in
      if Atomic.compare_and_set q.top t (t + 1) then
        match v with Some _ -> v | None -> steal q
      else steal q
end

(* ------------------------------------------------------- scheduler --- *)

module M = Goobs.Metrics
module Trace = Goobs.Trace

(* Scheduler metrics go to the process-wide registry; values depend on
   the schedule (steals especially), so determinism checks must ignore
   the "pool." and "sched." namespaces. *)
let m_tasks = lazy (M.counter M.default "pool.tasks")
let m_steals = lazy (M.counter M.default "pool.steals")
let m_batches = lazy (M.counter M.default "pool.batches")
let m_items = lazy (M.counter M.default "pool.items")
let m_spawned = lazy (M.counter M.default "sched.tasks_spawned")
let m_stolen = lazy (M.counter M.default "sched.tasks_stolen")
let m_yields = lazy (M.counter M.default "sched.yields")
let g_depth = lazy (M.gauge M.default "sched.queue_depth")

(* A task's identity across suspensions: the open-span stack it carries
   between execution slices (see "Span handoff" above). *)
type task = { mutable t_spans : Trace.stack }

(* What an execution slice reports back to the participant loop. *)
type status = Done | Suspended

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

(* A schedulable unit: a fresh task's first slice, or a suspended
   continuation to resume.  [rn_fiber] runs under (or re-enters) the
   task's deep handler and returns only when the task completes or
   suspends again. *)
type runnable = { rn_task : task; rn_fiber : unit -> status }

type 'a waiter = {
  w_task : task;
  w_k : ('a outcome, status) Effect.Deep.continuation;
}

type 'a ivar_state = Empty of 'a waiter list | Full of 'a outcome
type 'a promise = 'a ivar_state Atomic.t

(* One top-level scheduling session: a root task plus everything it
   transitively forks.  [ses_done] is set by the root's last
   instruction; [ses_pending] counts queued-but-not-running runnables
   (the queue_depth gauge). *)
type session = {
  ses_deques : runnable Ws_deque.t array; (* one per participant *)
  ses_done : bool Atomic.t;
  ses_pending : int Atomic.t;
}

type _ Effect.t +=
  | Fork : (unit -> unit) -> unit Effect.t
  | Yield : unit Effect.t
  | Await : 'a promise -> 'a outcome Effect.t

(* Per-domain scheduler state.  [d_prev_spans] holds the *participant's
   own* span stack while a task's stack is swapped in, so suspension can
   restore it (the suspension handler saves the task's stack *before*
   publishing the continuation — a thief may resume it immediately). *)
type dsched = {
  mutable d_session : session option;
  mutable d_slot : int;
  mutable d_task : task option;
  mutable d_prev_spans : Trace.stack;
  mutable d_prefer_fifo : bool; (* after a yield: dequeue oldest-first *)
}

let sched_key : dsched Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        d_session = None;
        d_slot = 0;
        d_task = None;
        d_prev_spans = Trace.empty_stack;
        d_prefer_fifo = false;
      })

(* hot: called from every yield poll; a [match] avoids the polymorphic
   compare [<> None] would cost *)
let in_task () =
  match (Domain.DLS.get sched_key).d_task with Some _ -> true | None -> false

let enqueue ds rn =
  match ds.d_session with
  | None -> invalid_arg "Pool: cannot schedule a task outside a session"
  | Some ses ->
      Ws_deque.push ses.ses_deques.(ds.d_slot) rn;
      let d = 1 + Atomic.fetch_and_add ses.ses_pending 1 in
      M.set_gauge (Lazy.force g_depth) (float_of_int d)

(* Park the suspending task's context.  MUST run before the continuation
   becomes reachable from any deque or promise: the instant it is
   published, another domain may resume the task and swap [t_spans] in
   over there. *)
let save_task_ctx ds task =
  task.t_spans <- Trace.swap_stack ds.d_prev_spans;
  ds.d_task <- None

let restore_task_ctx ds task =
  ds.d_prev_spans <- Trace.swap_stack task.t_spans;
  ds.d_task <- Some task

(* Write-once fill; wakes every waiter by queueing its resumption on the
   filling participant's own deque (fills only happen from task bodies,
   which only run on participants). *)
let fill (iv : 'a promise) (r : 'a outcome) : unit =
  let rec go () =
    match Atomic.get iv with
    | Full _ -> invalid_arg "Pool: promise filled twice"
    | Empty ws as old ->
        if Atomic.compare_and_set iv old (Full r) then (
          match ws with
          | [] -> ()
          | ws ->
              let ds = Domain.DLS.get sched_key in
              List.iter
                (fun w ->
                  enqueue ds
                    {
                      rn_task = w.w_task;
                      rn_fiber = (fun () -> Effect.Deep.continue w.w_k r);
                    })
                (List.rev ws))
        else go ()
  in
  go ()

(* Run a fresh task under the deep handler.  The handler branches fetch
   the *current* domain's scheduler state dynamically: after a steal the
   resumed fiber re-enters these branches on a different domain, and the
   push must go to the thief's own deque to respect the owner-only
   discipline. *)
let rec run_fresh (task : task) (body : unit -> unit) : status =
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> Done);
      (* task bodies are exception-wrapped by construction; an escape
         here is a scheduler bug and must not die silently in a worker *)
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Fork child ->
              Some
                (fun (k : (a, status) Effect.Deep.continuation) ->
                  let ds = Domain.DLS.get sched_key in
                  M.incr (Lazy.force m_spawned);
                  (* the child inherits the forking task's open spans:
                     its own spans parent under the span that was open
                     at the fork point, wherever the child ends up
                     running *)
                  let t = { t_spans = Trace.current_stack () } in
                  enqueue ds
                    { rn_task = t; rn_fiber = (fun () -> run_fresh t child) };
                  Effect.Deep.continue k ())
          | Yield ->
              Some
                (fun (k : (a, status) Effect.Deep.continuation) ->
                  let ds = Domain.DLS.get sched_key in
                  M.incr (Lazy.force m_yields);
                  save_task_ctx ds task;
                  enqueue ds
                    {
                      rn_task = task;
                      rn_fiber = (fun () -> Effect.Deep.continue k ());
                    };
                  (* round-robin after a yield: the participant takes its
                     *oldest* queued task next, so a polling task cannot
                     monopolise the domain (owner pop is LIFO and would
                     otherwise re-run the yielder immediately) *)
                  ds.d_prefer_fifo <- true;
                  Suspended)
          | Await iv ->
              Some
                (fun (k : (a, status) Effect.Deep.continuation) ->
                  match Atomic.get iv with
                  | Full r -> Effect.Deep.continue k r
                  | Empty _ ->
                      let ds = Domain.DLS.get sched_key in
                      save_task_ctx ds task;
                      let w = { w_task = task; w_k = k } in
                      let rec register () =
                        match Atomic.get iv with
                        | Full r ->
                            (* filled between the save and the CAS: the
                               continuation was never published, resume
                               in place *)
                            restore_task_ctx ds task;
                            Effect.Deep.continue k r
                        | Empty ws as old ->
                            if Atomic.compare_and_set iv old (Empty (w :: ws))
                            then Suspended
                            else register ()
                      in
                      register ())
          | _ -> None);
    }

(* ------------------------------------------------------------ pool --- *)

type t = {
  jobs : int;                       (* participants, including the caller *)
  mutable workers : unit Domain.t array; (* the [jobs - 1] spawned domains *)
  mu : Mutex.t;                     (* guards epoch/current/stop *)
  cv : Condition.t;
  mutable epoch : int;              (* bumped once per session *)
  mutable current : session option;
  mutable stop : bool;
  batch_mu : Mutex.t;               (* serializes top-level sessions *)
}

let jobs t = t.jobs

(* Idle waiting: spin briefly, then sleep with backoff.  On an
   oversubscribed machine (more participants than cores) a pure spin
   loop would steal the timeslice from the domain doing real work. *)
let idle_pause k =
  if k < 64 then Domain.cpu_relax ()
  else Unix.sleepf (if k < 512 then 0.0002 else 0.001)

(* One execution slice of [rn] on this participant: swap the task's span
   stack in, run the fiber, and on completion swap the participant's own
   stack back.  A *suspension* already restored the context from inside
   the handler (see [save_task_ctx]), so there is nothing to undo. *)
let exec ds rn =
  ds.d_task <- Some rn.rn_task;
  ds.d_prev_spans <- Trace.swap_stack rn.rn_task.t_spans;
  match rn.rn_fiber () with
  | Done ->
      ignore (Trace.swap_stack ds.d_prev_spans);
      ds.d_task <- None
  | Suspended -> ()
  | exception e ->
      (* unreachable for wrapped bodies; restore the domain before
         propagating so a scheduler bug doesn't also corrupt tracing *)
      ignore (Trace.swap_stack ds.d_prev_spans);
      ds.d_task <- None;
      raise e

let next_task ses slot ds =
  let n = Array.length ses.ses_deques in
  let mine = ses.ses_deques.(slot) in
  let after_yield =
    if ds.d_prefer_fifo then begin
      ds.d_prefer_fifo <- false;
      (* owner steals from its own top: oldest-first, the fairness path
         after a yield *)
      Ws_deque.steal mine
    end
    else None
  in
  match after_yield with
  | Some _ as r -> r
  | None -> (
      match Ws_deque.pop mine with
      | Some _ as r -> r
      | None ->
          (* own deque drained: steal round-robin from the others *)
          let rec try_steal k =
            if k >= n then None
            else
              match Ws_deque.steal ses.ses_deques.((slot + k) mod n) with
              | Some _ as r ->
                  M.incr (Lazy.force m_steals);
                  M.incr (Lazy.force m_stolen);
                  r
              | None -> try_steal (k + 1)
          in
          try_steal 1)

let participate (ses : session) (slot : int) =
  let ds = Domain.DLS.get sched_key in
  let saved_session = ds.d_session and saved_slot = ds.d_slot in
  ds.d_session <- Some ses;
  ds.d_slot <- slot;
  Fun.protect
    ~finally:(fun () ->
      ds.d_session <- saved_session;
      ds.d_slot <- saved_slot)
    (fun () ->
      let rec go idle =
        if not (Atomic.get ses.ses_done) then
          match next_task ses slot ds with
          | Some rn ->
              let d = Atomic.fetch_and_add ses.ses_pending (-1) - 1 in
              M.set_gauge (Lazy.force g_depth) (float_of_int (max 0 d));
              exec ds rn;
              go 0
          | None ->
              idle_pause idle;
              go (idle + 1)
      in
      go 0)

let rec worker_loop t slot my_epoch =
  Mutex.lock t.mu;
  while t.epoch = my_epoch && not t.stop do
    Condition.wait t.cv t.mu
  done;
  let epoch = t.epoch in
  let ses = t.current in
  let stop = t.stop in
  Mutex.unlock t.mu;
  if not stop then begin
    (match ses with Some s -> participate s slot | None -> ());
    worker_loop t slot epoch
  end

let create ?(jobs = 1) () =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      workers = [||];
      mu = Mutex.create ();
      cv = Condition.create ();
      epoch = 0;
      current = None;
      stop = false;
      batch_mu = Mutex.create ();
    }
  in
  t.workers <-
    Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* ------------------------------------------------- recommendation --- *)

(* What the environment recommends as the useful degree of parallelism:
   [GCATCH_JOBS] when set, otherwise the hardware thread count.  A
   malformed value falls back to the hardware recommendation with one
   structured-log warning (a silent fallback to 1 used to mask typos by
   making every run sequential).  Cached — the answer is fixed for the
   process lifetime and [map] consults it on every call. *)
let jobs_of_env = function
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ ->
          Goobs.Log.warn
            ~kv:[ ("value", s) ]
            "malformed GCATCH_JOBS (want an integer >= 1); using the \
             hardware recommendation";
          Domain.recommended_domain_count ())

let recommended_jobs_lazy = lazy (jobs_of_env (Sys.getenv_opt "GCATCH_JOBS"))
let recommended_jobs () = Lazy.force recommended_jobs_lazy

(* ----------------------------------------------------- public API --- *)

let fork (f : unit -> 'a) : 'a promise =
  let iv : 'a promise = Atomic.make (Empty []) in
  let body () =
    fill iv (try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  if in_task () then Effect.perform (Fork body)
  else
    (* outside a session there is no scheduler to defer to: run the body
       immediately and hand back an already-filled promise — callers
       (the retry ladder, tests) get identical sequential semantics *)
    body ();
  iv

let await_outcome (iv : 'a promise) : 'a outcome =
  if in_task () then Effect.perform (Await iv)
  else
    match Atomic.get iv with
    | Full r -> r
    | Empty _ ->
        invalid_arg "Pool.await: promise still pending outside the scheduler"

let await (iv : 'a promise) : 'a =
  match await_outcome iv with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let yield () = if in_task () then Effect.perform Yield

(* A stall that does not wedge the domain: inside a task, alternate
   yields (letting the scheduler run other tasks) with short sleeps
   until the wall-clock duration has passed.  Outside a task it is a
   plain sleep.  Fault-injection stall sites go through this. *)
let sleep_yielding dt =
  if not (in_task ()) then Unix.sleepf dt
  else begin
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < dt do
      yield ();
      Unix.sleepf 0.002
    done
  end

(* Enter the scheduler: run [f] as the root task of a fresh session on
   [pool], the caller participating as slot 0 until the root completes
   (the root itself may migrate to a worker; the caller keeps executing
   other tasks meanwhile).  Inside a task this is just [f ()] — the
   session already exists. *)
let with_scheduler ~pool (f : unit -> 'a) : 'a =
  let ds = Domain.DLS.get sched_key in
  if ds.d_task <> None then f ()
  else begin
    Mutex.lock pool.batch_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock pool.batch_mu)
      (fun () ->
        let ses =
          {
            ses_deques = Array.init pool.jobs (fun _ -> Ws_deque.create ());
            ses_done = Atomic.make false;
            ses_pending = Atomic.make 0;
          }
        in
        M.incr (Lazy.force m_batches);
        M.incr (Lazy.force m_spawned);
        (* schedule-dependent by nature (a --jobs 1 run opens no
           session at all): determinism diffs over journals exclude the
           pool.* events, like the metrics diff excludes sched.* *)
        if Goobs.Journal.enabled () then
          Goobs.Journal.emit ~event:"pool.session"
            [ ("jobs", Goobs.Journal.I pool.jobs) ];
        let outcome = ref None in
        let root = { t_spans = Trace.current_stack () } in
        let body () =
          (outcome :=
             Some
               (try Ok (f ())
                with e -> Error (e, Printexc.get_raw_backtrace ())));
          (* the SC store publishes [outcome] to the caller's domain *)
          Atomic.set ses.ses_done true
        in
        Ws_deque.push ses.ses_deques.(0)
          { rn_task = root; rn_fiber = (fun () -> run_fresh root body) };
        Atomic.incr ses.ses_pending;
        Mutex.lock pool.mu;
        pool.current <- Some ses;
        pool.epoch <- pool.epoch + 1;
        Condition.broadcast pool.cv;
        Mutex.unlock pool.mu;
        participate ses 0;
        Mutex.lock pool.mu;
        pool.current <- None;
        Mutex.unlock pool.mu;
        match !outcome with
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
  end

(* ------------------------------------------------------------- map --- *)

(* Batches too small to amortise the fan-out, and any batch on a machine
   whose environment recommends a single job, run inline: distributing
   work across domains that share one hardware thread is a strict
   slowdown (session setup, idle spinning, and domain wake-ups all cost,
   and nothing runs concurrently anyway). *)
let inline_threshold = 2

(* The scheduled fan-out: fork one subtask per item, await every promise
   in input order, then settle — errors are re-raised for the smallest
   failing index only after all items finished (so metrics and memo
   state are identical whether or not something failed earlier). *)
let scheduled_map f (items : 'a array) : 'b list =
  let n = Array.length items in
  M.add (Lazy.force m_items) n;
  let ivs =
    Array.mapi
      (fun i x ->
        fork (fun () ->
            M.incr (Lazy.force m_tasks);
            Trace.with_span ~name:"pool.task" (fun () ->
                (* a "pool" fault models a worker crashing mid-task: it
                   is captured like any task exception and re-raised in
                   the caller, where the surrounding supervision
                   boundary contains it *)
                (match Faults.fire ~site:"pool" ~key:(string_of_int i) () with
                | None -> ()
                | Some Faults.Stall -> sleep_yielding Faults.stall_s
                | Some _ -> raise (Faults.Injected ("pool", string_of_int i)));
                f x)))
      items
  in
  let outs = Array.make n None in
  for i = 0 to n - 1 do
    outs.(i) <- Some (await_outcome ivs.(i))
  done;
  (* deterministic exception choice: smallest failing index wins *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | _ -> ())
    outs;
  Array.to_list
    (Array.map (function Some (Ok v) -> v | _ -> assert false) outs)

let map_items ~pool f xs =
  match xs with
  | [] -> []
  | xs ->
      if in_task () then
        (* nested map: fork real subtasks into the running session
           (whatever [pool] was passed — the session owns the domains) *)
        (match xs with
        | [ x ] -> [ f x ]
        | xs -> scheduled_map f (Array.of_list xs))
      else
        let n = List.length xs in
        if pool.jobs <= 1 || n <= inline_threshold || recommended_jobs () = 1
        then List.map f xs
        else
          with_scheduler ~pool (fun () -> scheduled_map f (Array.of_list xs))

(* Split [xs] into consecutive chunks of at most [k] items. *)
let chunks k xs =
  let rec take n acc xs =
    match xs with
    | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go xs =
    match xs with
    | [] -> []
    | xs ->
        let c, rest = take k [] xs in
        c :: go rest
  in
  go xs

(* [grain] sets a minimum number of items per forked task: tiny items
   (a per-file lex, a cheap per-channel check) are batched into
   consecutive chunks so the fork/await overhead is paid once per chunk,
   not once per item.  Chunking must depend only on the input (never on
   [pool.jobs]): a chunk runs its items inline left to right, so the
   first failing item of the smallest failing chunk — i.e. the globally
   smallest failing index — still wins deterministically, exactly as in
   the unchunked map. *)
let map ~pool ?(grain = 1) f xs =
  if grain <= 1 then map_items ~pool f xs
  else
    match chunks grain xs with
    | [] -> []
    | [ c ] -> List.map f c
    | cs -> List.concat (map_items ~pool (List.map f) cs)

let run ~pool thunks = map ~pool (fun th -> th ()) thunks

(* --------------------------------------------------- shared pools ---- *)

(* Process-wide pools, one per size: engines and CLIs asking for the same
   [jobs] share worker domains instead of spawning new ones per engine
   (tests create many engines; domains are a bounded resource). *)
let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_mu = Mutex.create ()

let get ~jobs =
  let jobs = max 1 jobs in
  Mutex.lock pools_mu;
  let p =
    match Hashtbl.find_opt pools jobs with
    | Some p -> p
    | None ->
        let p = create ~jobs () in
        Hashtbl.add pools jobs p;
        p
  in
  Mutex.unlock pools_mu;
  p

let sequential = get ~jobs:1

(* Default parallelism: the GCATCH_JOBS environment variable when set,
   otherwise what the hardware recommends. *)
let default_jobs = recommended_jobs
