(* The resilient-analysis supervisor.

   GCatch only scales because it degrades instead of dying: the paper
   bounds path enumeration, budgets the solver per channel, and skips
   scopes that blow up.  This module generalises that posture to *every*
   unit of work the engine runs — a per-file frontend stage, a detector
   pass, a per-function checker walk, a per-channel solve, a cache
   access.  Three pieces:

   - fault boundaries ({!protect}): run a unit, convert any exception
     into a typed outcome plus health counters instead of aborting the
     run — a corpus with one broken file still analyses the rest;
   - global pressure watchdogs: a wall-clock deadline ([--deadline-ms])
     and a heap ceiling ([--max-heap-mb], via [Gc.create_alarm]).  Under
     pressure, units are *skipped at their boundary* and everything
     gathered so far is flushed normally — an orderly partial result
     instead of an OOM kill or an unbounded run;
   - the health ledger: "health.*" counters (attempted / ok / degraded /
     skipped / retried) accumulated in whichever metrics registry the
     unit reports to, surfaced by --json, --profile and the metrics
     dump.

   Diagnostics carry a typed {!Fault} payload so downstream tools can
   distinguish a degraded unit from a real finding; all supervision
   diagnostics are [Warning]s — a degraded unit is not a bug in the
   analysed program, and [--strict] is the switch that turns any of
   them into a hard failure for CI. *)

module D = Diagnostics
module M = Goobs.Metrics
module Log = Goobs.Log

type kind = Degraded | Skipped | Internal_error | Retried

let kind_str = function
  | Degraded -> "degraded"
  | Skipped -> "skipped"
  | Internal_error -> "internal-error"
  | Retried -> "retried"

type fault_info = {
  fi_unit : string; (* "frontend/file2.go", "bmoc.channel chan@f:3", … *)
  fi_kind : kind;
  fi_detail : string;
}

type D.payload += Fault of fault_info

let fault_of (d : D.t) =
  match d.D.payload with Fault f -> Some f | _ -> None

(* Supervision diagnostic: Warning severity by construction (see module
   comment); [pass] names the pass whose unit degraded, "supervise" for
   boundaries that belong to no pass. *)
let diag ?loc ?(pass = "supervise") ~unit_name (k : kind) detail : D.t =
  (* every supervision diagnostic is also a journal event: the ledger of
     degradations survives a later crash even when the diagnostic list
     dies with the process *)
  if Goobs.Journal.enabled () then
    Goobs.Journal.emit ~event:"supervise"
      [
        ("kind", Goobs.Journal.S (kind_str k));
        ("unit", Goobs.Journal.S unit_name);
        ("pass", Goobs.Journal.S pass);
        ("detail", Goobs.Journal.S detail);
      ];
  D.v ~severity:D.Warning ~pass ?loc
    ~payload:(Fault { fi_unit = unit_name; fi_kind = k; fi_detail = detail })
    (Printf.sprintf "%s %s: %s" unit_name (kind_str k) detail)

(* ---------------------------------------------------- health ledger --- *)

let h_attempted = "health.attempted"
let h_ok = "health.ok"
let h_degraded = "health.degraded"
let h_skipped = "health.skipped"
let h_retried = "health.retried"

let health_keys = [ h_attempted; h_ok; h_degraded; h_skipped; h_retried ]

let count (reg : M.t) key = M.incr (M.counter reg key)

(* The "health.*" slice of a metrics snapshot, with every key present so
   renderers need no defaulting. *)
let health_of (counters : (string * int) list) : (string * int) list =
  List.map
    (fun k -> (k, Option.value (List.assoc_opt k counters) ~default:0))
    health_keys

(* Sum several health snapshots (run = frontend units + every pass's
   units). *)
let health_sum (snaps : (string * int) list list) : (string * int) list =
  List.map
    (fun k ->
      ( k,
        List.fold_left
          (fun acc snap ->
            acc + Option.value (List.assoc_opt k snap) ~default:0)
          0 snaps ))
    health_keys

let health_get (snap : (string * int) list) key =
  Option.value (List.assoc_opt key snap) ~default:0

(* Anything not fully ok: what [--strict] fails on. *)
let health_unclean (snap : (string * int) list) : int =
  health_get snap h_degraded + health_get snap h_skipped
  + health_get snap h_retried

let health_str (snap : (string * int) list) : string =
  Printf.sprintf
    "%d unit(s) attempted: %d ok, %d degraded, %d skipped, %d retried"
    (health_get snap h_attempted)
    (health_get snap h_ok)
    (health_get snap h_degraded)
    (health_get snap h_skipped)
    (health_get snap h_retried)

(* ------------------------------------------------ pressure watchdogs --- *)

(* Deadline: absolute monotonic time, NaN = unset.  Heap: a [Gc] alarm
   checks the major-heap size at the end of every major cycle and trips
   a latch; both are plain atomics so a boundary check is two loads. *)

let deadline_at : float Atomic.t = Atomic.make nan
let heap_tripped : bool Atomic.t = Atomic.make false
let heap_alarm : Gc.alarm option ref = ref None
let heap_mu = Mutex.create ()

let set_deadline_ms ms =
  Atomic.set deadline_at (Clock.now_s () +. (float_of_int ms /. 1000.))

let clear_deadline () = Atomic.set deadline_at nan

(* [Gc.quick_stat] is cheap enough for the per-major-cycle alarm, but
   its [heap_words] is only refreshed by major-GC activity and reads 0
   early in a process; the arming-time check uses the accurate (heap
   walking) [Gc.stat] so an already-exceeded limit trips
   deterministically. *)
let heap_limit_exceeded ?(accurate = false) limit_mb =
  let stat = if accurate then Gc.stat () else Gc.quick_stat () in
  stat.Gc.heap_words * (Sys.word_size / 8) > limit_mb * 1_000_000

let set_max_heap_mb mb =
  Mutex.lock heap_mu;
  (match !heap_alarm with Some a -> Gc.delete_alarm a | None -> ());
  Atomic.set heap_tripped false;
  heap_alarm :=
    Some
      (Gc.create_alarm (fun () ->
           if (not (Atomic.get heap_tripped)) && heap_limit_exceeded mb then begin
             Atomic.set heap_tripped true;
             Log.warn
               ~kv:[ ("limit_mb", string_of_int mb) ]
               "heap watchdog tripped; flushing partial results"
           end));
  Mutex.unlock heap_mu;
  (* an allocation spike between alarms would be missed; check once now
     so a limit already exceeded at arming time trips immediately *)
  if heap_limit_exceeded ~accurate:true mb then Atomic.set heap_tripped true

let clear_max_heap () =
  Mutex.lock heap_mu;
  (match !heap_alarm with Some a -> Gc.delete_alarm a | None -> ());
  heap_alarm := None;
  Atomic.set heap_tripped false;
  Mutex.unlock heap_mu

(* The boundary check: why new work must not start, or [None]. *)
let pressure () : string option =
  if Atomic.get heap_tripped then Some "heap limit reached"
  else
    let d = Atomic.get deadline_at in
    if (not (Float.is_nan d)) && Clock.now_s () > d then
      Some "deadline exceeded"
    else None

(* ------------------------------------------------- health snapshot --- *)

(* Live health state for the /healthz telemetry endpoint: the ledger
   counters from [reg] plus the watchdogs' current verdict.  [ok] is
   false exactly when a pressure watchdog has tripped — degraded or
   skipped units alone leave the process healthy (partial results are
   the design, not a failure), so a scraping monitor alerts on "the run
   is being cut short", not on "one file was broken". *)
let healthz_json ?(reg = M.default) () : bool * string =
  let p = pressure () in
  let ok = p = None in
  let snap = health_of (M.counters_list reg) in
  let v k = health_get snap k in
  let body =
    Printf.sprintf
      "{\"ok\":%b,\"pressure\":%s,\"deadline_armed\":%b,\"heap_armed\":%b,\
       \"attempted\":%d,\"ok_units\":%d,\"degraded\":%d,\"skipped\":%d,\
       \"retried\":%d}"
      ok
      (match p with
      | None -> "null"
      | Some r -> "\"" ^ Goobs.Metrics.json_escape r ^ "\"")
      (not (Float.is_nan (Atomic.get deadline_at)))
      (!heap_alarm <> None) (v h_attempted) (v h_ok) (v h_degraded)
      (v h_skipped) (v h_retried)
  in
  (ok, body)

(* ------------------------------------------------- fault boundaries --- *)

(* Run one unit of work inside a boundary.  Accounting goes to [metrics]
   ("health.*" counters); the caller decides what a degraded unit means
   (drop it, emit a diagnostic, use a fallback).

   [Out_of_memory] and [Stack_overflow] are contained too — by the time
   they reach a boundary the blown-up unit has been abandoned and its
   allocations are garbage, which is precisely the partial-failure story
   this layer exists for. *)
let protect ~(metrics : M.t) ~unit_name (f : unit -> 'a) :
    ('a, string) result =
  count metrics h_attempted;
  match f () with
  | v ->
      count metrics h_ok;
      Ok v
  | exception e ->
      let detail = Printexc.to_string e in
      count metrics h_degraded;
      Log.warn
        ~kv:[ ("unit", unit_name); ("exn", detail) ]
        "unit degraded; analysis continues";
      Error detail

(* [protect] with a pre-flight pressure check: a unit under pressure is
   not run at all and counted as skipped. *)
let checked ~(metrics : M.t) ~unit_name (f : unit -> 'a) :
    ('a, [ `Degraded of string | `Skipped of string ]) result =
  match pressure () with
  | Some reason ->
      count metrics h_attempted;
      count metrics h_skipped;
      Error (`Skipped reason)
  | None -> (
      match protect ~metrics ~unit_name f with
      | Ok v -> Ok v
      | Error detail -> Error (`Degraded detail))
