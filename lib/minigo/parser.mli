(** Recursive-descent parser for MiniGo.

    The concurrency constructs — [go], [chan], [select], [defer],
    [close] — parse into dedicated AST forms so later phases never have
    to recognise them by function name. *)

exception Parse_error of string * Loc.t

val parse_tokens : file:string -> Lexer.token_info list -> Ast.file
(** Parse one already-tokenized source file, so staged pipelines can
    cache the token stream separately.  @raise Parse_error on syntax
    errors. *)

val parse_file : file:string -> string -> Ast.file
(** Parse one source file.  @raise Parse_error on syntax errors. *)

val parse_program : name:string -> string list -> Ast.program
(** Parse a multi-file program; files are named [<name>/file<i>.go]. *)

val parse_string : ?file:string -> string -> Ast.program
(** Parse a single source string as a one-file program. *)
