(* Hash-consed interning of AST atoms.

   Large synthetic corpora (100k+ LoC) repeat the same identifiers,
   field names, types, and file names millions of times.  Interning
   maps every such atom to one canonical heap value, which (a) collapses
   allocation on the frontend's hot path, (b) makes equality on
   identifiers and types a pointer check in the common case, and (c)
   re-establishes sharing after a Marshal round-trip through the
   per-file disk cache (unmarshalling duplicates every string).

   The pools are process-wide and thread-safe: per-file frontend tasks
   intern concurrently from pool workers.  Statistics live in
   module-local atomics, deliberately OUTSIDE the metrics registry —
   pool sizes depend on what else ran in the process, so they must not
   leak into the schedule-independent run metrics.  [--profile] reads
   them via [stats]. *)

type stats = {
  st_strings : int;  (* distinct strings pooled *)
  st_types : int;    (* distinct types pooled *)
  st_hits : int;     (* lookups served by an existing pool entry *)
  st_misses : int;   (* lookups that created a new entry *)
}

let mu = Mutex.create ()
let strings : (string, string) Hashtbl.t = Hashtbl.create 4096
let types : (Ast.typ, Ast.typ) Hashtbl.t = Hashtbl.create 256
let hits = Atomic.make 0
let misses = Atomic.make 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let pooled (tbl : ('a, 'a) Hashtbl.t) (v : 'a) : 'a =
  locked (fun () ->
      match Hashtbl.find_opt tbl v with
      | Some c ->
          Atomic.incr hits;
          c
      | None ->
          Atomic.incr misses;
          Hashtbl.add tbl v v;
          v)

let str (s : string) : string = pooled strings s

let rec typ (t : Ast.typ) : Ast.typ =
  let t =
    match t with
    | Ast.Tchan e -> Ast.Tchan (typ e)
    | Ast.Tstruct s -> Ast.Tstruct (str s)
    | Ast.Tfunc (args, rets) -> Ast.Tfunc (List.map typ args, List.map typ rets)
    | Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tunit | Ast.Tmutex
    | Ast.Twaitgroup | Ast.Tcond | Ast.Ttesting | Ast.Tcontext | Ast.Terror
    | Ast.Tany ->
        t
  in
  pooled types t

(* Locations are mostly distinct (line/col), so only the file name is
   pooled; the record is kept when it is already canonical. *)
let loc (l : Loc.t) : Loc.t =
  let f = str l.Loc.file in
  if f == l.Loc.file then l else { l with Loc.file = f }

let stats () =
  locked (fun () ->
      {
        st_strings = Hashtbl.length strings;
        st_types = Hashtbl.length types;
        st_hits = Atomic.get hits;
        st_misses = Atomic.get misses;
      })

(* ------------------------------------------------- AST re-interning --- *)

let param (p : Ast.param) : Ast.param =
  { Ast.pname = str p.Ast.pname; ptyp = typ p.Ast.ptyp }

let rec expr (e : Ast.expr) : Ast.expr =
  { Ast.e = expr_desc e.Ast.e; eloc = loc e.Ast.eloc }

and expr_desc (d : Ast.expr_desc) : Ast.expr_desc =
  match d with
  | Ast.Int _ | Ast.Bool _ | Ast.Nil -> d
  | Ast.Str s -> Ast.Str (str s)
  | Ast.Ident x -> Ast.Ident (str x)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, expr a, expr b)
  | Ast.Unop (op, a) -> Ast.Unop (op, expr a)
  | Ast.Call c -> Ast.Call (call c)
  | Ast.MakeChan (t, cap) -> Ast.MakeChan (typ t, Option.map expr cap)
  | Ast.Recv e -> Ast.Recv (expr e)
  | Ast.Field (e, f) -> Ast.Field (expr e, str f)
  | Ast.StructLit (n, fs) ->
      Ast.StructLit (str n, List.map (fun (f, e) -> (str f, expr e)) fs)
  | Ast.FuncLit (ps, rs, b) ->
      Ast.FuncLit (List.map param ps, List.map typ rs, block b)
  | Ast.Len e -> Ast.Len (expr e)

and call (c : Ast.call) : Ast.call =
  { Ast.callee = callee c.Ast.callee; args = List.map expr c.Ast.args }

and callee (c : Ast.callee) : Ast.callee =
  match c with
  | Ast.Fname f -> Ast.Fname (str f)
  | Ast.Fmethod (e, m) -> Ast.Fmethod (expr e, str m)
  | Ast.Fexpr e -> Ast.Fexpr (expr e)

and block (b : Ast.block) : Ast.block = List.map stmt b

and stmt (s : Ast.stmt) : Ast.stmt =
  { Ast.s = stmt_desc s.Ast.s; sloc = loc s.Ast.sloc }

and stmt_desc (d : Ast.stmt_desc) : Ast.stmt_desc =
  match d with
  | Ast.Decl (x, t, e) ->
      Ast.Decl (str x, Option.map typ t, Option.map expr e)
  | Ast.Define (xs, e) -> Ast.Define (List.map str xs, expr e)
  | Ast.Assign (lv, e) -> Ast.Assign (lvalue lv, expr e)
  | Ast.ExprStmt e -> Ast.ExprStmt (expr e)
  | Ast.Send (c, v) -> Ast.Send (expr c, expr v)
  | Ast.CloseStmt e -> Ast.CloseStmt (expr e)
  | Ast.Go c -> Ast.Go (call c)
  | Ast.GoFuncLit (ps, b, args) ->
      Ast.GoFuncLit (List.map param ps, block b, List.map expr args)
  | Ast.If (c, b1, b2) -> Ast.If (expr c, block b1, Option.map block b2)
  | Ast.For (k, b) -> Ast.For (for_kind k, block b)
  | Ast.Select (cs, dflt) ->
      Ast.Select (List.map select_case cs, Option.map block dflt)
  | Ast.Return es -> Ast.Return (List.map expr es)
  | Ast.DeferStmt dd -> Ast.DeferStmt (defer_op dd)
  | Ast.Break | Ast.Continue -> d
  | Ast.Panic e -> Ast.Panic (expr e)
  | Ast.BlockStmt b -> Ast.BlockStmt (block b)
  | Ast.IncDec (lv, up) -> Ast.IncDec (lvalue lv, up)

and lvalue (lv : Ast.lvalue) : Ast.lvalue =
  match lv with
  | Ast.Lid x -> Ast.Lid (str x)
  | Ast.Lfield (e, f) -> Ast.Lfield (expr e, str f)

and for_kind (k : Ast.for_kind) : Ast.for_kind =
  match k with
  | Ast.ForEver -> k
  | Ast.ForCond e -> Ast.ForCond (expr e)
  | Ast.ForClassic (i, c, u) ->
      Ast.ForClassic (Option.map stmt i, Option.map expr c, Option.map stmt u)
  | Ast.ForRangeInt (x, e) -> Ast.ForRangeInt (str x, expr e)
  | Ast.ForRangeChan (x, e) -> Ast.ForRangeChan (Option.map str x, expr e)

and select_case (c : Ast.select_case) : Ast.select_case =
  match c with
  | Ast.CaseRecv (x, ok, e, b) ->
      Ast.CaseRecv (Option.map str x, ok, expr e, block b)
  | Ast.CaseSend (ch, v, b) -> Ast.CaseSend (expr ch, expr v, block b)

and defer_op (d : Ast.defer_op) : Ast.defer_op =
  match d with
  | Ast.DeferCall c -> Ast.DeferCall (call c)
  | Ast.DeferSend (ch, v) -> Ast.DeferSend (expr ch, expr v)
  | Ast.DeferClose e -> Ast.DeferClose (expr e)
  | Ast.DeferFuncLit b -> Ast.DeferFuncLit (block b)

let func_decl (fd : Ast.func_decl) : Ast.func_decl =
  {
    Ast.fname = str fd.Ast.fname;
    params = List.map param fd.Ast.params;
    results = List.map typ fd.Ast.results;
    body = block fd.Ast.body;
    floc = loc fd.Ast.floc;
  }

let struct_decl (sd : Ast.struct_decl) : Ast.struct_decl =
  {
    Ast.struct_name = str sd.Ast.struct_name;
    fields = List.map (fun (f, t) -> (str f, typ t)) sd.Ast.fields;
    struct_loc = loc sd.Ast.struct_loc;
  }

let decl (d : Ast.decl) : Ast.decl =
  match d with
  | Ast.Dfunc f -> Ast.Dfunc (func_decl f)
  | Ast.Dstruct s -> Ast.Dstruct (struct_decl s)

let file (f : Ast.file) : Ast.file =
  {
    Ast.package = str f.Ast.package;
    decls = List.map decl f.Ast.decls;
    source_name = str f.Ast.source_name;
  }

let program (p : Ast.program) : Ast.program = List.map file p
