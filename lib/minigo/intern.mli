(** Hash-consed interning of AST atoms (identifiers, types, file names).

    One process-wide, thread-safe pool.  [file] rebuilds an AST with
    every atom replaced by its canonical pooled value — used after
    parsing and after unmarshalling from the per-file disk cache, where
    Marshal has duplicated every string.  Statistics are module-local
    (not in the metrics registry: pool state is process-lifetime, not
    per-run) and feed the [--profile] "frontend:" section. *)

type stats = {
  st_strings : int;  (** distinct strings pooled *)
  st_types : int;    (** distinct types pooled *)
  st_hits : int;     (** lookups served from the pool *)
  st_misses : int;   (** lookups that created a new entry *)
}

val str : string -> string
(** Canonical instance of a string. *)

val typ : Ast.typ -> Ast.typ
(** Canonical instance of a type (recursively interned). *)

val loc : Loc.t -> Loc.t
(** [l] with its file name interned; returns [l] itself when already
    canonical. *)

val file : Ast.file -> Ast.file
(** Re-intern every identifier, type, and location in a file. *)

val program : Ast.program -> Ast.program

val stats : unit -> stats
