(** Type checker for MiniGo.

    Besides rejecting ill-typed programs, checking performs the one AST
    rewrite the parser defers: [for x := range e] is re-classified as a
    channel-drain loop when [e] is a channel. *)

exception Type_error of string * Loc.t

val check_program : Ast.program -> Ast.program
(** Check a whole program; returns the normalised program.
    @raise Type_error on the first error found. *)

type env
(** Whole-program signature environment (function and struct
    declarations only).  Read-only during checking, so one env may be
    shared by concurrent per-file checks. *)

val build_env : Ast.program -> env
(** Collect every file's declaration signatures. *)

type sig_item =
  [ `F of string * Ast.typ list * Ast.typ list
  | `S of string * (string * Ast.typ) list ]
(** One declaration's signature: function name with parameter and
    result types, or struct name with fields.  A file's signature list
    is the only part of it other files' typing and lowering can
    depend on — small, marshalable, and content-keyed cacheable. *)

val file_signatures : Ast.file -> sig_item list

val env_of_signatures : sig_item list -> env
(** [env_of_signatures (List.concat_map file_signatures prog)] is
    [build_env prog]. *)

val signatures_fingerprint : sig_item list -> string
(** [signatures_fingerprint (List.concat_map file_signatures prog)] is
    [signature_fingerprint prog]. *)

val check_file : env -> Ast.file -> Ast.file
(** Check one file against a whole-program env; returns the normalised
    file.  [check_program prog] is equivalent to
    [List.map (check_file (build_env prog)) prog].
    @raise Type_error on the first error found in this file. *)

val signature_fingerprint : Ast.program -> string
(** Digest of every declaration signature in program order — the
    cross-file input to [check_file].  Body-only edits leave it
    unchanged. *)
