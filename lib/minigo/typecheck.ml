(* Type checker for MiniGo.

   Beyond rejecting ill-typed programs, the checker performs the one AST
   rewrite the parser defers: `for x := range e` is re-classified as a
   channel-drain loop when [e] is a channel.  The checker also records the
   inferred type of every channel-creating expression; the IR lowering and
   the detectors rely on those annotations indirectly by re-running
   [type_of_expr] through a checked environment. *)

exception Type_error of string * Loc.t

type env = {
  vars : (string, Ast.typ) Hashtbl.t;
  funcs : (string, Ast.typ list * Ast.typ list) Hashtbl.t;
  structs : (string, (string * Ast.typ) list) Hashtbl.t;
  results : Ast.typ list; (* result types of the enclosing function *)
}

let err loc fmt = Printf.ksprintf (fun m -> raise (Type_error (m, loc))) fmt

let clone_env env = { env with vars = Hashtbl.copy env.vars }

let lookup_var env loc x =
  match Hashtbl.find_opt env.vars x with
  | Some t -> t
  | None -> err loc "unbound variable %s" x

let lookup_func env loc f =
  match Hashtbl.find_opt env.funcs f with
  | Some sg -> Some sg
  | None -> (
      (* variables holding function values are callable too *)
      match Hashtbl.find_opt env.vars f with
      | Some (Tfunc (a, r)) -> Some (a, r)
      | _ -> err loc "unknown function %s" f)

let rec compatible (a : Ast.typ) (b : Ast.typ) =
  match (a, b) with
  | Tany, _ | _, Tany -> true
  | Terror, Tstring | Tstring, Terror -> true (* errors are string-like *)
  | Terror, Tunit | Tunit, Terror -> true (* nil error *)
  | Tchan x, Tchan y -> compatible x y
  | Tfunc (a1, r1), Tfunc (a2, r2) ->
      List.length a1 = List.length a2
      && List.length r1 = List.length r2
      && List.for_all2 compatible a1 a2
      && List.for_all2 compatible r1 r2
  | x, y -> x = y

(* Built-in method signatures, dispatched on receiver type. *)
let method_sig (recv : Ast.typ) (m : string) : (Ast.typ list * Ast.typ list) option =
  match (recv, m) with
  | Tmutex, ("Lock" | "Unlock") -> Some ([], [])
  | Twaitgroup, "Add" -> Some ([ Tint ], [])
  | Twaitgroup, ("Done" | "Wait") -> Some ([], [])
  | Tcond, ("Wait" | "Signal" | "Broadcast") -> Some ([], [])
  | Ttesting, ("Fatal" | "Fatalf" | "Error" | "Errorf" | "Log" | "Logf" | "Skip") ->
      Some ([ Tstring ], [])
  | Ttesting, ("FailNow" | "Fail") -> Some ([], [])
  | Tcontext, "Done" -> Some ([], [ Tchan Tunit ])
  | Tcontext, "Err" -> Some ([], [ Terror ])
  | Terror, "Error" -> Some ([], [ Tstring ])
  | _ -> None

let rec type_of_expr env (e : Ast.expr) : Ast.typ =
  match e.e with
  | Int _ -> Tint
  | Bool _ -> Tbool
  | Str _ -> Tstring
  | Nil -> Tany
  | Ident x -> (
      match Hashtbl.find_opt env.vars x with
      | Some t -> t
      | None -> (
          (* a top-level function used as a value *)
          match Hashtbl.find_opt env.funcs x with
          | Some (args, rets) -> Tfunc (args, rets)
          | None -> err e.eloc "unbound variable %s" x))
  | Binop (op, a, b) -> (
      let ta = type_of_expr env a in
      let tb = type_of_expr env b in
      if not (compatible ta tb) then
        err e.eloc "operands of %s have different types (%s vs %s)"
          (Pretty.binop_str op) (Ast.typ_to_string ta) (Ast.typ_to_string tb);
      match op with
      | Add -> if ta = Tstring then Tstring else Tint
      | Sub | Mul | Div | Mod -> Tint
      | Eq | Neq | Lt | Le | Gt | Ge -> Tbool
      | And | Or ->
          if not (compatible ta Tbool) then err e.eloc "&&/|| need bool operands";
          Tbool)
  | Unop (Neg, a) ->
      let t = type_of_expr env a in
      if not (compatible t Tint) then err e.eloc "unary minus needs int";
      Tint
  | Unop (Not, a) ->
      let t = type_of_expr env a in
      if not (compatible t Tbool) then err e.eloc "! needs bool";
      Tbool
  | Call c -> (
      match types_of_call env e.eloc c with
      | [] -> Tunit
      | [ t ] -> t
      | ts -> err e.eloc "multi-value call (%d results) used as single value" (List.length ts))
  | MakeChan (t, cap) ->
      (match cap with
      | Some c ->
          let tc = type_of_expr env c in
          if not (compatible tc Tint) then err e.eloc "channel capacity must be int"
      | None -> ());
      Tchan t
  | Recv ch -> (
      match type_of_expr env ch with
      | Tchan t -> t
      | t -> err e.eloc "receive from non-channel (%s)" (Ast.typ_to_string t))
  | Field (b, f) -> (
      match type_of_expr env b with
      | Tstruct name -> (
          match Hashtbl.find_opt env.structs name with
          | None -> err e.eloc "unknown struct type %s" name
          | Some fields -> (
              match List.assoc_opt f fields with
              | Some t -> t
              | None -> err e.eloc "struct %s has no field %s" name f))
      | Tany -> Tany
      | t -> err e.eloc "field access on non-struct (%s)" (Ast.typ_to_string t))
  | StructLit (name, fields) -> (
      match Hashtbl.find_opt env.structs name with
      | None -> err e.eloc "unknown struct type %s" name
      | Some decl_fields ->
          List.iter
            (fun (f, v) ->
              match List.assoc_opt f decl_fields with
              | None -> err e.eloc "struct %s has no field %s" name f
              | Some ft ->
                  let vt = type_of_expr env v in
                  if not (compatible ft vt) then
                    err v.eloc "field %s expects %s, got %s" f
                      (Ast.typ_to_string ft) (Ast.typ_to_string vt))
            fields;
          Tstruct name)
  | FuncLit (params, rets, body) ->
      let inner = clone_env env in
      List.iter (fun (p : Ast.param) -> Hashtbl.replace inner.vars p.pname p.ptyp) params;
      check_block { inner with results = rets } body;
      Tfunc (List.map (fun (p : Ast.param) -> p.ptyp) params, rets)
  | Len e' -> (
      match type_of_expr env e' with
      | Tchan _ | Tstring -> Tint
      | t -> err e.eloc "len() of %s" (Ast.typ_to_string t))

and types_of_call env loc (c : Ast.call) : Ast.typ list =
  let check_args formal actual =
    if List.length formal <> List.length actual then
      err loc "call expects %d arguments, got %d" (List.length formal)
        (List.length actual);
    List.iter2
      (fun ft (a : Ast.expr) ->
        let at = type_of_expr env a in
        if not (compatible ft at) then
          err a.eloc "argument expects %s, got %s" (Ast.typ_to_string ft)
            (Ast.typ_to_string at))
      formal actual
  in
  match c.callee with
  | Fname "println" | Fname "print" ->
      List.iter (fun a -> ignore (type_of_expr env a)) c.args;
      []
  | Fname "sleep" ->
      (* sleep(n): n scheduler steps; models time.Sleep *)
      check_args [ Tint ] c.args;
      []
  | Fname "errorf" ->
      (* errorf(msg): builds an error value; models fmt.Errorf *)
      check_args [ Tstring ] c.args;
      [ Terror ]
  | Fname "background" ->
      (* background(): a never-cancelled context; models context.Background *)
      check_args [] c.args;
      [ Tcontext ]
  | Fname "cancel" ->
      (* cancel(ctx): cancels a context; models calling its CancelFunc *)
      check_args [ Tcontext ] c.args;
      []
  | Fname f -> (
      match lookup_func env loc f with
      | Some (formals, rets) ->
          check_args formals c.args;
          rets
      | None -> [])
  | Fmethod (recv, m) -> (
      let rt = type_of_expr env recv in
      match method_sig rt m with
      | Some (formals, rets) ->
          (* testing.T printf-style methods are variadic in real Go; accept
             any argument count and just type-check each argument. *)
          if rt = Ttesting then
            List.iter (fun a -> ignore (type_of_expr env a)) c.args
          else check_args formals c.args;
          rets
      | None -> (
          match rt with
          | Tstruct _ | Tany ->
              (* user structs have no methods in MiniGo *)
              err loc "type %s has no method %s" (Ast.typ_to_string rt) m
          | _ -> err loc "type %s has no method %s" (Ast.typ_to_string rt) m))
  | Fexpr e -> (
      match type_of_expr env e with
      | Tfunc (formals, rets) ->
          check_args formals c.args;
          rets
      | t -> err loc "calling non-function value of type %s" (Ast.typ_to_string t))

and check_block env (b : Ast.block) : unit =
  let env = clone_env env in
  List.iter (check_stmt env) b

and bind_results env loc names (ts : Ast.typ list) =
  if List.length names <> List.length ts then
    err loc "assignment mismatch: %d variables but %d values" (List.length names)
      (List.length ts);
  List.iter2
    (fun n t -> if n <> "_" then Hashtbl.replace env.vars n t)
    names ts

and check_stmt env (s : Ast.stmt) : unit =
  match s.s with
  | Decl (x, t, init) ->
      let ty =
        match (t, init) with
        | Some t, Some e ->
            let te = type_of_expr env e in
            if not (compatible t te) then
              err s.sloc "var %s declared %s but initialised with %s" x
                (Ast.typ_to_string t) (Ast.typ_to_string te);
            t
        | Some t, None -> t
        | None, Some e -> type_of_expr env e
        | None, None -> err s.sloc "var %s needs a type or initialiser" x
      in
      Hashtbl.replace env.vars x ty
  | Define (names, e) -> (
      match (names, e.e) with
      | [ x; ok ], Recv ch -> (
          (* x, ok := <-ch *)
          match type_of_expr env ch with
          | Tchan t ->
              if x <> "_" then Hashtbl.replace env.vars x t;
              if ok <> "_" then Hashtbl.replace env.vars ok Tbool
          | t -> err s.sloc "receive from non-channel %s" (Ast.typ_to_string t))
      | _, Call c -> bind_results env s.sloc names (types_of_call env s.sloc c)
      | [ x ], _ ->
          let t = type_of_expr env e in
          if x <> "_" then Hashtbl.replace env.vars x t
      | _, _ -> err s.sloc "multi-value define requires a call or channel receive")
  | Assign (lv, e) -> (
      let te = type_of_expr env e in
      match lv with
      | Lid "_" -> ()
      | Lid x ->
          let tx = lookup_var env s.sloc x in
          if not (compatible tx te) then
            err s.sloc "cannot assign %s to %s (%s)" (Ast.typ_to_string te) x
              (Ast.typ_to_string tx)
      | Lfield (b, f) ->
          let tf = type_of_expr env (Ast.mk_expr ~loc:s.sloc (Field (b, f))) in
          if not (compatible tf te) then
            err s.sloc "cannot assign %s to field %s (%s)" (Ast.typ_to_string te)
              f (Ast.typ_to_string tf))
  | ExprStmt e -> (
      match e.e with
      | Call c -> ignore (types_of_call env e.eloc c)
      | Recv _ -> ignore (type_of_expr env e)
      | _ -> err s.sloc "expression statement must be a call or receive")
  | Send (ch, v) -> (
      match type_of_expr env ch with
      | Tchan t ->
          let tv = type_of_expr env v in
          if not (compatible t tv) then
            err s.sloc "sending %s on chan %s" (Ast.typ_to_string tv)
              (Ast.typ_to_string t)
      | t -> err s.sloc "send on non-channel %s" (Ast.typ_to_string t))
  | CloseStmt ch -> (
      match type_of_expr env ch with
      | Tchan _ -> ()
      | t -> err s.sloc "close of non-channel %s" (Ast.typ_to_string t))
  | Go c -> ignore (types_of_call env s.sloc c)
  | GoFuncLit (params, body, args) ->
      if List.length params <> List.length args then
        err s.sloc "goroutine literal expects %d args, got %d" (List.length params)
          (List.length args);
      List.iter2
        (fun (p : Ast.param) a ->
          let ta = type_of_expr env a in
          if not (compatible p.ptyp ta) then
            err s.sloc "goroutine arg %s expects %s, got %s" p.pname
              (Ast.typ_to_string p.ptyp) (Ast.typ_to_string ta))
        params args;
      let inner = clone_env env in
      List.iter (fun (p : Ast.param) -> Hashtbl.replace inner.vars p.pname p.ptyp) params;
      check_block { inner with results = [] } body
  | If (cond, then_b, else_b) ->
      let tc = type_of_expr env cond in
      if not (compatible tc Tbool) then err s.sloc "if condition must be bool";
      check_block env then_b;
      Option.iter (check_block env) else_b
  | For (kind, body) -> (
      let env' = clone_env env in
      (match kind with
      | ForEver -> ()
      | ForCond c ->
          if not (compatible (type_of_expr env' c) Tbool) then
            err s.sloc "for condition must be bool"
      | ForClassic (init, cond, post) ->
          Option.iter (check_stmt env') init;
          Option.iter
            (fun c ->
              if not (compatible (type_of_expr env' c) Tbool) then
                err s.sloc "for condition must be bool")
            cond;
          Option.iter (check_stmt env') post
      | ForRangeInt (x, e) -> (
          match type_of_expr env' e with
          | Tint -> Hashtbl.replace env'.vars x Tint
          | Tchan t -> Hashtbl.replace env'.vars x t (* drain loop *)
          | t -> err s.sloc "cannot range over %s" (Ast.typ_to_string t))
      | ForRangeChan (bind, e) -> (
          match type_of_expr env' e with
          | Tchan t -> Option.iter (fun x -> Hashtbl.replace env'.vars x t) bind
          | t -> err s.sloc "range requires a channel, got %s" (Ast.typ_to_string t)));
      check_block env' body)
  | Select (cases, dflt) ->
      List.iter
        (fun case ->
          match case with
          | Ast.CaseRecv (bind, ok, ch, body) -> (
              match type_of_expr env ch with
              | Tchan t ->
                  let env' = clone_env env in
                  (match bind with
                  | Some x when x <> "_" -> Hashtbl.replace env'.vars x t
                  | _ -> ());
                  if ok then Hashtbl.replace env'.vars "ok" Tbool;
                  check_block env' body
              | t -> err s.sloc "select receive on non-channel %s" (Ast.typ_to_string t))
          | Ast.CaseSend (ch, v, body) -> (
              match type_of_expr env ch with
              | Tchan t ->
                  let tv = type_of_expr env v in
                  if not (compatible t tv) then
                    err s.sloc "select send of %s on chan %s" (Ast.typ_to_string tv)
                      (Ast.typ_to_string t);
                  check_block env body
              | t -> err s.sloc "select send on non-channel %s" (Ast.typ_to_string t)))
        cases;
      Option.iter (check_block env) dflt
  | Return es ->
      if List.length es <> List.length env.results then
        err s.sloc "return has %d values, function returns %d" (List.length es)
          (List.length env.results);
      List.iter2
        (fun (e : Ast.expr) rt ->
          let te = type_of_expr env e in
          if not (compatible rt te) then
            err e.eloc "return value expects %s, got %s" (Ast.typ_to_string rt)
              (Ast.typ_to_string te))
        es env.results
  | DeferStmt d -> (
      match d with
      | DeferCall c -> ignore (types_of_call env s.sloc c)
      | DeferSend (ch, v) -> check_stmt env (Ast.mk_stmt ~loc:s.sloc (Send (ch, v)))
      | DeferClose ch -> check_stmt env (Ast.mk_stmt ~loc:s.sloc (CloseStmt ch))
      | DeferFuncLit body -> check_block { env with results = [] } body)
  | Break | Continue -> ()
  | Panic e -> ignore (type_of_expr env e)
  | BlockStmt b -> check_block env b
  | IncDec (lv, _) -> (
      match lv with
      | Lid x ->
          if not (compatible (lookup_var env s.sloc x) Tint) then
            err s.sloc "++/-- on non-int %s" x
      | Lfield (b, f) ->
          let t = type_of_expr env (Ast.mk_expr ~loc:s.sloc (Field (b, f))) in
          if not (compatible t Tint) then err s.sloc "++/-- on non-int field %s" f)

(* ---------------------------------------------------------------- api *)

(* Rewrite `for x := range e` into ForRangeChan when e is a channel. *)
let rec normalise_block env (b : Ast.block) : Ast.block =
  let env = clone_env env in
  List.map (normalise_stmt env) b

and normalise_stmt env (s : Ast.stmt) : Ast.stmt =
  (* Track bindings loosely while rewriting; full checking happens after. *)
  let bind x t = if x <> "_" then Hashtbl.replace env.vars x t in
  let try_type e = try Some (type_of_expr env e) with Type_error _ -> None in
  let desc =
    match s.s with
    | For (ForRangeInt (x, e), body) -> (
        match try_type e with
        | Some (Tchan _) ->
            let env' = clone_env env in
            (match try_type e with
            | Some (Tchan t) -> Hashtbl.replace env'.vars x t
            | _ -> ());
            Ast.For (ForRangeChan (Some x, e), normalise_block env' body)
        | _ ->
            let env' = clone_env env in
            Hashtbl.replace env'.vars x Tint;
            Ast.For (ForRangeInt (x, e), normalise_block env' body))
    | For (kind, body) ->
        let env' = clone_env env in
        (match kind with
        | ForClassic (Some init, _, _) -> (
            match init.s with
            | Define ([ x ], e) ->
                Option.iter (bind_via env' x) (try_type_in env' e)
            | _ -> ())
        | _ -> ());
        Ast.For (kind, normalise_block env' body)
    | If (c, b1, b2) ->
        Ast.If (c, normalise_block env b1, Option.map (normalise_block env) b2)
    | BlockStmt b -> Ast.BlockStmt (normalise_block env b)
    | GoFuncLit (params, body, args) ->
        let env' = clone_env env in
        List.iter (fun (p : Ast.param) -> Hashtbl.replace env'.vars p.pname p.ptyp) params;
        Ast.GoFuncLit (params, normalise_block env' body, args)
    | Select (cases, dflt) ->
        let cases =
          List.map
            (fun case ->
              match case with
              | Ast.CaseRecv (bnd, ok, ch, body) ->
                  let env' = clone_env env in
                  (match (bnd, try_type ch) with
                  | Some x, Some (Tchan t) -> Hashtbl.replace env'.vars x t
                  | _ -> ());
                  if ok then Hashtbl.replace env'.vars "ok" Tbool;
                  Ast.CaseRecv (bnd, ok, ch, normalise_block env' body)
              | Ast.CaseSend (ch, v, body) ->
                  Ast.CaseSend (ch, v, normalise_block env body))
            cases
        in
        Ast.Select (cases, Option.map (normalise_block env) dflt)
    | DeferStmt (DeferFuncLit b) -> Ast.DeferStmt (DeferFuncLit (normalise_block env b))
    | other ->
        (* record bindings so later statements see them *)
        (match other with
        | Decl (x, Some t, _) -> bind x t
        | Decl (x, None, Some e) -> Option.iter (bind x) (try_type e)
        | Define ([ x; ok ], { e = Recv ch; _ }) ->
            (match try_type ch with
            | Some (Tchan t) -> bind x t
            | _ -> ());
            bind ok Tbool
        | Define (xs, { e = Call c; _ }) -> (
            let tys = try Some (types_of_call env s.sloc c) with _ -> None in
            match tys with
            | Some ts when List.length ts = List.length xs -> List.iter2 bind xs ts
            | _ -> ())
        | Define ([ x ], e) -> Option.iter (bind x) (try_type e)
        | _ -> ());
        other
  in
  { s with s = desc }

and bind_via env x t = if x <> "_" then Hashtbl.replace env.vars x t
and try_type_in env e = try Some (type_of_expr env e) with Type_error _ -> None

(* One declaration's signature — the only part of a file other files'
   typing (and lowering) can depend on.  A file's signature list is a
   tiny, content-keyed artifact: the engine caches it per file so a
   warm run can compute the program fingerprint, the typing env, and
   the lowering signature table without parsing unchanged files. *)
type sig_item =
  [ `F of string * Ast.typ list * Ast.typ list
  | `S of string * (string * Ast.typ) list ]

let file_signatures (f : Ast.file) : sig_item list =
  List.map
    (fun d ->
      match d with
      | Ast.Dfunc fd ->
          `F
            ( fd.Ast.fname,
              List.map (fun (p : Ast.param) -> p.ptyp) fd.Ast.params,
              fd.Ast.results )
      | Ast.Dstruct sd -> `S (sd.Ast.struct_name, sd.Ast.fields))
    f.Ast.decls

let env_of_signatures (sigs : sig_item list) : env =
  let env =
    {
      vars = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      structs = Hashtbl.create 16;
      results = [];
    }
  in
  List.iter
    (function
      | `F (name, ptys, results) -> Hashtbl.replace env.funcs name (ptys, results)
      | `S (name, fields) -> Hashtbl.replace env.structs name fields)
    sigs;
  env

let build_env (prog : Ast.program) : env =
  env_of_signatures (List.concat_map file_signatures prog)

(* Check a whole program; returns the normalised program. *)
let check_program (prog : Ast.program) : Ast.program =
  let env = build_env prog in
  let prog =
    List.map
      (fun (file : Ast.file) ->
        let decls =
          List.map
            (fun d ->
              match d with
              | Ast.Dfunc fd ->
                  let fenv = clone_env env in
                  List.iter
                    (fun (p : Ast.param) -> Hashtbl.replace fenv.vars p.pname p.ptyp)
                    fd.params;
                  Ast.Dfunc { fd with body = normalise_block fenv fd.body }
              | Ast.Dstruct _ -> d)
            file.decls
        in
        { file with decls })
      prog
  in
  let env = build_env prog in
  List.iter
    (fun (file : Ast.file) ->
      List.iter
        (fun d ->
          match d with
          | Ast.Dfunc fd ->
              let fenv = clone_env env in
              List.iter
                (fun (p : Ast.param) -> Hashtbl.replace fenv.vars p.pname p.ptyp)
                fd.params;
              check_block { fenv with results = fd.results } fd.body
          | Ast.Dstruct _ -> ())
        file.decls)
    prog;
  prog

(* Per-file frontend entry points.

   [build_env] reads only declaration signatures and normalisation
   rewrites only function bodies, so normalising-then-checking one file
   against the whole-program signature env is exactly what
   [check_program] does for that file: the env it rebuilds between its
   two passes is identical because signatures are untouched.
   [env.funcs] and [env.structs] are read-only during checking
   ([clone_env] copies only [vars]), so one env is safely shared by
   parallel per-file tasks. *)

let check_file (env : env) (file : Ast.file) : Ast.file =
  let per_func fd k =
    let fenv = clone_env env in
    List.iter
      (fun (p : Ast.param) -> Hashtbl.replace fenv.vars p.pname p.ptyp)
      fd.Ast.params;
    k fenv
  in
  let decls =
    List.map
      (fun d ->
        match d with
        | Ast.Dfunc fd ->
            per_func fd (fun fenv ->
                Ast.Dfunc { fd with body = normalise_block fenv fd.body })
        | Ast.Dstruct _ -> d)
      file.decls
  in
  let file = { file with decls } in
  List.iter
    (fun d ->
      match d with
      | Ast.Dfunc fd ->
          per_func fd (fun fenv ->
              check_block { fenv with results = fd.results } fd.body)
      | Ast.Dstruct _ -> ())
    file.decls;
  file

(* Digest of every declaration signature in program order: the part of
   the program a file's typing can depend on besides its own text.
   Body-only edits leave it unchanged, so sibling files keep their
   per-file typed-AST cache entries. *)
let signatures_fingerprint (sigs : sig_item list) : string =
  Digest.to_hex (Digest.string (Marshal.to_string sigs [ Marshal.No_sharing ]))

let signature_fingerprint (prog : Ast.program) : string =
  signatures_fingerprint (List.concat_map file_signatures prog)
