(* Recursive-descent parser for MiniGo.

   The grammar follows Go closely for the subset we support.  Statement
   separators are semicolons (inserted by the lexer following Go's rule).
   The concurrency constructs — go, chan, select, defer, close — are parsed
   into dedicated AST forms so later phases never have to pattern-match on
   function names to find them. *)

exception Parse_error of string * Loc.t

type state = {
  mutable toks : Lexer.token_info list;
  file : string;
}

let peek st =
  match st.toks with [] -> Token.EOF | ti :: _ -> ti.tok

let peek_loc st =
  match st.toks with [] -> Loc.none | ti :: _ -> ti.loc

let peek2 st =
  match st.toks with _ :: ti :: _ -> ti.tok | _ -> Token.EOF

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let error st msg = raise (Parse_error (msg, peek_loc st))

let expect st tok =
  if Token.equal (peek st) tok then advance st
  else
    error st
      (Printf.sprintf "expected '%s' but found '%s'" (Token.to_string tok)
         (Token.to_string (peek st)))

let expect_ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t -> error st (Printf.sprintf "expected identifier, found '%s'" (Token.to_string t))

let skip_semis st =
  while Token.equal (peek st) Token.SEMI do
    advance st
  done

(* ---------------------------------------------------------------- types *)

let rec parse_type st : Ast.typ =
  match peek st with
  | KW_chan ->
      advance st;
      Tchan (parse_type st)
  | KW_func ->
      advance st;
      expect st LPAREN;
      let args = parse_type_list st in
      expect st RPAREN;
      let rets = parse_result_types st in
      Tfunc (args, rets)
  | STAR ->
      (* pointer types degrade to their base type in MiniGo *)
      advance st;
      parse_type st
  | IDENT "int" -> advance st; Tint
  | IDENT "bool" -> advance st; Tbool
  | IDENT "string" -> advance st; Tstring
  | IDENT "error" -> advance st; Terror
  | IDENT "sync" when peek2 st = DOT -> (
      advance st;
      advance st;
      match expect_ident st with
      | "Mutex" -> Tmutex
      | "WaitGroup" -> Twaitgroup
      | "Cond" -> Tcond
      | other -> error st ("unknown sync type sync." ^ other))
  | IDENT "testing" when peek2 st = DOT ->
      advance st;
      advance st;
      let _ = expect_ident st in
      Ttesting
  | IDENT "context" when peek2 st = DOT ->
      advance st;
      advance st;
      let _ = expect_ident st in
      Tcontext
  | IDENT name ->
      advance st;
      Tstruct name
  | KW_struct ->
      (* anonymous struct types appear only in declarations, name them *)
      error st "anonymous struct types are not supported; declare a named type"
  | t -> error st (Printf.sprintf "expected a type, found '%s'" (Token.to_string t))

and parse_type_list st =
  if Token.equal (peek st) RPAREN then []
  else
    let rec go acc =
      let t = parse_type st in
      if Token.equal (peek st) COMMA then (advance st; go (t :: acc))
      else List.rev (t :: acc)
    in
    go []

and parse_result_types st : Ast.typ list =
  match peek st with
  | LPAREN ->
      advance st;
      let ts = parse_type_list st in
      expect st RPAREN;
      ts
  | LBRACE | SEMI | EOF -> []
  | _ -> [ parse_type st ]

(* ------------------------------------------------------------- exprs *)

let binop_of_token : Token.t -> Ast.binop option = function
  | PLUS -> Some Add
  | MINUS -> Some Sub
  | STAR -> Some Mul
  | SLASH -> Some Div
  | PERCENT -> Some Mod
  | EQ -> Some Eq
  | NEQ -> Some Neq
  | LT -> Some Lt
  | LE -> Some Le
  | GT -> Some Gt
  | GE -> Some Ge
  | AND -> Some And
  | OR -> Some Or
  | _ -> None

let precedence : Ast.binop -> int = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let rec parse_expr st : Ast.expr = parse_binary st 0

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek st) with
    | Some op when precedence op >= min_prec ->
        let loc = peek_loc st in
        advance st;
        let rhs = parse_binary st (precedence op + 1) in
        loop (Ast.mk_expr ~loc (Binop (op, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  let loc = peek_loc st in
  match peek st with
  | NOT ->
      advance st;
      Ast.mk_expr ~loc (Unop (Not, parse_unary st))
  | MINUS ->
      advance st;
      Ast.mk_expr ~loc (Unop (Neg, parse_unary st))
  | ARROW ->
      advance st;
      Ast.mk_expr ~loc (Recv (parse_unary st))
  | AMP ->
      (* address-of degrades to the operand *)
      advance st;
      parse_unary st
  | _ -> parse_postfix st

and parse_postfix st =
  let base = parse_primary st in
  let rec loop e =
    match peek st with
    | DOT -> (
        advance st;
        let name = expect_ident st in
        match peek st with
        | LPAREN ->
            let loc = peek_loc st in
            advance st;
            let args = parse_args st in
            expect st RPAREN;
            loop (Ast.mk_expr ~loc (Call { callee = Fmethod (e, name); args }))
        | _ -> loop (Ast.mk_expr ~loc:e.eloc (Field (e, name))))
    | LPAREN -> (
        let loc = peek_loc st in
        advance st;
        let args = parse_args st in
        expect st RPAREN;
        match e.e with
        | Ident f -> loop (Ast.mk_expr ~loc (Call { callee = Fname f; args }))
        | _ -> loop (Ast.mk_expr ~loc (Call { callee = Fexpr e; args })))
    | LBRACE when is_struct_lit_candidate e ->
        (* `Name{f: v, ...}` — only when primary is a bare identifier whose
           name starts uppercase (Go convention for exported struct types),
           to avoid swallowing `if x { ... }` blocks. *)
        let name = (match e.e with Ident n -> n | _ -> assert false) in
        advance st;
        let fields = parse_struct_fields st in
        expect st RBRACE;
        loop (Ast.mk_expr ~loc:e.eloc (StructLit (name, fields)))
    | _ -> e
  in
  loop base

and is_struct_lit_candidate (e : Ast.expr) =
  match e.e with
  | Ident n -> String.length n > 0 && n.[0] >= 'A' && n.[0] <= 'Z'
  | _ -> false

and parse_struct_fields st =
  skip_semis st;
  if Token.equal (peek st) RBRACE then []
  else
    let rec go acc =
      let name = expect_ident st in
      expect st COLON;
      let v = parse_expr st in
      let acc = (name, v) :: acc in
      skip_semis st;
      if Token.equal (peek st) COMMA then begin
        advance st;
        skip_semis st;
        if Token.equal (peek st) RBRACE then List.rev acc else go acc
      end
      else List.rev acc
    in
    go []

and parse_args st =
  if Token.equal (peek st) RPAREN then []
  else
    let rec go acc =
      let e = parse_expr st in
      if Token.equal (peek st) COMMA then (advance st; go (e :: acc))
      else List.rev (e :: acc)
    in
    go []

and parse_primary st =
  let loc = peek_loc st in
  match peek st with
  | INT n -> advance st; Ast.mk_expr ~loc (Int n)
  | STRING s -> advance st; Ast.mk_expr ~loc (Str s)
  | KW_true -> advance st; Ast.mk_expr ~loc (Bool true)
  | KW_false -> advance st; Ast.mk_expr ~loc (Bool false)
  | KW_nil -> advance st; Ast.mk_expr ~loc Nil
  | KW_len ->
      advance st;
      expect st LPAREN;
      let e = parse_expr st in
      expect st RPAREN;
      Ast.mk_expr ~loc (Len e)
  | KW_make ->
      advance st;
      expect st LPAREN;
      expect st KW_chan;
      let t = parse_type st in
      let cap =
        if Token.equal (peek st) COMMA then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st RPAREN;
      Ast.mk_expr ~loc (MakeChan (t, cap))
  | KW_func ->
      advance st;
      expect st LPAREN;
      let params = parse_params st in
      expect st RPAREN;
      let rets = parse_result_types st in
      expect st LBRACE;
      let body = parse_block_body st in
      Ast.mk_expr ~loc (FuncLit (params, rets, body))
  | IDENT name -> advance st; Ast.mk_expr ~loc (Ident name)
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | t -> error st (Printf.sprintf "expected expression, found '%s'" (Token.to_string t))

and parse_params st : Ast.param list =
  if Token.equal (peek st) RPAREN then []
  else
    let rec go acc =
      let name = expect_ident st in
      let t = parse_type st in
      let acc = { Ast.pname = name; ptyp = t } :: acc in
      if Token.equal (peek st) COMMA then (advance st; go acc) else List.rev acc
    in
    go []

(* ------------------------------------------------------------ stmts *)

and parse_block_body st : Ast.block =
  (* assumes LBRACE already consumed; consumes RBRACE *)
  let rec go acc =
    skip_semis st;
    match peek st with
    | RBRACE ->
        advance st;
        List.rev acc
    | EOF -> error st "unexpected end of file inside block"
    | _ ->
        let s = parse_stmt st in
        go (s :: acc)
  in
  go []

and parse_block st : Ast.block =
  expect st LBRACE;
  parse_block_body st

and parse_stmt st : Ast.stmt =
  let loc = peek_loc st in
  match peek st with
  | KW_var ->
      advance st;
      let name = expect_ident st in
      let t, init =
        if Token.equal (peek st) ASSIGN then begin
          advance st;
          (None, Some (parse_expr st))
        end
        else
          let t = parse_type st in
          if Token.equal (peek st) ASSIGN then begin
            advance st;
            (Some t, Some (parse_expr st))
          end
          else (Some t, None)
      in
      Ast.mk_stmt ~loc (Decl (name, t, init))
  | KW_go -> (
      advance st;
      match peek st with
      | KW_func ->
          advance st;
          expect st LPAREN;
          let params = parse_params st in
          expect st RPAREN;
          let _rets = parse_result_types st in
          expect st LBRACE;
          let body = parse_block_body st in
          expect st LPAREN;
          let args = parse_args st in
          expect st RPAREN;
          Ast.mk_stmt ~loc (GoFuncLit (params, body, args))
      | _ -> (
          let e = parse_expr st in
          match e.e with
          | Call c -> Ast.mk_stmt ~loc (Go c)
          | _ -> error st "go statement requires a function call"))
  | KW_defer -> (
      advance st;
      match peek st with
      | KW_func ->
          advance st;
          expect st LPAREN;
          expect st RPAREN;
          expect st LBRACE;
          let body = parse_block_body st in
          expect st LPAREN;
          expect st RPAREN;
          Ast.mk_stmt ~loc (DeferStmt (DeferFuncLit body))
      | KW_close ->
          advance st;
          expect st LPAREN;
          let ch = parse_expr st in
          expect st RPAREN;
          Ast.mk_stmt ~loc (DeferStmt (DeferClose ch))
      | _ -> (
          let e = parse_expr st in
          match (e.e, peek st) with
          | _, ARROW ->
              advance st;
              let v = parse_expr st in
              Ast.mk_stmt ~loc (DeferStmt (DeferSend (e, v)))
          | Call c, _ -> Ast.mk_stmt ~loc (DeferStmt (DeferCall c))
          | _ -> error st "defer requires a call, send, or close"))
  | KW_close ->
      advance st;
      expect st LPAREN;
      let ch = parse_expr st in
      expect st RPAREN;
      Ast.mk_stmt ~loc (CloseStmt ch)
  | KW_if -> parse_if st
  | KW_for -> parse_for st
  | KW_select -> parse_select st
  | KW_return ->
      advance st;
      let es =
        match peek st with
        | SEMI | RBRACE | EOF -> []
        | _ ->
            let rec go acc =
              let e = parse_expr st in
              if Token.equal (peek st) COMMA then (advance st; go (e :: acc))
              else List.rev (e :: acc)
            in
            go []
      in
      Ast.mk_stmt ~loc (Return es)
  | KW_break -> advance st; Ast.mk_stmt ~loc Break
  | KW_continue -> advance st; Ast.mk_stmt ~loc Continue
  | KW_panic ->
      advance st;
      expect st LPAREN;
      let e = parse_expr st in
      expect st RPAREN;
      Ast.mk_stmt ~loc (Panic e)
  | LBRACE ->
      advance st;
      let b = parse_block_body st in
      Ast.mk_stmt ~loc (BlockStmt b)
  | _ -> parse_simple_stmt st

(* Simple statements: define, assign, send, inc/dec, expression. *)
and parse_simple_stmt st : Ast.stmt =
  let loc = peek_loc st in
  let e = parse_expr st in
  match peek st with
  | DEFINE -> (
      advance st;
      let names = idents_of_expr_list st [ e ] in
      let rhs = parse_expr st in
      Ast.mk_stmt ~loc (Define (names, rhs)))
  | COMMA -> (
      (* multi-assign / multi-define: x, y := e  or  x, ok := <-ch *)
      advance st;
      let e2 = parse_expr st in
      match peek st with
      | DEFINE ->
          advance st;
          let names = idents_of_expr_list st [ e; e2 ] in
          let rhs = parse_expr st in
          Ast.mk_stmt ~loc (Define (names, rhs))
      | t ->
          error st
            (Printf.sprintf "expected ':=' after expression list, found '%s'"
               (Token.to_string t)))
  | ASSIGN ->
      advance st;
      let rhs = parse_expr st in
      Ast.mk_stmt ~loc (Assign (lvalue_of_expr st e, rhs))
  | ARROW ->
      advance st;
      let v = parse_expr st in
      Ast.mk_stmt ~loc (Send (e, v))
  | PLUSPLUS ->
      advance st;
      Ast.mk_stmt ~loc (IncDec (lvalue_of_expr st e, true))
  | MINUSMINUS ->
      advance st;
      Ast.mk_stmt ~loc (IncDec (lvalue_of_expr st e, false))
  | _ -> Ast.mk_stmt ~loc (ExprStmt e)

and idents_of_expr_list st es =
  List.map
    (fun (e : Ast.expr) ->
      match e.e with
      | Ident n -> n
      | _ -> error st "left side of ':=' must be identifiers")
    es

and lvalue_of_expr st (e : Ast.expr) : Ast.lvalue =
  match e.e with
  | Ident n -> Lid n
  | Field (b, f) -> Lfield (b, f)
  | _ -> error st "invalid assignment target"

and parse_if st : Ast.stmt =
  let loc = peek_loc st in
  expect st KW_if;
  let cond = parse_expr st in
  let then_b = parse_block st in
  let else_b =
    if Token.equal (peek st) KW_else then begin
      advance st;
      match peek st with
      | KW_if -> Some [ parse_if st ]
      | _ -> Some (parse_block st)
    end
    else None
  in
  Ast.mk_stmt ~loc (If (cond, then_b, else_b))

and parse_for st : Ast.stmt =
  let loc = peek_loc st in
  expect st KW_for;
  match peek st with
  | LBRACE ->
      let body = parse_block st in
      Ast.mk_stmt ~loc (For (ForEver, body))
  | KW_range ->
      (* for range ch {} — drain loop without binding *)
      advance st;
      let e = parse_expr st in
      let body = parse_block st in
      Ast.mk_stmt ~loc (For (ForRangeChan (None, e), body))
  | IDENT name
    when peek2 st = DEFINE ->
      (* could be: for i := 0; i < n; i++ {}   or   for v := range e {} *)
      advance st;
      advance st;
      if Token.equal (peek st) KW_range then begin
        advance st;
        let e = parse_expr st in
        let body = parse_block st in
        let kind =
          (* range over an int expression iterates [0, n); range over a
             channel drains it.  Disambiguated during type checking; the
             parser records the shape via a marker resolved there.  We use
             ForRangeInt and let the type checker rewrite when the operand
             is a channel. *)
          Ast.ForRangeInt (name, e)
        in
        Ast.mk_stmt ~loc (For (kind, body))
      end
      else begin
        let rhs = parse_expr st in
        let init = Ast.mk_stmt ~loc (Define ([ name ], rhs)) in
        expect st SEMI;
        let cond = parse_expr st in
        expect st SEMI;
        let post = parse_simple_stmt st in
        let body = parse_block st in
        Ast.mk_stmt ~loc (For (ForClassic (Some init, Some cond, Some post), body))
      end
  | _ ->
      let cond = parse_expr st in
      let body = parse_block st in
      Ast.mk_stmt ~loc (For (ForCond cond, body))

and parse_select st : Ast.stmt =
  let loc = peek_loc st in
  expect st KW_select;
  expect st LBRACE;
  let cases = ref [] in
  let dflt = ref None in
  let rec go () =
    skip_semis st;
    match peek st with
    | RBRACE -> advance st
    | KW_default ->
        advance st;
        expect st COLON;
        let body = parse_case_body st in
        dflt := Some body;
        go ()
    | KW_case ->
        advance st;
        let case = parse_select_case st in
        cases := case :: !cases;
        go ()
    | t ->
        error st
          (Printf.sprintf "expected 'case', 'default' or '}', found '%s'"
             (Token.to_string t))
  in
  go ();
  Ast.mk_stmt ~loc (Select (List.rev !cases, !dflt))

and parse_select_case st : Ast.select_case =
  (* case x := <-ch:   case x, ok := <-ch:   case <-ch:   case ch <- v: *)
  match peek st with
  | ARROW ->
      advance st;
      let ch = parse_unary st in
      expect st COLON;
      let body = parse_case_body st in
      CaseRecv (None, false, ch, body)
  | IDENT name when peek2 st = DEFINE ->
      advance st;
      advance st;
      expect st ARROW;
      let ch = parse_unary st in
      expect st COLON;
      let body = parse_case_body st in
      CaseRecv (Some name, false, ch, body)
  | IDENT name when peek2 st = COMMA ->
      advance st;
      advance st;
      let ok = expect_ident st in
      ignore ok;
      expect st DEFINE;
      expect st ARROW;
      let ch = parse_unary st in
      expect st COLON;
      let body = parse_case_body st in
      CaseRecv (Some name, true, ch, body)
  | _ ->
      let ch = parse_expr st in
      expect st ARROW;
      let v = parse_expr st in
      expect st COLON;
      let body = parse_case_body st in
      CaseSend (ch, v, body)

and parse_case_body st : Ast.block =
  let rec go acc =
    skip_semis st;
    match peek st with
    | KW_case | KW_default | RBRACE -> List.rev acc
    | EOF -> error st "unexpected end of file in select"
    | _ ->
        let s = parse_stmt st in
        go (s :: acc)
  in
  go []

(* ------------------------------------------------------- declarations *)

let parse_func_decl st : Ast.func_decl =
  let loc = peek_loc st in
  expect st KW_func;
  let name = expect_ident st in
  expect st LPAREN;
  let params = parse_params st in
  expect st RPAREN;
  let results = parse_result_types st in
  let body = parse_block st in
  { fname = name; params; results; body; floc = loc }

let parse_struct_decl st : Ast.struct_decl =
  let loc = peek_loc st in
  expect st KW_type;
  let name = expect_ident st in
  expect st KW_struct;
  expect st LBRACE;
  let rec fields acc =
    skip_semis st;
    match peek st with
    | RBRACE ->
        advance st;
        List.rev acc
    | _ ->
        let fname = expect_ident st in
        let t = parse_type st in
        fields ((fname, t) :: acc)
  in
  let fs = fields [] in
  { struct_name = name; fields = fs; struct_loc = loc }

let parse_tokens ~file toks : Ast.file =
  let st = { toks; file } in
  skip_semis st;
  let package =
    if Token.equal (peek st) KW_package then begin
      advance st;
      let name = expect_ident st in
      skip_semis st;
      name
    end
    else "main"
  in
  (* skip imports: import "x" or import ( "x" "y" ) *)
  let rec skip_imports () =
    if Token.equal (peek st) KW_import then begin
      advance st;
      (match peek st with
      | LPAREN ->
          advance st;
          let rec go () =
            skip_semis st;
            match peek st with
            | RPAREN -> advance st
            | STRING _ -> advance st; go ()
            | _ -> error st "malformed import block"
          in
          go ()
      | STRING _ -> advance st
      | _ -> error st "malformed import");
      skip_semis st;
      skip_imports ()
    end
  in
  skip_imports ();
  let rec decls acc =
    skip_semis st;
    match peek st with
    | EOF -> List.rev acc
    | KW_func -> decls (Ast.Dfunc (parse_func_decl st) :: acc)
    | KW_type -> decls (Ast.Dstruct (parse_struct_decl st) :: acc)
    | t ->
        error st
          (Printf.sprintf "expected top-level declaration, found '%s'"
             (Token.to_string t))
  in
  { package; decls = decls []; source_name = file }

let parse_file ~file src : Ast.file = parse_tokens ~file (Lexer.tokenize ~file src)

let parse_program ~name sources : Ast.program =
  List.mapi
    (fun i src ->
      let file = Printf.sprintf "%s/file%d.go" name i in
      parse_file ~file src)
    sources

(* Parse a single source string as a one-file program. *)
let parse_string ?(file = "input.go") src : Ast.program = [ parse_file ~file src ]
