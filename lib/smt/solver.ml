(* DPLL(T): the CDCL SAT core combined with the difference-logic theory.

   Usage mirrors a small subset of the Z3 API the paper relies on:
   - declare order variables ([new_order_var]) and booleans ([new_bool]);
   - build formulas with [lt]/[le]/[eq] atoms and {!Expr} connectives;
   - [add] asserts a formula; [solve] returns [Sat model] or [Unsat].

   The loop is offline-lazy: SAT finds a complete boolean assignment; the
   true (and negated-false) difference atoms are checked by Bellman-Ford;
   a negative cycle becomes a blocking clause; repeat.  This is sound and
   complete for the QF_IDL + pseudo-boolean fragment GCatch generates. *)

type ovar = int (* order variable index, dense from 0 *)

type atom_info =
  | Abool of string
  | Adiff of Diff_logic.atom (* x - y <= c *)

type t = {
  sat : Sat.t;
  mutable atoms : atom_info array; (* atom id -> info *)
  mutable natoms : int;
  mutable atom_sat_var : int array; (* atom id -> SAT var *)
  atom_cache : (atom_info, int) Hashtbl.t;
  mutable novars : int;
  mutable ovar_names : string list; (* reverse order *)
  mutable bool_names : (string, int) Hashtbl.t;
  mutable pending : Expr.t list;
  mutable theory_conflicts : int;
}

type model = {
  order_of : ovar -> int;
  bool_of : string -> bool;
}

type result = Sat_model of model | Unsat

let create () =
  {
    sat = Sat.create ();
    atoms = Array.make 16 (Abool "");
    natoms = 0;
    atom_sat_var = Array.make 16 0;
    atom_cache = Hashtbl.create 64;
    novars = 0;
    ovar_names = [];
    bool_names = Hashtbl.create 16;
    pending = [];
    theory_conflicts = 0;
  }

let new_order_var t name : ovar =
  let v = t.novars in
  t.novars <- t.novars + 1;
  t.ovar_names <- name :: t.ovar_names;
  v

let intern_atom t info : int =
  match Hashtbl.find_opt t.atom_cache info with
  | Some id -> id
  | None ->
      let id = t.natoms in
      t.natoms <- t.natoms + 1;
      if id >= Array.length t.atoms then begin
        let grow a d = Array.append a (Array.make (Array.length a) d) in
        t.atoms <- grow t.atoms (Abool "");
        t.atom_sat_var <- grow t.atom_sat_var 0
      end;
      t.atoms.(id) <- info;
      t.atom_sat_var.(id) <- Sat.new_var t.sat;
      Hashtbl.add t.atom_cache info id;
      id

let new_bool t name : Expr.t =
  match Hashtbl.find_opt t.bool_names name with
  | Some id -> Expr.Atom id
  | None ->
      let id = intern_atom t (Abool name) in
      Hashtbl.replace t.bool_names name id;
      Expr.Atom id

(* x - y <= c *)
let le_c t x y c : Expr.t =
  Expr.Atom (intern_atom t (Adiff { Diff_logic.ax = x; ay = y; ac = c }))

let lt t x y = le_c t x y (-1) (* x < y *)
let le t x y = le_c t x y 0
let eq t x y = Expr.And [ le t x y; le t y x ]

let add t (f : Expr.t) = t.pending <- f :: t.pending

let flush_pending t =
  match t.pending with
  | [] -> ()
  | fs ->
      t.pending <- [];
      let ctx =
        {
          Expr.fresh = (fun () -> Sat.new_var t.sat);
          lit_of_atom = (fun id -> Sat.lit_of_var t.atom_sat_var.(id) true);
          out = [];
        }
      in
      List.iter (Expr.assert_formula ctx) (List.rev fs);
      List.iter (fun c -> ignore (Sat.add_clause t.sat c)) (List.rev ctx.Expr.out)

exception Timeout = Sat.Timeout

let solve ?(should_stop = fun () -> false) t : result =
  flush_pending t;
  let rec loop budget =
    if budget = 0 then Unsat (* safety valve; never reached in practice *)
    else if should_stop () then raise Timeout
    else
      match Sat.solve ~should_stop t.sat with
      | Sat.Unsat -> Unsat
      | Sat.Sat -> (
          (* collect asserted difference atoms (true => atom, false =>
             negation: ¬(x-y<=c) ≡ y-x <= -c-1) *)
          let asserted = ref [] in
          let provenance = Hashtbl.create 16 in
          for id = 0 to t.natoms - 1 do
            match t.atoms.(id) with
            | Adiff a ->
                let v = t.atom_sat_var.(id) in
                let truth = Sat.model_value t.sat v in
                let a' =
                  if truth then a
                  else { Diff_logic.ax = a.ay; ay = a.ax; ac = -a.ac - 1 }
                in
                asserted := a' :: !asserted;
                Hashtbl.replace provenance a' (id, truth)
            | Abool _ -> ()
          done;
          match Diff_logic.check ~nvars:(max 1 t.novars) !asserted with
          | Diff_logic.Consistent vals ->
              let order_of v = if v < Array.length vals then vals.(v) else 0 in
              let bool_of name =
                match Hashtbl.find_opt t.bool_names name with
                | Some id -> Sat.model_value t.sat t.atom_sat_var.(id)
                | None -> false
              in
              Sat_model { order_of; bool_of }
          | Diff_logic.Inconsistent cycle ->
              t.theory_conflicts <- t.theory_conflicts + 1;
              (* block this combination of atom truth values *)
              let clause =
                List.filter_map
                  (fun a ->
                    match Hashtbl.find_opt provenance a with
                    | Some (id, truth) ->
                        let l = Sat.lit_of_var t.atom_sat_var.(id) true in
                        Some (if truth then Sat.neg l else l)
                    | None -> None)
                  cycle
              in
              if clause = [] then Unsat
              else if Sat.add_clause t.sat clause then loop (budget - 1)
              else Unsat)
  in
  loop 100_000

let theory_conflicts t = t.theory_conflicts
let sat_stats t = Sat.stats t.sat
