(* DPLL(T): the CDCL SAT core combined with the difference-logic theory.

   Usage mirrors a small subset of the Z3 API the paper relies on:
   - declare order variables ([new_order_var]) and booleans ([new_bool]);
   - build formulas with [lt]/[le]/[eq] atoms and {!Expr} connectives;
   - [add] asserts a formula; [solve] returns [Sat model] or [Unsat].

   The loop is offline-lazy: SAT finds a complete boolean assignment; the
   true (and negated-false) difference atoms are checked by Bellman-Ford;
   a negative cycle becomes a blocking clause; repeat.  This is sound and
   complete for the QF_IDL + pseudo-boolean fragment GCatch generates.

   Incremental use (the BMOC per-channel solver session):
   - [new_guard] allocates a selector; [add ~guard] asserts a formula
     weakened by the selector's negation, so the formula is active only
     while the selector is assumed true;
   - [solve ~assumptions] activates a set of guards for one query.
     Atoms, theory lemmas (blocking clauses), learnt clauses, and VSIDS
     activity are shared across queries.  Soundness: every clause of a
     guarded group carries the ¬selector literal, resolution can never
     eliminate it (selectors occur only negatively), so learnt clauses
     inherit the selectors of every group they depend on and are
     satisfied — hence inert — once those groups retire.  Theory lemmas
     are tautologies over their atoms and stay valid forever;
   - [retire_guard] asserts the selector's negation as a level-0 fact,
     permanently deactivating the group; [simplify] then reclaims its
     clauses.  The theory check and branching are scoped to the atoms and
     variables of the active groups (reference counts maintained at
     flush time), keeping each query proportional to the live problem
     rather than to everything ever asserted in the session. *)

type ovar = int (* order variable index, dense from 0 *)

type atom_info =
  | Abool of string
  | Adiff of Diff_logic.atom (* x - y <= c *)

type guard = {
  g_var : int; (* the selector's SAT variable *)
  mutable g_atoms : int list; (* flushed atom references to release *)
  mutable g_vars : int list;  (* decision variables of the group *)
  mutable g_retired : bool;
}

type t = {
  sat : Sat.t;
  mutable atoms : atom_info array; (* atom id -> info *)
  mutable natoms : int;
  mutable atom_sat_var : int array; (* atom id -> SAT var *)
  mutable atom_refs : int array; (* atom id -> active formula references *)
  atom_cache : (atom_info, int) Hashtbl.t;
  mutable novars : int;
  mutable ovar_names : string list; (* reverse order *)
  mutable bool_names : (string, int) Hashtbl.t;
  mutable pending : (guard option * Expr.t) list;
  mutable perm_vars : int list; (* decision vars of unguarded formulas *)
  mutable perm_atoms : int list; (* atom ids of unguarded formulas *)
  mutable used_guards : bool;
  mutable theory_conflicts : int;
}

type model = {
  order_of : ovar -> int;
  bool_of : string -> bool;
}

type result = Sat_model of model | Unsat

let create () =
  {
    sat = Sat.create ();
    atoms = Array.make 16 (Abool "");
    natoms = 0;
    atom_sat_var = Array.make 16 0;
    atom_refs = Array.make 16 0;
    atom_cache = Hashtbl.create 64;
    novars = 0;
    ovar_names = [];
    bool_names = Hashtbl.create 16;
    pending = [];
    perm_vars = [];
    perm_atoms = [];
    used_guards = false;
    theory_conflicts = 0;
  }

let new_order_var t name : ovar =
  let v = t.novars in
  t.novars <- t.novars + 1;
  t.ovar_names <- name :: t.ovar_names;
  v

let intern_atom t info : int =
  match Hashtbl.find_opt t.atom_cache info with
  | Some id -> id
  | None ->
      let id = t.natoms in
      t.natoms <- t.natoms + 1;
      if id >= Array.length t.atoms then begin
        let grow a d = Array.append a (Array.make (Array.length a) d) in
        t.atoms <- grow t.atoms (Abool "");
        t.atom_sat_var <- grow t.atom_sat_var 0;
        t.atom_refs <- grow t.atom_refs 0
      end;
      t.atoms.(id) <- info;
      t.atom_sat_var.(id) <- Sat.new_var t.sat;
      t.atom_refs.(id) <- 0;
      Hashtbl.add t.atom_cache info id;
      id

let new_bool t name : Expr.t =
  match Hashtbl.find_opt t.bool_names name with
  | Some id -> Expr.Atom id
  | None ->
      let id = intern_atom t (Abool name) in
      Hashtbl.replace t.bool_names name id;
      Expr.Atom id

(* x - y <= c *)
let le_c t x y c : Expr.t =
  Expr.Atom (intern_atom t (Adiff { Diff_logic.ax = x; ay = y; ac = c }))

let lt t x y = le_c t x y (-1) (* x < y *)
let le t x y = le_c t x y 0
let eq t x y = Expr.And [ le t x y; le t y x ]

let new_guard t : guard =
  t.used_guards <- true;
  { g_var = Sat.new_var t.sat; g_atoms = []; g_vars = []; g_retired = false }

let add ?guard t (f : Expr.t) = t.pending <- (guard, f) :: t.pending

let rec collect_atoms acc (f : Expr.t) =
  match f with
  | Expr.True | Expr.False -> acc
  | Expr.Atom i -> i :: acc
  | Expr.Not g -> collect_atoms acc g
  | Expr.And fs | Expr.Or fs -> List.fold_left collect_atoms acc fs
  | Expr.Implies (a, b) | Expr.Iff (a, b) ->
      collect_atoms (collect_atoms acc a) b
  | Expr.AtMost (_, fs) | Expr.AtLeast (_, fs) | Expr.Exactly (_, fs) ->
      List.fold_left collect_atoms acc fs

let flush_pending t =
  match t.pending with
  | [] -> ()
  | fs ->
      t.pending <- [];
      List.iter
        (fun (g, f) ->
          let atoms = collect_atoms [] f in
          List.iter
            (fun id ->
              t.atom_refs.(id) <- t.atom_refs.(id) + 1;
              match g with
              | Some g -> g.g_atoms <- id :: g.g_atoms
              | None -> t.perm_atoms <- id :: t.perm_atoms)
            atoms;
          let vars = ref (List.map (fun id -> t.atom_sat_var.(id)) atoms) in
          let ctx =
            {
              Expr.fresh =
                (fun () ->
                  let v = Sat.new_var t.sat in
                  vars := v :: !vars;
                  v);
              lit_of_atom = (fun id -> Sat.lit_of_var t.atom_sat_var.(id) true);
              out = [];
            }
          in
          Expr.assert_formula ctx f;
          let clauses = List.rev ctx.Expr.out in
          match g with
          | None ->
              t.perm_vars <- List.rev_append !vars t.perm_vars;
              List.iter (fun c -> ignore (Sat.add_clause t.sat c)) clauses
          | Some g ->
              g.g_vars <- List.rev_append !vars g.g_vars;
              let gl = Sat.neg (Sat.lit_of_var g.g_var true) in
              List.iter
                (fun c -> ignore (Sat.add_clause t.sat (gl :: c)))
                clauses)
        (List.rev fs)

let retire_guard t g =
  if not g.g_retired then begin
    g.g_retired <- true;
    (* anything still pending under this guard would be satisfied by the
       unit below anyway; drop it before it is ever encoded *)
    t.pending <-
      List.filter
        (fun (g', _) -> match g' with Some g' -> g' != g | None -> true)
        t.pending;
    List.iter
      (fun id -> t.atom_refs.(id) <- t.atom_refs.(id) - 1)
      g.g_atoms;
    g.g_atoms <- [];
    g.g_vars <- [];
    ignore (Sat.add_clause t.sat [ Sat.neg (Sat.lit_of_var g.g_var true) ])
  end

let simplify t =
  flush_pending t;
  Sat.simplify t.sat

exception Timeout = Sat.Timeout

let solve ?(should_stop = fun () -> false) ?poll_every ?(assumptions = []) t :
    result =
  flush_pending t;
  let asm_lits =
    List.map (fun g -> Sat.lit_of_var g.g_var true) assumptions
  in
  (* Branching is restricted to the variables of the active problem; a
     session that never used guards keeps the original whole-instance
     behaviour. *)
  let decision_vars =
    if not t.used_guards then None
    else begin
      let seen = Hashtbl.create 256 in
      let acc = ref [] in
      let take v =
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          acc := v :: !acc
        end
      in
      List.iter take t.perm_vars;
      List.iter (fun g -> List.iter take g.g_vars) assumptions;
      Some !acc
    end
  in
  (* Atoms the theory must check for this query: in a guarded session,
     the atoms of the assumed groups plus those of unguarded formulas —
     NOT everything ever interned.  The scan (and the Bellman-Ford graph
     below) must stay proportional to the live problem: a long session
     interns atoms and order variables for every problem it ever saw, and
     scanning them per query turns the whole session quadratic. *)
  let active_ids =
    if not t.used_guards then None
    else begin
      let seen = Hashtbl.create 256 in
      let acc = ref [] in
      let take id =
        if t.atom_refs.(id) > 0 && not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          acc := id :: !acc
        end
      in
      List.iter take t.perm_atoms;
      List.iter (fun g -> List.iter take g.g_atoms) assumptions;
      Some (List.sort compare !acc)
    end
  in
  let rec loop budget =
    if budget = 0 then Unsat (* safety valve; never reached in practice *)
    else if should_stop () then raise Timeout
    else
      match
        Sat.solve ~should_stop ?poll_every ~assumptions:asm_lits
          ?decision_vars t.sat
      with
      | Sat.Unsat -> Unsat
      | Sat.Sat -> (
          (* collect asserted difference atoms (true => atom, false =>
             negation: ¬(x-y<=c) ≡ y-x <= -c-1).  Order variables are
             compressed to a dense range over just the variables the
             active atoms mention, so the Bellman-Ford pass is sized by
             the live problem, not by the session's lifetime total. *)
          let asserted = ref [] in
          let provenance = Hashtbl.create 16 in
          let vmap = Hashtbl.create 64 in
          let nv = ref 0 in
          let mapv v =
            match Hashtbl.find_opt vmap v with
            | Some i -> i
            | None ->
                let i = !nv in
                incr nv;
                Hashtbl.add vmap v i;
                i
          in
          let consider id =
            match t.atoms.(id) with
            | Adiff a ->
                let v = t.atom_sat_var.(id) in
                let truth = Sat.model_value t.sat v in
                let a =
                  { Diff_logic.ax = mapv a.ax; ay = mapv a.ay; ac = a.ac }
                in
                let a' =
                  if truth then a
                  else { Diff_logic.ax = a.ay; ay = a.ax; ac = -a.ac - 1 }
                in
                asserted := a' :: !asserted;
                Hashtbl.replace provenance a' (id, truth)
            | Abool _ -> ()
          in
          (match active_ids with
          | None -> for id = 0 to t.natoms - 1 do consider id done
          | Some ids -> List.iter consider ids);
          match Diff_logic.check ~nvars:(max 1 !nv) !asserted with
          | Diff_logic.Consistent vals ->
              let order_of v =
                match Hashtbl.find_opt vmap v with
                | Some i when i < Array.length vals -> vals.(i)
                | _ -> 0
              in
              let bool_of name =
                match Hashtbl.find_opt t.bool_names name with
                | Some id -> Sat.model_value t.sat t.atom_sat_var.(id)
                | None -> false
              in
              Sat_model { order_of; bool_of }
          | Diff_logic.Inconsistent cycle ->
              t.theory_conflicts <- t.theory_conflicts + 1;
              (* block this combination of atom truth values; a negative
                 cycle is inconsistent regardless of guards, so the lemma
                 is added unguarded and stays valid for the session *)
              let clause =
                List.filter_map
                  (fun a ->
                    match Hashtbl.find_opt provenance a with
                    | Some (id, truth) ->
                        let l = Sat.lit_of_var t.atom_sat_var.(id) true in
                        Some (if truth then Sat.neg l else l)
                    | None -> None)
                  cycle
              in
              if clause = [] then Unsat
              else if Sat.add_clause t.sat clause then loop (budget - 1)
              else Unsat)
  in
  loop 100_000

let theory_conflicts t = t.theory_conflicts
let sat_stats t = Sat.stats t.sat
let sat_ext_stats t = Sat.stats_ext t.sat
