(** DPLL(T): the CDCL SAT core combined with difference logic — the
    reproduction's stand-in for the subset of Z3 the paper uses.

    The loop is offline-lazy: SAT produces a complete boolean assignment;
    asserted difference atoms are checked by Bellman-Ford; a negative
    cycle becomes a blocking clause; repeat.  Sound and complete for the
    QF_IDL + pseudo-boolean fragment GCatch generates. *)

type t

type ovar
(** An integer order variable (the paper's O variables). *)

type model = {
  order_of : ovar -> int;     (** order value in the witness schedule *)
  bool_of : string -> bool;   (** value of a named boolean (P variables) *)
}

type result = Sat_model of model | Unsat

val create : unit -> t

val new_order_var : t -> string -> ovar
val new_bool : t -> string -> Expr.t
(** Named booleans are interned: the same name yields the same atom. *)

val le_c : t -> ovar -> ovar -> int -> Expr.t
(** [le_c t x y c] is the atom [x - y <= c]. *)

val lt : t -> ovar -> ovar -> Expr.t
val le : t -> ovar -> ovar -> Expr.t
val eq : t -> ovar -> ovar -> Expr.t

val add : t -> Expr.t -> unit
(** Assert a formula (deferred until [solve]). *)

exception Timeout
(** Raised by {!solve} when [should_stop] returns [true] (polled once
    per DPLL(T) iteration and every 256 SAT conflicts). *)

val solve : ?should_stop:(unit -> bool) -> t -> result

val theory_conflicts : t -> int
val sat_stats : t -> int * int * int
