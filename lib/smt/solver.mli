(** DPLL(T): the CDCL SAT core combined with difference logic — the
    reproduction's stand-in for the subset of Z3 the paper uses.

    The loop is offline-lazy: SAT produces a complete boolean assignment;
    asserted difference atoms are checked by Bellman-Ford; a negative
    cycle becomes a blocking clause; repeat.  Sound and complete for the
    QF_IDL + pseudo-boolean fragment GCatch generates.

    One instance can be reused incrementally across many related queries
    (the BMOC per-channel solver session): formulas asserted under a
    {!guard} are active only while that guard is assumed in {!solve},
    and {!retire_guard} permanently deactivates a group.  Atoms, theory
    lemmas, learnt clauses, and branching activity persist across
    queries. *)

type t

type ovar
(** An integer order variable (the paper's O variables). *)

type model = {
  order_of : ovar -> int;     (** order value in the witness schedule *)
  bool_of : string -> bool;   (** value of a named boolean (P variables) *)
}

type result = Sat_model of model | Unsat

val create : unit -> t

val new_order_var : t -> string -> ovar
val new_bool : t -> string -> Expr.t
(** Named booleans are interned: the same name yields the same atom. *)

val le_c : t -> ovar -> ovar -> int -> Expr.t
(** [le_c t x y c] is the atom [x - y <= c]. *)

val lt : t -> ovar -> ovar -> Expr.t
val le : t -> ovar -> ovar -> Expr.t
val eq : t -> ovar -> ovar -> Expr.t

type guard
(** A selector literal guarding a group of formulas.  Every clause the
    group produces is weakened by the selector's negation, so the group
    constrains a query only when its guard is passed in [solve
    ~assumptions].  Guards that are no longer assumed should be retired
    promptly: an unretired, unassumed guard leaves its atoms in scope for
    the theory check. *)

val new_guard : t -> guard

val add : ?guard:guard -> t -> Expr.t -> unit
(** Assert a formula (deferred until [solve]).  With [?guard] the
    formula is active only while the guard is assumed. *)

val retire_guard : t -> guard -> unit
(** Permanently deactivate a guard's formulas (level-0 negated-selector
    fact).  Idempotent.  Follow with {!simplify} to reclaim the group's
    clauses. *)

val simplify : t -> unit
(** Drop clauses satisfied at level 0 — i.e. the clauses of retired
    groups — from the solver's databases. *)

exception Timeout
(** Raised by {!solve} when [should_stop] returns [true] (polled once
    per DPLL(T) iteration and every [poll_every] SAT conflicts). *)

val solve :
  ?should_stop:(unit -> bool) ->
  ?poll_every:int ->
  ?assumptions:guard list ->
  t ->
  result
(** Solve under the given active guards.  [Unsat] under assumptions does
    not poison the instance: later calls with different assumptions see
    the same shared state (atoms, lemmas, learnt clauses).  [poll_every]
    sets the SAT conflict-polling interval (default 256) — see
    {!Sat.solve}. *)

val theory_conflicts : t -> int
val sat_stats : t -> int * int * int
(** (conflicts, decisions, propagations) accumulated over the session. *)

val sat_ext_stats : t -> int * int * int
(** (learnt clauses created, Luby restarts, learnt-DB reductions)
    accumulated over the session. *)
