(* A CDCL SAT solver.

   Standard architecture: two-watched-literal propagation, first-UIP
   conflict analysis with clause learning, non-chronological backjumping,
   and VSIDS-style variable activities.  The solver supports incremental
   clause addition between [solve] calls, which the DPLL(T) driver uses to
   add theory-conflict (blocking) clauses.

   Incremental extensions (MiniSat-style):
   - [solve ~assumptions] treats a list of literals as successive pseudo
     decisions occupying the first decision levels.  A conflict that
     forces the negation of an assumption returns [Unsat] *without*
     poisoning the solver ([ok] stays true), so the instance can be
     re-solved under different assumptions.  Learnt clauses are derived by
     resolution from the clause database only — never from the assumption
     decisions themselves — so they remain valid across solves.
   - [solve ~decision_vars] restricts branching to a caller-supplied
     variable set.  The DPLL(T) driver passes the variables of the
     currently active (selector-guarded) clause groups, which keeps each
     solve proportional to the active problem rather than to every
     variable ever allocated in the shared instance.
   - learnt clauses live in their own database with clause activities;
     [reduce_db] drops the cold half (sparing reasons and binary clauses)
     under a growing budget, and Luby-sequence restarts keep the retained
     VSIDS state from wedging the search.
   - clause deletion is lazy: a [deleted] clause is dropped from a watch
     list the next time propagation touches it, and [simplify] removes
     clauses already satisfied at level 0 (how retired selector groups
     are reclaimed).

   Literal encoding: variable [v] (1-based) has positive literal [2*v] and
   negative literal [2*v+1].  [neg l = l lxor 1]. *)

type lbool = LTrue | LFalse | LUndef

type clause = {
  lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
}

type t = {
  mutable nvars : int;
  mutable clauses : clause list;       (* problem + theory-lemma clauses *)
  mutable learnts : clause list;       (* CDCL-learnt clauses *)
  mutable n_clauses : int;
  mutable n_learnts : int;
  mutable watches : clause list array; (* indexed by literal *)
  mutable assign : lbool array;        (* indexed by var *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable trail : int array;           (* literals, in assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int list;        (* decision-level boundaries *)
  mutable qhead : int;
  mutable activity : float array;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable max_learnts : int;
  mutable ok : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learnt_total : int;          (* learnt clauses ever created *)
  mutable restarts : int;
  mutable db_reductions : int;
}

let lit_of_var v sign = (2 * v) + if sign then 0 else 1
let var_of_lit l = l / 2
let is_pos l = l land 1 = 0
let neg l = l lxor 1

let create () =
  {
    nvars = 0;
    clauses = [];
    learnts = [];
    n_clauses = 0;
    n_learnts = 0;
    watches = Array.make 16 [];
    assign = Array.make 8 LUndef;
    level = Array.make 8 0;
    reason = Array.make 8 None;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = [];
    qhead = 0;
    activity = Array.make 8 0.0;
    var_inc = 1.0;
    cla_inc = 1.0;
    max_learnts = 0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    learnt_total = 0;
    restarts = 0;
    db_reductions = 0;
  }

let ensure_capacity s n =
  let cap = Array.length s.assign in
  if n >= cap then begin
    let ncap = max (n + 1) (2 * cap) in
    let grow a d = Array.append a (Array.make (ncap - Array.length a) d) in
    s.assign <- grow s.assign LUndef;
    s.level <- grow s.level 0;
    s.reason <- grow s.reason None;
    s.activity <- grow s.activity 0.0;
    s.trail <- grow s.trail 0
  end;
  let wcap = Array.length s.watches in
  if (2 * n) + 1 >= wcap then begin
    let nwcap = max ((2 * n) + 2) (2 * wcap) in
    s.watches <- Array.append s.watches (Array.make (nwcap - wcap) [])
  end

let new_var s =
  s.nvars <- s.nvars + 1;
  ensure_capacity s s.nvars;
  s.nvars

let value_lit s l =
  match s.assign.(var_of_lit l) with
  | LUndef -> LUndef
  | LTrue -> if is_pos l then LTrue else LFalse
  | LFalse -> if is_pos l then LFalse else LTrue

let decision_level s = List.length s.trail_lim

let enqueue s l reason =
  let v = var_of_lit l in
  s.assign.(v) <- (if is_pos l then LTrue else LFalse);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let bump_clause s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    List.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay_activities s =
  s.var_inc <- s.var_inc /. 0.95;
  s.cla_inc <- s.cla_inc /. 0.999

(* Attach a clause to the watch lists of its first two literals. *)
let watch_clause s c =
  if Array.length c.lits >= 2 then begin
    s.watches.(neg c.lits.(0)) <- c :: s.watches.(neg c.lits.(0));
    s.watches.(neg c.lits.(1)) <- c :: s.watches.(neg c.lits.(1))
  end

exception Conflict of clause

(* Boolean constraint propagation; raises [Conflict] on failure.  Deleted
   clauses are dropped from the watch list as they are encountered. *)
let propagate s =
  while s.qhead < s.trail_size do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let watching = s.watches.(l) in
    s.watches.(l) <- [];
    let rec process = function
      | [] -> ()
      | c :: rest when c.deleted -> process rest
      | c :: rest -> (
          (* make sure the false literal is at position 1 *)
          if c.lits.(0) = neg l then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- neg l
          end;
          if value_lit s c.lits.(0) = LTrue then begin
            (* clause already satisfied; keep watching *)
            s.watches.(l) <- c :: s.watches.(l);
            process rest
          end
          else begin
            (* look for a new literal to watch *)
            let n = Array.length c.lits in
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < n do
              if value_lit s c.lits.(!k) <> LFalse then begin
                let tmp = c.lits.(1) in
                c.lits.(1) <- c.lits.(!k);
                c.lits.(!k) <- tmp;
                s.watches.(neg c.lits.(1)) <- c :: s.watches.(neg c.lits.(1));
                found := true
              end;
              incr k
            done;
            if !found then process rest
            else begin
              (* unit or conflicting *)
              s.watches.(l) <- c :: s.watches.(l);
              match value_lit s c.lits.(0) with
              | LFalse ->
                  (* restore remaining watches before failing *)
                  List.iter (fun c' -> s.watches.(l) <- c' :: s.watches.(l)) rest;
                  raise (Conflict c)
              | LUndef ->
                  enqueue s c.lits.(0) (Some c);
                  process rest
              | LTrue -> process rest
            end
          end)
    in
    process watching
  done

(* First-UIP conflict analysis.  Returns (learnt clause lits, backjump
   level); learnt.(0) is the asserting literal.

   [p] is the trail literal currently being resolved on (true under the
   current assignment); its reason clause contains it positively and we
   skip it while expanding. *)
let analyze s (confl : clause) =
  let seen = Array.make (s.nvars + 1) false in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref None in
  let confl = ref (Some confl) in
  let idx = ref (s.trail_size - 1) in
  let btlevel = ref 0 in
  let asserting = ref 0 in
  let continue_loop = ref true in
  while !continue_loop do
    (match !confl with
    | None -> ()
    | Some c ->
        if c.learnt then bump_clause s c;
        Array.iter
          (fun q ->
            let v = var_of_lit q in
            let skip = match !p with Some pl -> q = pl | None -> false in
            if (not skip) && (not seen.(v)) && s.level.(v) > 0 then begin
              seen.(v) <- true;
              bump_var s v;
              if s.level.(v) >= decision_level s then incr counter
              else begin
                learnt := q :: !learnt;
                if s.level.(v) > !btlevel then btlevel := s.level.(v)
              end
            end)
          c.lits);
    (* walk back to the most recently assigned marked literal *)
    while not seen.(var_of_lit s.trail.(!idx)) do
      decr idx
    done;
    let l = s.trail.(!idx) in
    decr idx;
    decr counter;
    seen.(var_of_lit l) <- false;
    p := Some l;
    if !counter <= 0 then begin
      asserting := neg l;
      continue_loop := false
    end
    else confl := s.reason.(var_of_lit l)
  done;
  (Array.of_list (!asserting :: !learnt), !btlevel)

(* Undo all assignments above decision level [lvl].  [trail_lim] is a
   stack whose head is the trail index where the most recent decision
   level begins. *)
let cancel_until s lvl =
  while decision_level s > lvl do
    match s.trail_lim with
    | [] -> assert false
    | b :: rest ->
        for i = s.trail_size - 1 downto b do
          let v = var_of_lit s.trail.(i) in
          s.assign.(v) <- LUndef;
          s.reason.(v) <- None
        done;
        s.trail_size <- b;
        s.trail_lim <- rest
  done;
  if s.qhead > s.trail_size then s.qhead <- s.trail_size

(* Add a clause; returns false if the solver becomes trivially unsat.
   May be called between solve invocations (at level 0). *)
let add_clause s (lits : int list) =
  if not s.ok then false
  else begin
    cancel_until s 0;
    (* simplify: drop false lits, detect satisfied/duplicate *)
    let tbl = Hashtbl.create 8 in
    let sat = ref false in
    let lits =
      List.filter
        (fun l ->
          match value_lit s l with
          | LTrue ->
              sat := true;
              false
          | LFalse -> false
          | LUndef ->
              if Hashtbl.mem tbl l then false
              else if Hashtbl.mem tbl (neg l) then begin
                sat := true;
                false
              end
              else begin
                Hashtbl.add tbl l ();
                true
              end)
        lits
    in
    if !sat then true
    else
      match lits with
      | [] ->
          s.ok <- false;
          false
      | [ l ] ->
          enqueue s l None;
          (try
             propagate s;
             true
           with Conflict _ ->
             s.ok <- false;
             false)
      | _ ->
          let c =
            { lits = Array.of_list lits; activity = 0.0; learnt = false;
              deleted = false }
          in
          s.clauses <- c :: s.clauses;
          s.n_clauses <- s.n_clauses + 1;
          watch_clause s c;
          true
  end

(* A clause is locked while it is the reason for its asserting literal's
   assignment; locked clauses must survive database reduction. *)
let locked s c =
  match s.reason.(var_of_lit c.lits.(0)) with
  | Some c' -> c' == c
  | None -> false

(* Drop the cold half of the learnt-clause database, sparing locked and
   binary clauses.  Deletion is lazy: watch lists shed deleted clauses as
   propagation touches them. *)
let reduce_db s =
  let arr = Array.of_list s.learnts in
  Array.sort (fun (a : clause) (b : clause) -> compare a.activity b.activity) arr;
  let target = Array.length arr / 2 in
  let dropped = ref 0 in
  Array.iteri
    (fun i c ->
      if
        i < target && (not (locked s c)) && Array.length c.lits > 2
        && not c.deleted
      then begin
        c.deleted <- true;
        incr dropped
      end)
    arr;
  if !dropped > 0 then begin
    s.learnts <- List.filter (fun c -> not c.deleted) s.learnts;
    s.n_learnts <- s.n_learnts - !dropped
  end;
  s.db_reductions <- s.db_reductions + 1

(* Remove clauses satisfied at level 0 from both databases.  Called by
   the DPLL(T) driver after retiring a selector guard: the guard's unit
   negation satisfies every clause of the retired group (including its
   learnt descendants, which carry the selector literal), so the whole
   group is reclaimed here. *)
let simplify s =
  if s.ok then begin
    cancel_until s 0;
    s.qhead <- 0;
    (try propagate s
     with Conflict _ -> s.ok <- false);
    if s.ok then begin
      let satisfied c =
        Array.exists (fun l -> value_lit s l = LTrue) c.lits
      in
      let sweep learnt cs =
        let kept = ref [] and n = ref 0 in
        List.iter
          (fun c ->
            if c.deleted then ()
            else if satisfied c && not (locked s c) then c.deleted <- true
            else begin
              kept := c :: !kept;
              incr n
            end)
          cs;
        ignore learnt;
        (List.rev !kept, !n)
      in
      let cs, nc = sweep false s.clauses in
      s.clauses <- cs;
      s.n_clauses <- nc;
      let ls, nl = sweep true s.learnts in
      s.learnts <- ls;
      s.n_learnts <- nl
    end
  end

let pick_branch_var s =
  let best = ref 0 in
  let best_act = ref neg_infinity in
  for v = 1 to s.nvars do
    if s.assign.(v) = LUndef && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

(* Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ... *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

type result = Sat | Unsat

exception Timeout

let default_should_stop () = false

let restart_first = 100

let solve ?(should_stop = default_should_stop) ?(poll_every = 256)
    ?(assumptions = []) ?decision_vars s : result =
  let poll_every = max 1 poll_every in
  (* countdown rather than [conflicts mod poll_every]: one decrement and
     compare per conflict, no division in the hottest loop *)
  let until_poll = ref poll_every in
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    s.qhead <- 0;
    let assumptions = Array.of_list assumptions in
    let n_assumps = Array.length assumptions in
    let dvars = Option.map Array.of_list decision_vars in
    let pick () =
      match dvars with
      | None -> pick_branch_var s
      | Some vs ->
          let best = ref 0 in
          let best_act = ref neg_infinity in
          Array.iter
            (fun v ->
              if s.assign.(v) = LUndef && s.activity.(v) > !best_act then begin
                best := v;
                best_act := s.activity.(v)
              end)
            vs;
          !best
    in
    if s.max_learnts = 0 then s.max_learnts <- max 256 (s.n_clauses / 3);
    let conflicts_since_restart = ref 0 in
    let restart_k = ref 0 in
    let restart_budget = ref (restart_first * luby !restart_k) in
    (* re-propagate the level-0 trail *)
    let rec loop () =
      match
        try
          propagate s;
          None
        with Conflict c -> Some c
      with
      | Some confl ->
          s.conflicts <- s.conflicts + 1;
          incr conflicts_since_restart;
          (* poll the caller's deadline on conflicts only: conflicts are
             where runaway instances spend their time, and checking every
             [poll_every]-th (default 256) keeps the cost invisible on
             easy instances while bounding how long a yield-bearing
             [should_stop] goes unserved *)
          decr until_poll;
          if !until_poll <= 0 then begin
            until_poll := poll_every;
            if should_stop () then raise Timeout
          end;
          if decision_level s = 0 then begin
            s.ok <- false;
            Unsat
          end
          else begin
            let learnt, btlevel = analyze s confl in
            cancel_until s btlevel;
            (match Array.length learnt with
            | 1 -> enqueue s learnt.(0) None
            | _ ->
                let c =
                  { lits = learnt; activity = 0.0; learnt = true;
                    deleted = false }
                in
                s.learnts <- c :: s.learnts;
                s.n_learnts <- s.n_learnts + 1;
                s.learnt_total <- s.learnt_total + 1;
                bump_clause s c;
                watch_clause s c;
                enqueue s learnt.(0) (Some c));
            decay_activities s;
            if s.n_learnts > s.max_learnts then begin
              reduce_db s;
              s.max_learnts <- s.max_learnts * 11 / 10
            end;
            if !conflicts_since_restart >= !restart_budget then begin
              (* Luby restart: back to level 0; the assumption prefix is
                 re-decided by the pick loop below *)
              s.restarts <- s.restarts + 1;
              incr restart_k;
              conflicts_since_restart := 0;
              restart_budget := restart_first * luby !restart_k;
              cancel_until s 0
            end;
            loop ()
          end
      | None ->
          let dl = decision_level s in
          if dl < n_assumps then begin
            (* install the next assumption as a pseudo decision *)
            let p = assumptions.(dl) in
            match value_lit s p with
            | LTrue ->
                (* already implied: open an empty level so assumption
                   indices keep matching decision levels *)
                s.trail_lim <- s.trail_size :: s.trail_lim;
                loop ()
            | LFalse ->
                (* the instance forces the negation of an assumption:
                   unsat *under these assumptions* only — the solver
                   stays usable ([ok] untouched) *)
                Unsat
            | LUndef ->
                s.decisions <- s.decisions + 1;
                s.trail_lim <- s.trail_size :: s.trail_lim;
                enqueue s p None;
                loop ()
          end
          else begin
            let v = pick () in
            if v = 0 then Sat
            else begin
              s.decisions <- s.decisions + 1;
              s.trail_lim <- s.trail_size :: s.trail_lim;
              (* phase saving would go here; default to false first *)
              enqueue s (lit_of_var v false) None;
              loop ()
            end
          end
    in
    loop ()
  end

let model_value s v =
  match s.assign.(v) with LTrue -> true | LFalse -> false | LUndef -> false

let stats s = (s.conflicts, s.decisions, s.propagations)

(* Incremental-machinery statistics: learnt clauses ever created, Luby
   restarts performed, and learnt-database reductions. *)
let stats_ext s = (s.learnt_total, s.restarts, s.db_reductions)

let n_clauses s = s.n_clauses
let n_learnts s = s.n_learnts
