(** A CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning, non-chronological backjumping, VSIDS-style activities.
    Supports incremental clause addition between [solve] calls, which the
    DPLL(T) driver uses for theory-conflict (blocking) clauses.

    Literal encoding: variable [v] (1-based) has positive literal [2*v]
    and negative literal [2*v+1]. *)

type t

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its 1-based index. *)

val lit_of_var : int -> bool -> int
(** [lit_of_var v sign] is the literal for [v], positive when [sign]. *)

val var_of_lit : int -> int
val is_pos : int -> bool
val neg : int -> int

val add_clause : t -> int list -> bool
(** Add a clause of literals; returns [false] if the formula became
    trivially unsatisfiable.  May be called between [solve] calls. *)

exception Timeout
(** Raised by {!solve} when [should_stop] returns [true]. *)

val solve : ?should_stop:(unit -> bool) -> t -> result
(** [should_stop] is polled every 256 conflicts; raising {!Timeout} from
    [solve] leaves the solver unusable for further queries. *)

val model_value : t -> int -> bool
(** Value of a variable in the last satisfying assignment. *)

val stats : t -> int * int * int
(** (conflicts, decisions, propagations). *)
