(** A CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning, non-chronological backjumping, VSIDS-style activities,
    assumption literals, learnt-clause DB reduction and Luby restarts.
    Supports incremental clause addition between [solve] calls, which the
    DPLL(T) driver uses for theory-conflict (blocking) clauses.

    Literal encoding: variable [v] (1-based) has positive literal [2*v]
    and negative literal [2*v+1]. *)

type t

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its 1-based index. *)

val lit_of_var : int -> bool -> int
(** [lit_of_var v sign] is the literal for [v], positive when [sign]. *)

val var_of_lit : int -> int
val is_pos : int -> bool
val neg : int -> int

val add_clause : t -> int list -> bool
(** Add a clause of literals; returns [false] if the formula became
    trivially unsatisfiable.  May be called between [solve] calls. *)

exception Timeout
(** Raised by {!solve} when [should_stop] returns [true]. *)

val solve :
  ?should_stop:(unit -> bool) ->
  ?poll_every:int ->
  ?assumptions:int list ->
  ?decision_vars:int list ->
  t ->
  result
(** [should_stop] is polled every [poll_every] conflicts (default 256,
    clamped to at least 1); raising {!Timeout} from [solve] leaves the
    solver unusable for further queries.  Callers whose [should_stop]
    also yields to a task scheduler can lower [poll_every] to tighten
    the yield granularity.

    [assumptions] are literals decided (in order) before any free
    branching.  An [Unsat] answer under assumptions does not poison the
    instance: dropping or changing the assumptions allows further
    queries on the same clause database.

    [decision_vars], when given, restricts free branching to that set of
    variables; the caller asserts that the clause database is
    effectively satisfied once those variables (plus propagation) are
    assigned — used by incremental sessions where clauses of inactive
    (unassumed) groups are satisfied by their selector polarity. *)

val simplify : t -> unit
(** Backtrack to level 0, propagate top-level facts, and permanently
    delete clauses already satisfied at level 0 (e.g. the clause group
    of a retired selector). *)

val model_value : t -> int -> bool
(** Value of a variable in the last satisfying assignment. *)

val stats : t -> int * int * int
(** (conflicts, decisions, propagations). *)

val stats_ext : t -> int * int * int
(** (learnt clauses created, restarts performed, learnt-DB reductions). *)

val n_clauses : t -> int
val n_learnts : t -> int
