(* Scoring detector reports against corpus ground truth.

   Unlike the paper — whose authors triaged 200 reports by hand — the
   synthetic corpus carries labels, so true/false positives are decided
   mechanically: a BMOC report counts as a true positive when its blocked
   operation falls in a function seeded with a bug; reports landing in
   fp-bait functions are expected false positives (the corpus plants the
   paper's documented FP sources); anything else is an unexpected false
   positive, which the test suite treats as a regression. *)

module P = Gocorpus.Patterns
module R = Gcatch.Report

(* A lifted goroutine body Exec$fn1 belongs to source function Exec. *)
let base_func name =
  match String.index_opt name '$' with
  | Some i -> String.sub name 0 i
  | None -> name

type bmoc_class = TP of bool (* with_mutex *) | FP_expected | FP_unexpected

let classify_bmoc (truth : P.truth list) (b : R.bmoc_bug) : bmoc_class =
  let funcs =
    List.sort_uniq String.compare
      (List.map (fun (o : R.blocked_op) -> base_func o.bo_func) b.blocked)
  in
  let in_funcs f = List.mem f funcs in
  (* a single-sending bug's blocked op is in the child, whose base name is
     the scope function itself; missing-interaction helpers are separate
     functions, so also try the scope functions *)
  let scope_bases = List.sort_uniq String.compare (List.map base_func b.scope_funcs) in
  let hit =
    List.find_map
      (function
        | P.T_bmoc { fn; with_mutex; _ }
          when in_funcs fn || List.mem fn scope_bases ->
            Some (TP with_mutex)
        | _ -> None)
      truth
  in
  match hit with
  | Some c -> c
  | None ->
      if
        List.exists
          (function
            | P.T_fp_bait fn -> in_funcs fn || List.mem fn scope_bases
            | _ -> false)
          truth
      then FP_expected
      else FP_unexpected

let classify_trad (truth : P.truth list) (t : R.trad_bug) : bmoc_class =
  let f = base_func t.tfunc in
  if
    List.exists
      (function P.T_trad (k, fn) -> k = t.tkind && fn = f | _ -> false)
      truth
  then TP false
  else FP_unexpected

type app_score = {
  name : string;
  loc : int;
  elapsed_s : float;
  (* BMOC, channels only *)
  bmoc_c_tp : int;
  bmoc_c_fp : int;
  (* BMOC with mutexes *)
  bmoc_m_tp : int;
  bmoc_m_fp : int;
  (* per traditional checker: tp, fp *)
  trad : (R.trad_kind * (int * int)) list;
  (* recall bookkeeping *)
  seeded_bmoc : int;
  found_bmoc : int;
  (* GFix *)
  fixed_s1 : int;
  fixed_s2 : int;
  fixed_s3 : int;
  unfixed : int;
  fix_details : (R.bmoc_bug * Gcatch.Gfix.outcome) list;
  analysis : Gcatch.Driver.analysis;
}

let trad_kinds =
  [
    R.Forget_unlock;
    R.Double_lock;
    R.Conflict_lock;
    R.Struct_field_race;
    R.Fatal_in_child;
  ]

(* [engine] lets batch drivers (bench, triage) share one artifact cache
   across apps and configurations; without it the Driver's process-wide
   engine is used, which still compiles each app only once.  [pool]
   overrides the engine's own domain pool for the detector fan-out
   (e.g. bench measuring one app at several job counts through a single
   shared artifact cache). *)
let score_app ?engine ?pool ?(cfg = Gcatch.Bmoc.default_config)
    (app : Gocorpus.Apps.app) : app_score =
  let module E = Goengine.Engine in
  let a =
    match (engine, pool) with
    | Some e, None ->
        Gcatch.Driver.analyse_with e ~cfg ~name:app.spec.name app.sources
    | Some e, Some pool ->
        let art = E.artifacts e ~name:app.spec.name app.sources in
        Gcatch.Driver.analyse_ir ~cfg ~pool
          (Lazy.force art.E.a_typed) (Lazy.force art.E.a_ir)
    | None, Some pool ->
        let src, ir =
          Gcatch.Driver.compile_sources ~name:app.spec.name app.sources
        in
        Gcatch.Driver.analyse_ir ~cfg ~pool src ir
    | None, None -> Gcatch.Driver.analyse ~cfg ~name:app.spec.name app.sources
  in
  let bmoc_classes = List.map (fun b -> (b, classify_bmoc app.truth b)) a.bmoc in
  let count p = List.length (List.filter p bmoc_classes) in
  let bmoc_c_tp = count (fun (b, c) -> b.R.kind = R.Chan_only && c = TP false) in
  let bmoc_m_tp =
    count (fun (b, c) ->
        b.R.kind = R.Chan_and_mutex && (c = TP true || c = TP false))
  in
  let bmoc_c_fp =
    count (fun (b, c) ->
        b.R.kind = R.Chan_only && (c = FP_expected || c = FP_unexpected))
  in
  let bmoc_m_fp =
    count (fun (b, c) ->
        b.R.kind = R.Chan_and_mutex && (c = FP_expected || c = FP_unexpected))
  in
  let trad =
    List.map
      (fun k ->
        let of_kind = List.filter (fun (t : R.trad_bug) -> t.tkind = k) a.trad in
        let tp =
          List.length
            (List.filter (fun t -> classify_trad app.truth t = TP false) of_kind)
        in
        (k, (tp, List.length of_kind - tp)))
      trad_kinds
  in
  (* recall: which seeded BMOC bugs were found *)
  let seeded =
    List.filter_map
      (function P.T_bmoc { fn; _ } -> Some fn | _ -> None)
      app.truth
  in
  let found_bmoc =
    List.length
      (List.filter
         (fun seeded_fn ->
           List.exists
             (fun ((bug : R.bmoc_bug), c) ->
               (c = TP false || c = TP true)
               &&
               let funcs =
                 List.map (fun (o : R.blocked_op) -> base_func o.bo_func) bug.blocked
                 @ List.map base_func bug.scope_funcs
               in
               List.mem seeded_fn funcs)
             bmoc_classes)
         seeded)
  in
  (* GFix over channel-only true positives, like the paper (§5.3) *)
  let fix_targets =
    List.filter_map
      (fun (b, c) ->
        if b.R.kind = R.Chan_only && c <> FP_unexpected && c <> FP_expected then
          Some b
        else None)
      bmoc_classes
  in
  let fixes = Gcatch.Gfix.fix_all a.source fix_targets in
  let strat s =
    List.length
      (List.filter
         (fun (_, o) ->
           match o with Gcatch.Gfix.Fixed f -> f.strategy = s | _ -> false)
         fixes)
  in
  let fixed_s1 = strat Gcatch.Gfix.S1_increase_buffer in
  let fixed_s2 = strat Gcatch.Gfix.S2_defer_op in
  let fixed_s3 = strat Gcatch.Gfix.S3_add_stop in
  let unfixed =
    List.length
      (List.filter
         (fun (_, o) -> match o with Gcatch.Gfix.Not_fixed _ -> true | _ -> false)
         fixes)
  in
  {
    name = app.spec.name;
    loc = app.loc;
    elapsed_s = a.elapsed_s;
    bmoc_c_tp;
    bmoc_c_fp;
    bmoc_m_tp;
    bmoc_m_fp;
    trad;
    seeded_bmoc = List.length seeded;
    found_bmoc;
    fixed_s1;
    fixed_s2;
    fixed_s3;
    unfixed;
    fix_details = fixes;
    analysis = a;
  }
