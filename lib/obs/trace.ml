(* Span tracer with per-domain buffers and a Chrome trace-event exporter.

   [with_span ~name f] brackets [f] with monotonic timestamps.  Tracing
   is off by default: the disabled path is a single atomic load and a
   branch, so instrumented hot loops cost nothing measurable when no one
   asked for a trace.

   Each domain owns its span state through [Domain.DLS]: a stack of open
   spans (touched only by the owning domain, so plain mutable) and a
   buffer of closed spans kept as an atomic list so [drain] can swap it
   out from another domain without a lock on the recording path.  States
   self-register in a global list on first use; pool worker domains live
   for the whole process, so registration is once per domain.

   [write_chrome] emits the Chrome trace-event JSON format ("X" complete
   events plus "M" thread_name metadata, one track per domain) loadable
   in Perfetto or chrome://tracing. *)

type span = {
  sp_name : string;
  sp_args : (string * string) list;
  sp_ts_us : float; (* monotonic, microseconds *)
  sp_dur_us : float;
  sp_tid : int; (* Domain.self of the recording domain *)
  sp_parent : string option; (* enclosing span on the same domain *)
  sp_depth : int;
}

let enabled_flag = Atomic.make false

(* When false, spans still maintain the per-domain open-span stacks (so
   the sampling profiler can read spines) but closed spans are not
   buffered — a sampler-only run must not accumulate an unbounded
   closed-span list it never drains. *)
let record_closed = Atomic.make true
let enabled () = Atomic.get enabled_flag

let enable () =
  Atomic.set record_closed true;
  Atomic.set enabled_flag true

(* Spine-only mode for the sampler: stacks live, closed-span buffering
   off.  A later [enable] (e.g. --trace-out together with --sample-hz)
   upgrades to full recording. *)
let enable_spines () =
  if not (Atomic.get enabled_flag) then begin
    Atomic.set record_closed false;
    Atomic.set enabled_flag true
  end

let disable () =
  Atomic.set enabled_flag false;
  Atomic.set record_closed true

type open_span = {
  os_name : string;
  os_t0 : float;
  mutable os_args : (string * string) list;
}

type dstate = {
  ds_tid : int;
  ds_spans : span list Atomic.t;
  mutable ds_stack : open_span list; (* owning domain only *)
}

let registry_mu = Mutex.create ()
let states : dstate list ref = ref []

let key : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          ds_tid = (Domain.self () :> int);
          ds_spans = Atomic.make [];
          ds_stack = [];
        }
      in
      Mutex.lock registry_mu;
      states := st :: !states;
      Mutex.unlock registry_mu;
      st)

let rec push_span st sp =
  let old = Atomic.get st.ds_spans in
  if not (Atomic.compare_and_set st.ds_spans old (sp :: old)) then
    push_span st sp

(* Span handoff (the effects scheduler).  A scheduled task owns a
   private open-span stack; the scheduler swaps it into the executing
   domain's [ds_stack] around every execution slice and carries it away
   again at suspension, so a span opened before a steal closes correctly
   on whichever domain resumes the task.  The spine is an immutable
   list, so a forked child may share its parent's tail: each task only
   pushes and pops its own head. *)
type stack = open_span list

let empty_stack : stack = []
let current_stack () : stack = (Domain.DLS.get key).ds_stack

let swap_stack (s : stack) : stack =
  let st = Domain.DLS.get key in
  let prev = st.ds_stack in
  st.ds_stack <- s;
  prev

(* Snapshot of every domain's open-span spine, outermost frame first —
   the sampling profiler's read path.  [ds_stack] is a plain mutable
   field owned by its domain; reading it from the sampler domain is a
   benign race: the field always holds a valid immutable list (a stale
   head at worst misattributes one sample, which sampling tolerates by
   construction).  Only [os_name] is read — [os_args] mutates under the
   owner and stays off-limits here. *)
let sample_stacks () : (int * string list) list =
  Mutex.lock registry_mu;
  let sts = !states in
  Mutex.unlock registry_mu;
  List.filter_map
    (fun st ->
      match st.ds_stack with
      | [] -> None
      | stack -> Some (st.ds_tid, List.rev_map (fun os -> os.os_name) stack))
    sts

let open_span_count () =
  List.fold_left
    (fun acc (_, names) -> acc + List.length names)
    0 (sample_stacks ())

let with_span ~name ?(args = []) f =
  if not (Atomic.get enabled_flag) then f ()
  else if not (Atomic.get record_closed) then begin
    (* spine-only (sampler) mode: maintain the open-span stack for
       [sample_stacks] and nothing else — no clock reads, no depth
       walk, no closed-span assembly.  This branch runs on every span
       of a profiled run, so it stays a push and a pop. *)
    let st = Domain.DLS.get key in
    st.ds_stack <-
      { os_name = name; os_t0 = 0.0; os_args = args } :: st.ds_stack;
    let pop () =
      let st = Domain.DLS.get key in
      match st.ds_stack with
      | _ :: rest -> st.ds_stack <- rest
      | [] -> ()
    in
    match f () with
    | v ->
        pop ();
        v
    | exception e ->
        pop ();
        raise e
  end
  else begin
    let st = Domain.DLS.get key in
    let os = { os_name = name; os_t0 = Mclock.now_us (); os_args = args } in
    let depth = List.length st.ds_stack in
    st.ds_stack <- os :: st.ds_stack;
    Fun.protect
      ~finally:(fun () ->
        (* re-fetch the domain state: the span may close on a different
           domain than it opened on when the enclosing task migrated
           across a steal — the task's swapped-in stack still carries
           [os], but [st] would be the *opening* domain's state *)
        let st = Domain.DLS.get key in
        let dur = Mclock.now_us () -. os.os_t0 in
        (match st.ds_stack with
        | _ :: rest -> st.ds_stack <- rest
        | [] -> ());
        let parent =
          match st.ds_stack with p :: _ -> Some p.os_name | [] -> None
        in
        if Atomic.get record_closed then
          push_span st
            {
              sp_name = name;
              sp_args = os.os_args;
              sp_ts_us = os.os_t0;
              sp_dur_us = dur;
              sp_tid = st.ds_tid;
              sp_parent = parent;
              sp_depth = depth;
            })
      f
  end

(* Attach key=value args to the innermost open span on this domain; used
   to record facts only known at span end (e.g. a channel's solver-call
   count). *)
let set_args kv =
  if Atomic.get enabled_flag then begin
    let st = Domain.DLS.get key in
    match st.ds_stack with
    | os :: _ -> os.os_args <- os.os_args @ kv
    | [] -> ()
  end

(* Collect and clear every domain's closed spans — each span is returned
   exactly once across all drains.  Sorted by start time for a stable,
   readable order. *)
let drain () =
  Mutex.lock registry_mu;
  let sts = !states in
  Mutex.unlock registry_mu;
  let all =
    List.concat_map (fun st -> Atomic.exchange st.ds_spans []) sts
  in
  List.sort
    (fun a b ->
      compare (a.sp_ts_us, a.sp_tid, a.sp_name) (b.sp_ts_us, b.sp_tid, b.sp_name))
    all

(* Chrome trace-event JSON ----------------------------------------------- *)

let json_escape = Metrics.json_escape

let args_json args =
  let b = Buffer.create 32 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_char b '}';
  Buffer.contents b

let to_chrome_json spans =
  let t0 =
    List.fold_left
      (fun acc sp -> Float.min acc sp.sp_ts_us)
      infinity spans
  in
  let t0 = if t0 = infinity then 0.0 else t0 in
  let tids =
    List.sort_uniq compare (List.map (fun sp -> sp.sp_tid) spans)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b s
  in
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
           tid tid))
    tids;
  List.iter
    (fun sp ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"gcatch\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":%s}"
           (json_escape sp.sp_name)
           (sp.sp_ts_us -. t0)
           sp.sp_dur_us sp.sp_tid (args_json sp.sp_args)))
    spans;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome ~path spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json spans))
