(* End-of-run profile report (--profile).

   The BMOC detector records one [channel_sample] per analysed root via
   [note_channel]; the report combines those with per-pass wall times
   (from the engine's pass runs) and the registry's stage counters and
   histograms into a plain-text summary: per-pass and per-stage times,
   the top-N slowest channels with their solver statistics, and
   p50/p95/max for every histogram. *)

type channel_sample = {
  cs_channel : string;
  cs_elapsed_ms : float;
  cs_solver_calls : int;
  cs_sat_conflicts : int;
  cs_sat_decisions : int;
  cs_sat_propagations : int;
  cs_path_events : int;
  cs_timed_out : bool;
}

let mu = Mutex.create ()
let samples : channel_sample list ref = ref []

let note_channel s =
  Mutex.lock mu;
  samples := s :: !samples;
  Mutex.unlock mu;
  (* channel lifecycle in the run journal: one event per analysed root.
     The solver statistics are schedule-independent; elapsed time rides
     in the volatile dur_ms slot that determinism diffs strip. *)
  if Journal.enabled () then
    Journal.emit ~event:"channel.done" ~dur_ms:s.cs_elapsed_ms
      [
        ("channel", Journal.S s.cs_channel);
        ("solver_calls", Journal.I s.cs_solver_calls);
        ("path_events", Journal.I s.cs_path_events);
        ("timed_out", Journal.B s.cs_timed_out);
      ]

let channels () =
  Mutex.lock mu;
  let r = List.rev !samples in
  Mutex.unlock mu;
  r

let reset () =
  Mutex.lock mu;
  samples := [];
  Mutex.unlock mu

let report ?(top = 10) (reg : Metrics.t) (pass_times : (string * float) list) :
    string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "== gcatch profile ==";
  if pass_times <> [] then begin
    line "per-pass wall time:";
    List.iter
      (fun (name, s) -> line "  %-24s %8.1f ms" name (1000.0 *. s))
      pass_times
  end;
  let stage_hists =
    List.filter
      (fun n -> String.length n > 6 && String.sub n 0 6 = "stage.")
      (Metrics.histogram_names reg)
  in
  if stage_hists <> [] then begin
    line "per-stage wall time:";
    List.iter
      (fun n ->
        let h = Metrics.histogram reg n in
        line "  %-24s %8.1f ms  (%d run(s))" n (Metrics.h_sum h)
          (Metrics.h_count h))
      stage_hists
  end;
  let cs = channels () in
  if cs <> [] then begin
    let slowest =
      List.sort
        (fun a b ->
          compare (b.cs_elapsed_ms, a.cs_channel) (a.cs_elapsed_ms, b.cs_channel))
        cs
    in
    let n = List.length slowest in
    let shown = if n < top then n else top in
    line "top %d slowest channels (of %d):" shown n;
    List.iteri
      (fun i c ->
        if i < top then
          line
            "  %8.1f ms  %-32s solver_calls=%d conflicts=%d decisions=%d \
             propagations=%d path_events=%d%s"
            c.cs_elapsed_ms c.cs_channel c.cs_solver_calls c.cs_sat_conflicts
            c.cs_sat_decisions c.cs_sat_propagations c.cs_path_events
            (if c.cs_timed_out then "  [timed out]" else ""))
      slowest
  end
  else line "top 0 slowest channels (of 0):";
  (* solve-cache effectiveness, when the registry carries the counters
     (they live in the process-wide registry the CLI reports from) *)
  (let counters = Metrics.counters_list reg in
   let c n = Option.value (List.assoc_opt n counters) ~default:0 in
   let hits = c "bmoc.solve_cache_hit" and misses = c "bmoc.solve_cache_miss" in
   if hits + misses > 0 then
     line
       "solve cache: %d hit(s) / %d miss(es) (%.0f%% hit rate, %d from disk, \
        %d stored)"
       hits misses
       (100.0 *. float_of_int hits /. float_of_int (hits + misses))
       (c "bmoc.solve_cache_disk_hit")
       (c "bmoc.solve_cache_store"));
  (* effects scheduler: task traffic across the run, from the "sched.*"
     counters the pool maintains in the process-wide registry.  Steals
     and yields are schedule-dependent by nature — this section is
     diagnostic, never part of determinism comparisons. *)
  (let counters = Metrics.counters_list reg in
   let c n = Option.value (List.assoc_opt n counters) ~default:0 in
   let spawned = c "sched.tasks_spawned" in
   if spawned > 0 then begin
     line "scheduler:";
     line "  %d task(s) spawned, %d stolen, %d yield(s)" spawned
       (c "sched.tasks_stolen") (c "sched.yields");
     match List.assoc_opt "sched.queue_depth" (Metrics.gauges_list reg) with
     | Some d -> line "  last queue depth: %.0f" d
     | None -> ()
   end);
  (* analysis health: the supervision layer's unit ledger ("health.*"
     counters; the key names are fixed by Goengine.Supervise, which sits
     above this library) *)
  (let counters = Metrics.counters_list reg in
   let c n = Option.value (List.assoc_opt n counters) ~default:0 in
   let attempted = c "health.attempted" in
   if attempted > 0 then begin
     line "analysis health:";
     line
       "  %d unit(s) attempted: %d ok, %d degraded, %d skipped, %d retried"
       attempted (c "health.ok") (c "health.degraded") (c "health.skipped")
       (c "health.retried");
     let errs =
       c "bmoc.solve_cache_read_error" + c "bmoc.solve_cache_write_error"
     in
     if errs > 0 then line "  %d solve-cache I/O error(s) (best-effort)" errs
   end);
  if Sampler.total_samples () > 0 then
    Buffer.add_string b (Sampler.report ~top ());
  let hists = Metrics.histogram_names reg in
  if hists <> [] then begin
    line "histograms (p50 / p95 / max):";
    List.iter
      (fun n ->
        let h = Metrics.histogram reg n in
        if Metrics.h_count h > 0 then
          line "  %-28s %10.1f %10.1f %10.1f  (n=%d)" n
            (Metrics.percentile h 0.5)
            (Metrics.percentile h 0.95)
            (Metrics.h_max h) (Metrics.h_count h))
      hists
  end;
  Buffer.contents b
