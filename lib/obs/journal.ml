(* Persistent run journal: an append-only JSONL event stream.

   Each event is one flat JSON object per line.  Lines are rendered
   into per-domain buffers — pool workers emit thousands of solve and
   channel events per second, and funnelling those through one shared
   mutex taxes a parallel run measurably on small machines — and each
   buffer drains to the file every [flush_every] events or
   [flush_interval_s] seconds, whichever comes first.  A killed run
   thus leaves a usable ledger (at worst each domain's tail since its
   last drain is missing and the final line is partial — readers treat
   the valid parseable lines as the record) while a busy run pays one
   write(2) per batch, not per event.  Because domains drain
   independently, lines are NOT seq-ordered in the file; every line
   carries its own "seq" and readers never rely on file order.  The
   stream is schema-versioned through the first event
   ({"event":"journal.open","schema":"gcatch-journal/1",...}) so later
   readers can evolve.

   Lines carry a fixed volatile prefix — {"seq":N,"ts_ms":T,"event":E —
   and durations always close the object as ,"dur_ms":D}.  Keeping the
   machine-varying fields in fixed positions lets determinism checks
   strip them with a regex and diff the remaining payload across
   schedules (the CI does exactly this for --jobs 1 vs 4).

   The disabled path is a single atomic load; emission never touches the
   metrics registry or diagnostics, so a journal-enabled run produces
   byte-identical analysis output.

   The reader half ([parse_line], [summarize], [report]) reconstructs a
   profile/health summary offline from a journal file — including one
   truncated mid-write — and backs `gcatch report FILE.jsonl`. *)

let schema = "gcatch-journal/1"

type field = S of string | I of int | F of float | B of bool

(* Writer ---------------------------------------------------------------- *)

let on = Atomic.make false
let enabled () = Atomic.get on
let mu = Mutex.create ()
let chan : out_channel option ref = ref None
let seq = Atomic.make 0

(* Durability policy for the journal file.  [Fsync_never] (the default,
   and the pre-existing behaviour) flushes the OS buffer on drain but
   never fsyncs: a SIGKILL can lose whatever the kernel had not written
   back.  [Fsync_close] fsyncs once at [close] — a clean shutdown is
   durable, a kill loses at most the undrained per-domain tails (up to
   [flush_every] lines per domain) plus the kernel's write-back window.
   [Fsync_always] fsyncs on every drain: a killed process loses only
   the undrained per-domain tails, which is the documented bound. *)
type fsync_policy = Fsync_never | Fsync_close | Fsync_always

let fsync_policy_of_string = function
  | "never" -> Some Fsync_never
  | "close" -> Some Fsync_close
  | "always" -> Some Fsync_always
  | _ -> None

let fsync_mode = Atomic.make Fsync_never
let set_fsync p = Atomic.set fsync_mode p

let fsync_oc oc =
  try Unix.fsync (Unix.descr_of_out_channel oc) with _ -> ()

let add_field_json b = function
  | S s ->
      Buffer.add_char b '"';
      Buffer.add_string b (Metrics.json_escape s);
      Buffer.add_char b '"'
  | I n -> Buffer.add_string b (string_of_int n)
  | F x ->
      if Float.is_nan x || Float.is_integer x then
        Buffer.add_string b
          (Printf.sprintf "%.0f" (if Float.is_nan x then 0.0 else x))
      else Buffer.add_string b (Printf.sprintf "%g" x)
  | B bo -> Buffer.add_string b (if bo then "true" else "false")

(* Millisecond value with 3 decimals, written without [Printf] — two of
   these go on every line of the hot emit path. *)
let add_ms b x =
  let scaled = Int64.of_float (Float.round (x *. 1000.0)) in
  let whole = Int64.div scaled 1000L and frac = Int64.rem scaled 1000L in
  Buffer.add_string b (Int64.to_string whole);
  Buffer.add_char b '.';
  let f = Int64.to_int (Int64.abs frac) in
  Buffer.add_char b (Char.chr (48 + (f / 100)));
  Buffer.add_char b (Char.chr (48 + (f / 10 mod 10)));
  Buffer.add_char b (Char.chr (48 + (f mod 10)))

(* The emit path runs once per solve/channel/file event — tens of
   thousands of times on a large app — so the renderer writes straight
   into the caller's buffer instead of going through [Printf] per
   field. *)
let render b ~seq:n ~ts_ms ~event ?dur_ms fields =
  Buffer.add_string b "{\"seq\":";
  Buffer.add_string b (string_of_int n);
  Buffer.add_string b ",\"ts_ms\":";
  add_ms b ts_ms;
  Buffer.add_string b ",\"event\":\"";
  Buffer.add_string b (Metrics.json_escape event);
  Buffer.add_char b '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ",\"";
      Buffer.add_string b (Metrics.json_escape k);
      Buffer.add_string b "\":";
      add_field_json b v)
    fields;
  (match dur_ms with
  | Some d ->
      Buffer.add_string b ",\"dur_ms\":";
      add_ms b d
  | None -> ());
  Buffer.add_string b "}\n"

(* Per-domain line buffers: each domain renders into its own buffer
   under its own (almost always uncontended) mutex and drains to the
   shared channel every [flush_every] lines or [flush_interval_s]
   seconds, whichever comes first.  The shared [mu] is only taken on a
   drain, so four workers emitting thousands of events a second share
   no hot line but the seq counter. *)
let flush_every = 64
let flush_interval_s = 0.25

type dbuf = {
  db_mu : Mutex.t; (* owning domain in steady state; open_/close too *)
  db_buf : Buffer.t;
  mutable db_lines : int;
  mutable db_last : float; (* last drain, gettimeofday seconds *)
}

let dbufs : dbuf list ref = ref [] (* registry, under [mu] *)

let dbuf_key : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let db =
        {
          db_mu = Mutex.create ();
          db_buf = Buffer.create 4096;
          db_lines = 0;
          db_last = Unix.gettimeofday ();
        }
      in
      Mutex.lock mu;
      dbufs := db :: !dbufs;
      Mutex.unlock mu;
      db)

(* Write [db]'s pending lines to the file.  Caller holds [db.db_mu]. *)
let drain_locked ~now db =
  Mutex.lock mu;
  (match !chan with
  | Some oc -> (
      try
        Buffer.output_buffer oc db.db_buf;
        flush oc;
        if Atomic.get fsync_mode = Fsync_always then fsync_oc oc
      with _ -> ())
  | None -> ());
  Mutex.unlock mu;
  Buffer.clear db.db_buf;
  db.db_lines <- 0;
  db.db_last <- now

let events_written () = Atomic.get seq

(* Ambient context fields, stamped onto every event while set — gcatchd
   sets [("req", S id)] around each request so a shared journal can be
   sliced per request offline.  One global, not per-domain: the server
   serializes request execution (one scheduler session at a time), so a
   single ambient scope is always well-defined.  Context rides right
   after "event", before the event's own fields. *)
let context : (string * field) list Atomic.t = Atomic.make []
let set_context fields = Atomic.set context fields
let clear_context () = Atomic.set context []

let emit ?dur_ms ~event fields =
  if Atomic.get on then begin
    let n = Atomic.fetch_and_add seq 1 in
    let now = Unix.gettimeofday () in
    let fields =
      match Atomic.get context with [] -> fields | ctx -> ctx @ fields
    in
    let db = Domain.DLS.get dbuf_key in
    Mutex.lock db.db_mu;
    render db.db_buf ~seq:n ~ts_ms:(now *. 1000.0) ~event ?dur_ms fields;
    db.db_lines <- db.db_lines + 1;
    if db.db_lines >= flush_every || now -. db.db_last >= flush_interval_s
    then drain_locked ~now db;
    Mutex.unlock db.db_mu
  end

let all_dbufs () =
  Mutex.lock mu;
  let bufs = !dbufs in
  Mutex.unlock mu;
  bufs

let drain_all () =
  let now = Unix.gettimeofday () in
  List.iter
    (fun db ->
      Mutex.lock db.db_mu;
      if db.db_lines > 0 then drain_locked ~now db;
      Mutex.unlock db.db_mu)
    (all_dbufs ())

let open_ ~path =
  Atomic.set on false;
  Mutex.lock mu;
  (match !chan with Some oc -> close_out_noerr oc | None -> ());
  chan := None;
  Mutex.unlock mu;
  (* stale lines buffered toward a previous journal must not leak *)
  List.iter
    (fun db ->
      Mutex.lock db.db_mu;
      Buffer.clear db.db_buf;
      db.db_lines <- 0;
      Mutex.unlock db.db_mu)
    (all_dbufs ());
  Mutex.lock mu;
  chan := Some (open_out path);
  Mutex.unlock mu;
  Atomic.set seq 0;
  Atomic.set on true;
  emit ~event:"journal.open"
    [ ("schema", S schema); ("tool", S "gcatch"); ("pid", I (Unix.getpid ())) ];
  drain_all ()

let close () =
  if Atomic.get on then begin
    emit ~event:"journal.close" [ ("events", I (Atomic.get seq)) ];
    Atomic.set on false;
    drain_all ();
    Mutex.lock mu;
    (match !chan with
    | Some oc ->
        (match Atomic.get fsync_mode with
        | Fsync_close | Fsync_always -> fsync_oc oc
        | Fsync_never -> ());
        close_out_noerr oc
    | None -> ());
    chan := None;
    Mutex.unlock mu
  end

(* Reader ---------------------------------------------------------------- *)

(* Flat-object JSON parser, just wide enough for journal lines: strings,
   numbers, booleans, null.  Returns [None] on any malformed input —
   a truncated final line from a killed run parses as [None] and the
   summariser stops at the valid prefix. *)
let parse_line (s : string) : (string * field) list option =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\r')
    do
      incr pos
    done
  in
  let exception Bad in
  let expect c = if peek () = Some c then incr pos else raise Bad in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise Bad;
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then raise Bad;
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then raise Bad;
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> raise Bad
              in
              pos := !pos + 4;
              (* keep it simple: non-ASCII escapes round-trip as '?' *)
              Buffer.add_char b
                (if code < 0x80 then Char.chr code else '?')
          | _ -> raise Bad);
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    match peek () with
    | Some '"' -> S (parse_string ())
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (
          pos := !pos + 4;
          B true)
        else raise Bad
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (
          pos := !pos + 5;
          B false)
        else raise Bad
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then (
          pos := !pos + 4;
          S "")
        else raise Bad
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          incr pos
        done;
        let tok = String.sub s start (!pos - start) in
        (match int_of_string_opt tok with
        | Some i -> I i
        | None -> (
            match float_of_string_opt tok with
            | Some f -> F f
            | None -> raise Bad))
    | _ -> raise Bad
  in
  try
    skip_ws ();
    expect '{';
    let fields = ref [] in
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        skip_ws ();
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | _ -> raise Bad
      in
      members ()
    end;
    skip_ws ();
    if !pos <> n then raise Bad;
    Some (List.rev !fields)
  with Bad -> None

let str_field fields k =
  match List.assoc_opt k fields with Some (S s) -> Some s | _ -> None

let int_field fields k =
  match List.assoc_opt k fields with
  | Some (I i) -> Some i
  | Some (F f) -> Some (int_of_float f)
  | _ -> None

let float_field fields k =
  match List.assoc_opt k fields with
  | Some (F f) -> Some f
  | Some (I i) -> Some (float_of_int i)
  | _ -> None

(* Offline summary ------------------------------------------------------- *)

type summary = {
  mutable s_schema : string option;
  mutable s_events : int; (* parsed events *)
  mutable s_truncated : bool; (* stopped at a malformed line *)
  mutable s_run_name : string option;
  mutable s_run_files : int;
  mutable s_run_done : bool;
  mutable s_run_digest : string option;
  mutable s_run_diags : int;
  mutable s_run_dur_ms : float;
  mutable s_health : (string * int) list; (* attempted/ok/degraded/... *)
  s_by_event : (string, int) Hashtbl.t;
  s_stages : (string, float * int) Hashtbl.t; (* dur sum, runs *)
  mutable s_passes : (string * int * float) list; (* name, diags, dur; rev *)
  mutable s_channels : (string * float) list; (* name, dur; rev *)
  mutable s_solve_hit : int;
  mutable s_solve_disk_hit : int;
  mutable s_solve_miss : int;
  mutable s_solve_store : int;
  mutable s_files_compiled : int;
  mutable s_files_disk_hit : int;
  mutable s_supervise : (string * int) list; (* kind -> n *)
  mutable s_faults : int;
}

let empty_summary () =
  {
    s_schema = None;
    s_events = 0;
    s_truncated = false;
    s_run_name = None;
    s_run_files = 0;
    s_run_done = false;
    s_run_digest = None;
    s_run_diags = 0;
    s_run_dur_ms = 0.0;
    s_health = [];
    s_by_event = Hashtbl.create 16;
    s_stages = Hashtbl.create 16;
    s_passes = [];
    s_channels = [];
    s_solve_hit = 0;
    s_solve_disk_hit = 0;
    s_solve_miss = 0;
    s_solve_store = 0;
    s_files_compiled = 0;
    s_files_disk_hit = 0;
    s_supervise = [];
    s_faults = 0;
  }

let bump assoc k =
  match List.assoc_opt k assoc with
  | Some n -> (k, n + 1) :: List.remove_assoc k assoc
  | None -> (k, 1) :: assoc

let note_event sum fields =
  match str_field fields "event" with
  | None -> false
  | Some ev ->
      sum.s_events <- sum.s_events + 1;
      Hashtbl.replace sum.s_by_event ev
        (1 + Option.value (Hashtbl.find_opt sum.s_by_event ev) ~default:0);
      let dur = Option.value (float_field fields "dur_ms") ~default:0.0 in
      (match ev with
      | "journal.open" -> sum.s_schema <- str_field fields "schema"
      | "run.start" ->
          sum.s_run_name <- str_field fields "name";
          sum.s_run_files <-
            Option.value (int_field fields "files") ~default:0
      | "run.end" ->
          sum.s_run_done <- true;
          sum.s_run_digest <- str_field fields "digest";
          sum.s_run_diags <-
            Option.value (int_field fields "diags") ~default:0;
          sum.s_run_dur_ms <- dur;
          sum.s_health <-
            List.filter_map
              (fun k ->
                Option.map
                  (fun v -> (k, v))
                  (int_field fields ("health_" ^ k)))
              [ "attempted"; "ok"; "degraded"; "skipped"; "retried" ]
      | "stage.done" -> (
          match str_field fields "stage" with
          | Some st ->
              let d0, n0 =
                Option.value
                  (Hashtbl.find_opt sum.s_stages st)
                  ~default:(0.0, 0)
              in
              Hashtbl.replace sum.s_stages st (d0 +. dur, n0 + 1)
          | None -> ())
      | "pass.done" -> (
          match str_field fields "pass" with
          | Some p ->
              sum.s_passes <-
                ( p,
                  Option.value (int_field fields "diags") ~default:0,
                  dur )
                :: sum.s_passes
          | None -> ())
      | "channel.done" -> (
          match str_field fields "channel" with
          | Some c -> sum.s_channels <- (c, dur) :: sum.s_channels
          | None -> ())
      | "solve.hit" ->
          sum.s_solve_hit <- sum.s_solve_hit + 1;
          if str_field fields "from" = Some "disk" then
            sum.s_solve_disk_hit <- sum.s_solve_disk_hit + 1
      | "solve.miss" ->
          sum.s_solve_miss <- sum.s_solve_miss + 1;
          if List.assoc_opt "stored" fields = Some (B true) then
            sum.s_solve_store <- sum.s_solve_store + 1
      (* journals written before the store flag rode on the miss event *)
      | "solve.store" -> sum.s_solve_store <- sum.s_solve_store + 1
      | "file.compiled" -> sum.s_files_compiled <- sum.s_files_compiled + 1
      | "file.disk_hit" -> sum.s_files_disk_hit <- sum.s_files_disk_hit + 1
      | "supervise" -> (
          match str_field fields "kind" with
          | Some k -> sum.s_supervise <- bump sum.s_supervise k
          | None -> ())
      | "fault.fired" -> sum.s_faults <- sum.s_faults + 1
      | _ -> ());
      true

let summarize_lines (lines : string Seq.t) : summary =
  let sum = empty_summary () in
  let rec go seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons (line, rest) -> (
        if String.trim line = "" then go rest
        else
          match parse_line line with
          | None -> sum.s_truncated <- true (* stop at the valid prefix *)
          | Some fields ->
              if note_event sum fields then go rest
              else sum.s_truncated <- true)
  in
  go lines;
  sum

let summarize_file path : summary =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let next () =
        match input_line ic with
        | line -> Some line
        | exception End_of_file -> None
      in
      summarize_lines (Seq.of_dispenser next))

let report (sum : summary) : string =
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  line "== gcatch journal report ==";
  line "schema: %s  (%d event(s)%s)"
    (Option.value sum.s_schema ~default:"unknown")
    sum.s_events
    (if sum.s_truncated then ", truncated: journal ends mid-write" else "");
  (match sum.s_run_name with
  | Some name -> line "run: %s  (%d file(s))" name sum.s_run_files
  | None -> ());
  if sum.s_run_done then
    line "run end: %d diagnostic(s), digest %s, %.1f ms" sum.s_run_diags
      (Option.value sum.s_run_digest ~default:"?")
      sum.s_run_dur_ms
  else if sum.s_run_name <> None then
    line "run end: missing (run killed or journal truncated)";
  let stages =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) sum.s_stages [])
  in
  if stages <> [] then begin
    line "per-stage wall time:";
    List.iter
      (fun (st, (d, n)) -> line "  %-24s %8.1f ms  (%d run(s))" st d n)
      stages
  end;
  (match List.rev sum.s_passes with
  | [] -> ()
  | passes ->
      line "per-pass wall time:";
      List.iter
        (fun (p, nd, d) ->
          line "  %-24s %8.1f ms  %d diagnostic(s)" p d nd)
        passes);
  if
    sum.s_solve_hit + sum.s_solve_miss > 0
    || sum.s_files_compiled + sum.s_files_disk_hit > 0
  then
    line
      "caches: solve %d hit(s) (%d disk) / %d miss(es) / %d stored; \
       frontend %d file-stage(s) compiled, %d disk hit(s)"
      sum.s_solve_hit sum.s_solve_disk_hit sum.s_solve_miss sum.s_solve_store
      sum.s_files_compiled sum.s_files_disk_hit;
  (match sum.s_health with
  | [] -> ()
  | h ->
      let v k = Option.value (List.assoc_opt k h) ~default:0 in
      line
        "analysis health: %d unit(s) attempted: %d ok, %d degraded, %d \
         skipped, %d retried"
        (v "attempted") (v "ok") (v "degraded") (v "skipped") (v "retried"));
  if sum.s_supervise <> [] then
    line "supervision events: %s"
      (String.concat ", "
         (List.map
            (fun (k, n) -> Printf.sprintf "%d %s" n k)
            (List.sort compare sum.s_supervise)));
  if sum.s_faults > 0 then line "injected faults fired: %d" sum.s_faults;
  (match List.rev sum.s_channels with
  | [] -> ()
  | cs ->
      let slowest =
        List.sort (fun (ca, da) (cb, db) -> compare (db, ca) (da, cb)) cs
      in
      let ncs = List.length slowest in
      let top = if ncs < 10 then ncs else 10 in
      line "top %d slowest channels (of %d):" top ncs;
      List.iteri
        (fun i (c, d) -> if i < 10 then line "  %8.1f ms  %s" d c)
        slowest);
  let by_event =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) sum.s_by_event [])
  in
  line "events by type:";
  List.iter (fun (k, n) -> line "  %-24s %d" k n) by_event;
  Buffer.contents b
