(* Sampling wall-clock profiler.

   A dedicated ticker wakes [hz] times a second and snapshots every
   domain's current open-span spine through [Trace.sample_stacks],
   folding each spine into a stack -> count table.  The cost model is
   the classic sampling one: a stack's count is proportional to the
   wall time the program spent with that spine open, to within sampling
   error — no per-span bookkeeping, no timestamps, just counts.

   The ticker is a systhread, not a domain.  An extra domain — even one
   asleep in [sleepf] — forces every minor GC into a multi-domain
   stop-the-world rendezvous, which measurably taxes the analysis on
   small machines (tens of percent on one core); a sleeping systhread
   is invisible to the collector.  The trade: a thread only runs when
   its owning domain's runtime lock rotates, so under a compute-bound
   domain the *effective* rate caps near the thread-switch quantum
   (~20 Hz) regardless of [hz].  For a wall-clock profile over seconds
   of work that is still hundreds of samples — plenty — at zero cost
   to the run being profiled.

   Stacks are keyed in collapsed form ("root;child;leaf"), which is
   exactly the flamegraph.pl input format, so [write_collapsed] is a
   straight dump of the table.  [report] renders the top-N table the
   --profile output embeds.

   The sampler needs span spines maintained but not closed-span
   buffering; callers arm [Trace.enable_spines] (or full [Trace.enable]
   when also tracing) before [start].  The table is process-global like
   Profile's channel samples: one profiled run per process. *)

let mu = Mutex.create ()
let counts : (string, int) Hashtbl.t = Hashtbl.create 64
let ticks = ref 0 (* sampling wakeups, with or without open spans *)
let total = ref 0 (* stack samples recorded *)
let last_hz = ref 0

(* Fold one snapshot into the table; exposed so tests can drive the
   table without timing dependence. *)
let note_stacks (stacks : (int * string list) list) =
  Mutex.lock mu;
  incr ticks;
  List.iter
    (fun (_tid, names) ->
      let k = String.concat ";" names in
      Hashtbl.replace counts k
        (1 + Option.value (Hashtbl.find_opt counts k) ~default:0);
      incr total)
    stacks;
  Mutex.unlock mu

let reset () =
  Mutex.lock mu;
  Hashtbl.reset counts;
  ticks := 0;
  total := 0;
  Mutex.unlock mu

let total_samples () =
  Mutex.lock mu;
  let n = !total in
  Mutex.unlock mu;
  n

let tick_count () =
  Mutex.lock mu;
  let n = !ticks in
  Mutex.unlock mu;
  n

let hz () = !last_hz

type t = { s_stopping : bool Atomic.t; s_thread : Thread.t }

let start ~hz : t =
  let hz = if hz < 1 then 1 else if hz > 10_000 then 10_000 else hz in
  last_hz := hz;
  let period = 1.0 /. float_of_int hz in
  let stopping = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        let rec loop () =
          if not (Atomic.get stopping) then begin
            (try Thread.delay period with _ -> ());
            if not (Atomic.get stopping) then begin
              note_stacks (Trace.sample_stacks ());
              loop ()
            end
          end
        in
        loop ())
      ()
  in
  { s_stopping = stopping; s_thread = thread }

let stop t =
  if not (Atomic.exchange t.s_stopping true) then Thread.join t.s_thread

(* Exports --------------------------------------------------------------- *)

let snapshot () =
  Mutex.lock mu;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] in
  Mutex.unlock mu;
  entries

(* flamegraph.pl input: one "stack count" line per distinct spine,
   sorted for stable output. *)
let collapsed () =
  let entries = List.sort compare (snapshot ()) in
  String.concat ""
    (List.map (fun (k, n) -> Printf.sprintf "%s %d\n" k n) entries)

let write_collapsed ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (collapsed ()))

let top n =
  let entries =
    List.sort
      (fun (ka, na) (kb, nb) -> compare (nb, ka) (na, kb))
      (snapshot ())
  in
  List.filteri (fun i _ -> i < n) entries

let report ~top:n () : string =
  let b = Buffer.create 256 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  let t = total_samples () in
  line "sampling profiler: %d stack sample(s) over %d tick(s) @ %d Hz:" t
    (tick_count ()) !last_hz;
  List.iter
    (fun (k, c) ->
      line "  %6d  (%4.1f%%)  %s" c
        (if t = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int t)
        k)
    (top n);
  Buffer.contents b
