(* Leveled structured logger.

   One line per event on stderr, shaped as

     gcatch[warn] message key=value other="quoted value"

   so the output greps and splits cleanly.  The level comes from the
   GCATCH_LOG environment variable (debug|info|warn|error|quiet) and can
   be overridden programmatically (the CLI's --log-level does this).
   Writes are serialised under a mutex so lines from pool domains never
   interleave; the sink is swappable for tests. *)

type level = Debug | Info | Warn | Error | Quiet

let severity = function
  | Debug -> 0
  | Info -> 1
  | Warn -> 2
  | Error -> 3
  | Quiet -> 4

let level_str = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Quiet -> "quiet"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | "quiet" | "off" | "none" -> Some Quiet
  | _ -> None

let initial_level =
  match Sys.getenv_opt "GCATCH_LOG" with
  | Some s -> Option.value (level_of_string s) ~default:Warn
  | None -> Warn

let current : level Atomic.t = Atomic.make initial_level
let set_level l = Atomic.set current l
let level () = Atomic.get current

let enabled l =
  let cur = Atomic.get current in
  cur <> Quiet && severity l >= severity cur

(* Sink ----------------------------------------------------------------- *)

let mu = Mutex.create ()
let default_sink line = prerr_endline line
let sink : (string -> unit) ref = ref default_sink

let set_sink f =
  Mutex.lock mu;
  sink := f;
  Mutex.unlock mu

let reset_sink () = set_sink default_sink

(* Formatting ----------------------------------------------------------- *)

let needs_quoting v =
  v = ""
  || String.exists
       (fun c -> c = ' ' || c = '"' || c = '=' || c = '\n' || c = '\t')
       v

let quote_value v =
  if not (needs_quoting v) then v
  else begin
    let b = Buffer.create (String.length v + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c -> Buffer.add_char b c)
      v;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let format_line lvl msg kv =
  let b = Buffer.create 64 in
  Buffer.add_string b "gcatch[";
  Buffer.add_string b (level_str lvl);
  Buffer.add_string b "] ";
  Buffer.add_string b msg;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b (quote_value v))
    kv;
  Buffer.contents b

(* Machine-parseable variant (--log-json): one flat JSON object per
   line, key=value pairs flattened into top-level string fields.  The
   line still flows through the swappable sink, so tests and future
   daemon shippers intercept both formats the same way. *)
type format = Text | Json

let fmt_mode : format Atomic.t = Atomic.make Text
let set_format f = Atomic.set fmt_mode f
let format () = Atomic.get fmt_mode

let format_json lvl msg kv =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts_ms\":%.3f,\"level\":\"%s\",\"msg\":\"%s\""
       (Unix.gettimeofday () *. 1000.0)
       (level_str lvl)
       (Metrics.json_escape msg));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf ",\"%s\":\"%s\"" (Metrics.json_escape k)
           (Metrics.json_escape v)))
    kv;
  Buffer.add_char b '}';
  Buffer.contents b

let log lvl ?(kv = []) msg =
  if enabled lvl then begin
    let line =
      match Atomic.get fmt_mode with
      | Text -> format_line lvl msg kv
      | Json -> format_json lvl msg kv
    in
    Mutex.lock mu;
    (try !sink line with _ -> ());
    Mutex.unlock mu
  end

let debug ?kv msg = log Debug ?kv msg
let info ?kv msg = log Info ?kv msg
let warn ?kv msg = log Warn ?kv msg
let error ?kv msg = log Error ?kv msg
let debugf ?kv fmt = Printf.ksprintf (fun m -> log Debug ?kv m) fmt
let infof ?kv fmt = Printf.ksprintf (fun m -> log Info ?kv m) fmt
let warnf ?kv fmt = Printf.ksprintf (fun m -> log Warn ?kv m) fmt
let errorf ?kv fmt = Printf.ksprintf (fun m -> log Error ?kv m) fmt
