(* Minimal dependency-free HTTP telemetry server.

   Serves a fixed handler table (path -> unit -> response) over a TCP
   socket ("HOST:PORT", port 0 picks an ephemeral port) and/or a
   Unix-domain socket, each on its own systhread.  Threads, not
   domains, deliberately: an extra domain — even one blocked in
   [accept] — turns every minor GC into a multi-domain stop-the-world
   rendezvous, which on a single-core box taxes the *analysis* by tens
   of percent.  A systhread blocked in [accept] holds no runtime lock
   and costs the collector nothing.  The accept loops handle one
   connection at a time: endpoints are tiny read-only snapshots
   (metrics text, health JSON, a profile report), so there is nothing
   to gain from per-connection fan-out, and a scrape can at worst be
   delayed by the owning domain's thread-switch quantum.

   Handlers must be read-only with respect to analysis state: the server
   exists to observe a run, never to perturb it.  Determinism-sensitive
   callers rely on that — diagnostics are byte-identical with the
   server on or off.

   Request parsing is deliberately small: method + path from the request
   line, headers ignored, query strings stripped.  Responses always
   close the connection.  [fetch] is the matching loopback client, used
   by the test suite and the bench harness to curl endpoints in-process. *)

type response = { status : int; content_type : string; body : string }
type handler = unit -> response

let text ?(status = 200) body =
  { status; content_type = "text/plain; charset=utf-8"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

type t = {
  listeners : (Unix.file_descr * Unix.sockaddr) list;
  threads : Thread.t list;
  stopping : bool Atomic.t;
  t_port : int; (* bound TCP port, 0 when only a Unix socket *)
  t_sock : string option;
}

let port t = t.t_port

(* I/O helpers ----------------------------------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      let w = Unix.write_substring fd s off (n - off) in
      if w > 0 then go (off + w)
    end
  in
  go 0

(* Read until the header terminator (or a size cap): enough to see the
   request line, which is all we parse. *)
let read_request fd =
  let buf = Bytes.create 2048 in
  let b = Buffer.create 256 in
  let rec go () =
    if Buffer.length b > 8192 then Buffer.contents b
    else begin
      let n = try Unix.read fd buf 0 (Bytes.length buf) with _ -> 0 in
      if n <= 0 then Buffer.contents b
      else begin
        Buffer.add_subbytes b buf 0 n;
        let s = Buffer.contents b in
        let rec has_terminator i =
          if i + 3 >= String.length s then false
          else if
            s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
            && s.[i + 3] = '\n'
          then true
          else has_terminator (i + 1)
        in
        if has_terminator 0 then s else go ()
      end
    end
  in
  go ()

let parse_request_line raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some i -> (
      let line = String.trim (String.sub raw 0 i) in
      match String.split_on_char ' ' line with
      | meth :: target :: _ ->
          let path =
            match String.index_opt target '?' with
            | Some q -> String.sub target 0 q
            | None -> target
          in
          Some (meth, path)
      | _ -> None)

let respond fd ~head_only (r : response) =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      r.status (status_text r.status) r.content_type (String.length r.body)
  in
  try write_all fd (if head_only then head else head ^ r.body) with _ -> ()

let handle_client handlers fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0 with _ -> ());
  let raw = read_request fd in
  if raw <> "" then
    match parse_request_line raw with
    | None -> respond fd ~head_only:false (text ~status:400 "bad request\n")
    | Some (meth, path) when meth = "GET" || meth = "HEAD" -> (
        let head_only = meth = "HEAD" in
        match List.assoc_opt path handlers with
        | None ->
            respond fd ~head_only
              (text ~status:404
                 (Printf.sprintf "no such endpoint: %s\n" path))
        | Some h ->
            let resp =
              try h ()
              with e ->
                text ~status:500
                  (Printf.sprintf "handler error: %s\n"
                     (Printexc.to_string e))
            in
            respond fd ~head_only resp)
    | Some (meth, _) ->
        respond fd ~head_only:false
          (text ~status:405 (Printf.sprintf "method not allowed: %s\n" meth))

let accept_loop stopping handlers listen_fd =
  let rec loop () =
    match Unix.accept listen_fd with
    | exception _ -> if Atomic.get stopping then () else loop ()
    | client, _ ->
        (try handle_client handlers client with _ -> ());
        (try Unix.close client with _ -> ());
        if Atomic.get stopping then () else loop ()
  in
  loop ()

(* Lifecycle ------------------------------------------------------------- *)

let parse_addr spec =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "bad --telemetry-addr %S: want HOST:PORT" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      let port_s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port_s with
      | None -> Error (Printf.sprintf "bad port in %S" spec)
      | Some p -> (
          let resolve h =
            if h = "" || h = "*" || h = "0.0.0.0" then
              Some Unix.inet_addr_any
            else
              match Unix.inet_addr_of_string h with
              | a -> Some a
              | exception _ -> (
                  match Unix.gethostbyname h with
                  | { Unix.h_addr_list = [||]; _ } -> None
                  | { Unix.h_addr_list = addrs; _ } -> Some addrs.(0)
                  | exception _ -> None)
          in
          match resolve host with
          | Some a -> Ok (Unix.ADDR_INET (a, p))
          | None -> Error (Printf.sprintf "cannot resolve host %S" host)))

let listen_on sockaddr =
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  try
    Unix.set_close_on_exec fd;
    if domain <> Unix.PF_UNIX then Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (match sockaddr with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with _ -> ())
    | _ -> ());
    Unix.bind fd sockaddr;
    Unix.listen fd 16;
    Ok (fd, Unix.getsockname fd)
  with e ->
    (try Unix.close fd with _ -> ());
    Error (Printexc.to_string e)

let start ?addr ?sock ~handlers () : (t, string) result =
  (* a client that disconnects mid-response must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let wanted =
    List.filter_map Fun.id
      [
        Option.map (fun a -> `Tcp a) addr;
        Option.map (fun p -> `Unix p) sock;
      ]
  in
  if wanted = [] then Error "telemetry: no address given"
  else begin
    let rec bind_all acc = function
      | [] -> Ok (List.rev acc)
      | `Tcp spec :: rest -> (
          match parse_addr spec with
          | Error e -> Error e
          | Ok sa -> (
              match listen_on sa with
              | Ok l -> bind_all (l :: acc) rest
              | Error e ->
                  Error (Printf.sprintf "telemetry: bind %s: %s" spec e)))
      | `Unix path :: rest -> (
          match listen_on (Unix.ADDR_UNIX path) with
          | Ok l -> bind_all (l :: acc) rest
          | Error e -> Error (Printf.sprintf "telemetry: bind %s: %s" path e))
    in
    match bind_all [] wanted with
    | Error e ->
        List.iter (fun l -> ignore l) [];
        Error e
    | Ok listeners ->
        let stopping = Atomic.make false in
        let threads =
          List.map
            (fun (fd, _) ->
              Thread.create (fun () -> accept_loop stopping handlers fd) ())
            listeners
        in
        let t_port =
          List.fold_left
            (fun acc (_, sa) ->
              match sa with
              | Unix.ADDR_INET (_, p) when acc = 0 -> p
              | _ -> acc)
            0 listeners
        in
        Ok { listeners; threads; stopping; t_port; t_sock = sock }
  end

(* Wake a blocked [accept] by connecting to its own socket. *)
let poke sa =
  let sa =
    match sa with
    | Unix.ADDR_INET (a, p) when a = Unix.inet_addr_any ->
        Unix.ADDR_INET (Unix.inet_addr_loopback, p)
    | sa -> sa
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () -> try Unix.connect fd sa with _ -> ())

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    List.iter (fun (_, sa) -> poke sa) t.listeners;
    List.iter Thread.join t.threads;
    List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) t.listeners;
    match t.t_sock with
    | Some p -> ( try Unix.unlink p with _ -> ())
    | None -> ()
  end

(* Loopback client ------------------------------------------------------- *)

let read_all fd =
  let buf = Bytes.create 4096 in
  let b = Buffer.create 1024 in
  let rec go () =
    let n = try Unix.read fd buf 0 (Bytes.length buf) with _ -> 0 in
    if n > 0 then begin
      Buffer.add_subbytes b buf 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents b

let split_response raw =
  let n = String.length raw in
  let code =
    match String.index_opt raw ' ' with
    | Some i when i + 4 <= n ->
        Option.value (int_of_string_opt (String.sub raw (i + 1) 3)) ~default:0
    | _ -> 0
  in
  let rec find_body i =
    if i + 3 >= n then n
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then i + 4
    else find_body (i + 1)
  in
  let off = find_body 0 in
  (code, String.sub raw off (n - off))

(* One-shot GET against a server handle (TCP preferred, Unix socket
   otherwise).  Returns (status, body). *)
let fetch t path : int * string =
  let sa =
    if t.t_port <> 0 then Unix.ADDR_INET (Unix.inet_addr_loopback, t.t_port)
    else
      match t.t_sock with
      | Some p -> Unix.ADDR_UNIX p
      | None -> invalid_arg "Telemetry.fetch: server has no address"
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd sa;
      write_all fd
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: gcatch\r\nConnection: \
                         close\r\n\r\n"
           path);
      split_response (read_all fd))
