(* Minimal dependency-free HTTP server (telemetry + request serving).

   Serves a fixed handler table (path -> unit -> response) over a TCP
   socket ("HOST:PORT", port 0 picks an ephemeral port) and/or a
   Unix-domain socket, each on its own systhread.  Threads, not
   domains, deliberately: an extra domain — even one blocked in
   [accept] — turns every minor GC into a multi-domain stop-the-world
   rendezvous, which on a single-core box taxes the *analysis* by tens
   of percent.  A systhread blocked in [accept] holds no runtime lock
   and costs the collector nothing.

   Originally the accept loops handled one connection at a time; good
   enough for scrapes, fatal for serving — one slow client would wedge
   every other request behind its read timeout.  Connections are now
   handled on short-lived systhreads, bounded by [max_conns] (over the
   bound the connection is answered 503 inline and closed, so the
   accept loop itself never blocks on a client).  The parser is
   correspondingly hardened: EINTR and partial reads are retried,
   reads carry a deadline (408 on expiry), POST bodies are bounded by
   [max_body] (413 past it) and require a Content-Length (411).

   GET/HEAD handlers must be read-only with respect to analysis state:
   the observation endpoints exist to observe a run, never to perturb
   it.  Determinism-sensitive callers rely on that — diagnostics are
   byte-identical with the server on or off.  POST handlers ([post])
   are the request-serving side (gcatchd's /analyse) and do real work;
   they receive the parsed request and run on the connection's thread.

   [fetch]/[fetch_post] are the matching loopback clients, used by the
   test suite, the bench harness, and the CLI's --server mode. *)

type response = {
  status : int;
  content_type : string;
  body : string;
  headers : (string * string) list; (* extra headers, e.g. Retry-After *)
}

type handler = unit -> response

type request = {
  rq_path : string;
  rq_headers : (string * string) list; (* keys lowercased *)
  rq_body : string;
}

type post_handler = request -> response

(* Connection-level fault injection.  The fault *plan* lives in
   Goengine.Faults, which this library cannot depend on (goengine
   depends on goobs for the journal); the serving layer installs a hook
   translating the conn.* sites into actions.  With no hook installed —
   every one-shot CLI path — the query is one ref dereference returning
   [FNone], so the clean path pays nothing.

   Action semantics at a connection: [FRaise] drops the connection,
   [FStall] slow-lorises it (a pause mid-transfer), [FCorrupt]
   truncates the bytes written. *)
type fault_action = FNone | FRaise | FStall | FCorrupt

let fault_hook : (string -> string -> fault_action) ref =
  ref (fun _ _ -> FNone)

let set_fault_hook f = fault_hook := f
let conn_fault site key = !fault_hook site key

(* How long a stalled connection pauses: matches Faults.stall_s. *)
let conn_stall_s = 0.05

let text ?(status = 200) ?(headers = []) body =
  { status; content_type = "text/plain; charset=utf-8"; body; headers }

let json ?(status = 200) ?(headers = []) body =
  { status; content_type = "application/json"; body; headers }

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 411 -> "Length Required"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

type t = {
  listeners : (Unix.file_descr * Unix.sockaddr) list;
  threads : Thread.t list;
  stopping : bool Atomic.t;
  active : int Atomic.t; (* live connection threads *)
  t_port : int; (* bound TCP port, 0 when only a Unix socket *)
  t_sock : string option;
}

let port t = t.t_port

(* I/O helpers ----------------------------------------------------------- *)

let rec write_all fd s off =
  let n = String.length s in
  if off < n then
    match Unix.write_substring fd s off (n - off) with
    | 0 -> ()
    | w -> write_all fd s (off + w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off

let write_all fd s = write_all fd s 0

(* One read with EINTR retry.  Returns 0 on EOF, -1 on timeout
   (EAGAIN/EWOULDBLOCK under SO_RCVTIMEO), -2 on any other error. *)
let rec read_once fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_once fd buf
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> -1
  | exception _ -> -2

(* Read until the blank line ending the headers, keeping whatever body
   bytes arrived in the same segments.  The header block is capped
   (8 KiB) — a request whose headers never end is cut off there and
   fails to parse, which answers 400. *)
let read_head fd =
  let buf = Bytes.create 2048 in
  let b = Buffer.create 256 in
  let find_terminator s from =
    let n = String.length s in
    let rec go i =
      if i + 3 >= n then None
      else if
        s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then Some (i + 4)
      else go (i + 1)
    in
    go (max 0 from)
  in
  let rec go scanned =
    if Buffer.length b > 8192 then `Head (Buffer.contents b, -1)
    else
      match read_once fd buf with
      | 0 -> if Buffer.length b = 0 then `Closed else `Head (Buffer.contents b, -1)
      | -1 -> `Timeout
      | n when n < 0 -> `Closed
      | n ->
          Buffer.add_subbytes b buf 0 n;
          let s = Buffer.contents b in
          (match find_terminator s (scanned - 3) with
          | Some body_off -> `Head (s, body_off)
          | None -> go (String.length s))
  in
  go 0

let parse_request_line raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some i -> (
      let line = String.trim (String.sub raw 0 i) in
      match String.split_on_char ' ' line with
      | meth :: target :: _ ->
          let path =
            match String.index_opt target '?' with
            | Some q -> String.sub target 0 q
            | None -> target
          in
          Some (meth, path)
      | _ -> None)

(* Headers from the raw head block: one per line after the request line,
   "Key: value", keys lowercased, malformed lines skipped. *)
let parse_headers raw body_off =
  let upto = if body_off < 0 then String.length raw else body_off in
  let head = String.sub raw 0 upto in
  match String.index_opt head '\n' with
  | None -> []
  | Some i ->
      String.sub head (i + 1) (String.length head - i - 1)
      |> String.split_on_char '\n'
      |> List.filter_map (fun line ->
             let line = String.trim line in
             match String.index_opt line ':' with
             | None -> None
             | Some c ->
                 Some
                   ( String.lowercase_ascii (String.trim (String.sub line 0 c)),
                     String.trim
                       (String.sub line (c + 1) (String.length line - c - 1)) ))

(* [fkey] is the request path when known: a plan can select
   "conn.write@/analyse" to hit analysis responses while leaving
   telemetry scrapes alone. *)
let respond ?(fkey = "") fd ~head_only (r : response) =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) r.headers)
  in
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: \
       close\r\n\r\n"
      r.status (status_text r.status) r.content_type (String.length r.body)
      extra
  in
  let payload = if head_only then head else head ^ r.body in
  match conn_fault "conn.write" fkey with
  | FRaise -> () (* dropped: the connection closes with nothing written *)
  | FCorrupt ->
      (* truncated bytes: the client sees a body shorter than the
         advertised Content-Length and must treat it as a transport
         error, never as a (wrong) answer *)
      let cut = String.length payload / 2 in
      (try write_all fd (String.sub payload 0 cut) with _ -> ())
  | FStall -> (
      (* slow-loris: head, pause, then the rest *)
      try
        write_all fd head;
        Thread.delay conn_stall_s;
        if not head_only then write_all fd r.body
      with _ -> ())
  | FNone -> ( try write_all fd payload with _ -> ())

(* Read exactly [want] more body bytes (some may already be in [b]). *)
let read_body fd b want =
  let buf = Bytes.create 4096 in
  let rec go () =
    if Buffer.length b >= want then `Ok (Buffer.sub b 0 want)
    else
      match read_once fd buf with
      | 0 -> `Closed
      | -1 -> `Timeout
      | n when n < 0 -> `Closed
      | n ->
          Buffer.add_subbytes b buf 0 n;
          go ()
  in
  go ()

let handle_client ~handlers ~post ~max_body ~read_timeout fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout with _ -> ());
  match conn_fault "conn.read" "" with
  | FRaise | FCorrupt -> () (* dropped before reading the request *)
  | (FNone | FStall) as a -> (
      if a = FStall then Thread.delay conn_stall_s;
      match read_head fd with
      | `Closed -> ()
      | `Timeout ->
          respond fd ~head_only:false (text ~status:408 "request timeout\n")
      | `Head (raw, body_off) -> (
          match parse_request_line raw with
          | None -> respond fd ~head_only:false (text ~status:400 "bad request\n")
          | Some (meth, path) when meth = "GET" || meth = "HEAD" -> (
              let head_only = meth = "HEAD" in
              match List.assoc_opt path handlers with
              | None ->
                  respond ~fkey:path fd ~head_only
                    (text ~status:404
                       (Printf.sprintf "no such endpoint: %s\n" path))
              | Some h ->
                  let resp =
                    try h ()
                    with e ->
                      text ~status:500
                        (Printf.sprintf "handler error: %s\n"
                           (Printexc.to_string e))
                  in
                  respond ~fkey:path fd ~head_only resp)
          | Some ("POST", path) -> (
              match List.assoc_opt path post with
              | None ->
                  respond ~fkey:path fd ~head_only:false
                    (text ~status:404
                       (Printf.sprintf "no such endpoint: %s\n" path))
              | Some h -> (
                  let headers = parse_headers raw body_off in
                  match
                    Option.bind
                      (List.assoc_opt "content-length" headers)
                      int_of_string_opt
                  with
                  | None ->
                      respond ~fkey:path fd ~head_only:false
                        (text ~status:411 "content-length required\n")
                  | Some len when len < 0 ->
                      respond ~fkey:path fd ~head_only:false
                        (text ~status:400 "bad request\n")
                  | Some len when len > max_body ->
                      respond ~fkey:path fd ~head_only:false
                        (text ~status:413
                           (Printf.sprintf "body too large: %d > %d\n" len
                              max_body))
                  | Some len -> (
                      let b = Buffer.create (min len 65536) in
                      if body_off >= 0 && body_off < String.length raw then
                        Buffer.add_substring b raw body_off
                          (String.length raw - body_off);
                      match read_body fd b len with
                      | `Closed -> ()
                      | `Timeout ->
                          respond ~fkey:path fd ~head_only:false
                            (text ~status:408 "request timeout\n")
                      | `Ok body ->
                          let resp =
                            try
                              h
                                {
                                  rq_path = path;
                                  rq_headers = headers;
                                  rq_body = body;
                                }
                            with e ->
                              text ~status:500
                                (Printf.sprintf "handler error: %s\n"
                                   (Printexc.to_string e))
                          in
                          respond ~fkey:path fd ~head_only:false resp)))
          | Some (meth, _) ->
              respond fd ~head_only:false
                (text ~status:405
                   (Printf.sprintf "method not allowed: %s\n" meth))))

let accept_loop ~stopping ~active ~max_conns ~handlers ~post ~max_body
    ~read_timeout listen_fd =
  let serve client =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close client with _ -> ());
        Atomic.decr active)
      (fun () ->
        try
          (* conn.accept faults run on the connection thread, never the
             accept loop: a stall must not wedge other clients *)
          match conn_fault "conn.accept" "" with
          | FRaise | FCorrupt -> () (* dropped: closed without a byte *)
          | (FNone | FStall) as a ->
              if a = FStall then Thread.delay conn_stall_s;
              handle_client ~handlers ~post ~max_body ~read_timeout client
        with _ -> ())
  in
  let rec loop () =
    match Unix.accept listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if Atomic.get stopping then () else loop ()
    | exception _ -> if Atomic.get stopping then () else loop ()
    | client, _ ->
        if Atomic.get stopping then (try Unix.close client with _ -> ())
        else begin
          Atomic.incr active;
          if Atomic.get active > max_conns then begin
            (* answered inline: the accept loop must never block on a
               client, and a refusal writes a few bytes at most *)
            (try
               respond client ~head_only:false
                 (text ~status:503 ~headers:[ ("Retry-After", "1") ]
                    "too many connections\n")
             with _ -> ());
            (try Unix.close client with _ -> ());
            Atomic.decr active
          end
          else ignore (Thread.create serve client);
          loop ()
        end
  in
  loop ()

(* Lifecycle ------------------------------------------------------------- *)

let parse_addr spec =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "bad --telemetry-addr %S: want HOST:PORT" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      let port_s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port_s with
      | None -> Error (Printf.sprintf "bad port in %S" spec)
      | Some p -> (
          let resolve h =
            if h = "" || h = "*" || h = "0.0.0.0" then
              Some Unix.inet_addr_any
            else
              match Unix.inet_addr_of_string h with
              | a -> Some a
              | exception _ -> (
                  match Unix.gethostbyname h with
                  | { Unix.h_addr_list = [||]; _ } -> None
                  | { Unix.h_addr_list = addrs; _ } -> Some addrs.(0)
                  | exception _ -> None)
          in
          match resolve host with
          | Some a -> Ok (Unix.ADDR_INET (a, p))
          | None -> Error (Printf.sprintf "cannot resolve host %S" host)))

(* An address as clients name it: "HOST:PORT" for TCP, anything else is
   a Unix-socket path (a path containing ':' can be forced with a
   leading "unix:").  Used by the CLI's --server flag. *)
let client_sockaddr spec : (Unix.sockaddr, string) result =
  if String.length spec > 5 && String.sub spec 0 5 = "unix:" then
    Ok (Unix.ADDR_UNIX (String.sub spec 5 (String.length spec - 5)))
  else
    match parse_addr spec with
    | Ok (Unix.ADDR_INET (a, p)) when a = Unix.inet_addr_any ->
        Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, p))
    | Ok sa -> Ok sa
    | Error _ when String.contains spec '/' -> Ok (Unix.ADDR_UNIX spec)
    | Error e -> Error e

let listen_on sockaddr =
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  try
    Unix.set_close_on_exec fd;
    if domain <> Unix.PF_UNIX then Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (match sockaddr with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with _ -> ())
    | _ -> ());
    Unix.bind fd sockaddr;
    Unix.listen fd 64;
    Ok (fd, Unix.getsockname fd)
  with e ->
    (try Unix.close fd with _ -> ());
    Error (Printexc.to_string e)

let start ?addr ?sock ?(post = []) ?(max_body = 64 * 1024 * 1024)
    ?(read_timeout = 5.0) ?(max_conns = 64) ~handlers () : (t, string) result =
  (* a client that disconnects mid-response must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let wanted =
    List.filter_map Fun.id
      [
        Option.map (fun a -> `Tcp a) addr;
        Option.map (fun p -> `Unix p) sock;
      ]
  in
  if wanted = [] then Error "telemetry: no address given"
  else begin
    let rec bind_all acc = function
      | [] -> Ok (List.rev acc)
      | `Tcp spec :: rest -> (
          match parse_addr spec with
          | Error e -> Error e
          | Ok sa -> (
              match listen_on sa with
              | Ok l -> bind_all (l :: acc) rest
              | Error e ->
                  Error (Printf.sprintf "telemetry: bind %s: %s" spec e)))
      | `Unix path :: rest -> (
          match listen_on (Unix.ADDR_UNIX path) with
          | Ok l -> bind_all (l :: acc) rest
          | Error e -> Error (Printf.sprintf "telemetry: bind %s: %s" path e))
    in
    match bind_all [] wanted with
    | Error e -> Error e
    | Ok listeners ->
        let stopping = Atomic.make false in
        let active = Atomic.make 0 in
        let threads =
          List.map
            (fun (fd, _) ->
              Thread.create
                (fun () ->
                  accept_loop ~stopping ~active ~max_conns ~handlers ~post
                    ~max_body ~read_timeout fd)
                ())
            listeners
        in
        let t_port =
          List.fold_left
            (fun acc (_, sa) ->
              match sa with
              | Unix.ADDR_INET (_, p) when acc = 0 -> p
              | _ -> acc)
            0 listeners
        in
        Ok { listeners; threads; stopping; active; t_port; t_sock = sock }
  end

(* Wake a blocked [accept] by connecting to its own socket. *)
let poke sa =
  let sa =
    match sa with
    | Unix.ADDR_INET (a, p) when a = Unix.inet_addr_any ->
        Unix.ADDR_INET (Unix.inet_addr_loopback, p)
    | sa -> sa
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () -> try Unix.connect fd sa with _ -> ())

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    List.iter (fun (_, sa) -> poke sa) t.listeners;
    List.iter Thread.join t.threads;
    List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) t.listeners;
    (* give in-flight connection threads a bounded window to finish —
       their responses are already computed or cheap; past the window we
       abandon them (process teardown closes their fds) *)
    let deadline = Unix.gettimeofday () +. 5.0 in
    while Atomic.get t.active > 0 && Unix.gettimeofday () < deadline do
      Thread.yield ();
      (try Thread.delay 0.01 with _ -> ())
    done;
    match t.t_sock with
    | Some p -> ( try Unix.unlink p with _ -> ())
    | None -> ()
  end

(* Loopback client ------------------------------------------------------- *)

let read_all fd =
  let buf = Bytes.create 4096 in
  let b = Buffer.create 1024 in
  let rec go () =
    match read_once fd buf with
    | n when n <= 0 -> ()
    | n ->
        Buffer.add_subbytes b buf 0 n;
        go ()
  in
  go ();
  Buffer.contents b

(* Split a raw response into (status, headers, body).  A garbled status
   line parses as status 0; a missing header terminator yields an empty
   body — both are transport errors to a careful client. *)
let split_response_full raw =
  let n = String.length raw in
  let code =
    match String.index_opt raw ' ' with
    | Some i when i + 4 <= n ->
        Option.value (int_of_string_opt (String.sub raw (i + 1) 3)) ~default:0
    | _ -> 0
  in
  let rec find_body i =
    if i + 3 >= n then n
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then i + 4
    else find_body (i + 1)
  in
  let off = find_body 0 in
  let headers = parse_headers raw off in
  (code, headers, String.sub raw off (n - off))

let split_response raw =
  let code, _, body = split_response_full raw in
  (code, body)

(* One-shot request against an explicit address.  Returns
   (status, headers, body); the server closes the connection after the
   response, so reading to EOF delimits it. *)
let request_full sa ~meth ~path ?(body = "") () :
    int * (string * string) list * string =
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd sa;
      let payload =
        if meth = "GET" || meth = "HEAD" then
          Printf.sprintf
            "%s %s HTTP/1.1\r\nHost: gcatch\r\nConnection: close\r\n\r\n" meth
            path
        else
          Printf.sprintf
            "%s %s HTTP/1.1\r\nHost: gcatch\r\nContent-Type: \
             application/json\r\nContent-Length: %d\r\nConnection: \
             close\r\n\r\n%s"
            meth path (String.length body) body
      in
      write_all fd payload;
      split_response_full (read_all fd))

let request sa ~meth ~path ?(body = "") () : int * string =
  let code, _, b = request_full sa ~meth ~path ~body () in
  (code, b)

(* Resilient client: capped exponential backoff with deterministic
   (seeded) jitter.  Retries transport-level failures — connect
   refused/reset, an unparseable status line, a body shorter than the
   advertised Content-Length (a truncated or garbled write) — and
   back-pressure answers (429/503), honoring Retry-After when the
   server sends one.  Every other status is returned: the request
   reached a handler and its answer, success or not, is authoritative.
   Safe for /analyse because analysis is idempotent — re-sending a
   request whose connection died is indistinguishable from sending it
   once late.

   Determinism: the jitter is a pure function of (seed, attempt, path),
   so two runs with the same seed sleep the same schedule. *)
let request_retry ?(max_attempts = 6) ?(seed = 0) ?(base_delay = 0.05)
    ?(max_delay = 2.0) sa ~meth ~path ?(body = "") () :
    (int * string, string) result =
  let jitter k =
    let d = Digest.string (Printf.sprintf "%d:%d:%s" seed k path) in
    float_of_int (Char.code d.[0]) /. 255.0
  in
  let backoff k =
    Float.min max_delay (base_delay *. (2.0 ** float_of_int k))
    *. (0.5 +. (0.5 *. jitter k))
  in
  let rec go k =
    let retry err retry_after =
      if k + 1 >= max_attempts then Error err
      else begin
        let d =
          match retry_after with
          | Some s -> Float.min max_delay (float_of_int s)
          | None -> backoff k
        in
        (try Thread.delay d with _ -> ());
        go (k + 1)
      end
    in
    match request_full sa ~meth ~path ~body () with
    | exception e -> retry (Printexc.to_string e) None
    | 0, _, _ -> retry "unparseable response" None
    | code, headers, rbody -> (
        let truncated =
          match
            Option.bind (List.assoc_opt "content-length" headers)
              int_of_string_opt
          with
          | Some l -> String.length rbody < l
          | None -> false
        in
        if truncated then
          retry (Printf.sprintf "truncated response (status %d)" code) None
        else
          match code with
          | 429 | 503 ->
              retry
                (Printf.sprintf "status %d" code)
                (Option.bind
                   (List.assoc_opt "retry-after" headers)
                   int_of_string_opt)
          | _ -> Ok (code, rbody))
  in
  go 0

let self_addr t =
  if t.t_port <> 0 then Unix.ADDR_INET (Unix.inet_addr_loopback, t.t_port)
  else
    match t.t_sock with
    | Some p -> Unix.ADDR_UNIX p
    | None -> invalid_arg "Telemetry.fetch: server has no address"

(* One-shot GET against a server handle (TCP preferred, Unix socket
   otherwise).  Returns (status, body). *)
let fetch t path : int * string = request (self_addr t) ~meth:"GET" ~path ()

let fetch_post t path body : int * string =
  request (self_addr t) ~meth:"POST" ~path ~body ()
