(* Metrics registry: counters, gauges, and log-scale histograms.

   One registry is one namespace of named instruments.  Instruments are
   interned on first use (the name -> instrument table is guarded by a
   mutex) and updated lock-free afterwards, so pool workers can bump the
   same counter without contending on anything but the atomic itself.

   Histograms use 64 power-of-two buckets.  Bucket [i] covers the value
   range (2^(i-21), 2^(i-20)], which puts 1.0 at the top of bucket 20
   and spans roughly a microsecond to 8 e12 when values are measured in
   milliseconds — wide enough for both per-channel solve latencies and
   path-event counts.  Percentiles come from the bucket upper bound,
   except p100 which is the exact observed maximum.

   Exports: Prometheus text exposition ([to_prometheus]) and a JSON
   object ([to_json], hand-rolled like the rest of the repo — no JSON
   library in the build). *)

type counter = { c_name : string; c_v : int Atomic.t }
type gauge = { g_name : string; g_v : float Atomic.t }

let n_buckets = 64

type histogram = {
  h_name : string;
  h_counts : int Atomic.t array; (* length [n_buckets] *)
  h_sum : float Atomic.t;
  h_max : float Atomic.t;
}

type t = {
  mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    mu = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

(* Process-wide registry: the CLI, pool, pathenum, and GFix all report
   here unless handed a private registry. *)
let default = create ()

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let intern tbl mu_t name mk =
  match Hashtbl.find_opt tbl name with
  | Some x -> x
  | None ->
      locked mu_t (fun () ->
          match Hashtbl.find_opt tbl name with
          | Some x -> x
          | None ->
              let x = mk name in
              Hashtbl.replace tbl name x;
              x)

(* Counters ------------------------------------------------------------- *)

let counter t name =
  intern t.counters t name (fun c_name -> { c_name; c_v = Atomic.make 0 })

let incr c = Atomic.incr c.c_v
let add c n = ignore (Atomic.fetch_and_add c.c_v n)
let value c = Atomic.get c.c_v

(* Gauges --------------------------------------------------------------- *)

let gauge t name =
  intern t.gauges t name (fun g_name -> { g_name; g_v = Atomic.make 0.0 })

let set_gauge g v = Atomic.set g.g_v v
let gauge_value g = Atomic.get g.g_v

(* Histograms ----------------------------------------------------------- *)

let histogram t name =
  intern t.histograms t name (fun h_name ->
      {
        h_name;
        h_counts = Array.init n_buckets (fun _ -> Atomic.make 0);
        h_sum = Atomic.make 0.0;
        h_max = Atomic.make neg_infinity;
      })

(* Bucket index for a value: 20 + ceil(log2 v), clamped to the array. *)
let bucket_index v =
  if v <= 0.0 then 0
  else begin
    let i = 20 + int_of_float (Float.ceil (Float.log2 v)) in
    if i < 0 then 0 else if i > n_buckets - 1 then n_buckets - 1 else i
  end

(* Upper bound of bucket [i]: 2^(i-20). *)
let bucket_upper i = Float.pow 2.0 (float_of_int (i - 20))

let rec atomic_update (a : float Atomic.t) f =
  let old = Atomic.get a in
  let nv = f old in
  if not (Atomic.compare_and_set a old nv) then atomic_update a f

let observe h v =
  Atomic.incr h.h_counts.(bucket_index v);
  atomic_update h.h_sum (fun s -> s +. v);
  atomic_update h.h_max (fun m -> if v > m then v else m)

let h_count h =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 h.h_counts

let h_sum h = Atomic.get h.h_sum

let h_max h =
  let m = Atomic.get h.h_max in
  if m = neg_infinity then 0.0 else m

(* Percentile estimate: the upper bound of the bucket holding the rank,
   capped at the exact maximum (so percentile 1.0 = max). *)
let percentile h p =
  let total = h_count h in
  if total = 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    let rank =
      let r = int_of_float (Float.ceil (p *. float_of_int total)) in
      if r < 1 then 1 else r
    in
    let rec walk i cum =
      if i >= n_buckets then h_max h
      else begin
        let cum = cum + Atomic.get h.h_counts.(i) in
        if cum >= rank then Float.min (bucket_upper i) (h_max h)
        else walk (i + 1) cum
      end
    in
    walk 0 0
  end

(* Listing and merging -------------------------------------------------- *)

let sorted_keys tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

(* Sorted (name, value) pairs: a deterministic snapshot whatever the
   interleaving of worker updates that produced it. *)
let counters_list t =
  locked t (fun () ->
      List.map
        (fun k -> (k, value (Hashtbl.find t.counters k)))
        (sorted_keys t.counters))

let gauges_list t =
  locked t (fun () ->
      List.map
        (fun k -> (k, gauge_value (Hashtbl.find t.gauges k)))
        (sorted_keys t.gauges))

let histogram_names t = locked t (fun () -> sorted_keys t.histograms)

(* Fold [src] into [dst]: counters and histogram buckets add, gauges take
   the source value. *)
let merge_into ~dst src =
  let names = counters_list src in
  List.iter (fun (k, v) -> if v <> 0 then add (counter dst k) v) names;
  List.iter (fun (k, v) -> set_gauge (gauge dst k) v) (gauges_list src);
  List.iter
    (fun k ->
      let hs = histogram src k in
      let hd = histogram dst k in
      Array.iteri
        (fun i a ->
          let n = Atomic.get a in
          if n <> 0 then ignore (Atomic.fetch_and_add hd.h_counts.(i) n))
        hs.h_counts;
      atomic_update hd.h_sum (fun s -> s +. h_sum hs);
      let m = h_max hs in
      if h_count hs > 0 then
        atomic_update hd.h_max (fun m' -> if m > m' then m else m'))
    (histogram_names src)

let reset t =
  locked t (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_v 0) t.counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_v 0.0) t.gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun a -> Atomic.set a 0) h.h_counts;
          Atomic.set h.h_sum 0.0;
          Atomic.set h.h_max neg_infinity)
        t.histograms)

(* The one bucket schema both exporters share: occupied buckets only,
   cumulative counts, identified by their upper bound.  Prometheus
   renders these as _bucket{le="..."} lines, JSON as {"le":..,"n":..}
   objects — same pairs, two syntaxes, so the exports round-trip. *)
let cumulative_buckets h : (float * int) list =
  let cum = ref 0 in
  let acc = ref [] in
  Array.iteri
    (fun i a ->
      let c = Atomic.get a in
      if c > 0 then begin
        cum := !cum + c;
        acc := (bucket_upper i, !cum) :: !acc
      end)
    h.h_counts;
  List.rev !acc

(* Prometheus text exposition ------------------------------------------- *)

let sanitize name =
  let b = Buffer.create (String.length name + 7) in
  Buffer.add_string b "gcatch_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_prometheus t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      let n = sanitize k in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    (counters_list t);
  List.iter
    (fun (k, v) ->
      let n = sanitize k in
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (fmt_float v)))
    (gauges_list t);
  List.iter
    (fun k ->
      let h = histogram t k in
      let n = sanitize k in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let buckets = cumulative_buckets h in
      List.iter
        (fun (upper, cum) ->
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (fmt_float upper)
               cum))
        buckets;
      let total = h_count h in
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n total);
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" n (fmt_float (h_sum h)));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n total))
    (histogram_names t);
  Buffer.contents b

(* JSON export ----------------------------------------------------------- *)

let json_escape s =
  (* fast path: almost every metric name, journal key, and value is
     already clean — return it without allocating *)
  let n = String.length s in
  let rec clean i =
    i >= n
    ||
    match s.[i] with
    | '"' | '\\' -> false
    | c when Char.code c < 0x20 -> false
    | _ -> clean (i + 1)
  in
  if clean 0 then s
  else begin
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    (counters_list t);
  Buffer.add_string b "},\"gauges\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%s" (json_escape k) (fmt_float v)))
    (gauges_list t);
  Buffer.add_string b "},\"histograms\":{";
  List.iteri
    (fun i k ->
      let h = histogram t k in
      if i > 0 then Buffer.add_char b ',';
      (* same occupied-bucket/cumulative-count schema as the Prometheus
         exposition's _bucket{le=...} lines *)
      let buckets =
        String.concat ","
          (List.map
             (fun (upper, cum) ->
               Printf.sprintf "{\"le\":%s,\"n\":%d}" (fmt_float upper) cum)
             (cumulative_buckets h))
      in
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"buckets\":[%s]}"
           (json_escape k) (h_count h)
           (fmt_float (h_sum h))
           (fmt_float (h_max h))
           (fmt_float (percentile h 0.5))
           (fmt_float (percentile h 0.95))
           buckets))
    (histogram_names t);
  Buffer.add_string b "}}";
  Buffer.contents b
