(* Monotonic time for the observability layer.

   Goscope sits *below* [Goengine] in the library graph (the engine and
   pool are themselves instrumented), so it cannot reuse
   [Goengine.Clock]; both are thin veneers over bechamel's
   [Monotonic_clock]. *)

let now_ns () : int64 = Monotonic_clock.now ()
let now_us () : float = Int64.to_float (now_ns ()) /. 1e3
let now_s () : float = Int64.to_float (now_ns ()) /. 1e9
