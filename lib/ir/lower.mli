(** Lowering: MiniGo AST → IR control-flow graphs.

    Performs alpha renaming, lambda lifting of goroutine and function
    literals (free variables become extra parameters), defer
    materialisation before every function exit (including panics and
    testing.Fatal, matching Go's run-defers-on-Goexit semantics that
    GFix Strategy-II relies on), and structured-control lowering. *)

exception Lower_error of string * Minigo.Loc.t

val lower_program : Minigo.Ast.program -> Ir.program
(** Equivalent to lowering every file with {!lower_file} and
    assembling the results in file order. *)

(** {1 Per-file compilation}

    Each file lowers independently — in parallel, or from a per-file
    cache — with program points local to the file.  {!assemble} rebases
    every file's points by the sum of the preceding files' counts, so
    the final numbering depends only on the file contents and their
    order, never on the schedule or on which files were cached. *)

type sigs
(** Whole-program declaration signatures: the only cross-file input a
    file's lowering reads.  Shared read-only by concurrent lowerings. *)

val build_sigs : Minigo.Ast.program -> sigs

val sigs_of_signatures : Minigo.Typecheck.sig_item list -> sigs
(** Build the table from per-file signature items;
    [sigs_of_signatures (List.concat_map Minigo.Typecheck.file_signatures p)]
    is [build_sigs p] (typechecking never rewrites signatures). *)

type lowered_file
(** One file's functions (including its lifted literals) with
    file-local program points. *)

val lower_file : sigs -> Minigo.Ast.file -> lowered_file
(** @raise Lower_error on unloverable constructs in this file. *)

val file_funcs : lowered_file -> (string * Ir.func) list
(** The file's lowered functions (including lifted literals), in
    lowering order, with file-local program points. *)

val file_pp_count : lowered_file -> int
(** Program points the file consumed; {!assemble} rebases the next
    file by the running sum of these. *)

val assemble : Minigo.Ast.program -> lowered_file list -> Ir.program
(** Rebase and merge per-file results, in file order, into one
    program.  Rebasing deep-copies blocks, so a cached [lowered_file]
    may appear at different offsets in different programs. *)

val captures : string -> string list option
(** Free variables captured by a lifted literal, by lifted name. *)
