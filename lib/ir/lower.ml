(* Lowering: MiniGo AST -> IR control-flow graphs.

   The pass performs:
   - alpha renaming, so every local has a unique name within its function;
   - lambda lifting of goroutine literals and function literals into
     synthetic top-level functions (free variables become extra
     parameters), mirroring how go/ssa materialises anonymous functions;
   - defer materialisation: deferred operations are re-emitted, in LIFO
     order, before every function exit that lexically follows their
     registration — including panics and testing.Fatal exits, matching
     Go's run-defers-on-Goexit semantics the paper's Strategy-II relies on;
   - structured [select], loops and short-circuit conditions into explicit
     basic blocks. *)

module A = Minigo.Ast
module StrMap = Map.Make (String)

type defer_entry = {
  de_op : A.defer_op;
  de_env : string StrMap.t; (* renaming environment at registration *)
}

type loop_ctx = { break_target : int; continue_target : int }

type fstate = {
  mutable blocks : Ir.block list; (* reverse order *)
  mutable cur : Ir.block;
  mutable env : string StrMap.t;
  mutable defers : defer_entry list; (* innermost-first *)
  mutable loops : loop_ctx list;
  var_types : (string, A.typ) Hashtbl.t;
  fname : string;
  mutable tmp_counter : int;
  mutable lift_counter : int;
  glob : gstate;
}

and gstate = {
  mutable pp_counter : int;
  mutable lifted : (string * A.param list * A.typ list * A.block * string StrMap.t * Minigo.Loc.t) list;
      (* name, params, results, body, captured env, loc — queued for lowering *)
  funcs_sigs : (string, A.typ list * A.typ list) Hashtbl.t;
  structs : (string, (string * A.typ) list) Hashtbl.t;
  g_captures : (string, string list) Hashtbl.t;
      (* lifted name -> captured free variables; per-glob so concurrent
         per-file lowerings never share mutable state *)
}

exception Lower_error of string * Minigo.Loc.t

let err loc fmt = Printf.ksprintf (fun m -> raise (Lower_error (m, loc))) fmt

let fresh_pp g =
  g.pp_counter <- g.pp_counter + 1;
  g.pp_counter

let fresh_tmp fs prefix =
  fs.tmp_counter <- fs.tmp_counter + 1;
  Printf.sprintf "%s$%d" prefix fs.tmp_counter

(* block ids are contiguous and equal to the block's index in the final
   array, so [Ir.block] can index directly *)
let new_block fs =
  let bid = List.length fs.blocks in
  let b =
    { Ir.bid; insts = []; term = Ir.Tunreachable; term_loc = Minigo.Loc.none }
  in
  fs.blocks <- b :: fs.blocks;
  b

let init_fstate glob fname =
  let entry =
    { Ir.bid = 0; insts = []; term = Ir.Tunreachable; term_loc = Minigo.Loc.none }
  in
  {
    blocks = [ entry ];
    cur = entry;
    env = StrMap.empty;
    defers = [];
    loops = [];
    var_types = Hashtbl.create 16;
    fname;
    tmp_counter = 0;
    lift_counter = 0;
    glob;
  }

let emit fs ?(deferred = false) ~loc desc =
  let i =
    { Ir.ipp = fresh_pp fs.glob; iloc = loc; idesc = desc; ideferred = deferred }
  in
  fs.cur.insts <- fs.cur.insts @ [ i ];
  i

let set_term fs ~loc term =
  if fs.cur.term = Ir.Tunreachable then begin
    fs.cur.term <- term;
    fs.cur.term_loc <- loc
  end

let switch_to fs b = fs.cur <- b

(* terminated blocks must not receive further code; lower into a fresh
   dead block so the rest of the statement list is still checked *)
let ensure_open fs =
  if fs.cur.term <> Ir.Tunreachable then begin
    let b = new_block fs in
    switch_to fs b
  end

let rename fs x = match StrMap.find_opt x fs.env with Some v -> v | None -> x

let bind fs x ty =
  if x = "_" then "_"
  else begin
    let unique =
      if StrMap.mem x fs.env || Hashtbl.mem fs.var_types x then fresh_tmp fs x
      else x
    in
    fs.env <- StrMap.add x unique fs.env;
    Hashtbl.replace fs.var_types unique ty;
    unique
  end

let typ_of_var fs v =
  match Hashtbl.find_opt fs.var_types v with Some t -> t | None -> A.Tany

(* --------------------------------------------------- free variables *)

let rec fv_expr bound (e : A.expr) acc =
  match e.e with
  | Int _ | Bool _ | Str _ | Nil -> acc
  | Ident x -> if List.mem x bound then acc else x :: acc
  | Binop (_, a, b) -> fv_expr bound b (fv_expr bound a acc)
  | Unop (_, a) | Recv a | Len a -> fv_expr bound a acc
  | Call c -> fv_call bound c acc
  | MakeChan (_, cap) -> (
      match cap with Some c -> fv_expr bound c acc | None -> acc)
  | Field (b, _) -> fv_expr bound b acc
  | StructLit (_, fields) ->
      List.fold_left (fun acc (_, v) -> fv_expr bound v acc) acc fields
  | FuncLit (params, _, body) ->
      let bound' = List.map (fun (p : A.param) -> p.pname) params @ bound in
      fv_block bound' body acc

and fv_call bound (c : A.call) acc =
  let acc =
    match c.callee with
    | Fname _ -> acc
    | Fmethod (e, _) -> fv_expr bound e acc
    | Fexpr e -> fv_expr bound e acc
  in
  List.fold_left (fun acc a -> fv_expr bound a acc) acc c.args

and fv_block bound (b : A.block) acc =
  let _, acc =
    List.fold_left
      (fun (bound, acc) s -> fv_stmt bound s acc)
      (bound, acc) b
  in
  acc

and fv_stmt bound (s : A.stmt) acc : string list * string list =
  match s.s with
  | Decl (x, _, init) ->
      let acc = match init with Some e -> fv_expr bound e acc | None -> acc in
      (x :: bound, acc)
  | Define (xs, e) ->
      let acc = fv_expr bound e acc in
      (xs @ bound, acc)
  | Assign (lv, e) ->
      let acc = fv_expr bound e acc in
      let acc =
        match lv with
        | Lid x -> if List.mem x bound then acc else x :: acc
        | Lfield (b, _) -> fv_expr bound b acc
      in
      (bound, acc)
  | ExprStmt e | Panic e -> (bound, fv_expr bound e acc)
  | Send (ch, v) -> (bound, fv_expr bound v (fv_expr bound ch acc))
  | CloseStmt ch -> (bound, fv_expr bound ch acc)
  | Go c -> (bound, fv_call bound c acc)
  | GoFuncLit (params, body, args) ->
      let acc = List.fold_left (fun acc a -> fv_expr bound a acc) acc args in
      let bound' = List.map (fun (p : A.param) -> p.pname) params @ bound in
      (bound, fv_block bound' body acc)
  | If (c, b1, b2) ->
      let acc = fv_expr bound c acc in
      let acc = fv_block bound b1 acc in
      let acc = match b2 with Some b -> fv_block bound b acc | None -> acc in
      (bound, acc)
  | For (kind, body) ->
      let bound', acc =
        match kind with
        | ForEver -> (bound, acc)
        | ForCond c -> (bound, fv_expr bound c acc)
        | ForClassic (init, cond, post) ->
            let bound', acc =
              match init with Some s -> fv_stmt bound s acc | None -> (bound, acc)
            in
            let acc =
              match cond with Some c -> fv_expr bound' c acc | None -> acc
            in
            let _, acc =
              match post with Some s -> fv_stmt bound' s acc | None -> (bound', acc)
            in
            (bound', acc)
        | ForRangeInt (x, e) | ForRangeChan (Some x, e) ->
            (x :: bound, fv_expr bound e acc)
        | ForRangeChan (None, e) -> (bound, fv_expr bound e acc)
      in
      (bound, fv_block bound' body acc)
  | Select (cases, dflt) ->
      let acc =
        List.fold_left
          (fun acc case ->
            match case with
            | A.CaseRecv (bnd, ok, ch, body) ->
                let acc = fv_expr bound ch acc in
                let bound' =
                  (match bnd with Some x -> [ x ] | None -> [])
                  @ (if ok then [ "ok" ] else [])
                  @ bound
                in
                fv_block bound' body acc
            | A.CaseSend (ch, v, body) ->
                fv_block bound body (fv_expr bound v (fv_expr bound ch acc)))
          acc cases
      in
      let acc = match dflt with Some b -> fv_block bound b acc | None -> acc in
      (bound, acc)
  | Return es -> (bound, List.fold_left (fun acc e -> fv_expr bound e acc) acc es)
  | DeferStmt d ->
      let acc =
        match d with
        | DeferCall c -> fv_call bound c acc
        | DeferSend (ch, v) -> fv_expr bound v (fv_expr bound ch acc)
        | DeferClose ch -> fv_expr bound ch acc
        | DeferFuncLit b -> fv_block bound b acc
      in
      (bound, acc)
  | Break | Continue -> (bound, acc)
  | BlockStmt b -> (bound, fv_block bound b acc)
  | IncDec (lv, _) ->
      let acc =
        match lv with
        | Lid x -> if List.mem x bound then acc else x :: acc
        | Lfield (b, _) -> fv_expr bound b acc
      in
      (bound, acc)

let free_vars_of_lit params body =
  let bound = List.map (fun (p : A.param) -> p.pname) params in
  let fvs = fv_block bound body [] in
  (* dedupe preserving first-occurrence order; drop function names *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v || v = "_" then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    (List.rev fvs)

(* -------------------------------------------------------- expressions *)

let is_testing_fatal = function
  | "Fatal" | "Fatalf" | "FailNow" -> true
  | _ -> false

let rec lower_expr fs (e : A.expr) : Ir.operand =
  match e.e with
  | Int n -> Oconst_int n
  | Bool b -> Oconst_bool b
  | Str s -> Oconst_str s
  | Nil -> Onil
  | Ident x ->
      let v = rename fs x in
      if Hashtbl.mem fs.glob.funcs_sigs x && not (StrMap.mem x fs.env) then
        Ir.Oconst_func x
      else Ovar v
  | Binop (op, a, b) ->
      let oa = lower_expr fs a in
      let ob = lower_expr fs b in
      let dst = fresh_tmp fs "t" in
      Hashtbl.replace fs.var_types dst
        (match op with
        | Add | Sub | Mul | Div | Mod -> A.Tint
        | _ -> A.Tbool);
      ignore (emit fs ~loc:e.eloc (Ibinop (dst, op, oa, ob)));
      Ovar dst
  | Unop (op, a) ->
      let oa = lower_expr fs a in
      let dst = fresh_tmp fs "t" in
      Hashtbl.replace fs.var_types dst
        (match op with A.Neg -> A.Tint | A.Not -> A.Tbool);
      ignore (emit fs ~loc:e.eloc (Iunop (dst, op, oa)));
      Ovar dst
  | Call c -> (
      match lower_call fs ~loc:e.eloc ~want:1 c with
      | [ v ] -> Ovar v
      | [] -> Oconst_int 0 (* unit-returning call in expr position *)
      | _ -> err e.eloc "multi-value call in expression position")
  | MakeChan (t, cap) ->
      let static_cap =
        match cap with
        | None -> Some 0
        | Some { e = Int n; _ } -> Some n
        | Some _ -> None
      in
      (match cap with
      | Some ({ e = Int _; _ } | { e = Ident _; _ }) | None -> ()
      | Some c -> ignore (lower_expr fs c));
      let dst = fresh_tmp fs "ch" in
      Hashtbl.replace fs.var_types dst (A.Tchan t);
      ignore (emit fs ~loc:e.eloc (Imake_chan (dst, t, static_cap)));
      Ovar dst
  | Recv ch ->
      let place = lower_place fs ch in
      let dst = fresh_tmp fs "recv" in
      Hashtbl.replace fs.var_types dst
        (match place_typ fs place with A.Tchan t -> t | _ -> A.Tany);
      ignore (emit fs ~loc:e.eloc (Irecv (Some dst, place, false)));
      Ovar dst
  | Field (b, f) ->
      let base = as_var fs b in
      let dst = fresh_tmp fs "fld" in
      Hashtbl.replace fs.var_types dst (field_typ fs (typ_of_var fs base) f);
      ignore (emit fs ~loc:e.eloc (Ifield_load (dst, base, f)));
      Ovar dst
  | StructLit (name, fields) ->
      let dst = fresh_tmp fs "s" in
      Hashtbl.replace fs.var_types dst (A.Tstruct name);
      ignore (emit fs ~loc:e.eloc (Imake_struct (dst, name)));
      List.iter
        (fun (f, v) ->
          let ov = lower_expr fs v in
          ignore (emit fs ~loc:e.eloc (Ifield_store (dst, f, ov))))
        fields;
      Ovar dst
  | FuncLit (params, results, body) ->
      let name = lift_lit fs ~loc:e.eloc params results body in
      Oconst_func name
  | Len a ->
      let oa = lower_expr fs a in
      let dst = fresh_tmp fs "len" in
      Hashtbl.replace fs.var_types dst A.Tint;
      ignore (emit fs ~loc:e.eloc (Icall ([ dst ], "$len", [ oa ])));
      Ovar dst

and field_typ fs t f =
  match t with
  | A.Tstruct name -> (
      match Hashtbl.find_opt fs.glob.structs name with
      | Some fields -> ( match List.assoc_opt f fields with Some t -> t | None -> A.Tany)
      | None -> A.Tany)
  | A.Tcontext when f = "$done" -> A.Tchan A.Tunit
  | _ -> A.Tany

(* Lower an expression that denotes a primitive (channel / mutex) into a
   place, preserving one level of field access so disentangling and alias
   analysis can distinguish s.mu from s.ch. *)
and lower_place fs (e : A.expr) : Ir.place =
  match e.e with
  | Ident x -> Pvar (rename fs x)
  | Field (b, f) -> Pfield (as_var fs b, f)
  | Call { callee = Fmethod (recv, "Done"); args = [] } ->
      (* ctx.Done(): the done channel is modelled as field $done of ctx *)
      Pfield (as_var fs recv, "$done")
  | _ ->
      let o = lower_expr fs e in
      Pvar (as_operand_var fs e.eloc o)

and place_typ fs = function
  | Ir.Pvar v -> typ_of_var fs v
  | Ir.Pfield (v, f) -> field_typ fs (typ_of_var fs v) f

and as_var fs (e : A.expr) : Ir.var =
  match e.e with
  | Ident x -> rename fs x
  | _ ->
      let o = lower_expr fs e in
      as_operand_var fs e.eloc o

and as_operand_var fs loc (o : Ir.operand) : Ir.var =
  match o with
  | Ovar v -> v
  | other ->
      let dst = fresh_tmp fs "t" in
      ignore (emit fs ~loc (Iassign (dst, other)));
      dst

(* Lower a call; returns result vars (length = want when want >= 0). *)
and lower_call fs ~loc ~want (c : A.call) : Ir.var list =
  let fresh_results n tys =
    List.init n (fun i ->
        let v = fresh_tmp fs "r" in
        (match List.nth_opt tys i with
        | Some t -> Hashtbl.replace fs.var_types v t
        | None -> ());
        v)
  in
  match c.callee with
  | Fname "println" | Fname "print" ->
      let args = List.map (lower_expr fs) c.args in
      ignore (emit fs ~loc (Iprint args));
      []
  | Fname "sleep" ->
      let args = List.map (lower_expr fs) c.args in
      ignore (emit fs ~loc (Isleep (List.hd args)));
      []
  | Fname "errorf" ->
      let args = List.map (lower_expr fs) c.args in
      let r = fresh_tmp fs "err" in
      Hashtbl.replace fs.var_types r A.Terror;
      ignore (emit fs ~loc (Icall ([ r ], "$errorf", args)));
      [ r ]
  | Fname "background" ->
      let r = fresh_tmp fs "ctx" in
      Hashtbl.replace fs.var_types r A.Tcontext;
      ignore (emit fs ~loc (Icall ([ r ], "$background", [])));
      [ r ]
  | Fname "cancel" ->
      (* cancelling a context closes its $done channel, which is exactly
         what the detectors need to see *)
      let ctx = as_var fs (List.hd c.args) in
      ignore (emit fs ~loc (Iclose (Pfield (ctx, "$done"))));
      []
  | Fname f when StrMap.mem f fs.env ->
      (* a local variable shadowing / holding a function value *)
      let args = List.map (lower_expr fs) c.args in
      let n = max want 0 in
      let rets = fresh_results n [] in
      ignore (emit fs ~loc (Icall_indirect (rets, rename fs f, args)));
      rets
  | Fname f ->
      let args = List.map (lower_expr fs) c.args in
      let ret_tys =
        match Hashtbl.find_opt fs.glob.funcs_sigs f with
        | Some (_, rets) -> rets
        | None -> []
      in
      let n = if want >= 0 then want else List.length ret_tys in
      let n = max n (if want = 1 && ret_tys = [] then 0 else n) in
      let n = min n (max (List.length ret_tys) n) in
      let n = if ret_tys = [] && want = 1 then 0 else n in
      let rets = fresh_results n ret_tys in
      ignore (emit fs ~loc (Icall (rets, f, args)));
      rets
  | Fexpr e ->
      let fv = as_var fs e in
      let args = List.map (lower_expr fs) c.args in
      let n = max want 0 in
      let rets = fresh_results n [] in
      ignore (emit fs ~loc (Icall_indirect (rets, fv, args)));
      rets
  | Fmethod (recv, m) -> lower_method fs ~loc ~want recv m c.args

and lower_method fs ~loc ~want recv m args : Ir.var list =
  let recv_t =
    match recv.A.e with
    | Ident x -> typ_of_var fs (rename fs x)
    | Field (b, f) -> field_typ fs (typ_of_var fs (as_var fs b)) f
    | _ -> A.Tany
  in
  let place () = lower_place fs recv in
  match (recv_t, m) with
  | A.Tmutex, "Lock" ->
      ignore (emit fs ~loc (Ilock (place ())));
      []
  | A.Tmutex, "Unlock" ->
      ignore (emit fs ~loc (Iunlock (place ())));
      []
  | A.Twaitgroup, "Add" ->
      let o = lower_expr fs (List.hd args) in
      ignore (emit fs ~loc (Iwg_add (place (), o)));
      []
  | A.Twaitgroup, "Done" ->
      ignore (emit fs ~loc (Iwg_done (place ())));
      []
  | A.Twaitgroup, "Wait" ->
      ignore (emit fs ~loc (Iwg_wait (place ())));
      []
  | A.Tcond, "Wait" ->
      ignore (emit fs ~loc (Irecv (None, place (), false)));
      []
  | A.Tcond, "Signal" ->
      (* select { case c <- unit: default: } — never blocks; a signal
         with no waiting receiver is lost *)
      let p = place () in
      let sel_pp = fresh_pp fs.glob in
      let join = new_block fs in
      let sent = new_block fs in
      let saved = fs.cur in
      switch_to fs sent;
      set_term fs ~loc (Tjump join.bid);
      switch_to fs saved;
      set_term fs ~loc
        (Tselect
           ( [ { Ir.arm_op = Arm_send (p, Oconst_int 0); arm_target = sent.bid } ],
             Some join.bid,
             sel_pp ));
      switch_to fs join;
      []
  | A.Tcond, "Broadcast" ->
      (* for { select { case c <- unit: | default: break } } *)
      let p = place () in
      let header = new_block fs in
      let sent = new_block fs in
      let exit = new_block fs in
      set_term fs ~loc (Tjump header.bid);
      switch_to fs sent;
      set_term fs ~loc (Tjump header.bid);
      switch_to fs header;
      let sel_pp = fresh_pp fs.glob in
      set_term fs ~loc
        (Tselect
           ( [ { Ir.arm_op = Arm_send (p, Oconst_int 0); arm_target = sent.bid } ],
             Some exit.bid,
             sel_pp ));
      switch_to fs exit;
      []
  | A.Ttesting, meth when is_testing_fatal meth ->
      List.iter (fun a -> ignore (lower_expr fs a)) args;
      ignore (emit fs ~loc (Itesting_fatal meth));
      (* Fatal terminates the goroutine after running defers *)
      emit_defers fs ~loc fs.defers;
      set_term fs ~loc Ir.Texit;
      ensure_open fs;
      []
  | A.Ttesting, _ ->
      List.iter (fun a -> ignore (lower_expr fs a)) args;
      ignore (emit fs ~loc (Inop ("t." ^ m)));
      []
  | A.Tcontext, "Done" ->
      let dst = fresh_tmp fs "done" in
      Hashtbl.replace fs.var_types dst (A.Tchan A.Tunit);
      let base = as_var fs recv in
      ignore (emit fs ~loc (Ifield_load (dst, base, "$done")));
      [ dst ]
  | A.Tcontext, "Err" | A.Terror, "Error" ->
      let dst = fresh_tmp fs "err" in
      Hashtbl.replace fs.var_types dst A.Terror;
      ignore (emit fs ~loc (Icall ([ dst ], "$ctx_err", [])));
      [ dst ]
  | _, _ ->
      (* unknown method: treated as an opaque call *)
      let ops = List.map (lower_expr fs) args in
      let n = max want 0 in
      let rets =
        List.init n (fun _ ->
            let v = fresh_tmp fs "r" in
            Hashtbl.replace fs.var_types v A.Tany;
            v)
      in
      ignore (emit fs ~loc (Icall (rets, "$method_" ^ m, ops)));
      rets

and lift_lit fs ~loc params results body : string =
  fs.lift_counter <- fs.lift_counter + 1;
  let name = Printf.sprintf "%s$fn%d" fs.fname fs.lift_counter in
  let fvs = free_vars_of_lit params body in
  let extra_params =
    List.map
      (fun v ->
        let renamed = rename fs v in
        { A.pname = v; ptyp = typ_of_var fs renamed })
      fvs
  in
  fs.glob.lifted <-
    (name, params @ extra_params, results, body, fs.env, loc) :: fs.glob.lifted;
  Hashtbl.replace fs.glob.funcs_sigs name
    ( List.map (fun (p : A.param) -> p.ptyp) (params @ extra_params),
      results );
  (* record the capture list so callers pass the extra args *)
  Hashtbl.replace fs.glob.g_captures name fvs;
  name

(* Emit deferred operations (LIFO) at a function exit. *)
and emit_defers fs ~loc defers =
  List.iter
    (fun de ->
      let saved = fs.env in
      fs.env <- de.de_env;
      (match de.de_op with
      | A.DeferCall c -> ignore (lower_call fs ~loc ~want:0 c)
      | A.DeferSend (ch, v) ->
          let p = lower_place fs ch in
          let o = lower_expr fs v in
          ignore (emit fs ~deferred:true ~loc (Isend (p, o)))
      | A.DeferClose ch ->
          let p = lower_place fs ch in
          ignore (emit fs ~deferred:true ~loc (Iclose p))
      | A.DeferFuncLit body -> lower_block fs body);
      fs.env <- saved)
    defers

(* --------------------------------------------------------- statements *)

and lower_block fs (b : A.block) : unit =
  let saved = fs.env in
  List.iter (lower_stmt fs) b;
  fs.env <- saved

and lower_stmt fs (s : A.stmt) : unit =
  ensure_open fs;
  let loc = s.sloc in
  match s.s with
  | Decl (x, ty, init) -> (
      match init with
      | Some e ->
          let o = lower_expr fs e in
          let t =
            match ty with
            | Some t -> t
            | None -> operand_typ fs o
          in
          let v = bind fs x t in
          if v <> "_" then ignore (emit fs ~loc (Iassign (v, o)))
      | None ->
          let t = Option.value ty ~default:A.Tany in
          let v = bind fs x t in
          if v <> "_" then
            let desc =
              match t with
              | A.Tmutex | A.Twaitgroup | A.Tstruct _ ->
                  (* zero values of sync primitives are creation sites *)
                  Ir.Imake_struct (v, A.typ_to_string t)
              | A.Tcond ->
                  (* the paper's §6 encoding: a condition variable is an
                     unbuffered channel *)
                  Ir.Imake_chan (v, A.Tunit, Some 0)
              | _ -> Ir.Iassign (v, zero_value t)
            in
            ignore (emit fs ~loc desc))
  | Define (xs, e) -> lower_define fs ~loc xs e
  | Assign (lv, e) -> (
      let o = lower_expr fs e in
      match lv with
      | Lid "_" -> ()
      | Lid x -> ignore (emit fs ~loc (Iassign (rename fs x, o)))
      | Lfield (b, f) ->
          let base = as_var fs b in
          ignore (emit fs ~loc (Ifield_store (base, f, o))))
  | ExprStmt e -> (
      match e.e with
      | Call c -> ignore (lower_call fs ~loc ~want:0 c)
      | Recv ch ->
          let p = lower_place fs ch in
          ignore (emit fs ~loc (Irecv (None, p, false)))
      | _ -> ignore (lower_expr fs e))
  | Send (ch, v) ->
      let p = lower_place fs ch in
      let o = lower_expr fs v in
      ignore (emit fs ~loc (Isend (p, o)))
  | CloseStmt ch ->
      let p = lower_place fs ch in
      ignore (emit fs ~loc (Iclose p))
  | Go c -> (
      match c.callee with
      | Fname f when not (StrMap.mem f fs.env) ->
          let args = List.map (lower_expr fs) c.args in
          ignore (emit fs ~loc (Igo (f, args)))
      | _ ->
          (* go on a method or function value: lower as opaque spawn *)
          let args = List.map (lower_expr fs) c.args in
          ignore (emit fs ~loc (Igo ("$indirect", args))))
  | GoFuncLit (params, body, args) ->
      let name = lift_lit fs ~loc params [] body in
      let explicit = List.map (lower_expr fs) args in
      let captured =
        match Hashtbl.find_opt fs.glob.g_captures name with
        | Some fvs -> List.map (fun v -> Ir.Ovar (rename fs v)) fvs
        | None -> []
      in
      ignore (emit fs ~loc (Igo (name, explicit @ captured)))
  | If (cond, then_b, else_b) ->
      let c = lower_cond fs cond in
      let bthen = new_block fs in
      let belse = new_block fs in
      let bjoin = new_block fs in
      set_term fs ~loc (Tbranch (c, bthen.bid, belse.bid));
      switch_to fs bthen;
      lower_block fs then_b;
      set_term fs ~loc (Tjump bjoin.bid);
      switch_to fs belse;
      (match else_b with Some b -> lower_block fs b | None -> ());
      set_term fs ~loc (Tjump bjoin.bid);
      switch_to fs bjoin
  | For (kind, body) -> lower_for fs ~loc kind body
  | Select (cases, dflt) -> lower_select fs ~loc cases dflt
  | Return es ->
      let os = List.map (lower_expr fs) es in
      emit_defers fs ~loc fs.defers;
      set_term fs ~loc (Treturn os);
      ensure_open fs
  | DeferStmt d -> fs.defers <- { de_op = d; de_env = fs.env } :: fs.defers
  | Break -> (
      match fs.loops with
      | { break_target; _ } :: _ ->
          set_term fs ~loc (Tjump break_target);
          ensure_open fs
      | [] -> err loc "break outside loop")
  | Continue -> (
      match fs.loops with
      | { continue_target; _ } :: _ ->
          set_term fs ~loc (Tjump continue_target);
          ensure_open fs
      | [] -> err loc "continue outside loop")
  | Panic e ->
      ignore (lower_expr fs e);
      emit_defers fs ~loc fs.defers;
      set_term fs ~loc Tpanic;
      ensure_open fs
  | BlockStmt b -> lower_block fs b
  | IncDec (lv, up) -> (
      let op = if up then A.Add else A.Sub in
      match lv with
      | Lid x ->
          let v = rename fs x in
          ignore (emit fs ~loc (Ibinop (v, op, Ovar v, Oconst_int 1)))
      | Lfield (b, f) ->
          let base = as_var fs b in
          let tmp = fresh_tmp fs "t" in
          ignore (emit fs ~loc (Ifield_load (tmp, base, f)));
          ignore (emit fs ~loc (Ibinop (tmp, op, Ovar tmp, Oconst_int 1)));
          ignore (emit fs ~loc (Ifield_store (base, f, Ovar tmp))))

and operand_typ fs = function
  | Ir.Ovar v -> typ_of_var fs v
  | Ir.Oconst_int _ -> A.Tint
  | Ir.Oconst_bool _ -> A.Tbool
  | Ir.Oconst_str _ -> A.Tstring
  | Ir.Oconst_func f -> (
      match Hashtbl.find_opt fs.glob.funcs_sigs f with
      | Some (a, r) -> A.Tfunc (a, r)
      | None -> A.Tany)
  | Ir.Onil -> A.Tany
  | Ir.Oplace p -> place_typ fs p

and zero_value = function
  | A.Tint -> Ir.Oconst_int 0
  | A.Tbool -> Ir.Oconst_bool false
  | A.Tstring -> Ir.Oconst_str ""
  | _ -> Ir.Onil

and lower_define fs ~loc xs (e : A.expr) =
  match (xs, e.e) with
  | [ x; ok ], Recv ch ->
      let p = lower_place fs ch in
      let t = match place_typ fs p with A.Tchan t -> t | _ -> A.Tany in
      let vx = bind fs x t in
      ignore
        (emit fs ~loc (Irecv ((if vx = "_" then None else Some vx), p, false)));
      let vok = bind fs ok A.Tbool in
      if vok <> "_" then ignore (emit fs ~loc (Icall ([ vok ], "$recv_ok", [])))
  | _, Call c ->
      let rets = lower_call fs ~loc ~want:(List.length xs) c in
      List.iteri
        (fun i x ->
          let r = List.nth_opt rets i in
          match r with
          | Some r ->
              let v = bind fs x (typ_of_var fs r) in
              if v <> "_" then ignore (emit fs ~loc (Iassign (v, Ovar r)))
          | None ->
              let v = bind fs x A.Tany in
              if v <> "_" then ignore (emit fs ~loc (Iassign (v, Onil))))
        xs
  | [ x ], _ ->
      let o = lower_expr fs e in
      let v = bind fs x (operand_typ fs o) in
      if v <> "_" then ignore (emit fs ~loc (Iassign (v, o)))
  | _ -> err loc "unsupported multi-value define"

and lower_cond fs (e : A.expr) : Ir.cond =
  (* keep comparisons of simple operands structured for feasibility
     filtering; lower everything else to an opaque boolean *)
  let simple (e : A.expr) : Ir.operand option =
    match e.e with
    | Int n -> Some (Oconst_int n)
    | Bool b -> Some (Oconst_bool b)
    | Str s -> Some (Oconst_str s)
    | Nil -> Some Onil
    | Ident x -> Some (Ovar (rename fs x))
    | _ -> None
  in
  match e.e with
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) -> (
      match (simple a, simple b) with
      | Some oa, Some ob -> Ccmp (op, oa, ob)
      | _ ->
          let o = lower_expr fs e in
          Cvar (as_operand_var fs e.eloc o))
  | Unop (Not, inner) -> Cnot (lower_cond fs inner)
  | Ident x -> Cvar (rename fs x)
  | Bool true -> Ccmp (A.Eq, Oconst_int 0, Oconst_int 0)
  | Bool false -> Ccmp (A.Neq, Oconst_int 0, Oconst_int 0)
  | _ ->
      let o = lower_expr fs e in
      Cvar (as_operand_var fs e.eloc o)

and lower_for fs ~loc kind body =
  match kind with
  | A.ForEver ->
      let header = new_block fs in
      let exit = new_block fs in
      set_term fs ~loc (Tjump header.bid);
      switch_to fs header;
      fs.loops <-
        { break_target = exit.bid; continue_target = header.bid } :: fs.loops;
      lower_block fs body;
      fs.loops <- List.tl fs.loops;
      set_term fs ~loc (Tjump header.bid);
      switch_to fs exit
  | A.ForCond cond ->
      let header = new_block fs in
      let bbody = new_block fs in
      let exit = new_block fs in
      set_term fs ~loc (Tjump header.bid);
      switch_to fs header;
      let c = lower_cond fs cond in
      set_term fs ~loc (Tbranch (c, bbody.bid, exit.bid));
      switch_to fs bbody;
      fs.loops <-
        { break_target = exit.bid; continue_target = header.bid } :: fs.loops;
      lower_block fs body;
      fs.loops <- List.tl fs.loops;
      set_term fs ~loc (Tjump header.bid);
      switch_to fs exit
  | A.ForClassic (init, cond, post) ->
      let saved = fs.env in
      Option.iter (lower_stmt fs) init;
      let header = new_block fs in
      let bbody = new_block fs in
      let bpost = new_block fs in
      let exit = new_block fs in
      set_term fs ~loc (Tjump header.bid);
      switch_to fs header;
      (match cond with
      | Some cond ->
          let c = lower_cond fs cond in
          set_term fs ~loc (Tbranch (c, bbody.bid, exit.bid))
      | None -> set_term fs ~loc (Tjump bbody.bid));
      switch_to fs bbody;
      fs.loops <-
        { break_target = exit.bid; continue_target = bpost.bid } :: fs.loops;
      lower_block fs body;
      fs.loops <- List.tl fs.loops;
      set_term fs ~loc (Tjump bpost.bid);
      switch_to fs bpost;
      Option.iter (lower_stmt fs) post;
      set_term fs ~loc (Tjump header.bid);
      switch_to fs exit;
      fs.env <- saved
  | A.ForRangeInt (x, e) ->
      let saved = fs.env in
      let bound = lower_expr fs e in
      let i = bind fs x A.Tint in
      ignore (emit fs ~loc (Iassign (i, Oconst_int 0)));
      let header = new_block fs in
      let bbody = new_block fs in
      let bpost = new_block fs in
      let exit = new_block fs in
      set_term fs ~loc (Tjump header.bid);
      switch_to fs header;
      set_term fs ~loc (Tbranch (Ccmp (A.Lt, Ovar i, bound), bbody.bid, exit.bid));
      switch_to fs bbody;
      fs.loops <-
        { break_target = exit.bid; continue_target = bpost.bid } :: fs.loops;
      lower_block fs body;
      fs.loops <- List.tl fs.loops;
      set_term fs ~loc (Tjump bpost.bid);
      switch_to fs bpost;
      ignore (emit fs ~loc (Ibinop (i, A.Add, Ovar i, Oconst_int 1)));
      set_term fs ~loc (Tjump header.bid);
      switch_to fs exit;
      fs.env <- saved
  | A.ForRangeChan (bindv, e) ->
      let saved = fs.env in
      let p = lower_place fs e in
      let header = new_block fs in
      let bbody = new_block fs in
      let exit = new_block fs in
      set_term fs ~loc (Tjump header.bid);
      switch_to fs header;
      let v =
        match bindv with
        | Some x ->
            let t = match place_typ fs p with A.Tchan t -> t | _ -> A.Tany in
            let v = bind fs x t in
            if v = "_" then None else Some v
        | None -> None
      in
      let recv = emit fs ~loc (Irecv (v, p, true)) in
      set_term fs ~loc (Tbranch (Copaque recv.ipp, bbody.bid, exit.bid));
      switch_to fs bbody;
      fs.loops <-
        { break_target = exit.bid; continue_target = header.bid } :: fs.loops;
      lower_block fs body;
      fs.loops <- List.tl fs.loops;
      set_term fs ~loc (Tjump header.bid);
      switch_to fs exit;
      fs.env <- saved

and lower_select fs ~loc cases dflt =
  let sel_pp = fresh_pp fs.glob in
  let join = new_block fs in
  let arms =
    List.map
      (fun case ->
        match case with
        | A.CaseRecv (bnd, ok, ch, body) ->
            let p = lower_place fs ch in
            let btarget = new_block fs in
            let saved_env = fs.env in
            let saved_cur = fs.cur in
            switch_to fs btarget;
            let v =
              match bnd with
              | Some x when x <> "_" ->
                  let t =
                    match place_typ fs p with A.Tchan t -> t | _ -> A.Tany
                  in
                  Some (bind fs x t)
              | _ -> None
            in
            if ok then begin
              let vok = bind fs "ok" A.Tbool in
              ignore (emit fs ~loc (Icall ([ vok ], "$recv_ok", [])))
            end;
            lower_block fs body;
            set_term fs ~loc (Tjump join.bid);
            fs.env <- saved_env;
            switch_to fs saved_cur;
            { Ir.arm_op = Arm_recv (p, v); arm_target = btarget.bid }
        | A.CaseSend (ch, v, body) ->
            let p = lower_place fs ch in
            let o = lower_expr fs v in
            let btarget = new_block fs in
            let saved_cur = fs.cur in
            switch_to fs btarget;
            lower_block fs body;
            set_term fs ~loc (Tjump join.bid);
            switch_to fs saved_cur;
            { Ir.arm_op = Arm_send (p, o); arm_target = btarget.bid })
      cases
  in
  let dflt_target =
    match dflt with
    | Some body ->
        let b = new_block fs in
        let saved_cur = fs.cur in
        switch_to fs b;
        lower_block fs body;
        set_term fs ~loc (Tjump join.bid);
        switch_to fs saved_cur;
        Some b.bid
    | None -> None
  in
  set_term fs ~loc (Tselect (arms, dflt_target, sel_pp));
  switch_to fs join

(* ------------------------------------------------------------- driver *)

let finalize fs ~name ~params ~result_types ~is_goroutine_body ~parent ~floc :
    Ir.func =
  (* implicit return at the end of the function body — but only when the
     final block is reachable; dead blocks created after explicit returns
     stay unreachable so they cannot pollute defers or dominance *)
  let cur_reachable =
    fs.cur.bid = 0
    || List.exists
         (fun (b : Ir.block) ->
           b != fs.cur && List.mem fs.cur.bid (Ir.successors b))
         fs.blocks
    || fs.cur.insts <> []
  in
  if fs.cur.term = Ir.Tunreachable && cur_reachable then begin
    emit_defers fs ~loc:floc fs.defers;
    fs.cur.term <- Treturn (List.map (fun t -> zero_value t) result_types)
  end;
  let blocks =
    List.sort (fun (a : Ir.block) b -> compare a.bid b.bid) (List.rev fs.blocks)
    |> Array.of_list
  in
  let var_types = Hashtbl.create 16 in
  Hashtbl.iter (fun k v -> Hashtbl.replace var_types k v) fs.var_types;
  {
    Ir.name;
    params;
    result_types;
    blocks;
    entry = 0;
    is_goroutine_body;
    parent;
    floc;
    var_types;
  }

let lower_function glob ~name ~(params : A.param list) ~results ~body
    ~is_goroutine_body ~parent ~env ~floc : Ir.func =
  let fs = init_fstate glob name in
  fs.env <- env;
  let ir_params =
    List.map
      (fun (p : A.param) ->
        let v = bind fs p.pname p.ptyp in
        (v, p.ptyp))
      params
  in
  lower_block fs body;
  finalize fs ~name ~params:ir_params ~result_types:results ~is_goroutine_body
    ~parent ~floc

(* --------------------------------------------- per-file compilation --- *)

(* The frontend lowers each file independently (possibly in parallel,
   possibly from a per-file cache), with program points local to the
   file and starting at 1.  [assemble] then rebases every file's points
   by the sum of the preceding files' point counts — a prefix sum over
   the file list, so the numbering depends only on the file contents
   and their order, never on the schedule or on which files came from
   cache. *)

type sigs = {
  sg_funcs : (string, A.typ list * A.typ list) Hashtbl.t;
  sg_structs : (string, (string * A.typ) list) Hashtbl.t;
}

(* Typechecking rewrites only function bodies, so the signature items
   extracted from the *parsed* files build the same table as
   [build_sigs] on the typed program — which is what lets the engine
   feed this from its per-file signature cache without re-parsing. *)
let sigs_of_signatures (items : Minigo.Typecheck.sig_item list) : sigs =
  let sg_funcs = Hashtbl.create 16 in
  let sg_structs = Hashtbl.create 16 in
  List.iter
    (function
      | `F (name, ptys, results) -> Hashtbl.replace sg_funcs name (ptys, results)
      | `S (name, fields) -> Hashtbl.replace sg_structs name fields)
    items;
  { sg_funcs; sg_structs }

let build_sigs (prog : A.program) : sigs =
  sigs_of_signatures
    (List.concat_map Minigo.Typecheck.file_signatures prog)

type lowered_file = {
  lf_funcs : (string * Ir.func) list; (* in lowering order *)
  lf_pp_count : int;                  (* program points this file consumed *)
  lf_captures : (string * string list) list; (* lifted name -> free vars *)
}

let lower_file (sigs : sigs) (file : A.file) : lowered_file =
  let glob =
    {
      pp_counter = 0;
      lifted = [];
      (* lambda lifting registers the lifted literal's signature as it
         goes; copy the shared base so files never write to it *)
      funcs_sigs = Hashtbl.copy sigs.sg_funcs;
      structs = sigs.sg_structs;
      g_captures = Hashtbl.create 16;
    }
  in
  let funcs = ref [] in
  List.iter
    (fun d ->
      match d with
      | A.Dfunc fd ->
          let f =
            lower_function glob ~name:fd.fname ~params:fd.params
              ~results:fd.results ~body:fd.body ~is_goroutine_body:false
              ~parent:None ~env:StrMap.empty ~floc:fd.floc
          in
          funcs := (fd.fname, f) :: !funcs
      | A.Dstruct _ -> ())
    file.decls;
  (* lower this file's lifted literals; lifting can enqueue more *)
  let rec drain () =
    match glob.lifted with
    | [] -> ()
    | (name, params, results, body, _env, loc) :: rest ->
        glob.lifted <- rest;
        let parent =
          match String.index_opt name '$' with
          | Some i -> Some (String.sub name 0 i)
          | None -> None
        in
        let f =
          lower_function glob ~name ~params ~results ~body
            ~is_goroutine_body:true ~parent ~env:StrMap.empty ~floc:loc
        in
        funcs := (name, f) :: !funcs;
        drain ()
  in
  drain ();
  {
    lf_funcs = List.rev !funcs;
    lf_pp_count = glob.pp_counter;
    lf_captures =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) glob.g_captures []);
  }

(* Accessors for per-file analysis passes that extract local facts from
   a lowered file before its program points are rebased. *)
let file_funcs (lf : lowered_file) = lf.lf_funcs
let file_pp_count (lf : lowered_file) = lf.lf_pp_count

(* Rebase a function's program points by [off].  Blocks are mutable
   records, so the copy must be deep: a cached [lowered_file] may be
   assembled at different offsets in different programs.  Program
   points appear in instruction [ipp]s, [Tselect] terminators, and
   [Copaque] conditions (inside [Tbranch], possibly under [Cnot]);
   nothing else in the IR carries one. *)
let rec rebase_cond off (c : Ir.cond) : Ir.cond =
  match c with
  | Ir.Copaque pp -> Ir.Copaque (pp + off)
  | Ir.Cnot c -> Ir.Cnot (rebase_cond off c)
  | Ir.Cvar _ | Ir.Ccmp _ -> c

let rebase_term off (t : Ir.terminator) : Ir.terminator =
  match t with
  | Ir.Tbranch (c, a, b) -> Ir.Tbranch (rebase_cond off c, a, b)
  | Ir.Tselect (arms, dflt, pp) -> Ir.Tselect (arms, dflt, pp + off)
  | Ir.Tjump _ | Ir.Treturn _ | Ir.Tpanic | Ir.Texit | Ir.Tunreachable -> t

let rebase_func off (f : Ir.func) : Ir.func =
  if off = 0 then f
  else
    {
      f with
      Ir.blocks =
        Array.map
          (fun (b : Ir.block) ->
            {
              b with
              Ir.insts =
                List.map
                  (fun (i : Ir.inst) -> { i with Ir.ipp = i.Ir.ipp + off })
                  b.Ir.insts;
              term = rebase_term off b.Ir.term;
            })
          f.Ir.blocks;
    }

(* The process-wide capture map behind the public [captures] API.
   Assembly merges every file's captures in; the table accumulates
   across programs (it is never reset: cached files are not re-lowered
   on warm runs, so their entries must survive). *)
let lit_captures : (string, string list) Hashtbl.t = Hashtbl.create 16
let lit_captures_mu = Mutex.create ()

let assemble (prog : A.program) (files : lowered_file list) : Ir.program =
  let funcs = Hashtbl.create 16 in
  let off = ref 0 in
  List.iter
    (fun lf ->
      List.iter
        (fun (name, f) -> Hashtbl.replace funcs name (rebase_func !off f))
        lf.lf_funcs;
      Mutex.lock lit_captures_mu;
      List.iter
        (fun (name, fvs) -> Hashtbl.replace lit_captures name fvs)
        lf.lf_captures;
      Mutex.unlock lit_captures_mu;
      off := !off + lf.lf_pp_count)
    files;
  let main = if Hashtbl.mem funcs "main" then Some "main" else None in
  { Ir.funcs; main; source = prog }

let lower_program (prog : A.program) : Ir.program =
  let sigs = build_sigs prog in
  assemble prog (List.map (lower_file sigs) prog)

(* Mapping from lifted literal name to the free variables it captures;
   exposed for the runtime and tests. *)
let captures name =
  Mutex.lock lit_captures_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lit_captures_mu)
    (fun () -> Hashtbl.find_opt lit_captures name)
